#pragma once

// The action specifications of the paper's running example, in the library's
// concrete syntax, named by their equation numbers:
//
//   a1 (eq. 4), a2 (eq. 5), a3 (eq. 15, deliberately ill-formed), a4
//   (eq. 16), a7 (eq. 21), a8 (eq. 22), and the Section 5.3 example set
//   (eqs. 24-26).

namespace dwred::paper {

inline constexpr const char* kA1 =
    "p(a[Time.month, URL.domain] s[URL.domain_grp = .com AND "
    "NOW - 12 months <= Time.month <= NOW - 6 months](O))";

inline constexpr const char* kA2 =
    "p(a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
    "Time.quarter <= NOW - 4 quarters](O))";

// Eq. (15): aggregates URL above its own predicate's category — rejected by
// the grammar's semantic constraint (Section 4.1).
inline constexpr const char* kA3 =
    "p(a[Time.month, URL.domain_grp] s[URL.url = www.cnn.com/health AND "
    "Time.month <= 1999/12](O))";

// Eq. (16): crosses a2 (aggregates higher on URL, lower/parallel on Time).
// Note the paper's a4 predicates on Time.month while aggregating Time to
// week; since week is not <=_Time month, that already violates the Section
// 4.1 constraint (the predicate would be unevaluable on week-level facts), so
// the parser rejects the verbatim a4 too.
inline constexpr const char* kA4 =
    "p(a[Time.week, URL.url] s[URL.url = www.cnn.com/health AND "
    "Time.month <= 1999/12](O))";

// A well-formed variant of a4 (week-typed time predicate) that still crosses
// a2: unordered granularities (week vs quarter, url vs domain) with
// overlapping predicates.
inline constexpr const char* kA4Week =
    "p(a[Time.week, URL.url] s[URL.url = www.cnn.com/health AND "
    "Time.week <= 1999W52](O))";

inline constexpr const char* kA7 =
    "p(a[Time.month, URL.domain] s[Time.month <= NOW - 12 months](O))";

inline constexpr const char* kA8 =
    "p(a[Time.month, URL.domain] s[Time.month <= 1999/12](O))";

// Section 5.3 example, eqs. (24)-(26).
inline constexpr const char* kS53A1 =
    "a[Time.month, URL.domain] s[NOW - 4 years < Time.year AND "
    "Time.year < NOW AND URL.TOP = T]";

inline constexpr const char* kS53A2 =
    "a[Time.quarter, URL.domain] s[Time.year <= NOW - 4 years AND "
    "URL.domain_grp = .com]";

inline constexpr const char* kS53A3 =
    "a[Time.quarter, URL.domain_grp] s[Time.year <= NOW - 4 years AND "
    "URL.domain_grp = .edu]";

}  // namespace dwred::paper
