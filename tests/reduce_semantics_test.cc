// Reduction-semantics goldens: the Section 4.2 auxiliary functions
// (Spec_gran, Cell, AggLevel) and Definition 2's reduced MO, asserted against
// the paper's worked values and the three snapshots of Figure 3.

#include "reduce/semantics.h"

#include <gtest/gtest.h>

#include <map>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class ReduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.Add(ParseAction(*ex_.mo, paper::kA1, "a1").take());
    spec_.Add(ParseAction(*ex_.mo, paper::kA2, "a2").take());
  }

  /// Snapshot of an MO as a map "(cell) -> measures" for order-insensitive
  /// comparison.
  static std::map<std::string, std::vector<int64_t>> Snapshot(
      const MultidimensionalObject& mo) {
    std::map<std::string, std::vector<int64_t>> out;
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      std::string key;
      for (size_t d = 0; d < mo.num_dimensions(); ++d) {
        if (d) key += "|";
        key += mo.dimension(static_cast<DimensionId>(d))
                   ->value_name(mo.Coord(f, static_cast<DimensionId>(d)));
      }
      std::vector<int64_t> meas;
      for (size_t m = 0; m < mo.num_measures(); ++m) {
        meas.push_back(mo.Measure(f, static_cast<MeasureId>(m)));
      }
      out[key] = meas;
    }
    return out;
  }

  IspExample ex_ = MakeIspExample();
  ReductionSpecification spec_;
};

TEST_F(ReduceTest, MaxSpecGranForFact1MatchesPaperExample) {
  // Paper Section 4.2: at 2000/11/5, Spec_gran(fact_1) contains
  // (day, url), (month, domain*) and (quarter, domain); the max is
  // (quarter, domain).
  int64_t t = DaysFromCivil({2000, 11, 5});
  ActionId responsible = kNoAction;
  auto g = MaxSpecGran(*ex_.mo, spec_, ex_.facts[1], t, &responsible);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value()[ex_.time_dim],
            static_cast<CategoryId>(TimeUnit::kQuarter));
  EXPECT_EQ(g.value()[ex_.url_dim], ex_.domain_cat);
  EXPECT_EQ(responsible, 1u);  // a2
}

TEST_F(ReduceTest, CellOfFact1IsQ4Cnn) {
  // Paper: Cell(fact_1, 2000/11/5) = (1999Q4, cnn.com).
  int64_t t = DaysFromCivil({2000, 11, 5});
  auto cell = CellOf(*ex_.mo, spec_, ex_.facts[1], t);
  ASSERT_TRUE(cell.ok());
  const Dimension& time = *ex_.mo->dimension(ex_.time_dim);
  EXPECT_EQ(time.granule(cell.value()[ex_.time_dim]), QuarterGranule(1999, 4));
  EXPECT_EQ(cell.value()[ex_.url_dim], ex_.dom_cnn);
}

TEST_F(ReduceTest, AggLevelPerDimension) {
  int64_t t = DaysFromCivil({2000, 11, 5});
  // fact_1's direct cell.
  std::vector<ValueId> cell = {ex_.mo->Coord(ex_.facts[1], ex_.time_dim),
                               ex_.mo->Coord(ex_.facts[1], ex_.url_dim)};
  auto lt = AggLevel(*ex_.mo, spec_, ex_.time_dim, cell, t);
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt.value(), static_cast<CategoryId>(TimeUnit::kQuarter));
  auto lu = AggLevel(*ex_.mo, spec_, ex_.url_dim, cell, t);
  ASSERT_TRUE(lu.ok());
  EXPECT_EQ(lu.value(), ex_.domain_cat);
  // fact_6 (gatech.edu): no action covers it -> bottom levels.
  std::vector<ValueId> cell6 = {ex_.mo->Coord(ex_.facts[6], ex_.time_dim),
                                ex_.mo->Coord(ex_.facts[6], ex_.url_dim)};
  EXPECT_EQ(AggLevel(*ex_.mo, spec_, ex_.time_dim, cell6, t).value(),
            static_cast<CategoryId>(TimeUnit::kDay));
  EXPECT_EQ(AggLevel(*ex_.mo, spec_, ex_.url_dim, cell6, t).value(),
            ex_.url_cat);
}

TEST_F(ReduceTest, Figure3SnapshotAt2000_4_5_NothingReduced) {
  auto reduced = Reduce(*ex_.mo, spec_, DaysFromCivil({2000, 4, 5}));
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  EXPECT_EQ(reduced.value().num_facts(), 7u);
  EXPECT_EQ(Snapshot(reduced.value()), Snapshot(*ex_.mo));
}

TEST_F(ReduceTest, Figure3SnapshotAt2000_6_5) {
  ReduceStats stats;
  auto reduced = Reduce(*ex_.mo, spec_, DaysFromCivil({2000, 6, 5}), {}, &stats);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  // fact_1 + fact_2 -> fact_12 at (1999/12, cnn.com); fact_0 and fact_3
  // aggregate individually to (1999/11, amazon.com) and (1999/12,
  // amazon.com); facts 4..6 unchanged.
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999/11|amazon.com", {1, 677, 2, 34}},
      {"1999/12|amazon.com", {1, 12, 1, 34}},
      {"1999/12|cnn.com", {2, 2489, 7, 94}},
      {"2000/1/4|www.cnn.com", {1, 654, 4, 47}},
      {"2000/1/4|www.cnn.com/health", {1, 301, 6, 52}},
      {"2000/1/20|www.cc.gatech.edu", {1, 32, 1, 12}},
  };
  EXPECT_EQ(Snapshot(reduced.value()), expected);
  EXPECT_EQ(stats.input_facts, 7u);
  EXPECT_EQ(stats.output_facts, 6u);
  EXPECT_EQ(stats.facts_aggregated, 4u);
}

TEST_F(ReduceTest, Figure3SnapshotAt2000_11_5) {
  auto reduced = Reduce(*ex_.mo, spec_, DaysFromCivil({2000, 11, 5}));
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999Q4|amazon.com", {2, 689, 3, 68}},   // fact_03
      {"1999Q4|cnn.com", {2, 2489, 7, 94}},     // fact_12
      {"2000/1|cnn.com", {2, 955, 10, 99}},     // fact_45
      {"2000/1/20|www.cc.gatech.edu", {1, 32, 1, 12}},  // fact_6
  };
  EXPECT_EQ(Snapshot(reduced.value()), expected);
}

TEST_F(ReduceTest, MergedFactNamesAndProvenanceMatchPaper) {
  auto reduced = Reduce(*ex_.mo, spec_, DaysFromCivil({2000, 11, 5}));
  ASSERT_TRUE(reduced.ok());
  const MultidimensionalObject& r = reduced.value();
  std::map<std::string, FactId> by_name;
  for (FactId f = 0; f < r.num_facts(); ++f) by_name[r.FactName(f)] = f;
  ASSERT_TRUE(by_name.count("fact_03"));
  ASSERT_TRUE(by_name.count("fact_12"));
  ASSERT_TRUE(by_name.count("fact_45"));
  ASSERT_TRUE(by_name.count("fact_6"));

  const std::vector<FactId>* prov = r.Provenance(by_name["fact_03"]);
  ASSERT_NE(prov, nullptr);
  EXPECT_EQ(*prov, (std::vector<FactId>{0, 3}));
  // a2 (index 1) is responsible for fact_03's granularity — the paper
  // requires being able to tell which action caused an aggregation.
  EXPECT_EQ(r.ResponsibleAction(by_name["fact_03"]), 1u);
  // fact_45 was aggregated by a1 (index 0).
  EXPECT_EQ(r.ResponsibleAction(by_name["fact_45"]), 0u);
  EXPECT_EQ(r.ResponsibleAction(by_name["fact_6"]), kNoAction);
}

TEST_F(ReduceTest, ReductionIsIdempotentAtFixedTime) {
  int64_t t = DaysFromCivil({2000, 11, 5});
  auto once = Reduce(*ex_.mo, spec_, t);
  ASSERT_TRUE(once.ok());
  auto twice = Reduce(once.value(), spec_, t);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Snapshot(once.value()), Snapshot(twice.value()));
}

TEST_F(ReduceTest, GradualReductionEqualsDirectReduction) {
  // Property (consequence of Growing + distributivity): reducing at 2000/6/5
  // and then at 2000/11/5 gives the same facts as reducing the original MO
  // directly at 2000/11/5.
  int64_t t1 = DaysFromCivil({2000, 6, 5});
  int64_t t2 = DaysFromCivil({2000, 11, 5});
  auto step = Reduce(*ex_.mo, spec_, t1);
  ASSERT_TRUE(step.ok());
  auto gradual = Reduce(step.value(), spec_, t2);
  ASSERT_TRUE(gradual.ok());
  auto direct = Reduce(*ex_.mo, spec_, t2);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Snapshot(gradual.value()), Snapshot(direct.value()));
  // Provenance survives the gradual path.
  std::map<std::string, FactId> by_name;
  const MultidimensionalObject& g = gradual.value();
  for (FactId f = 0; f < g.num_facts(); ++f) by_name[g.FactName(f)] = f;
  ASSERT_TRUE(by_name.count("fact_03"));
  EXPECT_EQ(*g.Provenance(by_name["fact_03"]), (std::vector<FactId>{0, 3}));
}

TEST_F(ReduceTest, EmptySpecificationIsIdentity) {
  ReductionSpecification empty;
  auto reduced = Reduce(*ex_.mo, empty, DaysFromCivil({2005, 1, 1}));
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(Snapshot(reduced.value()), Snapshot(*ex_.mo));
}

}  // namespace
}  // namespace dwred
