// Property tests for the seeded specification generator and the brute-force
// soundness oracle (src/testing/spec_gen.h), and the differential agreement
// between the operational NonCrossing/Growing checker (reduce/soundness.cc)
// and the oracle. The checker is conservative (the prover's Unknown answers
// reject), so agreement is directional:
//
//   checker accepts a spec   =>  the oracle finds no violation on any
//                                sampled timeline, and
//   oracle finds a violation =>  the checker rejected the spec.

#include "testing/spec_gen.h"

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "reduce/soundness.h"
#include "workload/clickstream.h"
#include "workload/retail.h"

namespace dwred {
namespace {

ClickstreamWorkload SmallClickstream() {
  ClickstreamConfig cfg;
  cfg.seed = 3;
  cfg.num_domains = 8;
  cfg.urls_per_domain = 3;
  cfg.num_clicks = 1500;
  cfg.span_days = 3 * 365;
  return MakeClickstream(cfg);
}

RetailWorkload SmallRetail() {
  RetailConfig cfg;
  cfg.seed = 9;
  cfg.num_categories = 3;
  cfg.brands_per_category = 2;
  cfg.skus_per_brand = 4;
  cfg.num_regions = 2;
  cfg.cities_per_region = 2;
  cfg.stores_per_city = 2;
  cfg.num_sales = 1500;
  cfg.span_days = 3 * 365;
  return MakeRetail(cfg);
}

TEST(SpecGen, DeterministicInSeed) {
  ClickstreamWorkload w = SmallClickstream();
  for (uint64_t seed : {1u, 2u, 99u}) {
    auto a = testing::GenerateSpec(*w.mo, seed);
    auto b = testing::GenerateSpec(*w.mo, seed);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value().size(), b.value().size());
    for (ActionId i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value().action(i).source_text,
                b.value().action(i).source_text);
    }
  }
}

TEST(SpecGen, SoundChainsPassTheOracle) {
  ClickstreamWorkload w = SmallClickstream();
  int64_t start = DaysFromCivil(w.config.start);
  auto cells = testing::SampleBottomCells(*w.mo, 77, 40);
  ASSERT_FALSE(cells.empty());
  for (uint64_t seed = 0; seed < 25; ++seed) {
    testing::SpecGenOptions opts;
    opts.num_actions = 2 + seed % 3;
    opts.sound_chain = true;
    auto spec = testing::GenerateSpec(*w.mo, seed, opts);
    ASSERT_TRUE(spec.ok()) << spec.status().message();
    testing::OracleReport r = testing::BruteForceOracle(
        *w.mo, spec.value(), cells, start, start + 6 * 365, /*day_step=*/7);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.detail << "\n"
                        << spec.value().action(0).source_text;
  }
}

TEST(SpecGen, RandomModeProducesBothSoundAndUnsoundSpecs) {
  ClickstreamWorkload w = SmallClickstream();
  int64_t start = DaysFromCivil(w.config.start);
  auto cells = testing::SampleBottomCells(*w.mo, 78, 30);
  size_t oracle_violations = 0;
  size_t oracle_clean = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto spec = testing::GenerateSpec(*w.mo, seed);
    ASSERT_TRUE(spec.ok()) << spec.status().message();
    testing::OracleReport r = testing::BruteForceOracle(
        *w.mo, spec.value(), cells, start, start + 5 * 365, /*day_step=*/11);
    r.ok() ? ++oracle_clean : ++oracle_violations;
  }
  // The generator must actually explore both sides of the property.
  EXPECT_GT(oracle_violations, 0u);
  EXPECT_GT(oracle_clean, 0u);
}

// The differential property, on both workload schemas: checker-accepted
// specs are oracle-clean, and oracle violations imply checker rejection
// (same implication, asserted from the side the evidence lives on).
template <typename Workload>
void CheckerOracleAgreement(const Workload& w, uint64_t seed_base) {
  int64_t start = DaysFromCivil(w.config.start);
  auto cells = testing::SampleBottomCells(*w.mo, seed_base, 30);
  ASSERT_FALSE(cells.empty());
  size_t accepted = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    testing::SpecGenOptions opts;
    opts.num_actions = 1 + seed % 4;
    opts.sound_chain = seed % 4 == 3;  // mix shapes
    auto spec = testing::GenerateSpec(*w.mo, seed_base + seed, opts);
    ASSERT_TRUE(spec.ok()) << spec.status().message();
    Status checker = ValidateSpecification(*w.mo, spec.value());
    if (!checker.ok()) continue;  // conservative rejection: nothing to assert
    ++accepted;
    testing::OracleReport r = testing::BruteForceOracle(
        *w.mo, spec.value(), cells, start, start + 6 * 365, /*day_step=*/5);
    EXPECT_TRUE(r.ok()) << "seed " << seed_base + seed
                        << ": checker accepted but oracle found: " << r.detail;
  }
  // The checker must accept *something* in the mix, or the agreement
  // property above is vacuous.
  EXPECT_GT(accepted, 0u);
}

TEST(SpecGen, CheckerOracleAgreementClickstream) {
  CheckerOracleAgreement(SmallClickstream(), 1000);
}

TEST(SpecGen, CheckerOracleAgreementRetail) {
  CheckerOracleAgreement(SmallRetail(), 2000);
}

}  // namespace
}  // namespace dwred
