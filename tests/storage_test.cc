// Columnar fact-table tests: append/read, physical deletion, cell
// compaction, byte accounting, and MO round trips.

#include "storage/fact_table.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"

namespace dwred {
namespace {

TEST(FactTableTest, AppendAndRead) {
  FactTable t(2, 3);
  std::vector<ValueId> c1 = {1, 2};
  std::vector<int64_t> m1 = {10, 20, 30};
  EXPECT_EQ(t.Append(c1, m1), 0u);
  std::vector<ValueId> c2 = {3, 4};
  std::vector<int64_t> m2 = {40, 50, 60};
  EXPECT_EQ(t.Append(c2, m2), 1u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Coord(0, 1), 2u);
  EXPECT_EQ(t.Measure(1, 2), 60);
  ValueId buf[2];
  t.ReadCoords(1, buf);
  EXPECT_EQ(buf[0], 3u);
  EXPECT_EQ(buf[1], 4u);
}

TEST(FactTableTest, EraseRowsCompacts) {
  FactTable t(1, 1);
  for (int i = 0; i < 10; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  std::vector<bool> erase(10, false);
  erase[0] = erase[3] = erase[9] = true;
  ASSERT_TRUE(t.EraseRows(erase).ok());
  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_EQ(t.Coord(0, 0), 1u);
  EXPECT_EQ(t.Coord(2, 0), 4u);
  EXPECT_EQ(t.Measure(6, 0), 8);
}

TEST(FactTableTest, EraseRowsRejectsStaleBitmap) {
  FactTable t(1, 1);
  for (int i = 0; i < 4; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  std::vector<bool> too_short(3, true);
  Status s = t.EraseRows(too_short);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::vector<bool> too_long(5, true);
  s = t.EraseRows(too_long);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The failed calls must not have touched the rows.
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST(FactTableTest, CompactCellsRejectsAggArityMismatch) {
  FactTable t(1, 2);
  std::vector<ValueId> c = {1};
  std::vector<int64_t> m = {1, 2};
  t.Append(c, m);
  std::vector<AggFn> one_agg = {AggFn::kSum};
  EXPECT_EQ(t.CompactCells(one_agg).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FactTableTest, AppendFromRejectsShapeMismatch) {
  IspExample ex = MakeIspExample();
  FactTable narrow(1, 4);
  EXPECT_EQ(narrow.AppendFrom(*ex.mo).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(narrow.num_rows(), 0u);
  FactTable wrong_meas(2, 1);
  EXPECT_EQ(wrong_meas.AppendFrom(*ex.mo).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(wrong_meas.num_rows(), 0u);
}

TEST(FactTableTest, CompactCellsFoldsDuplicates) {
  FactTable t(2, 2);
  std::vector<AggFn> aggs = {AggFn::kSum, AggFn::kMax};
  std::vector<ValueId> a = {1, 1};
  std::vector<ValueId> b = {1, 2};
  std::vector<int64_t> m1 = {5, 5};
  std::vector<int64_t> m2 = {7, 7};
  std::vector<int64_t> m3 = {1, 1};
  t.Append(a, m1);
  t.Append(b, m2);
  t.Append(a, m3);
  ASSERT_TRUE(t.CompactCells(aggs).ok());
  ASSERT_EQ(t.num_rows(), 2u);
  // Row for cell (1,1): sum 6, max 5.
  EXPECT_EQ(t.Measure(0, 0), 6);
  EXPECT_EQ(t.Measure(0, 1), 5);
  EXPECT_EQ(t.Measure(1, 0), 7);
}

TEST(FactTableTest, CompactIsNoopWithoutDuplicates) {
  FactTable t(1, 1);
  std::vector<AggFn> aggs = {AggFn::kSum};
  for (int i = 0; i < 5; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  ASSERT_TRUE(t.CompactCells(aggs).ok());
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST(FactTableTest, BytesAccounting) {
  FactTable t(2, 4);
  EXPECT_EQ(t.Bytes(), 0u);
  std::vector<ValueId> c = {0, 0};
  std::vector<int64_t> m = {0, 0, 0, 0};
  t.Append(c, m);
  EXPECT_EQ(t.Bytes(), 2 * sizeof(ValueId) + 4 * sizeof(int64_t));
}

TEST(FactTableTest, MoRoundTrip) {
  IspExample ex = MakeIspExample();
  FactTable t(2, 4);
  ASSERT_TRUE(t.AppendFrom(*ex.mo).ok());
  EXPECT_EQ(t.num_rows(), 7u);
  MultidimensionalObject back =
      t.ToMO("Click", ex.mo->dimensions(),
             std::vector<MeasureType>(ex.mo->measure_types()));
  ASSERT_EQ(back.num_facts(), 7u);
  for (FactId f = 0; f < 7; ++f) {
    EXPECT_EQ(back.Coord(f, 0), ex.mo->Coord(f, 0));
    EXPECT_EQ(back.Coord(f, 1), ex.mo->Coord(f, 1));
    EXPECT_EQ(back.Measure(f, 1), ex.mo->Measure(f, 1));
  }
}

}  // namespace
}  // namespace dwred
