// Columnar fact-table tests: append/read, physical deletion, cell
// compaction, byte accounting, and MO round trips.

#include "storage/fact_table.h"

#include <stdlib.h>

#include <gtest/gtest.h>

#include "mdm/paper_example.h"

namespace dwred {
namespace {

TEST(FactTableTest, AppendAndRead) {
  FactTable t(2, 3);
  std::vector<ValueId> c1 = {1, 2};
  std::vector<int64_t> m1 = {10, 20, 30};
  EXPECT_EQ(t.Append(c1, m1), 0u);
  std::vector<ValueId> c2 = {3, 4};
  std::vector<int64_t> m2 = {40, 50, 60};
  EXPECT_EQ(t.Append(c2, m2), 1u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Coord(0, 1), 2u);
  EXPECT_EQ(t.Measure(1, 2), 60);
  ValueId buf[2];
  t.ReadCoords(1, buf);
  EXPECT_EQ(buf[0], 3u);
  EXPECT_EQ(buf[1], 4u);
}

TEST(FactTableTest, EraseRowsCompacts) {
  FactTable t(1, 1);
  for (int i = 0; i < 10; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  std::vector<bool> erase(10, false);
  erase[0] = erase[3] = erase[9] = true;
  ASSERT_TRUE(t.EraseRows(erase).ok());
  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_EQ(t.Coord(0, 0), 1u);
  EXPECT_EQ(t.Coord(2, 0), 4u);
  EXPECT_EQ(t.Measure(6, 0), 8);
}

TEST(FactTableTest, EraseRowsRejectsStaleBitmap) {
  FactTable t(1, 1);
  for (int i = 0; i < 4; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  std::vector<bool> too_short(3, true);
  Status s = t.EraseRows(too_short);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::vector<bool> too_long(5, true);
  s = t.EraseRows(too_long);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The failed calls must not have touched the rows.
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST(FactTableTest, CompactCellsRejectsAggArityMismatch) {
  FactTable t(1, 2);
  std::vector<ValueId> c = {1};
  std::vector<int64_t> m = {1, 2};
  t.Append(c, m);
  std::vector<AggFn> one_agg = {AggFn::kSum};
  EXPECT_EQ(t.CompactCells(one_agg).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FactTableTest, AppendFromRejectsShapeMismatch) {
  IspExample ex = MakeIspExample();
  FactTable narrow(1, 4);
  EXPECT_EQ(narrow.AppendFrom(*ex.mo).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(narrow.num_rows(), 0u);
  FactTable wrong_meas(2, 1);
  EXPECT_EQ(wrong_meas.AppendFrom(*ex.mo).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(wrong_meas.num_rows(), 0u);
}

TEST(FactTableTest, CompactCellsFoldsDuplicates) {
  FactTable t(2, 2);
  std::vector<AggFn> aggs = {AggFn::kSum, AggFn::kMax};
  std::vector<ValueId> a = {1, 1};
  std::vector<ValueId> b = {1, 2};
  std::vector<int64_t> m1 = {5, 5};
  std::vector<int64_t> m2 = {7, 7};
  std::vector<int64_t> m3 = {1, 1};
  t.Append(a, m1);
  t.Append(b, m2);
  t.Append(a, m3);
  ASSERT_TRUE(t.CompactCells(aggs).ok());
  ASSERT_EQ(t.num_rows(), 2u);
  // Row for cell (1,1): sum 6, max 5.
  EXPECT_EQ(t.Measure(0, 0), 6);
  EXPECT_EQ(t.Measure(0, 1), 5);
  EXPECT_EQ(t.Measure(1, 0), 7);
}

TEST(FactTableTest, CompactIsNoopWithoutDuplicates) {
  FactTable t(1, 1);
  std::vector<AggFn> aggs = {AggFn::kSum};
  for (int i = 0; i < 5; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  ASSERT_TRUE(t.CompactCells(aggs).ok());
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST(FactTableTest, BytesAccounting) {
  FactTable t(2, 4);
  EXPECT_EQ(t.Bytes(), 0u);
  std::vector<ValueId> c = {0, 0};
  std::vector<int64_t> m = {0, 0, 0, 0};
  t.Append(c, m);
  EXPECT_EQ(t.Bytes(), 2 * sizeof(ValueId) + 4 * sizeof(int64_t));
}

TEST(FactTableTest, EraseRowsOnEmptyTable) {
  FactTable t(2, 1);
  EXPECT_TRUE(t.EraseRows({}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_segments(), 0u);
  // A sized bitmap against an empty table is stale.
  EXPECT_EQ(t.EraseRows(std::vector<bool>(1, true)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FactTableTest, EraseEveryRowDropsAllSegments) {
  FactTable t(1, 1, /*segment_rows=*/4);
  for (int i = 0; i < 10; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  ASSERT_EQ(t.num_segments(), 3u);
  ASSERT_TRUE(t.EraseRows(std::vector<bool>(10, true)).ok());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_segments(), 0u);
  EXPECT_EQ(t.Bytes(), 0u);
  // The table must be appendable again afterwards.
  std::vector<ValueId> c = {7};
  std::vector<int64_t> m = {7};
  EXPECT_EQ(t.Append(c, m), 0u);
  EXPECT_EQ(t.Coord(0, 0), 7u);
}

TEST(FactTableTest, SegmentSealingAndCrossBoundaryReads) {
  FactTable t(1, 1, /*segment_rows=*/3);
  for (int i = 0; i < 8; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(100 + i)};
    std::vector<int64_t> m = {i * 10};
    EXPECT_EQ(t.Append(c, m), static_cast<RowId>(i));
  }
  ASSERT_EQ(t.num_segments(), 3u);
  EXPECT_TRUE(t.SegmentSealed(0));
  EXPECT_TRUE(t.SegmentSealed(1));
  EXPECT_FALSE(t.SegmentSealed(2));  // tail: 2 of 3 rows
  EXPECT_EQ(t.SegmentBegin(1), 3u);
  EXPECT_EQ(t.SegmentBegin(2), 6u);
  // Logical ids address across segment boundaries transparently.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(t.Coord(i, 0), static_cast<ValueId>(100 + i));
    EXPECT_EQ(t.Measure(i, 0), i * 10);
  }
  // The cursor visits the same rows in the same order.
  std::vector<ValueId> seen;
  t.ForEachRow(2, 7, [&](RowId r, const FactTable::RowRef& row) {
    EXPECT_EQ(row.coord(0), static_cast<ValueId>(100 + r));
    seen.push_back(row.coord(0));
  });
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), 102u);
  EXPECT_EQ(seen.back(), 106u);
}

TEST(FactTableTest, CompactCellsAcrossSegmentBoundaries) {
  FactTable t(1, 1, /*segment_rows=*/2);
  std::vector<AggFn> aggs = {AggFn::kSum};
  // Duplicates of cell 5 land in three different segments.
  ValueId cs[] = {5, 1, 2, 5, 3, 5};
  for (int i = 0; i < 6; ++i) {
    std::vector<ValueId> c = {cs[i]};
    std::vector<int64_t> m = {1};
    t.Append(c, m);
  }
  ASSERT_EQ(t.num_segments(), 3u);
  auto folded = t.CompactCells(aggs);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded.value(), 2u);
  ASSERT_EQ(t.num_rows(), 4u);
  // First-occurrence order survives the rebuild; cell 5 folded 1+1+1.
  EXPECT_EQ(t.Coord(0, 0), 5u);
  EXPECT_EQ(t.Measure(0, 0), 3);
  EXPECT_EQ(t.Coord(1, 0), 1u);
  EXPECT_EQ(t.Coord(2, 0), 2u);
  EXPECT_EQ(t.Coord(3, 0), 3u);
  // The rebuild re-segments canonically: no tombstones anywhere.
  for (size_t s = 0; s < t.num_segments(); ++s) {
    EXPECT_EQ(t.SegmentTombstones(s), 0u);
  }
}

TEST(FactTableTest, ZoneMapsTrackAppends) {
  FactTable t(2, 1, /*segment_rows=*/4);
  ValueId ds[][2] = {{5, 9}, {3, 7}, {8, 2}, {6, 6}};
  for (auto& d : ds) {
    std::vector<ValueId> c = {d[0], d[1]};
    std::vector<int64_t> m = {static_cast<int64_t>(d[0]) - d[1]};
    t.Append(c, m);
  }
  ASSERT_EQ(t.num_segments(), 1u);
  EXPECT_EQ(t.SegmentDimMin(0, 0), 3u);
  EXPECT_EQ(t.SegmentDimMax(0, 0), 8u);
  EXPECT_EQ(t.SegmentDimMin(0, 1), 2u);
  EXPECT_EQ(t.SegmentDimMax(0, 1), 9u);
  EXPECT_EQ(t.SegmentMeasureMin(0, 0), -4);
  EXPECT_EQ(t.SegmentMeasureMax(0, 0), 6);
}

TEST(FactTableTest, ZoneMapsShrinkAfterEraseAndCompact) {
  // 8 rows in one segment; erasing the extremes must tighten the zone maps
  // whether the segment compacts (ratio >= 0.25) or defers tombstones.
  FactTable deferred(1, 1, /*segment_rows=*/16);
  FactTable compacted(1, 1, /*segment_rows=*/16);
  for (int i = 0; i < 8; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    deferred.Append(c, m);
    compacted.Append(c, m);
  }
  // One tombstone out of 8 (ratio 0.125 < 0.25): deferred.
  std::vector<bool> one(8, false);
  one[0] = true;
  ASSERT_TRUE(deferred.EraseRows(one).ok());
  ASSERT_EQ(deferred.num_segments(), 1u);
  EXPECT_EQ(deferred.SegmentTombstones(0), 1u);
  EXPECT_EQ(deferred.SegmentLiveRows(0), 7u);
  EXPECT_EQ(deferred.SegmentPhysicalRows(0), 8u);
  EXPECT_EQ(deferred.SegmentDimMin(0, 0), 1u);  // zone excludes the tombstone
  EXPECT_EQ(deferred.SegmentMeasureMin(0, 0), 1);
  // Logical reads skip the tombstone.
  EXPECT_EQ(deferred.Coord(0, 0), 1u);
  EXPECT_EQ(deferred.Measure(6, 0), 7);

  // Four tombstones out of 8 (ratio 0.5 >= 0.25): compacted in place.
  std::vector<bool> four(8, false);
  four[0] = four[1] = four[6] = four[7] = true;
  ASSERT_TRUE(compacted.EraseRows(four).ok());
  ASSERT_EQ(compacted.num_segments(), 1u);
  EXPECT_EQ(compacted.SegmentTombstones(0), 0u);
  EXPECT_EQ(compacted.SegmentLiveRows(0), 4u);
  EXPECT_EQ(compacted.SegmentPhysicalRows(0), 4u);
  EXPECT_EQ(compacted.SegmentDimMin(0, 0), 2u);
  EXPECT_EQ(compacted.SegmentDimMax(0, 0), 5u);
  EXPECT_EQ(compacted.SegmentMeasureMax(0, 0), 5);
  // Byte accounting follows the physical rows.
  EXPECT_EQ(compacted.Bytes(), 4 * (sizeof(ValueId) + sizeof(int64_t)));
  EXPECT_EQ(deferred.Bytes(), 8 * (sizeof(ValueId) + sizeof(int64_t)));
}

TEST(FactTableTest, ErasingIntoTombstonedSegmentStaysConsistent) {
  FactTable t(1, 1, /*segment_rows=*/16);
  for (int i = 0; i < 16; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  // First erase: 2/16 dead (deferred).
  std::vector<bool> e1(16, false);
  e1[3] = e1[12] = true;
  ASSERT_TRUE(t.EraseRows(e1).ok());
  ASSERT_EQ(t.num_rows(), 14u);
  EXPECT_EQ(t.SegmentTombstones(0), 2u);
  // Second erase addresses *logical* ids over the surviving rows: kill the
  // new row 0 (value 0) and row 13 (value 15) → 4/16 dead, ratio 0.25 →
  // compaction.
  std::vector<bool> e2(14, false);
  e2[0] = e2[13] = true;
  ASSERT_TRUE(t.EraseRows(e2).ok());
  ASSERT_EQ(t.num_rows(), 12u);
  EXPECT_EQ(t.SegmentTombstones(0), 0u);
  EXPECT_EQ(t.SegmentPhysicalRows(0), 12u);
  EXPECT_EQ(t.SegmentDimMin(0, 0), 1u);
  EXPECT_EQ(t.SegmentDimMax(0, 0), 14u);
  std::vector<ValueId> expect = {1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 13, 14};
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(t.Coord(i, 0), expect[i]);
  }
}

TEST(FactTableTest, SegmentRowsFromEnvironment) {
  // Restores the variable on scope exit so later tests see the default.
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("DWRED_SEGMENT_ROWS"); }
  } guard;

  // A valid value becomes the default row budget of env-configured tables.
  ::setenv("DWRED_SEGMENT_ROWS", "32", /*overwrite=*/1);
  EXPECT_EQ(FactTable(1, 1).segment_rows(), 32u);
  // Whitespace is tolerated (the DWRED_THREADS convention).
  ::setenv("DWRED_SEGMENT_ROWS", "  64 ", /*overwrite=*/1);
  EXPECT_EQ(FactTable(1, 1).segment_rows(), 64u);
  // An explicit constructor budget always wins over the environment.
  EXPECT_EQ(FactTable(1, 1, /*segment_rows=*/8).segment_rows(), 8u);
  // Garbage falls back to the default with a warning.
  ::setenv("DWRED_SEGMENT_ROWS", "banana", /*overwrite=*/1);
  EXPECT_EQ(FactTable(1, 1).segment_rows(), FactTable::kDefaultSegmentRows);
  // Out-of-range values clamp to the validation bounds.
  ::setenv("DWRED_SEGMENT_ROWS", "1", /*overwrite=*/1);
  EXPECT_EQ(FactTable(1, 1).segment_rows(), FactTable::kMinSegmentRows);
  ::setenv("DWRED_SEGMENT_ROWS", "99999999999", /*overwrite=*/1);
  EXPECT_EQ(FactTable(1, 1).segment_rows(), FactTable::kMaxSegmentRows);
  // Empty/unset means the built-in default.
  ::setenv("DWRED_SEGMENT_ROWS", "", /*overwrite=*/1);
  EXPECT_EQ(FactTable(1, 1).segment_rows(), FactTable::kDefaultSegmentRows);
  ::unsetenv("DWRED_SEGMENT_ROWS");
  EXPECT_EQ(FactTable(1, 1).segment_rows(), FactTable::kDefaultSegmentRows);

  // The env budget really governs sealing.
  ::setenv("DWRED_SEGMENT_ROWS", "16", /*overwrite=*/1);
  FactTable t(1, 1);
  std::vector<ValueId> c(1);
  std::vector<int64_t> m(1);
  for (int i = 0; i < 40; ++i) {
    c[0] = static_cast<ValueId>(i);
    m[0] = i;
    t.Append(c, m);
  }
  EXPECT_EQ(t.num_segments(), 3u);
  EXPECT_TRUE(t.SegmentSealed(0));
  EXPECT_EQ(t.SegmentLiveRows(0), 16u);
}

TEST(FactTableTest, MoRoundTrip) {
  IspExample ex = MakeIspExample();
  FactTable t(2, 4);
  ASSERT_TRUE(t.AppendFrom(*ex.mo).ok());
  EXPECT_EQ(t.num_rows(), 7u);
  MultidimensionalObject back =
      t.ToMO("Click", ex.mo->dimensions(),
             std::vector<MeasureType>(ex.mo->measure_types()));
  ASSERT_EQ(back.num_facts(), 7u);
  for (FactId f = 0; f < 7; ++f) {
    EXPECT_EQ(back.Coord(f, 0), ex.mo->Coord(f, 0));
    EXPECT_EQ(back.Coord(f, 1), ex.mo->Coord(f, 1));
    EXPECT_EQ(back.Measure(f, 1), ex.mo->Measure(f, 1));
  }
}

}  // namespace
}  // namespace dwred
