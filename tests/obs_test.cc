// Tests for the dwred::obs subsystem: counters under contention, histogram
// bucket semantics, exposition-format stability, tracing, and logging.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dwred::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetAllForTest();
    TraceBuffer::Global().Disable();
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    TraceBuffer::Global().Disable();
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
};

TEST_F(ObsTest, ConcurrentCounterIncrementsSumExactly) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  Counter& c = MetricsRegistry::Global().GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST_F(ObsTest, HistogramBucketBoundsAreInclusive) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.num_bounds(), 3u);

  h.Record(1.0);  // exactly on a bound: le="1" is inclusive
  h.Record(2.0);  // le="2"
  h.Record(2.5);  // le="4"
  h.Record(5.0);  // above every bound: +Inf

  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf slot

  // Cumulative counts are monotone and end at the total.
  EXPECT_EQ(h.CumulativeCount(0), 1u);
  EXPECT_EQ(h.CumulativeCount(1), 2u);
  EXPECT_EQ(h.CumulativeCount(2), 3u);
  EXPECT_EQ(h.CumulativeCount(3), 4u);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0 + 2.0 + 2.5 + 5.0);
}

TEST_F(ObsTest, RegistryReturnsSameObjectForSameName) {
  Counter& a = MetricsRegistry::Global().GetCounter("test_same_total");
  Counter& b = MetricsRegistry::Global().GetCounter("test_same_total");
  EXPECT_EQ(&a, &b);
  Histogram& h1 =
      MetricsRegistry::Global().GetHistogram("test_same_hist", {1.0, 2.0});
  // Later bounds are ignored; the registered histogram wins.
  Histogram& h2 =
      MetricsRegistry::Global().GetHistogram("test_same_hist", {7.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.num_bounds(), 2u);
}

// A minimal parser for the Prometheus text format: every non-comment line
// must be "<name>[{labels}] <value>"; returns name -> value for plain lines.
std::map<std::string, std::string> ParseExposition(const std::string& text) {
  std::map<std::string, std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << "unexpected comment: " << line;
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "no value on line: " << line;
      continue;
    }
    std::string key = line.substr(0, space);
    std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    out[key] = value;
  }
  return out;
}

TEST_F(ObsTest, RenderTextIsStableAndParseable) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test_render_total", "a test counter").Increment(3);
  reg.GetGauge("test_render_gauge").Set(-7);
  reg.GetHistogram("test_render_seconds", {0.5, 1.0}).Record(0.75);

  std::string first = reg.RenderText();
  std::string second = reg.RenderText();
  EXPECT_EQ(first, second) << "exposition must be deterministic";

  std::map<std::string, std::string> samples = ParseExposition(first);
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  EXPECT_EQ(samples.at("test_render_total"), "3");
  EXPECT_EQ(samples.at("test_render_gauge"), "-7");
  EXPECT_EQ(samples.at("test_render_seconds_bucket{le=\"0.5\"}"), "0");
  EXPECT_EQ(samples.at("test_render_seconds_bucket{le=\"1\"}"), "1");
  EXPECT_EQ(samples.at("test_render_seconds_bucket{le=\"+Inf\"}"), "1");
  EXPECT_EQ(samples.at("test_render_seconds_count"), "1");
}

TEST_F(ObsTest, RenderJsonContainsRegisteredMetrics) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test_json_total").Increment(2);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\""), std::string::npos);
}

TEST_F(ObsTest, TraceSpanNestedScopesEmitInnerFirst) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  TraceBuffer::Global().Enable(16);
  {
    TraceSpan outer("outer");
    outer.AddField("facts", 42);
    {
      TraceSpan inner("inner");
    }
  }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // The inner scope closes first, so it lands in the buffer first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  ASSERT_EQ(events[1].fields.size(), 1u);
  EXPECT_EQ(events[1].fields[0].first, "facts");
  EXPECT_EQ(events[1].fields[0].second, 42);
  EXPECT_GE(events[0].duration_us, 0);
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
}

TEST_F(ObsTest, TraceBufferRingOverwritesOldest) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  TraceBuffer::Global().Enable(3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.name = "e" + std::to_string(i);
    TraceBuffer::Global().Record(std::move(ev));
  }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");

  std::string dump = TraceBuffer::Global().DumpJsonLines();
  EXPECT_NE(dump.find("\"name\":\"e4\""), std::string::npos);
  EXPECT_EQ(dump.find("\"name\":\"e0\""), std::string::npos);
}

TEST_F(ObsTest, TraceSpanRecordsIntoHistogram) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test_span_seconds", DefaultLatencyBuckets());
  uint64_t before = h.Count();
  { TraceSpan span("timed", &h); }
  EXPECT_EQ(h.Count(), before + 1);
}

TEST_F(ObsTest, LoggerRespectsMinLevelAndSink) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, std::string_view text) {
    captured.emplace_back(level, std::string(text));
  });
  SetMinLogLevel(LogLevel::kWarn);

  DWRED_LOG(Info) << "dropped " << 1;
  DWRED_LOG(Error) << "kept " << 2;

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kError);
  EXPECT_NE(captured[0].second.find("kept 2"), std::string::npos);
  EXPECT_NE(captured[0].second.find("obs_test.cc:"), std::string::npos);
}

TEST_F(ObsTest, ResetAllForTestKeepsReferencesValid) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_reset_total");
  c.Increment(5);
  MetricsRegistry::Global().ResetAllForTest();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();  // the reference must still be live
  if (kObsEnabled) {
    EXPECT_EQ(c.Value(), 1u);
  }
}

}  // namespace
}  // namespace dwred::obs
