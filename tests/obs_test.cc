// Tests for the dwred::obs subsystem: counters under contention, histogram
// bucket semantics, exposition-format stability, tracing, and logging.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dwred::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetAllForTest();
    TraceBuffer::Global().Disable();
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    TraceBuffer::Global().Disable();
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
};

TEST_F(ObsTest, ConcurrentCounterIncrementsSumExactly) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  Counter& c = MetricsRegistry::Global().GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST_F(ObsTest, HistogramBucketBoundsAreInclusive) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.num_bounds(), 3u);

  h.Record(1.0);  // exactly on a bound: le="1" is inclusive
  h.Record(2.0);  // le="2"
  h.Record(2.5);  // le="4"
  h.Record(5.0);  // above every bound: +Inf

  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf slot

  // Cumulative counts are monotone and end at the total.
  EXPECT_EQ(h.CumulativeCount(0), 1u);
  EXPECT_EQ(h.CumulativeCount(1), 2u);
  EXPECT_EQ(h.CumulativeCount(2), 3u);
  EXPECT_EQ(h.CumulativeCount(3), 4u);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0 + 2.0 + 2.5 + 5.0);
}

TEST_F(ObsTest, RegistryReturnsSameObjectForSameName) {
  Counter& a = MetricsRegistry::Global().GetCounter("test_same_total");
  Counter& b = MetricsRegistry::Global().GetCounter("test_same_total");
  EXPECT_EQ(&a, &b);
  Histogram& h1 =
      MetricsRegistry::Global().GetHistogram("test_same_hist", {1.0, 2.0});
  // Later bounds are ignored; the registered histogram wins.
  Histogram& h2 =
      MetricsRegistry::Global().GetHistogram("test_same_hist", {7.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.num_bounds(), 2u);
}

// A minimal parser for the Prometheus text format: every non-comment line
// must be "<name>[{labels}] <value>"; returns name -> value for plain lines.
std::map<std::string, std::string> ParseExposition(const std::string& text) {
  std::map<std::string, std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << "unexpected comment: " << line;
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "no value on line: " << line;
      continue;
    }
    std::string key = line.substr(0, space);
    std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    out[key] = value;
  }
  return out;
}

TEST_F(ObsTest, RenderTextIsStableAndParseable) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test_render_total", "a test counter").Increment(3);
  reg.GetGauge("test_render_gauge").Set(-7);
  reg.GetHistogram("test_render_seconds", {0.5, 1.0}).Record(0.75);

  std::string first = reg.RenderText();
  std::string second = reg.RenderText();
  EXPECT_EQ(first, second) << "exposition must be deterministic";

  std::map<std::string, std::string> samples = ParseExposition(first);
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  EXPECT_EQ(samples.at("test_render_total"), "3");
  EXPECT_EQ(samples.at("test_render_gauge"), "-7");
  EXPECT_EQ(samples.at("test_render_seconds_bucket{le=\"0.5\"}"), "0");
  EXPECT_EQ(samples.at("test_render_seconds_bucket{le=\"1\"}"), "1");
  EXPECT_EQ(samples.at("test_render_seconds_bucket{le=\"+Inf\"}"), "1");
  EXPECT_EQ(samples.at("test_render_seconds_count"), "1");
}

TEST_F(ObsTest, RenderJsonContainsRegisteredMetrics) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test_json_total").Increment(2);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\""), std::string::npos);
}

TEST_F(ObsTest, TraceSpanNestedScopesEmitInnerFirst) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  TraceBuffer::Global().Enable(16);
  {
    TraceSpan outer("outer");
    outer.AddField("facts", 42);
    {
      TraceSpan inner("inner");
    }
  }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // The inner scope closes first, so it lands in the buffer first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  ASSERT_EQ(events[1].fields.size(), 1u);
  EXPECT_EQ(events[1].fields[0].first, "facts");
  EXPECT_EQ(events[1].fields[0].second, 42);
  EXPECT_GE(events[0].duration_us, 0);
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
}

TEST_F(ObsTest, TraceBufferRingOverwritesOldest) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  TraceBuffer::Global().Enable(3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.name = "e" + std::to_string(i);
    TraceBuffer::Global().Record(std::move(ev));
  }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");

  std::string dump = TraceBuffer::Global().DumpJsonLines();
  EXPECT_NE(dump.find("\"name\":\"e4\""), std::string::npos);
  EXPECT_EQ(dump.find("\"name\":\"e0\""), std::string::npos);
}

TEST_F(ObsTest, TraceSpanRecordsIntoHistogram) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test_span_seconds", DefaultLatencyBuckets());
  uint64_t before = h.Count();
  { TraceSpan span("timed", &h); }
  EXPECT_EQ(h.Count(), before + 1);
}

TEST_F(ObsTest, LoggerRespectsMinLevelAndSink) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, std::string_view text) {
    captured.emplace_back(level, std::string(text));
  });
  SetMinLogLevel(LogLevel::kWarn);

  DWRED_LOG(Info) << "dropped " << 1;
  DWRED_LOG(Error) << "kept " << 2;

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kError);
  EXPECT_NE(captured[0].second.find("kept 2"), std::string::npos);
  EXPECT_NE(captured[0].second.find("obs_test.cc:"), std::string::npos);
}

TEST_F(ObsTest, SpanOwnsDynamicName) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  TraceBuffer::Global().Enable(16);
  std::unique_ptr<TraceSpan> span;
  {
    // The source string dies before the span closes: the span must own its
    // copy (no "name must outlive the span" contract).
    std::string name = "dynamic/" + std::to_string(7);
    span = std::make_unique<TraceSpan>(name);
  }
  span.reset();
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "dynamic/7");
}

TEST_F(ObsTest, TraceContextPropagatesAcrossPoolWorkers) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  exec::ThreadPool::ResetGlobal(4);
  TraceBuffer::Global().Enable(256);
  TraceContext root_ctx;
  {
    TraceSpan root("pool.root");
    root_ctx = root.context();
    exec::ThreadPool::Global().ParallelFor(
        16, /*grain=*/1, [](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            TraceSpan child("pool.child/" + std::to_string(i));
          }
        });
  }
  ASSERT_NE(root_ctx.trace_id, 0u);

  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  std::set<uint64_t> span_ids;
  size_t children = 0;
  for (const TraceEvent& ev : events) {
    EXPECT_TRUE(span_ids.insert(ev.span_id).second) << "span ids must be unique";
    if (ev.name.rfind("pool.child/", 0) != 0) continue;
    ++children;
    // Every child parented under the submitting span, no matter which worker
    // (or the submitter itself) ran its shard.
    EXPECT_EQ(ev.trace_id, root_ctx.trace_id) << ev.name;
    EXPECT_EQ(ev.parent_id, root_ctx.span_id) << ev.name;
  }
  EXPECT_EQ(children, 16u);
  exec::ThreadPool::ResetGlobal(2);
}

// Pool workers hammer a deliberately tiny ring concurrently: the buffer must
// stay bounded at its capacity with every surviving event intact. Runs under
// TSan in the sanitizer suite (tools/run_tier1.sh).
TEST_F(ObsTest, ConcurrentSpansFromPoolWorkersWrapTheRing) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  exec::ThreadPool::ResetGlobal(8);
  constexpr size_t kCapacity = 64;
  TraceBuffer::Global().Enable(kCapacity);
  TraceContext root_ctx;
  {
    TraceSpan root("stress.root");
    root_ctx = root.context();
    exec::ThreadPool::Global().ParallelFor(
        64, /*grain=*/1, [](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            for (int j = 0; j < 8; ++j) {
              TraceSpan span("stress.span");
            }
          }
        });
  }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), kCapacity) << "ring must stay bounded";
  for (const TraceEvent& ev : events) {
    // The root span closed last, so every survivor is a worker span carrying
    // the root's trace, or the root itself.
    EXPECT_EQ(ev.trace_id, root_ctx.trace_id);
    EXPECT_GE(ev.duration_us, 0);
    EXPECT_FALSE(ev.name.empty());
  }
  exec::ThreadPool::ResetGlobal(2);
}

TEST_F(ObsTest, TraceJsonLinesRoundTripAndTreeRender) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  TraceBuffer::Global().Enable(16);
  {
    TraceSpan outer("outer");
    outer.AddField("rows", 7);
    { TraceSpan inner("inner"); }
  }
  std::vector<TraceEvent> original = TraceBuffer::Global().Snapshot();
  std::string dump = TraceBuffer::Global().DumpJsonLines();

  std::vector<TraceEvent> parsed;
  ASSERT_TRUE(ParseTraceJsonLines(dump, &parsed));
  ASSERT_EQ(parsed.size(), original.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, original[i].name);
    EXPECT_EQ(parsed[i].trace_id, original[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, original[i].span_id);
    EXPECT_EQ(parsed[i].parent_id, original[i].parent_id);
    EXPECT_EQ(parsed[i].duration_us, original[i].duration_us);
  }
  // The structured field survives the round trip.
  ASSERT_EQ(parsed[1].fields.size(), 1u);
  EXPECT_EQ(parsed[1].fields[0].first, "rows");
  EXPECT_EQ(parsed[1].fields[0].second, 7);

  // The tree renders parents above indented children.
  std::string tree = RenderTraceTree(parsed);
  size_t outer_pos = tree.find("outer");
  size_t inner_pos = tree.find("inner");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_NE(tree.find("trace "), std::string::npos);

  // Garbage input parses nothing.
  std::vector<TraceEvent> none;
  EXPECT_FALSE(ParseTraceJsonLines("not a trace\nstill not\n", &none));
  EXPECT_TRUE(none.empty());
}

TEST_F(ObsTest, ParseTraceJsonLinesSkipsMalformedLinesAndKeepsTheRest) {
  // A trace file truncated mid-write or hand-edited must degrade to
  // skip-and-report: every parseable line survives, no crash, no wedge.
  const std::string text =
      "{\"name\":\"good\",\"trace\":1,\"span\":2,\"parent\":0,"
      "\"start_us\":10,\"dur_us\":5}\n"
      "this line is garbage\n"
      "{\"no_name_key\":1,\"trace\":1,\"span\":9}\n"
      "{\"name\":\"truncated\",\"trace\":1,\"span\":3,\"par\n"
      "{\"name\":\"also_good\",\"trace\":1,\"span\":4,\"parent\":2,"
      "\"start_us\":12,\"dur_us\":1}\n";
  std::vector<TraceEvent> events;
  ASSERT_TRUE(ParseTraceJsonLines(text, &events));
  // The garbage line and the name-less object are dropped; the truncated
  // line still carries a complete name field so it parses with what it has.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "good");
  EXPECT_EQ(events[1].name, "truncated");
  EXPECT_EQ(events[1].parent_id, 0u);  // the torn key is ignored
  EXPECT_EQ(events[2].name, "also_good");
  // The surviving events still render.
  std::string tree = RenderTraceTree(events);
  EXPECT_NE(tree.find("good"), std::string::npos);
  EXPECT_NE(tree.find("also_good"), std::string::npos);
}

TEST_F(ObsTest, ParseTraceJsonLinesMissingIdsRenderAsUntraced) {
  const std::string text =
      "{\"name\":\"orphan\",\"dur_us\":3}\n"
      "{\"name\":\"rooted\",\"trace\":5,\"span\":6,\"dur_us\":4}\n";
  std::vector<TraceEvent> events;
  ASSERT_TRUE(ParseTraceJsonLines(text, &events));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 0u);
  std::string tree = RenderTraceTree(events);
  EXPECT_NE(tree.find("(untraced)"), std::string::npos);
  EXPECT_NE(tree.find("orphan"), std::string::npos);
  EXPECT_NE(tree.find("trace 5"), std::string::npos);
}

TEST_F(ObsTest, RenderTraceTreeSurvivesDuplicateSpanIdsAndParentCycles) {
  // Duplicate span ids can make an event its own ancestor; the renderer
  // must terminate (each event renders at most once) instead of recursing
  // forever. Regression test for the cycle guard in RenderTraceTree.
  const std::string text =
      "{\"name\":\"root\",\"trace\":1,\"span\":5,\"parent\":0,"
      "\"start_us\":1,\"dur_us\":9}\n"
      "{\"name\":\"self_child\",\"trace\":1,\"span\":5,\"parent\":5,"
      "\"start_us\":2,\"dur_us\":1}\n"
      "{\"name\":\"mutual_a\",\"trace\":2,\"span\":7,\"parent\":8,"
      "\"start_us\":3,\"dur_us\":1}\n"
      "{\"name\":\"mutual_b\",\"trace\":2,\"span\":8,\"parent\":7,"
      "\"start_us\":4,\"dur_us\":1}\n";
  std::vector<TraceEvent> events;
  ASSERT_TRUE(ParseTraceJsonLines(text, &events));
  ASSERT_EQ(events.size(), 4u);
  std::string tree = RenderTraceTree(events);  // must return, not recurse
  EXPECT_NE(tree.find("root"), std::string::npos);
  // Each event appears at most once.
  size_t first = tree.find("self_child");
  if (first != std::string::npos) {
    EXPECT_EQ(tree.find("self_child", first + 1), std::string::npos);
  }
}

TEST_F(ObsTest, BuildInfoAndUptimeGaugesAreExposed) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  std::string text = MetricsRegistry::Global().RenderText();
  // dwred_build_info carries its labels in the text exposition and is always
  // 1 (re-asserted at render time, so ResetAllForTest cannot zero it away).
  EXPECT_NE(text.find("dwred_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("build_type=\""), std::string::npos);
  EXPECT_NE(text.find("compiler=\""), std::string::npos);
  std::map<std::string, std::string> samples = ParseExposition(text);
  bool saw_build_info = false;
  for (const auto& [key, value] : samples) {
    if (key.rfind("dwred_build_info{", 0) == 0) {
      saw_build_info = true;
      EXPECT_EQ(value, "1");
    }
  }
  EXPECT_TRUE(saw_build_info);
  ASSERT_TRUE(samples.count("dwred_uptime_seconds"));
  EXPECT_GE(std::stoll(samples.at("dwred_uptime_seconds")), 0);
  // JSON keys stay label-free.
  std::string json = MetricsRegistry::Global().RenderJson();
  EXPECT_NE(json.find("\"dwred_build_info\""), std::string::npos);
  EXPECT_NE(json.find("\"dwred_uptime_seconds\""), std::string::npos);
}

TEST_F(ObsTest, ConstLabelsRenderInTextExpositionOnly) {
  if (!kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test_labeled_total").Increment(2);
  reg.SetConstLabels("test_labeled_total", "shard=\"a\"");
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("test_labeled_total{shard=\"a\"} 2"), std::string::npos);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"test_labeled_total\":2"), std::string::npos);
}

TEST_F(ObsTest, ResetAllForTestKeepsReferencesValid) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_reset_total");
  c.Increment(5);
  MetricsRegistry::Global().ResetAllForTest();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();  // the reference must still be live
  if (kObsEnabled) {
    EXPECT_EQ(c.Value(), 1u);
  }
}

}  // namespace
}  // namespace dwred::obs
