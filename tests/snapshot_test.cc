// Binary-snapshot round-trip tests: raw and reduced warehouses (names,
// provenance, responsible actions, NOW-relative specifications), workload
// scale, and corruption handling.

#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>

#include "io/atomic_file.h"
#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "workload/clickstream.h"

namespace dwred {
namespace {

ReductionSpecification PaperSpec(const MultidimensionalObject& mo) {
  ReductionSpecification spec;
  spec.Add(ParseAction(mo, paper::kA1, "a1").take());
  spec.Add(ParseAction(mo, paper::kA2, "a2").take());
  return spec;
}

void ExpectSameFacts(const MultidimensionalObject& a,
                     const MultidimensionalObject& b) {
  ASSERT_EQ(a.num_facts(), b.num_facts());
  ASSERT_EQ(a.num_dimensions(), b.num_dimensions());
  ASSERT_EQ(a.num_measures(), b.num_measures());
  for (FactId f = 0; f < a.num_facts(); ++f) {
    for (DimensionId d = 0; d < a.num_dimensions(); ++d) {
      EXPECT_EQ(a.Coord(f, d), b.Coord(f, d)) << f;
      EXPECT_EQ(a.dimension(d)->value_name(a.Coord(f, d)),
                b.dimension(d)->value_name(b.Coord(f, d)));
    }
    for (MeasureId m = 0; m < a.num_measures(); ++m) {
      EXPECT_EQ(a.Measure(f, m), b.Measure(f, m));
    }
    EXPECT_EQ(a.FactName(f), b.FactName(f));
  }
}

TEST(SnapshotTest, RawWarehouseRoundTrip) {
  IspExample ex = MakeIspExample();
  ReductionSpecification spec = PaperSpec(*ex.mo);
  std::string bytes = SaveWarehouse(*ex.mo, spec);
  auto loaded = LoadWarehouse(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameFacts(*ex.mo, *loaded.value().mo);
  ASSERT_EQ(loaded.value().spec.size(), 2u);
  EXPECT_EQ(loaded.value().spec.action(0).name, "a1");
}

TEST(SnapshotTest, ReducedWarehouseKeepsProvenanceAndResumesReduction) {
  IspExample ex = MakeIspExample();
  ReductionSpecification spec = PaperSpec(*ex.mo);
  auto mid = Reduce(*ex.mo, spec, DaysFromCivil({2000, 6, 5})).take();

  auto loaded = LoadWarehouse(SaveWarehouse(mid, spec));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameFacts(mid, *loaded.value().mo);

  // Provenance of the merged fact survived.
  bool found = false;
  for (FactId f = 0; f < loaded.value().mo->num_facts(); ++f) {
    if (loaded.value().mo->FactName(f) == "fact_12") {
      const std::vector<FactId>* prov = loaded.value().mo->Provenance(f);
      ASSERT_NE(prov, nullptr);
      EXPECT_EQ(*prov, (std::vector<FactId>{1, 2}));
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // The restored warehouse continues the reduction exactly like the
  // original (the restart scenario the snapshot exists for).
  auto after_restart = Reduce(*loaded.value().mo, loaded.value().spec,
                              DaysFromCivil({2000, 11, 5}))
                           .take();
  auto without_restart =
      Reduce(mid, spec, DaysFromCivil({2000, 11, 5})).take();
  ExpectSameFacts(without_restart, after_restart);
}

TEST(SnapshotTest, TimeGranulesSurvive) {
  IspExample ex = MakeIspExample();
  ReductionSpecification empty;
  auto loaded = LoadWarehouse(SaveWarehouse(*ex.mo, empty));
  ASSERT_TRUE(loaded.ok());
  const Dimension& time = *loaded.value().mo->dimension(ex.time_dim);
  ASSERT_TRUE(time.is_time());
  EXPECT_NE(time.FindTimeValue(QuarterGranule(1999, 4)), kInvalidValue);
  EXPECT_NE(time.FindTimeValue(WeekGranule(2000, 3)), kInvalidValue);
  // New values can still materialize after the restore.
  EXPECT_TRUE(
      loaded.value().mo->dimension(ex.time_dim)
          ->EnsureTimeValue(DayGranule(CivilDate{2001, 2, 3}))
          .ok());
}

TEST(SnapshotTest, WorkloadScaleRoundTrip) {
  ClickstreamConfig cfg;
  cfg.num_clicks = 5000;
  ClickstreamWorkload w = MakeClickstream(cfg);
  ReductionSpecification empty;
  auto loaded = LoadWarehouse(SaveWarehouse(*w.mo, empty));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().mo->num_facts(), 5000u);
  ExpectSameFacts(*w.mo, *loaded.value().mo);
}

TEST(SnapshotTest, CorruptionIsDetected) {
  IspExample ex = MakeIspExample();
  ReductionSpecification spec = PaperSpec(*ex.mo);
  std::string bytes = SaveWarehouse(*ex.mo, spec);

  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(LoadWarehouse(bad).ok());
  // Truncation at every eighth byte must error, never crash.
  for (size_t cut = 0; cut < bytes.size(); cut += 8) {
    EXPECT_FALSE(LoadWarehouse(std::string_view(bytes).substr(0, cut)).ok());
  }
  // Trailing garbage.
  EXPECT_FALSE(LoadWarehouse(bytes + "junk").ok());
}

TEST(SnapshotTest, BitFlipsAreRejectedByChecksum) {
  IspExample ex = MakeIspExample();
  ReductionSpecification spec = PaperSpec(*ex.mo);
  std::string bytes = SaveWarehouse(*ex.mo, spec);

  // Fuzz-lite corpus: flip one bit at a stride of prime 7 across the whole
  // image (header, body, and CRC trailer alike). Every mutant must be
  // rejected with a Status — never accepted, never crash.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string mutant = bytes;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x01);
    EXPECT_FALSE(LoadWarehouse(mutant).ok()) << "flip at byte " << pos;
  }

  // A mid-image flip with a stale trailer is diagnosed as corruption, not as
  // some downstream parse error.
  std::string mid = bytes;
  mid[bytes.size() / 2] = static_cast<char>(mid[bytes.size() / 2] ^ 0x10);
  auto loaded = LoadWarehouse(mid);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
      << loaded.status().ToString();
}

TEST(SnapshotTest, RestampedCorruptionNeverCrashes) {
  // Adversarial variant: corrupt the body and then re-stamp a valid CRC so
  // the mutant reaches the structural parser. The parser may reject it or —
  // for flips in plain payload bytes — accept a different warehouse, but it
  // must never crash or read out of bounds.
  IspExample ex = MakeIspExample();
  ReductionSpecification spec = PaperSpec(*ex.mo);
  std::string bytes = SaveWarehouse(*ex.mo, spec);
  for (size_t pos = 8; pos + 4 < bytes.size(); pos += 11) {
    std::string mutant = bytes;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x80);
    uint32_t crc =
        Crc32(std::string_view(mutant).substr(0, mutant.size() - 4));
    std::memcpy(mutant.data() + mutant.size() - 4, &crc, 4);
    auto loaded = LoadWarehouse(mutant);  // must return, ok or not
    (void)loaded;
  }
}

TEST(SnapshotTest, UnsupportedVersionRejected) {
  IspExample ex = MakeIspExample();
  ReductionSpecification empty;
  std::string bytes = SaveWarehouse(*ex.mo, empty);
  bytes[4] = 9;  // version field
  auto loaded = LoadWarehouse(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

}  // namespace
}  // namespace dwred
