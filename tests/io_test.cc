// CSV and warehouse import/export tests: RFC-4180 corner cases, dimension
// rollup tables (the paper's Table 2 layout), mixed-granularity fact round
// trips, and specification files.

#include "io/warehouse_io.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "io/atomic_file.h"
#include "io/csv.h"
#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "reduce/semantics.h"
#include "spec/parser.h"

namespace dwred {
namespace {

TEST(CsvTest, BasicRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][2], "3");
}

TEST(CsvTest, QuotingAndEscapes) {
  auto rows = ParseCsv("\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0], "a,b");
  EXPECT_EQ(rows.value()[0][1], "say \"hi\"");
  EXPECT_EQ(rows.value()[0][2], "line\nbreak");
}

TEST(CsvTest, CrlfAndMissingFinalNewline) {
  auto rows = ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][1], "d");
}

TEST(CsvTest, Malformed) {
  EXPECT_FALSE(ParseCsv("a,\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\"c\n").ok());
}

TEST(CsvTest, RoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with\"quote"},
      {"", "x", "multi\nline"},
  };
  auto back = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), rows);
}

TEST(WarehouseIoTest, DimensionCsvRoundTrip) {
  const char* csv =
      "url,domain,domain_grp\n"
      "www.cc.gatech.edu,gatech.edu,.edu\n"
      "www.cnn.com,cnn.com,.com\n"
      "www.cnn.com/health,cnn.com,.com\n"
      "www.amazon.com/ex...,amazon.com,.com\n";
  auto dim = ReadDimensionCsv("URL", csv);
  ASSERT_TRUE(dim.ok()) << dim.status().ToString();
  const Dimension& d = dim.value();
  EXPECT_EQ(d.type().num_categories(), 4u);  // + TOP
  EXPECT_EQ(d.num_values(), 1 + 4 + 3 + 2);  // T + urls + domains + groups
  auto url_cat = d.type().CategoryByName("url").take();
  auto grp_cat = d.type().CategoryByName("domain_grp").take();
  ValueId health = d.ValueByName(url_cat, "www.cnn.com/health").take();
  EXPECT_EQ(d.value_name(d.Rollup(health, grp_cat)), ".com");

  auto out = WriteDimensionCsv(d);
  ASSERT_TRUE(out.ok());
  auto reparsed = ReadDimensionCsv("URL", out.value());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().num_values(), d.num_values());
}

TEST(WarehouseIoTest, InconsistentRollupRejected) {
  const char* csv =
      "url,domain\n"
      "a,x.com\n"
      "a,y.com\n";  // same url under two domains
  auto dim = ReadDimensionCsv("URL", csv);
  ASSERT_FALSE(dim.ok());
  EXPECT_NE(dim.status().message().find("inconsistently"), std::string::npos);
}

TEST(WarehouseIoTest, TimeDimensionCsvExportRejected) {
  Dimension time = Dimension::MakeTimeDimension();
  EXPECT_FALSE(WriteDimensionCsv(time).ok());  // non-linear
}

TEST(WarehouseIoTest, FactCsvRoundTripMixedGranularity) {
  // Reduce the paper example, export, import into a fresh MO over the same
  // dimensions, compare.
  IspExample ex = MakeIspExample();
  ReductionSpecification spec;
  spec.Add(ParseAction(*ex.mo, paper::kA1, "a1").take());
  spec.Add(ParseAction(*ex.mo, paper::kA2, "a2").take());
  auto reduced = Reduce(*ex.mo, spec, DaysFromCivil({2000, 11, 5})).take();

  std::string csv = WriteFactCsv(reduced);
  MultidimensionalObject back("Click", reduced.dimensions(),
                              std::vector<MeasureType>(reduced.measure_types()));
  ASSERT_TRUE(ReadFactCsv(&back, csv).ok());
  ASSERT_EQ(back.num_facts(), reduced.num_facts());
  for (FactId f = 0; f < back.num_facts(); ++f) {
    EXPECT_EQ(back.Coord(f, 0), reduced.Coord(f, 0));
    EXPECT_EQ(back.Coord(f, 1), reduced.Coord(f, 1));
    for (MeasureId m = 0; m < 4; ++m) {
      EXPECT_EQ(back.Measure(f, m), reduced.Measure(f, m));
    }
  }
}

TEST(WarehouseIoTest, FactCsvMaterializesUnknownTimeValues) {
  IspExample ex = MakeIspExample();
  std::string csv =
      "Time:category,Time:value,URL:category,URL:value,"
      "Number_of,Dwell_time,Delivery_time,Datasize\n"
      "month,2005/7,domain,cnn.com,3,100,5,42\n";
  ASSERT_TRUE(ReadFactCsv(ex.mo.get(), csv).ok());
  EXPECT_EQ(ex.mo->num_facts(), 8u);
  const Dimension& time = *ex.mo->dimension(ex.time_dim);
  EXPECT_NE(time.FindTimeValue(MonthGranule(2005, 7)), kInvalidValue);
}

TEST(WarehouseIoTest, FactCsvErrors) {
  IspExample ex = MakeIspExample();
  // Unknown categorical value.
  EXPECT_FALSE(
      ReadFactCsv(ex.mo.get(),
                  "Time:category,Time:value,URL:category,URL:value,"
                  "Number_of,Dwell_time,Delivery_time,Datasize\n"
                  "day,1999/11/23,domain,nosuch.example,1,1,1,1\n")
          .ok());
  // Granularity mismatch between category and time spelling.
  EXPECT_FALSE(
      ReadFactCsv(ex.mo.get(),
                  "Time:category,Time:value,URL:category,URL:value,"
                  "Number_of,Dwell_time,Delivery_time,Datasize\n"
                  "month,1999/11/23,domain,cnn.com,1,1,1,1\n")
          .ok());
  // Bad measure.
  EXPECT_FALSE(
      ReadFactCsv(ex.mo.get(),
                  "Time:category,Time:value,URL:category,URL:value,"
                  "Number_of,Dwell_time,Delivery_time,Datasize\n"
                  "day,1999/11/23,domain,cnn.com,one,1,1,1\n")
          .ok());
  // Wrong column count.
  EXPECT_FALSE(ReadFactCsv(ex.mo.get(), "a,b\n1,2\n").ok());
}

TEST(WarehouseIoTest, SpecificationFile) {
  IspExample ex = MakeIspExample();
  std::string text =
      "# the paper's specification\n"
      "a1: a[Time.month, URL.domain] s[URL.domain_grp = .com AND "
      "NOW - 12 months <= Time.month <= NOW - 6 months]\n"
      "\n"
      "a2: a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
      "Time.quarter <= NOW - 4 quarters]\n"
      "purge: d s[Time.year <= NOW - 10 years]\n";
  auto actions = ReadSpecificationText(*ex.mo, text);
  ASSERT_TRUE(actions.ok()) << actions.status().ToString();
  ASSERT_EQ(actions.value().size(), 3u);
  EXPECT_EQ(actions.value()[0].name, "a1");
  EXPECT_TRUE(actions.value()[2].deletes);

  // A bad line reports a parse error.
  EXPECT_FALSE(ReadSpecificationText(*ex.mo, "oops: not an action\n").ok());
}

// Regression: AtomicWriteFile's temp name used to be pid-suffixed only, so
// two threads of one process replacing the same path truncated each other's
// temp file (one O_TRUNC open under the other's write) and could rename a
// half-written mix into place. With the process-wide sequence suffix every
// writer owns a distinct temp file, and the destination is always one
// writer's *complete* payload.
TEST(AtomicFileTest, ConcurrentSamePathWritersNeverInterleave) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "dwred_atomic_concurrent_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "target").string();

  constexpr int kWriters = 8;
  constexpr int kRounds = 25;
  // Each writer's payload is distinct in length AND content, so any
  // interleaved or truncated mix matches no expected payload.
  std::vector<std::string> payloads;
  for (int w = 0; w < kWriters; ++w) {
    payloads.push_back(std::string(1024 + 512 * w, 'a' + w) + ":" +
                       std::to_string(w));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        if (!AtomicWriteFile(path, payloads[w]).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto final_content = ReadFile(path);
  ASSERT_TRUE(final_content.ok()) << final_content.status().ToString();
  bool is_complete_payload = false;
  for (const std::string& p : payloads) {
    if (final_content.value() == p) is_complete_payload = true;
  }
  EXPECT_TRUE(is_complete_payload)
      << "destination holds " << final_content.value().size()
      << " bytes matching no writer's payload (interleaved temp files)";

  // No temp-file residue: every writer's temp was renamed or belongs to a
  // writer that lost the race and still renamed a complete file.
  size_t leftovers = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dwred
