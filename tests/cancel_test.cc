// Unit tests for the robustness runtime (docs/ROBUSTNESS.md): cancel tokens,
// deadlines, row budgets, thread-local context propagation through the
// thread pool, the admission governor's wait-then-shed backpressure, and the
// retry-with-backoff helper. The end-to-end clean-abort guarantees live in
// cancel_matrix_test.cc; this file pins the building blocks.

#include "runtime/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "mdm/paper_example.h"
#include "obs/metrics.h"
#include "paper_actions.h"
#include "runtime/governor.h"
#include "runtime/retry.h"
#include "spec/parser.h"
#include "subcube/manager.h"
#include "testing/fault.h"

namespace dwred {
namespace {

class CancelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    testing::FaultInjector::Global().Disarm();
    runtime::ResourceGovernor::Global().Configure(0, 100);
  }
};

TEST_F(CancelTest, InertTokenNeverCancels) {
  runtime::CancelToken t;
  EXPECT_FALSE(t.cancellable());
  t.Cancel();  // no-op
  EXPECT_FALSE(t.cancelled());
}

TEST_F(CancelTest, TokenCopiesShareTheFlag) {
  runtime::CancelToken t = runtime::CancelToken::Create();
  runtime::CancelToken copy = t;
  EXPECT_TRUE(copy.cancellable());
  EXPECT_FALSE(copy.cancelled());
  t.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST_F(CancelTest, DeadlineExpiresAndClampsRemaining) {
  runtime::Deadline none;
  EXPECT_FALSE(none.has_deadline());
  EXPECT_FALSE(none.expired());
  EXPECT_GT(none.remaining_millis(), int64_t{1} << 60);

  runtime::Deadline past = runtime::Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining_millis(), 0);

  runtime::Deadline future = runtime::Deadline::AfterMillis(60'000);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_millis(), 0);
}

TEST_F(CancelTest, CheckOrdersDeadlineBeforeTokenBeforeBudget) {
  runtime::OpContext ctx;
  EXPECT_TRUE(ctx.Check().ok());

  ctx.token = runtime::CancelToken::Create();
  ctx.token.Cancel();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);

  // An expired deadline wins over a fired token: after a deadline cancels
  // sibling shards via the token, every shard still reports the deadline.
  ctx.deadline = runtime::Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(CancelTest, ChargeRowsEnforcesBudgetAcrossCopies) {
  runtime::OpContext ctx;
  EXPECT_TRUE(ctx.ChargeRows(1'000'000).ok());  // no budget: free

  ctx.SetMaxRows(100);
  runtime::OpContext copy = ctx;  // shares the accumulator
  EXPECT_TRUE(ctx.ChargeRows(60).ok());
  EXPECT_TRUE(copy.ChargeRows(40).ok());
  Status over = ctx.ChargeRows(1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over.message().find("row budget exceeded"), std::string::npos);
  EXPECT_EQ(ctx.rows_charged(), 101);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);

  ctx.SetMaxRows(0);  // budget removed
  EXPECT_TRUE(ctx.ChargeRows(1'000).ok());
}

TEST_F(CancelTest, ScopedContextNestsAndRestores) {
  EXPECT_FALSE(runtime::CurrentOpContext().token.cancellable());
  runtime::OpContext outer;
  outer.token = runtime::CancelToken::Create();
  {
    runtime::ScopedOpContext outer_scope(outer);
    EXPECT_TRUE(runtime::CurrentOpContext().token.cancellable());
    {
      runtime::ScopedOpContext inner_scope(runtime::OpContext{});
      EXPECT_FALSE(runtime::CurrentOpContext().token.cancellable());
    }
    EXPECT_TRUE(runtime::CurrentOpContext().token.cancellable());
  }
  EXPECT_FALSE(runtime::CurrentOpContext().token.cancellable());
}

TEST_F(CancelTest, ContextPropagatesToPoolWorkers) {
  exec::ThreadPool pool(4);
  runtime::OpContext ctx;
  ctx.token = runtime::CancelToken::Create();
  ctx.SetMaxRows(1'000'000);
  runtime::ScopedOpContext scope(ctx);

  std::atomic<int> cancellable_shards{0};
  std::atomic<int> shards{0};
  pool.ParallelFor(1000, 1, [&](size_t begin, size_t end) {
    shards.fetch_add(1);
    const runtime::OpContext& seen = runtime::CurrentOpContext();
    if (seen.token.cancellable() && seen.max_rows() == 1'000'000) {
      cancellable_shards.fetch_add(1);
    }
    (void)seen.ChargeRows(static_cast<int64_t>(end - begin));
  });
  EXPECT_EQ(cancellable_shards.load(), shards.load());
  // Worker-side charges landed on the submitter's shared accumulator.
  EXPECT_EQ(ctx.rows_charged(), 1000);
}

TEST_F(CancelTest, PollCancelInjectionFiresTheCurrentToken) {
  runtime::OpContext ctx;
  ctx.token = runtime::CancelToken::Create();
  runtime::ScopedOpContext scope(ctx);

  testing::FaultInjector::Global().Arm("cancel.unit.site", 1,
                                       testing::FaultMode::kCancel);
  Status s = runtime::PollCancel("cancel.unit.site");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // Sibling shards of the same operation observe the injected cancel.
  EXPECT_TRUE(ctx.token.cancelled());
  EXPECT_EQ(runtime::CurrentOpContext().Check().code(), StatusCode::kCancelled);
}

TEST_F(CancelTest, IsAbortAndOutcomeLabels) {
  EXPECT_TRUE(runtime::IsAbort(StatusCode::kCancelled));
  EXPECT_TRUE(runtime::IsAbort(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(runtime::IsAbort(StatusCode::kResourceExhausted));
  EXPECT_FALSE(runtime::IsAbort(StatusCode::kOk));
  EXPECT_FALSE(runtime::IsAbort(StatusCode::kInternal));
  EXPECT_STREQ(runtime::OutcomeLabel(StatusCode::kOk), "ok");
  EXPECT_STREQ(runtime::OutcomeLabel(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(runtime::OutcomeLabel(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(runtime::OutcomeLabel(StatusCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(runtime::OutcomeLabel(StatusCode::kInternal), "error");
}

TEST_F(CancelTest, CountAbortMovesTheMatchingCounter) {
  auto value = [](const char* name) {
    return obs::MetricsRegistry::Global().GetCounter(name, "").Value();
  };
  int64_t before = value("dwred_cancel_deadline_exceeded");
  Status s = runtime::CountAbort(Status::DeadlineExceeded("t"));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);  // passes through
  EXPECT_EQ(value("dwred_cancel_deadline_exceeded"), before + 1);

  int64_t ok_before = value("dwred_cancel_cancelled");
  (void)runtime::CountAbort(Status::OK());
  (void)runtime::CountAbort(Status::Internal("not an abort"));
  EXPECT_EQ(value("dwred_cancel_cancelled"), ok_before);
}

// --- ResourceGovernor -------------------------------------------------------

TEST_F(CancelTest, GovernorUnlimitedIsUncountedFastPath) {
  runtime::ResourceGovernor::Global().Configure(0, 100);
  runtime::AdmissionTicket ticket;
  ASSERT_TRUE(runtime::ResourceGovernor::Global().Admit(&ticket).ok());
  EXPECT_FALSE(ticket.counted());
}

TEST_F(CancelTest, GovernorShedsWhenFullAndReadmitsAfterRelease) {
  auto& gov = runtime::ResourceGovernor::Global();
  gov.Configure(1, 10);  // one slot, 10ms wait

  runtime::AdmissionTicket holder;
  ASSERT_TRUE(gov.Admit(&holder).ok());
  EXPECT_TRUE(holder.counted());
  EXPECT_EQ(gov.inflight(), 1);

  int64_t shed_before =
      obs::MetricsRegistry::Global().GetCounter("dwred_shed_total", "").Value();
  runtime::AdmissionTicket shed;
  Status s = gov.Admit(&shed);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("admission gate full"), std::string::npos);
  EXPECT_FALSE(shed.counted());
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("dwred_shed_total", "")
                .Value(),
            shed_before + 1);

  holder = runtime::AdmissionTicket{};  // release the slot
  EXPECT_EQ(gov.inflight(), 0);
  runtime::AdmissionTicket again;
  EXPECT_TRUE(gov.Admit(&again).ok());
  EXPECT_TRUE(again.counted());
}

TEST_F(CancelTest, GovernorFailsFastOnDeadOnArrivalContext) {
  auto& gov = runtime::ResourceGovernor::Global();
  gov.Configure(1, 5'000);  // would wait 5s if it tried

  runtime::AdmissionTicket holder;
  ASSERT_TRUE(gov.Admit(&holder).ok());

  runtime::OpContext ctx;
  ctx.deadline = runtime::Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  runtime::ScopedOpContext scope(ctx);

  auto start = std::chrono::steady_clock::now();
  runtime::AdmissionTicket t;
  Status s = gov.Admit(&t);
  auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            1'000);
}

TEST_F(CancelTest, GovernorWakesWaiterOnRelease) {
  auto& gov = runtime::ResourceGovernor::Global();
  gov.Configure(1, 5'000);

  auto holder = std::make_unique<runtime::AdmissionTicket>();
  ASSERT_TRUE(gov.Admit(holder.get()).ok());

  std::mutex mu;
  std::condition_variable cv;
  bool waiting = false;
  Status admitted = Status::Internal("never ran");
  std::thread waiter([&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      waiting = true;
    }
    cv.notify_one();
    runtime::AdmissionTicket t;
    Status s = gov.Admit(&t);  // blocks until the holder releases
    std::lock_guard<std::mutex> lock(mu);
    admitted = s;
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return waiting; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  holder.reset();  // release -> waiter admitted well before its 5s bound
  waiter.join();
  EXPECT_TRUE(admitted.ok()) << admitted.ToString();
  EXPECT_EQ(gov.inflight(), 0);
}

// --- RetryWithBackoff -------------------------------------------------------

TEST_F(CancelTest, RetrySucceedsAfterTransientFailures) {
  int calls = 0;
  Status s = runtime::RetryWithBackoff(
      runtime::RetryPolicy{},
      [&] {
        ++calls;
        return calls < 3 ? Status::Internal("transient") : Status::OK();
      },
      "unit op");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST_F(CancelTest, RetryGivesUpAfterMaxAttempts) {
  int calls = 0;
  runtime::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 1;
  Status s = runtime::RetryWithBackoff(
      policy,
      [&] {
        ++calls;
        return Status::Internal("still down");
      },
      "unit op");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 3);
}

TEST_F(CancelTest, RetryDoesNotRetryNonInternalOrAbortCodes) {
  int calls = 0;
  Status s = runtime::RetryWithBackoff(
      runtime::RetryPolicy{},
      [&] {
        ++calls;
        return Status::InvalidArgument("caller bug");
      },
      "unit op");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);

  calls = 0;
  s = runtime::RetryWithBackoff(
      runtime::RetryPolicy{},
      [&] {
        ++calls;
        return Status::Cancelled("stop");
      },
      "unit op");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1);
}

TEST_F(CancelTest, RetryNeverRetriesInjectedFaults) {
  // The durability tests arm "fail the Nth fsync" and assert the failure
  // surfaces; a retry would absorb the injection and break their contract.
  testing::FaultInjector::Global().Arm("retry.unit.site", 1,
                                       testing::FaultMode::kError);
  int calls = 0;
  Status s = runtime::RetryWithBackoff(
      runtime::RetryPolicy{},
      [&] {
        ++calls;
        return testing::FaultPoint("retry.unit.site");
      },
      "unit op");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
}

TEST_F(CancelTest, RetryStopsBackingOffWhenContextCancelled) {
  runtime::OpContext ctx;
  ctx.token = runtime::CancelToken::Create();
  ctx.token.Cancel();
  runtime::ScopedOpContext scope(ctx);
  int calls = 0;
  Status s = runtime::RetryWithBackoff(
      runtime::RetryPolicy{},
      [&] {
        ++calls;
        return Status::Internal("transient");
      },
      "unit op");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1);  // cancelled between attempt 1 and 2
}

// --- Oversubscription torture ----------------------------------------------

class GovernorTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec::ThreadPool::ResetGlobal(4);
    IspExample ex = MakeIspExample();
    ReductionSpecification spec;
    spec.Add(ParseAction(*ex.mo, paper::kA1, "a1").take());
    spec.Add(ParseAction(*ex.mo, paper::kA2, "a2").take());
    auto m = SubcubeManager::Create(
        "Click", ex.mo->dimensions(),
        {ex.mo->measure_type(0), ex.mo->measure_type(1),
         ex.mo->measure_type(2), ex.mo->measure_type(3)},
        std::move(spec));
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    mgr_ = std::make_unique<SubcubeManager>(m.take());
    ASSERT_TRUE(mgr_->InsertBottomFacts(*ex.mo).ok());
  }
  void TearDown() override {
    runtime::ResourceGovernor::Global().Configure(0, 100);
  }
  std::unique_ptr<SubcubeManager> mgr_;
};

TEST_F(GovernorTortureTest, OversubscribedQueriesShedOrSucceedNeverWedge) {
  // 2x oversubscription: 8 querying threads against a 4-slot gate with a
  // short wait. Every attempt must finish — admitted queries return rows,
  // shed queries return kResourceExhausted — and the slot count must drain
  // back to zero. (ISSUE acceptance: sheds, not deadlocks.)
  auto& gov = runtime::ResourceGovernor::Global();
  gov.Configure(4, 5);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;

  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto r = mgr_->Query(nullptr, nullptr, 0, true, /*parallel=*/true);
        if (r.ok()) {
          ok.fetch_add(1);
        } else if (r.status().code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + shed.load(), kThreads * kQueriesPerThread);
  EXPECT_GT(ok.load(), 0) << "the gate admitted nothing";
  EXPECT_EQ(gov.inflight(), 0) << "slots leaked";
}

}  // namespace
}  // namespace dwred
