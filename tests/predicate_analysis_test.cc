// Tests for the DNF pre-processing of Section 5.3 and the compiled
// per-dimension constraints: bound snapping, inexactness marking, candidate
// enumeration, and satisfiability.

#include "spec/predicate_analysis.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  std::vector<Conjunct> Compile(const char* text) {
    auto pred = ParsePredicate(*ex_.mo, text);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    auto dnf = CompileToDnf(*ex_.mo, *pred.value());
    EXPECT_TRUE(dnf.ok()) << dnf.status().ToString();
    return dnf.take();
  }

  IspExample ex_ = MakeIspExample();
};

TEST_F(AnalysisTest, DisjunctionSplitsIntoConjuncts) {
  auto dnf = Compile("URL.domain_grp = .com OR URL.domain_grp = .edu");
  EXPECT_EQ(dnf.size(), 2u);
}

TEST_F(AnalysisTest, DistributionOverConjunction) {
  auto dnf = Compile(
      "(URL.domain_grp = .com OR URL.domain_grp = .edu) AND "
      "(Time.month <= 1999/12 OR Time.month >= 2001/1)");
  EXPECT_EQ(dnf.size(), 4u);
}

TEST_F(AnalysisTest, NegationPushesOntoAtoms) {
  auto dnf = Compile("NOT (URL.domain = cnn.com AND Time.month <= 1999/12)");
  // De Morgan: != OR >.
  ASSERT_EQ(dnf.size(), 2u);
  bool saw_ne = false, saw_gt = false;
  for (const auto& c : dnf) {
    for (const Atom& a : c.atoms) {
      if (a.op == CmpOp::kNe) saw_ne = true;
      if (a.op == CmpOp::kGt) saw_gt = true;
    }
  }
  EXPECT_TRUE(saw_ne);
  EXPECT_TRUE(saw_gt);
}

TEST_F(AnalysisTest, TrueFalseNormalization) {
  EXPECT_EQ(Compile("false").size(), 0u);
  auto dnf = Compile("true");
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_TRUE(dnf[0].atoms.empty());
  EXPECT_EQ(Compile("NOT true").size(), 0u);
  EXPECT_EQ(Compile("true OR URL.domain = cnn.com").size(), 2u);
}

TEST_F(AnalysisTest, BoundSnappingToGranuleEdges) {
  // Time.month < 1999/12 == day <= 1999/11/30;
  // Time.month <= 1999/12 == day <= 1999/12/31;
  // Time.quarter > 1999Q4 == day >= 2000/1/1.
  auto lt = Compile("Time.month < 1999/12");
  EXPECT_EQ(lt[0].time.UpperDay(0), DaysFromCivil({1999, 11, 30}));
  auto le = Compile("Time.month <= 1999/12");
  EXPECT_EQ(le[0].time.UpperDay(0), DaysFromCivil({1999, 12, 31}));
  auto gt = Compile("Time.quarter > 1999Q4");
  EXPECT_EQ(gt[0].time.LowerDay(0), DaysFromCivil({2000, 1, 1}));
  auto eq = Compile("Time.week = 1999W48");
  EXPECT_EQ(eq[0].time.LowerDay(0), DaysFromCivil({1999, 11, 29}));
  EXPECT_EQ(eq[0].time.UpperDay(0), DaysFromCivil({1999, 12, 5}));
}

TEST_F(AnalysisTest, NowBoundsEvaluatePerNow) {
  auto c = Compile("Time.month <= NOW - 6 months");
  const TimeConstraint& tc = c[0].time;
  EXPECT_TRUE(tc.HasNowUpper());
  EXPECT_FALSE(tc.HasNowLower());
  // At NOW = 2000/11/5 the bound is the last day of 2000/5.
  EXPECT_EQ(tc.UpperDay(DaysFromCivil({2000, 11, 5})),
            DaysFromCivil({2000, 5, 31}));
  // A month later it moves one month.
  EXPECT_EQ(tc.UpperDay(DaysFromCivil({2000, 12, 5})),
            DaysFromCivil({2000, 6, 30}));
}

TEST_F(AnalysisTest, InequalityAtomsMarkTimeInexact) {
  EXPECT_FALSE(Compile("Time.month != 1999/12")[0].time.exact);
  EXPECT_TRUE(Compile("Time.month = 1999/12")[0].time.exact);
  EXPECT_FALSE(
      Compile("Time.week IN {1999W47, 1999W52}")[0].time.exact);
  // Single-element IN is an interval.
  EXPECT_TRUE(Compile("Time.week IN {1999W47}")[0].time.exact);
}

TEST_F(AnalysisTest, MultiElementInStillBoundsTheRange) {
  auto c = Compile("Time.week IN {1999W47, 1999W52}");
  EXPECT_EQ(c[0].time.LowerDay(0), FirstDayOf(WeekGranule(1999, 47)));
  EXPECT_EQ(c[0].time.UpperDay(0), LastDayOf(WeekGranule(1999, 52)));
}

TEST_F(AnalysisTest, CatConstraintAllowsByRollup) {
  auto c = Compile("URL.domain_grp = .com AND URL.domain != cnn.com");
  const CatConstraint& cc = c[0].cats[ex_.url_dim];
  const Dimension& url = *ex_.mo->dimension(ex_.url_dim);
  EXPECT_TRUE(cc.Allows(url, ex_.url_amazon));
  EXPECT_FALSE(cc.Allows(url, ex_.url_cnn));      // excluded via cnn.com
  EXPECT_FALSE(cc.Allows(url, ex_.url_gatech));   // not .com
  EXPECT_TRUE(cc.Allows(url, ex_.dom_amazon));    // works at domain level too
}

TEST_F(AnalysisTest, CandidateValuesEnumerateAtGlb) {
  auto left = Compile("URL.domain_grp = .com");
  auto right = Compile("URL.url = www.cnn.com/health");
  CategoryId enum_cat;
  std::vector<ValueId> cand = CandidateValues(
      *ex_.mo->dimension(ex_.url_dim), {&left[0].cats[ex_.url_dim]},
      {&right[0].cats[ex_.url_dim]}, &enum_cat);
  EXPECT_EQ(enum_cat, ex_.url_cat);  // GLB(domain_grp, url) = url
  EXPECT_EQ(cand.size(), 3u);        // the three .com urls
}

TEST_F(AnalysisTest, CandidateValuesUnconstrainedDimensionIsWildcard) {
  auto c = Compile("Time.month <= 1999/12");
  CategoryId enum_cat;
  std::vector<ValueId> cand =
      CandidateValues(*ex_.mo->dimension(ex_.url_dim),
                      {&c[0].cats[ex_.url_dim]}, {}, &enum_cat);
  EXPECT_EQ(enum_cat, kInvalidCategory);
  EXPECT_TRUE(cand.empty());
}

TEST_F(AnalysisTest, SatisfiabilityDetectsEmptyRegions) {
  auto empty_time = Compile("Time.month <= 1999/1 AND Time.month >= 1999/6");
  EXPECT_FALSE(empty_time[0].SatisfiableAt(*ex_.mo, 0));
  auto empty_cat =
      Compile("URL.domain_grp = .com AND URL.domain_grp = .edu");
  EXPECT_FALSE(empty_cat[0].SatisfiableAt(*ex_.mo, 0));
  auto sat = Compile("URL.domain_grp = .com AND Time.month <= 1999/12");
  EXPECT_TRUE(sat[0].SatisfiableAt(*ex_.mo, 0));
}

TEST_F(AnalysisTest, DnfBlowupIsBounded) {
  // (a OR b) AND (a OR b) AND ... 12 times = 4096 conjuncts: at the limit.
  std::string text = "(URL.domain_grp = .com OR URL.domain_grp = .edu)";
  std::string big = text;
  for (int i = 0; i < 11; ++i) big += " AND " + text;
  auto pred = ParsePredicate(*ex_.mo, big);
  ASSERT_TRUE(pred.ok());
  auto dnf = CompileToDnf(*ex_.mo, *pred.value(), /*max_conjuncts=*/1024);
  EXPECT_FALSE(dnf.ok());
  auto dnf_big = CompileToDnf(*ex_.mo, *pred.value(), /*max_conjuncts=*/5000);
  EXPECT_TRUE(dnf_big.ok());
}

class GrowthClassSweep
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(GrowthClassSweep, Classification) {
  // 0 = fixed, 1 = growing, 2 = shrinking.
  IspExample ex = MakeIspExample();
  auto pred = ParsePredicate(*ex.mo, GetParam().first);
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  auto dnf = CompileToDnf(*ex.mo, *pred.value());
  ASSERT_TRUE(dnf.ok());
  const Conjunct& c = dnf.value()[0];
  int cls = c.time.HasNowLower() ? 2 : (c.time.HasNowUpper() ? 1 : 0);
  EXPECT_EQ(cls, GetParam().second) << GetParam().first;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GrowthClassSweep,
    ::testing::Values(
        std::pair{"Time.month <= 1999/12", 0},                    // case A
        std::pair{"Time.month >= 1999/1", 0},                     // case A
        std::pair{"URL.domain = cnn.com", 0},                     // non-time
        std::pair{"Time.month <= NOW - 6 months", 1},             // case B
        std::pair{"Time.month >= 1999/1 AND Time.month <= NOW", 1},  // case D
        std::pair{"Time.month >= NOW - 12 months", 2},            // case F
        std::pair{"NOW - 12 months <= Time.month AND "
                  "Time.month <= NOW - 6 months", 2},             // case F
        std::pair{"Time.quarter > NOW - 8 quarters", 2}));        // case F

}  // namespace
}  // namespace dwred
