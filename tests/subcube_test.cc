// Subcube-engine tests (paper Section 7): layout construction (Figure 6),
// parent/child data flow and synchronization (Figure 7), per-subcube query
// evaluation with the final combining aggregation (Figure 8), and the
// un-synchronized query rewrite (Figure 9).

#include "subcube/manager.h"

#include <gtest/gtest.h>

#include <map>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class SubcubeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.Add(ParseAction(*ex_.mo, paper::kA1, "a1").take());
    spec_.Add(ParseAction(*ex_.mo, paper::kA2, "a2").take());
    auto m = SubcubeManager::Create(
        "Click", ex_.mo->dimensions(),
        {ex_.mo->measure_type(0), ex_.mo->measure_type(1),
         ex_.mo->measure_type(2), ex_.mo->measure_type(3)},
        spec_);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    mgr_ = std::make_unique<SubcubeManager>(m.take());
  }

  static std::map<std::string, std::vector<int64_t>> Snapshot(
      const MultidimensionalObject& mo) {
    std::map<std::string, std::vector<int64_t>> out;
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      std::string key;
      for (size_t d = 0; d < mo.num_dimensions(); ++d) {
        if (d) key += "|";
        key += mo.dimension(static_cast<DimensionId>(d))
                   ->value_name(mo.Coord(f, static_cast<DimensionId>(d)));
      }
      std::vector<int64_t> meas;
      for (size_t m = 0; m < mo.num_measures(); ++m) {
        meas.push_back(mo.Measure(f, static_cast<MeasureId>(m)));
      }
      out[key] = meas;
    }
    return out;
  }

  IspExample ex_ = MakeIspExample();
  ReductionSpecification spec_;
  std::unique_ptr<SubcubeManager> mgr_;
};

TEST_F(SubcubeTest, LayoutHasBottomPlusOneCubePerGranularity) {
  // K0 bottom (day, url), K1 (month, domain) for a1, K2 (quarter, domain)
  // for a2.
  ASSERT_EQ(mgr_->num_subcubes(), 3u);
  EXPECT_EQ(mgr_->subcube(0).granularity[0],
            static_cast<CategoryId>(TimeUnit::kDay));
  EXPECT_EQ(mgr_->subcube(1).granularity[0],
            static_cast<CategoryId>(TimeUnit::kMonth));
  EXPECT_EQ(mgr_->subcube(2).granularity[0],
            static_cast<CategoryId>(TimeUnit::kQuarter));
  // Data flows K0 -> K1 -> K2: immediate parents.
  EXPECT_TRUE(mgr_->subcube(0).parents.empty());
  EXPECT_EQ(mgr_->subcube(1).parents, (std::vector<size_t>{0}));
  EXPECT_EQ(mgr_->subcube(2).parents, (std::vector<size_t>{1}));
}

TEST_F(SubcubeTest, InsertRequiresBottomGranularity) {
  ASSERT_TRUE(mgr_->InsertBottomFacts(*ex_.mo).ok());
  EXPECT_EQ(mgr_->subcube(0).table.num_rows(), 7u);
  // A month-granularity fact is rejected at the door.
  MultidimensionalObject bad("Click", ex_.mo->dimensions(),
                             std::vector<MeasureType>(
                                 ex_.mo->measure_types()));
  auto time = ex_.mo->dimension(ex_.time_dim);
  ValueId month = time->FindTimeValue(MonthGranule(1999, 12));
  ASSERT_NE(month, kInvalidValue);
  std::vector<ValueId> coords = {month, ex_.url_cnn};
  std::vector<int64_t> meas = {1, 1, 1, 1};
  ASSERT_TRUE(bad.AddFact(coords, meas).ok());
  EXPECT_FALSE(mgr_->InsertBottomFacts(bad).ok());
}

TEST_F(SubcubeTest, SynchronizationFollowsFigure3Timeline) {
  ASSERT_TRUE(mgr_->InsertBottomFacts(*ex_.mo).ok());

  // 2000/4/5: nothing satisfies any action.
  auto m1 = mgr_->Synchronize(DaysFromCivil({2000, 4, 5}));
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1.value(), 0u);
  EXPECT_EQ(mgr_->subcube(0).table.num_rows(), 7u);

  // 2000/6/5: facts 0..3 move to K1; fact_1+fact_2 share the cell
  // (1999/12, cnn.com) and compact to one row.
  auto m2 = mgr_->Synchronize(DaysFromCivil({2000, 6, 5}));
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2.value(), 4u);
  EXPECT_EQ(mgr_->subcube(0).table.num_rows(), 3u);
  EXPECT_EQ(mgr_->subcube(1).table.num_rows(), 3u);
  EXPECT_EQ(mgr_->subcube(2).table.num_rows(), 0u);

  // 2000/11/5 (Figure 7's pattern): K1's rows move on to K2 — fact_0 and
  // fact_3 merge at (1999Q4, amazon.com) — and facts 4, 5 move to K1,
  // merging at (2000/1, cnn.com). fact_6 stays in K0.
  auto m3 = mgr_->Synchronize(DaysFromCivil({2000, 11, 5}));
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(m3.value(), 5u);
  EXPECT_EQ(mgr_->subcube(0).table.num_rows(), 1u);
  EXPECT_EQ(mgr_->subcube(1).table.num_rows(), 1u);
  EXPECT_EQ(mgr_->subcube(2).table.num_rows(), 2u);

  // The whole warehouse equals the Figure 3 bottom snapshot.
  auto all = mgr_->Query(nullptr, nullptr, DaysFromCivil({2000, 11, 5}),
                         /*assume_synchronized=*/true);
  ASSERT_TRUE(all.ok());
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999Q4|amazon.com", {2, 689, 3, 68}},
      {"1999Q4|cnn.com", {2, 2489, 7, 94}},
      {"2000/1|cnn.com", {2, 955, 10, 99}},
      {"2000/1/20|www.cc.gatech.edu", {1, 32, 1, 12}},
  };
  EXPECT_EQ(Snapshot(all.value()), expected);
}

TEST_F(SubcubeTest, QueryWithFinalCombiningAggregation) {
  // Figure 8's shape: a month/domain_grp aggregation over all subcubes after
  // full synchronization; the two quarter-level rows stay at quarter
  // (availability), the rest combine at month/domain_grp.
  ASSERT_TRUE(mgr_->InsertBottomFacts(*ex_.mo).ok());
  int64_t t = DaysFromCivil({2000, 11, 5});
  ASSERT_TRUE(mgr_->Synchronize(t).ok());

  auto pred = ParsePredicate(mgr_->context(),
                             "1999/6 < Time.month AND Time.month <= 2000/5");
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  auto gran = ParseGranularityList(mgr_->context(),
                                   "Time.month, URL.domain_grp");
  ASSERT_TRUE(gran.ok());

  auto result =
      mgr_->Query(pred.value().get(), &gran.value(), t, /*sync=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Conservative selection drops the quarter rows (their months are not
  // certainly within the range? they are: 1999Q4 drills to months 11, 12 —
  // both inside (1999/6, 2000/5]), so everything qualifies.
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999Q4|.com", {4, 3178, 10, 162}},   // fact_0312 of Figure 8
      {"2000/1|.com", {2, 955, 10, 99}},     // fact_45
      {"2000/1|.edu", {1, 32, 1, 12}},       // fact_6
  };
  EXPECT_EQ(Snapshot(result.value()), expected);
}

TEST_F(SubcubeTest, UnsynchronizedQueryEqualsSynchronizedResult) {
  // Figure 9's invariant: one level out of sync, the rewritten per-subcube
  // query gives exactly what the synchronized warehouse would.
  ASSERT_TRUE(mgr_->InsertBottomFacts(*ex_.mo).ok());
  ASSERT_TRUE(mgr_->Synchronize(DaysFromCivil({2000, 6, 5})).ok());

  int64_t t = DaysFromCivil({2000, 11, 5});
  // NOT synchronized at t.
  auto unsync = mgr_->Query(nullptr, nullptr, t, /*assume_synchronized=*/false);
  ASSERT_TRUE(unsync.ok()) << unsync.status().ToString();

  ASSERT_TRUE(mgr_->Synchronize(t).ok());
  auto sync = mgr_->Query(nullptr, nullptr, t, /*assume_synchronized=*/true);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(Snapshot(unsync.value()), Snapshot(sync.value()));
}

TEST_F(SubcubeTest, UnsyncSubresultsPullFromParents) {
  // Zoom on Figure 9: after syncing at 2000/6/5 and advancing to 2000/11/5,
  // K2's subresult must contain the quarter rows even though they still
  // physically sit in K1.
  ASSERT_TRUE(mgr_->InsertBottomFacts(*ex_.mo).ok());
  ASSERT_TRUE(mgr_->Synchronize(DaysFromCivil({2000, 6, 5})).ok());
  int64_t t = DaysFromCivil({2000, 11, 5});
  auto subs = mgr_->QuerySubresults(nullptr, nullptr, t, false);
  ASSERT_TRUE(subs.ok());
  ASSERT_EQ(subs.value().size(), 3u);
  EXPECT_EQ(subs.value()[2].num_facts(), 2u);  // (1999Q4, amazon), (1999Q4, cnn)
  EXPECT_EQ(subs.value()[1].num_facts(), 1u);  // (2000/1, cnn)
  EXPECT_EQ(subs.value()[0].num_facts(), 1u);  // fact_6
}

TEST_F(SubcubeTest, ChangeSpecificationRedistributesData) {
  ASSERT_TRUE(mgr_->InsertBottomFacts(*ex_.mo).ok());
  int64_t t = DaysFromCivil({2000, 11, 5});
  ASSERT_TRUE(mgr_->Synchronize(t).ok());

  // New spec: only the quarter-level action remains.
  ReductionSpecification new_spec;
  new_spec.Add(ParseAction(*ex_.mo, paper::kA2, "a2").take());
  ASSERT_TRUE(mgr_->ChangeSpecification(new_spec, t).ok());
  ASSERT_EQ(mgr_->num_subcubes(), 2u);
  // The old K1 rows (month granularity) have no home cube of their own any
  // more; they land in the quarter cube.
  auto all = mgr_->Query(nullptr, nullptr, t, true);
  ASSERT_TRUE(all.ok());
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999Q4|amazon.com", {2, 689, 3, 68}},
      {"1999Q4|cnn.com", {2, 2489, 7, 94}},
      {"2000Q1|cnn.com", {2, 955, 10, 99}},
      {"2000/1/20|www.cc.gatech.edu", {1, 32, 1, 12}},
  };
  EXPECT_EQ(Snapshot(all.value()), expected);
}

TEST_F(SubcubeTest, ParallelQueryEqualsSerial) {
  // Section 7.3: subqueries evaluated "separately and in parallel". The
  // threaded path must return exactly the serial result.
  ASSERT_TRUE(mgr_->InsertBottomFacts(*ex_.mo).ok());
  int64_t t = DaysFromCivil({2000, 11, 5});
  ASSERT_TRUE(mgr_->Synchronize(t).ok());
  auto pred = ParsePredicate(mgr_->context(), "URL.domain_grp = .com").take();
  auto gran =
      ParseGranularityList(mgr_->context(), "Time.quarter, URL.domain").take();
  for (bool synced : {true, false}) {
    auto serial = mgr_->Query(pred.get(), &gran, t, synced, false);
    auto parallel = mgr_->Query(pred.get(), &gran, t, synced, true);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(Snapshot(serial.value()), Snapshot(parallel.value()))
        << "synced=" << synced;
  }
}

TEST_F(SubcubeTest, ParallelBranchLayoutLikeEq41to44) {
  // The Section 7.1 example (eqs. 41-44) adds a week-granularity cube for
  // gatech.edu clicks alongside the month/quarter .com chain — a parallel
  // branch of the non-linear Time hierarchy. Weeks do not roll up to months
  // or quarters, so the week cube has only the bottom cube as parent and is
  // nobody's parent.
  ReductionSpecification spec;
  spec.Add(ParseAction(*ex_.mo, paper::kA1, "a1p").take());
  spec.Add(ParseAction(*ex_.mo, paper::kA2, "a2p").take());
  spec.Add(ParseAction(*ex_.mo,
                       "a[Time.week, URL.domain] s[URL.domain = gatech.edu "
                       "AND Time.week <= NOW - 36 weeks]",
                       "a3p")
               .take());
  auto mgr = SubcubeManager::Create(
                 "Click", ex_.mo->dimensions(),
                 std::vector<MeasureType>(ex_.mo->measure_types()), spec)
                 .take();
  ASSERT_EQ(mgr.num_subcubes(), 4u);
  const Subcube& week_cube = mgr.subcube(3);
  EXPECT_EQ(week_cube.granularity[ex_.time_dim],
            static_cast<CategoryId>(TimeUnit::kWeek));
  EXPECT_EQ(week_cube.parents, (std::vector<size_t>{0}));
  // The quarter cube's parents do NOT include the week cube.
  for (size_t p : mgr.subcube(2).parents) EXPECT_NE(p, 3u);

  ASSERT_TRUE(mgr.InsertBottomFacts(*ex_.mo).ok());
  // At 2000/11/5, fact_6 (2000W3) is 40+ weeks old: it moves to the week
  // cube while the .com facts follow the month/quarter chain.
  ASSERT_TRUE(mgr.Synchronize(DaysFromCivil({2000, 11, 5})).ok());
  EXPECT_EQ(mgr.subcube(0).table.num_rows(), 0u);
  EXPECT_EQ(week_cube.table.num_rows(), 1u);
  ValueId wv = week_cube.table.Coord(0, ex_.time_dim);
  EXPECT_EQ(ex_.mo->dimension(ex_.time_dim)->granule(wv),
            WeekGranule(2000, 3));

  // A combined query still sees everything exactly once.
  auto all =
      mgr.Query(nullptr, nullptr, DaysFromCivil({2000, 11, 5}), true).take();
  EXPECT_EQ(all.num_facts(), 4u);
  int64_t clicks = 0;
  for (FactId f = 0; f < all.num_facts(); ++f) clicks += all.Measure(f, 0);
  EXPECT_EQ(clicks, 7);
}

TEST_F(SubcubeTest, DescribeLayoutMentionsEveryCube) {
  std::string desc = mgr_->DescribeLayout();
  EXPECT_NE(desc.find("K0"), std::string::npos);
  EXPECT_NE(desc.find("K1"), std::string::npos);
  EXPECT_NE(desc.find("K2"), std::string::npos);
  EXPECT_NE(desc.find("quarter"), std::string::npos);
}

}  // namespace
}  // namespace dwred
