// Projection and aggregate-formation tests (paper Sections 6.2, 6.3): the
// Figure 4 projection golden, Group_high's worked examples, the Figure 5
// availability-approach aggregation golden, and the strict/LUB variants.

#include "query/operators.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "reduce/semantics.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class QueryAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.Add(ParseAction(*ex_.mo, paper::kA1, "a1").take());
    spec_.Add(ParseAction(*ex_.mo, paper::kA2, "a2").take());
    t_ = DaysFromCivil({2000, 11, 5});
    auto r = Reduce(*ex_.mo, spec_, t_);
    ASSERT_TRUE(r.ok());
    reduced_ = std::make_unique<MultidimensionalObject>(r.take());
    for (FactId f = 0; f < reduced_->num_facts(); ++f) {
      by_name_[reduced_->FactName(f)] = f;
    }
  }

  static std::map<std::string, std::vector<int64_t>> Snapshot(
      const MultidimensionalObject& mo) {
    std::map<std::string, std::vector<int64_t>> out;
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      std::string key;
      for (size_t d = 0; d < mo.num_dimensions(); ++d) {
        if (d) key += "|";
        key += mo.dimension(static_cast<DimensionId>(d))
                   ->value_name(mo.Coord(f, static_cast<DimensionId>(d)));
      }
      std::vector<int64_t> meas;
      for (size_t m = 0; m < mo.num_measures(); ++m) {
        meas.push_back(mo.Measure(f, static_cast<MeasureId>(m)));
      }
      out[key] = meas;
    }
    return out;
  }

  IspExample ex_ = MakeIspExample();
  ReductionSpecification spec_;
  std::unique_ptr<MultidimensionalObject> reduced_;
  std::map<std::string, FactId> by_name_;
  int64_t t_ = 0;
};

TEST_F(QueryAggregateTest, Figure4ProjectionOntoUrl) {
  // π[URL][Number_of, Dwell_time](O) at 2000/11/5.
  auto proj = Project(*reduced_, {ex_.url_dim}, {ex_.number_of, ex_.dwell_time});
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  const MultidimensionalObject& p = proj.value();
  EXPECT_EQ(p.num_dimensions(), 1u);
  EXPECT_EQ(p.num_measures(), 2u);
  // Figure 4: four facts — amazon.com (2, 689), cnn.com twice (2, 2489) and
  // (2, 955) since projection keeps duplicates, gatech's url (1, 32).
  EXPECT_EQ(p.num_facts(), 4u);
  std::multiset<std::pair<std::string, int64_t>> rows;
  for (FactId f = 0; f < p.num_facts(); ++f) {
    rows.emplace(p.dimension(0)->value_name(p.Coord(f, 0)), p.Measure(f, 1));
  }
  std::multiset<std::pair<std::string, int64_t>> expected_rows = {
      {"amazon.com", 689},
      {"cnn.com", 2489},
      {"cnn.com", 955},
      {"www.cc.gatech.edu", 32},
  };
  EXPECT_EQ(rows, expected_rows);
  int cnn_count = 0;
  for (FactId f = 0; f < p.num_facts(); ++f) {
    if (p.dimension(0)->value_name(p.Coord(f, 0)) == "cnn.com") ++cnn_count;
  }
  EXPECT_EQ(cnn_count, 2);
  EXPECT_EQ(p.measure_type(0).name, "Number_of");
  EXPECT_EQ(p.measure_type(1).name, "Dwell_time");
}

TEST_F(QueryAggregateTest, GroupHighWorkedExamples) {
  // Section 6.3's Group_high examples on the reduced MO.
  const Dimension& time = *reduced_->dimension(ex_.time_dim);
  ValueId q4 = time.FindTimeValue(QuarterGranule(1999, 4));
  ValueId y1999 = time.FindTimeValue(YearGranule(1999));
  ValueId jan = time.FindTimeValue(MonthGranule(2000, 1));
  ASSERT_NE(q4, kInvalidValue);
  ASSERT_NE(y1999, kInvalidValue);
  ASSERT_NE(jan, kInvalidValue);
  std::vector<CategoryId> target = {
      static_cast<CategoryId>(TimeUnit::kMonth), ex_.domain_cat};

  // Group_high((1999Q4, amazon.com), (month, domain)) = {fact_03}.
  std::vector<ValueId> cell1 = {q4, ex_.dom_amazon};
  auto g1 = GroupHigh(*reduced_, cell1, target);
  ASSERT_EQ(g1.size(), 1u);
  EXPECT_EQ(reduced_->FactName(g1[0]), "fact_03");

  // Group_high((1999, amazon.com), ...) = ∅ (no fact maps *directly* to the
  // year value).
  std::vector<ValueId> cell2 = {y1999, ex_.dom_amazon};
  EXPECT_TRUE(GroupHigh(*reduced_, cell2, target).empty());

  // Group_high((2000/1, gatech.edu), ...) = {fact_6}.
  std::vector<ValueId> cell3 = {jan, ex_.dom_gatech};
  auto g3 = GroupHigh(*reduced_, cell3, target);
  ASSERT_EQ(g3.size(), 1u);
  EXPECT_EQ(reduced_->FactName(g3[0]), "fact_6");
}

TEST_F(QueryAggregateTest, Figure5AvailabilityAggregation) {
  // Q5 = α[Time.month, URL.domain](O): fact_03/fact_12 stay at quarter (no
  // finer level available), fact_45 stays, fact_6 aggregates to month/domain.
  std::vector<CategoryId> target = {
      static_cast<CategoryId>(TimeUnit::kMonth), ex_.domain_cat};
  auto agg = AggregateFormation(*reduced_, target);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999Q4|amazon.com", {2, 689, 3, 68}},
      {"1999Q4|cnn.com", {2, 2489, 7, 94}},
      {"2000/1|cnn.com", {2, 955, 10, 99}},
      {"2000/1|gatech.edu", {1, 32, 1, 12}},
  };
  EXPECT_EQ(Snapshot(agg.value()), expected);
}

TEST_F(QueryAggregateTest, Q4YearDomainAggregation) {
  // Q4 = α[Time.year, URL.domain](O): year and domain are available for all
  // facts, so the result has uniform granularity.
  std::vector<CategoryId> target = {
      static_cast<CategoryId>(TimeUnit::kYear), ex_.domain_cat};
  auto agg = AggregateFormation(*reduced_, target);
  ASSERT_TRUE(agg.ok());
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999|amazon.com", {2, 689, 3, 68}},
      {"1999|cnn.com", {2, 2489, 7, 94}},
      {"2000|cnn.com", {2, 955, 10, 99}},
      {"2000|gatech.edu", {1, 32, 1, 12}},
  };
  EXPECT_EQ(Snapshot(agg.value()), expected);
}

TEST_F(QueryAggregateTest, StrictApproachDropsCoarseFacts) {
  std::vector<CategoryId> target = {
      static_cast<CategoryId>(TimeUnit::kMonth), ex_.domain_cat};
  auto agg = AggregateFormation(*reduced_, target,
                                AggregationApproach::kStrict);
  ASSERT_TRUE(agg.ok());
  // The two quarter-level facts are dropped.
  std::map<std::string, std::vector<int64_t>> expected = {
      {"2000/1|cnn.com", {2, 955, 10, 99}},
      {"2000/1|gatech.edu", {1, 32, 1, 12}},
  };
  EXPECT_EQ(Snapshot(agg.value()), expected);
}

TEST_F(QueryAggregateTest, LubApproachUnifiesGranularity) {
  std::vector<CategoryId> target = {
      static_cast<CategoryId>(TimeUnit::kMonth), ex_.domain_cat};
  auto agg = AggregateFormation(*reduced_, target, AggregationApproach::kLub);
  ASSERT_TRUE(agg.ok());
  // LUB(month, quarter) = quarter: everything lands at quarter/domain.
  std::map<std::string, std::vector<int64_t>> expected = {
      {"1999Q4|amazon.com", {2, 689, 3, 68}},
      {"1999Q4|cnn.com", {2, 2489, 7, 94}},
      {"2000Q1|cnn.com", {2, 955, 10, 99}},
      {"2000Q1|gatech.edu", {1, 32, 1, 12}},
  };
  EXPECT_EQ(Snapshot(agg.value()), expected);
}

TEST_F(QueryAggregateTest, DisaggregatedApproachSplitsUniformly) {
  // The paper's fourth approach: quarter-level facts are split across their
  // materialized months, giving a uniform month/domain answer whose SUM
  // totals stay exact (but are imprecise per cell).
  std::vector<CategoryId> target = {
      static_cast<CategoryId>(TimeUnit::kMonth), ex_.domain_cat};
  auto agg = AggregateFormation(*reduced_, target,
                                AggregationApproach::kDisaggregated);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  const MultidimensionalObject& r = agg.value();
  // All cells at exactly (month, domain).
  for (FactId f = 0; f < r.num_facts(); ++f) {
    EXPECT_EQ(r.Gran(f)[ex_.time_dim],
              static_cast<CategoryId>(TimeUnit::kMonth));
    EXPECT_EQ(r.Gran(f)[ex_.url_dim], ex_.domain_cat);
  }
  // fact_03 (1999Q4, amazon.com)[2,689,3,68] splits over the two
  // materialized months 1999/11 and 1999/12: 1+1, 345+344, 2+1, 34+34.
  std::map<std::string, std::vector<int64_t>> snap = Snapshot(r);
  ASSERT_TRUE(snap.count("1999/11|amazon.com"));
  ASSERT_TRUE(snap.count("1999/12|amazon.com"));
  EXPECT_EQ(snap["1999/11|amazon.com"][ex_.number_of] +
                snap["1999/12|amazon.com"][ex_.number_of],
            2);
  EXPECT_EQ(snap["1999/11|amazon.com"][ex_.dwell_time] +
                snap["1999/12|amazon.com"][ex_.dwell_time],
            689);
  // Global SUM totals are preserved exactly.
  int64_t dwell = 0, number = 0;
  for (FactId f = 0; f < r.num_facts(); ++f) {
    number += r.Measure(f, ex_.number_of);
    dwell += r.Measure(f, ex_.dwell_time);
  }
  EXPECT_EQ(number, 7);
  EXPECT_EQ(dwell, 4165);
}

TEST_F(QueryAggregateTest, TwoStepAggregationEqualsDirect) {
  // Distributivity: α[year, domain_grp] == α over α[month, domain] pieces.
  std::vector<CategoryId> mid = {static_cast<CategoryId>(TimeUnit::kMonth),
                                 ex_.domain_cat};
  std::vector<CategoryId> top = {static_cast<CategoryId>(TimeUnit::kYear),
                                 ex_.domain_grp_cat};
  auto direct = AggregateFormation(*reduced_, top);
  ASSERT_TRUE(direct.ok());
  auto step1 = AggregateFormation(*reduced_, mid);
  ASSERT_TRUE(step1.ok());
  auto step2 = AggregateFormation(step1.value(), top);
  ASSERT_TRUE(step2.ok());
  EXPECT_EQ(Snapshot(direct.value()), Snapshot(step2.value()));
}

TEST_F(QueryAggregateTest, AggregateToTopCollapsesEverything) {
  std::vector<CategoryId> target = {
      static_cast<CategoryId>(TimeUnit::kTop),
      ex_.mo->dimension(ex_.url_dim)->type().top()};
  auto agg = AggregateFormation(*reduced_, target);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg.value().num_facts(), 1u);
  // Totals over Table 2: 7 clicks, 4165 dwell, 21 delivery, 273 KB.
  EXPECT_EQ(agg.value().Measure(0, ex_.number_of), 7);
  EXPECT_EQ(agg.value().Measure(0, ex_.dwell_time), 4165);
  EXPECT_EQ(agg.value().Measure(0, ex_.delivery_time), 21);
  EXPECT_EQ(agg.value().Measure(0, ex_.datasize), 273);
}

TEST_F(QueryAggregateTest, MinMaxMeasuresAggregateDistributively) {
  // Build a small MO with MIN/MAX measures to exercise non-SUM folds.
  auto time = std::make_shared<Dimension>(Dimension::MakeTimeDimension());
  std::vector<MeasureType> ms = {{"fastest", AggFn::kMin},
                                 {"slowest", AggFn::kMax}};
  MultidimensionalObject mo(
      "Ping", std::vector<std::shared_ptr<Dimension>>{time}, ms);
  for (int d = 1; d <= 3; ++d) {
    ValueId day =
        time->EnsureTimeValue(DayGranule(CivilDate{2000, 1, d})).take();
    std::vector<ValueId> coords = {day};
    std::vector<int64_t> meas = {10 * d, 10 * d};
    ASSERT_TRUE(mo.AddBottomFact(coords, meas).ok());
  }
  std::vector<CategoryId> target = {static_cast<CategoryId>(TimeUnit::kMonth)};
  auto agg = AggregateFormation(mo, target);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg.value().num_facts(), 1u);
  EXPECT_EQ(agg.value().Measure(0, 0), 10);  // MIN
  EXPECT_EQ(agg.value().Measure(0, 1), 30);  // MAX
}

}  // namespace
}  // namespace dwred
