// MO tests: the fact base of paper Section 3 — fact-dimension relations,
// characterization (f ~> v), Gran, bottom-insert enforcement, names and
// provenance — validated on the Table 2 example.

#include "mdm/mo.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"

namespace dwred {
namespace {

TEST(MoTest, PaperExampleMatchesTable2) {
  IspExample ex = MakeIspExample();
  const MultidimensionalObject& mo = *ex.mo;
  EXPECT_EQ(mo.fact_type(), "Click");
  EXPECT_EQ(mo.num_dimensions(), 2u);
  EXPECT_EQ(mo.num_measures(), 4u);
  ASSERT_EQ(mo.num_facts(), 7u);

  // fact_1: 1999/12/4, www.cnn.com/health, (1, 2335, 5, 52).
  const Dimension& time = *mo.dimension(ex.time_dim);
  EXPECT_EQ(time.granule(mo.Coord(ex.facts[1], ex.time_dim)),
            DayGranule(CivilDate{1999, 12, 4}));
  EXPECT_EQ(mo.Coord(ex.facts[1], ex.url_dim), ex.url_health);
  EXPECT_EQ(mo.Measure(ex.facts[1], ex.number_of), 1);
  EXPECT_EQ(mo.Measure(ex.facts[1], ex.dwell_time), 2335);
  EXPECT_EQ(mo.Measure(ex.facts[1], ex.delivery_time), 5);
  EXPECT_EQ(mo.Measure(ex.facts[1], ex.datasize), 52);

  EXPECT_EQ(mo.FactName(ex.facts[3]), "fact_3");
}

TEST(MoTest, CharacterizationFollowsHierarchies) {
  IspExample ex = MakeIspExample();
  const MultidimensionalObject& mo = *ex.mo;
  // fact_1 ~> www.cnn.com/health ~> cnn.com ~> .com ~> T.
  EXPECT_TRUE(mo.Characterizes(ex.facts[1], ex.url_dim, ex.url_health));
  EXPECT_TRUE(mo.Characterizes(ex.facts[1], ex.url_dim, ex.dom_cnn));
  EXPECT_TRUE(mo.Characterizes(ex.facts[1], ex.url_dim, ex.grp_com));
  EXPECT_FALSE(mo.Characterizes(ex.facts[1], ex.url_dim, ex.dom_amazon));
  // fact_1 ~> 1999W48 and ~> 1999Q4 (parallel hierarchy).
  const Dimension& time = *mo.dimension(ex.time_dim);
  ValueId w48 = time.FindTimeValue(WeekGranule(1999, 48));
  ValueId q4 = time.FindTimeValue(QuarterGranule(1999, 4));
  ASSERT_NE(w48, kInvalidValue);
  ASSERT_NE(q4, kInvalidValue);
  EXPECT_TRUE(mo.Characterizes(ex.facts[1], ex.time_dim, w48));
  EXPECT_TRUE(mo.Characterizes(ex.facts[1], ex.time_dim, q4));
}

TEST(MoTest, GranReportsBottomForUserFacts) {
  IspExample ex = MakeIspExample();
  std::vector<CategoryId> g = ex.mo->Gran(ex.facts[0]);
  EXPECT_EQ(g[ex.time_dim],
            ex.mo->dimension(ex.time_dim)->type().bottom());
  EXPECT_EQ(g[ex.url_dim], ex.url_cat);
}

TEST(MoTest, AddBottomFactRejectsAggregatedCoords) {
  IspExample ex = MakeIspExample();
  // A month value is not a bottom coordinate.
  auto time = ex.mo->dimension(ex.time_dim);
  ValueId month = time->FindTimeValue(MonthGranule(1999, 12));
  ASSERT_NE(month, kInvalidValue);
  std::vector<ValueId> coords = {month, ex.url_cnn};
  std::vector<int64_t> meas = {1, 1, 1, 1};
  EXPECT_FALSE(ex.mo->AddBottomFact(coords, meas).ok());
  // But AddFact (library-internal path) accepts it.
  EXPECT_TRUE(ex.mo->AddFact(coords, meas).ok());
  // Mapping to ⊤ is allowed for user inserts ("unknown value").
  std::vector<ValueId> coords_top = {ex.mo->dimension(ex.time_dim)->top_value(),
                                     ex.url_cnn};
  EXPECT_TRUE(ex.mo->AddBottomFact(coords_top, meas).ok());
}

TEST(MoTest, AddFactValidatesArity) {
  IspExample ex = MakeIspExample();
  std::vector<ValueId> coords = {0};  // wrong arity
  std::vector<int64_t> meas = {1, 1, 1, 1};
  EXPECT_FALSE(ex.mo->AddFact(coords, meas).ok());
  std::vector<ValueId> coords2 = {0, ex.url_cnn};
  std::vector<int64_t> meas2 = {1, 1};
  EXPECT_FALSE(ex.mo->AddFact(coords2, meas2).ok());
}

TEST(MoTest, ProvenanceAndNames) {
  IspExample ex = MakeIspExample();
  ex.mo->SetProvenance(ex.facts[0], {ex.facts[0], ex.facts[3]}, 1);
  const std::vector<FactId>* prov = ex.mo->Provenance(ex.facts[0]);
  ASSERT_NE(prov, nullptr);
  EXPECT_EQ(prov->size(), 2u);
  EXPECT_EQ(ex.mo->ResponsibleAction(ex.facts[0]), 1u);
  EXPECT_EQ(ex.mo->Provenance(ex.facts[1]), nullptr);
  EXPECT_EQ(ex.mo->ResponsibleAction(ex.facts[1]), kNoAction);
}

TEST(MoTest, MeasureLookupByName) {
  IspExample ex = MakeIspExample();
  auto m = ex.mo->MeasureByName("Dwell_time");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value(), ex.dwell_time);
  EXPECT_FALSE(ex.mo->MeasureByName("NoSuch").ok());
  auto d = ex.mo->DimensionByName("URL");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), ex.url_dim);
}

TEST(MoTest, FormatFact) {
  IspExample ex = MakeIspExample();
  EXPECT_EQ(ex.mo->FormatFact(ex.facts[6]),
            "fact_6: (2000/1/20, www.cc.gatech.edu) [1, 32, 1, 12]");
}

}  // namespace
}  // namespace dwred
