// Specification-dynamics tests (paper Section 5.1, Definitions 3 and 4): the
// insert operator's all-or-nothing consistency check and the delete
// operator's no-current-effect test, including the paper's a7/a8 example of
// stopping a NOW-relative action.

#include "reduce/dynamics.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "reduce/semantics.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class DynamicsTest : public ::testing::Test {
 protected:
  Action Parse(const char* text, const char* name) {
    auto r = ParseAction(*ex_.mo, text, name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.take();
  }

  IspExample ex_ = MakeIspExample();
};

TEST_F(DynamicsTest, InsertValidatesTheUnion) {
  ReductionSpecification empty;
  // Inserting the shrinking a1 alone fails; inserting {a1, a2} together
  // succeeds (Definition 3 checks the union, and sets are inserted jointly).
  auto solo = InsertActions(*ex_.mo, empty, {Parse(paper::kA1, "a1")});
  ASSERT_FALSE(solo.ok());
  EXPECT_EQ(solo.status().code(), StatusCode::kGrowingViolation);

  auto both = InsertActions(
      *ex_.mo, empty, {Parse(paper::kA1, "a1"), Parse(paper::kA2, "a2")});
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_EQ(both.value().size(), 2u);
}

TEST_F(DynamicsTest, FailedInsertLeavesSpecUntouched) {
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA2, "a2"));
  auto bad = InsertActions(*ex_.mo, spec, {Parse(paper::kA4Week, "a4")});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(spec.size(), 1u);  // caller's spec unchanged
}

TEST_F(DynamicsTest, PaperA7A8DeleteExample) {
  // Section 5.1: in month 2000/12, a8 aggregates exactly the facts a7 does,
  // at the same granularity, so a7 can be deleted after inserting a8.
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA7, "a7"));
  auto with_a8 = InsertActions(*ex_.mo, spec, {Parse(paper::kA8, "a8")});
  ASSERT_TRUE(with_a8.ok());

  int64_t t = DaysFromCivil({2000, 12, 5});
  auto deleted = DeleteActions(*ex_.mo, with_a8.value(), {0}, t);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(deleted.value().size(), 1u);
  EXPECT_EQ(deleted.value().action(0).name, "a8");
}

TEST_F(DynamicsTest, DeleteRejectedWithoutEquivalentCover) {
  // Deleting a7 while it still has an effect (and nothing equal covers the
  // affected facts) is refused.
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA7, "a7"));
  int64_t t = DaysFromCivil({2000, 12, 5});
  auto deleted = DeleteActions(*ex_.mo, spec, {0}, t);
  ASSERT_FALSE(deleted.ok());
  EXPECT_EQ(deleted.status().code(), StatusCode::kDeleteRejected);
}

TEST_F(DynamicsTest, DeleteAllowedWhenActionHasNoEffectOnFacts) {
  // An action whose predicate selects no current fact deletes cleanly — the
  // paper's motivation for checking against the actual MO instance rather
  // than all possible instances.
  ReductionSpecification spec;
  spec.Add(Parse("a[Time.month, URL.domain] s[Time.month <= 1990/12]", "old"));
  int64_t t = DaysFromCivil({2000, 12, 5});
  auto deleted = DeleteActions(*ex_.mo, spec, {0}, t);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_TRUE(deleted.value().empty());
}

TEST_F(DynamicsTest, DeleteAllowedWhenFactsAlreadyStrictlyAbove) {
  // Facts already reduced strictly above an action's granularity: the action
  // is not responsible for them (Definition 4's Cat(a) <_p Gran(f) branch).
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA1, "a1"));
  spec.Add(Parse(paper::kA2, "a2"));
  int64_t t = DaysFromCivil({2002, 6, 5});
  // By 2002, everything a1 could touch is at quarter level via a2.
  auto reduced = Reduce(*ex_.mo, spec, t);
  ASSERT_TRUE(reduced.ok());
  auto deleted = DeleteActions(reduced.value(), spec, {0}, t);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(deleted.value().size(), 1u);
}

TEST_F(DynamicsTest, DeleteIsAllOrNothing) {
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA7, "a7"));
  spec.Add(Parse("a[Time.month, URL.domain] s[Time.month <= 1990/12]", "old"));
  int64_t t = DaysFromCivil({2000, 12, 5});
  // "old" alone is deletable, but bundling the still-effective a7 fails the
  // whole request; nothing is removed.
  auto deleted = DeleteActions(*ex_.mo, spec, {0, 1}, t);
  ASSERT_FALSE(deleted.ok());
  EXPECT_EQ(spec.size(), 2u);
}

TEST_F(DynamicsTest, DeleteRejectsUnknownId) {
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA8, "a8"));
  auto deleted = DeleteActions(*ex_.mo, spec, {5}, 0);
  ASSERT_FALSE(deleted.ok());
  EXPECT_EQ(deleted.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dwred
