// Calendar substrate tests: civil-date round trips, ISO weeks (validated
// against the paper's Table 2 week column), granule ranges, parsing, and
// NOW-relative arithmetic.

#include "chrono/granule.h"

#include <gtest/gtest.h>

namespace dwred {
namespace {

TEST(CivilTest, EpochIsDayZero) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(CivilFromDays(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilTest, RoundTripAcrossCenturies) {
  for (int64_t day = -200000; day <= 200000; day += 97) {
    EXPECT_EQ(DaysFromCivil(CivilFromDays(day)), day) << day;
  }
}

TEST(CivilTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_TRUE(IsLeapYear(1996));
  EXPECT_FALSE(IsLeapYear(1999));
  EXPECT_EQ(DaysInMonth(2000, 2), 29);
  EXPECT_EQ(DaysInMonth(1999, 2), 28);
  EXPECT_EQ(DaysInMonth(1999, 12), 31);
}

TEST(CivilTest, WeekdayKnownDates) {
  // 1970-01-01 was a Thursday (Monday = 0).
  EXPECT_EQ(WeekdayFromDays(0), 3);
  // 1999-11-23 was a Tuesday.
  EXPECT_EQ(WeekdayFromDays(DaysFromCivil({1999, 11, 23})), 1);
  // 2000-01-01 was a Saturday.
  EXPECT_EQ(WeekdayFromDays(DaysFromCivil({2000, 1, 1})), 5);
}

TEST(CivilTest, IsoWeeksMatchPaperTable2) {
  // Table 2: 1999/11/23 -> 1999W47, 1999/12/4 -> 1999W48,
  // 1999/12/31 -> 1999W52, 2000/1/4 -> 2000W1, 2000/1/20 -> 2000W3.
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({1999, 11, 23})),
            (IsoWeek{1999, 47}));
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({1999, 12, 4})), (IsoWeek{1999, 48}));
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({1999, 12, 31})),
            (IsoWeek{1999, 52}));
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({2000, 1, 4})), (IsoWeek{2000, 1}));
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({2000, 1, 20})), (IsoWeek{2000, 3}));
}

TEST(CivilTest, IsoWeekYearBoundaries) {
  // 1998-12-31 (Thursday) is 1998W53; 1999-01-01 (Friday) too.
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({1998, 12, 31})),
            (IsoWeek{1998, 53}));
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({1999, 1, 1})), (IsoWeek{1998, 53}));
  // 2001-01-01 is a Monday: 2001W1.
  EXPECT_EQ(IsoWeekFromDays(DaysFromCivil({2001, 1, 1})), (IsoWeek{2001, 1}));
}

TEST(CivilTest, IsoWeekRoundTrip) {
  for (int64_t day = DaysFromCivil({1995, 1, 1});
       day < DaysFromCivil({2005, 1, 1}); day += 13) {
    IsoWeek w = IsoWeekFromDays(day);
    int64_t monday = DaysFromIsoWeek(w.iso_year, w.week);
    EXPECT_LE(monday, day);
    EXPECT_LT(day - monday, 7);
    EXPECT_EQ(WeekdayFromDays(monday), 0);
  }
}

TEST(CivilTest, AddMonthsClampsDay) {
  EXPECT_EQ(AddMonths({2000, 1, 31}, 1), (CivilDate{2000, 2, 29}));
  EXPECT_EQ(AddMonths({1999, 1, 31}, 1), (CivilDate{1999, 2, 28}));
  EXPECT_EQ(AddMonths({2000, 3, 15}, -12), (CivilDate{1999, 3, 15}));
  EXPECT_EQ(AddMonths({1999, 12, 5}, 1), (CivilDate{2000, 1, 5}));
}

TEST(GranuleTest, DayRangesOfGranules) {
  TimeGranule q4 = QuarterGranule(1999, 4);
  EXPECT_EQ(FirstDayOf(q4), DaysFromCivil({1999, 10, 1}));
  EXPECT_EQ(LastDayOf(q4), DaysFromCivil({1999, 12, 31}));

  TimeGranule w48 = WeekGranule(1999, 48);
  EXPECT_EQ(FirstDayOf(w48), DaysFromCivil({1999, 11, 29}));
  EXPECT_EQ(LastDayOf(w48), DaysFromCivil({1999, 12, 5}));

  TimeGranule feb = MonthGranule(2000, 2);
  EXPECT_EQ(LastDayOf(feb) - FirstDayOf(feb) + 1, 29);

  TimeGranule y = YearGranule(2000);
  EXPECT_EQ(LastDayOf(y) - FirstDayOf(y) + 1, 366);
}

TEST(GranuleTest, GranuleOfDayRollsUpCorrectly) {
  int64_t day = DaysFromCivil({1999, 12, 4});
  EXPECT_EQ(GranuleOfDay(day, TimeUnit::kWeek), WeekGranule(1999, 48));
  EXPECT_EQ(GranuleOfDay(day, TimeUnit::kMonth), MonthGranule(1999, 12));
  EXPECT_EQ(GranuleOfDay(day, TimeUnit::kQuarter), QuarterGranule(1999, 4));
  EXPECT_EQ(GranuleOfDay(day, TimeUnit::kYear), YearGranule(1999));
  EXPECT_EQ(GranuleOfDay(day, TimeUnit::kTop), TopGranule());
}

TEST(GranuleTest, Containment) {
  EXPECT_TRUE(GranuleContains(QuarterGranule(1999, 4), MonthGranule(1999, 12)));
  EXPECT_FALSE(GranuleContains(QuarterGranule(1999, 4), MonthGranule(2000, 1)));
  // Week 1999W52 (Dec 27 - Jan 2) straddles the year boundary: contained in
  // neither 1999/12 nor 2000/1.
  EXPECT_FALSE(GranuleContains(MonthGranule(1999, 12), WeekGranule(1999, 52)));
  EXPECT_FALSE(GranuleContains(MonthGranule(2000, 1), WeekGranule(1999, 52)));
  EXPECT_TRUE(GranuleContains(TopGranule(), YearGranule(1999)));
  EXPECT_TRUE(
      GranuleContains(MonthGranule(1999, 12), DayGranule(CivilDate{1999, 12, 4})));
}

TEST(GranuleTest, FormatMatchesPaperNotation) {
  EXPECT_EQ(FormatGranule(DayGranule(CivilDate{1999, 11, 23})), "1999/11/23");
  EXPECT_EQ(FormatGranule(WeekGranule(1999, 47)), "1999W47");
  EXPECT_EQ(FormatGranule(MonthGranule(1999, 12)), "1999/12");
  EXPECT_EQ(FormatGranule(QuarterGranule(1999, 4)), "1999Q4");
  EXPECT_EQ(FormatGranule(YearGranule(1999)), "1999");
  EXPECT_EQ(FormatGranule(TopGranule()), "TOP");
}

TEST(GranuleTest, ParseRoundTrip) {
  const char* cases[] = {"1999/11/23", "1999W47", "1999/12",
                         "1999Q4",     "1999",    "TOP"};
  for (const char* c : cases) {
    auto r = ParseGranule(c);
    ASSERT_TRUE(r.ok()) << c;
    EXPECT_EQ(FormatGranule(r.value()), c);
  }
}

TEST(GranuleTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseGranule("1999/13").ok());
  EXPECT_FALSE(ParseGranule("1999/2/30").ok());
  EXPECT_FALSE(ParseGranule("1999Q5").ok());
  EXPECT_FALSE(ParseGranule("1999W54").ok());
  EXPECT_FALSE(ParseGranule("19x9").ok());
  EXPECT_FALSE(ParseGranule("1999/1/2/3").ok());
}

TEST(GranuleTest, SpanParseAndFormat) {
  auto r = ParseSpan("6 months");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (TimeSpan{TimeUnit::kMonth, 6}));
  EXPECT_EQ(FormatSpan(r.value()), "6 months");
  EXPECT_EQ(ParseSpan("1 day").value(), (TimeSpan{TimeUnit::kDay, 1}));
  EXPECT_EQ(ParseSpan("4 quarters").value(), (TimeSpan{TimeUnit::kQuarter, 4}));
  EXPECT_FALSE(ParseSpan("six months").ok());
  EXPECT_FALSE(ParseSpan("6 fortnights").ok());
}

TEST(GranuleTest, ShiftDaysCalendarArithmetic) {
  int64_t d = DaysFromCivil({2000, 11, 5});
  EXPECT_EQ(ShiftDays(d, {TimeUnit::kMonth, -6}), DaysFromCivil({2000, 5, 5}));
  EXPECT_EQ(ShiftDays(d, {TimeUnit::kQuarter, -4}),
            DaysFromCivil({1999, 11, 5}));
  EXPECT_EQ(ShiftDays(d, {TimeUnit::kYear, -1}), DaysFromCivil({1999, 11, 5}));
  EXPECT_EQ(ShiftDays(d, {TimeUnit::kWeek, 2}), d + 14);
  EXPECT_EQ(ShiftDays(d, {TimeUnit::kDay, -30}), d - 30);
}

TEST(GranuleTest, ResolveNowExpressionCoercesToUnit) {
  // The paper's a2 predicate at 2000/11/5: NOW - 4 quarters at category
  // quarter is 1999Q4.
  int64_t now = DaysFromCivil({2000, 11, 5});
  EXPECT_EQ(ResolveNowExpression(now, {TimeUnit::kQuarter, -4},
                                 TimeUnit::kQuarter),
            QuarterGranule(1999, 4));
  // a1's bounds at 2000/6/5: months 1999/6 .. 1999/12.
  now = DaysFromCivil({2000, 6, 5});
  EXPECT_EQ(ResolveNowExpression(now, {TimeUnit::kMonth, -12},
                                 TimeUnit::kMonth),
            MonthGranule(1999, 6));
  EXPECT_EQ(ResolveNowExpression(now, {TimeUnit::kMonth, -6}, TimeUnit::kMonth),
            MonthGranule(1999, 12));
}

TEST(GranuleTest, PrevNextGranule) {
  EXPECT_EQ(PreviousGranule(MonthGranule(2000, 1)), MonthGranule(1999, 12));
  EXPECT_EQ(NextGranule(QuarterGranule(1999, 4)), QuarterGranule(2000, 1));
  EXPECT_EQ(NextGranule(YearGranule(1999)), YearGranule(2000));
}

class GranuleSweepTest : public ::testing::TestWithParam<TimeUnit> {};

TEST_P(GranuleSweepTest, DayRangePartitionsTimeline) {
  // Property: consecutive granules of one unit tile the timeline with no gap
  // or overlap.
  TimeUnit unit = GetParam();
  int64_t day = DaysFromCivil({1998, 1, 1});
  TimeGranule g = GranuleOfDay(day, unit);
  for (int i = 0; i < 120; ++i) {
    TimeGranule n = NextGranule(g);
    EXPECT_EQ(LastDayOf(g) + 1, FirstDayOf(n)) << TimeUnitName(unit);
    // Every day in the granule maps back to the granule.
    EXPECT_EQ(GranuleOfDay(FirstDayOf(g), unit), g);
    EXPECT_EQ(GranuleOfDay(LastDayOf(g), unit), g);
    g = n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllUnits, GranuleSweepTest,
                         ::testing::Values(TimeUnit::kDay, TimeUnit::kWeek,
                                           TimeUnit::kMonth, TimeUnit::kQuarter,
                                           TimeUnit::kYear),
                         [](const auto& info) {
                           return TimeUnitName(info.param);
                         });

}  // namespace
}  // namespace dwred
