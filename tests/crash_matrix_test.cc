// The crash matrix (docs/DURABILITY.md): for every fault site the durability
// layer registers, kill the process at that site mid-workload in a forked
// child, recover the directory in the parent, finish the remaining passes,
// and require the final checkpoint to be byte-identical to a fault-free run.
//
// Byte identity of the snapshot is the strongest equivalence the layer can
// offer: it covers fact rows, interned dimension values *and their interning
// order*, provenance, responsible actions, and the specification text.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chrono/civil.h"
#include "exec/thread_pool.h"
#include "io/csv.h"
#include "io/recovery.h"
#include "mdm/paper_example.h"
#include "obs/metrics.h"
#include "paper_actions.h"
#include "spec/parser.h"
#include "testing/fault.h"

namespace dwred {
namespace {

int64_t Now2000() { return DaysFromCivil({2000, 6, 5}); }
int64_t Now2001() { return DaysFromCivil({2001, 6, 5}); }

using WorkloadOp = std::function<Status(DurableWarehouse&)>;

/// A crash-matrix workload: how to create the directory and the journaled
/// passes to run against it, in order. Op k commits as LSN k+1, so after a
/// recovery `applied_lsn()` is exactly the number of ops already done.
struct Workload {
  const char* name;
  bool subcube_spec;  ///< create with the paper spec (subcube workload)
  std::vector<WorkloadOp> ops;
};

Workload PlainWorkload() {
  Workload w;
  w.name = "plain";
  w.subcube_spec = false;
  w.ops = {
      [](DurableWarehouse& dw) {
        IspExample batch = MakeIspExample();
        return dw.InsertFacts(*batch.mo);
      },
      [](DurableWarehouse& dw) {
        // a1 alone shrinks; the {a1, a2} union is admissible jointly.
        return dw.ApplyActions({{"a1", paper::kA1}, {"a2", paper::kA2}});
      },
      [](DurableWarehouse& dw) { return dw.ReducePass(Now2000()); },
      [](DurableWarehouse& dw) {
        return dw.ApplyActions({{"a7", paper::kA7}});
      },
      [](DurableWarehouse& dw) { return dw.ReducePass(Now2001()); },
  };
  return w;
}

Workload SubcubeWorkload() {
  Workload w;
  w.name = "subcube";
  w.subcube_spec = true;
  w.ops = {
      [](DurableWarehouse& dw) {
        IspExample batch = MakeIspExample();
        return dw.InsertFacts(*batch.mo);
      },
      [](DurableWarehouse& dw) { return dw.EnableSubcubes(); },
      [](DurableWarehouse& dw) { return dw.SynchronizePass(Now2000()); },
      [](DurableWarehouse& dw) { return dw.SynchronizePass(Now2001()); },
  };
  return w;
}

Result<std::unique_ptr<DurableWarehouse>> CreateFor(const std::string& dir,
                                                    const Workload& w) {
  IspExample ex = MakeIspExample();
  ReductionSpecification spec;
  if (w.subcube_spec) {
    DWRED_ASSIGN_OR_RETURN(Action a1, ParseAction(*ex.mo, paper::kA1, "a1"));
    DWRED_ASSIGN_OR_RETURN(Action a2, ParseAction(*ex.mo, paper::kA2, "a2"));
    spec.Add(std::move(a1));
    spec.Add(std::move(a2));
  }
  return DurableWarehouse::Create(dir, std::move(ex.mo), std::move(spec));
}

Status RunOps(DurableWarehouse& dw, const Workload& w, size_t from_op) {
  for (size_t i = from_op; i < w.ops.size(); ++i) {
    DWRED_RETURN_IF_ERROR(w.ops[i](dw));
  }
  return dw.Checkpoint();
}

/// Runs the whole workload from an empty directory through the final
/// checkpoint. Used by the golden run, by the (armed) crash child, and by
/// the parent when the child died before anything durable existed.
Status RunFullWorkload(const std::string& dir, const Workload& w) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  DWRED_ASSIGN_OR_RETURN(std::unique_ptr<DurableWarehouse> dw,
                         CreateFor(dir, w));
  return RunOps(*dw, w, 0);
}

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.dwsnap";
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Run the matrix with a live multi-threaded pool: journaled passes shard
    // over worker threads, so armed faults kill children while shards are in
    // flight, and each forked child exercises the pool's post-fork rebuild.
    exec::ThreadPool::ResetGlobal(4);
    ASSERT_GE(exec::ThreadPool::Global().num_threads(), 2);
    base_ = (std::filesystem::temp_directory_path() /
             ("dwred_crash_matrix_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override {
    testing::FaultInjector::Global().Disarm();
    std::error_code ec;
    std::filesystem::remove_all(base_, ec);
  }
  std::string base_;
};

/// How many occurrences of one site to kill at, per workload. Sites that
/// fire fewer times are exhausted early (the child completes and the parent
/// moves on); hot sites like "file.fsync" are sampled up to this depth.
constexpr int kMaxNthPerSite = 4;

void RunMatrix(const std::string& base, const Workload& w) {
  // Fault-free golden run; registers every fault site the workload crosses.
  const std::string golden_dir = base + "/golden_" + w.name;
  ASSERT_TRUE(RunFullWorkload(golden_dir, w).ok());
  auto golden = ReadFile(SnapshotPath(golden_dir));
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  std::vector<std::string> sites = testing::FaultInjector::Global().SitesSeen();
  ASSERT_FALSE(sites.empty());
  int crashes = 0;

  for (const std::string& site : sites) {
    for (int nth = 1; nth <= kMaxNthPerSite; ++nth) {
      const std::string dir =
          base + "/" + w.name + "_" + site + "_" + std::to_string(nth);
      pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        // Child: run the workload from scratch and die at the armed site.
        // _exit codes: 0 = completed (site fired fewer than nth times),
        // 7 = unexpected Status failure, kFaultKillExitCode = the fault.
        testing::FaultInjector::Global().Arm(site, nth,
                                             testing::FaultMode::kKill);
        Status s = RunFullWorkload(dir, w);
        ::_exit(s.ok() ? 0 : 7);
      }
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status)) << site << " nth=" << nth;
      int code = WEXITSTATUS(status);
      if (code == 0) break;  // site exhausted for this workload
      ASSERT_EQ(code, testing::kFaultKillExitCode) << site << " nth=" << nth;
      ++crashes;

      // Parent: recover whatever the child left behind and finish the job.
      RecoveryStats stats;
      auto rec = RecoverWarehouse(dir, &stats);
      std::unique_ptr<DurableWarehouse> dw;
      if (rec.ok()) {
        dw = rec.take();
        ASSERT_TRUE(RunOps(*dw, w, static_cast<size_t>(dw->applied_lsn()))
                        .ok())
            << site << " nth=" << nth;
      } else {
        // Death before the initial snapshot became durable: the directory
        // holds nothing recoverable, so the whole workload reruns.
        ASSERT_TRUE(RunFullWorkload(dir, w).ok()) << site << " nth=" << nth;
      }
      auto recovered = ReadFile(SnapshotPath(dir));
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ(recovered.value(), golden.value())
          << "snapshot diverged after crash at " << site << " nth=" << nth;
    }
  }
  ASSERT_GT(crashes, 0) << "the matrix never killed a child — sites broken?";
}

TEST_F(CrashMatrixTest, PlainWorkloadSurvivesEveryFaultSite) {
  RunMatrix(base_, PlainWorkload());
}

TEST_F(CrashMatrixTest, SubcubeWorkloadSurvivesEveryFaultSite) {
  RunMatrix(base_, SubcubeWorkload());
}

TEST_F(CrashMatrixTest, RecoveryCountersAreExposed) {
  // The matrix runs recoveries in this process; the obs exposition must show
  // the durability counters.
  const std::string dir = base_ + "/counters";
  ASSERT_TRUE(RunFullWorkload(dir, PlainWorkload()).ok());
  RecoveryStats stats;
  auto rec = RecoverWarehouse(dir, &stats);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  std::string text = obs::MetricsRegistry::Global().RenderText();
  for (const char* metric :
       {"dwred_recovery_runs", "dwred_journal_records_appended",
        "dwred_snapshot_checkpoints", "dwred_io_fsync_seconds"}) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric;
  }
}

}  // namespace
}  // namespace dwred
