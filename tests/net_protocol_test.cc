// Wire-protocol torture tests (docs/SERVER.md): framing round trips, torn
// frames fed byte by byte, oversized length prefixes, CRC corruption,
// pipelined multi-frame buffers, and a deterministic bit-flip fuzz sweep.
// The decoder's contract: every input either yields a valid frame, asks for
// more bytes, or reports kBad with a diagnostic — it never crashes, never
// over-reads, and never returns bytes that fail their CRC.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.h"
#include "io/wire.h"

namespace dwred::net {
namespace {

Request MakeRequest() {
  Request req;
  req.cmd = Command::kQuery;
  req.deadline_ms = 1500;
  req.max_rows = 1u << 20;
  req.now_day = 11266;
  req.flags = kQuerySynchronized | kQueryExplain;
  req.a = "URL.domain_grp = .com AND NOW - 24 months <= Time.month";
  req.b = "Time.month, URL.domain_grp";
  return req;
}

TEST(NetProtocolTest, RequestRoundTrip) {
  Request req = MakeRequest();
  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().cmd, req.cmd);
  EXPECT_EQ(decoded.value().deadline_ms, req.deadline_ms);
  EXPECT_EQ(decoded.value().max_rows, req.max_rows);
  EXPECT_EQ(decoded.value().now_day, req.now_day);
  EXPECT_EQ(decoded.value().flags, req.flags);
  EXPECT_EQ(decoded.value().a, req.a);
  EXPECT_EQ(decoded.value().b, req.b);
}

TEST(NetProtocolTest, ResponseRoundTrip) {
  Response resp;
  resp.code = StatusCode::kDeadlineExceeded;
  resp.message = "deadline expired at cancel.net.dispatch";
  resp.body = std::string("cells\n") + std::string(4096, 'x');
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().code, resp.code);
  EXPECT_EQ(decoded.value().message, resp.message);
  EXPECT_EQ(decoded.value().body, resp.body);
}

TEST(NetProtocolTest, UnknownCommandAndTrailingBytesRejected) {
  std::string p = EncodeRequest(MakeRequest());
  std::string bad_cmd = p;
  bad_cmd[0] = static_cast<char>(200);
  EXPECT_FALSE(DecodeRequest(bad_cmd).ok());
  bad_cmd[0] = 0;  // 0 is below kPing
  EXPECT_FALSE(DecodeRequest(bad_cmd).ok());

  std::string trailing = p + "x";
  EXPECT_FALSE(DecodeRequest(trailing).ok());
  EXPECT_FALSE(DecodeRequest(p.substr(0, p.size() - 1)).ok());
  EXPECT_FALSE(DecodeRequest("").ok());
}

// A frame delivered one byte at a time must return kNeedMore at every proper
// prefix and the full payload at exactly the final byte.
TEST(NetProtocolTest, TornFrameByteByByte) {
  std::string frame;
  const std::string payload = EncodeRequest(MakeRequest());
  AppendFrame(&frame, payload);

  std::string buf, out, err;
  size_t consumed = 0;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    buf += frame[i];
    EXPECT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kNeedMore)
        << "at " << i + 1 << " of " << frame.size() << " bytes";
  }
  buf += frame.back();
  ASSERT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(consumed, frame.size());
}

// An oversized length prefix must fail immediately (kBad), not wait for
// gigabytes that will never arrive.
TEST(NetProtocolTest, OversizedLengthPrefixFailsFast) {
  std::string buf;
  wire::PutU32(&buf, kMaxFrameBytes + 1);
  wire::PutU32(&buf, 0);
  std::string out, err;
  size_t consumed = 0;
  EXPECT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kBad);
  EXPECT_NE(err.find("exceeds cap"), std::string::npos) << err;

  // 0xFFFFFFFF — the classic desynchronized-stream read.
  buf.clear();
  wire::PutU32(&buf, 0xffffffffu);
  wire::PutU32(&buf, 0);
  EXPECT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kBad);
}

// Flipping any single bit of a frame must yield kBad (CRC or length-cap) or
// — only for flips inside the length prefix that shrink/grow the claimed
// length — kNeedMore. Never a successful parse of corrupted payload bytes.
TEST(NetProtocolTest, EverySingleBitFlipIsDetected) {
  std::string frame;
  const std::string payload = EncodeRequest(MakeRequest());
  AppendFrame(&frame, payload);

  std::string out, err;
  size_t consumed = 0;
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FrameParse fp = ExtractFrame(corrupt, &out, &consumed, &err);
      if (fp == FrameParse::kFrame) {
        // A shrunk length prefix can still frame a prefix of the payload —
        // but then the CRC must have been recomputed to match, which a
        // single bit flip cannot do. Any successful parse is a failure.
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " produced a valid frame";
      }
    }
  }
}

// Deterministic random fuzz: feed garbage buffers and mutated frames; the
// extractor must never crash and never hand back payload failing its CRC.
TEST(NetProtocolTest, RandomBufferFuzzNeverCrashes) {
  SplitMix64 rng(20260808);
  std::string out, err;
  size_t consumed = 0;
  for (int round = 0; round < 2000; ++round) {
    size_t len = rng.Below(64) + 1;
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.Below(256)));
    }
    FrameParse fp = ExtractFrame(buf, &out, &consumed, &err);
    if (fp == FrameParse::kFrame) {
      EXPECT_LE(consumed, buf.size());
    }
  }
  // Mutated real frames: random byte overwritten with a random value.
  std::string frame;
  AppendFrame(&frame, EncodeRequest(MakeRequest()));
  for (int round = 0; round < 2000; ++round) {
    std::string corrupt = frame;
    corrupt[rng.Below(corrupt.size())] =
        static_cast<char>(rng.Below(256));
    (void)ExtractFrame(corrupt, &out, &consumed, &err);  // must not crash
  }
}

// Pipelining: several frames concatenated into one buffer extract in order,
// each consuming exactly its own bytes.
TEST(NetProtocolTest, PipelinedFramesExtractInOrder) {
  std::vector<std::string> payloads;
  std::string buf;
  for (int i = 0; i < 16; ++i) {
    Request req = MakeRequest();
    req.now_day = 11266 + i;
    req.a = "request #" + std::to_string(i);
    payloads.push_back(EncodeRequest(req));
    AppendFrame(&buf, payloads.back());
  }
  std::string out, err;
  size_t consumed = 0;
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kFrame)
        << "frame " << i;
    EXPECT_EQ(out, payloads[static_cast<size_t>(i)]);
    buf.erase(0, consumed);
  }
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kNeedMore);
}

// An interleaved stream: good frame, corrupt frame, good frame. The decoder
// reports the corruption at the poisoned frame, not before.
TEST(NetProtocolTest, CorruptionDetectedAtItsFrameNotBefore) {
  std::string good1, bad, good2;
  AppendFrame(&good1, "first");
  AppendFrame(&bad, "second");
  bad[bad.size() - 1] ^= 0x40;  // corrupt the payload of the middle frame
  AppendFrame(&good2, "third");
  std::string buf = good1 + bad + good2;

  std::string out, err;
  size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kFrame);
  EXPECT_EQ(out, "first");
  buf.erase(0, consumed);
  EXPECT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kBad);
  EXPECT_NE(err.find("CRC"), std::string::npos) << err;
}

// Zero-length payloads are legal frames (used by nothing today, but the
// framing layer must not treat empty as torn).
TEST(NetProtocolTest, EmptyPayloadFrames) {
  std::string buf;
  AppendFrame(&buf, "");
  std::string out = "sentinel", err;
  size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(buf, &out, &consumed, &err), FrameParse::kFrame);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(consumed, kFrameHeaderBytes);
}

}  // namespace
}  // namespace dwred::net
