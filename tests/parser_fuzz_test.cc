// Parser robustness: randomized mutations of valid specification and
// predicate texts must never crash or corrupt state — every malformed input
// surfaces as a ParseError/NotFound/InvalidArgument Status. (The library is
// exception-free; a crash here would take the warehouse down with it.)

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "spec/parser.h"

namespace dwred {
namespace {

const char* kSeeds[] = {
    paper::kA1,
    paper::kA2,
    paper::kA7,
    paper::kA8,
    paper::kS53A1,
    paper::kS53A2,
    "d s[Time.year <= NOW - 10 years]",
    "a[Time.week, URL.url] s[Time.week IN {1999W47, 1999W48} AND "
    "URL.domain IN {cnn.com, 'gatech.edu'}]",
    "a[Time.day, URL.url] s[NOT (URL.domain != cnn.com OR false)]",
};

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, MutatedInputsNeverCrash) {
  IspExample ex = MakeIspExample();
  SplitMix64 rng(GetParam());
  const char charset[] = "as[]{}()<>=!,.0123456789NOWmonthquarter ";
  int parsed_ok = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string text = kSeeds[rng.Below(std::size(kSeeds))];
    int mutations = 1 + static_cast<int>(rng.Below(6));
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      switch (rng.Below(3)) {
        case 0:  // replace a character
          text[rng.Below(text.size())] =
              charset[rng.Below(sizeof(charset) - 1)];
          break;
        case 1:  // delete a span
          text.erase(rng.Below(text.size()),
                     1 + rng.Below(5));
          break;
        case 2:  // duplicate a span
          {
            size_t pos = rng.Below(text.size());
            size_t len = std::min<size_t>(1 + rng.Below(8),
                                          text.size() - pos);
            text.insert(pos, text.substr(pos, len));
          }
          break;
      }
    }
    auto action = ParseAction(*ex.mo, text);
    if (action.ok()) ++parsed_ok;  // some mutations stay valid — fine
    auto pred = ParsePredicate(*ex.mo, text);
    (void)pred;
  }
  // The example MO must be untouched by any amount of failed parsing.
  EXPECT_EQ(ex.mo->num_facts(), 7u);
}

TEST_P(ParserFuzzTest, RandomGarbageNeverCrashes) {
  IspExample ex = MakeIspExample();
  SplitMix64 rng(GetParam() ^ 0xdeadULL);
  for (int iter = 0; iter < 200; ++iter) {
    std::string text;
    size_t len = rng.Below(120);
    for (size_t i = 0; i < len; ++i) {
      text += static_cast<char>(32 + rng.Below(95));
    }
    EXPECT_NO_FATAL_FAILURE({
      auto a = ParseAction(*ex.mo, text);
      (void)a;
      auto p = ParsePredicate(*ex.mo, text);
      (void)p;
      auto g = ParseGranularityList(*ex.mo, text);
      (void)g;
      auto t = ParseGranule(text);
      (void)t;
      auto s = ParseSpan(text);
      (void)s;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace dwred
