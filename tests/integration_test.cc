// Cross-module integration properties on randomized workloads:
//
//  * physical/semantic agreement — the subcube warehouse (Section 7) holds
//    exactly the facts of Definition 2's reduced MO at every point in time;
//  * gradual == direct reduction (a consequence of Growing + distributive
//    aggregates);
//  * un-synchronized queries equal synchronized ones (Figure 9's soundness);
//  * aggregate totals are invariant under reduction (reduction deletes
//    detail, never measure mass);
//  * conservative ⊆ liberal selection on reduced data, across operators.
//
// All workloads are seeded; the suites are parameterized over seeds.

#include <gtest/gtest.h>

#include <map>

#include "query/operators.h"
#include "reduce/dynamics.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "subcube/manager.h"
#include "workload/clickstream.h"

namespace dwred {
namespace {

std::map<std::string, std::vector<int64_t>> Snapshot(
    const MultidimensionalObject& mo) {
  std::map<std::string, std::vector<int64_t>> out;
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    std::string key;
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      if (d) key += "|";
      key += mo.dimension(static_cast<DimensionId>(d))
                 ->value_name(mo.Coord(f, static_cast<DimensionId>(d)));
    }
    std::vector<int64_t> meas;
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      meas.push_back(mo.Measure(f, static_cast<MeasureId>(m)));
    }
    auto [it, inserted] = out.emplace(key, meas);
    if (!inserted) {
      // Union duplicate cells by summing (the comparisons below only ever
      // hit this for unreduced duplicate day/url cells).
      for (size_t m = 0; m < meas.size(); ++m) it->second[m] += meas[m];
    }
  }
  return out;
}

ReductionSpecification TieredPolicy(const MultidimensionalObject& mo) {
  ReductionSpecification spec;
  const char* texts[] = {
      "a[Time.month, URL.domain] s["
      "NOW - 12 months <= Time.month <= NOW - 6 months]",
      "a[Time.quarter, URL.domain] s["
      "NOW - 36 months <= Time.quarter AND Time.quarter <= NOW - 12 months]",
      "a[Time.year, URL.domain_grp] s[Time.year <= NOW - 36 months]",
  };
  for (int i = 0; i < 3; ++i) {
    spec.Add(ParseAction(mo, texts[i], "tier" + std::to_string(i + 1)).take());
  }
  return spec;
}

class RandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ClickstreamWorkload MakeW(size_t n) {
    ClickstreamConfig cfg;
    cfg.seed = GetParam();
    cfg.num_clicks = n;
    cfg.start = {1999, 1, 1};
    cfg.span_days = 3 * 365;
    cfg.num_domains = 40;
    cfg.urls_per_domain = 6;
    return MakeClickstream(cfg);
  }
};

TEST_P(RandomWorkloadTest, SubcubeWarehouseEqualsSemanticReduction) {
  ClickstreamWorkload w = MakeW(4000);
  ReductionSpecification spec = TieredPolicy(*w.mo);
  ASSERT_TRUE(ValidateSpecification(*w.mo, spec).ok());

  auto mgr = SubcubeManager::Create(
                 "Click", w.mo->dimensions(),
                 std::vector<MeasureType>(w.mo->measure_types()), spec)
                 .take();
  ASSERT_TRUE(mgr.InsertBottomFacts(*w.mo).ok());

  MultidimensionalObject semantic = std::move(*w.mo);
  for (int year = 2000; year <= 2004; ++year) {
    for (int month : {3, 9}) {
      int64_t t = DaysFromCivil({year, month, 1});
      ASSERT_TRUE(mgr.Synchronize(t).ok());
      semantic =
          Reduce(semantic, spec, t, {/*track_provenance=*/false}).take();
      auto physical = mgr.Query(nullptr, nullptr, t, true);
      ASSERT_TRUE(physical.ok());
      EXPECT_EQ(Snapshot(physical.value()), Snapshot(semantic))
          << "diverged at " << year << "/" << month;
    }
  }
}

TEST_P(RandomWorkloadTest, GradualEqualsDirectReduction) {
  ClickstreamWorkload w = MakeW(4000);
  ReductionSpecification spec = TieredPolicy(*w.mo);
  int64_t t_final = DaysFromCivil({2004, 1, 1});

  auto direct = Reduce(*w.mo, spec, t_final, {false}).take();
  MultidimensionalObject gradual = std::move(*w.mo);
  for (int ym = 1999 * 12 + 3; ym <= 2003 * 12 + 11; ym += 2) {
    gradual =
        Reduce(gradual, spec, DaysFromCivil({ym / 12, ym % 12 + 1, 7}), {false})
            .take();
  }
  gradual = Reduce(gradual, spec, t_final, {false}).take();
  EXPECT_EQ(Snapshot(gradual), Snapshot(direct));
}

TEST_P(RandomWorkloadTest, ReductionPreservesSumTotals) {
  ClickstreamWorkload w = MakeW(3000);
  ReductionSpecification spec = TieredPolicy(*w.mo);
  auto totals = [](const MultidimensionalObject& mo) {
    std::vector<int64_t> t(mo.num_measures(), 0);
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      for (size_t m = 0; m < mo.num_measures(); ++m) {
        t[m] += mo.Measure(f, static_cast<MeasureId>(m));
      }
    }
    return t;
  };
  std::vector<int64_t> before = totals(*w.mo);
  for (int year : {2000, 2001, 2002, 2003, 2005}) {
    auto reduced = Reduce(*w.mo, spec, DaysFromCivil({year, 6, 1}), {false});
    ASSERT_TRUE(reduced.ok());
    EXPECT_EQ(totals(reduced.value()), before) << year;
  }
}

TEST_P(RandomWorkloadTest, UnsyncQueryEqualsSyncQuery) {
  ClickstreamWorkload w = MakeW(3000);
  ReductionSpecification spec = TieredPolicy(*w.mo);
  auto mgr = SubcubeManager::Create(
                 "Click", w.mo->dimensions(),
                 std::vector<MeasureType>(w.mo->measure_types()), spec)
                 .take();
  ASSERT_TRUE(mgr.InsertBottomFacts(*w.mo).ok());
  ASSERT_TRUE(mgr.Synchronize(DaysFromCivil({2001, 1, 1})).ok());

  // Advance within the one-level-out-of-sync window and compare.
  int64_t t = DaysFromCivil({2001, 8, 1});
  auto gran = ParseGranularityList(mgr.context(), "Time.month, URL.domain_grp")
                  .take();
  auto unsync = mgr.Query(nullptr, &gran, t, false);
  ASSERT_TRUE(unsync.ok());
  ASSERT_TRUE(mgr.Synchronize(t).ok());
  auto sync = mgr.Query(nullptr, &gran, t, true);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(Snapshot(unsync.value()), Snapshot(sync.value()));
}

TEST_P(RandomWorkloadTest, ConservativeSubsetOfLiberalOnReducedData) {
  ClickstreamWorkload w = MakeW(2000);
  ReductionSpecification spec = TieredPolicy(*w.mo);
  int64_t t = DaysFromCivil({2002, 6, 1});
  auto reduced = Reduce(*w.mo, spec, t, {false}).take();

  const char* preds[] = {
      "Time.month <= 2000/6",
      "Time.week <= 2000W26",
      "Time.day >= 2001/1/1",
      "Time.quarter = 2000Q2",
      "URL.url = www.site0.com/page0",
      "URL.domain != site2.org",
      "Time.month <= 2000/6 AND URL.domain_grp = .com",
  };
  for (const char* p : preds) {
    auto pred = ParsePredicate(reduced, p).take();
    auto cons = Select(reduced, *pred, t).take();
    auto lib = Select(reduced, *pred, t, SelectionApproach::kLiberal).take();
    auto wgt = Select(reduced, *pred, t, SelectionApproach::kWeighted).take();
    EXPECT_LE(cons.mo.num_facts(), wgt.mo.num_facts()) << p;
    EXPECT_LE(wgt.mo.num_facts(), lib.mo.num_facts()) << p;
    for (double wv : wgt.weights) {
      EXPECT_GT(wv, 0.0);
      EXPECT_LE(wv, 1.0);
    }
  }
}

TEST_P(RandomWorkloadTest, AggLevelIsMonotoneOverTime) {
  // The Growing property, checked empirically: per-cell aggregation levels
  // never decrease as NOW advances (paper eq. (17)).
  ClickstreamWorkload w = MakeW(500);
  ReductionSpecification spec = TieredPolicy(*w.mo);
  const MultidimensionalObject& mo = *w.mo;
  std::vector<std::vector<CategoryId>> prev(mo.num_facts());
  bool first = true;
  for (int ym = 1999 * 12; ym <= 2004 * 12; ym += 3) {
    int64_t t = DaysFromCivil({ym / 12, ym % 12 + 1, 1});
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      std::vector<ValueId> cell = {mo.Coord(f, 0), mo.Coord(f, 1)};
      std::vector<CategoryId> levels;
      for (DimensionId d = 0; d < 2; ++d) {
        auto lvl = AggLevel(mo, spec, d, cell, t);
        ASSERT_TRUE(lvl.ok());
        levels.push_back(lvl.value());
      }
      if (!first) {
        for (DimensionId d = 0; d < 2; ++d) {
          EXPECT_TRUE(
              mo.dimension(d)->type().Leq(prev[f][d], levels[d]))
              << "cell of fact " << f << " regressed in dimension " << d
              << " at " << FormatGranule(DayGranule(t));
        }
      }
      prev[f] = levels;
    }
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace dwred
