// Cache-coherence differential tests (docs/CACHING.md): the epoch-versioned
// query cache must never change query bytes — only their cost. The
// interleaving test drives query → insert → query → synchronize → query
// across epochs, thread counts {1, 4}, and cache on/off, asserting
// byte-for-byte identical transcripts; the NOW-advance case pins that a
// NOW-relative predicate re-evaluated at a later day never sees a stale
// window. The concurrent test (also in the TSan suite, tools/run_tier1.sh)
// races epoch-pinned readers against mutating writers: any two reads that
// pinned the same epoch must agree byte for byte.

#include <cstdlib>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "exec/thread_pool.h"
#include "mdm/paper_example.h"
#include "obs/metrics.h"
#include "paper_actions.h"
#include "spec/parser.h"
#include "subcube/manager.h"

namespace dwred {
namespace {

/// Full-fidelity serialization of an MO (the differential harness's
/// currency): any divergence shows up as a string mismatch.
std::string Fingerprint(const MultidimensionalObject& mo) {
  std::ostringstream out;
  out << mo.num_facts() << "\n";
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    out << f << "|" << mo.FactName(f) << "|";
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      out << mo.Coord(f, static_cast<DimensionId>(d)) << ",";
    }
    out << "|";
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      out << mo.Measure(f, static_cast<MeasureId>(m)) << ",";
    }
    out << "\n";
  }
  return out.str();
}

class CacheCoherenceTest : public ::testing::Test {
 protected:
  // Each test manages DWRED_CACHE_DISABLED itself; start from a clean slate
  // so the suite behaves the same under the CI cache-off job, which exports
  // the variable process-wide.
  void SetUp() override { ::unsetenv("DWRED_CACHE_DISABLED"); }

  void TearDown() override {
    ::unsetenv("DWRED_CACHE_DISABLED");
    exec::ThreadPool::ResetGlobal(2);
  }

  /// A fresh paper-example warehouse with the {a1, a2} specification and the
  /// Table 2 facts loaded into the bottom cube.
  std::unique_ptr<SubcubeManager> MakeWarehouse(IspExample* ex_out) {
    *ex_out = MakeIspExample();
    IspExample& ex = *ex_out;
    ReductionSpecification spec;
    spec.Add(ParseAction(*ex.mo, paper::kA1, "a1").take());
    spec.Add(ParseAction(*ex.mo, paper::kA2, "a2").take());
    auto m = SubcubeManager::Create(
        "Click", ex.mo->dimensions(),
        {ex.mo->measure_type(0), ex.mo->measure_type(1), ex.mo->measure_type(2),
         ex.mo->measure_type(3)},
        spec);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    auto mgr = std::make_unique<SubcubeManager>(m.take());
    EXPECT_TRUE(mgr->InsertBottomFacts(*ex.mo).ok());
    return mgr;
  }
};

// The interleaved mutate/query transcript is byte-identical across thread
// counts and cache on/off — every query answered from the cache equals the
// one recomputed from the tables, at every epoch of the warehouse's life.
TEST_F(CacheCoherenceTest, InterleavedEpochsMatchCacheOffByteForByte) {
  auto run = [&](int threads, bool disabled) -> std::string {
    if (disabled) {
      ::setenv("DWRED_CACHE_DISABLED", "1", 1);
    } else {
      ::unsetenv("DWRED_CACHE_DISABLED");
    }
    exec::ThreadPool::ResetGlobal(threads);
    IspExample ex;
    std::unique_ptr<SubcubeManager> mgr = MakeWarehouse(&ex);
    auto pred = ParsePredicate(
                    *ex.mo, "URL.domain_grp = .com AND Time.month <= NOW - 6 months")
                    .take();
    auto gran = ParseGranularityList(*ex.mo, "Time.month, URL.domain").take();
    const bool parallel = threads > 1;

    std::ostringstream transcript;
    auto query = [&](int64_t now, bool synced, const char* tag) {
      // Twice per step: the second evaluation must serve the same bytes
      // whether it hits the cache (enabled) or recomputes (disabled).
      for (int rep = 0; rep < 2; ++rep) {
        uint64_t epoch = 0;
        auto r = mgr->Query(&*pred, &gran, now, synced, parallel, &epoch);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (!r.ok()) return;
        transcript << tag << " rep " << rep << " epoch " << epoch << "\n"
                   << Fingerprint(r.value());
      }
    };

    const int64_t day1 = DaysFromCivil({2000, 6, 5});
    const int64_t day2 = DaysFromCivil({2000, 11, 5});
    query(day1, /*synced=*/false, "q1");
    // Mutation: a new bottom fact bumps the epoch and drops cached results.
    MultidimensionalObject batch("Click", ex.mo->dimensions(),
                                 std::vector<MeasureType>(
                                     ex.mo->measure_types()));
    std::vector<ValueId> cell = {ex.mo->Coord(6, ex.time_dim), ex.url_cnn};
    std::vector<int64_t> meas = {2, 40, 8, 2048};
    EXPECT_TRUE(batch.AddFact(cell, meas).ok());
    EXPECT_TRUE(mgr->InsertBottomFacts(batch).ok());
    query(day1, /*synced=*/false, "q2");
    EXPECT_TRUE(mgr->Synchronize(day1).ok());
    query(day1, /*synced=*/true, "q3");
    // NOW advances without any mutation: same predicate, later day — a
    // cached q3 window must not be served for q4.
    query(day2, /*synced=*/false, "q4");
    EXPECT_TRUE(mgr->Synchronize(day2).ok());
    query(day2, /*synced=*/true, "q5");
    return transcript.str();
  };

  std::string baseline;  // threads=1, cache enabled
  for (int threads : {1, 4}) {
    for (bool disabled : {false, true}) {
      std::string got = run(threads, disabled);
      if (baseline.empty()) {
        baseline = std::move(got);
        ASSERT_FALSE(baseline.empty());
        continue;
      }
      EXPECT_EQ(got, baseline)
          << "threads=" << threads << " cache_disabled=" << disabled
          << " diverged";
    }
  }
}

// The second identical query in an unchanged epoch is served from the cache
// (hit counter advances, bytes identical); with DWRED_CACHE_DISABLED set the
// counters stand still and the bytes still match.
TEST_F(CacheCoherenceTest, RepeatHitsAdvanceCountersOnlyWhenEnabled) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& hits = reg.GetCounter("dwred_cache_query_hits");

  IspExample ex;
  std::unique_ptr<SubcubeManager> mgr = MakeWarehouse(&ex);
  auto gran = ParseGranularityList(*ex.mo, "Time.month, URL.domain").take();
  const int64_t now = DaysFromCivil({2000, 11, 5});

  auto first = mgr->Query(nullptr, &gran, now, /*assume_synchronized=*/false);
  ASSERT_TRUE(first.ok());
  uint64_t hits_before = hits.Value();
  auto second = mgr->Query(nullptr, &gran, now, /*assume_synchronized=*/false);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(hits.Value(), hits_before + 1);
  EXPECT_EQ(Fingerprint(first.value()), Fingerprint(second.value()));

  ::setenv("DWRED_CACHE_DISABLED", "1", 1);
  hits_before = hits.Value();
  auto third = mgr->Query(nullptr, &gran, now, /*assume_synchronized=*/false);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(hits.Value(), hits_before);
  EXPECT_EQ(Fingerprint(first.value()), Fingerprint(third.value()));

  // A mutation bumps the epoch: the old key is unreachable, so the next
  // enabled lookup misses and recomputes against the new tables.
  ::unsetenv("DWRED_CACHE_DISABLED");
  const uint64_t epoch_before = mgr->epoch();
  MultidimensionalObject batch("Click", ex.mo->dimensions(),
                               std::vector<MeasureType>(ex.mo->measure_types()));
  std::vector<ValueId> cell = {ex.mo->Coord(0, ex.time_dim), ex.url_cnn};
  std::vector<int64_t> meas = {1, 1, 1, 1};
  ASSERT_TRUE(batch.AddFact(cell, meas).ok());
  ASSERT_TRUE(mgr->InsertBottomFacts(batch).ok());
  EXPECT_GT(mgr->epoch(), epoch_before);
  auto fourth = mgr->Query(nullptr, &gran, now, /*assume_synchronized=*/false);
  ASSERT_TRUE(fourth.ok());
  EXPECT_NE(Fingerprint(first.value()), Fingerprint(fourth.value()));
}

// Readers race writers under the snapshot lock: every read pins an epoch,
// and any two reads that pinned the same epoch — across all reader threads,
// cache hits and misses alike — must be byte-identical. Runs under TSan in
// the sanitizer suite.
TEST_F(CacheCoherenceTest, ConcurrentReadersAgreePerPinnedEpoch) {
  IspExample ex;
  std::unique_ptr<SubcubeManager> mgr = MakeWarehouse(&ex);
  auto gran = ParseGranularityList(*ex.mo, "Time.month, URL.domain").take();
  const int64_t now = DaysFromCivil({2000, 11, 5});

  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 40;
  std::mutex mu;
  std::map<uint64_t, std::string> by_epoch;  // epoch -> first fingerprint seen
  std::atomic<bool> mismatch{false};
  std::atomic<bool> failed{false};

  auto reader = [&]() {
    for (int i = 0; i < kReadsPerReader && !failed.load(); ++i) {
      uint64_t epoch = 0;
      auto r = mgr->Query(nullptr, &gran, now, /*assume_synchronized=*/false,
                          /*parallel=*/false, &epoch);
      if (!r.ok()) {
        failed.store(true);
        return;
      }
      std::string fp = Fingerprint(r.value());
      std::lock_guard<std::mutex> lock(mu);
      auto it = by_epoch.find(epoch);
      if (it == by_epoch.end()) {
        by_epoch.emplace(epoch, std::move(fp));
      } else if (it->second != fp) {
        mismatch.store(true);
      }
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) readers.emplace_back(reader);

  // Writer: interleave appends and synchronizations, each bumping the epoch
  // under the exclusive lock.
  for (int w = 0; w < 10; ++w) {
    MultidimensionalObject batch("Click", ex.mo->dimensions(),
                                 std::vector<MeasureType>(
                                     ex.mo->measure_types()));
    std::vector<ValueId> cell = {ex.mo->Coord(w % 7, ex.time_dim), ex.url_cnn};
    std::vector<int64_t> meas = {1, w, 1, 1};
    ASSERT_TRUE(batch.AddFact(cell, meas).ok());
    ASSERT_TRUE(mgr->InsertBottomFacts(batch).ok());
    if (w % 3 == 2) {
      ASSERT_TRUE(mgr->Synchronize(DaysFromCivil({2000, 6, 5})).ok());
    }
  }

  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(failed.load());
  EXPECT_FALSE(mismatch.load()) << "same pinned epoch, different bytes";
  // The readers observed at least the initial epoch; mutations may or may
  // not have interleaved with reads on a given run, but every observed epoch
  // was internally consistent.
  EXPECT_GE(by_epoch.size(), 1u);
}

}  // namespace
}  // namespace dwred
