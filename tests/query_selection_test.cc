// Query-selection tests (paper Section 6.1): the mixed-granularity comparison
// operators of Definition 5 — including the paper's worked expressions
// (1999Q4 < 1999W48 = FALSE, 1999Q4 < 2000W1 = TRUE, the ∈ examples) — and
// the conservative / liberal / weighted selection approaches on the reduced
// MO of Figure 3 (queries Q1, Q2, Q3).

#include "query/operators.h"

#include <gtest/gtest.h>

#include <set>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "reduce/semantics.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class QuerySelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.Add(ParseAction(*ex_.mo, paper::kA1, "a1").take());
    spec_.Add(ParseAction(*ex_.mo, paper::kA2, "a2").take());
    t_ = DaysFromCivil({2000, 11, 5});
    auto r = Reduce(*ex_.mo, spec_, t_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reduced_ = std::make_unique<MultidimensionalObject>(r.take());
    for (FactId f = 0; f < reduced_->num_facts(); ++f) {
      by_name_[reduced_->FactName(f)] = f;
    }
  }

  double EvalOn(const char* pred_text, FactId f, SelectionApproach ap) {
    auto p = ParsePredicate(*reduced_, pred_text);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return EvalQueryPredOnFact(*p.value(), *reduced_, f, t_, ap);
  }

  std::set<std::string> SelectNames(const char* pred_text,
                                    SelectionApproach ap) {
    auto p = ParsePredicate(*reduced_, pred_text);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    auto sel = Select(*reduced_, *p.value(), t_, ap);
    EXPECT_TRUE(sel.ok());
    std::set<std::string> names;
    for (FactId f = 0; f < sel.value().mo.num_facts(); ++f) {
      names.insert(sel.value().mo.FactName(f));
    }
    return names;
  }

  IspExample ex_ = MakeIspExample();
  ReductionSpecification spec_;
  std::unique_ptr<MultidimensionalObject> reduced_;
  std::map<std::string, FactId> by_name_;
  int64_t t_ = 0;
};

TEST_F(QuerySelectionTest, PaperExpressionQ4LessThanW48IsFalse) {
  // Section 6.1: "1999Q4 < 1999W48" on fact_03 evaluates FALSE (1999/12/31
  // is not before week 48)...
  EXPECT_EQ(EvalOn("Time.week > 1999W48", by_name_["fact_03"],
                   SelectionApproach::kConservative),
            0.0);
  EXPECT_EQ(EvalOn("Time.week < 1999W48", by_name_["fact_03"],
                   SelectionApproach::kConservative),
            0.0);
  // ... while "1999Q4 < 2000W1" evaluates TRUE.
  EXPECT_EQ(EvalOn("Time.week < 2000W1", by_name_["fact_03"],
                   SelectionApproach::kConservative),
            1.0);
}

TEST_F(QuerySelectionTest, PaperMembershipExamples) {
  // 1999Q4 ∈ {1999W39..2000W1} = TRUE; ∈ {1999W39..1999W51} = FALSE
  // (1999/12/31 lies in week 52).
  std::string wide = "Time.week IN {";
  for (int w = 39; w <= 52; ++w) {
    wide += "1999W" + std::to_string(w) + ", ";
  }
  wide += "2000W1}";
  EXPECT_EQ(EvalOn(wide.c_str(), by_name_["fact_03"],
                   SelectionApproach::kConservative),
            1.0);

  std::string narrow = "Time.week IN {";
  for (int w = 39; w <= 51; ++w) {
    narrow += "1999W" + std::to_string(w);
    narrow += (w == 51) ? "}" : ", ";
  }
  EXPECT_EQ(EvalOn(narrow.c_str(), by_name_["fact_03"],
                   SelectionApproach::kConservative),
            0.0);
  // Liberal: possibly inside (2 of 3 materialized days are).
  EXPECT_EQ(EvalOn(narrow.c_str(), by_name_["fact_03"],
                   SelectionApproach::kLiberal),
            1.0);
  // Weighted: 2 of the 3 materialized days of 1999Q4 fall in weeks 39-51.
  EXPECT_NEAR(EvalOn(narrow.c_str(), by_name_["fact_03"],
                     SelectionApproach::kWeighted),
              2.0 / 3.0, 1e-9);
}

TEST_F(QuerySelectionTest, Q1QuarterSelectionIsExact) {
  // Q1 = σ[Time.quarter <= 1999Q3]: every fact's granularity is at or below
  // quarter, so the selection is exact and empty here.
  EXPECT_TRUE(SelectNames("Time.quarter <= 1999Q3",
                          SelectionApproach::kConservative)
                  .empty());
  // And with 1999Q4 it returns exactly the two quarter-level facts.
  std::set<std::string> expect = {"fact_03", "fact_12"};
  EXPECT_EQ(SelectNames("Time.quarter <= 1999Q4",
                        SelectionApproach::kConservative),
            expect);
}

TEST_F(QuerySelectionTest, Q2MonthSelectionConservativelyExcludesQuarters) {
  // Q2 = σ[Time.month <= 1999/10]: fact_03/fact_12 (quarter 1999Q4) only
  // partly satisfy it — conservative excludes them.
  EXPECT_TRUE(SelectNames("Time.month <= 1999/10",
                          SelectionApproach::kConservative)
                  .empty());
  // Liberal includes the partly-matching quarter facts.
  std::set<std::string> lib = {"fact_03", "fact_12"};
  EXPECT_EQ(SelectNames("Time.month <= 1999/11", SelectionApproach::kLiberal),
            lib);
}

TEST_F(QuerySelectionTest, Q3WeekSelectionDrillsToDays) {
  // Q3 = σ[Time.week <= 1999W48]: quarter facts drill to days and compare
  // against the week's day range; 1999/12/31 exceeds it -> excluded.
  EXPECT_TRUE(SelectNames("Time.week <= 1999W48",
                          SelectionApproach::kConservative)
                  .empty());
  // With 1999W52 (whose range ends 2000/1/2) the 1999Q4 facts qualify.
  std::set<std::string> expect = {"fact_03", "fact_12"};
  EXPECT_EQ(SelectNames("Time.week <= 1999W52",
                        SelectionApproach::kConservative),
            expect);
}

TEST_F(QuerySelectionTest, UrlSelectionAcrossGranularities) {
  // fact_12 sits at domain level (cnn.com, two materialized urls): a
  // url-level equality is uncertain — excluded conservatively, included
  // liberally, weight 1/2.
  EXPECT_EQ(EvalOn("URL.url = www.cnn.com", by_name_["fact_12"],
                   SelectionApproach::kConservative),
            0.0);
  EXPECT_EQ(EvalOn("URL.url = www.cnn.com", by_name_["fact_12"],
                   SelectionApproach::kLiberal),
            1.0);
  EXPECT_NEAR(EvalOn("URL.url = www.cnn.com", by_name_["fact_12"],
                     SelectionApproach::kWeighted),
              0.5, 1e-9);
  // amazon.com has exactly ONE materialized url, so per Definition 5 the
  // drill-down sets are identical and even the conservative equality holds —
  // the same effect as the paper's one-day week 1999W48.
  EXPECT_EQ(EvalOn("URL.url = www.amazon.com/ex...", by_name_["fact_03"],
                   SelectionApproach::kConservative),
            1.0);
  // Domain-level predicate on a domain-level fact: exact.
  EXPECT_EQ(EvalOn("URL.domain = amazon.com", by_name_["fact_03"],
                   SelectionApproach::kConservative),
            1.0);
  // Group-level predicate rolls up: exact for everything.
  std::set<std::string> com = {"fact_03", "fact_12", "fact_45"};
  EXPECT_EQ(SelectNames("URL.domain_grp = .com",
                        SelectionApproach::kConservative),
            com);
}

TEST_F(QuerySelectionTest, ConservativeNeverExceedsLiberal) {
  // Property: conservative ⊆ liberal for every operator and literal tried.
  const char* preds[] = {
      "Time.month <= 1999/11",     "Time.week < 2000W1",
      "Time.quarter = 1999Q4",     "Time.day >= 2000/1/1",
      "URL.url = www.cnn.com",     "URL.domain != cnn.com",
      "URL.domain IN {cnn.com, gatech.edu}",
  };
  for (const char* p : preds) {
    auto cons = SelectNames(p, SelectionApproach::kConservative);
    auto lib = SelectNames(p, SelectionApproach::kLiberal);
    for (const auto& n : cons) {
      EXPECT_TRUE(lib.count(n)) << p << " lost " << n << " under liberal";
    }
  }
}

TEST_F(QuerySelectionTest, WeightedLiesBetween) {
  const char* preds[] = {"Time.month <= 1999/11", "URL.url = www.cnn.com",
                         "Time.week <= 1999W48"};
  for (const char* p : preds) {
    auto parsed = ParsePredicate(*reduced_, p);
    ASSERT_TRUE(parsed.ok());
    for (FactId f = 0; f < reduced_->num_facts(); ++f) {
      double c = EvalQueryPredOnFact(*parsed.value(), *reduced_, f, t_,
                                     SelectionApproach::kConservative);
      double w = EvalQueryPredOnFact(*parsed.value(), *reduced_, f, t_,
                                     SelectionApproach::kWeighted);
      double l = EvalQueryPredOnFact(*parsed.value(), *reduced_, f, t_,
                                     SelectionApproach::kLiberal);
      EXPECT_LE(c, w + 1e-12) << p << " fact " << f;
      EXPECT_LE(w, l + 1e-12) << p << " fact " << f;
    }
  }
}

TEST_F(QuerySelectionTest, SelectionPreservesSchemaAndAuxData) {
  auto p = ParsePredicate(*reduced_, "URL.domain_grp = .com");
  ASSERT_TRUE(p.ok());
  auto sel = Select(*reduced_, *p.value(), t_);
  ASSERT_TRUE(sel.ok());
  const MultidimensionalObject& s = sel.value().mo;
  EXPECT_EQ(s.num_dimensions(), reduced_->num_dimensions());
  EXPECT_EQ(s.num_measures(), reduced_->num_measures());
  // Provenance flows through selection.
  bool found = false;
  for (FactId f = 0; f < s.num_facts(); ++f) {
    if (s.FactName(f) == "fact_03") {
      const std::vector<FactId>* prov = s.Provenance(f);
      ASSERT_NE(prov, nullptr);
      EXPECT_EQ(*prov, (std::vector<FactId>{0, 3}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dwred
