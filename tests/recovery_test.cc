// Durable-warehouse recovery tests: create/open round trips, journal replay
// without a checkpoint, checkpoint idempotence, rollback of uncommitted
// intents (including an already-applied op whose commit never made it), the
// poison latch after mid-protocol IO failures, and the subcube organization.

#include "io/recovery.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chrono/civil.h"
#include "io/snapshot.h"
#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "spec/parser.h"
#include "testing/fault.h"

namespace dwred {
namespace {

int64_t Now2000() { return DaysFromCivil({2000, 6, 5}); }

ReductionSpecification PaperSpec(const MultidimensionalObject& mo) {
  ReductionSpecification spec;
  spec.Add(ParseAction(mo, paper::kA1, "a1").take());
  spec.Add(ParseAction(mo, paper::kA2, "a2").take());
  return spec;
}

std::string StateBytes(const DurableWarehouse& dw) {
  return SaveWarehouse(dw.mo(), dw.spec());
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("dwred_recovery_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  void TearDown() override {
    testing::FaultInjector::Global().Disarm();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::unique_ptr<DurableWarehouse> CreateExample(ReductionSpecification spec) {
    IspExample ex = MakeIspExample();
    auto dw = DurableWarehouse::Create(dir_, std::move(ex.mo), std::move(spec));
    EXPECT_TRUE(dw.ok()) << dw.status().ToString();
    return dw.ok() ? dw.take() : nullptr;
  }

  std::string dir_;
};

TEST_F(RecoveryTest, CreateThenOpenRoundTrip) {
  auto dw = CreateExample(PaperSpec(*MakeIspExample().mo));
  ASSERT_NE(dw, nullptr);
  EXPECT_EQ(dw->applied_lsn(), 0u);
  std::string before = StateBytes(*dw);
  dw.reset();

  RecoveryStats stats;
  auto back = DurableWarehouse::Open(dir_, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(stats.ops_replayed, 0u);
  EXPECT_EQ(stats.intents_rolled_back, 0u);
  EXPECT_EQ(stats.snapshot_lsn, 0u);
  EXPECT_EQ(StateBytes(*back.value()), before);
}

TEST_F(RecoveryTest, JournalReplayWithoutCheckpoint) {
  auto dw = CreateExample(ReductionSpecification{});
  ASSERT_NE(dw, nullptr);

  IspExample batch = MakeIspExample();
  ASSERT_TRUE(dw->InsertFacts(*batch.mo).ok());
  EXPECT_EQ(dw->mo().num_facts(), 14u);
  // a1 alone shrinks; Definition 3 admits the {a1, a2} union jointly.
  ASSERT_TRUE(dw->ApplyActions({{"a1", paper::kA1}, {"a2", paper::kA2}}).ok());
  ReduceStats rstats;
  ASSERT_TRUE(dw->ReducePass(Now2000(), &rstats).ok());
  EXPECT_EQ(dw->applied_lsn(), 3u);
  std::string live = StateBytes(*dw);
  dw.reset();

  // Reopen replays all three ops from the journal against the initial
  // snapshot and lands on the identical state.
  RecoveryStats stats;
  auto back = DurableWarehouse::Open(dir_, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(stats.snapshot_lsn, 0u);
  EXPECT_EQ(stats.recovered_lsn, 3u);
  EXPECT_EQ(stats.ops_replayed, 3u);
  EXPECT_EQ(back.value()->applied_lsn(), 3u);
  EXPECT_EQ(back.value()->spec().size(), 2u);
  EXPECT_EQ(StateBytes(*back.value()), live);
}

TEST_F(RecoveryTest, CheckpointFoldsTheJournal) {
  auto dw = CreateExample(ReductionSpecification{});
  ASSERT_NE(dw, nullptr);
  ASSERT_TRUE(dw->ApplyActions({{"a7", paper::kA7}}).ok());
  ASSERT_TRUE(dw->ReducePass(Now2000()).ok());
  ASSERT_TRUE(dw->Checkpoint().ok());
  std::string live = StateBytes(*dw);
  dw.reset();

  RecoveryStats stats;
  auto back = DurableWarehouse::Open(dir_, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(stats.snapshot_lsn, 2u);
  EXPECT_EQ(stats.recovered_lsn, 2u);
  EXPECT_EQ(stats.ops_replayed, 0u);
  EXPECT_EQ(StateBytes(*back.value()), live);

  // LSNs keep counting after the checkpoint.
  ASSERT_TRUE(back.value()->ReducePass(Now2000() + 400).ok());
  EXPECT_EQ(back.value()->applied_lsn(), 3u);
}

TEST_F(RecoveryTest, AppliedButUncommittedOpIsRolledBack) {
  auto dw = CreateExample(ReductionSpecification{});
  ASSERT_NE(dw, nullptr);
  ASSERT_TRUE(dw->ApplyActions({{"a7", paper::kA7}}).ok());
  std::string before_reduce = StateBytes(*dw);

  // Fail the commit-record write: the reduce applied in memory, but on disk
  // there is an intent with no commit. The session latches poisoned.
  testing::FaultInjector::Global().Arm("journal.commit.write", 1,
                                       testing::FaultMode::kError);
  Status s = dw->ReducePass(Now2000());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_TRUE(dw->poisoned());
  // Every further mutation fails fast.
  testing::FaultInjector::Global().Disarm();
  EXPECT_FALSE(dw->ReducePass(Now2000()).ok());
  EXPECT_FALSE(dw->Checkpoint().ok());
  dw.reset();

  RecoveryStats stats;
  auto back = DurableWarehouse::Open(dir_, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(stats.intents_rolled_back, 1u);
  EXPECT_EQ(stats.ops_replayed, 1u);  // the committed ApplyActions
  EXPECT_EQ(back.value()->applied_lsn(), 1u);
  EXPECT_EQ(StateBytes(*back.value()), before_reduce);
  // The rolled-back pass can simply be run again.
  ASSERT_TRUE(back.value()->ReducePass(Now2000()).ok());
}

TEST_F(RecoveryTest, FailedIntentAppendDoesNotPoison) {
  auto dw = CreateExample(ReductionSpecification{});
  ASSERT_NE(dw, nullptr);
  testing::FaultInjector::Global().Arm("journal.intent.fsync", 1,
                                       testing::FaultMode::kError);
  EXPECT_FALSE(dw->ApplyActions({{"a7", paper::kA7}}).ok());
  testing::FaultInjector::Global().Disarm();
  // Memory was never touched; the session stays usable and the dead intent
  // is superseded by the retry.
  EXPECT_FALSE(dw->poisoned());
  EXPECT_EQ(dw->spec().size(), 0u);
  ASSERT_TRUE(dw->ApplyActions({{"a7", paper::kA7}}).ok());
  EXPECT_EQ(dw->spec().size(), 1u);
  EXPECT_EQ(dw->applied_lsn(), 1u);
}

TEST_F(RecoveryTest, UserErrorsSurfaceBeforeJournaling) {
  auto dw = CreateExample(ReductionSpecification{});
  ASSERT_NE(dw, nullptr);
  // Ill-formed action text (paper's a3 violates the Section 4.1 constraint).
  EXPECT_FALSE(dw->ApplyActions({{"a3", paper::kA3}}).ok());
  EXPECT_FALSE(dw->poisoned());
  // Deleting a nonexistent action.
  EXPECT_EQ(dw->DeleteAction("ghost", Now2000()).code(), StatusCode::kNotFound);
  // A batch with the wrong shape (one dimension, one measure).
  IspExample ex2 = MakeIspExample();
  std::vector<MeasureType> mt(ex2.mo->measure_types().begin(),
                              ex2.mo->measure_types().end());
  MultidimensionalObject tiny("T", {ex2.mo->dimensions()[0]}, {mt[0]});
  EXPECT_EQ(dw->InsertFacts(tiny).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dw->applied_lsn(), 0u);
  // Nothing reached the journal: reopen replays nothing.
  dw.reset();
  RecoveryStats stats;
  auto back = DurableWarehouse::Open(dir_, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(stats.ops_replayed, 0u);
}

TEST_F(RecoveryTest, DeleteActionRoundTrips) {
  auto dw = CreateExample(ReductionSpecification{});
  ASSERT_NE(dw, nullptr);
  // An action with no effect on the current facts (deletable, Definition 4).
  ASSERT_TRUE(dw->ApplyActions(
                    {{"old", "a[Time.month, URL.domain] s[Time.month <= 1990/12]"}})
                  .ok());
  ASSERT_TRUE(dw->DeleteAction("old", Now2000()).ok());
  EXPECT_TRUE(dw->spec().empty());
  std::string live = StateBytes(*dw);
  dw.reset();

  RecoveryStats stats;
  auto back = DurableWarehouse::Open(dir_, &stats);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(stats.ops_replayed, 2u);
  EXPECT_TRUE(back.value()->spec().empty());
  EXPECT_EQ(StateBytes(*back.value()), live);
}

void ExpectSameSubcubes(const SubcubeManager& a, const SubcubeManager& b) {
  ASSERT_EQ(a.num_subcubes(), b.num_subcubes());
  for (size_t i = 0; i < a.num_subcubes(); ++i) {
    const FactTable& ta = a.subcube(i).table;
    const FactTable& tb = b.subcube(i).table;
    ASSERT_EQ(ta.num_rows(), tb.num_rows()) << "cube " << i;
    ASSERT_EQ(a.subcube(i).granularity, b.subcube(i).granularity);
    for (RowId r = 0; r < ta.num_rows(); ++r) {
      for (size_t d = 0; d < a.subcube(i).granularity.size(); ++d) {
        EXPECT_EQ(ta.Coord(r, d), tb.Coord(r, d)) << "cube " << i;
      }
    }
  }
}

TEST_F(RecoveryTest, SubcubeModeRoundTrips) {
  auto dw = CreateExample(PaperSpec(*MakeIspExample().mo));
  ASSERT_NE(dw, nullptr);
  ASSERT_TRUE(dw->EnableSubcubes().ok());
  ASSERT_NE(dw->subcubes(), nullptr);
  size_t migrated = 0;
  ASSERT_TRUE(dw->SynchronizePass(Now2000(), &migrated).ok());
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(dw->applied_lsn(), 2u);

  // Plain-mode passes are rejected once the subcube organization is on.
  EXPECT_FALSE(dw->ReducePass(Now2000()).ok());

  // Reopen without a checkpoint: both ops replay.
  RecoveryStats stats;
  auto replayed = DurableWarehouse::Open(dir_, &stats);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(stats.ops_replayed, 2u);
  ASSERT_NE(replayed.value()->subcubes(), nullptr);
  ExpectSameSubcubes(*dw->subcubes(), *replayed.value()->subcubes());

  // Checkpoint the replayed session and reopen once more: the snapshot now
  // carries the subcube layout and nothing replays.
  ASSERT_TRUE(replayed.value()->Checkpoint().ok());
  RecoveryStats stats2;
  auto snapshotted = DurableWarehouse::Open(dir_, &stats2);
  ASSERT_TRUE(snapshotted.ok()) << snapshotted.status().ToString();
  EXPECT_EQ(stats2.ops_replayed, 0u);
  EXPECT_EQ(stats2.snapshot_lsn, 2u);
  ASSERT_NE(snapshotted.value()->subcubes(), nullptr);
  ExpectSameSubcubes(*dw->subcubes(), *snapshotted.value()->subcubes());
}

TEST_F(RecoveryTest, RecoverWarehouseIsTheOpenEntryPoint) {
  auto dw = CreateExample(ReductionSpecification{});
  ASSERT_NE(dw, nullptr);
  ASSERT_TRUE(dw->ApplyActions({{"a7", paper::kA7}}).ok());
  std::string live = StateBytes(*dw);
  dw.reset();
  RecoveryStats stats;
  auto rec = RecoverWarehouse(dir_, &stats);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(stats.ops_replayed, 1u);
  EXPECT_EQ(StateBytes(*rec.value()), live);
}

TEST_F(RecoveryTest, OpenOnMissingDirectoryFails) {
  auto missing = DurableWarehouse::Open(dir_ + "_nope");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace dwred
