// Direct tests of the prover module — the decision procedures that stand in
// for the paper's PVS usage: conjunct overlap (NonCrossing, Section 5.2
// lines 3-4) and boundary coverage (Growing, eq. (23)) — plus the sample-grid
// construction they rely on.

#include "prover/checks.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class ProverTest : public ::testing::Test {
 protected:
  Conjunct Compile(const char* pred_text) {
    auto pred = ParsePredicate(*ex_.mo, pred_text);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    auto dnf = CompileToDnf(*ex_.mo, *pred.value());
    EXPECT_TRUE(dnf.ok());
    EXPECT_EQ(dnf.value().size(), 1u) << pred_text;
    return dnf.value()[0];
  }

  IspExample ex_ = MakeIspExample();
};

TEST_F(ProverTest, FixedIntervalOverlapIsExact) {
  Conjunct a = Compile("Time.quarter <= 1999Q4");
  Conjunct b = Compile("Time.quarter >= 2000Q1");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, a, b), TriBool::kNo);
  Conjunct c = Compile("Time.quarter >= 1999Q4");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, a, c), TriBool::kYes);
  // Adjacent but disjoint at day granularity.
  Conjunct d = Compile("Time.day <= 1999/12/31");
  Conjunct e = Compile("Time.day >= 2000/1/1");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, d, e), TriBool::kNo);
}

TEST_F(ProverTest, CategoricalDisjointnessRefutesOverlap) {
  Conjunct a = Compile("URL.domain_grp = .com");
  Conjunct b = Compile("URL.domain_grp = .edu");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, a, b), TriBool::kNo);
  // Cross-category: a url under .com overlaps the .com constraint.
  Conjunct c = Compile("URL.url = www.cnn.com/health");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, a, c), TriBool::kYes);
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, b, c), TriBool::kNo);
}

TEST_F(ProverTest, ExclusionConstraintsIntersectCorrectly) {
  Conjunct a = Compile("URL.domain != cnn.com");
  Conjunct b = Compile("URL.domain = cnn.com");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, a, b), TriBool::kNo);
  Conjunct c = Compile("URL.domain_grp = .com");
  // .com minus cnn.com still contains amazon.com.
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, a, c), TriBool::kYes);
}

TEST_F(ProverTest, MovingVsFixedIntervalsMeetEventually) {
  // A NOW-relative window sweeps over any fixed interval at some NOW.
  Conjunct moving =
      Compile("NOW - 12 months <= Time.month AND Time.month <= NOW - 6 months");
  Conjunct fixed = Compile("Time.month = 1980/3");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, moving, fixed), TriBool::kYes);
  Conjunct fixed_future = Compile("Time.month = 2031/7");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, moving, fixed_future),
            TriBool::kYes);
}

TEST_F(ProverTest, LockstepMovingIntervalsKeepTheirGap) {
  // Both windows move with NOW and never meet: [NOW-24m, NOW-18m] vs
  // [NOW-12m, NOW-6m].
  Conjunct older =
      Compile("NOW - 24 months <= Time.month AND Time.month <= NOW - 18 months");
  Conjunct newer =
      Compile("NOW - 12 months <= Time.month AND Time.month <= NOW - 6 months");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, older, newer), TriBool::kNo);
  // Touching windows do overlap (shared boundary month).
  Conjunct touching =
      Compile("NOW - 18 months <= Time.month AND Time.month <= NOW - 12 months");
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, older, touching), TriBool::kYes);
}

TEST_F(ProverTest, MixedUnitOffsetsCompareCalendarExactly) {
  // NOW - 4 quarters and NOW - 12 months bound the same days.
  Conjunct q = Compile("Time.quarter <= NOW - 4 quarters");
  Conjunct m = Compile("Time.quarter >= NOW - 12 months");
  // Overlap exactly at the boundary quarter.
  EXPECT_EQ(ConjunctsEverOverlap(*ex_.mo, q, m), TriBool::kYes);
}

TEST_F(ProverTest, BoundaryCoverageAcceptsTheA1A2Pattern) {
  Conjunct a1 =
      Compile("URL.domain_grp = .com AND "
              "NOW - 12 months <= Time.month AND Time.month <= NOW - 6 months");
  Conjunct a2 =
      Compile("URL.domain_grp = .com AND Time.quarter <= NOW - 4 quarters");
  std::string diag;
  EXPECT_EQ(BoundaryCovered(*ex_.mo, a1, {&a2}, {}, &diag), TriBool::kYes)
      << diag;
}

TEST_F(ProverTest, BoundaryCoverageRejectsGaps) {
  Conjunct a1 =
      Compile("URL.domain_grp = .com AND "
              "NOW - 12 months <= Time.month AND Time.month <= NOW - 6 months");
  Conjunct late =
      Compile("URL.domain_grp = .com AND Time.quarter <= NOW - 8 quarters");
  std::string diag;
  EXPECT_EQ(BoundaryCovered(*ex_.mo, a1, {&late}, {}, &diag), TriBool::kNo);
  EXPECT_FALSE(diag.empty());
}

TEST_F(ProverTest, BoundaryCoverageRejectsCategoricalGaps) {
  Conjunct a1 =
      Compile("NOW - 12 months <= Time.month AND Time.month <= NOW - 6 months");
  Conjunct com_only =
      Compile("URL.domain_grp = .com AND Time.quarter <= NOW - 4 quarters");
  std::string diag;
  EXPECT_EQ(BoundaryCovered(*ex_.mo, a1, {&com_only}, {}, &diag),
            TriBool::kNo);
  EXPECT_NE(diag.find(".edu"), std::string::npos) << diag;
}

TEST_F(ProverTest, BoundaryCoverageByUnionOfCategoricalPieces) {
  // The Section 5.3 shape: the boundary is covered by the union of a .com
  // catcher and an .edu catcher.
  Conjunct a1 =
      Compile("NOW - 12 months <= Time.month AND Time.month <= NOW - 6 months");
  Conjunct com_part =
      Compile("URL.domain_grp = .com AND Time.quarter <= NOW - 4 quarters");
  Conjunct edu_part =
      Compile("URL.domain_grp = .edu AND Time.quarter <= NOW - 4 quarters");
  std::string diag;
  EXPECT_EQ(BoundaryCovered(*ex_.mo, a1, {&com_part, &edu_part}, {}, &diag),
            TriBool::kYes)
      << diag;
}

TEST_F(ProverTest, BoundaryCoverageByTemporalUnion) {
  // Two covers that split the timeline: one takes quarters up to a fixed
  // boundary far in the past, the other the NOW-relative recent past; the
  // union covers every leaving window.
  Conjunct a1 =
      Compile("NOW - 12 months <= Time.month AND Time.month <= NOW - 6 months");
  Conjunct recent =
      Compile("NOW - 40 quarters <= Time.quarter AND "
              "Time.quarter <= NOW - 4 quarters");
  Conjunct ancient = Compile("Time.quarter <= NOW - 40 quarters");
  std::string diag;
  EXPECT_EQ(BoundaryCovered(*ex_.mo, a1, {&recent, &ancient}, {}, &diag),
            TriBool::kYes)
      << diag;
}

TEST_F(ProverTest, NonShrinkingConjunctIsTriviallyCovered) {
  Conjunct fixed = Compile("Time.month <= 1999/12");
  EXPECT_EQ(BoundaryCovered(*ex_.mo, fixed, {}, {}), TriBool::kYes);
  Conjunct growing = Compile("Time.month <= NOW - 6 months");
  EXPECT_EQ(BoundaryCovered(*ex_.mo, growing, {}, {}), TriBool::kYes);
}

TEST_F(ProverTest, UnsatisfiableShrinkerIsVacuouslyCovered) {
  Conjunct a = Compile(
      "URL.domain_grp = .com AND URL.domain_grp = .edu AND "
      "NOW - 12 months <= Time.month");
  EXPECT_EQ(BoundaryCovered(*ex_.mo, a, {}, {}), TriBool::kYes);
}

TEST_F(ProverTest, SampleGridCoversAnchorsAndCriticalNows) {
  Conjunct moving = Compile("Time.month <= NOW - 6 months");
  Conjunct fixed = Compile("Time.month = 1999/12");
  std::vector<int64_t> grid = BuildSampleGrid({&moving, &fixed}, {});
  ASSERT_FALSE(grid.empty());
  // Sorted and unique.
  for (size_t i = 1; i < grid.size(); ++i) EXPECT_LT(grid[i - 1], grid[i]);
  // Contains daily samples around the critical NOW where NOW - 6 months hits
  // 1999/12 (i.e. around 2000/6).
  int64_t critical = DaysFromCivil({2000, 6, 15});
  bool near = false;
  for (int64_t t : grid) {
    if (std::abs(t - critical) <= 2) near = true;
  }
  EXPECT_TRUE(near);
}

}  // namespace
}  // namespace dwred
