// The cancellation matrix (docs/ROBUSTNESS.md), mirroring the crash matrix:
// for every cancellation poll site the engine registers, inject a cancel at
// that site mid-operation (DWRED_FAULT <site>:<nth>:cancel semantics via
// FaultInjector::Arm) and require the degradation to be *clean* —
//
//   * the operation returns kCancelled (never crashes, never wedges),
//   * the warehouse epoch is unbumped and the query/ScanSpec cache stats are
//     byte-identical to never having started,
//   * a checkpoint taken after the abort is byte-identical to the base
//     snapshot (no partial mutation reached the tables or the journal's
//     committed prefix),
//   * re-running the same operation unarmed completes and lands on the same
//     snapshot bytes as a run that was never cancelled.
//
// The matrix runs at 1 and 8 pool threads: a cancel that fires on a worker
// shard must unwind exactly like one on the submitting thread. Deadline and
// row-budget variants drive the same poll sites through kDeadlineExceeded /
// kResourceExhausted.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "chrono/civil.h"
#include "exec/thread_pool.h"
#include "io/csv.h"
#include "io/recovery.h"
#include "mdm/paper_example.h"
#include "obs/metrics.h"
#include "paper_actions.h"
#include "runtime/cancel.h"
#include "spec/parser.h"
#include "testing/fault.h"

namespace dwred {
namespace {

int64_t Now2000() { return DaysFromCivil({2000, 6, 5}); }

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.dwsnap";
}

/// Key-sorted rendering of an MO's facts, for order-insensitive comparison.
std::map<std::string, std::vector<int64_t>> FactMap(
    const MultidimensionalObject& mo) {
  std::map<std::string, std::vector<int64_t>> out;
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    std::string key;
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      if (d) key += "|";
      key += mo.dimension(static_cast<DimensionId>(d))
                 ->value_name(mo.Coord(f, static_cast<DimensionId>(d)));
    }
    std::vector<int64_t> meas;
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      meas.push_back(mo.Measure(f, static_cast<MeasureId>(m)));
    }
    out[key] = meas;
  }
  return out;
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name, "").Value();
}

/// Cache + epoch fingerprint of a warehouse, plus the global cache counters:
/// an aborted operation must leave every component untouched.
struct StateProbe {
  uint64_t epoch = 0;
  size_t query_entries = 0;
  size_t scanspec_entries = 0;
  size_t cache_bytes = 0;
  int64_t query_hits = 0;
  int64_t query_misses = 0;

  static StateProbe Of(const DurableWarehouse& dw) {
    StateProbe p;
    if (dw.subcubes() != nullptr) {
      auto stats = dw.subcubes()->warehouse_cache().GetStats();
      p.epoch = stats.epoch;
      p.query_entries = stats.query_entries;
      p.scanspec_entries = stats.scanspec_entries;
      // Compiled vm::PredPrograms are deliberately retained across aborts —
      // a program is a complete artifact of (predicate, NOW, epoch), never
      // of the op's outcome (see cache.h) — so the abort invariant covers
      // everything *but* the program LRU's share.
      p.cache_bytes = stats.bytes - stats.program_bytes;
    }
    p.query_hits = CounterValue("dwred_cache_query_hits");
    p.query_misses = CounterValue("dwred_cache_query_misses");
    return p;
  }

  /// `allowed_misses`: a query aborted *mid-evaluation* (after its cache
  /// lookup) honestly counts that one miss; an abort on entry — or any
  /// non-query op — moves no cache counter at all (see cache.h).
  void ExpectUnchangedFrom(const StateProbe& before, const std::string& what,
                           int64_t allowed_misses = 0) const {
    EXPECT_EQ(epoch, before.epoch) << what << ": epoch bumped by aborted op";
    EXPECT_EQ(query_entries, before.query_entries) << what;
    EXPECT_EQ(scanspec_entries, before.scanspec_entries) << what;
    EXPECT_EQ(cache_bytes, before.cache_bytes) << what;
    EXPECT_EQ(query_hits, before.query_hits)
        << what << ": aborted query moved the hit counter";
    EXPECT_EQ(query_misses, before.query_misses + allowed_misses)
        << what << ": aborted query miss-count drifted";
  }
};

using MatrixOp = std::function<Status(DurableWarehouse&)>;

/// One matrix workload: how to build the base state and, per poll site, the
/// operation that crosses it.
struct MatrixWorkload {
  const char* name;
  std::function<Result<std::unique_ptr<DurableWarehouse>>(const std::string&)>
      build_base;
  std::vector<std::pair<std::string, MatrixOp>> site_ops;
};

Result<std::unique_ptr<DurableWarehouse>> BuildSubcubeBase(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  IspExample ex = MakeIspExample();
  ReductionSpecification spec;
  DWRED_ASSIGN_OR_RETURN(Action a1, ParseAction(*ex.mo, paper::kA1, "a1"));
  DWRED_ASSIGN_OR_RETURN(Action a2, ParseAction(*ex.mo, paper::kA2, "a2"));
  spec.Add(std::move(a1));
  spec.Add(std::move(a2));
  DWRED_ASSIGN_OR_RETURN(std::unique_ptr<DurableWarehouse> dw,
                         DurableWarehouse::Create(dir, std::move(ex.mo),
                                                  std::move(spec)));
  IspExample batch = MakeIspExample();
  DWRED_RETURN_IF_ERROR(dw->InsertFacts(*batch.mo));
  DWRED_RETURN_IF_ERROR(dw->EnableSubcubes());
  DWRED_RETURN_IF_ERROR(dw->Checkpoint());
  return dw;
}

Result<std::unique_ptr<DurableWarehouse>> BuildPlainBase(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  IspExample ex = MakeIspExample();
  DWRED_ASSIGN_OR_RETURN(std::unique_ptr<DurableWarehouse> dw,
                         DurableWarehouse::Create(dir, std::move(ex.mo),
                                                  ReductionSpecification{}));
  IspExample batch = MakeIspExample();
  DWRED_RETURN_IF_ERROR(dw->InsertFacts(*batch.mo));
  DWRED_RETURN_IF_ERROR(
      dw->ApplyActions({{"a1", paper::kA1}, {"a2", paper::kA2}}));
  DWRED_RETURN_IF_ERROR(dw->Checkpoint());
  return dw;
}

Status RunQuery(DurableWarehouse& dw, bool parallel) {
  auto r = dw.subcubes()->Query(nullptr, nullptr, Now2000(),
                                /*assume_synchronized=*/false, parallel);
  return r.ok() ? Status::OK() : r.status();
}

MatrixWorkload SubcubeMatrix(bool parallel) {
  MatrixWorkload w;
  w.name = "subcube";
  w.build_base = BuildSubcubeBase;
  w.site_ops = {
      {"cancel.insert.batch",
       [](DurableWarehouse& dw) {
         IspExample batch = MakeIspExample();
         return dw.InsertFacts(*batch.mo);
       }},
      {"cancel.sync.plan",
       [](DurableWarehouse& dw) { return dw.SynchronizePass(Now2000()); }},
      {"cancel.query.begin",
       [parallel](DurableWarehouse& dw) { return RunQuery(dw, parallel); }},
      {"cancel.query.subcube",
       [parallel](DurableWarehouse& dw) { return RunQuery(dw, parallel); }},
  };
  return w;
}

MatrixWorkload PlainMatrix() {
  MatrixWorkload w;
  w.name = "plain";
  w.build_base = BuildPlainBase;
  w.site_ops = {
      {"cancel.reduce.shard",
       [](DurableWarehouse& dw) { return dw.ReducePass(Now2000()); }},
  };
  return w;
}

class CancelMatrixTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    exec::ThreadPool::ResetGlobal(GetParam());
    base_ = (std::filesystem::temp_directory_path() /
             ("dwred_cancel_matrix_" + std::to_string(::getpid()) + "_t" +
              std::to_string(GetParam())))
                .string();
  }
  void TearDown() override {
    testing::FaultInjector::Global().Disarm();
    std::error_code ec;
    std::filesystem::remove_all(base_, ec);
  }
  std::string base_;
};

/// Sites that fire more than once per operation (per shard / per subcube) are
/// sampled to this depth, like the crash matrix's kMaxNthPerSite.
constexpr int kMaxNthPerSite = 4;

void RunMatrix(const std::string& base, const MatrixWorkload& w) {
  int aborts = 0;
  for (const auto& [site, op] : w.site_ops) {
    // Golden: base + op with no fault, checkpointed.
    const std::string golden_dir = base + "/golden_" + site;
    auto golden_dw = w.build_base(golden_dir);
    ASSERT_TRUE(golden_dw.ok()) << golden_dw.status().ToString();
    ASSERT_TRUE(op(*golden_dw.value()).ok()) << site;
    ASSERT_TRUE(golden_dw.value()->Checkpoint().ok());
    auto golden = ReadFile(SnapshotPath(golden_dir));
    ASSERT_TRUE(golden.ok()) << golden.status().ToString();

    for (int nth = 1; nth <= kMaxNthPerSite; ++nth) {
      const std::string dir = base + "/" + site + "_" + std::to_string(nth);
      auto dw_r = w.build_base(dir);
      ASSERT_TRUE(dw_r.ok()) << dw_r.status().ToString();
      DurableWarehouse& dw = *dw_r.value();
      auto base_snap = ReadFile(SnapshotPath(dir));
      ASSERT_TRUE(base_snap.ok());
      StateProbe before = StateProbe::Of(dw);

      testing::FaultInjector::Global().Arm(site, nth,
                                           testing::FaultMode::kCancel);
      Status st = op(dw);
      bool fired = testing::FaultInjector::Global().fired();
      testing::FaultInjector::Global().Disarm();
      if (!fired) {
        // Site executes fewer than nth times in this op: exhausted.
        EXPECT_TRUE(st.ok()) << site << " nth=" << nth << ": "
                             << st.ToString();
        break;
      }
      ASSERT_EQ(st.code(), StatusCode::kCancelled)
          << site << " nth=" << nth << ": " << st.ToString();
      ++aborts;

      // Clean-abort invariants: epoch, cache stats, cache counters, and the
      // checkpointed snapshot are byte-identical to never having started.
      // (A query cancelled mid-evaluation counts the one miss its lookup
      // already performed; the entry site aborts before the lookup, and a
      // disabled cache performs no lookup at all.)
      int64_t allowed_misses =
          site == "cancel.query.subcube" && cache::Enabled() ? 1 : 0;
      StateProbe::Of(dw).ExpectUnchangedFrom(
          before, site + " nth=" + std::to_string(nth), allowed_misses);
      EXPECT_FALSE(dw.poisoned()) << site << ": abort poisoned the warehouse";
      ASSERT_TRUE(dw.Checkpoint().ok()) << site << " nth=" << nth;
      auto after_snap = ReadFile(SnapshotPath(dir));
      ASSERT_TRUE(after_snap.ok());
      EXPECT_EQ(after_snap.value(), base_snap.value())
          << "snapshot mutated by cancelled op at " << site
          << " nth=" << nth;

      // Differential: retrying the cancelled op must land on the golden
      // bytes — the abort left nothing behind that changes the rerun.
      ASSERT_TRUE(op(dw).ok()) << site << " nth=" << nth;
      ASSERT_TRUE(dw.Checkpoint().ok());
      auto final_snap = ReadFile(SnapshotPath(dir));
      ASSERT_TRUE(final_snap.ok());
      EXPECT_EQ(final_snap.value(), golden.value())
          << "rerun after cancel at " << site << " nth=" << nth
          << " diverged from the never-cancelled run";
    }
  }
  ASSERT_GT(aborts, 0) << "the matrix never cancelled an op — sites broken?";
}

TEST_P(CancelMatrixTest, SubcubeOpsAbortCleanlyAtEverySite) {
  RunMatrix(base_, SubcubeMatrix(/*parallel=*/GetParam() > 1));
}

TEST_P(CancelMatrixTest, PlainReduceAbortsCleanlyAtEverySite) {
  RunMatrix(base_, PlainMatrix());
}

TEST_P(CancelMatrixTest, EveryRegisteredCancelSiteIsCovered) {
  // A probe run across both workloads must register exactly the poll sites
  // the matrix drives: a new PollCancel site added to the engine without a
  // matrix entry fails here.
  const std::string dir = base_ + "/probe";
  for (const MatrixWorkload& w :
       {SubcubeMatrix(GetParam() > 1), PlainMatrix()}) {
    auto dw = w.build_base(dir + w.name);
    ASSERT_TRUE(dw.ok()) << dw.status().ToString();
    for (const auto& [site, op] : w.site_ops) {
      ASSERT_TRUE(op(*dw.value()).ok()) << site;
    }
  }
  std::vector<std::string> covered;
  for (const MatrixWorkload& w :
       {SubcubeMatrix(GetParam() > 1), PlainMatrix()}) {
    for (const auto& [site, op] : w.site_ops) covered.push_back(site);
  }
  for (const std::string& seen :
       testing::FaultInjector::Global().SitesSeen()) {
    if (seen.rfind("cancel.", 0) != 0) continue;
    bool known = false;
    for (const std::string& c : covered) known = known || c == seen;
    EXPECT_TRUE(known) << "poll site " << seen
                       << " is not covered by the cancellation matrix";
  }
  for (const std::string& c : covered) {
    bool registered = false;
    for (const std::string& seen :
         testing::FaultInjector::Global().SitesSeen()) {
      registered = registered || seen == c;
    }
    EXPECT_TRUE(registered) << "matrix site " << c << " never executed";
  }
}

TEST_P(CancelMatrixTest, ExpiredDeadlineAbortsEveryOpCleanly) {
  const std::string dir = base_ + "/deadline";
  auto dw_r = BuildSubcubeBase(dir);
  ASSERT_TRUE(dw_r.ok()) << dw_r.status().ToString();
  DurableWarehouse& dw = *dw_r.value();
  auto base_snap = ReadFile(SnapshotPath(dir));
  ASSERT_TRUE(base_snap.ok());
  StateProbe before = StateProbe::Of(dw);

  runtime::OpContext ctx;
  ctx.deadline = runtime::Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    runtime::ScopedOpContext scope(ctx);
    EXPECT_EQ(RunQuery(dw, GetParam() > 1).code(),
              StatusCode::kDeadlineExceeded);
    EXPECT_EQ(dw.SynchronizePass(Now2000()).code(),
              StatusCode::kDeadlineExceeded);
    IspExample batch = MakeIspExample();
    EXPECT_EQ(dw.InsertFacts(*batch.mo).code(),
              StatusCode::kDeadlineExceeded);
  }
  StateProbe::Of(dw).ExpectUnchangedFrom(before, "deadline");
  EXPECT_FALSE(dw.poisoned());
  ASSERT_TRUE(dw.Checkpoint().ok());
  auto after = ReadFile(SnapshotPath(dir));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), base_snap.value());

  // Without the expired context the same ops complete.
  ASSERT_TRUE(dw.SynchronizePass(Now2000()).ok());
  EXPECT_TRUE(RunQuery(dw, GetParam() > 1).ok());
}

TEST_P(CancelMatrixTest, TinyRowBudgetExhaustsQueryCleanly) {
  const std::string dir = base_ + "/budget";
  auto dw_r = BuildSubcubeBase(dir);
  ASSERT_TRUE(dw_r.ok()) << dw_r.status().ToString();
  DurableWarehouse& dw = *dw_r.value();
  StateProbe before = StateProbe::Of(dw);

  runtime::OpContext ctx;
  ctx.SetMaxRows(1);  // the base warehouse holds 7 bottom facts
  {
    runtime::ScopedOpContext scope(ctx);
    EXPECT_EQ(RunQuery(dw, GetParam() > 1).code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(dw.SynchronizePass(Now2000()).code(),
              StatusCode::kResourceExhausted);
  }
  EXPECT_GT(ctx.rows_charged(), 1);
  // The budget-exhausted query aborted after its (miss) lookup; the sync
  // pass consults no query cache, and a disabled cache performs no lookup.
  StateProbe::Of(dw).ExpectUnchangedFrom(before, "budget",
                                         cache::Enabled() ? 1 : 0);
  EXPECT_FALSE(dw.poisoned());

  // An ample budget passes and reports its spend through the profile.
  runtime::OpContext roomy;
  roomy.SetMaxRows(1'000'000);
  runtime::ScopedOpContext scope(roomy);
  obs::OpProfile prof;
  uint64_t pinned = 0;
  auto r = dw.subcubes()->Query(nullptr, nullptr, Now2000(), false,
                                GetParam() > 1, &pinned, &prof);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(FactMap(r.value()).size(), r.value().num_facts());
  EXPECT_EQ(prof.outcome, "ok");
  EXPECT_EQ(prof.budget_max_rows, 1'000'000);
  EXPECT_GT(prof.budget_rows_charged, 0);
  EXPECT_EQ(prof.budget_rows_charged, roomy.rows_charged());
}

TEST_P(CancelMatrixTest, AbortedQueryFillsProfileOutcome) {
  const std::string dir = base_ + "/profile";
  auto dw_r = BuildSubcubeBase(dir);
  ASSERT_TRUE(dw_r.ok()) << dw_r.status().ToString();
  DurableWarehouse& dw = *dw_r.value();

  testing::FaultInjector::Global().Arm("cancel.query.begin", 1,
                                       testing::FaultMode::kCancel);
  obs::OpProfile prof;
  auto r = dw.subcubes()->Query(nullptr, nullptr, Now2000(), false,
                                GetParam() > 1, nullptr, &prof);
  testing::FaultInjector::Global().Disarm();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(prof.outcome, "cancelled");
  EXPECT_NE(prof.Render().find("outcome:"), std::string::npos);
  EXPECT_NE(prof.ToJson().find("\"outcome\":\"cancelled\""),
            std::string::npos);
  EXPECT_NE(prof.Summary().find("outcome=cancelled"), std::string::npos);
}

TEST_P(CancelMatrixTest, CancelCountersMoveOncePerAbortedOp) {
  const std::string dir = base_ + "/counters";
  auto dw_r = BuildSubcubeBase(dir);
  ASSERT_TRUE(dw_r.ok()) << dw_r.status().ToString();
  DurableWarehouse& dw = *dw_r.value();

  int64_t before = CounterValue("dwred_cancel_cancelled");
  testing::FaultInjector::Global().Arm("cancel.sync.plan", 1,
                                       testing::FaultMode::kCancel);
  ASSERT_EQ(dw.SynchronizePass(Now2000()).code(), StatusCode::kCancelled);
  testing::FaultInjector::Global().Disarm();
  EXPECT_EQ(CounterValue("dwred_cancel_cancelled"), before + 1)
      << "the abort counter counts operations, not poll hits";
}

INSTANTIATE_TEST_SUITE_P(Threads, CancelMatrixTest, ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dwred
