// StatusCodeName must give every enumerator a distinct, meaningful name —
// the obs layer keys per-outcome counters on it
// (dwred_prover_<check>_outcomes_<Code>), so a collision would silently merge
// outcome counts.

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "common/status.h"

namespace dwred {
namespace {

TEST(StatusCodeNameTest, EveryEnumeratorHasDistinctNonEmptyName) {
  const StatusCode all[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kParseError,
      StatusCode::kNotFound,
      StatusCode::kCrossingViolation,
      StatusCode::kGrowingViolation,
      StatusCode::kDeleteRejected,
      StatusCode::kInternal,
  };
  std::set<std::string> seen;
  for (StatusCode code : all) {
    const char* name = StatusCodeName(code);
    ASSERT_NE(name, nullptr) << "code " << static_cast<int>(code);
    std::string s(name);
    EXPECT_FALSE(s.empty()) << "code " << static_cast<int>(code);
    EXPECT_NE(s, "Unknown") << "code " << static_cast<int>(code)
                            << " fell through to the default name";
    EXPECT_TRUE(seen.insert(s).second)
        << "duplicate name '" << s << "' for code " << static_cast<int>(code);
  }
  EXPECT_EQ(seen.size(), std::size(all));
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status st = Status::CrossingViolation("a1 vs a2");
  EXPECT_NE(st.ToString().find(StatusCodeName(StatusCode::kCrossingViolation)),
            std::string::npos);
  EXPECT_NE(st.ToString().find("a1 vs a2"), std::string::npos);
}

}  // namespace
}  // namespace dwred
