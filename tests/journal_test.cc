// Write-ahead journal tests: record framing round trips, torn-tail
// tolerance, checksum rejection, intent/commit pairing, supersession, and
// fault injection at the append/fsync boundaries.

#include "io/journal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "io/csv.h"
#include "testing/fault.h"

namespace dwred {
namespace {

IntentRecord MakeIntent(uint64_t lsn, JournalOpKind kind) {
  IntentRecord in;
  in.lsn = lsn;
  in.op.kind = kind;
  in.op.now_day = 11111 + static_cast<int64_t>(lsn);
  in.op.aux = "aux-" + std::to_string(lsn);
  in.pre_rows = 100 + lsn;
  in.pre_counts = {40 + lsn, 60};
  in.affected_count = 7;
  in.affected_digest = 0xdeadbeefcafef00dull ^ lsn;
  return in;
}

std::string Committed(uint64_t lsn, JournalOpKind kind) {
  JournalRecord intent;
  intent.type = JournalRecord::Type::kIntent;
  intent.intent = MakeIntent(lsn, kind);
  JournalRecord commit;
  commit.type = JournalRecord::Type::kCommit;
  commit.commit.lsn = lsn;
  commit.commit.post_rows = 90 + lsn;
  return EncodeJournalRecord(intent) + EncodeJournalRecord(commit);
}

TEST(JournalTest, RecordRoundTrip) {
  std::string bytes =
      Committed(1, JournalOpKind::kInsertFacts) + Committed(2, JournalOpKind::kReduce);
  auto scan = ScanJournal(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  const JournalScan& s = scan.value();
  EXPECT_EQ(s.records, 4u);
  EXPECT_EQ(s.torn_bytes, 0u);
  EXPECT_FALSE(s.has_pending_intent);
  ASSERT_EQ(s.committed.size(), 2u);
  const IntentRecord& in = s.committed[0].intent;
  EXPECT_EQ(in.lsn, 1u);
  EXPECT_EQ(in.op.kind, JournalOpKind::kInsertFacts);
  EXPECT_EQ(in.op.now_day, 11112);
  EXPECT_EQ(in.op.aux, "aux-1");
  EXPECT_EQ(in.pre_rows, 101u);
  EXPECT_EQ(in.pre_counts, (std::vector<uint64_t>{41, 60}));
  EXPECT_EQ(in.affected_count, 7u);
  EXPECT_EQ(in.affected_digest, 0xdeadbeefcafef00dull ^ 1u);
  EXPECT_EQ(s.committed[0].commit.post_rows, 91u);
  EXPECT_EQ(s.committed[1].intent.op.kind, JournalOpKind::kReduce);
}

TEST(JournalTest, EmptyJournalScansClean) {
  auto scan = ScanJournal("");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records, 0u);
  EXPECT_TRUE(scan.value().committed.empty());
  EXPECT_FALSE(scan.value().has_pending_intent);
}

TEST(JournalTest, TornTailIsDiscardedAtEveryCut) {
  std::string good = Committed(1, JournalOpKind::kReduce);
  std::string bytes = good;
  JournalRecord intent;
  intent.type = JournalRecord::Type::kIntent;
  intent.intent = MakeIntent(2, JournalOpKind::kSynchronize);
  bytes += EncodeJournalRecord(intent);
  // Cut the trailing intent record anywhere — including inside its length
  // prefix — and the committed prefix must survive with torn bytes counted.
  for (size_t cut = good.size(); cut < bytes.size(); ++cut) {
    auto scan = ScanJournal(std::string_view(bytes).substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut at " << cut << ": " << scan.status().ToString();
    EXPECT_EQ(scan.value().committed.size(), 1u) << cut;
    EXPECT_FALSE(scan.value().has_pending_intent) << cut;
    EXPECT_EQ(scan.value().torn_bytes, cut - good.size()) << cut;
  }
  // Uncut, the trailing intent is pending.
  auto scan = ScanJournal(bytes);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().has_pending_intent);
  EXPECT_EQ(scan.value().pending_intent.lsn, 2u);
}

TEST(JournalTest, ChecksumFailureStopsTheScan) {
  std::string bytes = Committed(1, JournalOpKind::kInsertFacts) +
                      Committed(2, JournalOpKind::kReduce);
  // Flip one payload bit in the second pair; the scanner treats the corrupt
  // record as the torn tail and keeps only the intact prefix.
  std::string corrupt = bytes;
  size_t pos = Committed(1, JournalOpKind::kInsertFacts).size() + 10;
  corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
  auto scan = ScanJournal(corrupt);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan.value().committed.size(), 1u);
  EXPECT_GT(scan.value().torn_bytes, 0u);
}

TEST(JournalTest, SupersededIntentIsCounted) {
  // intent(1) with no commit, then intent(2)+commit(2): the dead intent is
  // rolled over, not treated as pending.
  JournalRecord stale;
  stale.type = JournalRecord::Type::kIntent;
  stale.intent = MakeIntent(1, JournalOpKind::kReduce);
  std::string bytes =
      EncodeJournalRecord(stale) + Committed(2, JournalOpKind::kReduce);
  auto scan = ScanJournal(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan.value().superseded_intents, 1u);
  EXPECT_FALSE(scan.value().has_pending_intent);
  ASSERT_EQ(scan.value().committed.size(), 1u);
  EXPECT_EQ(scan.value().committed[0].intent.lsn, 2u);
}

TEST(JournalTest, CommitWithoutIntentIsStructurallyInvalid) {
  JournalRecord commit;
  commit.type = JournalRecord::Type::kCommit;
  commit.commit.lsn = 5;
  commit.commit.post_rows = 1;
  auto scan = ScanJournal(EncodeJournalRecord(commit));
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kParseError);
}

class JournalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dwred_journal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "journal.dwal").string();
  }
  void TearDown() override {
    testing::FaultInjector::Global().Disarm();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(JournalFileTest, AppendScanResetCycle) {
  auto j = Journal::Open(path_);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  Journal journal = std::move(j.value());
  IntentRecord in = MakeIntent(1, JournalOpKind::kInsertFacts);
  ASSERT_TRUE(journal.AppendIntent(in).ok());
  CommitRecord c;
  c.lsn = 1;
  c.post_rows = 101;
  ASSERT_TRUE(journal.AppendCommit(c).ok());

  auto bytes = ReadFile(path_);
  ASSERT_TRUE(bytes.ok());
  auto scan = ScanJournal(bytes.value());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().committed.size(), 1u);
  EXPECT_EQ(scan.value().committed[0].commit.post_rows, 101u);

  ASSERT_TRUE(journal.Reset().ok());
  bytes = ReadFile(path_);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(bytes.value().empty());
}

TEST_F(JournalFileTest, ErrorModeFaultSurfacesAsStatus) {
  auto j = Journal::Open(path_);
  ASSERT_TRUE(j.ok());
  Journal journal = std::move(j.value());
  testing::FaultInjector::Global().Arm("journal.intent.fsync", 1,
                                       testing::FaultMode::kError);
  IntentRecord in = MakeIntent(1, JournalOpKind::kReduce);
  Status s = journal.AppendIntent(in);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_TRUE(testing::FaultInjector::Global().fired());
  testing::FaultInjector::Global().Disarm();
  // The journal object is still usable at the file level; a fresh append
  // after the failed one leaves a scannable file (the recovery layer is what
  // decides to poison, not the journal).
  ASSERT_TRUE(journal.AppendIntent(MakeIntent(2, JournalOpKind::kReduce)).ok());
  auto bytes = ReadFile(path_);
  ASSERT_TRUE(bytes.ok());
  auto scan = ScanJournal(bytes.value());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan.value().has_pending_intent);
}

}  // namespace
}  // namespace dwred
