// Tests for schema-level reduction (paper Section 8 future work + the
// Section 4.4 aside): dropping dimensions (with measure folding), dropping
// measures, and physically removing bottom category types.

#include "reduce/schema_reduction.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "reduce/semantics.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class SchemaReductionTest : public ::testing::Test {
 protected:
  IspExample ex_ = MakeIspExample();
};

TEST_F(SchemaReductionTest, DropDimensionFoldsCollapsedCells) {
  // Dropping URL leaves facts keyed by day; fact_1/fact_2 (same day) and
  // fact_4/fact_5 fold together.
  auto out = DropDimension(*ex_.mo, ex_.url_dim);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const MultidimensionalObject& r = out.value();
  EXPECT_EQ(r.num_dimensions(), 1u);
  EXPECT_EQ(r.num_facts(), 5u);  // 7 facts on 5 distinct days
  // Total dwell preserved.
  int64_t dwell = 0;
  for (FactId f = 0; f < r.num_facts(); ++f) {
    dwell += r.Measure(f, ex_.dwell_time);
  }
  EXPECT_EQ(dwell, 4165);
  // The folded fact for 1999/12/4 carries merged provenance.
  for (FactId f = 0; f < r.num_facts(); ++f) {
    if (r.dimension(0)->value_name(r.Coord(f, 0)) == "1999/12/4") {
      const std::vector<FactId>* prov = r.Provenance(f);
      ASSERT_NE(prov, nullptr);
      EXPECT_EQ(*prov, (std::vector<FactId>{1, 2}));
    }
  }
}

TEST_F(SchemaReductionTest, DropDimensionGuards) {
  EXPECT_FALSE(DropDimension(*ex_.mo, 7).ok());
  auto once = DropDimension(*ex_.mo, ex_.url_dim);
  ASSERT_TRUE(once.ok());
  EXPECT_FALSE(DropDimension(once.value(), 0).ok());  // last dimension
}

TEST_F(SchemaReductionTest, DropMeasure) {
  auto out = DropMeasure(*ex_.mo, ex_.dwell_time);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const MultidimensionalObject& r = out.value();
  EXPECT_EQ(r.num_measures(), 3u);
  EXPECT_EQ(r.num_facts(), 7u);
  EXPECT_EQ(r.measure_type(1).name, "Delivery_time");
  EXPECT_EQ(r.Measure(ex_.facts[1], 1), 5);  // fact_1's delivery time
  EXPECT_FALSE(DropMeasure(*ex_.mo, 9).ok());
}

TEST_F(SchemaReductionTest, RaiseBottomRequiresReducedFacts) {
  // Facts still at url level: removal of the url category is refused.
  auto bad = RaiseBottomCategory(*ex_.mo, ex_.url_dim, ex_.domain_cat);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("reduce the MO first"),
            std::string::npos);
}

TEST_F(SchemaReductionTest, RaiseBottomAfterReduction) {
  // Reduce everything .com to quarter/domain, the rest untouched; then raise
  // URL's bottom to domain once every fact is at domain or above... fact_6 is
  // still at url level, so aggregate everything to (quarter, domain) first.
  ReductionSpecification spec;
  spec.Add(ParseAction(*ex_.mo,
                       "a[Time.quarter, URL.domain] s[Time.quarter <= "
                       "NOW - 4 quarters]",
                       "all")
               .take());
  int64_t t = DaysFromCivil({2002, 1, 1});
  auto reduced = Reduce(*ex_.mo, spec, t).take();
  ASSERT_EQ(reduced.Gran(0)[ex_.url_dim], ex_.domain_cat);

  auto raised = RaiseBottomCategory(reduced, ex_.url_dim, ex_.domain_cat);
  ASSERT_TRUE(raised.ok()) << raised.status().ToString();
  const MultidimensionalObject& r = raised.value();
  const Dimension& url = *r.dimension(ex_.url_dim);
  // The rebuilt dimension has no url category.
  EXPECT_FALSE(url.type().CategoryByName("url").ok());
  EXPECT_TRUE(url.type().CategoryByName("domain").ok());
  EXPECT_EQ(url.type().bottom(), url.type().CategoryByName("domain").value());
  // Facts kept their (renamed-id) domain coordinates and measures.
  EXPECT_EQ(r.num_facts(), reduced.num_facts());
  int64_t total = 0;
  for (FactId f = 0; f < r.num_facts(); ++f) {
    total += r.Measure(f, ex_.number_of);
    EXPECT_EQ(url.value_category(r.Coord(f, ex_.url_dim)),
              url.type().bottom());
  }
  EXPECT_EQ(total, 7);
  // New facts can now only be inserted at the domain level.
  auto dom = url.ValueByName(url.type().bottom(), "cnn.com");
  ASSERT_TRUE(dom.ok());
}

TEST_F(SchemaReductionTest, RaiseBottomOnTimeDimension) {
  ReductionSpecification spec;
  spec.Add(ParseAction(*ex_.mo,
                       "a[Time.month, URL.url] s[Time.month <= NOW]", "all")
               .take());
  auto reduced =
      Reduce(*ex_.mo, spec, DaysFromCivil({2002, 1, 1})).take();
  auto raised = RaiseBottomCategory(
      reduced, ex_.time_dim, static_cast<CategoryId>(TimeUnit::kMonth));
  ASSERT_TRUE(raised.ok()) << raised.status().ToString();
  const Dimension& time = *raised.value().dimension(ex_.time_dim);
  // day and week are gone; the month -> quarter -> year chain survives.
  EXPECT_FALSE(time.type().CategoryByName("day").ok());
  EXPECT_FALSE(time.type().CategoryByName("week").ok());
  EXPECT_TRUE(time.type().CategoryByName("quarter").ok());
  EXPECT_TRUE(time.type().IsLinear());
  // Granule payloads survive the rebuild.
  ValueId m = raised.value().Coord(0, ex_.time_dim);
  EXPECT_EQ(time.granule(m).unit, TimeUnit::kMonth);
}

}  // namespace
}  // namespace dwred
