// dwredd serving-core tests (src/net/server.h, docs/SERVER.md), driven over
// real loopback sockets against an in-process Server:
//
//   * wire-vs-embedded differential: the bytes a query returns over the wire
//     equal RenderResult() of the embedded Query, and a workload driven over
//     the wire leaves a warehouse whose canonical CRC is byte-identical to
//     the same workload run embedded — across pool sizes {1, 8} and cache
//     on/off;
//   * the cancel.net.* poll-site sweep: an abort injected at each site (with
//     and without the client disconnecting instead of reading the response)
//     leaves the epoch unbumped and the snapshot CRC unchanged;
//   * concurrency: parallel sessions issuing pipelined queries all read
//     byte-identical responses while mutating commands serialize;
//   * robustness: row budgets map to ResourceExhausted over the wire,
//     corrupt/oversized frames get one error response then a close, the
//     connection cap sheds with ResourceExhausted, and a mid-command client
//     disconnect never corrupts the warehouse.

#include "net/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "chrono/civil.h"
#include "exec/thread_pool.h"
#include "io/warehouse_io.h"
#include "mdm/paper_example.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "paper_actions.h"
#include "reduce/dynamics.h"
#include "spec/parser.h"
#include "testing/fault.h"

namespace dwred::net {
namespace {

const char* kInsertCsv =
    "Time:category,Time:value,URL:category,URL:value,"
    "Number_of,Dwell_time,Delivery_time,Datasize\n"
    "day,2000/12/1,url,www.cnn.com,1,100,2,40\n"
    "day,2000/12/2,url,www.cc.gatech.edu,1,200,3,50\n";

const char* kSpecText =
    "a1: a[Time.month, URL.domain] s[URL.domain_grp = .com AND "
    "NOW - 12 months <= Time.month <= NOW - 6 months]\n"
    "a2: a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
    "Time.quarter <= NOW - 4 quarters]\n";

/// A fresh paper-example warehouse with {a1, a2}, loaded and synchronized —
/// built identically for the served and the embedded twin.
std::unique_ptr<SubcubeManager> BuildWarehouse(int64_t now_day) {
  IspExample ex = MakeIspExample();
  ReductionSpecification spec;
  spec.Add(ParseAction(*ex.mo, paper::kA1, "a1").take());
  spec.Add(ParseAction(*ex.mo, paper::kA2, "a2").take());
  auto m = SubcubeManager::Create(
      ex.mo->fact_type(), ex.mo->dimensions(),
      std::vector<MeasureType>(ex.mo->measure_types()), spec);
  if (!m.ok()) return nullptr;
  auto mgr = std::make_unique<SubcubeManager>(m.take());
  if (!mgr->InsertBottomFacts(*ex.mo).ok()) return nullptr;
  if (!mgr->Synchronize(now_day).ok()) return nullptr;
  return mgr;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    now_day_ = DaysFromCivil({2000, 11, 5});
    mgr_ = BuildWarehouse(now_day_);
    ASSERT_NE(mgr_, nullptr);
    server_ = std::make_unique<Server>(ServerConfig{}, mgr_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    testing::FaultInjector::Global().Disarm();
    ::unsetenv("DWRED_CACHE_DISABLED");
    if (server_) server_->Stop();
  }

  Client Connect() {
    auto c = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.take();
  }

  Request QueryReq(uint8_t extra_flags = 0) const {
    Request req;
    req.cmd = Command::kQuery;
    req.now_day = now_day_;
    req.a = "URL.domain_grp = .com";
    req.b = "Time.month, URL.domain";
    req.flags = static_cast<uint8_t>(kQuerySynchronized | extra_flags);
    return req;
  }

  /// The embedded evaluation of QueryReq, rendered with the shared renderer.
  std::string EmbeddedQueryBytes(const SubcubeManager& mgr,
                                 bool parallel) const {
    auto pred = ParsePredicate(mgr.context(), "URL.domain_grp = .com");
    auto gran = ParseGranularityList(mgr.context(), "Time.month, URL.domain");
    EXPECT_TRUE(pred.ok() && gran.ok());
    auto r = mgr.Query(pred.value().get(), &gran.value(), now_day_,
                       /*assume_synchronized=*/true, parallel);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return RenderResult(r.value());
  }

  int64_t now_day_ = 0;
  std::unique_ptr<SubcubeManager> mgr_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingPong) {
  Client c = Connect();
  Request req;
  req.cmd = Command::kPing;
  auto resp = c.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().code, StatusCode::kOk);
  EXPECT_EQ(resp.value().body, "pong");
}

// The acceptance differential: wire bytes == embedded bytes and the
// warehouse CRC is identical, across pool sizes {1, 8} x cache on/off.
TEST_F(ServerTest, WireQueryMatchesEmbeddedAcrossThreadsAndCache) {
  const uint32_t crc_before = WarehouseCrc(*mgr_);
  std::string reference;
  for (int threads : {1, 8}) {
    exec::ThreadPool::ResetGlobal(threads);
    for (bool cache_off : {false, true}) {
      if (cache_off) {
        ::setenv("DWRED_CACHE_DISABLED", "1", 1);
      } else {
        ::unsetenv("DWRED_CACHE_DISABLED");
      }
      const bool parallel = threads > 1;
      Client c = Connect();
      auto resp =
          c.Call(QueryReq(parallel ? kQueryParallel : uint8_t{0}));
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      ASSERT_EQ(resp.value().code, StatusCode::kOk) << resp.value().message;
      const std::string embedded = EmbeddedQueryBytes(*mgr_, parallel);
      EXPECT_EQ(resp.value().body, embedded)
          << "threads=" << threads << " cache_off=" << cache_off;
      if (reference.empty()) reference = resp.value().body;
      EXPECT_EQ(resp.value().body, reference)
          << "variant diverged: threads=" << threads
          << " cache_off=" << cache_off;
      EXPECT_EQ(WarehouseCrc(*mgr_), crc_before);
    }
  }
  exec::ThreadPool::ResetGlobal(0);  // back to the env-derived default
}

// A workload driven over the wire must leave the warehouse byte-identical
// to the same workload run embedded: insert, spec change, synchronize.
TEST_F(ServerTest, WireWorkloadCrcEqualsEmbeddedWorkload) {
  std::unique_ptr<SubcubeManager> twin = BuildWarehouse(now_day_);
  ASSERT_NE(twin, nullptr);
  ASSERT_EQ(WarehouseCrc(*mgr_), WarehouseCrc(*twin));

  Client c = Connect();
  // Wire: insert + synchronize.
  Request ins;
  ins.cmd = Command::kInsert;
  ins.a = kInsertCsv;
  auto r1 = c.Call(ins);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_EQ(r1.value().code, StatusCode::kOk) << r1.value().message;
  Request sync;
  sync.cmd = Command::kSynchronize;
  sync.now_day = now_day_ + 60;
  auto r2 = c.Call(sync);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2.value().code, StatusCode::kOk) << r2.value().message;

  // Embedded twin: the same operations, directly.
  {
    const MultidimensionalObject& ctx = twin->context();
    MultidimensionalObject batch(ctx.fact_type(), ctx.dimensions(),
                                 ctx.measure_types());
    ASSERT_TRUE(ReadFactCsv(&batch, kInsertCsv).ok());
    ASSERT_TRUE(twin->InsertBottomFacts(batch).ok());
    ASSERT_TRUE(twin->Synchronize(now_day_ + 60).ok());
  }
  EXPECT_EQ(WarehouseCrc(*mgr_), WarehouseCrc(*twin));
}

// Spec change over the wire: a valid specification swaps the layout (same
// CRC as the embedded twin); an invalid one is rejected with the parser's
// diagnostic and leaves the epoch unbumped.
TEST_F(ServerTest, SpecChangeWireVsEmbeddedAndRejection) {
  std::unique_ptr<SubcubeManager> twin = BuildWarehouse(now_day_);
  ASSERT_NE(twin, nullptr);

  Client c = Connect();
  Request spec;
  spec.cmd = Command::kSpecChange;
  spec.now_day = now_day_;
  spec.a = kSpecText;
  auto resp = c.Call(spec);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp.value().code, StatusCode::kOk) << resp.value().message;
  EXPECT_NE(resp.value().body.find("specification installed"),
            std::string::npos);

  {
    auto actions = ReadSpecificationText(twin->context(), kSpecText);
    ASSERT_TRUE(actions.ok());
    auto validated = InsertActions(twin->context(), ReductionSpecification{},
                                   actions.take());
    ASSERT_TRUE(validated.ok()) << validated.status().ToString();
    ASSERT_TRUE(
        twin->ChangeSpecification(validated.take(), now_day_).ok());
  }
  EXPECT_EQ(WarehouseCrc(*mgr_), WarehouseCrc(*twin));

  // Rejection: unparseable spec text -> error response, epoch unbumped.
  const uint64_t epoch = mgr_->epoch();
  const uint32_t crc = WarehouseCrc(*mgr_);
  Request bad;
  bad.cmd = Command::kSpecChange;
  bad.now_day = now_day_;
  bad.a = "oops: not an action\n";
  auto rej = c.Call(bad);
  ASSERT_TRUE(rej.ok()) << rej.status().ToString();
  EXPECT_NE(rej.value().code, StatusCode::kOk);
  EXPECT_EQ(mgr_->epoch(), epoch);
  EXPECT_EQ(WarehouseCrc(*mgr_), crc);
}

// EXPLAIN over the wire: the explain flag appends the profile after the
// result bytes; the result prefix stays byte-identical to a plain query.
TEST_F(ServerTest, ExplainOverTheWire) {
  Client c = Connect();
  auto plain = c.Call(QueryReq());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain.value().code, StatusCode::kOk);
  auto explained = c.Call(QueryReq(kQueryExplain));
  ASSERT_TRUE(explained.ok());
  ASSERT_EQ(explained.value().code, StatusCode::kOk);
  ASSERT_GT(explained.value().body.size(), plain.value().body.size());
  EXPECT_EQ(explained.value().body.substr(0, plain.value().body.size()),
            plain.value().body);
  if (obs::ProfilingEnabled()) {
    EXPECT_NE(explained.value().body.find("cache"), std::string::npos);
  }
}

// Concurrent sessions, pipelined windows: every response is byte-identical
// and the warehouse is untouched.
TEST_F(ServerTest, ConcurrentPipelinedClientsReadIdenticalBytes) {
  const uint32_t crc_before = WarehouseCrc(*mgr_);
  const uint64_t epoch_before = mgr_->epoch();
  const std::string expected = EmbeddedQueryBytes(*mgr_, /*parallel=*/false);

  constexpr int kClients = 6;
  constexpr int kWindow = 16;
  constexpr int kWindows = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto conn = Client::Connect("127.0.0.1", server_->port());
      if (!conn.ok()) {
        mismatches.fetch_add(1000);
        return;
      }
      Client c = conn.take();
      std::vector<Request> window(kWindow, QueryReq());
      for (int w = 0; w < kWindows; ++w) {
        if (!c.SendPipelined(window.data(), window.size()).ok()) {
          mismatches.fetch_add(100);
          return;
        }
        for (int i = 0; i < kWindow; ++i) {
          auto resp = c.Recv();
          if (!resp.ok() || resp.value().code != StatusCode::kOk ||
              resp.value().body != expected) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(WarehouseCrc(*mgr_), crc_before);
  EXPECT_EQ(mgr_->epoch(), epoch_before);
}

// A row budget travels in the request and maps to ResourceExhausted over
// the wire — the same plumbing deadlines use (runtime::OpContext).
TEST_F(ServerTest, RowBudgetMapsToResourceExhausted) {
  Client c = Connect();
  Request req = QueryReq();
  req.max_rows = 1;  // the example warehouse charges more than one row
  auto resp = c.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().code, StatusCode::kResourceExhausted)
      << resp.value().message;
  // The connection survives an aborted command.
  auto again = c.Call(QueryReq());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().code, StatusCode::kOk);
}

// The cancel.net.* sweep, response half: an abort injected at each poll
// site answers kCancelled and leaves the warehouse byte-identical.
TEST_F(ServerTest, CancelSweepAnswersCancelledAndLeavesBytesIdentical) {
  for (const char* site :
       {"cancel.net.read", "cancel.net.dispatch", "cancel.net.respond"}) {
    const uint64_t epoch = mgr_->epoch();
    const uint32_t crc = WarehouseCrc(*mgr_);
    testing::FaultInjector::Global().Arm(site, 1, testing::FaultMode::kCancel);
    Client c = Connect();
    auto resp = c.Call(QueryReq());
    testing::FaultInjector::Global().Disarm();
    ASSERT_TRUE(resp.ok()) << site << ": " << resp.status().ToString();
    EXPECT_EQ(resp.value().code, StatusCode::kCancelled) << site;
    EXPECT_EQ(mgr_->epoch(), epoch) << site;
    EXPECT_EQ(WarehouseCrc(*mgr_), crc) << site;
  }
}

// The sweep's disconnect half (the ISSUE's scenario): the client vanishes
// instead of reading the aborted response. The session dies on the write,
// the epoch stays unbumped, the snapshot bytes stay identical.
TEST_F(ServerTest, CancelSweepWithClientDisconnectLeavesBytesIdentical) {
  auto& aborts = obs::MetricsRegistry::Global().GetCounter(
      "dwred_net_aborts", "");
  for (const char* site :
       {"cancel.net.read", "cancel.net.dispatch", "cancel.net.respond"}) {
    const uint64_t epoch = mgr_->epoch();
    const uint32_t crc = WarehouseCrc(*mgr_);
    const uint64_t aborts_before = aborts.Value();
    testing::FaultInjector::Global().Arm(site, 1, testing::FaultMode::kCancel);
    {
      Client c = Connect();
      ASSERT_TRUE(c.Send(QueryReq()).ok()) << site;
      c.Close();  // disconnect without reading the response
    }
    // Wait until the server has actually processed (and aborted) the
    // command; the abort counter is the in-process signal.
    for (int spin = 0; spin < 2000 && aborts.Value() == aborts_before;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    testing::FaultInjector::Global().Disarm();
    EXPECT_GT(aborts.Value(), aborts_before) << site;
    EXPECT_EQ(mgr_->epoch(), epoch) << site;
    EXPECT_EQ(WarehouseCrc(*mgr_), crc) << site;
  }
}

// A client that disconnects mid-mutating-command must not corrupt the
// warehouse: either the insert fully landed (epoch bumped, rows present) or
// it didn't — never a torn batch.
TEST_F(ServerTest, DisconnectDuringInsertIsAtomic) {
  std::unique_ptr<SubcubeManager> twin = BuildWarehouse(now_day_);
  ASSERT_NE(twin, nullptr);
  {
    Client c = Connect();
    Request ins;
    ins.cmd = Command::kInsert;
    ins.a = kInsertCsv;
    ASSERT_TRUE(c.Send(ins).ok());
    c.Close();  // vanish before the response
  }
  // Wait until the insert landed (it was fully received, so it executes).
  for (int spin = 0; spin < 2000 && mgr_->epoch() == twin->epoch(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    const MultidimensionalObject& ctx = twin->context();
    MultidimensionalObject batch(ctx.fact_type(), ctx.dimensions(),
                                 ctx.measure_types());
    ASSERT_TRUE(ReadFactCsv(&batch, kInsertCsv).ok());
    ASSERT_TRUE(twin->InsertBottomFacts(batch).ok());
  }
  EXPECT_EQ(WarehouseCrc(*mgr_), WarehouseCrc(*twin));
}

// Raw-socket torture: a CRC-corrupt frame gets one kParseError response and
// a close; an oversized length prefix likewise — the server never hangs and
// never applies a corrupt command.
TEST_F(ServerTest, CorruptAndOversizedFramesAnswerErrorThenClose) {
  const uint32_t crc_before = WarehouseCrc(*mgr_);
  for (int scenario = 0; scenario < 2; ++scenario) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    std::string wire;
    if (scenario == 0) {
      AppendFrame(&wire, EncodeRequest(QueryReq()));
      wire[wire.size() - 1] ^= 0x20;  // corrupt the payload -> CRC mismatch
    } else {
      wire.assign(8, '\0');
      wire[3] = static_cast<char>(0xff);  // ~4 GiB length prefix
    }
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    // Read everything until the server closes: must decode to exactly one
    // kParseError response.
    std::string got;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      got.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    std::string payload, err;
    size_t consumed = 0;
    ASSERT_EQ(ExtractFrame(got, &payload, &consumed, &err), FrameParse::kFrame)
        << "scenario " << scenario;
    EXPECT_EQ(consumed, got.size()) << "more than one response frame";
    auto resp = DecodeResponse(payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.value().code, StatusCode::kParseError) << "scenario "
                                                          << scenario;
  }
  EXPECT_EQ(WarehouseCrc(*mgr_), crc_before);
}

// The connection cap sheds with one honest ResourceExhausted response.
TEST_F(ServerTest, ConnectionCapShedsWithResourceExhausted) {
  ServerConfig config;
  config.max_connections = 1;
  Server small(config, mgr_.get());
  ASSERT_TRUE(small.Start().ok());
  auto first = Client::Connect("127.0.0.1", small.port());
  ASSERT_TRUE(first.ok());
  Request ping;
  ping.cmd = Command::kPing;
  auto ok = first.value().Call(ping);  // session is live
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok.value().code, StatusCode::kOk);

  auto second = Client::Connect("127.0.0.1", small.port());
  ASSERT_TRUE(second.ok());
  auto shed = second.value().Recv();  // unsolicited shed response
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().code, StatusCode::kResourceExhausted);
  small.Stop();
}

// Stats and cache control over the wire.
TEST_F(ServerTest, StatsAndCacheControl) {
  Client c = Connect();
  Request stats;
  stats.cmd = Command::kStats;
  auto text = c.Call(stats);
  ASSERT_TRUE(text.ok());
  ASSERT_EQ(text.value().code, StatusCode::kOk);
  EXPECT_NE(text.value().body.find("dwred_net_connections_total"),
            std::string::npos);
  stats.flags = kStatsJson;
  auto json = c.Call(stats);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().body.front(), '{');

  Request cache_stats;
  cache_stats.cmd = Command::kCacheCtl;
  auto cs = c.Call(cache_stats);
  ASSERT_TRUE(cs.ok());
  ASSERT_EQ(cs.value().code, StatusCode::kOk);
  EXPECT_NE(cs.value().body.find("epoch="), std::string::npos);

  Request clear;
  clear.cmd = Command::kCacheCtl;
  clear.a = "clear";
  auto cl = c.Call(clear);
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl.value().body, "cache cleared");

  Request bad;
  bad.cmd = Command::kCacheCtl;
  bad.a = "defrost";
  auto rej = c.Call(bad);
  ASSERT_TRUE(rej.ok());
  EXPECT_EQ(rej.value().code, StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, ShutdownCommandUnblocksWaiters) {
  Client c = Connect();
  Request req;
  req.cmd = Command::kShutdown;
  auto resp = c.Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().code, StatusCode::kOk);
  // The session signals shutdown only after the ack is on the wire, so the
  // client can read its response a moment before the flag flips; the wait
  // (not the flag) is the ordering guarantee.
  server_->WaitForShutdown();  // must not block after the command
  EXPECT_TRUE(server_->shutdown_requested());
}

}  // namespace
}  // namespace dwred::net
