// Dimension-type lattice and dimension-instance tests: the partial order
// <=_T, Anc, GLB/LUB (paper Section 6.1), linearity, value rollup/drilldown,
// the containment order <=_D, subdimensions, and the on-demand Time
// dimension.

#include "mdm/dimension.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"

namespace dwred {
namespace {

TEST(DimensionTypeTest, TimeTypeStructure) {
  DimensionType t = MakeTimeDimensionType();
  EXPECT_EQ(t.num_categories(), 6u);
  EXPECT_EQ(t.category_name(t.bottom()), "day");
  EXPECT_EQ(t.category_name(t.top()), "TOP");
  EXPECT_FALSE(t.IsLinear());  // paper: Time's hierarchy is non-linear

  CategoryId day = 0, week = 1, month = 2, quarter = 3, year = 4, top = 5;
  EXPECT_TRUE(t.Leq(day, week));
  EXPECT_TRUE(t.Leq(day, year));
  EXPECT_TRUE(t.Leq(month, year));
  EXPECT_FALSE(t.Leq(week, month));
  EXPECT_FALSE(t.Leq(month, week));
  EXPECT_TRUE(t.Leq(week, top));
  EXPECT_TRUE(t.Leq(day, day));
  EXPECT_FALSE(t.Leq(year, quarter));

  // Anc per the paper: Anc(day) = {week, month}.
  EXPECT_EQ(t.Anc(day).size(), 2u);
  EXPECT_EQ(t.Anc(quarter), std::vector<CategoryId>{year});
}

TEST(DimensionTypeTest, GlbLubOnParallelHierarchy) {
  DimensionType t = MakeTimeDimensionType();
  CategoryId day = 0, week = 1, month = 2, quarter = 3, year = 4, top = 5;
  // Paper Section 6.1: GLB(week, quarter) = day.
  EXPECT_EQ(t.Glb(week, quarter), day);
  EXPECT_EQ(t.Glb(month, quarter), month);
  EXPECT_EQ(t.Glb(quarter, month), month);
  EXPECT_EQ(t.Glb(week, week), week);
  EXPECT_EQ(t.Lub(week, month), top);
  EXPECT_EQ(t.Lub(month, quarter), quarter);
  EXPECT_EQ(t.Lub(day, year), year);
  EXPECT_EQ(t.Glb({week, month, quarter}), day);
}

TEST(DimensionTypeTest, UrlTypeIsLinear) {
  IspExample ex = MakeIspExample();
  const DimensionType& t = ex.mo->dimension(ex.url_dim)->type();
  EXPECT_TRUE(t.IsLinear());
  EXPECT_EQ(t.bottom(), ex.url_cat);
  EXPECT_TRUE(t.Leq(ex.url_cat, ex.domain_grp_cat));
  EXPECT_EQ(t.Glb(ex.domain_cat, ex.domain_grp_cat), ex.domain_cat);
}

TEST(DimensionTypeTest, RejectsCycles) {
  DimensionType t("Bad");
  CategoryId a = t.AddCategory("a");
  CategoryId b = t.AddCategory("b");
  ASSERT_TRUE(t.AddEdge(a, b).ok());
  ASSERT_TRUE(t.AddEdge(b, a).ok());
  EXPECT_FALSE(t.Finalize().ok());
}

TEST(DimensionTypeTest, RejectsTwoTops) {
  DimensionType t("Bad");
  CategoryId a = t.AddCategory("a");
  t.AddCategory("b");  // no edges: two maximal categories
  (void)a;
  EXPECT_FALSE(t.Finalize().ok());
}

TEST(DimensionTest, ValueRollupAlongLinearHierarchy) {
  IspExample ex = MakeIspExample();
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  EXPECT_EQ(url.Rollup(ex.url_health, ex.domain_cat), ex.dom_cnn);
  EXPECT_EQ(url.Rollup(ex.url_health, ex.domain_grp_cat), ex.grp_com);
  EXPECT_EQ(url.Rollup(ex.url_health, url.type().top()), url.top_value());
  EXPECT_EQ(url.Rollup(ex.dom_cnn, ex.domain_cat), ex.dom_cnn);
  // Downward rollup does not exist.
  EXPECT_EQ(url.Rollup(ex.dom_cnn, ex.url_cat), kInvalidValue);
}

TEST(DimensionTest, ValueLeqIsContainment) {
  IspExample ex = MakeIspExample();
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  EXPECT_TRUE(url.ValueLeq(ex.url_health, ex.dom_cnn));
  EXPECT_TRUE(url.ValueLeq(ex.url_health, ex.grp_com));
  EXPECT_TRUE(url.ValueLeq(ex.url_health, url.top_value()));
  EXPECT_TRUE(url.ValueLeq(ex.url_health, ex.url_health));
  EXPECT_FALSE(url.ValueLeq(ex.url_health, ex.dom_amazon));
  EXPECT_FALSE(url.ValueLeq(ex.dom_cnn, ex.url_health));
  EXPECT_FALSE(url.ValueLeq(ex.grp_edu, ex.grp_com));
}

TEST(DimensionTest, DrillDownMaterializedValues) {
  IspExample ex = MakeIspExample();
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  std::vector<ValueId> urls_of_cnn = url.DrillDown(ex.dom_cnn, ex.url_cat);
  EXPECT_EQ(urls_of_cnn.size(), 2u);
  std::vector<ValueId> com_domains = url.DrillDown(ex.grp_com, ex.domain_cat);
  EXPECT_EQ(com_domains.size(), 2u);  // amazon.com, cnn.com
  std::vector<ValueId> all_urls =
      url.DrillDown(url.top_value(), ex.url_cat);
  EXPECT_EQ(all_urls.size(), 4u);
}

TEST(DimensionTest, RejectsDuplicateAndBadValues) {
  IspExample ex = MakeIspExample();
  auto url = ex.mo->dimension(ex.url_dim);
  // Duplicate name within a category.
  EXPECT_FALSE(url->AddValue(".com", ex.domain_grp_cat, url->top_value()).ok());
  // Parent in the wrong category (grandparent instead of parent).
  EXPECT_FALSE(url->AddValue("x.org", ex.domain_cat, url->top_value()).ok());
  // Adding to TOP is forbidden.
  EXPECT_FALSE(url->AddValue("another-top", url->type().top(),
                             std::vector<ValueId>{})
                   .ok());
}

TEST(DimensionTest, TimeDimensionOnDemand) {
  Dimension time = Dimension::MakeTimeDimension();
  ASSERT_TRUE(time.is_time());
  auto day = time.EnsureTimeValue(DayGranule(CivilDate{1999, 12, 4}));
  ASSERT_TRUE(day.ok());
  // Ancestors materialize automatically: week, month, quarter, year, TOP.
  EXPECT_NE(time.FindTimeValue(WeekGranule(1999, 48)), kInvalidValue);
  EXPECT_NE(time.FindTimeValue(MonthGranule(1999, 12)), kInvalidValue);
  EXPECT_NE(time.FindTimeValue(QuarterGranule(1999, 4)), kInvalidValue);
  EXPECT_NE(time.FindTimeValue(YearGranule(1999)), kInvalidValue);

  // Idempotent.
  auto again = time.EnsureTimeValue(DayGranule(CivilDate{1999, 12, 4}));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), day.value());

  // Rollup follows the calendar.
  ValueId q = time.Rollup(day.value(), static_cast<CategoryId>(TimeUnit::kQuarter));
  EXPECT_EQ(time.granule(q), QuarterGranule(1999, 4));
  ValueId w = time.Rollup(day.value(), static_cast<CategoryId>(TimeUnit::kWeek));
  EXPECT_EQ(time.granule(w), WeekGranule(1999, 48));
  // week does not roll up to month.
  EXPECT_EQ(time.Rollup(w, static_cast<CategoryId>(TimeUnit::kMonth)),
            kInvalidValue);
}

TEST(DimensionTest, SubdimensionDropLowerCategories) {
  // Paper Section 3's example: drop url and domain, keep domain_grp and TOP.
  IspExample ex = MakeIspExample();
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  std::vector<ValueId> vmap;
  auto sub = url.Subdimension({ex.domain_grp_cat, ex.url_top_cat}, &vmap);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  const Dimension& s = sub.value();
  EXPECT_EQ(s.type().num_categories(), 2u);
  EXPECT_EQ(s.num_values(), 3u);  // T, .com, .edu
  EXPECT_NE(vmap[ex.grp_com], kInvalidValue);
  EXPECT_EQ(vmap[ex.url_health], kInvalidValue);  // dropped category
  // Order is the restriction of <=_D.
  EXPECT_TRUE(s.ValueLeq(vmap[ex.grp_com], s.top_value()));
}

TEST(DimensionTest, SubdimensionSkipMiddleCategoryRewiresParents) {
  IspExample ex = MakeIspExample();
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  std::vector<ValueId> vmap;
  auto sub = url.Subdimension({ex.url_cat, ex.domain_grp_cat, ex.url_top_cat},
                              &vmap);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  const Dimension& s = sub.value();
  // urls now report domain_grp as immediate ancestor.
  auto grp = s.type().CategoryByName("domain_grp");
  ASSERT_TRUE(grp.ok());
  EXPECT_EQ(s.Rollup(vmap[ex.url_health], grp.value()), vmap[ex.grp_com]);
  EXPECT_TRUE(s.ValueLeq(vmap[ex.url_health], vmap[ex.grp_com]));
}

TEST(DimensionTest, SubdimensionMustKeepTop) {
  IspExample ex = MakeIspExample();
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  EXPECT_FALSE(url.Subdimension({ex.url_cat, ex.domain_cat}, nullptr).ok());
}

}  // namespace
}  // namespace dwred
