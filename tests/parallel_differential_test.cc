// Serial-vs-parallel differential harness (the PR's acceptance gate): every
// parallelized pass — Reduce, SubcubeManager::Synchronize, subcube queries,
// and the full durable pipeline — must produce *byte-identical* results at
// every thread count. Workloads are randomized (seeded retail + clickstream),
// specifications come from the shared generator (src/testing/spec_gen.h),
// and the strongest check compares the final snapshot.dwsnap images.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "exec/thread_pool.h"
#include "io/recovery.h"
#include "io/snapshot.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "subcube/manager.h"
#include "testing/spec_gen.h"
#include "workload/clickstream.h"
#include "workload/retail.h"

namespace dwred {
namespace {

const int kThreadCounts[] = {1, 2, 4, 8};

/// Full-fidelity serialization of an MO: coordinates, measures, names,
/// provenance, responsible actions. Any divergence between thread counts
/// shows up as a string mismatch.
std::string Fingerprint(const MultidimensionalObject& mo) {
  std::ostringstream out;
  out << mo.num_facts() << "\n";
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    out << f << "|" << mo.FactName(f) << "|";
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      out << mo.Coord(f, static_cast<DimensionId>(d)) << ",";
    }
    out << "|";
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      out << mo.Measure(f, static_cast<MeasureId>(m)) << ",";
    }
    out << "|" << mo.ResponsibleAction(f) << "|";
    if (const std::vector<FactId>* prov = mo.Provenance(f)) {
      for (FactId s : *prov) out << s << ",";
    }
    out << "\n";
  }
  return out.str();
}

std::string CubeFingerprint(const SubcubeManager& m) {
  std::ostringstream out;
  for (size_t i = 0; i < m.num_subcubes(); ++i) {
    const FactTable& t = m.subcube(i).table;
    out << "cube " << i << " rows " << t.num_rows() << "\n";
    for (RowId r = 0; r < t.num_rows(); ++r) {
      for (size_t d = 0; d < t.num_dims(); ++d) out << t.Coord(r, d) << ",";
      out << "|";
      for (size_t mm = 0; mm < t.num_measures(); ++mm) {
        out << t.Measure(r, mm) << ",";
      }
      out << "\n";
    }
  }
  return out.str();
}

/// Runs `body` once per thread count and asserts every run reproduces the
/// threads=1 output byte for byte.
void ExpectIdenticalAcrossThreadCounts(
    const std::function<std::string(int threads)>& body) {
  std::string baseline;
  for (int threads : kThreadCounts) {
    exec::ThreadPool::ResetGlobal(threads);
    std::string got = body(threads);
    if (threads == 1) {
      baseline = std::move(got);
      ASSERT_FALSE(baseline.empty());
      continue;
    }
    EXPECT_EQ(got, baseline) << "thread count " << threads
                             << " diverged from serial";
  }
  exec::ThreadPool::ResetGlobal(2);
}

ReductionSpecification MustSpec(Result<ReductionSpecification> r) {
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r.value());
}

TEST(ParallelDifferential, ReducePassClickstream) {
  ClickstreamConfig cfg;
  cfg.seed = 11;
  cfg.num_domains = 12;
  cfg.urls_per_domain = 4;
  cfg.num_clicks = 4000;
  cfg.span_days = 3 * 365;
  ClickstreamWorkload w = MakeClickstream(cfg);
  int64_t start = DaysFromCivil(cfg.start);

  for (uint64_t seed : {1u, 2u, 3u}) {
    testing::SpecGenOptions opts;
    opts.num_actions = 3;
    opts.sound_chain = true;
    ReductionSpecification spec = MustSpec(testing::GenerateSpec(*w.mo, seed, opts));
    for (int64_t now : {start + 400, start + 900, start + 1500}) {
      ExpectIdenticalAcrossThreadCounts([&](int) {
        auto reduced = Reduce(*w.mo, spec, now);
        EXPECT_TRUE(reduced.ok()) << reduced.status().message();
        return SaveWarehouse(reduced.value(), spec);
      });
    }
  }
}

TEST(ParallelDifferential, ReducePassRetail) {
  RetailConfig cfg;
  cfg.seed = 23;
  cfg.num_categories = 4;
  cfg.brands_per_category = 3;
  cfg.skus_per_brand = 5;
  cfg.num_sales = 4000;
  cfg.span_days = 3 * 365;
  RetailWorkload w = MakeRetail(cfg);
  int64_t start = DaysFromCivil(cfg.start);

  for (uint64_t seed : {5u, 6u}) {
    testing::SpecGenOptions opts;
    opts.num_actions = 4;
    opts.sound_chain = true;
    ReductionSpecification spec = MustSpec(testing::GenerateSpec(*w.mo, seed, opts));
    ExpectIdenticalAcrossThreadCounts([&](int) {
      auto reduced = Reduce(*w.mo, spec, start + 1200);
      EXPECT_TRUE(reduced.ok()) << reduced.status().message();
      return SaveWarehouse(reduced.value(), spec);
    });
  }
}

TEST(ParallelDifferential, SynchronizeClickstream) {
  ClickstreamConfig cfg;
  cfg.seed = 31;
  cfg.num_domains = 10;
  cfg.urls_per_domain = 4;
  cfg.num_clicks = 3000;
  cfg.span_days = 3 * 365;
  ClickstreamWorkload w = MakeClickstream(cfg);
  int64_t start = DaysFromCivil(cfg.start);

  testing::SpecGenOptions opts;
  opts.num_actions = 3;
  opts.sound_chain = true;
  opts.deletion_prob = 1.0;  // exercise the deletion path during migration
  ReductionSpecification spec = MustSpec(testing::GenerateSpec(*w.mo, 7, opts));

  ExpectIdenticalAcrossThreadCounts([&](int) {
    auto mgr = SubcubeManager::Create(
        "Click", {w.time_dim, w.url_dim},
        std::vector<MeasureType>(w.mo->measure_types()), spec);
    EXPECT_TRUE(mgr.ok()) << mgr.status().message();
    SubcubeManager& m = mgr.value();
    EXPECT_TRUE(m.InsertBottomFacts(*w.mo).ok());
    std::string fp;
    for (int64_t now :
         {start + 400, start + 800, start + 1300, start + 1900}) {
      auto migrated = m.Synchronize(now);
      EXPECT_TRUE(migrated.ok()) << migrated.status().message();
      fp += "sync@" + std::to_string(now) + "\n" + CubeFingerprint(m);
    }
    return fp;
  });
}

TEST(ParallelDifferential, QueryClickstream) {
  ClickstreamConfig cfg;
  cfg.seed = 47;
  cfg.num_domains = 10;
  cfg.urls_per_domain = 4;
  cfg.num_clicks = 3000;
  cfg.span_days = 2 * 365;
  ClickstreamWorkload w = MakeClickstream(cfg);
  int64_t start = DaysFromCivil(cfg.start);

  testing::SpecGenOptions opts;
  opts.num_actions = 2;
  opts.sound_chain = true;
  ReductionSpecification spec = MustSpec(testing::GenerateSpec(*w.mo, 13, opts));

  auto pred = ParsePredicate(*w.mo, "Time.month >= NOW - 30 months");
  ASSERT_TRUE(pred.ok()) << pred.status().message();
  auto target = ParseGranularityList(*w.mo, "Time.month, URL.domain");
  ASSERT_TRUE(target.ok()) << target.status().message();

  ExpectIdenticalAcrossThreadCounts([&](int) {
    auto mgr = SubcubeManager::Create(
        "Click", {w.time_dim, w.url_dim},
        std::vector<MeasureType>(w.mo->measure_types()), spec);
    EXPECT_TRUE(mgr.ok()) << mgr.status().message();
    SubcubeManager& m = mgr.value();
    EXPECT_TRUE(m.InsertBottomFacts(*w.mo).ok());
    int64_t now = start + 600;
    EXPECT_TRUE(m.Synchronize(now).ok());
    std::string fp;
    // Both the synchronized fast path and the stale path (which pulls from
    // ancestor cubes through Select/AggregateFormation), both parallel modes.
    for (bool assume_synced : {true, false}) {
      auto q = m.Query(pred.value().get(), &target.value(), now, assume_synced,
                       /*parallel=*/true);
      EXPECT_TRUE(q.ok()) << q.status().message();
      fp += Fingerprint(q.value());
    }
    return fp;
  });
}

// Error-injecting spec: two pairs of NonCrossing-violating actions, each
// tripping MaxSpecGran on a different set of facts (by URL domain). The error
// Reduce reports must be the *globally first* failing fact's error at every
// thread count — the interleaved serial order — even though at higher thread
// counts a later shard independently hits the other failing domain.
TEST(ParallelDifferential, ReduceErrorOrderMatchesSerial) {
  ClickstreamConfig cfg;
  cfg.seed = 71;
  cfg.num_domains = 12;
  cfg.urls_per_domain = 4;
  cfg.num_clicks = 4000;  // > 1024-grain shards at higher thread counts
  cfg.span_days = 2 * 365;
  ClickstreamWorkload w = MakeClickstream(cfg);
  int64_t now = DaysFromCivil(cfg.start) + 400;

  DimensionId url_d = 0;
  for (size_t d = 0; d < w.mo->num_dimensions(); ++d) {
    auto dd = static_cast<DimensionId>(d);
    if (w.mo->dimension(dd)->type().name() == "URL") url_d = dd;
  }
  const Dimension& url_dim = *w.mo->dimension(url_d);
  CategoryId domain_cat = url_dim.type().CategoryByName("domain").take();

  auto domain_pred = [&](std::string_view domain_name) {
    Atom a;
    a.dim = url_d;
    a.category = domain_cat;
    a.op = CmpOp::kEq;
    a.values = {url_dim.ValueByName(domain_cat, domain_name).take()};
    return PredExpr::MakeAtom(a);
  };
  auto crossing_pair = [&](std::shared_ptr<PredExpr> pred, const char* stem,
                           ReductionSpecification* spec) {
    // (Time.month, URL.url) and (Time.day, URL.domain) are incomparable:
    // any fact satisfying `pred` satisfies both, violating NonCrossing.
    Action lift_time;
    lift_time.granularity = ParseGranularityList(*w.mo, "Time.month, URL.url").take();
    lift_time.predicate = pred;
    lift_time.name = std::string(stem) + "_time";
    Action lift_url;
    lift_url.granularity = ParseGranularityList(*w.mo, "Time.day, URL.domain").take();
    lift_url.predicate = std::move(pred);
    lift_url.name = std::string(stem) + "_url";
    spec->Add(std::move(lift_time));
    spec->Add(std::move(lift_url));
  };

  std::shared_ptr<PredExpr> pred_a = domain_pred("site5.edu");
  std::shared_ptr<PredExpr> pred_b = domain_pred("site7.net");
  ReductionSpecification spec;
  crossing_pair(pred_a, "a", &spec);
  crossing_pair(pred_b, "b", &spec);

  // The serial interleaved loop fails at the first fact matching either
  // domain; later matches (which land in later shards) must never win.
  FactId first_bad = w.mo->num_facts();
  FactId last_bad = 0;
  for (FactId f = 0; f < w.mo->num_facts(); ++f) {
    if (EvalPredOnFact(*pred_a, *w.mo, f, now) ||
        EvalPredOnFact(*pred_b, *w.mo, f, now)) {
      if (first_bad == w.mo->num_facts()) first_bad = f;
      last_bad = f;
    }
  }
  ASSERT_LT(first_bad, w.mo->num_facts()) << "workload matched no domain";
  ASSERT_LT(first_bad, 1024u) << "first failing fact must sit in shard 0";
  ASSERT_GE(last_bad, 2048u) << "need a failing fact in a later shard";

  ExpectIdenticalAcrossThreadCounts([&](int) {
    auto reduced = Reduce(*w.mo, spec, now);
    EXPECT_FALSE(reduced.ok());
    return reduced.status().message();
  });

  exec::ThreadPool::ResetGlobal(8);
  auto reduced = Reduce(*w.mo, spec, now);
  ASSERT_FALSE(reduced.ok());
  EXPECT_NE(reduced.status().message().find(
                "for " + w.mo->FactName(first_bad) + " "),
            std::string::npos)
      << "error does not name the globally first failing fact: "
      << reduced.status().message();
  exec::ThreadPool::ResetGlobal(2);
}

TEST(ParallelDifferential, EndToEndSnapshotImage) {
  ClickstreamConfig cfg;
  cfg.seed = 59;
  cfg.num_domains = 8;
  cfg.urls_per_domain = 3;
  cfg.num_clicks = 1500;
  cfg.span_days = 2 * 365;
  int64_t start = DaysFromCivil(cfg.start);

  // Spec text only — it is re-parsed against each run's fresh dimensions.
  std::vector<std::pair<std::string, std::string>> staged;
  {
    ClickstreamWorkload tmp = MakeClickstream(cfg);
    testing::SpecGenOptions opts;
    opts.num_actions = 2;
    opts.sound_chain = true;
    ReductionSpecification spec =
        MustSpec(testing::GenerateSpec(*tmp.mo, 17, opts));
    for (const Action& a : spec.actions()) {
      staged.push_back({a.name, a.source_text});
    }
  }

  ExpectIdenticalAcrossThreadCounts([&](int threads) {
    // A fresh deterministic universe per thread count: dimensions are shared
    // mutable state (time values intern on demand), so reusing them across
    // runs would leak one run's interning into the next run's snapshot.
    ClickstreamWorkload base = MakeClickstream(cfg);
    std::string dir = ::testing::TempDir() + "pardiff_t" +
                      std::to_string(threads) + "_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    auto snapshot_bytes = [&dir]() {
      std::ifstream in(dir + "/snapshot.dwsnap", std::ios::binary);
      EXPECT_TRUE(in.good());
      std::ostringstream bytes;
      bytes << in.rdbuf();
      return bytes.str();
    };

    // Plain-mode flow: journaled reduce passes over the pool.
    std::string image;
    {
      auto dw = DurableWarehouse::Create(
          dir, std::make_unique<MultidimensionalObject>(*base.mo),
          ReductionSpecification{});
      EXPECT_TRUE(dw.ok()) << dw.status().message();
      DurableWarehouse& w = *dw.value();
      Status st = w.ApplyActions(staged);
      EXPECT_TRUE(st.ok()) << st.message();
      EXPECT_TRUE(w.ReducePass(start + 500).ok());
      EXPECT_TRUE(w.ReducePass(start + 900).ok());
      EXPECT_TRUE(w.Checkpoint().ok());
      image = snapshot_bytes();
    }
    std::filesystem::remove_all(dir);

    // Subcube flow: journaled inserts + synchronize passes over the pool
    // (subcubes must be enabled while every fact still sits at bottom).
    {
      auto dw = DurableWarehouse::Create(
          dir, std::make_unique<MultidimensionalObject>(*base.mo),
          ReductionSpecification{});
      EXPECT_TRUE(dw.ok()) << dw.status().message();
      DurableWarehouse& w = *dw.value();
      EXPECT_TRUE(w.ApplyActions(staged).ok());
      EXPECT_TRUE(w.EnableSubcubes().ok());
      MultidimensionalObject batch = MakeClickBatch(
          base.time_dim, base.url_dim, start + 500, start + 600, 500, 101);
      EXPECT_TRUE(w.InsertFacts(batch).ok());
      EXPECT_TRUE(w.SynchronizePass(start + 900).ok());
      EXPECT_TRUE(w.Checkpoint().ok());
      image += snapshot_bytes();
    }
    std::filesystem::remove_all(dir);
    return image;
  });
}

}  // namespace
}  // namespace dwred
