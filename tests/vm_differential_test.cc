// Differential fuzz harness for the bytecode VM (src/vm): the compiled
// programs must be *bitwise* indistinguishable from the tree interpreters
// they replace. Three layers of evidence, all seeded and deterministic:
//
//   1. per-row weights — for hundreds of (schema, spec, predicate, approach)
//      cases drawn through the real generator (src/testing/spec_gen) and the
//      real parser, every fact's compiled weight equals the interpreter's
//      double bit for bit (EXPECT_EQ on doubles is exact equality), under
//      the 0/1 spec semantics and all three query selection approaches;
//   2. end-to-end bytes — Reduce, Synchronize, and subcube queries produce
//      identical full-fidelity fingerprints with the VM on and off
//      (DWRED_VM_DISABLED) at 1 and 8 pool threads;
//   3. liveness — the VM path demonstrably ran (dwred_vm_compiles moved), so
//      the equalities above compare two genuinely different code paths.

#include <stdlib.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "exec/thread_pool.h"
#include "io/snapshot.h"
#include "obs/metrics.h"
#include "query/compare.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "subcube/manager.h"
#include "testing/spec_gen.h"
#include "vm/program.h"
#include "workload/clickstream.h"
#include "workload/retail.h"

namespace dwred {
namespace {

/// Flips the VM kill switch for a scope; restores the VM on destruction.
struct VmSwitch {
  explicit VmSwitch(bool enabled) { Set(enabled); }
  ~VmSwitch() { Set(true); }
  static void Set(bool enabled) {
    if (enabled) {
      ::unsetenv("DWRED_VM_DISABLED");
    } else {
      ::setenv("DWRED_VM_DISABLED", "1", /*overwrite=*/1);
    }
  }
};

/// Flips the columnar kill switch for a scope; restores columnar on exit.
struct ColumnarSwitch {
  explicit ColumnarSwitch(bool enabled) { Set(enabled); }
  ~ColumnarSwitch() { Set(true); }
  static void Set(bool enabled) {
    if (enabled) {
      ::unsetenv("DWRED_COLUMNAR_DISABLED");
    } else {
      ::setenv("DWRED_COLUMNAR_DISABLED", "1", /*overwrite=*/1);
    }
  }
};

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name, "").Value();
}

/// Full-fidelity serialization of an MO (coordinates, measures, names,
/// provenance) — any divergence shows up as a string mismatch.
std::string Fingerprint(const MultidimensionalObject& mo) {
  std::ostringstream out;
  out << mo.num_facts() << "\n";
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    out << f << "|" << mo.FactName(f) << "|";
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      out << mo.Coord(f, static_cast<DimensionId>(d)) << ",";
    }
    out << "|";
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      out << mo.Measure(f, static_cast<MeasureId>(m)) << ",";
    }
    out << "|" << mo.ResponsibleAction(f) << "|";
    if (const std::vector<FactId>* prov = mo.Provenance(f)) {
      for (FactId s : *prov) out << s << ",";
    }
    out << "\n";
  }
  return out.str();
}

std::string CubeFingerprint(const SubcubeManager& m) {
  std::ostringstream out;
  for (size_t i = 0; i < m.num_subcubes(); ++i) {
    const FactTable& t = m.subcube(i).table;
    out << "cube " << i << " rows " << t.num_rows() << "\n";
    for (RowId r = 0; r < t.num_rows(); ++r) {
      for (size_t d = 0; d < t.num_dims(); ++d) out << t.Coord(r, d) << ",";
      out << "|";
      for (size_t mm = 0; mm < t.num_measures(); ++mm) {
        out << t.Measure(r, mm) << ",";
      }
      out << "\n";
    }
  }
  return out.str();
}

/// The generated action predicates plus boolean compositions of them — the
/// compositions drive the connective bytecode (kPush/kAnd/kOr/kNot and both
/// short-circuit jumps) far harder than flat action predicates alone.
std::vector<std::shared_ptr<PredExpr>> PredicateCorpus(
    const ReductionSpecification& spec) {
  std::vector<std::shared_ptr<PredExpr>> preds;
  for (const Action& a : spec.actions()) preds.push_back(a.predicate);
  const size_t n = preds.size();
  if (n >= 2) {
    preds.push_back(PredExpr::And({preds[0], PredExpr::Not(preds[1])}));
    preds.push_back(PredExpr::Or({preds[0], preds[1]}));
    preds.push_back(
        PredExpr::Not(PredExpr::Or({preds[1], PredExpr::Not(preds[0])})));
  }
  if (n >= 3) {
    preds.push_back(
        PredExpr::Or({preds[0], PredExpr::And({preds[1], preds[2]})}));
    preds.push_back(PredExpr::And(
        {PredExpr::Or({preds[0], preds[1]}), PredExpr::Not(preds[2])}));
  }
  preds.push_back(PredExpr::And({PredExpr::True(), preds[0]}));
  preds.push_back(PredExpr::Or({PredExpr::False(), preds[n - 1]}));
  return preds;
}

/// One (schema, spec, predicate, approach) case: compile `pred` under every
/// semantics and require bitwise weight equality with the interpreter on
/// every fact. Adds the number of cases (compiled programs) to `*cases`.
void CheckPredicate(const MultidimensionalObject& mo, const PredExpr& pred,
                    int64_t now, int* cases) {
  // 0/1 spec semantics vs EvalPredOnFact.
  if (auto prog =
          vm::PredProgram::Compile(mo, pred, vm::SpecAtomOracle(mo, now))) {
    ++*cases;
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      const double w = prog->Eval(mo.FactCoords(f));
      ASSERT_NE(w, vm::PredProgram::kOutOfRange) << "stale table";
      ASSERT_EQ(w != 0.0, EvalPredOnFact(pred, mo, f, now))
          << "spec semantics diverged on fact " << f << " for "
          << pred.ToString(mo) << " at now=" << now;
    }
  }
  // Query semantics vs EvalQueryPredOnFact under all three approaches.
  for (SelectionApproach ap :
       {SelectionApproach::kConservative, SelectionApproach::kLiberal,
        SelectionApproach::kWeighted}) {
    auto prog = vm::PredProgram::Compile(mo, pred, QueryAtomOracle(now, ap));
    if (!prog) continue;
    ++*cases;
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      const double got = prog->Eval(mo.FactCoords(f));
      ASSERT_NE(got, vm::PredProgram::kOutOfRange) << "stale table";
      const double want = EvalQueryPredOnFact(pred, mo, f, now, ap);
      ASSERT_EQ(got, want)  // exact: EXPECT_EQ on doubles is bitwise here
          << SelectionApproachName(ap) << " weight diverged on fact " << f
          << " for " << pred.ToString(mo) << " at now=" << now;
    }
  }
}

ReductionSpecification MustSpec(Result<ReductionSpecification> r) {
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r.value());
}

// Layer 1: ≥500 seeded per-row weight cases across two schemas (clickstream
// and retail), sound-chain and random specs, flat and composed predicates,
// spec + {conservative, liberal, weighted} semantics.
TEST(VmDifferential, PerRowWeightsMatchInterpreterAcrossSeeds) {
  int64_t compiles_before = CounterValue("dwred_vm_compiles");
  int cases = 0;
  for (uint64_t seed = 1; seed <= 24 && !::testing::Test::HasFatalFailure();
       ++seed) {
    // Alternate schemas so the corpus spans 2-dim and 3-dim universes.
    std::unique_ptr<MultidimensionalObject> mo_hold;
    int64_t start = 0;
    if (seed % 2 == 0) {
      ClickstreamConfig cfg;
      cfg.seed = 100 + seed;
      cfg.num_domains = 4 + static_cast<size_t>(seed % 5);
      cfg.urls_per_domain = 3;
      cfg.num_clicks = 220;
      cfg.span_days = 2 * 365;
      ClickstreamWorkload w = MakeClickstream(cfg);
      mo_hold = std::move(w.mo);
      start = DaysFromCivil(cfg.start);
    } else {
      RetailConfig cfg;
      cfg.seed = 200 + seed;
      cfg.num_categories = 3;
      cfg.brands_per_category = 2 + static_cast<size_t>(seed % 3);
      cfg.skus_per_brand = 3;
      cfg.num_sales = 220;
      cfg.span_days = 2 * 365;
      RetailWorkload w = MakeRetail(cfg);
      mo_hold = std::move(w.mo);
      start = DaysFromCivil(cfg.start);
    }
    const MultidimensionalObject& mo = *mo_hold;

    dwred::testing::SpecGenOptions opts;
    opts.num_actions = 3;
    opts.sound_chain = seed % 3 != 0;  // random mode every third seed
    opts.deletion_prob = 0.25;
    ReductionSpecification spec =
        MustSpec(dwred::testing::GenerateSpec(mo, seed, opts));
    ASSERT_GT(spec.size(), 0u);

    const int64_t now = start + 200 + static_cast<int64_t>((seed * 97) % 500);
    for (const std::shared_ptr<PredExpr>& p : PredicateCorpus(spec)) {
      CheckPredicate(mo, *p, now, &cases);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GE(cases, 500) << "differential corpus shrank below the gate";
  EXPECT_GT(CounterValue("dwred_vm_compiles"), compiles_before)
      << "no program ever compiled — the harness is not testing the VM";
}

// Layer 2a: Reduce bytes are identical VM on/off at 1 and 8 threads.
TEST(VmDifferential, ReduceBytesIdenticalVmOnOffAcrossThreads) {
  ClickstreamConfig cfg;
  cfg.seed = 61;
  cfg.num_domains = 10;
  cfg.urls_per_domain = 4;
  cfg.num_clicks = 3000;
  cfg.span_days = 3 * 365;
  ClickstreamWorkload w = MakeClickstream(cfg);
  int64_t start = DaysFromCivil(cfg.start);

  for (uint64_t seed : {3u, 9u}) {
    dwred::testing::SpecGenOptions opts;
    opts.num_actions = 3;
    opts.sound_chain = true;
    ReductionSpecification spec =
        MustSpec(dwred::testing::GenerateSpec(*w.mo, seed, opts));
    for (int64_t now : {start + 500, start + 1100}) {
      std::string baseline;
      for (int threads : {1, 8}) {
        exec::ThreadPool::ResetGlobal(threads);
        for (bool vm_on : {true, false}) {
          VmSwitch sw(vm_on);
          for (bool col_on : {true, false}) {
            ColumnarSwitch cs(col_on);
            auto reduced = Reduce(*w.mo, spec, now);
            ASSERT_TRUE(reduced.ok()) << reduced.status().message();
            std::string got = SaveWarehouse(reduced.value(), spec);
            if (baseline.empty()) {
              baseline = std::move(got);
            } else {
              EXPECT_EQ(got, baseline)
                  << "threads=" << threads << " vm=" << vm_on
                  << " columnar=" << col_on << " seed=" << seed << " diverged";
            }
          }
        }
      }
    }
  }
  exec::ThreadPool::ResetGlobal(2);
}

// Layer 2b: Synchronize (including the deletion path) and subcube queries —
// synchronized and stale rewrites — are byte-identical VM on/off at 1 and 8
// threads.
TEST(VmDifferential, SubcubeBytesIdenticalVmOnOffAcrossThreads) {
  ClickstreamConfig cfg;
  cfg.seed = 67;
  cfg.num_domains = 10;
  cfg.urls_per_domain = 4;
  cfg.num_clicks = 2500;
  cfg.span_days = 3 * 365;
  ClickstreamWorkload w = MakeClickstream(cfg);
  int64_t start = DaysFromCivil(cfg.start);

  dwred::testing::SpecGenOptions opts;
  opts.num_actions = 3;
  opts.sound_chain = true;
  opts.deletion_prob = 1.0;  // drive ResponsibleCube's deletion branch
  ReductionSpecification spec =
      MustSpec(dwred::testing::GenerateSpec(*w.mo, 7, opts));

  auto pred = ParsePredicate(*w.mo, "Time.month >= NOW - 30 months");
  ASSERT_TRUE(pred.ok()) << pred.status().message();
  auto target = ParseGranularityList(*w.mo, "Time.month, URL.domain");
  ASSERT_TRUE(target.ok()) << target.status().message();

  std::string baseline;
  for (int threads : {1, 8}) {
    exec::ThreadPool::ResetGlobal(threads);
    for (bool vm_on : {true, false})
    for (bool col_on : {true, false}) {
      VmSwitch sw(vm_on);
      ColumnarSwitch cs(col_on);
      auto mgr = SubcubeManager::Create(
          "Click", {w.time_dim, w.url_dim},
          std::vector<MeasureType>(w.mo->measure_types()), spec);
      ASSERT_TRUE(mgr.ok()) << mgr.status().message();
      SubcubeManager& m = mgr.value();
      ASSERT_TRUE(m.InsertBottomFacts(*w.mo).ok());

      std::string fp;
      // Query the unsynchronized warehouse first (stale rewrite + per-row
      // responsibility filter), then synchronize twice, querying after each.
      for (int64_t now : {start + 400, start + 900}) {
        for (bool assume_synced : {false, true}) {
          auto q = m.Query(pred.value().get(), &target.value(), now,
                           assume_synced, /*parallel=*/threads > 1);
          ASSERT_TRUE(q.ok()) << q.status().message();
          fp += "query@" + std::to_string(now) + "/" +
                std::to_string(assume_synced) + "\n" + Fingerprint(q.value());
        }
        auto migrated = m.Synchronize(now);
        ASSERT_TRUE(migrated.ok()) << migrated.status().message();
        fp += "sync@" + std::to_string(now) + "\n" + CubeFingerprint(m);
      }
      if (baseline.empty()) {
        baseline = std::move(fp);
      } else {
        EXPECT_EQ(fp, baseline)
            << "threads=" << threads << " vm=" << vm_on
            << " columnar=" << col_on << " diverged";
      }
    }
  }
  exec::ThreadPool::ResetGlobal(2);
}

}  // namespace
}  // namespace dwred
