// Specification-language tests: Table 1's grammar through the parser — the
// paper's actions a1..a8, typing rules, the Clist constraints of Section 4.1,
// DNF compilation, and predicate evaluation (Pred restricted to fact cells).

#include "spec/parser.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "spec/predicate_analysis.h"

namespace dwred {
namespace {

class SpecParserTest : public ::testing::Test {
 protected:
  IspExample ex_ = MakeIspExample();
};

TEST_F(SpecParserTest, ParsesA1) {
  auto a = ParseAction(*ex_.mo, paper::kA1, "a1");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  const Action& act = a.value();
  EXPECT_EQ(act.Cat(ex_.time_dim),
            static_cast<CategoryId>(TimeUnit::kMonth));
  EXPECT_EQ(act.Cat(ex_.url_dim), ex_.domain_cat);
  EXPECT_EQ(act.name, "a1");
  // Round-trip through the printer mentions both bounds.
  std::string s = act.ToString(*ex_.mo);
  EXPECT_NE(s.find("Time.month"), std::string::npos);
  EXPECT_NE(s.find("NOW - 6 months"), std::string::npos);
  EXPECT_NE(s.find(".com"), std::string::npos);
}

TEST_F(SpecParserTest, ParsesA2WithQuarterSpan) {
  auto a = ParseAction(*ex_.mo, paper::kA2, "a2");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.value().Cat(ex_.time_dim),
            static_cast<CategoryId>(TimeUnit::kQuarter));
}

TEST_F(SpecParserTest, RejectsA3AggregatingAbovePredicateCategory) {
  // Paper Section 4.1 / eq. (15): the Clist may not exceed the predicate's
  // category in any dimension.
  auto a = ParseAction(*ex_.mo, paper::kA3, "a3");
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(a.status().message().find("unevaluable"), std::string::npos);
}

TEST_F(SpecParserTest, RejectsVerbatimA4ButAcceptsWeekTypedVariant) {
  // The paper's a4 (eq. 16) aggregates Time to week while predicating on
  // Time.month — week is not <=_Time month, so the Section 4.1 constraint
  // rejects it just like a3.
  EXPECT_FALSE(ParseAction(*ex_.mo, paper::kA4, "a4").ok());
  auto a = ParseAction(*ex_.mo, paper::kA4Week, "a4w");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.value().Cat(ex_.time_dim),
            static_cast<CategoryId>(TimeUnit::kWeek));
  EXPECT_EQ(a.value().Cat(ex_.url_dim), ex_.url_cat);
}

TEST_F(SpecParserTest, ParsesSection53Set) {
  for (const char* text :
       {paper::kS53A1, paper::kS53A2, paper::kS53A3, paper::kA7, paper::kA8}) {
    auto a = ParseAction(*ex_.mo, text);
    EXPECT_TRUE(a.ok()) << text << ": " << a.status().ToString();
  }
}

TEST_F(SpecParserTest, ClistMustCoverEveryDimensionOnce) {
  EXPECT_FALSE(ParseAction(*ex_.mo, "a[Time.month] s[true]").ok());
  EXPECT_FALSE(
      ParseAction(*ex_.mo, "a[Time.month, Time.year, URL.domain] s[true]")
          .ok());
  EXPECT_TRUE(ParseAction(*ex_.mo, "a[Time.month, URL.domain] s[true]").ok());
}

TEST_F(SpecParserTest, TimeLiteralMustMatchCategoryGranularity) {
  // Grammar: Type(tt) = C_Time_j.
  auto bad = ParseAction(
      *ex_.mo, "a[Time.day, URL.url] s[Time.month <= 1999/12/4]");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
}

TEST_F(SpecParserTest, OrderedOpOnCategoricalDimensionRejected) {
  EXPECT_FALSE(
      ParseAction(*ex_.mo, "a[Time.day, URL.url] s[URL.domain < cnn.com]")
          .ok());
}

TEST_F(SpecParserTest, UnknownValueRejected) {
  auto bad = ParseAction(
      *ex_.mo, "a[Time.day, URL.url] s[URL.domain = nosuch.example]");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(SpecParserTest, InSetsAndQuotedValues) {
  auto a = ParseAction(*ex_.mo,
                       "a[Time.day, URL.url] s[URL.domain IN {cnn.com, "
                       "'gatech.edu'} AND Time.week IN {1999W47, 1999W48}]");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto not_in = ParsePredicate(*ex_.mo, "URL.domain NOT IN {amazon.com}");
  ASSERT_TRUE(not_in.ok()) << not_in.status().ToString();
}

TEST_F(SpecParserTest, BooleanStructureAndParens) {
  auto p = ParsePredicate(
      *ex_.mo,
      "NOT (URL.domain_grp = .com OR URL.domain_grp = .edu) AND "
      "(Time.month <= 1999/12 OR true)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // DNF compiles without blowup.
  auto dnf = CompileToDnf(*ex_.mo, *p.value());
  ASSERT_TRUE(dnf.ok());
}

TEST_F(SpecParserTest, ComparisonChainsDesugarToConjunction) {
  auto p = ParsePredicate(*ex_.mo,
                          "NOW - 12 months <= Time.month <= NOW - 6 months");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value()->kind, PredExpr::Kind::kAnd);
  ASSERT_EQ(p.value()->kids.size(), 2u);
}

TEST_F(SpecParserTest, PredEvaluationOnFacts) {
  // a1 at 2000/6/5 selects facts 0..3 (paper Figure 3 middle snapshot).
  auto a = ParseAction(*ex_.mo, paper::kA1, "a1");
  ASSERT_TRUE(a.ok());
  int64_t t = DaysFromCivil({2000, 6, 5});
  std::vector<bool> expected = {true, true, true, true, false, false, false};
  for (FactId f = 0; f < 7; ++f) {
    EXPECT_EQ(EvalPredOnFact(*a.value().predicate, *ex_.mo, f, t), expected[f])
        << "fact_" << f;
  }
  // At 2000/4/5 nothing is selected (first snapshot).
  t = DaysFromCivil({2000, 4, 5});
  for (FactId f = 0; f < 7; ++f) {
    EXPECT_FALSE(EvalPredOnFact(*a.value().predicate, *ex_.mo, f, t));
  }
}

TEST_F(SpecParserTest, A2PredSelectsQuartersUpToNowMinus4) {
  auto a = ParseAction(*ex_.mo, paper::kA2, "a2");
  ASSERT_TRUE(a.ok());
  int64_t t = DaysFromCivil({2000, 11, 5});
  // Quarters <= 1999Q4: facts 0..3; facts 4..6 are 2000Q1.
  std::vector<bool> expected = {true, true, true, true, false, false, false};
  for (FactId f = 0; f < 7; ++f) {
    EXPECT_EQ(EvalPredOnFact(*a.value().predicate, *ex_.mo, f, t), expected[f])
        << "fact_" << f;
  }
}

TEST_F(SpecParserTest, ActionOrderLeqV) {
  auto a1 = ParseAction(*ex_.mo, paper::kA1).take();
  auto a2 = ParseAction(*ex_.mo, paper::kA2).take();
  auto a4 = ParseAction(*ex_.mo, paper::kA4Week).take();
  EXPECT_TRUE(ActionLeq(*ex_.mo, a1, a2));   // paper: a1 <=_V a2
  EXPECT_FALSE(ActionLeq(*ex_.mo, a2, a1));
  EXPECT_FALSE(ActionLeq(*ex_.mo, a2, a4));  // unordered (crossing)
  EXPECT_FALSE(ActionLeq(*ex_.mo, a4, a2));
  EXPECT_TRUE(ActionLeq(*ex_.mo, a1, a1));
}

TEST_F(SpecParserTest, GranularityListParsing) {
  auto g = ParseGranularityList(*ex_.mo, "Time.month, URL.domain");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value()[ex_.time_dim], static_cast<CategoryId>(TimeUnit::kMonth));
  EXPECT_EQ(g.value()[ex_.url_dim], ex_.domain_cat);
  EXPECT_FALSE(ParseGranularityList(*ex_.mo, "Time.month").ok());
  EXPECT_FALSE(ParseGranularityList(*ex_.mo, "Time.month, Time.day").ok());
}

TEST_F(SpecParserTest, DnfClassification) {
  auto a1 = ParseAction(*ex_.mo, paper::kA1).take();
  auto dnf = CompileToDnf(*ex_.mo, *a1.predicate);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf.value().size(), 1u);
  const Conjunct& c = dnf.value()[0];
  EXPECT_TRUE(c.time.HasNowLower());
  EXPECT_TRUE(c.time.HasNowUpper());
  EXPECT_FALSE(c.cats[ex_.url_dim].Unconstrained());

  auto a8 = ParseAction(*ex_.mo, paper::kA8).take();
  auto dnf8 = CompileToDnf(*ex_.mo, *a8.predicate);
  ASSERT_TRUE(dnf8.ok());
  EXPECT_FALSE(dnf8.value()[0].time.HasNowLower());
  EXPECT_FALSE(dnf8.value()[0].time.HasNowUpper());
}

TEST_F(SpecParserTest, ConjunctBoundsEvaluateCorrectly) {
  auto a1 = ParseAction(*ex_.mo, paper::kA1).take();
  auto dnf = CompileToDnf(*ex_.mo, *a1.predicate);
  ASSERT_TRUE(dnf.ok());
  const Conjunct& c = dnf.value()[0];
  int64_t t = DaysFromCivil({2000, 11, 5});
  // Months 1999/11 .. 2000/5 in day terms.
  EXPECT_EQ(c.time.LowerDay(t), DaysFromCivil({1999, 11, 1}));
  EXPECT_EQ(c.time.UpperDay(t), DaysFromCivil({2000, 5, 31}));
}

}  // namespace
}  // namespace dwred
