// Tests for the work-stealing thread pool (src/exec): sharding, the exact
// serial fallback, determinism of the ascending-order merge, nested
// operations, concurrent external submitters (the TSan stress surface), and
// fork safety.

#include "exec/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/logging.h"
#include "obs/metrics.h"

namespace dwred::exec {
namespace {

TEST(PartitionShards, CoversRangeContiguouslyAscending) {
  for (size_t n : {0ul, 1ul, 7ul, 100ul, 1001ul}) {
    for (size_t grain : {1ul, 16ul, 1000ul}) {
      for (size_t max_shards : {1ul, 3ul, 32ul}) {
        std::vector<Shard> shards = PartitionShards(n, grain, max_shards);
        if (n == 0) {
          EXPECT_TRUE(shards.empty());
          continue;
        }
        ASSERT_FALSE(shards.empty());
        EXPECT_LE(shards.size(), max_shards);
        EXPECT_EQ(shards.front().begin, 0u);
        EXPECT_EQ(shards.back().end, n);
        for (size_t i = 0; i + 1 < shards.size(); ++i) {
          EXPECT_EQ(shards[i].end, shards[i + 1].begin);
          EXPECT_GE(shards[i].end - shards[i].begin, grain);
        }
      }
    }
  }
}

TEST(PartitionShards, SingleShardWhenGrainDominates) {
  std::vector<Shard> shards = PartitionShards(100, 1000, 8);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 100u);
}

TEST(ThreadPool, SerialFallbackRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  pool.ParallelFor(1000, 1, [&](size_t begin, size_t end) {
    // One inline call covering the whole range, on the calling thread.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForShardsSeesItsExactShard) {
  ThreadPool pool(3);
  std::vector<Shard> shards = PartitionShards(997, 10, 12);
  std::vector<std::pair<size_t, size_t>> seen(shards.size());
  pool.ParallelForShards(shards, [&](size_t si, size_t begin, size_t end) {
    seen[si] = {begin, end};
  });
  for (size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(seen[i].first, shards[i].begin);
    EXPECT_EQ(seen[i].second, shards[i].end);
  }
}

// The determinism contract: an order-sensitive fold (concatenation) must
// come out in ascending index order at every thread count.
TEST(ThreadPool, MapReduceFoldsInAscendingShardOrder) {
  const size_t n = 50000;
  std::vector<size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0u);
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    auto result = pool.ParallelMapReduce<std::vector<size_t>>(
        n, 128,
        [](size_t begin, size_t end) {
          std::vector<size_t> v(end - begin);
          std::iota(v.begin(), v.end(), begin);
          return v;
        },
        [](std::vector<size_t> a, std::vector<size_t> b) {
          a.insert(a.end(), b.begin(), b.end());
          return a;
        });
    EXPECT_EQ(result, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  pool.ParallelFor(16, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(100, 10, [&](size_t b, size_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 16u * 100u);
}

TEST(ThreadPool, GlobalRespectsResetAndEnv) {
  ThreadPool::ResetGlobal(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::ResetGlobal(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  // 4 is always inside the [1, hardware_concurrency * 4] clamp (hw >= 1).
  setenv("DWRED_THREADS", "4", 1);
  ThreadPool::ResetGlobal(0);  // re-read the environment
  EXPECT_EQ(ThreadPool::Global().num_threads(), 4);
  unsetenv("DWRED_THREADS");
  ThreadPool::ResetGlobal(2);
}

TEST(ThreadPool, ThreadsFromEnvValidatesAndClamps) {
  unsigned hw = std::thread::hardware_concurrency();
  int hw_threads = hw >= 1 ? static_cast<int>(hw) : 1;
  int max_threads = hw_threads * 4;

  std::vector<std::string> warnings;
  obs::SetLogSink([&](obs::LogLevel level, std::string_view msg) {
    if (level == obs::LogLevel::kWarn) warnings.emplace_back(msg);
  });

  auto from = [&](const char* value) {
    warnings.clear();
    if (value == nullptr) {
      unsetenv("DWRED_THREADS");
    } else {
      setenv("DWRED_THREADS", value, 1);
    }
    return ThreadPool::ThreadsFromEnv();
  };

  // Unset: hardware default, no warning.
  EXPECT_EQ(from(nullptr), hw_threads);
  EXPECT_TRUE(warnings.empty());

  // Valid values pass through (whitespace tolerated), no warning.
  EXPECT_EQ(from("1"), 1);
  EXPECT_EQ(from(" 2 "), 2);
  EXPECT_TRUE(warnings.empty());

  // Empty behaves as unset (the consolidated EnvInt64 contract,
  // tests/env_test.cc): hardware default, silently.
  EXPECT_EQ(from(""), hw_threads);
  EXPECT_TRUE(warnings.empty());

  // Garbage falls back to the hardware default with a warning.
  for (const char* bad : {"abc", "3x", "1.5", "0x4"}) {
    EXPECT_EQ(from(bad), hw_threads) << "value: \"" << bad << "\"";
    ASSERT_EQ(warnings.size(), 1u) << "value: \"" << bad << "\"";
    EXPECT_NE(warnings[0].find("not an integer"), std::string::npos);
  }

  // Overflowing values are unparseable, not undefined behavior.
  EXPECT_EQ(from("999999999999999999999999"), hw_threads);
  ASSERT_EQ(warnings.size(), 1u);

  // Non-positive values clamp to 1 with a warning.
  for (const char* low : {"0", "-3", "-999999999999999999"}) {
    EXPECT_EQ(from(low), 1) << "value: \"" << low << "\"";
    ASSERT_EQ(warnings.size(), 1u) << "value: \"" << low << "\"";
    EXPECT_NE(warnings[0].find("clamping to 1"), std::string::npos);
  }

  // Oversized values clamp to 4x hardware_concurrency with a warning.
  EXPECT_EQ(from("1000000"), max_threads);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("exceeds"), std::string::npos);
  EXPECT_NE(warnings[0].find("clamping to"), std::string::npos);

  unsetenv("DWRED_THREADS");
  obs::SetLogSink(nullptr);
}

TEST(ThreadPool, TaskMetricsAdvance) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  auto& tasks = obs::MetricsRegistry::Global().GetCounter(
      "dwred_exec_tasks", "shards executed by the pool");
  uint64_t before = tasks.Value();
  ThreadPool pool(4);
  pool.ParallelFor(10000, 10, [](size_t, size_t) {});
  EXPECT_GT(tasks.Value(), before);
}

// Many external threads submitting concurrently against one pool: the
// submission, steal, and wakeup paths all race here. This is the test the
// TSan suite leans on (tools/run_tier1.sh --tsan).
TEST(ThreadPoolStress, ConcurrentExternalSubmitters) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        pool.ParallelFor(1000, 16, [&](size_t begin, size_t end) {
          total.fetch_add(end - begin, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4u * 50u * 1000u);
}

TEST(ThreadPoolStress, RepeatedSmallOps) {
  ThreadPool pool(8);  // oversubscribed on small machines: more stealing
  std::atomic<size_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.ParallelFor(64, 1, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000u * 64u);
}

// A forked child inherits the pool object but none of its threads; Global()
// must detect the new pid and rebuild. (Skipped under TSan: it does not
// support threads created after a multithreaded fork.)
TEST(ThreadPool, GlobalRebuildsAfterFork) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "fork+threads unsupported under TSan";
#else
  ThreadPool::ResetGlobal(4);
  // Touch the pool so worker threads exist before the fork.
  ThreadPool::Global().ParallelFor(100, 10, [](size_t, size_t) {});
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::atomic<size_t> total{0};
    ThreadPool::Global().ParallelFor(1000, 10, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    _exit(total.load() == 1000u ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
#endif
}

}  // namespace
}  // namespace dwred::exec
