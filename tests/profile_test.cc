// Profiling-subsystem tests (docs/OBSERVABILITY.md): the EXPLAIN profile of a
// query on the pruned path must be *coherent* with the scan layer — its
// segment/row totals equal the dwred_scan_segments_* / dwred_scan_rows_skipped
// counter deltas exactly — and the spans of a parallel query on an 8-thread
// pool must reconstruct a single rooted tree (trace context crosses the pool).
// Also covers the flight recorder's admission threshold, bounds, and env
// knobs, the DWRED_PROFILE_DISABLED opt-out, and the profile render surfaces.

#include <cstdlib>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "exec/thread_pool.h"
#include "mdm/paper_example.h"
#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "paper_actions.h"
#include "spec/parser.h"
#include "subcube/manager.h"

namespace dwred {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  // Each test assumes profiling on and the cache enabled; start clean so the
  // suite behaves identically under CI jobs that export either variable
  // process-wide.
  void SetUp() override {
    ::unsetenv("DWRED_PROFILE_DISABLED");
    ::unsetenv("DWRED_CACHE_DISABLED");
    obs::TraceBuffer::Global().Disable();
    obs::FlightRecorder::Global().Clear();
  }

  void TearDown() override {
    ::unsetenv("DWRED_PROFILE_DISABLED");
    ::unsetenv("DWRED_CACHE_DISABLED");
    ::unsetenv("DWRED_SLOWLOG_TOPK");
    ::unsetenv("DWRED_SLOWLOG_LASTN");
    ::unsetenv("DWRED_SLOWLOG_MIN_US");
    obs::FlightRecorder::Global().ReloadConfigFromEnv();
    obs::FlightRecorder::Global().Clear();
    obs::TraceBuffer::Global().Disable();
    exec::ThreadPool::ResetGlobal(2);
  }

  /// A fresh paper-example warehouse with the {a1, a2} specification and the
  /// Table 2 facts loaded into the bottom cube.
  std::unique_ptr<SubcubeManager> MakeWarehouse(IspExample* ex_out) {
    *ex_out = MakeIspExample();
    IspExample& ex = *ex_out;
    ReductionSpecification spec;
    spec.Add(ParseAction(*ex.mo, paper::kA1, "a1").take());
    spec.Add(ParseAction(*ex.mo, paper::kA2, "a2").take());
    auto m = SubcubeManager::Create(
        "Click", ex.mo->dimensions(),
        {ex.mo->measure_type(0), ex.mo->measure_type(1), ex.mo->measure_type(2),
         ex.mo->measure_type(3)},
        spec);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    auto mgr = std::make_unique<SubcubeManager>(m.take());
    EXPECT_TRUE(mgr->InsertBottomFacts(*ex.mo).ok());
    return mgr;
  }
};

// The EXPLAIN profile of a cache-missing query on the pruned path
// (assume_synchronized + predicate) reports exactly the counter movement it
// caused: segments scanned/pruned and rows skipped match the dwred_scan_*
// deltas byte for byte, the per-subcube slices fold to the totals, and a
// repeat query is a cache hit with the same fingerprint and zero counter
// movement.
TEST_F(ProfileTest, ExplainMatchesScanCounterDeltasOnPrunedPath) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  IspExample ex;
  std::unique_ptr<SubcubeManager> mgr = MakeWarehouse(&ex);
  const int64_t now = DaysFromCivil({2000, 11, 5});
  ASSERT_TRUE(mgr->Synchronize(now).ok());

  auto pred = ParsePredicate(*ex.mo, "Time.month <= 1999/11").take();
  auto gran = ParseGranularityList(*ex.mo, "Time.month, URL.domain").take();

  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& scanned = reg.GetCounter("dwred_scan_segments_scanned");
  obs::Counter& pruned = reg.GetCounter("dwred_scan_segments_pruned");
  obs::Counter& skipped = reg.GetCounter("dwred_scan_rows_skipped");

  exec::ThreadPool::ResetGlobal(4);
  const uint64_t scanned0 = scanned.Value();
  const uint64_t pruned0 = pruned.Value();
  const uint64_t skipped0 = skipped.Value();

  uint64_t epoch = 0;
  obs::OpProfile profile;
  auto r = mgr->Query(pred.get(), &gran, now, /*assume_synchronized=*/true,
                      /*parallel=*/true, &epoch, &profile);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(profile.op, "subcube.query");
  EXPECT_EQ(profile.epoch, epoch);
  EXPECT_EQ(profile.now_day, now);
  EXPECT_TRUE(profile.assume_synchronized);
  EXPECT_TRUE(profile.parallel);
  EXPECT_EQ(profile.cache, obs::CacheOutcome::kMiss);
  EXPECT_NE(profile.fingerprint, 0u);
  EXPECT_EQ(profile.fan_out, static_cast<int64_t>(mgr->num_subcubes()));
  EXPECT_EQ(profile.result_facts, static_cast<int64_t>(r.value().num_facts()));

  // Coherence: the query's per-subcube ScanPlans are the only counter
  // movement, so the profile totals equal the deltas exactly.
  EXPECT_EQ(static_cast<uint64_t>(profile.segments_scanned),
            scanned.Value() - scanned0);
  EXPECT_EQ(static_cast<uint64_t>(profile.segments_pruned),
            pruned.Value() - pruned0);
  EXPECT_EQ(static_cast<uint64_t>(profile.rows_skipped),
            skipped.Value() - skipped0);
  EXPECT_EQ(profile.segments_total,
            profile.segments_scanned + profile.segments_pruned);
  EXPECT_GT(profile.segments_total, 0);

  // The per-subcube slices fold to the totals.
  ASSERT_EQ(profile.subcubes.size(), mgr->num_subcubes());
  int64_t sum_scanned = 0, sum_pruned = 0, sum_skipped = 0, sum_rows = 0;
  for (const obs::SubcubeProfile& sc : profile.subcubes) {
    EXPECT_FALSE(sc.name.empty());
    sum_scanned += sc.segments_scanned;
    sum_pruned += sc.segments_pruned;
    sum_skipped += sc.rows_skipped;
    sum_rows += sc.rows_scanned;
  }
  EXPECT_EQ(sum_scanned, profile.segments_scanned);
  EXPECT_EQ(sum_pruned, profile.segments_pruned);
  EXPECT_EQ(sum_skipped, profile.rows_skipped);
  EXPECT_EQ(sum_rows, profile.rows_scanned);

  // Every stage of the pipeline is timed.
  std::set<std::string> stage_names;
  for (const obs::StageTime& s : profile.stages) stage_names.insert(s.name);
  for (const char* want :
       {"lookup", "plan", "scan", "aggregate", "subqueries_wall",
        "materialize"}) {
    EXPECT_TRUE(stage_names.count(want)) << "missing stage " << want;
  }

  // Repeat in the same epoch: a cache hit with the same fingerprint and no
  // scan-layer movement.
  const uint64_t scanned1 = scanned.Value();
  uint64_t epoch2 = 0;
  obs::OpProfile hit;
  auto r2 = mgr->Query(pred.get(), &gran, now, /*assume_synchronized=*/true,
                       /*parallel=*/true, &epoch2, &hit);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(hit.cache, obs::CacheOutcome::kHit);
  EXPECT_EQ(hit.fingerprint, profile.fingerprint);
  EXPECT_EQ(hit.epoch, epoch2);
  EXPECT_EQ(epoch2, epoch);
  EXPECT_EQ(scanned.Value(), scanned1);
}

// The spans of one parallel query on an 8-thread pool reconstruct a single
// rooted tree: every span carries the root's trace_id, every parent chain
// terminates at the "subcube.query" root, and each subcube contributed its
// labelled subquery span from whichever worker evaluated it.
TEST_F(ProfileTest, ParallelQuerySpansFormSingleRootedTree) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with DWRED_OBS_DISABLED";
  IspExample ex;
  std::unique_ptr<SubcubeManager> mgr = MakeWarehouse(&ex);
  const int64_t now = DaysFromCivil({2000, 11, 5});
  ASSERT_TRUE(mgr->Synchronize(now).ok());
  auto pred = ParsePredicate(*ex.mo, "Time.month <= 1999/11").take();
  auto gran = ParseGranularityList(*ex.mo, "Time.month, URL.domain").take();

  exec::ThreadPool::ResetGlobal(8);
  obs::TraceBuffer::Global().Enable(512);
  auto r = mgr->Query(pred.get(), &gran, now, /*assume_synchronized=*/true,
                      /*parallel=*/true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<obs::TraceEvent> events = obs::TraceBuffer::Global().Snapshot();
  obs::TraceBuffer::Global().Disable();
  ASSERT_FALSE(events.empty());

  // Exactly one root: the query span itself.
  const obs::TraceEvent* root = nullptr;
  for (const obs::TraceEvent& ev : events) {
    if (ev.name == "subcube.query") {
      ASSERT_EQ(root, nullptr) << "more than one query root";
      root = &ev;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->trace_id, root->span_id);

  std::map<uint64_t, const obs::TraceEvent*> by_span;
  for (const obs::TraceEvent& ev : events) {
    EXPECT_NE(ev.span_id, 0u) << ev.name;
    EXPECT_TRUE(by_span.emplace(ev.span_id, &ev).second)
        << "duplicate span id " << ev.span_id;
  }

  size_t subqueries = 0;
  for (const obs::TraceEvent& ev : events) {
    // Single trace: everything the query caused shares its trace_id, no
    // matter which pool worker ran it.
    EXPECT_EQ(ev.trace_id, root->trace_id) << ev.name;
    if (ev.name.rfind("subcube.subquery/cube=", 0) == 0) {
      ++subqueries;
      EXPECT_EQ(ev.parent_id, root->span_id) << ev.name;
    }
    // Single rooted tree: every parent chain reaches the root.
    uint64_t cur = ev.span_id;
    int hops = 0;
    while (cur != root->span_id) {
      auto it = by_span.find(cur);
      ASSERT_NE(it, by_span.end()) << "broken chain at span " << cur;
      cur = it->second->parent_id;
      ASSERT_LE(++hops, 64) << "cycle in span tree";
    }
  }
  EXPECT_EQ(subqueries, mgr->num_subcubes());

  // The rendered tree shows one trace with the query as its only root.
  std::string tree = obs::RenderTraceTree(events);
  EXPECT_NE(tree.find("trace " + std::to_string(root->trace_id)),
            std::string::npos);
  EXPECT_NE(tree.find("subcube.subquery/cube="), std::string::npos);
  EXPECT_EQ(tree.find("(untraced)"), std::string::npos);
  EXPECT_EQ(tree.find("parent evicted"), std::string::npos);
}

// A synchronization pass fills its own profile: stage times for
// plan/apply/compact and the migration counters, flight-recorded like any
// other operation.
TEST_F(ProfileTest, SynchronizeFillsPassProfile) {
  IspExample ex;
  std::unique_ptr<SubcubeManager> mgr = MakeWarehouse(&ex);
  const uint64_t epoch_before = mgr->epoch();
  obs::OpProfile profile;
  auto moved =
      mgr->Synchronize(DaysFromCivil({2000, 11, 5}), &profile);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();

  EXPECT_EQ(profile.op, "subcube.sync");
  // The profile reports the epoch the pass ran against; the pass itself then
  // bumps it.
  EXPECT_EQ(profile.epoch, epoch_before);
  EXPECT_GT(mgr->epoch(), epoch_before);
  EXPECT_EQ(profile.fan_out, static_cast<int64_t>(mgr->num_subcubes()));
  std::set<std::string> stage_names;
  for (const obs::StageTime& s : profile.stages) stage_names.insert(s.name);
  for (const char* want : {"plan", "apply", "compact"}) {
    EXPECT_TRUE(stage_names.count(want)) << "missing stage " << want;
  }
  std::map<std::string, int64_t> counters(profile.counters.begin(),
                                          profile.counters.end());
  ASSERT_TRUE(counters.count("rows_migrated"));
  EXPECT_EQ(counters["rows_migrated"], static_cast<int64_t>(moved.value()));
  EXPECT_TRUE(counters.count("rows_deleted"));
  EXPECT_TRUE(counters.count("cells_compacted"));
}

// DWRED_PROFILE_DISABLED set non-empty turns the whole subsystem off: the
// caller's profile stays untouched and query bytes are unchanged. An *empty*
// setting counts as enabled (same convention as DWRED_CACHE_DISABLED).
TEST_F(ProfileTest, ProfileDisabledEnvLeavesProfileUntouched) {
  EXPECT_TRUE(obs::ProfilingEnabled());
  ::setenv("DWRED_PROFILE_DISABLED", "", 1);
  EXPECT_TRUE(obs::ProfilingEnabled());
  ::setenv("DWRED_PROFILE_DISABLED", "1", 1);
  EXPECT_FALSE(obs::ProfilingEnabled());

  IspExample ex;
  std::unique_ptr<SubcubeManager> mgr = MakeWarehouse(&ex);
  auto gran = ParseGranularityList(*ex.mo, "Time.month, URL.domain").take();
  const int64_t now = DaysFromCivil({2000, 11, 5});

  obs::OpProfile profile;
  auto off = mgr->Query(nullptr, &gran, now, /*assume_synchronized=*/false,
                        /*parallel=*/false, nullptr, &profile);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_TRUE(profile.op.empty()) << "profile filled while disabled";

  ::unsetenv("DWRED_PROFILE_DISABLED");
  obs::OpProfile profile2;
  auto on = mgr->Query(nullptr, &gran, now, /*assume_synchronized=*/false,
                       /*parallel=*/false, nullptr, &profile2);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_EQ(profile2.op, "subcube.query");
  EXPECT_EQ(profile2.result_facts, static_cast<int64_t>(on.value().num_facts()));
}

// The flight recorder admits only operations at/above the threshold, keeps
// the board slowest-first bounded at DWRED_SLOWLOG_TOPK, and keeps the last-N
// ring in admission order bounded at DWRED_SLOWLOG_LASTN.
TEST_F(ProfileTest, FlightRecorderRespectsThresholdAndBounds) {
  ::setenv("DWRED_SLOWLOG_TOPK", "4", 1);
  ::setenv("DWRED_SLOWLOG_LASTN", "3", 1);
  ::setenv("DWRED_SLOWLOG_MIN_US", "10", 1);
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ReloadConfigFromEnv();
  fr.Clear();

  EXPECT_EQ(fr.threshold_us(), 10);
  EXPECT_FALSE(fr.WouldRecord(9));
  EXPECT_TRUE(fr.WouldRecord(10));

  auto record = [&fr](int64_t us) {
    obs::OpProfile p;
    p.op = "op" + std::to_string(us);
    p.epoch = 7;
    p.total_us = us;
    fr.Record(p);
  };
  record(5);  // below threshold: dropped without a sequence number
  for (int64_t us : {20, 40, 30, 60, 50, 10}) record(us);

  std::vector<obs::FlightEntry> top = fr.TopK();
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].wall_us, 60);
  EXPECT_EQ(top[1].wall_us, 50);
  EXPECT_EQ(top[2].wall_us, 40);
  EXPECT_EQ(top[3].wall_us, 30);
  EXPECT_EQ(top[0].op, "op60");
  EXPECT_EQ(top[0].seq, 4u) << "the 5us record must not consume a seq";
  EXPECT_NE(top[0].detail.find("epoch=7"), std::string::npos);

  std::vector<obs::FlightEntry> last = fr.LastN();
  ASSERT_EQ(last.size(), 3u);
  EXPECT_EQ(last[0].wall_us, 60);  // oldest of the surviving three
  EXPECT_EQ(last[1].wall_us, 50);
  EXPECT_EQ(last[2].wall_us, 10);

  std::string render = fr.Render();
  EXPECT_NE(render.find("slowest:"), std::string::npos);
  EXPECT_NE(render.find("recent:"), std::string::npos);
  EXPECT_NE(render.find("op60"), std::string::npos);

  fr.Clear();
  EXPECT_TRUE(fr.TopK().empty());
  EXPECT_TRUE(fr.LastN().empty());
  EXPECT_NE(fr.Render().find("(none at/above threshold)"), std::string::npos);
}

// Garbage or out-of-range DWRED_SLOWLOG_* values must not break the flight
// recorder: they warn through the obs logger and fall back / clamp to the
// documented bounds instead of being adopted verbatim.
TEST_F(ProfileTest, SlowlogEnvGarbageWarnsAndClamps) {
  std::vector<std::string> warnings;
  obs::SetLogSink([&warnings](obs::LogLevel level, std::string_view msg) {
    if (level == obs::LogLevel::kWarn) warnings.emplace_back(msg);
  });
  ::setenv("DWRED_SLOWLOG_TOPK", "banana", 1);
  ::setenv("DWRED_SLOWLOG_LASTN", "0", 1);       // below the min of 1
  ::setenv("DWRED_SLOWLOG_MIN_US", "-50", 1);    // below the min of 0
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ReloadConfigFromEnv();
  obs::SetLogSink(nullptr);

  // Unparseable TOPK: default. LASTN/MIN_US: clamped to their minimums.
  EXPECT_EQ(fr.threshold_us(), 0);
  ASSERT_GE(warnings.size(), 3u) << "each bad knob warns once";
  std::string all;
  for (const std::string& w : warnings) all += w + "\n";
  EXPECT_NE(all.find("DWRED_SLOWLOG_TOPK"), std::string::npos);
  EXPECT_NE(all.find("DWRED_SLOWLOG_LASTN"), std::string::npos);
  EXPECT_NE(all.find("DWRED_SLOWLOG_MIN_US"), std::string::npos);

  // Clamped LASTN=1 is live: the ring keeps exactly one entry.
  fr.Clear();
  for (int64_t us : {100, 200}) {
    obs::OpProfile p;
    p.op = "clamped";
    p.total_us = us;
    fr.Record(p);
  }
  EXPECT_EQ(fr.LastN().size(), 1u);

  // An over-the-top TOPK clamps to 4096 with a warning, not an allocation.
  warnings.clear();
  obs::SetLogSink([&warnings](obs::LogLevel level, std::string_view msg) {
    if (level == obs::LogLevel::kWarn) warnings.emplace_back(msg);
  });
  ::setenv("DWRED_SLOWLOG_TOPK", "99999999", 1);
  fr.ReloadConfigFromEnv();
  obs::SetLogSink(nullptr);
  EXPECT_FALSE(warnings.empty());
  EXPECT_NE(warnings.front().find("DWRED_SLOWLOG_TOPK"), std::string::npos);
}

// Fingerprints are real FNV-1a 64 (known-answer vectors) and the three render
// surfaces agree on the profile's content.
TEST_F(ProfileTest, FingerprintAndRenderSurfaces) {
  EXPECT_EQ(obs::Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(obs::Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(obs::Fnv1a64("query-a"), obs::Fnv1a64("query-b"));

  obs::OpProfile p;
  p.op = "subcube.query";
  p.trace_id = 9;
  p.epoch = 3;
  p.cache = obs::CacheOutcome::kHit;
  p.fingerprint = 0x1234;
  p.now_day = 11266;
  p.assume_synchronized = true;
  p.parallel = true;
  p.fan_out = 3;
  p.segments_total = 38;
  p.segments_scanned = 1;
  p.segments_pruned = 37;
  p.rows_skipped = 970000;
  p.result_facts = 12;
  p.AddStage("plan", 15);
  p.AddCounter("rows_migrated", 4);
  p.subcubes.push_back({"K1", 38, 1, 37, 30000, 970000, 12, 99});
  p.total_us = 123;

  std::string text = p.Render();
  EXPECT_NE(text.find("EXPLAIN subcube.query"), std::string::npos);
  EXPECT_NE(text.find("hit (fingerprint 0x0000000000001234)"),
            std::string::npos);
  EXPECT_NE(text.find("1 scanned / 37 pruned of 38"), std::string::npos);
  EXPECT_NE(text.find("yes (fan-out 3)"), std::string::npos);
  EXPECT_NE(text.find("plan"), std::string::npos);
  EXPECT_NE(text.find("rows_migrated:"), std::string::npos);
  EXPECT_NE(text.find("K1"), std::string::npos);

  std::string json = p.ToJson();
  EXPECT_NE(json.find("\"op\":\"subcube.query\""), std::string::npos);
  EXPECT_NE(json.find("\"segments_pruned\":37"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":"), std::string::npos);
  EXPECT_NE(json.find("\"subcubes\":"), std::string::npos);

  std::string summary = p.Summary();
  EXPECT_NE(summary.find("cache=hit"), std::string::npos);
  EXPECT_NE(summary.find("epoch=3"), std::string::npos);
  EXPECT_NE(summary.find("pruned=37"), std::string::npos);
}

}  // namespace
}  // namespace dwred
