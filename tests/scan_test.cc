// Scan-layer tests: plan shapes over the segment manifest, zone-map pruning
// soundness (pruned rows never carry selection weight), metrics, and
// byte-identical materialization with and without pruning.

#include "scan/scan.h"

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "chrono/granule.h"
#include "mdm/paper_example.h"
#include "obs/metrics.h"
#include "query/compare.h"
#include "query/operators.h"
#include "spec/parser.h"

namespace dwred {
namespace {

scan::AtomOracle LiberalOracle(int64_t now_day) {
  return [now_day](const Atom& a, const Dimension& dim, ValueId v) {
    return EvalQueryAtomOnValue(a, dim, v, now_day,
                                SelectionApproach::kLiberal);
  };
}

TEST(ScanPlanTest, PlanMoScanCoversRangeAscending) {
  scan::ScanPlan plan = scan::PlanMoScan(10'000, /*grain=*/512);
  ASSERT_FALSE(plan.units.empty());
  size_t expect_begin = 0;
  for (const exec::Shard& u : plan.units) {
    EXPECT_EQ(u.begin, expect_begin);
    EXPECT_LT(u.begin, u.end);
    expect_begin = u.end;
  }
  EXPECT_EQ(expect_begin, 10'000u);
  EXPECT_EQ(plan.segments_pruned, 0u);

  EXPECT_TRUE(scan::PlanMoScan(0, 512).units.empty());
}

TEST(ScanPlanTest, AllSpecKeepsEverySegment) {
  FactTable t(1, 1, /*segment_rows=*/4);
  for (int i = 0; i < 10; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  scan::ScanPlan plan = scan::PlanTableScan(t, scan::ScanSpec::All());
  EXPECT_EQ(plan.units.size(), t.num_segments());
  EXPECT_EQ(plan.segments_total, t.num_segments());
  EXPECT_EQ(plan.segments_pruned, 0u);
  EXPECT_EQ(plan.rows_skipped, 0u);
  size_t rows = 0;
  for (const exec::Shard& u : plan.units) rows += u.end - u.begin;
  EXPECT_EQ(rows, 10u);
}

TEST(ScanPlanTest, FalsePredicatePrunesEverything) {
  IspExample ex = MakeIspExample();
  FactTable t(2, 4, /*segment_rows=*/2);
  ASSERT_TRUE(t.AppendFrom(*ex.mo).ok());
  ASSERT_GT(t.num_segments(), 1u);

  int64_t now = DaysFromCivil({2000, 7, 1});
  scan::ScanSpec spec =
      scan::ScanSpec::Compile(*ex.mo, *PredExpr::False(), now,
                              LiberalOracle(now));
  EXPECT_TRUE(spec.match_none());
  scan::ScanPlan plan = scan::PlanTableScan(t, spec);
  EXPECT_TRUE(plan.units.empty());
  EXPECT_EQ(plan.segments_pruned, t.num_segments());
  EXPECT_EQ(plan.rows_skipped, t.num_rows());
}

TEST(ScanPlanTest, TruePredicateCompilesToFullScan) {
  IspExample ex = MakeIspExample();
  int64_t now = DaysFromCivil({2000, 7, 1});
  scan::ScanSpec spec = scan::ScanSpec::Compile(
      *ex.mo, *PredExpr::True(), now, LiberalOracle(now));
  EXPECT_TRUE(spec.unconstrained());
}

/// A table whose time coordinates ascend chronologically (day ids intern in
/// encounter order, so chronological insertion gives the zone maps real
/// locality — docs/STORAGE.md).
struct ChronoTable {
  IspExample ex = MakeIspExample();
  FactTable t{2, 4, /*segment_rows=*/32};
  int64_t now = 0;

  ChronoTable() {
    auto time = ex.mo->dimension(ex.time_dim);
    int64_t start = DaysFromCivil({2000, 1, 1});
    for (int i = 0; i < 320; ++i) {
      ValueId day = time->EnsureTimeValue(DayGranule(start + i)).take();
      std::vector<ValueId> c = {day, i % 2 ? ex.url_cnn : ex.url_gatech};
      std::vector<int64_t> m = {1, i, 2 * i, 3};
      t.Append(c, m);
    }
    now = start + 320;
  }
};

TEST(ScanPlanTest, ZoneMapsPruneOutOfWindowSegments) {
  ChronoTable ct;
  // Keep roughly the first half of the year: later segments hold only
  // later days and must be pruned via their time zone maps.
  auto pred = ParsePredicate(*ct.ex.mo, "Time.day <= 2000/5/31").take();
  scan::ScanSpec spec =
      scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now, LiberalOracle(ct.now));
  EXPECT_FALSE(spec.unconstrained());

  double pruned_before = obs::MetricsRegistry::Global()
                             .GetCounter("dwred_scan_segments_pruned", "")
                             .Value();
  scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
  EXPECT_GT(plan.segments_pruned, 0u);
  EXPECT_GT(plan.rows_skipped, 0u);
  EXPECT_LT(plan.units.size(), ct.t.num_segments());
  double pruned_after = obs::MetricsRegistry::Global()
                            .GetCounter("dwred_scan_segments_pruned", "")
                            .Value();
  EXPECT_EQ(pruned_after - pruned_before,
            static_cast<double>(plan.segments_pruned));

  // Soundness: every row *outside* the plan has selection weight 0 (under
  // the most permissive approach), so no pruned row could have been
  // selected.
  MultidimensionalObject full =
      ct.t.ToMO("Click", ct.ex.mo->dimensions(),
                std::vector<MeasureType>(ct.ex.mo->measure_types()));
  std::vector<bool> planned(ct.t.num_rows(), false);
  for (const exec::Shard& u : plan.units) {
    for (size_t r = u.begin; r < u.end; ++r) planned[r] = true;
  }
  for (FactId f = 0; f < full.num_facts(); ++f) {
    if (planned[f]) continue;
    EXPECT_EQ(EvalQueryPredOnFact(*pred, full, f, ct.now,
                                  SelectionApproach::kLiberal),
              0.0)
        << "pruned row " << f << " is selectable";
  }
}

TEST(ScanPlanTest, PrunedMaterializationMatchesFullSelect) {
  ChronoTable ct;
  // Exercise AND/OR/NOT and both dimensions; NOT compiles through the DNF's
  // operator negation, where unsound pruning would show up immediately.
  const char* preds[] = {
      "Time.day <= 2000/5/31",
      "2000/3/1 <= Time.day <= 2000/4/30 AND URL.domain_grp = .com",
      "NOT (Time.day <= 2000/8/31)",
      "URL.domain_grp = .edu OR Time.day >= 2000/10/1",
      "NOT (URL.domain = cnn.com OR Time.day < 2000/6/1)",
  };
  std::vector<MeasureType> measures(ct.ex.mo->measure_types());
  for (const char* text : preds) {
    auto pred = ParsePredicate(*ct.ex.mo, text).take();
    MultidimensionalObject full =
        ct.t.ToMO("Click", ct.ex.mo->dimensions(), measures);
    SelectionResult want =
        Select(full, *pred, ct.now, SelectionApproach::kConservative).take();

    scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now,
                                                  LiberalOracle(ct.now));
    scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
    MultidimensionalObject pruned = scan::MaterializeMO(
        ct.t, plan, "Click", ct.ex.mo->dimensions(), measures);
    SelectionResult got =
        Select(pruned, *pred, ct.now, SelectionApproach::kConservative).take();

    ASSERT_EQ(got.mo.num_facts(), want.mo.num_facts()) << text;
    for (FactId f = 0; f < want.mo.num_facts(); ++f) {
      EXPECT_EQ(got.mo.FormatFact(f), want.mo.FormatFact(f)) << text;
    }
  }
}

/// Formats the day `start + offset` as predicate-literal text (y/m/d).
std::string DayLiteral(int64_t start, int64_t offset) {
  CivilDate c = CivilFromDays(start + offset);
  return std::to_string(c.year) + "/" + std::to_string(c.month) + "/" +
         std::to_string(c.day);
}

// Zone-map staleness audit (lightly-tombstoned segments): tombstoning the
// zone-extremal rows of a segment *below* the 25% compaction threshold takes
// the deferred path — no rewrite, no drop — yet the segment's zones must
// shrink to the live rows, so a predicate matching only the tombstoned
// extremes prunes the segment soundly and pruned materialization stays
// byte-identical to the full scan.
TEST(ScanPlanTest, TombstonedZoneExtremesStaySound) {
  ChronoTable ct;
  int64_t start = DaysFromCivil({2000, 1, 1});
  ASSERT_EQ(ct.t.num_segments(), 10u);  // 320 rows / 32 per segment

  // Segment 3 covers days start+96 .. start+127. Tombstone its zone-extremal
  // rows on the time dimension: the 2 earliest and the 5 latest days —
  // 7/32 = 21.9%, below kCompactTombstoneRatio.
  std::vector<bool> erase(ct.t.num_rows(), false);
  for (RowId r : {96, 97, 123, 124, 125, 126, 127}) erase[r] = true;
  ASSERT_TRUE(ct.t.EraseRows(erase).ok());

  // Deferred path: same segment count, same physical rows, 7 tombstones.
  ASSERT_EQ(ct.t.num_segments(), 10u);
  EXPECT_EQ(ct.t.SegmentPhysicalRows(3), 32u);
  EXPECT_EQ(ct.t.SegmentTombstones(3), 7u);
  EXPECT_EQ(ct.t.SegmentLiveRows(3), 25u);

  // The time zones must have shrunk to the surviving rows (day ids intern in
  // chronological order, so zone endpoints are the live extreme days).
  auto time = ct.ex.mo->dimension(ct.ex.time_dim);
  ValueId live_min = time->EnsureTimeValue(DayGranule(start + 98)).take();
  ValueId live_max = time->EnsureTimeValue(DayGranule(start + 122)).take();
  EXPECT_EQ(ct.t.SegmentDimMin(3, 0), live_min);
  EXPECT_EQ(ct.t.SegmentDimMax(3, 0), live_max);

  std::vector<MeasureType> measures(ct.ex.mo->measure_types());
  auto check_byte_identical = [&](const std::string& text,
                                  size_t* facts_out) {
    auto pred = ParsePredicate(*ct.ex.mo, text).take();
    MultidimensionalObject full =
        ct.t.ToMO("Click", ct.ex.mo->dimensions(), measures);
    SelectionResult want =
        Select(full, *pred, ct.now, SelectionApproach::kConservative).take();
    scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now,
                                                  LiberalOracle(ct.now));
    scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
    MultidimensionalObject pruned = scan::MaterializeMO(
        ct.t, plan, "Click", ct.ex.mo->dimensions(), measures);
    SelectionResult got =
        Select(pruned, *pred, ct.now, SelectionApproach::kConservative).take();
    EXPECT_EQ(got.mo.num_facts(), want.mo.num_facts()) << text;
    if (got.mo.num_facts() == want.mo.num_facts()) {
      for (FactId f = 0; f < want.mo.num_facts(); ++f) {
        EXPECT_EQ(got.mo.FormatFact(f), want.mo.FormatFact(f)) << text;
      }
    }
    if (facts_out) *facts_out = want.mo.num_facts();
    return plan;
  };

  // A window covering only the tombstoned latest days of segment 3: every
  // matching row is dead, so the result must be empty and pruning must stay
  // sound. Two segments survive pruning — the liberal oracle also admits
  // week/month parent values whose interleaved ValueIds fall inside their
  // zone ranges — but the scanned segments expose live rows only, so nothing
  // leaks.
  {
    size_t facts = ~0u;
    std::string text = DayLiteral(start, 123) + " <= Time.day AND Time.day <= " +
                       DayLiteral(start, 127);
    scan::ScanPlan plan = check_byte_identical(text, &facts);
    EXPECT_EQ(facts, 0u) << "tombstoned rows leaked into the result";
    EXPECT_GE(plan.segments_pruned, ct.t.num_segments() - 2);
  }

  // Same for the tombstoned earliest days. Here the zone shrink shows up
  // directly: segment 3's recomputed dmin rose past the erased days' ids, so
  // the segment whose only matching rows were tombstoned is itself pruned
  // (only segment 2 survives, via liberal parent-value ids in its zone).
  {
    size_t facts = ~0u;
    std::string text = DayLiteral(start, 96) + " <= Time.day AND Time.day <= " +
                       DayLiteral(start, 97);
    scan::ScanPlan plan = check_byte_identical(text, &facts);
    EXPECT_EQ(facts, 0u);
    EXPECT_EQ(plan.segments_pruned, ct.t.num_segments() - 1);
    ASSERT_EQ(plan.units.size(), 1u);
    EXPECT_LE(plan.units[0].end, static_cast<size_t>(ct.t.SegmentBegin(3)))
        << "the tombstoned-extreme segment was scanned despite its shrunk zone";
  }

  // A window straddling live rows of segment 3 and the tombstoned boundary:
  // the segment must survive pruning and materialize exactly the live rows.
  {
    size_t facts = 0;
    std::string text = DayLiteral(start, 120) + " <= Time.day AND Time.day <= " +
                       DayLiteral(start, 130);
    check_byte_identical(text, &facts);
    // Live matches: days 120..122 (seg 3) and 128..130 (seg 4).
    EXPECT_EQ(facts, 6u);
  }
}

TEST(ScanPlanTest, MaterializeKeepsLogicalFactNames) {
  ChronoTable ct;
  auto pred = ParsePredicate(*ct.ex.mo, "Time.day >= 2000/10/1").take();
  scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now,
                                                LiberalOracle(ct.now));
  scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
  ASSERT_GT(plan.segments_pruned, 0u);
  std::vector<MeasureType> measures(ct.ex.mo->measure_types());
  MultidimensionalObject pruned = scan::MaterializeMO(
      ct.t, plan, "Click", ct.ex.mo->dimensions(), measures);
  // Fact f of the materialization is logical row units[...]: its name must
  // be the full-scan name "fact_<logical row>".
  FactId f = 0;
  for (const exec::Shard& u : plan.units) {
    for (size_t r = u.begin; r < u.end; ++r, ++f) {
      EXPECT_EQ(pruned.FactName(f), "fact_" + std::to_string(r));
    }
  }
  EXPECT_EQ(f, pruned.num_facts());
}

// ApproxBytes must count what the allocator actually holds — the struct
// header and every vector level at *capacity* — not just the allowed-value
// payload. The old size-only count reported 0 for All() and undercharged the
// 64 MiB cache budget for every compiled spec.
TEST(ScanSpecBytesTest, ApproxBytesCountsHeadersAndCapacity) {
  EXPECT_EQ(scan::ScanSpec::All().ApproxBytes(), sizeof(scan::ScanSpec));

  ChronoTable ct;
  auto pred = ParsePredicate(*ct.ex.mo, "Time.day <= 2000/5/31").take();
  scan::ScanSpec spec =
      scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now, LiberalOracle(ct.now));
  ASSERT_FALSE(spec.unconstrained());
  ASSERT_FALSE(spec.match_none());

  // Count the allowed values the compiler must have enumerated for the one
  // time filter — the same liberal probe Compile performs.
  ASSERT_EQ(pred->kind, PredExpr::Kind::kAtom);
  const Dimension& time = *ct.ex.mo->dimension(pred->atom.dim);
  size_t allowed = 0;
  for (ValueId v = 0; v < time.num_values(); ++v) {
    if (EvalQueryAtomOnValue(pred->atom, time, v, ct.now,
                             SelectionApproach::kLiberal) > 0.0) {
      ++allowed;
    }
  }
  ASSERT_GT(allowed, 0u);

  // Header plus at least the payload: capacity >= size on every level.
  EXPECT_GE(spec.ApproxBytes(),
            sizeof(scan::ScanSpec) + allowed * sizeof(ValueId));
  EXPECT_GT(spec.ApproxBytes(), scan::ScanSpec::All().ApproxBytes());
}

// Compile's fallback edges. Each rejection must degrade to a *sound* spec —
// unconstrained (scan everything) or match_none (scan nothing) — and pruned
// materialization + selection must stay byte-identical to the full scan.
TEST(ScanPlanTest, CompileFallbackEdgesStaySound) {
  ChronoTable ct;
  std::vector<MeasureType> measures(ct.ex.mo->measure_types());

  auto expect_byte_identical = [&](const PredExpr& pred,
                                   const scan::ScanSpec& spec) {
    MultidimensionalObject full =
        ct.t.ToMO("Click", ct.ex.mo->dimensions(), measures);
    SelectionResult want =
        Select(full, pred, ct.now, SelectionApproach::kConservative).take();
    scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
    MultidimensionalObject pruned = scan::MaterializeMO(
        ct.t, plan, "Click", ct.ex.mo->dimensions(), measures);
    SelectionResult got =
        Select(pruned, pred, ct.now, SelectionApproach::kConservative).take();
    ASSERT_EQ(got.mo.num_facts(), want.mo.num_facts());
    for (FactId f = 0; f < want.mo.num_facts(); ++f) {
      EXPECT_EQ(got.mo.FormatFact(f), want.mo.FormatFact(f));
    }
  };

  // 1. Conjunct explosion: AND of 13 two-way ORs distributes to 2^13 = 8192
  //    DNF conjuncts, past CompileToDnf's 4096 cap — the spec degrades to
  //    unconstrained, never an error.
  {
    auto a = ParsePredicate(*ct.ex.mo, "Time.day = 2000/1/5").take();
    auto b = ParsePredicate(*ct.ex.mo, "Time.day = 2000/2/7").take();
    std::vector<std::shared_ptr<PredExpr>> clauses;
    for (int i = 0; i < 13; ++i) clauses.push_back(PredExpr::Or({a, b}));
    auto exploded = PredExpr::And(std::move(clauses));
    scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *exploded, ct.now,
                                                  LiberalOracle(ct.now));
    EXPECT_TRUE(spec.unconstrained());
    EXPECT_FALSE(spec.match_none());
    scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
    EXPECT_EQ(plan.segments_pruned, 0u);
    expect_byte_identical(*exploded, spec);
  }

  // 2. match_none short-circuit: a contradictory conjunct — the two
  //    required days lie in different years, so their allowed sets (each day
  //    plus its interned calendar ancestors) share no value and intersect to
  //    empty — prunes everything, and the selection result is identically
  //    empty.
  {
    auto pred = ParsePredicate(
                    *ct.ex.mo, "Time.day = 2000/1/5 AND Time.day = 2001/3/7")
                    .take();
    scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now,
                                                  LiberalOracle(ct.now));
    EXPECT_TRUE(spec.match_none());
    EXPECT_FALSE(spec.unconstrained());
    scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
    EXPECT_TRUE(plan.units.empty());
    EXPECT_EQ(plan.segments_pruned, ct.t.num_segments());
    expect_byte_identical(*pred, spec);
  }
  // 3. Too-large dimension (kept last: it grows the shared time dimension
  //    past the cap for good): once the time dimension's extent exceeds the
  //    enumeration cap, its atoms are left unconstrained (building the
  //    allowed set is linear in the extent) and the whole spec degrades to a
  //    full scan.
  {
    auto time = ct.ex.mo->dimension(ct.ex.time_dim);
    int64_t start = DaysFromCivil({2000, 1, 1});
    for (int64_t i = time->num_values();
         static_cast<size_t>(i) <= (1u << 16); ++i) {
      ASSERT_TRUE(time->EnsureTimeValue(DayGranule(start + 400 + i)).ok());
    }
    ASSERT_GT(time->num_values(), 1u << 16);
    auto pred = ParsePredicate(*ct.ex.mo, "Time.day <= 2000/5/31").take();
    scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now,
                                                  LiberalOracle(ct.now));
    EXPECT_TRUE(spec.unconstrained());
    scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
    EXPECT_EQ(plan.segments_pruned, 0u);
    expect_byte_identical(*pred, spec);
  }

}

}  // namespace
}  // namespace dwred
