// Scan-layer tests: plan shapes over the segment manifest, zone-map pruning
// soundness (pruned rows never carry selection weight), metrics, and
// byte-identical materialization with and without pruning.

#include "scan/scan.h"

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "chrono/granule.h"
#include "mdm/paper_example.h"
#include "obs/metrics.h"
#include "query/compare.h"
#include "query/operators.h"
#include "spec/parser.h"

namespace dwred {
namespace {

scan::AtomOracle LiberalOracle(int64_t now_day) {
  return [now_day](const Atom& a, const Dimension& dim, ValueId v) {
    return EvalQueryAtomOnValue(a, dim, v, now_day,
                                SelectionApproach::kLiberal);
  };
}

TEST(ScanPlanTest, PlanMoScanCoversRangeAscending) {
  scan::ScanPlan plan = scan::PlanMoScan(10'000, /*grain=*/512);
  ASSERT_FALSE(plan.units.empty());
  size_t expect_begin = 0;
  for (const exec::Shard& u : plan.units) {
    EXPECT_EQ(u.begin, expect_begin);
    EXPECT_LT(u.begin, u.end);
    expect_begin = u.end;
  }
  EXPECT_EQ(expect_begin, 10'000u);
  EXPECT_EQ(plan.segments_pruned, 0u);

  EXPECT_TRUE(scan::PlanMoScan(0, 512).units.empty());
}

TEST(ScanPlanTest, AllSpecKeepsEverySegment) {
  FactTable t(1, 1, /*segment_rows=*/4);
  for (int i = 0; i < 10; ++i) {
    std::vector<ValueId> c = {static_cast<ValueId>(i)};
    std::vector<int64_t> m = {i};
    t.Append(c, m);
  }
  scan::ScanPlan plan = scan::PlanTableScan(t, scan::ScanSpec::All());
  EXPECT_EQ(plan.units.size(), t.num_segments());
  EXPECT_EQ(plan.segments_total, t.num_segments());
  EXPECT_EQ(plan.segments_pruned, 0u);
  EXPECT_EQ(plan.rows_skipped, 0u);
  size_t rows = 0;
  for (const exec::Shard& u : plan.units) rows += u.end - u.begin;
  EXPECT_EQ(rows, 10u);
}

TEST(ScanPlanTest, FalsePredicatePrunesEverything) {
  IspExample ex = MakeIspExample();
  FactTable t(2, 4, /*segment_rows=*/2);
  ASSERT_TRUE(t.AppendFrom(*ex.mo).ok());
  ASSERT_GT(t.num_segments(), 1u);

  int64_t now = DaysFromCivil({2000, 7, 1});
  scan::ScanSpec spec =
      scan::ScanSpec::Compile(*ex.mo, *PredExpr::False(), now,
                              LiberalOracle(now));
  EXPECT_TRUE(spec.match_none());
  scan::ScanPlan plan = scan::PlanTableScan(t, spec);
  EXPECT_TRUE(plan.units.empty());
  EXPECT_EQ(plan.segments_pruned, t.num_segments());
  EXPECT_EQ(plan.rows_skipped, t.num_rows());
}

TEST(ScanPlanTest, TruePredicateCompilesToFullScan) {
  IspExample ex = MakeIspExample();
  int64_t now = DaysFromCivil({2000, 7, 1});
  scan::ScanSpec spec = scan::ScanSpec::Compile(
      *ex.mo, *PredExpr::True(), now, LiberalOracle(now));
  EXPECT_TRUE(spec.unconstrained());
}

/// A table whose time coordinates ascend chronologically (day ids intern in
/// encounter order, so chronological insertion gives the zone maps real
/// locality — docs/STORAGE.md).
struct ChronoTable {
  IspExample ex = MakeIspExample();
  FactTable t{2, 4, /*segment_rows=*/32};
  int64_t now = 0;

  ChronoTable() {
    auto time = ex.mo->dimension(ex.time_dim);
    int64_t start = DaysFromCivil({2000, 1, 1});
    for (int i = 0; i < 320; ++i) {
      ValueId day = time->EnsureTimeValue(DayGranule(start + i)).take();
      std::vector<ValueId> c = {day, i % 2 ? ex.url_cnn : ex.url_gatech};
      std::vector<int64_t> m = {1, i, 2 * i, 3};
      t.Append(c, m);
    }
    now = start + 320;
  }
};

TEST(ScanPlanTest, ZoneMapsPruneOutOfWindowSegments) {
  ChronoTable ct;
  // Keep roughly the first half of the year: later segments hold only
  // later days and must be pruned via their time zone maps.
  auto pred = ParsePredicate(*ct.ex.mo, "Time.day <= 2000/5/31").take();
  scan::ScanSpec spec =
      scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now, LiberalOracle(ct.now));
  EXPECT_FALSE(spec.unconstrained());

  double pruned_before = obs::MetricsRegistry::Global()
                             .GetCounter("dwred_scan_segments_pruned", "")
                             .Value();
  scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
  EXPECT_GT(plan.segments_pruned, 0u);
  EXPECT_GT(plan.rows_skipped, 0u);
  EXPECT_LT(plan.units.size(), ct.t.num_segments());
  double pruned_after = obs::MetricsRegistry::Global()
                            .GetCounter("dwred_scan_segments_pruned", "")
                            .Value();
  EXPECT_EQ(pruned_after - pruned_before,
            static_cast<double>(plan.segments_pruned));

  // Soundness: every row *outside* the plan has selection weight 0 (under
  // the most permissive approach), so no pruned row could have been
  // selected.
  MultidimensionalObject full =
      ct.t.ToMO("Click", ct.ex.mo->dimensions(),
                std::vector<MeasureType>(ct.ex.mo->measure_types()));
  std::vector<bool> planned(ct.t.num_rows(), false);
  for (const exec::Shard& u : plan.units) {
    for (size_t r = u.begin; r < u.end; ++r) planned[r] = true;
  }
  for (FactId f = 0; f < full.num_facts(); ++f) {
    if (planned[f]) continue;
    EXPECT_EQ(EvalQueryPredOnFact(*pred, full, f, ct.now,
                                  SelectionApproach::kLiberal),
              0.0)
        << "pruned row " << f << " is selectable";
  }
}

TEST(ScanPlanTest, PrunedMaterializationMatchesFullSelect) {
  ChronoTable ct;
  // Exercise AND/OR/NOT and both dimensions; NOT compiles through the DNF's
  // operator negation, where unsound pruning would show up immediately.
  const char* preds[] = {
      "Time.day <= 2000/5/31",
      "2000/3/1 <= Time.day <= 2000/4/30 AND URL.domain_grp = .com",
      "NOT (Time.day <= 2000/8/31)",
      "URL.domain_grp = .edu OR Time.day >= 2000/10/1",
      "NOT (URL.domain = cnn.com OR Time.day < 2000/6/1)",
  };
  std::vector<MeasureType> measures(ct.ex.mo->measure_types());
  for (const char* text : preds) {
    auto pred = ParsePredicate(*ct.ex.mo, text).take();
    MultidimensionalObject full =
        ct.t.ToMO("Click", ct.ex.mo->dimensions(), measures);
    SelectionResult want =
        Select(full, *pred, ct.now, SelectionApproach::kConservative).take();

    scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now,
                                                  LiberalOracle(ct.now));
    scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
    MultidimensionalObject pruned = scan::MaterializeMO(
        ct.t, plan, "Click", ct.ex.mo->dimensions(), measures);
    SelectionResult got =
        Select(pruned, *pred, ct.now, SelectionApproach::kConservative).take();

    ASSERT_EQ(got.mo.num_facts(), want.mo.num_facts()) << text;
    for (FactId f = 0; f < want.mo.num_facts(); ++f) {
      EXPECT_EQ(got.mo.FormatFact(f), want.mo.FormatFact(f)) << text;
    }
  }
}

TEST(ScanPlanTest, MaterializeKeepsLogicalFactNames) {
  ChronoTable ct;
  auto pred = ParsePredicate(*ct.ex.mo, "Time.day >= 2000/10/1").take();
  scan::ScanSpec spec = scan::ScanSpec::Compile(*ct.ex.mo, *pred, ct.now,
                                                LiberalOracle(ct.now));
  scan::ScanPlan plan = scan::PlanTableScan(ct.t, spec);
  ASSERT_GT(plan.segments_pruned, 0u);
  std::vector<MeasureType> measures(ct.ex.mo->measure_types());
  MultidimensionalObject pruned = scan::MaterializeMO(
      ct.t, plan, "Click", ct.ex.mo->dimensions(), measures);
  // Fact f of the materialization is logical row units[...]: its name must
  // be the full-scan name "fact_<logical row>".
  FactId f = 0;
  for (const exec::Shard& u : plan.units) {
    for (size_t r = u.begin; r < u.end; ++r, ++f) {
      EXPECT_EQ(pruned.FactName(f), "fact_" + std::to_string(r));
    }
  }
  EXPECT_EQ(f, pruned.num_facts());
}

}  // namespace
}  // namespace dwred
