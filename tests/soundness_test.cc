// NonCrossing and Growing checker tests (paper Sections 4.3, 5.2, 5.3),
// including the paper's own soundness examples: the a2/a4 crossing pair, the
// Growing violation of {a1} alone (Figure 2), its repair by adding a2, and
// the Section 5.3 three-action set whose coverage check reduces to the
// URL-domain-knowledge implication of eq. (29).

#include "reduce/soundness.h"

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "spec/parser.h"

namespace dwred {
namespace {

class SoundnessTest : public ::testing::Test {
 protected:
  Action Parse(const char* text, const char* name) {
    auto r = ParseAction(*ex_.mo, text, name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.take();
  }

  Status Validate(std::initializer_list<const char*> texts) {
    ReductionSpecification spec;
    int i = 0;
    for (const char* t : texts) {
      spec.Add(Parse(t, ("a" + std::to_string(++i)).c_str()));
    }
    return ValidateSpecification(*ex_.mo, spec);
  }

  IspExample ex_ = MakeIspExample();
};

TEST_F(SoundnessTest, GrowthClassification) {
  auto compile = [&](const char* text) {
    Action a = Parse(text, "x");
    auto dnf = CompileToDnf(*ex_.mo, *a.predicate);
    EXPECT_TRUE(dnf.ok());
    return ClassifyGrowth(dnf.value()[0]);
  };
  // a8: fixed bounds (case A).
  EXPECT_EQ(compile(paper::kA8), GrowthClass::kFixed);
  // a7 / a2: growing upper bound (case B).
  EXPECT_EQ(compile(paper::kA7), GrowthClass::kGrowing);
  EXPECT_EQ(compile(paper::kA2), GrowthClass::kGrowing);
  // a1: moving lower bound (case F) — shrinking.
  EXPECT_EQ(compile(paper::kA1), GrowthClass::kShrinking);
}

TEST_F(SoundnessTest, SingleGrowingActionAccepted) {
  // Theorem 1: a growing action is safe on its own.
  EXPECT_TRUE(Validate({paper::kA2}).ok());
  EXPECT_TRUE(Validate({paper::kA7}).ok());
  EXPECT_TRUE(Validate({paper::kA8}).ok());
}

TEST_F(SoundnessTest, Figure2GrowingViolationOfA1Alone) {
  // {a1} alone violates Growing: when NOW advances a month, fact_0 would be
  // "reclaimed" to (day, url) — impossible, reduction is irreversible.
  Status st = Validate({paper::kA1});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kGrowingViolation);
}

TEST_F(SoundnessTest, Figure2RepairedByAddingA2) {
  // The paper's fix: a2 catches everything a1 releases.
  Status st = Validate({paper::kA1, paper::kA2});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SoundnessTest, CrossingPairRejected) {
  // a2 and the (well-formed variant of) a4 aggregate into parallel branches
  // with overlapping predicates: NonCrossing is violated.
  Status st = Validate({paper::kA2, paper::kA4Week});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCrossingViolation);
}

TEST_F(SoundnessTest, DisjointPredicatesMayCross) {
  // Unordered granularities are fine when the predicates can never overlap
  // (Section 5.2 algorithm line 3): .edu facts vs .com facts.
  Status st = Validate(
      {"a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
       "Time.quarter <= NOW - 4 quarters]",
       "a[Time.week, URL.url] s[URL.domain_grp = .edu AND "
       "Time.week <= 1999W52]"});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SoundnessTest, DisjointFixedTimeRangesMayCross) {
  Status st = Validate(
      {"a[Time.quarter, URL.domain] s[Time.quarter <= 1998Q4]",
       "a[Time.week, URL.url] s[Time.week >= 1999W2]"});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SoundnessTest, OverlappingFixedTimeRangesCross) {
  Status st = Validate(
      {"a[Time.quarter, URL.domain] s[Time.quarter <= 1999Q4]",
       "a[Time.week, URL.url] s[Time.week >= 1999W2]"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCrossingViolation);
}

TEST_F(SoundnessTest, Section53SetIsGrowing) {
  // eqs. (24)-(26): the shrinking a1 is covered by a2 (.com) and a3 (.edu);
  // the implication reduces to "every domain group is .com or .edu", which
  // holds in the example URL dimension (eq. (29)).
  Status st = Validate({paper::kS53A1, paper::kS53A2, paper::kS53A3});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SoundnessTest, Section53SetBreaksWithoutEduCover) {
  // Dropping a3 leaves .edu cells uncovered when they fall over a1's lower
  // boundary.
  Status st = Validate({paper::kS53A1, paper::kS53A2});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kGrowingViolation);
  EXPECT_NE(st.message().find(".edu"), std::string::npos) << st.ToString();
}

TEST_F(SoundnessTest, Section53SetBreaksWithUnorderedCover) {
  // A cover must be >=_V the shrinking action to count. Aggregating the .edu
  // catcher to a *url*-level granularity leaves it unordered w.r.t. a1
  // (month,domain), so a1 stays uncovered (and the pair also crosses).
  Status st = Validate(
      {paper::kS53A1, paper::kS53A2,
       "a[Time.quarter, URL.url] s[Time.year <= NOW - 4 years AND "
       "URL.domain_grp = .edu]"});
  EXPECT_FALSE(st.ok());
}

TEST_F(SoundnessTest, ShrinkingCoveredOnlyPartiallyInTimeRejected) {
  // The cover takes over one quarter too late: a gap of one quarter of cells
  // is released uncovered.
  Status st = Validate(
      {"a[Time.month, URL.domain] s[URL.domain_grp = .com AND "
       "NOW - 12 months <= Time.month <= NOW - 6 months]",
       "a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
       "Time.quarter <= NOW - 8 quarters]"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kGrowingViolation);
}

TEST_F(SoundnessTest, EqualGranularityOverlapIsFine) {
  // Two actions with identical granularity trivially satisfy <=_V both ways;
  // overlap is harmless ("useless" redundant actions are permitted).
  Status st = Validate({paper::kA7, paper::kA8});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SoundnessTest, NonCrossingIsCheapForManyOrderedActions) {
  // |A|^2 pairwise checks with the syntactic fast path (Section 5.2: "ample
  // performance").
  ReductionSpecification spec;
  for (int k = 1; k <= 24; ++k) {
    // A tower of fixed actions aggregating ever higher, all ordered.
    std::string text = "a[Time.quarter, URL.domain] s[Time.quarter <= 199" +
                       std::to_string(k % 10) + "Q1]";
    spec.Add(Parse(text.c_str(), ("t" + std::to_string(k)).c_str()));
  }
  EXPECT_TRUE(ValidateSpecification(*ex_.mo, spec).ok());
}

}  // namespace
}  // namespace dwred
