// The library beyond the paper's two example dimensions: custom non-linear
// hierarchies (a Location dimension with parallel state/metro branches, the
// analogue of Time's week/month split), facts mapped to ⊤ (the model's
// representation of unknown values), and the full reduce/query pipeline over
// them.

#include <gtest/gtest.h>

#include "query/operators.h"
#include "reduce/semantics.h"
#include "reduce/soundness.h"
#include "subcube/manager.h"
#include "spec/parser.h"

namespace dwred {
namespace {

/// Location: store < {state, metro} < country < TOP — a non-linear,
/// user-defined hierarchy (metros straddle no state boundaries here, but the
/// branches are parallel: states don't roll up to metros or vice versa).
struct GeoWarehouse {
  std::shared_ptr<Dimension> time;
  std::shared_ptr<Dimension> loc;
  std::unique_ptr<MultidimensionalObject> mo;
  CategoryId store_cat, state_cat, metro_cat, country_cat;
  ValueId usa, ca, ny, bay_metro, nyc_metro;
  ValueId sf_store, oak_store, nyc_store, unknown_store_fact_time;
};

GeoWarehouse MakeGeo() {
  GeoWarehouse g;
  DimensionType type("Location");
  g.store_cat = type.AddCategory("store");
  g.state_cat = type.AddCategory("state");
  g.metro_cat = type.AddCategory("metro");
  g.country_cat = type.AddCategory("country");
  CategoryId top = type.AddCategory("TOP");
  EXPECT_TRUE(type.AddEdge(g.store_cat, g.state_cat).ok());
  EXPECT_TRUE(type.AddEdge(g.store_cat, g.metro_cat).ok());
  EXPECT_TRUE(type.AddEdge(g.state_cat, g.country_cat).ok());
  EXPECT_TRUE(type.AddEdge(g.metro_cat, g.country_cat).ok());
  EXPECT_TRUE(type.AddEdge(g.country_cat, top).ok());
  EXPECT_TRUE(type.Finalize().ok());
  EXPECT_FALSE(type.IsLinear());

  g.loc = std::make_shared<Dimension>(type);
  g.usa = g.loc->AddValue("USA", g.country_cat, g.loc->top_value()).take();
  g.ca = g.loc->AddValue("CA", g.state_cat, g.usa).take();
  g.ny = g.loc->AddValue("NY", g.state_cat, g.usa).take();
  g.bay_metro = g.loc->AddValue("BayArea", g.metro_cat, g.usa).take();
  g.nyc_metro = g.loc->AddValue("NYCMetro", g.metro_cat, g.usa).take();
  g.sf_store =
      g.loc->AddValue("SF-1", g.store_cat, {g.ca, g.bay_metro}).take();
  g.oak_store =
      g.loc->AddValue("OAK-1", g.store_cat, {g.ca, g.bay_metro}).take();
  g.nyc_store =
      g.loc->AddValue("NYC-1", g.store_cat, {g.ny, g.nyc_metro}).take();

  g.time = std::make_shared<Dimension>(Dimension::MakeTimeDimension());
  std::vector<MeasureType> measures = {{"Sales", AggFn::kSum}};
  g.mo = std::make_unique<MultidimensionalObject>(
      "Sale", std::vector<std::shared_ptr<Dimension>>{g.time, g.loc},
      measures);

  auto add = [&](CivilDate day, ValueId store, int64_t sales) {
    ValueId d = g.time->EnsureTimeValue(DayGranule(day)).take();
    std::vector<ValueId> coords = {d, store};
    std::vector<int64_t> m = {sales};
    EXPECT_TRUE(g.mo->AddBottomFact(coords, m).ok());
  };
  add({2000, 1, 10}, g.sf_store, 100);
  add({2000, 1, 15}, g.oak_store, 50);
  add({2000, 2, 1}, g.nyc_store, 200);
  // A sale with an unknown store: mapped to ⊤ (the model's stand-in).
  ValueId d = g.time->EnsureTimeValue(DayGranule(CivilDate{2000, 2, 2})).take();
  std::vector<ValueId> coords = {d, g.loc->top_value()};
  std::vector<int64_t> m = {7};
  EXPECT_TRUE(g.mo->AddBottomFact(coords, m).ok());
  return g;
}

TEST(CustomHierarchyTest, ParallelBranchLattice) {
  GeoWarehouse g = MakeGeo();
  const DimensionType& t = g.loc->type();
  EXPECT_EQ(t.Glb(g.state_cat, g.metro_cat), g.store_cat);
  EXPECT_EQ(t.Lub(g.state_cat, g.metro_cat), g.country_cat);
  EXPECT_FALSE(t.Leq(g.state_cat, g.metro_cat));
  // Rollup along both branches from one store.
  EXPECT_EQ(g.loc->Rollup(g.sf_store, g.state_cat), g.ca);
  EXPECT_EQ(g.loc->Rollup(g.sf_store, g.metro_cat), g.bay_metro);
  EXPECT_EQ(g.loc->Rollup(g.sf_store, g.country_cat), g.usa);
}

TEST(CustomHierarchyTest, CrossingIntoParallelGeoBranchesRejected) {
  GeoWarehouse g = MakeGeo();
  ReductionSpecification spec;
  spec.Add(ParseAction(*g.mo,
                       "a[Time.quarter, Location.state] s["
                       "Time.quarter <= NOW - 4 quarters]",
                       "by_state")
               .take());
  spec.Add(ParseAction(*g.mo,
                       "a[Time.month, Location.metro] s["
                       "Time.month <= NOW - 12 months]",
                       "by_metro")
               .take());
  Status st = ValidateSpecification(*g.mo, spec);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCrossingViolation);
}

TEST(CustomHierarchyTest, ReduceAlongChosenBranch) {
  GeoWarehouse g = MakeGeo();
  ReductionSpecification spec;
  spec.Add(ParseAction(*g.mo,
                       "a[Time.month, Location.metro] s["
                       "Time.month <= NOW - 6 months]",
                       "by_metro")
               .take());
  auto reduced = Reduce(*g.mo, spec, DaysFromCivil({2001, 1, 1}));
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  const MultidimensionalObject& r = reduced.value();
  // SF + OAK fold into (2000/1, BayArea); NYC into (2000/2, NYCMetro); the
  // ⊤-mapped fact aggregates to (2000/2, T) — ⊤ rolls to itself.
  ASSERT_EQ(r.num_facts(), 3u);
  int64_t bay = 0, nyc = 0, unknown = 0;
  for (FactId f = 0; f < r.num_facts(); ++f) {
    const std::string& n = g.loc->value_name(r.Coord(f, 1));
    if (n == "BayArea") bay = r.Measure(f, 0);
    if (n == "NYCMetro") nyc = r.Measure(f, 0);
    if (n == "T") unknown = r.Measure(f, 0);
  }
  EXPECT_EQ(bay, 150);
  EXPECT_EQ(nyc, 200);
  EXPECT_EQ(unknown, 7);
}

TEST(CustomHierarchyTest, TopMappedFactsBehaveInQueries) {
  GeoWarehouse g = MakeGeo();
  int64_t t = DaysFromCivil({2000, 3, 1});
  // Selection on a state can never certainly include the ⊤-mapped fact, but
  // liberal may.
  auto pred = ParsePredicate(*g.mo, "Location.state = CA").take();
  auto cons = Select(*g.mo, *pred, t).take();
  EXPECT_EQ(cons.mo.num_facts(), 2u);  // SF + OAK
  auto lib = Select(*g.mo, *pred, t, SelectionApproach::kLiberal).take();
  EXPECT_EQ(lib.mo.num_facts(), 3u);  // + the unknown-store sale
  // Aggregation to country keeps the unknown at ⊤ (availability approach).
  auto gran = ParseGranularityList(*g.mo, "Time.month, Location.country").take();
  auto agg = AggregateFormation(*g.mo, gran).take();
  int64_t total = 0;
  for (FactId f = 0; f < agg.num_facts(); ++f) total += agg.Measure(f, 0);
  EXPECT_EQ(total, 357);
}

TEST(CustomHierarchyTest, SubcubeEngineHandlesTopMappedRows) {
  // The physical engine with ⊤-mapped rows: the unknown-store sale follows
  // the time tiers, its Location coordinate staying at ⊤ inside the metro
  // cube.
  GeoWarehouse g = MakeGeo();
  ReductionSpecification spec;
  spec.Add(ParseAction(*g.mo,
                       "a[Time.month, Location.metro] s["
                       "Time.month <= NOW - 6 months]",
                       "by_metro")
               .take());
  auto mgr = SubcubeManager::Create(
                 "Sale", g.mo->dimensions(),
                 std::vector<MeasureType>(g.mo->measure_types()), spec)
                 .take();
  ASSERT_TRUE(mgr.InsertBottomFacts(*g.mo).ok());
  ASSERT_TRUE(mgr.Synchronize(DaysFromCivil({2001, 1, 1})).ok());
  EXPECT_EQ(mgr.subcube(0).table.num_rows(), 0u);
  EXPECT_EQ(mgr.subcube(1).table.num_rows(), 3u);
  auto all =
      mgr.Query(nullptr, nullptr, DaysFromCivil({2001, 1, 1}), true).take();
  int64_t total = 0, unknown = 0;
  for (FactId f = 0; f < all.num_facts(); ++f) {
    total += all.Measure(f, 0);
    if (g.loc->value_name(all.Coord(f, 1)) == "T") unknown += all.Measure(f, 0);
  }
  EXPECT_EQ(total, 357);
  EXPECT_EQ(unknown, 7);
}

TEST(CustomHierarchyTest, RecommendedSyncIntervalSecondLowestNowGranularity) {
  GeoWarehouse g = MakeGeo();
  ReductionSpecification spec;
  spec.Add(ParseAction(*g.mo,
                       "a[Time.month, Location.metro] s["
                       "NOW - 12 months <= Time.month <= NOW - 6 months]",
                       "m")
               .take());
  spec.Add(ParseAction(*g.mo,
                       "a[Time.quarter, Location.metro] s["
                       "Time.quarter <= NOW - 4 quarters]",
                       "q")
               .take());
  auto interval = RecommendedSyncInterval(*g.mo, spec);
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(interval.value(), (TimeSpan{TimeUnit::kQuarter, 1}));

  ReductionSpecification single;
  single.Add(ParseAction(*g.mo,
                         "a[Time.month, Location.metro] s["
                         "Time.month <= NOW - 6 months]",
                         "m")
                 .take());
  EXPECT_EQ(RecommendedSyncInterval(*g.mo, single).value(),
            (TimeSpan{TimeUnit::kMonth, 1}));

  ReductionSpecification fixed;
  fixed.Add(ParseAction(*g.mo,
                        "a[Time.month, Location.metro] s["
                        "Time.month <= 1999/12]",
                        "f")
                .take());
  EXPECT_EQ(RecommendedSyncInterval(*g.mo, fixed).value(),
            (TimeSpan{TimeUnit::kDay, 1}));
}

}  // namespace
}  // namespace dwred
