// Columnar-layout tests (docs/STORAGE.md "Columnar layout"): encoding
// round-trips and the cost model, batch iteration across chunk and segment
// boundaries, tombstones inside a chunk, empty/all-pruned scans, the
// DWRED_COLUMNAR_DISABLED kill switch, the storage byte-split gauges, the
// capacity-based ApproxBytes accounting, and bitwise EvalBatch/Eval
// equivalence.

#include "storage/column.h"

#include <stdlib.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chrono/civil.h"
#include "mdm/paper_example.h"
#include "obs/metrics.h"
#include "spec/parser.h"
#include "storage/fact_table.h"
#include "vm/program.h"

namespace dwred {
namespace {

using storage::ColEncoding;
using storage::EncodedColumn;

/// Flips the columnar kill switch for a scope; restores columnar on exit.
struct ColumnarSwitch {
  explicit ColumnarSwitch(bool enabled) { Set(enabled); }
  ~ColumnarSwitch() { Set(true); }
  static void Set(bool enabled) {
    if (enabled) {
      ::unsetenv("DWRED_COLUMNAR_DISABLED");
    } else {
      ::setenv("DWRED_COLUMNAR_DISABLED", "1", /*overwrite=*/1);
    }
  }
};

template <typename T>
void ExpectRoundTrip(const EncodedColumn<T>& col, const std::vector<T>& want) {
  ASSERT_EQ(col.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(col.At(i), want[i]) << "At(" << i << ")";
  }
  std::vector<T> out(want.size());
  col.Decode(0, want.size(), out.data());
  EXPECT_EQ(out, want);
  // Partial ranges decode identically (chunk boundaries land mid-run and
  // mid-dictionary in real scans).
  if (want.size() >= 4) {
    const size_t b = want.size() / 3, e = want.size() - 1;
    std::vector<T> part(e - b);
    col.Decode(b, e, part.data());
    for (size_t i = b; i < e; ++i) EXPECT_EQ(part[i - b], want[i]);
  }
}

TEST(EncodedColumnTest, RleWinsOnSortedRuns) {
  std::vector<ValueId> v;
  for (ValueId r = 0; r < 8; ++r) {
    for (int i = 0; i < 100; ++i) v.push_back(r);
  }
  std::vector<ValueId> keep = v;
  auto col = EncodedColumn<ValueId>::Encode(std::move(v));
  EXPECT_EQ(col.encoding(), ColEncoding::kRle);
  // 8 runs * (4 value + 4 end) bytes against 800 * 4 plain.
  EXPECT_EQ(col.DataBytes(), 8 * (sizeof(ValueId) + sizeof(uint32_t)));
  ExpectRoundTrip(col, keep);
}

TEST(EncodedColumnTest, DictWinsOnLowCardinalityNoRuns) {
  // The 5 distinct values span more than 2^32, so frame-of-reference deltas
  // are ineligible and the dictionary is the cheapest layout.
  std::vector<int64_t> v;
  for (int i = 0; i < 600; ++i) {
    v.push_back(1000 + ((i * 7) % 5) * (int64_t{1} << 33));
  }
  std::vector<int64_t> keep = v;
  auto col = EncodedColumn<int64_t>::Encode(std::move(v));
  EXPECT_EQ(col.encoding(), ColEncoding::kDict);
  // 5 distinct values -> 1-byte codes: 5*8 dictionary + 600*1 codes.
  EXPECT_EQ(col.DataBytes(), 5 * sizeof(int64_t) + 600u);
  ExpectRoundTrip(col, keep);
}

TEST(EncodedColumnTest, ForWinsOnDenseRangeAllDistinct) {
  // 600 distinct values inside a 4096-wide window above 2^32: a dictionary
  // must spell out every distinct 8-byte value, frame of reference keeps one
  // 8-byte base plus 2-byte deltas.
  std::vector<int64_t> v;
  for (int64_t i = 0; i < 600; ++i) {
    v.push_back(5'000'000'000 + (i * 7) % 4096);
  }
  std::vector<int64_t> keep = v;
  auto col = EncodedColumn<int64_t>::Encode(std::move(v));
  EXPECT_EQ(col.encoding(), ColEncoding::kFor);
  EXPECT_EQ(std::string(storage::EncodingName(col.encoding())), "for");
  EXPECT_EQ(col.DataBytes(), sizeof(int64_t) + 600u * 2);
  ExpectRoundTrip(col, keep);
}

TEST(EncodedColumnTest, ForRoundTripsNegativeBaseAndByteDeltas) {
  // A negative base with a sub-256 range packs to 1-byte deltas and must
  // reproduce the signed values exactly.
  std::vector<int64_t> v;
  for (int64_t i = 0; i < 600; ++i) v.push_back(-1'000'000 + (i * 13) % 200);
  std::vector<int64_t> keep = v;
  auto col = EncodedColumn<int64_t>::Encode(std::move(v));
  EXPECT_EQ(col.encoding(), ColEncoding::kFor);
  EXPECT_EQ(col.DataBytes(), sizeof(int64_t) + 600u * 1);
  ExpectRoundTrip(col, keep);
}

TEST(EncodedColumnTest, PlainWhenNothingWins) {
  // All distinct, no runs, and a range past 2^16 so 4-byte FOR deltas can
  // never undercut 4-byte plain values.
  std::vector<ValueId> v;
  for (ValueId i = 0; i < 64; ++i) v.push_back(i * 65537u);
  std::vector<ValueId> keep = v;
  auto col = EncodedColumn<ValueId>::Encode(std::move(v));
  EXPECT_EQ(col.encoding(), ColEncoding::kPlain);
  ASSERT_NE(col.PlainData(), nullptr);
  EXPECT_EQ(col.DataBytes(), keep.size() * sizeof(ValueId));
  ExpectRoundTrip(col, keep);
}

TEST(EncodedColumnTest, EmptyColumn) {
  auto col = EncodedColumn<ValueId>::Encode({});
  EXPECT_EQ(col.size(), 0u);
  EXPECT_TRUE(col.empty());
  EXPECT_EQ(col.DataBytes(), 0u);
  col.Decode(0, 0, nullptr);  // must not touch the output
}

TEST(EncodedColumnTest, EncodingNeverInflates) {
  // Across adversarial shapes, the kept encoding is never larger than plain.
  std::vector<std::vector<ValueId>> shapes;
  shapes.push_back({42});                       // single value
  shapes.push_back({1, 2, 1, 2, 1, 2});         // tiny alternation
  std::vector<ValueId> wide;
  for (ValueId i = 0; i < 300; ++i) wide.push_back(i * 2654435761u);
  shapes.push_back(wide);                       // wide, unique
  for (std::vector<ValueId>& s : shapes) {
    const size_t plain = s.size() * sizeof(ValueId);
    std::vector<ValueId> keep = s;
    auto col = EncodedColumn<ValueId>::Encode(std::move(s));
    EXPECT_LE(col.DataBytes(), plain);
    ExpectRoundTrip(col, keep);
  }
}

/// A table exercising every encoding in one sealed segment: the first
/// dimension RLE-compresses (long runs), the second dictionary-packs (low
/// cardinality spread too wide for deltas), the first measure stays plain
/// (all distinct across a range past 2^32), and the second measure
/// delta-packs with frame of reference (dense sub-256 range).
FactTable MakeEncodableTable(size_t rows, size_t segment_rows) {
  FactTable t(2, 2, segment_rows);
  std::vector<ValueId> c(2);
  std::vector<int64_t> m(2);
  for (size_t i = 0; i < rows; ++i) {
    c[0] = static_cast<ValueId>(i / 64);           // long runs
    c[1] = static_cast<ValueId>((i % 3) * 70000);  // 3 distinct, wide apart
    m[0] = static_cast<int64_t>(i) * 1'000'000'007 + 7;  // unique, wide
    m[1] = 500 + static_cast<int64_t>(i % 100);          // dense range
    t.Append(c, m);
  }
  return t;
}

TEST(ColumnarTest, SealedSegmentsEncodePerColumn) {
  FactTable t = MakeEncodableTable(/*rows=*/512, /*segment_rows=*/256);
  ASSERT_GE(t.num_segments(), 2u);
  ASSERT_TRUE(t.SegmentSealed(0));
  ASSERT_TRUE(t.SegmentEncoded(0));
  EXPECT_EQ(t.SegmentDimEncoding(0, 0), ColEncoding::kRle);
  EXPECT_EQ(t.SegmentDimEncoding(0, 1), ColEncoding::kDict);
  EXPECT_EQ(t.SegmentMeasureEncoding(0, 0), ColEncoding::kPlain);
  EXPECT_EQ(t.SegmentMeasureEncoding(0, 1), ColEncoding::kFor);
  EXPECT_EQ(std::string(storage::EncodingName(t.SegmentDimEncoding(0, 0))),
            "rle");
  // Per-column bytes sum to the segment total, and the segment shrank.
  size_t cols = t.SegmentDimBytes(0, 0) + t.SegmentDimBytes(0, 1) +
                t.SegmentMeasureBytes(0, 0) + t.SegmentMeasureBytes(0, 1);
  EXPECT_EQ(cols, t.SegmentBytes(0));
  EXPECT_LT(t.SegmentBytes(0),
            256 * (2 * sizeof(ValueId) + 2 * sizeof(int64_t)));
  EXPECT_LE(t.Bytes(), t.RowEquivalentBytes());
  // Logical reads are unchanged.
  for (RowId r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(t.Coord(r, 0), static_cast<ValueId>(r / 64));
    EXPECT_EQ(t.Coord(r, 1), static_cast<ValueId>((r % 3) * 70000));
    EXPECT_EQ(t.Measure(r, 0), static_cast<int64_t>(r) * 1'000'000'007 + 7);
    EXPECT_EQ(t.Measure(r, 1), 500 + static_cast<int64_t>(r % 100));
  }
}

TEST(ColumnarTest, BatchIterationCrossesChunkAndSegmentBoundaries) {
  // Segments larger than kBatchRows force chunking inside a segment; the
  // scan range straddles batch and segment boundaries.
  const size_t rows = FactTable::kBatchRows * 2 + 700;
  FactTable t = MakeEncodableTable(rows, FactTable::kBatchRows + 500);
  const RowId begin = FactTable::kBatchRows - 37;
  const RowId end = rows - 13;
  RowId expect = begin;
  t.ForEachBatch(begin, end, [&](const FactTable::BatchView& b) {
    ASSERT_EQ(b.first_row(), expect);
    ASSERT_GT(b.rows(), 0u);
    ASSERT_LE(b.rows(), FactTable::kBatchRows);
    ASSERT_EQ(b.num_dims(), 2u);
    for (size_t i = 0; i < b.rows(); ++i) {
      const RowId r = b.first_row() + i;
      EXPECT_EQ(b.dim_col(0)[i], t.Coord(r, 0));
      EXPECT_EQ(b.dim_col(1)[i], t.Coord(r, 1));
      EXPECT_EQ(b.meas_col(0)[i], t.Measure(r, 0));
    }
    expect += b.rows();
  });
  EXPECT_EQ(expect, end);
}

TEST(ColumnarTest, TombstonedRowsInsideAChunkAreSkipped) {
  FactTable t = MakeEncodableTable(/*rows=*/96, /*segment_rows=*/32);
  // Tombstone a few rows of the first (sealed, encoded) segment — below the
  // compaction ratio so the tombstones stay resident.
  std::vector<bool> erase(96, false);
  erase[3] = erase[10] = erase[17] = true;
  std::vector<ValueId> survivors0, survivors1;
  std::vector<int64_t> survivors_m;
  for (RowId r = 0; r < 96; ++r) {
    if (erase[r]) continue;
    survivors0.push_back(t.Coord(r, 0));
    survivors1.push_back(t.Coord(r, 1));
    survivors_m.push_back(t.Measure(r, 0));
  }
  ASSERT_TRUE(t.EraseRows(erase).ok());
  ASSERT_EQ(t.num_rows(), 93u);
  ASSERT_GT(t.SegmentTombstones(0), 0u);  // really deferred, not compacted
  RowId next = 0;
  t.ForEachBatch(0, t.num_rows(), [&](const FactTable::BatchView& b) {
    for (size_t i = 0; i < b.rows(); ++i) {
      const RowId r = b.first_row() + i;
      ASSERT_EQ(r, next);
      EXPECT_EQ(b.dim_col(0)[i], survivors0[r]);
      EXPECT_EQ(b.dim_col(1)[i], survivors1[r]);
      EXPECT_EQ(b.meas_col(0)[i], survivors_m[r]);
      ++next;
    }
  });
  EXPECT_EQ(next, t.num_rows());
}

TEST(ColumnarTest, EmptyAndFullyPrunedScans) {
  FactTable empty(2, 1);
  size_t calls = 0;
  empty.ForEachBatch(0, 0, [&](const FactTable::BatchView&) { ++calls; });
  EXPECT_EQ(calls, 0u);

  // A skip callback that rejects every chunk (no survivors anywhere) must
  // elide every callback — the late-materialization contract.
  FactTable t = MakeEncodableTable(/*rows=*/200, /*segment_rows=*/64);
  size_t skipped = 0;
  t.ForEachBatch(
      0, t.num_rows(), [&](const FactTable::BatchView&) { ++calls; },
      [&](RowId, size_t n) {
        skipped += n;
        return true;
      });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(skipped, t.num_rows());
}

TEST(ColumnarTest, KillSwitchSealsPlainAndKeepsEncodedReadable) {
  // Sealed while enabled: encoded.
  FactTable enc = MakeEncodableTable(/*rows=*/128, /*segment_rows=*/64);
  ASSERT_TRUE(enc.SegmentEncoded(0));
  {
    ColumnarSwitch off(false);
    // Sealing under the kill switch keeps plain columns.
    FactTable plain = MakeEncodableTable(/*rows=*/128, /*segment_rows=*/64);
    EXPECT_TRUE(plain.SegmentSealed(0));
    EXPECT_FALSE(plain.SegmentEncoded(0));
    EXPECT_EQ(plain.Bytes(), plain.RowEquivalentBytes());
    // Already-encoded segments stay readable with the switch off, through
    // both the point reads and the (row-path) iterator.
    EXPECT_EQ(enc.Coord(70, 0), 1u);
    RowId seen = 0;
    enc.ForEachRow(0, enc.num_rows(), [&](RowId r, const FactTable::RowRef& row) {
      EXPECT_EQ(row.coord(0), enc.Coord(r, 0));
      ++seen;
    });
    EXPECT_EQ(seen, enc.num_rows());
  }
}

TEST(ColumnarTest, StorageByteGaugesSplit) {
  if constexpr (!obs::kObsEnabled) GTEST_SKIP() << "obs disabled";
  auto& reg = obs::MetricsRegistry::Global();
  const int64_t row0 = reg.GetGauge("dwred_storage_bytes_row").Value();
  const int64_t col0 = reg.GetGauge("dwred_storage_bytes_columnar").Value();
  const int64_t sav0 = reg.GetGauge("dwred_storage_bytes_saved").Value();
  {
    FactTable t = MakeEncodableTable(/*rows=*/512, /*segment_rows=*/256);
    const int64_t drow =
        reg.GetGauge("dwred_storage_bytes_row").Value() - row0;
    const int64_t dcol =
        reg.GetGauge("dwred_storage_bytes_columnar").Value() - col0;
    const int64_t dsav =
        reg.GetGauge("dwred_storage_bytes_saved").Value() - sav0;
    EXPECT_EQ(drow, static_cast<int64_t>(t.RowEquivalentBytes()));
    EXPECT_EQ(dcol, static_cast<int64_t>(t.Bytes()));
    EXPECT_EQ(dsav, drow - dcol);
    EXPECT_GT(dsav, 0);  // the encodable table really saved bytes
  }
  // Destruction withdraws the contribution.
  EXPECT_EQ(reg.GetGauge("dwred_storage_bytes_row").Value(), row0);
  EXPECT_EQ(reg.GetGauge("dwred_storage_bytes_columnar").Value(), col0);
  EXPECT_EQ(reg.GetGauge("dwred_storage_bytes_saved").Value(), sav0);
}

TEST(ColumnarTest, ApproxBytesCountsColumnarBuffers) {
  FactTable t = MakeEncodableTable(/*rows=*/512, /*segment_rows=*/128);
  // Capacity-based accounting must cover at least the resident payload plus
  // the manifest overhead — a budget charged ApproxBytes can never hold more
  // resident data than it was charged for (the PR-8 undercount class).
  EXPECT_GE(t.ApproxBytes(), t.Bytes());
  EXPECT_GT(t.ApproxBytes(), 0u);

  // The MO admission path: the query cache charges capacity, names and
  // provenance, never just the logical fact payload.
  IspExample ex = MakeIspExample();
  EXPECT_GE(ex.mo->ApproxBytes(), ex.mo->FactBytes());
  ex.mo->SetFactName(0, "a rather long fact name that occupies heap bytes");
  ex.mo->SetProvenance(0, {0, 1, 2, 3}, 0);
  EXPECT_GT(ex.mo->ApproxBytes(),
            ex.mo->FactBytes() + 4 * sizeof(FactId));
}

TEST(ColumnarTest, EvalBatchBitwiseMatchesEval) {
  IspExample ex = MakeIspExample();
  const MultidimensionalObject& mo = *ex.mo;
  const int64_t now = DaysFromCivil({2000, 7, 1});
  auto pred = ParsePredicate(
      mo, "Time.day <= 2000/5/31 OR URL.domain = 'cnn.com'");
  ASSERT_TRUE(pred.ok()) << pred.status().message();
  auto prog = vm::PredProgram::Compile(mo, *pred.value(),
                                       vm::SpecAtomOracle(mo, now));
  ASSERT_TRUE(prog.has_value()) << "paper-example predicate must compile";

  const size_t ndims = mo.num_dimensions();
  const size_t n = mo.num_facts();
  ASSERT_GT(n, 0u);
  std::vector<ValueId> cols(ndims * n);
  std::vector<const ValueId*> colp(ndims);
  for (size_t d = 0; d < ndims; ++d) colp[d] = cols.data() + d * n;
  for (size_t f = 0; f < n; ++f) {
    for (size_t d = 0; d < ndims; ++d) {
      cols[d * n + f] = mo.Coord(f, static_cast<DimensionId>(d));
    }
  }
  std::vector<double> out(n);
  vm::PredProgram::BatchScratch scratch;
  prog->EvalBatch(colp.data(), n, out.data(), &scratch);
  for (size_t f = 0; f < n; ++f) {
    EXPECT_EQ(out[f], prog->Eval(mo.FactCoords(f)))  // bitwise: exact doubles
        << "lane " << f << " diverged from the row interpreter";
  }
}

}  // namespace
}  // namespace dwred
