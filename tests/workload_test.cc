// Workload-generator tests: determinism, hierarchy shape, Zipf skew, batch
// generation, and the retail warehouse's 3-dimensional schema.

#include "workload/clickstream.h"
#include "workload/retail.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dwred {
namespace {

TEST(RngTest, SplitMixIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(124);
  EXPECT_NE(SplitMix64(123).Next(), c.Next());
}

TEST(RngTest, RangeStaysInBounds) {
  SplitMix64 r(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, ZipfIsSkewed) {
  ZipfGenerator z(1000, 0.99, 42);
  size_t top10 = 0;
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    if (z.Next() < 10) ++top10;
  }
  // Under uniform sampling the top-10 ranks would receive ~1%; Zipf(0.99)
  // concentrates far more.
  EXPECT_GT(top10, n / 25);
}

TEST(ClickstreamTest, GeneratesRequestedShape) {
  ClickstreamConfig cfg;
  cfg.num_clicks = 5000;
  cfg.num_domains = 20;
  cfg.urls_per_domain = 5;
  ClickstreamWorkload w = MakeClickstream(cfg);
  EXPECT_EQ(w.mo->num_facts(), 5000u);
  EXPECT_EQ(w.mo->num_dimensions(), 2u);
  EXPECT_EQ(w.mo->num_measures(), 4u);
  // URL dimension: 4 groups + 20 domains + 100 urls + T.
  EXPECT_EQ(w.url_dim->num_values(), 125u);
  // All facts at bottom granularity with plausible measures.
  for (FactId f = 0; f < 50; ++f) {
    EXPECT_EQ(w.mo->Gran(f)[0], w.time_dim->type().bottom());
    EXPECT_EQ(w.mo->Measure(f, 0), 1);  // Number_of
    EXPECT_GE(w.mo->Measure(f, 1), 1);  // Dwell_time
  }
}

TEST(ClickstreamTest, DeterministicAcrossRuns) {
  ClickstreamConfig cfg;
  cfg.num_clicks = 500;
  ClickstreamWorkload a = MakeClickstream(cfg);
  ClickstreamWorkload b = MakeClickstream(cfg);
  ASSERT_EQ(a.mo->num_facts(), b.mo->num_facts());
  for (FactId f = 0; f < a.mo->num_facts(); ++f) {
    EXPECT_EQ(a.mo->Coord(f, 1), b.mo->Coord(f, 1));
    EXPECT_EQ(a.mo->Measure(f, 1), b.mo->Measure(f, 1));
  }
}

TEST(ClickstreamTest, BatchRespectsDayRange) {
  ClickstreamConfig cfg;
  cfg.num_clicks = 10;
  ClickstreamWorkload w = MakeClickstream(cfg);
  int64_t lo = DaysFromCivil({2001, 3, 1});
  int64_t hi = DaysFromCivil({2001, 3, 31});
  MultidimensionalObject batch =
      MakeClickBatch(w.time_dim, w.url_dim, lo, hi, 1000, 99);
  EXPECT_EQ(batch.num_facts(), 1000u);
  for (FactId f = 0; f < batch.num_facts(); ++f) {
    TimeGranule g = w.time_dim->granule(batch.Coord(f, 0));
    EXPECT_EQ(g.unit, TimeUnit::kDay);
    EXPECT_GE(g.index, lo);
    EXPECT_LE(g.index, hi);
  }
}

TEST(RetailTest, ThreeDimensionalSchema) {
  RetailConfig cfg;
  cfg.num_sales = 2000;
  RetailWorkload w = MakeRetail(cfg);
  EXPECT_EQ(w.mo->num_dimensions(), 3u);
  EXPECT_EQ(w.mo->num_facts(), 2000u);
  // Product: 8 categories * 5 brands * 20 skus.
  auto sku = w.product_dim->type().CategoryByName("sku");
  ASSERT_TRUE(sku.ok());
  EXPECT_EQ(w.product_dim->CategoryExtent(sku.value()).size(), 800u);
  // Store rollup: every store reaches a region.
  auto store = w.store_dim->type().CategoryByName("store");
  auto region = w.store_dim->type().CategoryByName("region");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(region.ok());
  for (ValueId s : w.store_dim->CategoryExtent(store.value())) {
    EXPECT_NE(w.store_dim->Rollup(s, region.value()), kInvalidValue);
  }
}

TEST(RetailTest, RevenueConsistentWithQuantity) {
  RetailConfig cfg;
  cfg.num_sales = 500;
  RetailWorkload w = MakeRetail(cfg);
  for (FactId f = 0; f < w.mo->num_facts(); ++f) {
    int64_t qty = w.mo->Measure(f, 0);
    int64_t rev = w.mo->Measure(f, 1);
    EXPECT_GE(qty, 1);
    EXPECT_GE(rev, qty * 5);
    EXPECT_LE(rev, qty * 500);
  }
}

}  // namespace
}  // namespace dwred
