// Tests for the deletion-action extension (paper Section 8 names "the
// deletion of facts" as future work): p(d s[P](O)) physically removes the
// matching facts. Deletion sits above every aggregation level in <=_V, so it
// composes with the NonCrossing/Growing machinery: it can cover any
// shrinking aggregation action, and a shrinking deletion can only be covered
// by another deletion.

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "reduce/dynamics.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "subcube/manager.h"

namespace dwred {
namespace {

class DeletionTest : public ::testing::Test {
 protected:
  Action Parse(const char* text, const char* name = "") {
    auto r = ParseAction(*ex_.mo, text, name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.take();
  }

  IspExample ex_ = MakeIspExample();
};

TEST_F(DeletionTest, ParsesAndPrints) {
  Action d = Parse("p(d s[Time.quarter <= NOW - 8 quarters](O))", "purge");
  EXPECT_TRUE(d.deletes);
  EXPECT_EQ(d.granularity[ex_.time_dim],
            ex_.mo->dimension(ex_.time_dim)->type().top());
  std::string s = d.ToString(*ex_.mo);
  EXPECT_EQ(s.rfind("p(d s[", 0), 0u) << s;
  // The "delete" long form works too.
  Action d2 = Parse("delete s[URL.domain_grp = .edu]");
  EXPECT_TRUE(d2.deletes);
}

TEST_F(DeletionTest, DeletionDominatesInActionOrder) {
  Action a2 = Parse(paper::kA2, "a2");
  Action d = Parse("d s[Time.quarter <= NOW - 8 quarters]", "purge");
  EXPECT_TRUE(ActionLeq(*ex_.mo, a2, d));
  EXPECT_FALSE(ActionLeq(*ex_.mo, d, a2));
  EXPECT_TRUE(ActionLeq(*ex_.mo, d, d));
}

TEST_F(DeletionTest, ReduceDeletesMatchingFacts) {
  ReductionSpecification spec;
  spec.Add(Parse("d s[Time.month <= 1999/12]", "purge99"));
  ReduceStats stats;
  auto reduced =
      Reduce(*ex_.mo, spec, DaysFromCivil({2001, 1, 1}), {}, &stats);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  // Facts 0..3 (1999) removed; facts 4..6 (2000) survive untouched.
  EXPECT_EQ(reduced.value().num_facts(), 3u);
  EXPECT_EQ(stats.facts_deleted, 4u);
  EXPECT_EQ(stats.facts_aggregated, 0u);
  for (FactId f = 0; f < reduced.value().num_facts(); ++f) {
    const Dimension& time = *reduced.value().dimension(ex_.time_dim);
    TimeGranule g = time.granule(reduced.value().Coord(f, ex_.time_dim));
    EXPECT_GE(FirstDayOf(g), DaysFromCivil({2000, 1, 1}));
  }
}

TEST_F(DeletionTest, TieredPolicyEndingInDeletion) {
  // month -> quarter -> gone: the full lifecycle. Each tier covers the
  // previous; the deletion anchors the chain.
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA1, "a1"));
  spec.Add(Parse(
      "a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
      "NOW - 16 quarters <= Time.quarter AND Time.quarter <= NOW - 4 quarters]",
      "a2"));
  spec.Add(Parse("d s[Time.quarter <= NOW - 16 quarters]", "purge"));
  EXPECT_TRUE(ValidateSpecification(*ex_.mo, spec).ok());

  // Far in the future everything .com is gone; gatech (never aggregated)
  // is deleted too once old enough.
  ReduceStats stats;
  auto reduced =
      Reduce(*ex_.mo, spec, DaysFromCivil({2010, 1, 1}), {}, &stats);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced.value().num_facts(), 0u);
  EXPECT_EQ(stats.facts_deleted, 7u);
}

TEST_F(DeletionTest, ShrinkingAggregationCoveredByDeletion) {
  // a1 shrinks; a deletion action (above it in <=_V) may take over its cells.
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA1, "a1"));
  spec.Add(Parse("d s[Time.quarter <= NOW - 4 quarters]", "purge"));
  EXPECT_TRUE(ValidateSpecification(*ex_.mo, spec).ok());
}

TEST_F(DeletionTest, ShrinkingDeletionNeedsDeletionCover) {
  // A windowed (shrinking) deletion alone violates Growing: cells leaving
  // the window would have to be un-deleted.
  ReductionSpecification shrinking;
  shrinking.Add(Parse(
      "d s[NOW - 24 months <= Time.month AND Time.month <= NOW - 12 months]",
      "window"));
  Status st = ValidateSpecification(*ex_.mo, shrinking);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kGrowingViolation);

  // An aggregation action cannot cover it (aggregation is below deletion)...
  ReductionSpecification with_agg = shrinking;
  with_agg.Add(Parse("a[Time.month, URL.domain_grp] s["
                     "Time.month <= NOW - 24 months]",
                     "agg"));
  EXPECT_FALSE(ValidateSpecification(*ex_.mo, with_agg).ok());

  // ... but another deletion can.
  ReductionSpecification with_del = shrinking;
  with_del.Add(Parse("d s[Time.month <= NOW - 24 months]", "purge"));
  EXPECT_TRUE(ValidateSpecification(*ex_.mo, with_del).ok())
      << ValidateSpecification(*ex_.mo, with_del).ToString();
}

TEST_F(DeletionTest, DeletionNeverCrossesAggregation) {
  // Deletion is comparable to everything, so no pair involving it can cross.
  ReductionSpecification spec;
  spec.Add(Parse(paper::kA2, "a2"));
  spec.Add(Parse(paper::kA4Week, "a4w"));  // a2/a4w alone would cross...
  spec.Add(Parse("d s[Time.year <= NOW - 10 years]", "purge"));
  Status st = ValidateSpecification(*ex_.mo, spec);
  // ... and still does: deletion doesn't repair unrelated crossings.
  EXPECT_EQ(st.code(), StatusCode::kCrossingViolation);

  ReductionSpecification clean;
  clean.Add(Parse(paper::kA2, "a2"));
  clean.Add(Parse("d s[Time.year <= NOW - 10 years]", "purge"));
  EXPECT_TRUE(ValidateSpecification(*ex_.mo, clean).ok());
}

TEST_F(DeletionTest, SubcubeSyncPhysicallyRemovesRows) {
  ReductionSpecification spec;
  spec.Add(ParseAction(*ex_.mo, paper::kA1, "a1").take());
  spec.Add(ParseAction(*ex_.mo, paper::kA2, "a2").take());
  spec.Add(Parse("d s[Time.quarter <= NOW - 12 quarters]", "purge"));
  auto mgr = SubcubeManager::Create(
                 "Click", ex_.mo->dimensions(),
                 std::vector<MeasureType>(ex_.mo->measure_types()), spec)
                 .take();
  // Deletion actions own no subcube.
  EXPECT_EQ(mgr.num_subcubes(), 3u);
  ASSERT_TRUE(mgr.InsertBottomFacts(*ex_.mo).ok());
  ASSERT_TRUE(mgr.Synchronize(DaysFromCivil({2000, 11, 5})).ok());
  size_t rows_before = 0;
  for (size_t i = 0; i < mgr.num_subcubes(); ++i) {
    rows_before += mgr.subcube(i).table.num_rows();
  }
  EXPECT_EQ(rows_before, 4u);  // the Figure 3 state

  // At 2002/11 the purge horizon (NOW - 12 quarters = 1999Q4) swallows the
  // 1999 rows; the 2000Q1 rows survive at quarter level.
  ASSERT_TRUE(mgr.Synchronize(DaysFromCivil({2002, 11, 1})).ok());
  auto remaining = mgr.Query(nullptr, nullptr, DaysFromCivil({2002, 11, 1}),
                             true);
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining.value().num_facts(), 2u);
  // One more year and everything is gone.
  ASSERT_TRUE(mgr.Synchronize(DaysFromCivil({2003, 11, 1})).ok());
  auto empty = mgr.Query(nullptr, nullptr, DaysFromCivil({2003, 11, 1}), true);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().num_facts(), 0u);
}

TEST_F(DeletionTest, DeleteOperatorOnDeletionActions) {
  // A still-effective deletion action cannot be removed from the spec...
  ReductionSpecification spec;
  spec.Add(Parse("d s[Time.month <= 1999/12]", "purge"));
  auto rejected = DeleteActions(*ex_.mo, spec, {0}, DaysFromCivil({2000, 6, 1}));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDeleteRejected);

  // ... unless an identical remaining deletion action covers the same facts.
  ReductionSpecification two;
  two.Add(Parse("d s[Time.month <= 1999/12]", "purge_a"));
  two.Add(Parse("d s[Time.month <= 1999/12]", "purge_b"));
  auto ok = DeleteActions(*ex_.mo, two, {0}, DaysFromCivil({2000, 6, 1}));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().size(), 1u);
}

TEST_F(DeletionTest, MaxSpecGranReportsDeletion) {
  ReductionSpecification spec;
  spec.Add(Parse("d s[Time.month <= 1999/12]", "purge"));
  bool deleted = false;
  ActionId responsible = kNoAction;
  auto g = MaxSpecGran(*ex_.mo, spec, ex_.facts[0],
                       DaysFromCivil({2000, 6, 1}), &responsible, &deleted);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(deleted);
  EXPECT_EQ(responsible, 0u);
  deleted = true;
  (void)MaxSpecGran(*ex_.mo, spec, ex_.facts[6], DaysFromCivil({2000, 6, 1}),
                    &responsible, &deleted);
  EXPECT_FALSE(deleted);
}

}  // namespace
}  // namespace dwred
