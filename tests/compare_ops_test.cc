// Systematic sweep over Definition 5's comparison operators: every operator
// against literals of every Time category, evaluated on a reduced MO whose
// facts sit at day, month and quarter granularities. Checks the semantic
// invariants that must hold regardless of granularity mix:
//
//   * conservative <= weighted <= liberal (refinement ordering);
//   * the exact path (fact at or below the literal's category) makes all
//     three approaches agree;
//   * conservative < and >= are mutually exclusive; liberal < or >= always
//     holds (B nonempty);
//   * weighted(=) + weighted(!=) = 1 and weighted(IN) + weighted(NOT IN) = 1.

#include <gtest/gtest.h>

#include "mdm/paper_example.h"
#include "paper_actions.h"
#include "query/compare.h"
#include "reduce/semantics.h"
#include "spec/parser.h"

namespace dwred {
namespace {

struct SweepCase {
  const char* literal;   // a time literal, its category inferred
  const char* category;  // the category name it belongs to
};

class CompareSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    ex_ = std::make_unique<IspExample>(MakeIspExample());
    ReductionSpecification spec;
    spec.Add(ParseAction(*ex_->mo, paper::kA1, "a1").take());
    spec.Add(ParseAction(*ex_->mo, paper::kA2, "a2").take());
    t_ = DaysFromCivil({2000, 11, 5});
    reduced_ = std::make_unique<MultidimensionalObject>(
        Reduce(*ex_->mo, spec, t_).take());
  }

  double Eval(const std::string& pred_text, FactId f, SelectionApproach ap) {
    auto pred = ParsePredicate(*reduced_, pred_text);
    EXPECT_TRUE(pred.ok()) << pred_text << ": " << pred.status().ToString();
    return EvalQueryPredOnFact(*pred.value(), *reduced_, f, t_, ap);
  }

  std::unique_ptr<IspExample> ex_;
  std::unique_ptr<MultidimensionalObject> reduced_;
  int64_t t_ = 0;
};

TEST_P(CompareSweepTest, RefinementOrderingAcrossApproaches) {
  const SweepCase& c = GetParam();
  for (const char* op : {"<", "<=", ">", ">=", "=", "!="}) {
    std::string pred = std::string("Time.") + c.category + " " + op + " " +
                       c.literal;
    for (FactId f = 0; f < reduced_->num_facts(); ++f) {
      double cons = Eval(pred, f, SelectionApproach::kConservative);
      double wgt = Eval(pred, f, SelectionApproach::kWeighted);
      double lib = Eval(pred, f, SelectionApproach::kLiberal);
      EXPECT_LE(cons, wgt + 1e-12) << pred << " fact " << f;
      EXPECT_LE(wgt, lib + 1e-12) << pred << " fact " << f;
      EXPECT_TRUE(cons == 0.0 || cons == 1.0);
      EXPECT_TRUE(lib == 0.0 || lib == 1.0);
    }
  }
}

TEST_P(CompareSweepTest, ExactPathAgreesAcrossApproaches) {
  const SweepCase& c = GetParam();
  const Dimension& time = *reduced_->dimension(0);
  CategoryId lit_cat = time.type().CategoryByName(c.category).take();
  for (const char* op : {"<", "<=", ">", ">=", "="}) {
    std::string pred = std::string("Time.") + c.category + " " + op + " " +
                       c.literal;
    for (FactId f = 0; f < reduced_->num_facts(); ++f) {
      CategoryId fact_cat = time.value_category(reduced_->Coord(f, 0));
      if (!time.type().Leq(fact_cat, lit_cat)) continue;  // Def-5 path
      double cons = Eval(pred, f, SelectionApproach::kConservative);
      double wgt = Eval(pred, f, SelectionApproach::kWeighted);
      double lib = Eval(pred, f, SelectionApproach::kLiberal);
      EXPECT_EQ(cons, lib) << pred << " fact " << f;
      EXPECT_EQ(cons, wgt) << pred << " fact " << f;
    }
  }
}

TEST_P(CompareSweepTest, OrderDuality) {
  const SweepCase& c = GetParam();
  std::string lt = std::string("Time.") + c.category + " < " + c.literal;
  std::string ge = std::string("Time.") + c.category + " >= " + c.literal;
  for (FactId f = 0; f < reduced_->num_facts(); ++f) {
    double c_lt = Eval(lt, f, SelectionApproach::kConservative);
    double c_ge = Eval(ge, f, SelectionApproach::kConservative);
    EXPECT_FALSE(c_lt == 1.0 && c_ge == 1.0) << "both certain for fact " << f;
    double l_lt = Eval(lt, f, SelectionApproach::kLiberal);
    double l_ge = Eval(ge, f, SelectionApproach::kLiberal);
    EXPECT_TRUE(l_lt == 1.0 || l_ge == 1.0)
        << "neither possible for fact " << f;
  }
}

TEST_P(CompareSweepTest, EqualityComplement) {
  const SweepCase& c = GetParam();
  std::string eq = std::string("Time.") + c.category + " = " + c.literal;
  std::string ne = std::string("Time.") + c.category + " != " + c.literal;
  std::string in =
      std::string("Time.") + c.category + " IN {" + c.literal + "}";
  std::string nin =
      std::string("Time.") + c.category + " NOT IN {" + c.literal + "}";
  for (FactId f = 0; f < reduced_->num_facts(); ++f) {
    EXPECT_NEAR(Eval(eq, f, SelectionApproach::kWeighted) +
                    Eval(ne, f, SelectionApproach::kWeighted),
                1.0, 1e-9)
        << "fact " << f;
    EXPECT_NEAR(Eval(in, f, SelectionApproach::kWeighted) +
                    Eval(nin, f, SelectionApproach::kWeighted),
                1.0, 1e-9)
        << "fact " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Literals, CompareSweepTest,
    ::testing::Values(SweepCase{"1999/12/4", "day"},
                      SweepCase{"1999/11/23", "day"},
                      SweepCase{"1999W48", "week"},
                      SweepCase{"2000W1", "week"},
                      SweepCase{"1999/12", "month"},
                      SweepCase{"2000/1", "month"},
                      SweepCase{"1999Q4", "quarter"},
                      SweepCase{"2000Q1", "quarter"},
                      SweepCase{"1999", "year"}, SweepCase{"2000", "year"}),
    [](const auto& info) {
      std::string n = std::string(info.param.category) + "_";
      for (char ch : std::string(info.param.literal)) {
        n += std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_';
      }
      return n;
    });

}  // namespace
}  // namespace dwred
