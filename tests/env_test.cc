// The consolidated integer-environment-knob parser (common/env.h). The
// regression that motivated it: the governor's strtoll-based copy accepted
// ERANGE overflow (strtoll saturates to LLONG_MAX and "succeeds"), so a
// runaway DWRED_MAX_CONCURRENT_QUERIES silently configured an unlimited
// admission gate. EnvInt64 must reject the whole overflow class and warn,
// never misconfigure.

#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

namespace dwred {
namespace {

constexpr const char* kKnob = "DWRED_ENV_TEST_KNOB";

class EnvInt64Test : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kKnob); }
  void Set(const char* v) { ::setenv(kKnob, v, /*overwrite=*/1); }
};

TEST_F(EnvInt64Test, UnsetReturnsFallbackSilently) {
  ::unsetenv(kKnob);
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100), 7);
}

TEST_F(EnvInt64Test, EmptyReturnsFallbackSilently) {
  Set("");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100), 7);
}

TEST_F(EnvInt64Test, ValidValueInRange) {
  Set("42");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100), 42);
  Set("  42  ");  // surrounding whitespace tolerated
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100), 42);
  Set("-3");
  EXPECT_EQ(EnvInt64(kKnob, 7, -10, 100), -3);
}

TEST_F(EnvInt64Test, GarbageFallsBack) {
  for (const char* bad : {"banana", "12abc", "0x10", "1.5", "--3", "1e300"}) {
    Set(bad);
    EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100), 7) << "input: " << bad;
  }
}

// The ERANGE edge itself: more digits than int64 holds. strtoll would
// saturate to LLONG_MAX and pass a plain >= 0 check; from_chars (ParseInt64)
// reports overflow, so the knob falls back instead of going unlimited.
TEST_F(EnvInt64Test, OverflowDigitsFallBackNotSaturate) {
  Set("99999999999999999999999999999999");  // > INT64_MAX
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, std::numeric_limits<int64_t>::max()), 7);
  Set("-99999999999999999999999999999999");  // < INT64_MIN
  EXPECT_EQ(EnvInt64(kKnob, 7, std::numeric_limits<int64_t>::min(),
                     std::numeric_limits<int64_t>::max()),
            7);
  // Exactly INT64_MAX is NOT overflow and must parse.
  Set("9223372036854775807");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, std::numeric_limits<int64_t>::max()),
            std::numeric_limits<int64_t>::max());
  // One past it is.
  Set("9223372036854775808");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, std::numeric_limits<int64_t>::max()), 7);
}

TEST_F(EnvInt64Test, FallbackPolicyRejectsOutOfRange) {
  Set("101");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100, EnvRangePolicy::kFallback), 7);
  Set("-1");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100, EnvRangePolicy::kFallback), 7);
}

TEST_F(EnvInt64Test, ClampPolicyReturnsViolatedBound) {
  Set("101");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100, EnvRangePolicy::kClamp), 100);
  Set("-1");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100, EnvRangePolicy::kClamp), 0);
  Set("50");
  EXPECT_EQ(EnvInt64(kKnob, 7, 0, 100, EnvRangePolicy::kClamp), 50);
}

// The governor's public contract after the fix: a non-negative knob with
// overflow digits runs at its default rather than effectively unlimited.
TEST_F(EnvInt64Test, GovernorShapedCallRejectsErange) {
  Set("184467440737095516160");  // 10 * 2^64, the classic runaway
  EXPECT_EQ(
      EnvInt64(kKnob, 64, 0, std::numeric_limits<int64_t>::max()),
      64);
}

}  // namespace
}  // namespace dwred
