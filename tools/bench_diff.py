#!/usr/bin/env python3
"""Compare a fresh google-benchmark sidecar against committed baselines.

Usage:
  tools/bench_diff.py --fresh /tmp/fresh.json [--baseline-dir bench/results]
                      [--max-slowdown 2.5] [--trajectory BENCH_query.json]

The committed baselines are the DWRED_BENCH_SIDECAR JSON files in
bench/results/ (EXPERIMENTS.md). For every benchmark row in the fresh sidecar
that also appears in a baseline:

  * every counter ending in `_crc` must match the baseline EXACTLY — these
    are differential correctness fingerprints (e.g. snapshot_crc: the cache
    and the profiler may change cost, never bytes); any drift is a hard
    failure regardless of timing;
  * throughput (items_per_second when present, else real_time) must not
    regress by more than --max-slowdown (default 2.5x). The band is wide on
    purpose: CI machines differ from the machine that recorded the baseline,
    so only order-of-magnitude regressions — an accidentally quadratic path,
    a lock on the warm path — should trip it. Speedups never fail.

Rows without a baseline are reported as new and pass. Exit status: 0 when all
checks pass, 1 when a CRC or throughput check fails, 2 when the inputs are
unusable (missing or truncated --fresh sidecar, missing --baseline-dir) — so
CI can tell "the code regressed" from "the harness never produced numbers".

The fresh sidecar is additionally checked against itself for the VM guard
(docs/COMPILATION.md): cold rows carrying `vm` and `cold` counters are paired
by benchmark family and thread count, and the vm=1 row must be at least
--min-vm-speedup times faster than its vm=0 twin (default 1.0 — the compiled
path must never lose to the interpreter it replaces) with every `_crc`
counter identical between the two (the VM changes cost, never bytes).

The columnar guard (docs/STORAGE.md "Columnar layout") works the same way on
cold rows carrying a `columnar` counter: the columnar=1 row must be at least
--min-columnar-speedup times faster than its columnar=0 twin (default 1.0 —
the batch path over encoded segments must never lose to the row path it
replaces) with every `_crc` counter identical between the two.

The server guard (docs/SERVER.md) self-checks rows carrying both `wire_crc`
and `embedded_crc` counters (bench_server_qps): within every row the two must
be identical — the snapshot CRC the server reports over the wire equals the
one computed in-process, so serving never changes bytes — and across all such
rows the CRCs must agree (the threads x cache sweep serves one warehouse).
With --min-server-qps > 0, every warm row (cache=1) must additionally sustain
at least that many requests/second.

With --trajectory, the run is also appended to a top-level trajectory file
(BENCH_query.json): one entry per run keyed by the sidecar's context date,
carrying per-benchmark throughput and CRCs. The file is a time series —
committed snapshots of it record how the numbers move across PRs.
"""

import argparse
import json
import os
import re
import sys

# Baseline files are consulted in sorted order and later files override
# earlier ones for duplicate benchmark names, so the mapping is deterministic.


def load_rows(path):
    """name -> benchmark row for every real iteration in a sidecar."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue  # skip _mean/_median/_stddev aggregates
        if row.get("error_occurred"):
            continue
        rows[row["name"]] = row
    return doc, rows


def crc_counters(row):
    return {k: v for k, v in row.items() if k.endswith("_crc")}


def time_seconds(row):
    unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
        row.get("time_unit", "ns")]
    return row["real_time"] * unit


def vm_guard(fresh, min_speedup):
    """Self-checks the fresh sidecar's cold VM-on/VM-off row pairs.

    Rows are paired by (benchmark family, threads) where family is the
    benchmark's base name with the Compiled/Interpreted suffix stripped —
    this matches both the dedicated pair (BM_VmQueryColdCompiled vs
    BM_VmQueryColdInterpreted) and sweep rows that differ only in their vm
    argument. Returns failure strings; groups missing either side pass.
    """
    groups = {}
    for name, row in fresh.items():
        if "vm" not in row or "cold" not in row or row["cold"] != 1:
            continue
        family = re.sub(r"(Compiled|Interpreted)", "", name.split("/")[0])
        key = (family, row.get("threads", 0))
        groups.setdefault(key, {})[int(row["vm"])] = (name, row)

    failures = []
    for (family, threads), pair in sorted(groups.items()):
        if 0 not in pair or 1 not in pair:
            continue
        off_name, off = pair[0]
        on_name, on = pair[1]
        on_t, off_t = time_seconds(on), time_seconds(off)
        speedup = off_t / on_t if on_t > 0 else float("inf")
        ok = speedup >= min_speedup
        print(f"vm-guard {family} threads={threads:g}: compiled "
              f"{on_t * 1e3:.3f}ms vs interpreted {off_t * 1e3:.3f}ms "
              f"({speedup:.2f}x) {'ok' if ok else 'VM REGRESSION'}")
        if not ok:
            failures.append(
                f"{on_name}: VM-on cold path only {speedup:.2f}x the "
                f"interpreter ({off_name}); floor {min_speedup:.2f}x")
        on_crcs, off_crcs = crc_counters(on), crc_counters(off)
        for key in sorted(set(on_crcs) | set(off_crcs)):
            if on_crcs.get(key) != off_crcs.get(key):
                failures.append(
                    f"{on_name}: {key} diverges between VM on/off "
                    f"({on_crcs.get(key)} vs {off_crcs.get(key)}) — the "
                    f"compiled path changed bytes")
    return failures


def columnar_guard(fresh, min_speedup):
    """Self-checks the fresh sidecar's cold columnar-on/off row pairs.

    Mirrors vm_guard: rows are paired by (benchmark family, threads) where
    family strips the Columnar/Row suffix — matching both the dedicated pair
    (BM_ColumnarScanColdColumnar vs BM_ColumnarScanColdRow) and sweep rows
    that differ only in their columnar argument. Returns failure strings;
    groups missing either side pass.
    """
    groups = {}
    for name, row in fresh.items():
        if "columnar" not in row or "cold" not in row or row["cold"] != 1:
            continue
        family = re.sub(r"(Columnar|Row)$", "", name.split("/")[0])
        key = (family, row.get("threads", 0))
        groups.setdefault(key, {})[int(row["columnar"])] = (name, row)

    failures = []
    for (family, threads), pair in sorted(groups.items()):
        if 0 not in pair or 1 not in pair:
            continue
        off_name, off = pair[0]
        on_name, on = pair[1]
        on_t, off_t = time_seconds(on), time_seconds(off)
        speedup = off_t / on_t if on_t > 0 else float("inf")
        ok = speedup >= min_speedup
        print(f"columnar-guard {family} threads={threads:g}: columnar "
              f"{on_t * 1e3:.3f}ms vs row {off_t * 1e3:.3f}ms "
              f"({speedup:.2f}x) {'ok' if ok else 'COLUMNAR REGRESSION'}")
        if not ok:
            failures.append(
                f"{on_name}: columnar cold path only {speedup:.2f}x the "
                f"row path ({off_name}); floor {min_speedup:.2f}x")
        on_crcs, off_crcs = crc_counters(on), crc_counters(off)
        for key in sorted(set(on_crcs) | set(off_crcs)):
            if on_crcs.get(key) != off_crcs.get(key):
                failures.append(
                    f"{on_name}: {key} diverges between columnar on/off "
                    f"({on_crcs.get(key)} vs {off_crcs.get(key)}) — the "
                    f"columnar path changed bytes")
    return failures


def server_guard(fresh, min_qps):
    """Self-checks the fresh sidecar's served-vs-embedded CRC rows.

    Applies to any row carrying both `wire_crc` and `embedded_crc`
    (bench_server_qps): the CRC reported over the wire must equal the one
    computed in-process for that same row, and every such row in the sidecar
    must agree — the {threads} x {cache} sweep serves one warehouse, so a
    divergence means the serving path changed bytes. Warm rows (cache=1)
    must sustain min_qps requests/second when a floor is configured.
    """
    failures = []
    sweep_crc = None
    for name, row in sorted(fresh.items()):
        if "wire_crc" not in row or "embedded_crc" not in row:
            continue
        wire, embedded = row["wire_crc"], row["embedded_crc"]
        ok = wire == embedded
        print(f"server-guard {name}: wire_crc={wire:.0f} "
              f"embedded_crc={embedded:.0f} "
              f"{'ok' if ok else 'SERVED BYTES DIVERGED'}")
        if not ok:
            failures.append(
                f"{name}: wire_crc {wire:.0f} != embedded_crc "
                f"{embedded:.0f} — the serving path changed bytes")
        if sweep_crc is None:
            sweep_crc = (name, wire)
        elif wire != sweep_crc[1]:
            failures.append(
                f"{name}: wire_crc {wire:.0f} != {sweep_crc[1]:.0f} from "
                f"{sweep_crc[0]} — sweep rows served different bytes")
        if min_qps > 0 and row.get("cache") == 1:
            qps = row.get("items_per_second", 0.0)
            if qps < min_qps:
                failures.append(
                    f"{name}: warm path sustained {qps:.0f} req/s; "
                    f"floor {min_qps:.0f}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True,
                    help="fresh DWRED_BENCH_SIDECAR json to check")
    ap.add_argument("--baseline-dir", default="bench/results",
                    help="directory of committed baseline sidecars")
    ap.add_argument("--max-slowdown", type=float, default=2.5,
                    help="fail when baseline/fresh throughput exceeds this")
    ap.add_argument("--trajectory", default=None,
                    help="append this run to the given trajectory json")
    ap.add_argument("--min-vm-speedup", type=float, default=1.0,
                    help="fail when a cold VM-on row is not at least this "
                         "many times faster than its VM-off twin")
    ap.add_argument("--min-columnar-speedup", type=float, default=1.0,
                    help="fail when a cold columnar row is not at least this "
                         "many times faster than its row-path twin")
    ap.add_argument("--min-server-qps", type=float, default=0.0,
                    help="fail when a warm served-query row sustains fewer "
                         "requests/second than this (0 = CRC checks only)")
    args = ap.parse_args()

    # Input problems exit 2 with a single clear line: a missing or truncated
    # sidecar means the benchmark run itself broke, which is a different
    # failure class than a regression (exit 1).
    try:
        fresh_doc, fresh = load_rows(args.fresh)
    except FileNotFoundError:
        print(f"bench_diff: fresh sidecar not found: {args.fresh}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError) as e:
        print(f"bench_diff: fresh sidecar {args.fresh} is truncated or "
              f"malformed: {e}", file=sys.stderr)
        return 2
    if not fresh:
        print(f"bench_diff: no benchmark rows in {args.fresh}", file=sys.stderr)
        return 2

    if not os.path.isdir(args.baseline_dir):
        print(f"bench_diff: baseline dir not found: {args.baseline_dir}",
              file=sys.stderr)
        return 2

    baselines = {}  # name -> (row, source file)
    for fname in sorted(os.listdir(args.baseline_dir)):
        if not fname.endswith(".json"):
            continue
        path = os.path.join(args.baseline_dir, fname)
        try:
            _, rows = load_rows(path)
        except (json.JSONDecodeError, KeyError) as e:
            print(f"bench_diff: skipping unreadable baseline {path}: {e}",
                  file=sys.stderr)
            continue
        for name, row in rows.items():
            baselines[name] = (row, fname)

    failures = []
    print(f"{'benchmark':50s} {'fresh':>12s} {'baseline':>12s} "
          f"{'ratio':>7s}  verdict")
    for name, row in sorted(fresh.items()):
        base = baselines.get(name)
        if base is None:
            print(f"{name:50s} {'':>12s} {'':>12s} {'':>7s}  new (no baseline)")
            continue
        brow, bfile = base

        # Correctness: CRC counters must match exactly.
        fresh_crcs = crc_counters(row)
        base_crcs = crc_counters(brow)
        for key in sorted(set(fresh_crcs) & set(base_crcs)):
            if fresh_crcs[key] != base_crcs[key]:
                failures.append(
                    f"{name}: {key} {fresh_crcs[key]:.0f} != baseline "
                    f"{base_crcs[key]:.0f} ({bfile}) — bytes changed")

        # Throughput band.
        if "items_per_second" in row and "items_per_second" in brow:
            fresh_v, base_v = row["items_per_second"], brow["items_per_second"]
            ratio = base_v / fresh_v if fresh_v > 0 else float("inf")
            unit = "it/s"
        else:
            fresh_t, base_t = time_seconds(row), time_seconds(brow)
            fresh_v, base_v = fresh_t, base_t
            ratio = fresh_t / base_t if base_t > 0 else float("inf")
            unit = "s"
        ok = ratio <= args.max_slowdown
        verdict = "ok" if ok else f"REGRESSION (> {args.max_slowdown}x)"
        if fresh_crcs and any(
                fresh_crcs.get(k) != base_crcs.get(k)
                for k in set(fresh_crcs) & set(base_crcs)):
            verdict = "CRC MISMATCH"
        print(f"{name:50s} {fresh_v:12.4g} {base_v:12.4g} {ratio:7.2f}  "
              f"{verdict} [{unit}, vs {bfile}]")
        if not ok:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline {bfile} "
                f"(band {args.max_slowdown}x)")

    failures.extend(vm_guard(fresh, args.min_vm_speedup))
    failures.extend(columnar_guard(fresh, args.min_columnar_speedup))
    failures.extend(server_guard(fresh, args.min_server_qps))

    if args.trajectory:
        entry = {
            "date": fresh_doc.get("context", {}).get("date", "unknown"),
            "source": os.path.basename(args.fresh),
            "benchmarks": {},
        }
        for name, row in sorted(fresh.items()):
            rec = {"real_time_s": time_seconds(row)}
            if "items_per_second" in row:
                rec["items_per_second"] = row["items_per_second"]
            rec.update(crc_counters(row))
            entry["benchmarks"][name] = rec
        trajectory = {"runs": []}
        if os.path.exists(args.trajectory):
            try:
                with open(args.trajectory) as f:
                    trajectory = json.load(f)
            except json.JSONDecodeError:
                print(f"bench_diff: resetting unreadable {args.trajectory}",
                      file=sys.stderr)
        trajectory.setdefault("runs", []).append(entry)
        with open(args.trajectory, "w") as f:
            json.dump(trajectory, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"trajectory: appended run to {args.trajectory} "
              f"({len(trajectory['runs'])} runs)")

    if failures:
        print("\nbench_diff: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench_diff: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
