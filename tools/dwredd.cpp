// dwredd — the warehouse daemon: one SubcubeManager behind a TCP listener
// speaking the length-prefixed, CRC-framed command protocol of
// src/net/protocol.h (docs/SERVER.md). Clients: dwredctl --connect,
// dwred_loadgen, and anything linking src/net's Client.
//
//   $ dwredd --port=7070                      # paper's ISP example warehouse
//   $ dwredd --snapshot=warehouse.dwsnap      # serve a saved warehouse
//   $ dwredd --port=0                         # ephemeral port, printed
//
// Prints exactly one "dwredd listening on <host>:<port>" line on stdout once
// the listener is bound (supervisors and the CI smoke job parse it), then
// serves until a `shutdown` command arrives.
//
// Exit codes: 0 clean shutdown, 1 boot failure (Status on stderr), 2 usage.

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "mdm/paper_example.h"
#include "net/client.h"
#include "net/server.h"
#include "subcube/manager.h"

using namespace dwred;

namespace {

void PrintHelp(const char* argv0) {
  std::printf(
      "usage: %s [--host=<ip>] [--port=<n>] [--max-connections=<n>] "
      "[--snapshot=<file.dwsnap>]\n"
      "\n"
      "flags:\n"
      "  --host=<ip>             listen address (default 127.0.0.1)\n"
      "  --port=<n>              TCP port; 0 picks an ephemeral port and\n"
      "                          prints it (default 0)\n"
      "  --max-connections=<n>   session cap; connections past it are shed\n"
      "                          with ResourceExhausted (default\n"
      "                          $DWRED_NET_MAX_CONNECTIONS or 64)\n"
      "  --snapshot=<file>       boot from a saved warehouse snapshot\n"
      "                          (io/snapshot.h); its facts land in the\n"
      "                          bottom subcube — send `subcube-sync` to\n"
      "                          migrate them under the restored spec.\n"
      "                          Without it, the paper's ISP example\n"
      "                          warehouse (7 facts, empty spec) is served\n"
      "\n"
      "protocol, sessions, deadlines, and metrics: docs/SERVER.md\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  net::IgnoreSigpipe();
  net::ServerConfig config;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp(argv[0]);
      return 0;
    } else if (arg.rfind("--host=", 0) == 0) {
      config.host = arg.substr(std::string("--host=").size());
    } else if (arg.rfind("--port=", 0) == 0) {
      int64_t port = -1;
      if (!ParseInt64(arg.substr(std::string("--port=").size()), &port) ||
          port < 0 || port > 65535) {
        std::fprintf(stderr, "--port= requires an integer in [0, 65535]\n");
        return 2;
      }
      config.port = static_cast<uint16_t>(port);
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      int64_t cap = 0;
      if (!ParseInt64(arg.substr(std::string("--max-connections=").size()),
                      &cap) ||
          cap < 1) {
        std::fprintf(stderr,
                     "--max-connections= requires a positive integer\n");
        return 2;
      }
      config.max_connections = static_cast<int>(cap);
    } else if (arg.rfind("--snapshot=", 0) == 0) {
      snapshot_path = arg.substr(std::string("--snapshot=").size());
      if (snapshot_path.empty()) {
        std::fprintf(stderr, "--snapshot= requires a file path\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    }
  }

  std::unique_ptr<SubcubeManager> mgr;
  if (!snapshot_path.empty()) {
    auto bytes = ReadFile(snapshot_path);
    if (!bytes.ok()) {
      std::fprintf(stderr, "--snapshot: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    auto loaded = LoadWarehouse(bytes.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "--snapshot: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    auto m = SubcubeManager::Create(
        loaded.value().mo->fact_type(), loaded.value().mo->dimensions(),
        loaded.value().mo->measure_types(), loaded.value().spec);
    if (!m.ok()) {
      std::fprintf(stderr, "--snapshot: %s\n", m.status().ToString().c_str());
      return 1;
    }
    mgr = std::make_unique<SubcubeManager>(m.take());
    Status st = mgr->InsertBottomFacts(*loaded.value().mo);
    if (!st.ok()) {
      std::fprintf(stderr, "--snapshot: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %zu facts from %s (%zu subcubes)\n",
                loaded.value().mo->num_facts(), snapshot_path.c_str(),
                mgr->num_subcubes());
  } else {
    IspExample example = MakeIspExample();
    auto m = SubcubeManager::Create(
        example.mo->fact_type(), example.mo->dimensions(),
        example.mo->measure_types(), ReductionSpecification{});
    if (!m.ok()) {
      std::fprintf(stderr, "example warehouse: %s\n",
                   m.status().ToString().c_str());
      return 1;
    }
    mgr = std::make_unique<SubcubeManager>(m.take());
    Status st = mgr->InsertBottomFacts(*example.mo);
    if (!st.ok()) {
      std::fprintf(stderr, "example warehouse: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("serving the paper's ISP example warehouse (%zu facts)\n",
                example.mo->num_facts());
  }

  net::Server server(config, mgr.get());
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("dwredd listening on %s:%u\n", config.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  server.WaitForShutdown();
  server.Stop();
  std::printf("dwredd: shut down cleanly\n");
  return 0;
}
