#!/bin/sh
# docs/SERVER.md exit-code contract, failure half: a server that vanishes
# mid-stream must surface as Unavailable (exit 6) with the Status on stderr —
# never a hang, never exit 0.
#
# Two scenarios:
#   1. SIGKILL between commands: the client's next command hits a dead peer
#      (EPIPE on send, or EOF short read on recv).
#   2. Clean `shutdown` followed by another command on the same connection:
#      the server answered the shutdown, then closed; the follow-up command
#      is a documented short read.
#
# usage: run_server_kill.sh <dwredd> <dwredctl>
set -eu

DWREDD="$1"
DWREDCTL="$2"

WORK="$(mktemp -d /tmp/dwred_server_kill.XXXXXX)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

boot_server() {
  "$DWREDD" --port=0 > "$WORK/dwredd.out" 2>&1 &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 300); do
    ADDR="$(sed -n 's/^dwredd listening on //p' "$WORK/dwredd.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "dwredd never printed its listener line"; exit 1; }
}

# --- scenario 1: SIGKILL the server, then issue a command -------------------
boot_server
printf 'ping\n' | "$DWREDCTL" --connect="$ADDR" -   # server is healthy
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
rc=0
printf 'ping\n' | "$DWREDCTL" --connect="$ADDR" - \
  > "$WORK/killed.out" 2> "$WORK/killed.err" || rc=$?
[ "$rc" -eq 6 ] || {
  echo "expected exit 6 after SIGKILL, got $rc"; cat "$WORK/killed.err"
  exit 1; }
grep -q "Unavailable" "$WORK/killed.err" || {
  echo "no Unavailable status on stderr:"; cat "$WORK/killed.err"; exit 1; }
echo "SIGKILL scenario OK (exit 6, Unavailable on stderr)"

# --- scenario 2: clean shutdown, then another command, same connection ------
boot_server
rc=0
printf 'ping\nshutdown\nping\n' | "$DWREDCTL" --connect="$ADDR" - \
  > "$WORK/shutdown.out" 2> "$WORK/shutdown.err" || rc=$?
wait "$SERVER_PID" 2>/dev/null || true
[ "$rc" -eq 6 ] || {
  echo "expected exit 6 after shutdown mid-script, got $rc"
  cat "$WORK/shutdown.err"; exit 1; }
grep -q "Unavailable" "$WORK/shutdown.err" || {
  echo "no Unavailable status on stderr:"; cat "$WORK/shutdown.err"; exit 1; }
echo "shutdown-mid-script scenario OK (exit 6, Unavailable on stderr)"
