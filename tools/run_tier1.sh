#!/usr/bin/env bash
# Runs the repo's tier-1 verification line (ROADMAP.md) from the repo root.
#
#   tools/run_tier1.sh                 # plain build + ctest
#   tools/run_tier1.sh --sanitize      # -DDWRED_SANITIZE=address;undefined,
#                                      # full ctest, then the crash matrix
#                                      # again with strict sanitizer options
#   tools/run_tier1.sh asan            # legacy alias for --sanitize
#
# The sanitizer variant uses a separate build directory so it never poisons
# the plain build's cache.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "asan" || "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -S . "-DDWRED_SANITIZE=address;undefined"
  cmake --build build-asan -j
  cd build-asan
  ctest --output-on-failure -j
  # The crash matrix forks a child per (fault site, occurrence) and the child
  # dies at an IO boundary; rerun it with every sanitizer report fatal so a
  # leak or UB on the recovery path fails the run rather than scrolling by.
  ASAN_OPTIONS="abort_on_error=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --output-on-failure -R 'crash_matrix_test|journal_test|recovery_test'
else
  cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
fi
