#!/usr/bin/env bash
# Runs the repo's tier-1 verification line (ROADMAP.md) from the repo root.
#
#   tools/run_tier1.sh                 # plain build + ctest
#   tools/run_tier1.sh --sanitize      # -DDWRED_SANITIZE=address;undefined,
#                                      # full ctest, then the crash matrix
#                                      # again with strict sanitizer options
#   tools/run_tier1.sh --tsan          # -DDWRED_SANITIZE=thread; runs the
#                                      # concurrency suite (pool stress, the
#                                      # serial-vs-parallel differential
#                                      # harness, obs) under ThreadSanitizer
#   tools/run_tier1.sh asan            # legacy alias for --sanitize
#
# Any mode accepts --threads=N, exported as DWRED_THREADS so every test and
# pass runs against an N-thread pool (1 = exact serial fallback).
#
# Each sanitizer variant uses a separate build directory so it never poisons
# the plain build's cache.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="plain"
for arg in "$@"; do
  case "$arg" in
    asan|--sanitize) mode="asan" ;;
    --tsan) mode="tsan" ;;
    --threads=*) export DWRED_THREADS="${arg#--threads=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

case "$mode" in
  asan)
    cmake -B build-asan -S . "-DDWRED_SANITIZE=address;undefined"
    cmake --build build-asan -j
    cd build-asan
    ctest --output-on-failure -j
    # The crash matrix forks a child per (fault site, occurrence) and the child
    # dies at an IO boundary; rerun it with every sanitizer report fatal so a
    # leak or UB on the recovery path fails the run rather than scrolling by.
    ASAN_OPTIONS="abort_on_error=1:halt_on_error=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      ctest --output-on-failure -R 'crash_matrix_test|journal_test|recovery_test'
    ;;
  tsan)
    cmake -B build-tsan -S . "-DDWRED_SANITIZE=thread"
    cmake --build build-tsan -j
    cd build-tsan
    # The concurrency surface: pool internals under stress, the parallel
    # reduce/synchronize/query passes, the metrics they update, the
    # cancellation/admission runtime (cooperative aborts racing worker
    # shards, the oversubscribed admission gate), and the dwredd serving
    # core (concurrent sessions, the cancel.net.* sweep, the wire-vs-
    # embedded differential). The crash matrix is excluded — TSan does not
    # support threads created after a multithreaded fork (the fork-safety
    # test self-skips the same way).
    TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
      ctest --output-on-failure \
        -R 'exec_pool_test|parallel_differential_test|vm_differential_test|columnar_test|obs_test|cache_coherence_test|profile_test|cancel_test|cancel_matrix_test|net_protocol_test|server_test'
    ;;
  plain)
    cmake -B build -S . && cmake --build build -j && cd build \
      && ctest --output-on-failure -j
    ;;
esac
