#!/usr/bin/env bash
# Runs the repo's tier-1 verification line (ROADMAP.md) from the repo root.
#
#   tools/run_tier1.sh                 # plain build + ctest
#   tools/run_tier1.sh asan            # -DDWRED_SANITIZE=address;undefined
#
# The sanitizer variant uses a separate build directory so it never poisons
# the plain build's cache.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "asan" ]]; then
  cmake -B build-asan -S . "-DDWRED_SANITIZE=address;undefined" &&
    cmake --build build-asan -j && cd build-asan && ctest --output-on-failure -j
else
  cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
fi
