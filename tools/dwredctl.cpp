// dwredctl — a scriptable warehouse shell over the dwred library.
//
// Reads commands from a script file (or stdin), one per line:
//
//   fact-type <Name>                         # default "Fact"
//   time-dimension <Name>                    # built-in day..year hierarchy
//   load-dimension <Name> <file.csv>         # denormalized rollup table
//   measures <name>:<sum|min|max>[,...]
//   init                                     # create the warehouse
//   load-facts <file.csv>
//   action [name:] <action text>             # stage an action
//   apply                                    # validate + install staged set
//   delete-action <name> <date>              # Definition 4 at the date
//   reduce <date>                            # Definition 2 in place
//   select <conservative|liberal|weighted> <date> <predicate>
//   aggregate <date> <granularity list>
//   drop-dimension <Name>
//   drop-measure <name>
//   raise-bottom <Dim> <category>
//   save-facts <file.csv>
//   save-dimension <Name> <file.csv>
//   save-snapshot <file.dwsnap>             # binary warehouse + spec
//   load-snapshot <file.dwsnap>             # instead of init + loads
//   show [n]                                 # print up to n facts (default 20)
//   stats
//   metrics                                  # Prometheus-style text dump
//   metrics-json                             # same registry, JSON snapshot
//   subcube-init                             # Section 7 layout from the spec
//   subcube-load <file.csv>                  # bottom-cube facts from CSV
//   subcube-layout
//   subcube-sync <date>                      # Section 7.2 synchronization
//   subcube-query <date> <granularity list>  # Section 7.3 combined query
//   explain <date> <granularity list> [where <predicate>]
//                                            # run the query synchronized +
//                                            # parallel, print its profile
//   slowlog                                  # flight recorder: slow ops + why
//   trace-tree                               # span tree of the trace buffer
//   storage                                  # per-subcube segments + zone maps
//   cache                                    # epoch, cache entries, hit rates
//   cache clear                              # drop every cached entry
//   attach <dir>                             # bind to a durable directory:
//                                            #   fresh dir: journal this warehouse
//                                            #   existing: recover, then continue
//   checkpoint                               # fold the journal into a snapshot
//   detach                                   # checkpoint + release the directory
//   echo <text>
//
// Blank lines and '#' comments are ignored. The tool stops at the first
// failing command and reports its diagnostic (Status on stderr), exiting
// with a code that names the failure class (see --help): 1 generic command
// failure, 2 usage / IO, 3 cancelled, 4 deadline exceeded, 5 resource
// exhausted (budget or admission shed), 6 server unavailable (--connect
// mode: refused, disconnected mid-command, or short read — docs/SERVER.md).
//
//   $ dwredctl warehouse.dwred
//   $ dwredctl -                    # read from stdin
//   $ dwredctl recover <dir>        # replay the journal, checkpoint, report
//   $ dwredctl stats warehouse.dwred    # run, then dump the metrics registry
//   $ dwredctl --trace=/tmp/t.jsonl warehouse.dwred   # JSON-lines span trace
//   $ dwredctl trace-tree /tmp/t.jsonl  # pretty-print a recorded span trace
//   $ dwredctl --deadline-ms=500 warehouse.dwred  # per-command deadline
//   $ dwredctl --max-rows=100000 warehouse.dwred  # per-command row budget

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "cache/cache.h"
#include "common/strings.h"
#include "io/csv.h"
#include "io/recovery.h"
#include "io/snapshot.h"
#include "io/warehouse_io.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "query/operators.h"
#include "reduce/dynamics.h"
#include "runtime/cancel.h"
#include "reduce/schema_reduction.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "storage/column.h"
#include "subcube/manager.h"

using namespace dwred;

namespace {

struct Shell {
  std::string fact_type = "Fact";
  std::vector<std::shared_ptr<Dimension>> dims;
  std::vector<MeasureType> measures;
  std::unique_ptr<MultidimensionalObject> mo;
  ReductionSpecification spec;
  std::vector<Action> staged;
  std::unique_ptr<SubcubeManager> subcubes;
  /// Non-null while attached to a durable directory; mutating commands are
  /// then journaled (io/recovery.h) and `mo`/`spec` stay empty.
  std::unique_ptr<DurableWarehouse> durable;

  const MultidimensionalObject& CurMO() const {
    return durable ? durable->mo() : *mo;
  }
  const ReductionSpecification& CurSpec() const {
    return durable ? durable->spec() : spec;
  }

  Status Require(bool initialized) const {
    if (initialized && !mo && !durable) {
      return Status::InvalidArgument("run 'init' first");
    }
    if (!initialized && (mo || durable)) {
      return Status::InvalidArgument("warehouse already initialized");
    }
    return Status::OK();
  }

  Status RequireDetached(const std::string& cmd) const {
    if (durable) {
      return Status::InvalidArgument(
          "'" + cmd + "' is not journaled; detach before running it");
    }
    return Status::OK();
  }

  Status RequireSubcubes() const {
    if (durable ? durable->subcubes() == nullptr : !subcubes) {
      return Status::InvalidArgument("run 'subcube-init' first");
    }
    return Status::OK();
  }

  const SubcubeManager& CurSubcubes() const {
    return durable ? *durable->subcubes() : *subcubes;
  }

  Result<DimensionId> DimByName(std::string_view name) const {
    for (size_t d = 0; d < dims.size(); ++d) {
      if (dims[d]->name() == name) return static_cast<DimensionId>(d);
    }
    return Status::NotFound("no dimension named '" + std::string(name) + "'");
  }

  Status Run(std::string_view cmdline) {
    std::string_view line = Trim(cmdline);
    if (line.empty() || line[0] == '#') return Status::OK();
    std::istringstream in{std::string(line)};
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    rest = std::string(Trim(rest));

    if (cmd == "echo") {
      std::printf("%s\n", rest.c_str());
      return Status::OK();
    }
    if (cmd == "fact-type") {
      DWRED_RETURN_IF_ERROR(Require(false));
      fact_type = rest;
      return Status::OK();
    }
    if (cmd == "time-dimension") {
      DWRED_RETURN_IF_ERROR(Require(false));
      auto dim = std::make_shared<Dimension>(Dimension::MakeTimeDimension());
      // The built-in time type is named "Time"; an alias is not supported —
      // report rather than silently mis-name.
      if (rest != "Time") {
        return Status::InvalidArgument(
            "the built-in time dimension is named 'Time'");
      }
      dims.push_back(std::move(dim));
      return Status::OK();
    }
    if (cmd == "load-dimension") {
      DWRED_RETURN_IF_ERROR(Require(false));
      std::istringstream args(rest);
      std::string name, path;
      args >> name >> path;
      DWRED_ASSIGN_OR_RETURN(std::string csv, ReadFile(path));
      DWRED_ASSIGN_OR_RETURN(Dimension dim, ReadDimensionCsv(name, csv));
      std::printf("loaded dimension %s: %zu values\n", name.c_str(),
                  dim.num_values());
      dims.push_back(std::make_shared<Dimension>(std::move(dim)));
      return Status::OK();
    }
    if (cmd == "measures") {
      DWRED_RETURN_IF_ERROR(Require(false));
      for (const std::string& part : Split(rest, ',')) {
        std::string_view p = Trim(part);
        size_t colon = p.find(':');
        if (colon == std::string_view::npos) {
          return Status::InvalidArgument("expected <name>:<sum|min|max>");
        }
        std::string_view agg = p.substr(colon + 1);
        MeasureType m;
        m.name = std::string(p.substr(0, colon));
        if (agg == "sum") m.agg = AggFn::kSum;
        else if (agg == "min") m.agg = AggFn::kMin;
        else if (agg == "max") m.agg = AggFn::kMax;
        else return Status::InvalidArgument("unknown aggregate: " +
                                            std::string(agg));
        measures.push_back(std::move(m));
      }
      return Status::OK();
    }
    if (cmd == "init") {
      DWRED_RETURN_IF_ERROR(Require(false));
      if (dims.empty()) {
        return Status::InvalidArgument("declare dimensions before init");
      }
      if (measures.empty()) {
        return Status::InvalidArgument("declare measures before init");
      }
      mo = std::make_unique<MultidimensionalObject>(fact_type, dims, measures);
      std::printf("warehouse ready: %zu dimensions, %zu measures\n",
                  dims.size(), measures.size());
      return Status::OK();
    }
    if (cmd == "attach") {
      if (durable) return Status::InvalidArgument("already attached");
      if (rest.empty()) return Status::InvalidArgument("attach <dir>");
      if (subcubes) {
        return Status::InvalidArgument(
            "attach before subcube-init; the durable layer owns the subcube "
            "organization");
      }
      if (mo) {
        // Bind the current in-memory warehouse to a fresh directory.
        DWRED_ASSIGN_OR_RETURN(
            durable,
            DurableWarehouse::Create(rest, std::move(mo), std::move(spec)));
        spec = ReductionSpecification{};
        std::printf("attached %s (new directory)\n", rest.c_str());
      } else {
        // Existing directory: recovery runs as part of the open.
        RecoveryStats rs;
        DWRED_ASSIGN_OR_RETURN(durable, DurableWarehouse::Open(rest, &rs));
        std::printf(
            "attached %s: recovered to lsn %llu (snapshot lsn %llu, "
            "%zu ops replayed, %zu intents rolled back)\n",
            rest.c_str(), static_cast<unsigned long long>(rs.recovered_lsn),
            static_cast<unsigned long long>(rs.snapshot_lsn), rs.ops_replayed,
            rs.intents_rolled_back);
      }
      dims = durable->mo().dimensions();
      measures = durable->mo().measure_types();
      fact_type = durable->mo().fact_type();
      return Status::OK();
    }
    if (cmd == "checkpoint") {
      if (!durable) return Status::InvalidArgument("run 'attach' first");
      DWRED_RETURN_IF_ERROR(durable->Checkpoint());
      std::printf("checkpoint written at lsn %llu\n",
                  static_cast<unsigned long long>(durable->applied_lsn()));
      return Status::OK();
    }
    if (cmd == "detach") {
      if (!durable) return Status::InvalidArgument("run 'attach' first");
      if (durable->subcubes()) {
        return Status::InvalidArgument(
            "detach under the subcube organization is not supported; the "
            "subcubes live only in the durable directory");
      }
      DWRED_RETURN_IF_ERROR(durable->Checkpoint());
      mo = std::make_unique<MultidimensionalObject>(durable->mo());
      spec = durable->spec();
      durable.reset();
      std::printf("detached (directory checkpointed)\n");
      return Status::OK();
    }
    if (cmd == "load-facts") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_ASSIGN_OR_RETURN(std::string csv, ReadFile(rest));
      if (durable) {
        MultidimensionalObject batch(fact_type, dims, measures);
        DWRED_RETURN_IF_ERROR(ReadFactCsv(&batch, csv));
        DWRED_RETURN_IF_ERROR(durable->InsertFacts(batch));
        std::printf("loaded %zu facts (journaled, lsn %llu)\n",
                    batch.num_facts(),
                    static_cast<unsigned long long>(durable->applied_lsn()));
        return Status::OK();
      }
      size_t before = mo->num_facts();
      DWRED_RETURN_IF_ERROR(ReadFactCsv(mo.get(), csv));
      std::printf("loaded %zu facts (%zu total)\n", mo->num_facts() - before,
                  mo->num_facts());
      return Status::OK();
    }
    if (cmd == "action") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_ASSIGN_OR_RETURN(std::vector<Action> parsed,
                             ReadSpecificationText(CurMO(), rest));
      for (Action& a : parsed) staged.push_back(std::move(a));
      return Status::OK();
    }
    if (cmd == "apply") {
      DWRED_RETURN_IF_ERROR(Require(true));
      if (durable) {
        std::vector<std::pair<std::string, std::string>> pairs;
        pairs.reserve(staged.size());
        for (const Action& a : staged) {
          pairs.emplace_back(a.name, a.source_text);
        }
        DWRED_RETURN_IF_ERROR(durable->ApplyActions(pairs));
        staged.clear();
        std::printf("specification valid: %zu actions installed\n",
                    durable->spec().size());
        return Status::OK();
      }
      // Validate against a copy so a rejected set stays staged: the user can
      // stage a covering action and retry instead of starting over.
      DWRED_ASSIGN_OR_RETURN(spec, InsertActions(*mo, spec, staged));
      staged.clear();
      std::printf("specification valid: %zu actions installed\n", spec.size());
      return Status::OK();
    }
    if (cmd == "delete-action") {
      DWRED_RETURN_IF_ERROR(Require(true));
      std::istringstream args(rest);
      std::string name, date;
      args >> name >> date;
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(date));
      if (day.unit != TimeUnit::kDay) {
        return Status::InvalidArgument("expected a day, e.g. 2000/11/5");
      }
      if (durable) {
        DWRED_RETURN_IF_ERROR(durable->DeleteAction(name, day.index));
        std::printf("deleted action %s (%zu remain)\n", name.c_str(),
                    durable->spec().size());
        return Status::OK();
      }
      for (ActionId i = 0; i < spec.size(); ++i) {
        if (spec.action(i).name == name) {
          DWRED_ASSIGN_OR_RETURN(spec,
                                 DeleteActions(*mo, spec, {i}, day.index));
          std::printf("deleted action %s (%zu remain)\n", name.c_str(),
                      spec.size());
          return Status::OK();
        }
      }
      return Status::NotFound("no action named '" + name + "'");
    }
    if (cmd == "reduce") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(rest));
      if (day.unit != TimeUnit::kDay) {
        return Status::InvalidArgument("expected a day, e.g. 2000/11/5");
      }
      ReduceStats stats;
      if (durable) {
        DWRED_RETURN_IF_ERROR(durable->ReducePass(day.index, &stats));
        std::printf(
            "reduced at %s: %zu -> %zu facts (%zu aggregated, %zu deleted)\n",
            rest.c_str(), stats.input_facts, stats.output_facts,
            stats.facts_aggregated, stats.facts_deleted);
        return Status::OK();
      }
      DWRED_ASSIGN_OR_RETURN(MultidimensionalObject reduced,
                             Reduce(*mo, spec, day.index, {}, &stats));
      *mo = std::move(reduced);
      std::printf(
          "reduced at %s: %zu -> %zu facts (%zu aggregated, %zu deleted)\n",
          rest.c_str(), stats.input_facts, stats.output_facts,
          stats.facts_aggregated, stats.facts_deleted);
      return Status::OK();
    }
    if (cmd == "select") {
      DWRED_RETURN_IF_ERROR(Require(true));
      std::istringstream args(rest);
      std::string approach_s, date;
      args >> approach_s >> date;
      std::string pred_text;
      std::getline(args, pred_text);
      SelectionApproach ap;
      if (approach_s == "conservative") ap = SelectionApproach::kConservative;
      else if (approach_s == "liberal") ap = SelectionApproach::kLiberal;
      else if (approach_s == "weighted") ap = SelectionApproach::kWeighted;
      else return Status::InvalidArgument("unknown approach " + approach_s);
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(date));
      DWRED_ASSIGN_OR_RETURN(auto pred,
                             ParsePredicate(CurMO(), Trim(pred_text)));
      DWRED_ASSIGN_OR_RETURN(SelectionResult sel,
                             Select(CurMO(), *pred, day.index, ap));
      std::printf("select (%s): %zu facts\n", approach_s.c_str(),
                  sel.mo.num_facts());
      for (FactId f = 0; f < sel.mo.num_facts() && f < 20; ++f) {
        if (ap == SelectionApproach::kWeighted) {
          std::printf("  %s  w=%.3f\n", sel.mo.FormatFact(f).c_str(),
                      sel.weights[f]);
        } else {
          std::printf("  %s\n", sel.mo.FormatFact(f).c_str());
        }
      }
      return Status::OK();
    }
    if (cmd == "aggregate") {
      DWRED_RETURN_IF_ERROR(Require(true));
      std::istringstream args(rest);
      std::string date;
      args >> date;
      std::string gran_text;
      std::getline(args, gran_text);
      DWRED_ASSIGN_OR_RETURN(auto gran,
                             ParseGranularityList(CurMO(), Trim(gran_text)));
      DWRED_ASSIGN_OR_RETURN(MultidimensionalObject agg,
                             AggregateFormation(CurMO(), gran));
      std::printf("aggregate: %zu cells\n", agg.num_facts());
      for (FactId f = 0; f < agg.num_facts() && f < 20; ++f) {
        std::printf("  %s\n", agg.FormatFact(f).c_str());
      }
      return Status::OK();
    }
    if (cmd == "drop-dimension") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_RETURN_IF_ERROR(RequireDetached(cmd));
      DWRED_ASSIGN_OR_RETURN(DimensionId d, DimByName(rest));
      DWRED_ASSIGN_OR_RETURN(MultidimensionalObject out,
                             DropDimension(*mo, d));
      *mo = std::move(out);
      dims.erase(dims.begin() + d);
      std::printf("dropped dimension %s: %zu facts remain\n", rest.c_str(),
                  mo->num_facts());
      return Status::OK();
    }
    if (cmd == "drop-measure") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_RETURN_IF_ERROR(RequireDetached(cmd));
      DWRED_ASSIGN_OR_RETURN(MeasureId m, mo->MeasureByName(rest));
      DWRED_ASSIGN_OR_RETURN(MultidimensionalObject out, DropMeasure(*mo, m));
      *mo = std::move(out);
      measures.erase(measures.begin() + m);
      return Status::OK();
    }
    if (cmd == "raise-bottom") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_RETURN_IF_ERROR(RequireDetached(cmd));
      std::istringstream args(rest);
      std::string dim_name, cat_name;
      args >> dim_name >> cat_name;
      DWRED_ASSIGN_OR_RETURN(DimensionId d, DimByName(dim_name));
      DWRED_ASSIGN_OR_RETURN(CategoryId c,
                             dims[d]->type().CategoryByName(cat_name));
      DWRED_ASSIGN_OR_RETURN(MultidimensionalObject out,
                             RaiseBottomCategory(*mo, d, c));
      dims[d] = out.dimension(d);
      *mo = std::move(out);
      std::printf("raised %s bottom to %s\n", dim_name.c_str(),
                  cat_name.c_str());
      return Status::OK();
    }
    if (cmd == "save-snapshot") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_RETURN_IF_ERROR(WriteFile(rest, SaveWarehouse(CurMO(), CurSpec())));
      std::printf("snapshot written to %s\n", rest.c_str());
      return Status::OK();
    }
    if (cmd == "load-snapshot") {
      DWRED_RETURN_IF_ERROR(Require(false));
      DWRED_ASSIGN_OR_RETURN(std::string bytes, ReadFile(rest));
      DWRED_ASSIGN_OR_RETURN(LoadedWarehouse lw, LoadWarehouse(bytes));
      mo = std::move(lw.mo);
      spec = std::move(lw.spec);
      dims = mo->dimensions();
      measures = mo->measure_types();
      fact_type = mo->fact_type();
      std::printf("snapshot loaded: %zu facts, %zu actions\n",
                  mo->num_facts(), spec.size());
      return Status::OK();
    }
    if (cmd == "save-facts") {
      DWRED_RETURN_IF_ERROR(Require(true));
      DWRED_RETURN_IF_ERROR(WriteFile(rest, WriteFactCsv(CurMO())));
      std::printf("wrote %zu facts to %s\n", CurMO().num_facts(),
                  rest.c_str());
      return Status::OK();
    }
    if (cmd == "save-dimension") {
      DWRED_RETURN_IF_ERROR(Require(true));
      std::istringstream args(rest);
      std::string name, path;
      args >> name >> path;
      DWRED_ASSIGN_OR_RETURN(DimensionId d, DimByName(name));
      DWRED_ASSIGN_OR_RETURN(std::string csv, WriteDimensionCsv(*dims[d]));
      DWRED_RETURN_IF_ERROR(WriteFile(path, csv));
      return Status::OK();
    }
    if (cmd == "show") {
      DWRED_RETURN_IF_ERROR(Require(true));
      int64_t limit = 20;
      if (!rest.empty() && (!ParseInt64(rest, &limit) || limit < 0)) {
        return Status::InvalidArgument("show: expected a non-negative count, "
                                       "got '" + rest + "'");
      }
      const MultidimensionalObject& cur = CurMO();
      for (FactId f = 0; f < cur.num_facts() &&
                         f < static_cast<FactId>(limit);
           ++f) {
        std::printf("  %s\n", cur.FormatFact(f).c_str());
      }
      if (cur.num_facts() > static_cast<size_t>(limit)) {
        std::printf("  ... (%zu more)\n",
                    cur.num_facts() - static_cast<size_t>(limit));
      }
      return Status::OK();
    }
    if (cmd == "stats") {
      DWRED_RETURN_IF_ERROR(Require(true));
      size_t dim_bytes = 0;
      for (const auto& d : dims) dim_bytes += d->ApproxBytes();
      std::printf("facts: %zu (%s); dimensions: %s; actions: %zu\n",
                  CurMO().num_facts(), HumanBytes(CurMO().FactBytes()).c_str(),
                  HumanBytes(dim_bytes).c_str(), CurSpec().size());
      return Status::OK();
    }
    if (cmd == "metrics") {
      std::printf("%s", obs::MetricsRegistry::Global().RenderText().c_str());
      return Status::OK();
    }
    if (cmd == "metrics-json") {
      std::printf("%s\n", obs::MetricsRegistry::Global().RenderJson().c_str());
      return Status::OK();
    }
    if (cmd == "subcube-init") {
      DWRED_RETURN_IF_ERROR(Require(true));
      if (CurSpec().empty()) {
        return Status::InvalidArgument(
            "apply a specification before subcube-init");
      }
      if (durable) {
        DWRED_RETURN_IF_ERROR(durable->EnableSubcubes());
        std::printf("subcube warehouse ready: %zu subcubes (journaled)\n",
                    durable->subcubes()->num_subcubes());
        return Status::OK();
      }
      auto m = SubcubeManager::Create(fact_type, dims, measures, spec);
      if (!m.ok()) return m.status();
      subcubes = std::make_unique<SubcubeManager>(m.take());
      std::printf("subcube warehouse ready: %zu subcubes\n",
                  subcubes->num_subcubes());
      return Status::OK();
    }
    if (cmd == "subcube-load") {
      DWRED_RETURN_IF_ERROR(RequireSubcubes());
      DWRED_ASSIGN_OR_RETURN(std::string csv, ReadFile(rest));
      MultidimensionalObject batch(fact_type, dims, measures);
      DWRED_RETURN_IF_ERROR(ReadFactCsv(&batch, csv));
      DWRED_RETURN_IF_ERROR(durable ? durable->InsertFacts(batch)
                                    : subcubes->InsertBottomFacts(batch));
      std::printf("loaded %zu facts into the bottom subcube\n",
                  batch.num_facts());
      return Status::OK();
    }
    if (cmd == "subcube-layout") {
      DWRED_RETURN_IF_ERROR(RequireSubcubes());
      std::printf("%s", CurSubcubes().DescribeLayout().c_str());
      return Status::OK();
    }
    if (cmd == "subcube-sync") {
      DWRED_RETURN_IF_ERROR(RequireSubcubes());
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(rest));
      if (day.unit != TimeUnit::kDay) {
        return Status::InvalidArgument("expected a day, e.g. 2000/11/5");
      }
      size_t migrated = 0;
      if (durable) {
        DWRED_RETURN_IF_ERROR(durable->SynchronizePass(day.index, &migrated));
      } else {
        DWRED_ASSIGN_OR_RETURN(migrated, subcubes->Synchronize(day.index));
      }
      std::printf("synchronized at %s: %zu rows migrated (%s total)\n",
                  rest.c_str(), migrated,
                  HumanBytes(CurSubcubes().TotalBytes()).c_str());
      return Status::OK();
    }
    if (cmd == "subcube-query") {
      DWRED_RETURN_IF_ERROR(RequireSubcubes());
      std::istringstream args(rest);
      std::string date;
      args >> date;
      std::string gran_text;
      std::getline(args, gran_text);
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(date));
      DWRED_ASSIGN_OR_RETURN(
          auto gran,
          ParseGranularityList(CurSubcubes().context(), Trim(gran_text)));
      DWRED_ASSIGN_OR_RETURN(
          MultidimensionalObject result,
          CurSubcubes().Query(nullptr, &gran, day.index,
                              /*assume_synchronized=*/false));
      std::printf("subcube-query: %zu cells\n", result.num_facts());
      for (FactId f = 0; f < result.num_facts() && f < 20; ++f) {
        std::printf("  %s\n", result.FormatFact(f).c_str());
      }
      return Status::OK();
    }
    if (cmd == "explain") {
      DWRED_RETURN_IF_ERROR(RequireSubcubes());
      // explain <date> <granularity list> [where <predicate>]: the query runs
      // for real (synchronized + parallel, the pruned path) and its profile
      // is printed instead of its rows.
      std::string head = rest;
      std::string pred_text;
      size_t where_pos = rest.find(" where ");
      if (where_pos != std::string::npos) {
        head = rest.substr(0, where_pos);
        pred_text = std::string(Trim(rest.substr(where_pos + 7)));
      }
      std::istringstream args(head);
      std::string date;
      args >> date;
      std::string gran_text;
      std::getline(args, gran_text);
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(date));
      DWRED_ASSIGN_OR_RETURN(
          auto gran,
          ParseGranularityList(CurSubcubes().context(), Trim(gran_text)));
      std::shared_ptr<PredExpr> pred;
      if (!pred_text.empty()) {
        DWRED_ASSIGN_OR_RETURN(
            pred, ParsePredicate(CurSubcubes().context(), pred_text));
      }
      obs::OpProfile profile;
      DWRED_ASSIGN_OR_RETURN(
          MultidimensionalObject result,
          CurSubcubes().Query(pred.get(), &gran, day.index,
                              /*assume_synchronized=*/true, /*parallel=*/true,
                              /*pinned_epoch=*/nullptr, &profile));
      if (profile.op.empty()) {
        std::printf("explain: profiling disabled (DWRED_PROFILE_DISABLED)\n");
      } else {
        std::printf("%s", profile.Render().c_str());
      }
      std::printf("result: %zu cells\n", result.num_facts());
      return Status::OK();
    }
    if (cmd == "slowlog") {
      std::printf("%s", obs::FlightRecorder::Global().Render().c_str());
      return Status::OK();
    }
    if (cmd == "trace-tree") {
      if (!obs::TraceBuffer::Global().enabled()) {
        std::printf("trace-tree: trace buffer disabled (run with --trace=)\n");
        return Status::OK();
      }
      std::printf(
          "%s", obs::RenderTraceTree(obs::TraceBuffer::Global().Snapshot())
                    .c_str());
      return Status::OK();
    }
    if (cmd == "storage") {
      DWRED_RETURN_IF_ERROR(RequireSubcubes());
      const SubcubeManager& m = CurSubcubes();
      for (size_t i = 0; i < m.num_subcubes(); ++i) {
        const Subcube& cube = m.subcube(i);
        const FactTable& t = cube.table;
        size_t phys = 0, dead = 0;
        for (size_t s = 0; s < t.num_segments(); ++s) {
          phys += t.SegmentPhysicalRows(s);
          dead += t.SegmentTombstones(s);
        }
        std::printf(
            "%s: %zu segments, %zu rows, %zu tombstones (%.1f%%), %s "
            "(row-equivalent %s, saved %s)\n",
            cube.name.c_str(), t.num_segments(), t.num_rows(), dead,
            phys == 0 ? 0.0 : 100.0 * static_cast<double>(dead) /
                                  static_cast<double>(phys),
            HumanBytes(t.Bytes()).c_str(),
            HumanBytes(t.RowEquivalentBytes()).c_str(),
            HumanBytes(t.RowEquivalentBytes() - t.Bytes()).c_str());
        constexpr size_t kMaxSegments = 8;
        for (size_t s = 0; s < t.num_segments() && s < kMaxSegments; ++s) {
          std::printf("  seg %zu [%zu, %zu) %s live=%zu/%zu",
                      s, static_cast<size_t>(t.SegmentBegin(s)),
                      static_cast<size_t>(t.SegmentBegin(s)) +
                          t.SegmentLiveRows(s),
                      t.SegmentSealed(s)
                          ? (t.SegmentEncoded(s) ? "sealed/columnar" : "sealed")
                          : "tail",
                      t.SegmentLiveRows(s), t.SegmentPhysicalRows(s));
          for (DimensionId d = 0; d < t.num_dims(); ++d) {
            std::printf(" %s=[%s..%s]", dims[d]->name().c_str(),
                        dims[d]->value_name(t.SegmentDimMin(s, d)).c_str(),
                        dims[d]->value_name(t.SegmentDimMax(s, d)).c_str());
          }
          std::printf("\n");
          // Per-column physical layout: encoding + resident bytes.
          std::printf("    cols:");
          for (DimensionId d = 0; d < t.num_dims(); ++d) {
            std::printf(" %s=%s/%zuB", dims[d]->name().c_str(),
                        storage::EncodingName(t.SegmentDimEncoding(s, d)),
                        t.SegmentDimBytes(s, d));
          }
          for (size_t mi = 0; mi < t.num_measures(); ++mi) {
            std::printf(" m%zu=%s/%zuB", mi,
                        storage::EncodingName(t.SegmentMeasureEncoding(s, mi)),
                        t.SegmentMeasureBytes(s, mi));
          }
          std::printf(" total=%zuB\n", t.SegmentBytes(s));
        }
        if (t.num_segments() > kMaxSegments) {
          std::printf("  ... (%zu more segments)\n",
                      t.num_segments() - kMaxSegments);
        }
      }
      return Status::OK();
    }
    if (cmd == "cache") {
      DWRED_RETURN_IF_ERROR(RequireSubcubes());
      cache::WarehouseCache& wc = CurSubcubes().warehouse_cache();
      if (Trim(rest) == "clear") {
        wc.Clear();
        std::printf("cache cleared\n");
        return Status::OK();
      }
      if (!Trim(rest).empty()) {
        return Status::InvalidArgument("usage: cache [clear]");
      }
      cache::WarehouseCache::Stats st = wc.GetStats();
      auto& reg = obs::MetricsRegistry::Global();
      std::printf("cache %s: epoch=%llu\n",
                  cache::Enabled() ? "enabled" : "disabled (DWRED_CACHE_DISABLED)",
                  static_cast<unsigned long long>(st.epoch));
      std::printf("  query entries=%zu scanspec entries=%zu bytes=%s "
                  "(budget %zu entries, %s)\n",
                  st.query_entries, st.scanspec_entries,
                  HumanBytes(st.bytes).c_str(), st.max_entries,
                  HumanBytes(st.max_bytes).c_str());
      std::printf("  query hits=%llu misses=%llu | scanspec hits=%llu "
                  "misses=%llu | evictions=%llu invalidations=%llu\n",
                  static_cast<unsigned long long>(
                      reg.GetCounter("dwred_cache_query_hits", "").Value()),
                  static_cast<unsigned long long>(
                      reg.GetCounter("dwred_cache_query_misses", "").Value()),
                  static_cast<unsigned long long>(
                      reg.GetCounter("dwred_cache_scanspec_hits", "").Value()),
                  static_cast<unsigned long long>(
                      reg.GetCounter("dwred_cache_scanspec_misses", "").Value()),
                  static_cast<unsigned long long>(
                      reg.GetCounter("dwred_cache_evictions", "").Value()),
                  static_cast<unsigned long long>(
                      reg.GetCounter("dwred_cache_invalidations", "").Value()));
      return Status::OK();
    }
    return Status::InvalidArgument("unknown command: " + cmd);
  }
};

/// Remote mode (--connect=host:port): the same script surface, but every
/// command is shipped to a dwredd as one protocol request (docs/SERVER.md).
/// Commands that build a warehouse in-process (init, attach, reduce, ...)
/// are rejected — the server owns the warehouse. Transport failures (server
/// gone mid-command, short read, EPIPE) surface as Status::Unavailable and
/// exit code 6, never a hang or a silent exit 0.
struct RemoteShell {
  net::Client client;
  uint32_t deadline_ms = 0;
  uint64_t max_rows = 0;
  std::string staged_actions;  ///< `action` lines awaiting `apply <date>`

  net::Request Base(net::Command cmd) const {
    net::Request req;
    req.cmd = cmd;
    req.deadline_ms = deadline_ms;
    req.max_rows = max_rows;
    return req;
  }

  /// Ships one request; a non-OK response becomes its Status, an OK response
  /// prints its body.
  Status CallAndPrint(const net::Request& req) {
    DWRED_ASSIGN_OR_RETURN(net::Response resp, client.Call(req));
    if (resp.code != StatusCode::kOk) {
      return Status(resp.code, resp.message);
    }
    if (!resp.body.empty()) {
      std::printf("%s%s", resp.body.c_str(),
                  resp.body.back() == '\n' ? "" : "\n");
    }
    return Status::OK();
  }

  Status Run(std::string_view cmdline) {
    std::string_view line = Trim(cmdline);
    if (line.empty() || line[0] == '#') return Status::OK();
    std::istringstream in{std::string(line)};
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    rest = std::string(Trim(rest));

    if (cmd == "echo") {
      std::printf("%s\n", rest.c_str());
      return Status::OK();
    }
    if (cmd == "ping") {
      return CallAndPrint(Base(net::Command::kPing));
    }
    if (cmd == "subcube-query" || cmd == "explain") {
      // subcube-query <date> <granularity list> [where <predicate>]
      std::string head = rest;
      std::string pred_text;
      size_t where_pos = rest.find(" where ");
      if (where_pos != std::string::npos) {
        head = rest.substr(0, where_pos);
        pred_text = std::string(Trim(rest.substr(where_pos + 7)));
      }
      std::istringstream args(head);
      std::string date;
      args >> date;
      std::string gran_text;
      std::getline(args, gran_text);
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(date));
      net::Request req = Base(net::Command::kQuery);
      req.now_day = day.index;
      req.a = pred_text;
      req.b = std::string(Trim(gran_text));
      if (cmd == "explain") {
        // Match the local explain: the synchronized + parallel pruned path,
        // profile rendered after the result.
        req.flags = net::kQuerySynchronized | net::kQueryParallel |
                    net::kQueryExplain;
      }
      return CallAndPrint(req);
    }
    if (cmd == "subcube-sync") {
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(rest));
      if (day.unit != TimeUnit::kDay) {
        return Status::InvalidArgument("expected a day, e.g. 2000/11/5");
      }
      net::Request req = Base(net::Command::kSynchronize);
      req.now_day = day.index;
      return CallAndPrint(req);
    }
    if (cmd == "load-facts" || cmd == "subcube-load") {
      DWRED_ASSIGN_OR_RETURN(std::string csv, ReadFile(rest));
      net::Request req = Base(net::Command::kInsert);
      req.a = std::move(csv);
      return CallAndPrint(req);
    }
    if (cmd == "action") {
      if (rest.empty()) return Status::InvalidArgument("action: empty text");
      staged_actions += rest;
      staged_actions += '\n';
      std::printf("staged (remote): %s\n", rest.c_str());
      return Status::OK();
    }
    if (cmd == "apply") {
      DWRED_ASSIGN_OR_RETURN(TimeGranule day, ParseGranule(rest));
      if (day.unit != TimeUnit::kDay) {
        return Status::InvalidArgument("expected a day, e.g. 2000/11/5");
      }
      net::Request req = Base(net::Command::kSpecChange);
      req.now_day = day.index;
      req.a = staged_actions;
      Status st = CallAndPrint(req);
      if (st.ok()) staged_actions.clear();
      return st;
    }
    if (cmd == "metrics" || cmd == "stats") {
      return CallAndPrint(Base(net::Command::kStats));
    }
    if (cmd == "metrics-json") {
      net::Request req = Base(net::Command::kStats);
      req.flags = net::kStatsJson;
      return CallAndPrint(req);
    }
    if (cmd == "cache") {
      if (!rest.empty() && rest != "clear") {
        return Status::InvalidArgument("usage: cache [clear]");
      }
      net::Request req = Base(net::Command::kCacheCtl);
      req.a = rest;
      return CallAndPrint(req);
    }
    if (cmd == "snapshot-crc") {
      return CallAndPrint(Base(net::Command::kSnapshotCrc));
    }
    if (cmd == "shutdown") {
      return CallAndPrint(Base(net::Command::kShutdown));
    }
    return Status::InvalidArgument(
        "command not available over --connect (the server owns the "
        "warehouse): " + cmd);
  }
};

/// Maps a Status code to the process exit code documented in --help. The
/// abort codes get distinct values so scripts and supervisors can tell a
/// timed-out command from a plain failure without parsing stderr.
int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kCancelled: return 3;
    case StatusCode::kDeadlineExceeded: return 4;
    case StatusCode::kResourceExhausted: return 5;
    case StatusCode::kUnavailable: return 6;
    default: return 1;
  }
}

void PrintHelp(const char* argv0) {
  std::printf(
      "usage: %s [stats] [--trace=<file.jsonl>] [--deadline-ms=<n>] "
      "[--max-rows=<n>] [--connect=<host:port>] <script.dwred | ->\n"
      "       %s recover <dir>\n"
      "       %s trace-tree <file.jsonl>\n"
      "\n"
      "flags:\n"
      "  --trace=<file>     record a JSON-lines span trace of the run\n"
      "  --deadline-ms=<n>  per-command deadline: each script command gets a\n"
      "                     fresh n-millisecond budget; a command that runs\n"
      "                     past it aborts cleanly (DeadlineExceeded)\n"
      "  --max-rows=<n>     per-command row budget: a command that charges\n"
      "                     more than n rows aborts (ResourceExhausted)\n"
      "  --connect=<h:p>    remote mode: ship each command to a dwredd\n"
      "                     (docs/SERVER.md); deadline/budget flags travel\n"
      "                     in the request and are enforced server-side\n"
      "  stats              dump the metrics registry after the script\n"
      "\n"
      "exit codes:\n"
      "  0  success\n"
      "  1  a command failed (Status printed on stderr, mid-stream)\n"
      "  2  usage error, unreadable input, or trace-write failure\n"
      "  3  command cancelled (Cancelled)\n"
      "  4  command exceeded its deadline (DeadlineExceeded)\n"
      "  5  budget exceeded or admission shed (ResourceExhausted)\n"
      "  6  server unavailable: connect refused, disconnect mid-command,\n"
      "     short read, or timed-out response (Unavailable)\n",
      argv0, argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_stats = false;
  std::string trace_path;
  std::string connect_spec;
  int64_t deadline_ms = 0;
  int64_t max_rows = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp(argv[0]);
      return 0;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace=").size());
      if (trace_path.empty()) {
        std::fprintf(stderr, "--trace= requires a file path\n");
        return 2;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      std::string v = arg.substr(std::string("--deadline-ms=").size());
      if (!ParseInt64(v, &deadline_ms) || deadline_ms < 1) {
        std::fprintf(stderr, "--deadline-ms= requires a positive integer\n");
        return 2;
      }
    } else if (arg.rfind("--max-rows=", 0) == 0) {
      std::string v = arg.substr(std::string("--max-rows=").size());
      if (!ParseInt64(v, &max_rows) || max_rows < 1) {
        std::fprintf(stderr, "--max-rows= requires a positive integer\n");
        return 2;
      }
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_spec = arg.substr(std::string("--connect=").size());
      if (connect_spec.empty()) {
        std::fprintf(stderr, "--connect= requires host:port\n");
        return 2;
      }
    } else if (arg == "stats" && positional.empty()) {
      dump_stats = true;
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.size() == 2 && positional[0] == "trace-tree") {
    auto r = ReadFile(positional[1]);
    if (!r.ok()) {
      std::fprintf(stderr, "trace-tree: %s\n", r.status().ToString().c_str());
      return 2;
    }
    std::vector<obs::TraceEvent> events;
    if (!obs::ParseTraceJsonLines(r.value(), &events)) {
      std::fprintf(stderr, "trace-tree: %s holds no trace events\n",
                   positional[1].c_str());
      return 1;
    }
    std::printf("%s", obs::RenderTraceTree(events).c_str());
    return 0;
  }
  if (positional.size() == 2 && positional[0] == "recover") {
    RecoveryStats rs;
    auto rec = RecoverWarehouse(positional[1], &rs);
    if (!rec.ok()) {
      std::fprintf(stderr, "recover: %s\n", rec.status().ToString().c_str());
      return 1;
    }
    Status cp = rec.value()->Checkpoint();
    if (!cp.ok()) {
      std::fprintf(stderr, "recover: checkpoint failed: %s\n",
                   cp.ToString().c_str());
      return 1;
    }
    std::printf(
        "recovered %s to lsn %llu: %zu ops replayed, %zu intents rolled "
        "back, %zu torn bytes discarded\n",
        positional[1].c_str(),
        static_cast<unsigned long long>(rs.recovered_lsn), rs.ops_replayed,
        rs.intents_rolled_back, rs.journal_torn_bytes);
    return 0;
  }
  if (positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: %s [stats] [--trace=<file.jsonl>] "
                 "[--deadline-ms=<n>] [--max-rows=<n>] "
                 "<script.dwred | -> | %s recover <dir> | "
                 "%s trace-tree <file.jsonl>  (see --help)\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  if (!trace_path.empty()) obs::TraceBuffer::Global().Enable();

  std::string script;
  if (positional[0] == "-") {
    std::ostringstream all;
    all << std::cin.rdbuf();
    script = all.str();
  } else {
    auto r = ReadFile(positional[0]);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 2;
    }
    script = r.take();
  }

  if (!connect_spec.empty()) {
    // Remote mode: parse, connect, then ship the script line by line. A
    // transport failure mid-stream (server killed, short read, EPIPE) stops
    // the script with exit 6 and the Status on stderr — never exit 0.
    auto hp = net::ParseHostPort(connect_spec);
    if (!hp.ok()) {
      std::fprintf(stderr, "--connect: %s\n", hp.status().ToString().c_str());
      return 2;
    }
    auto conn = net::Client::Connect(hp.value().host, hp.value().port);
    if (!conn.ok()) {
      std::fprintf(stderr, "--connect: %s\n",
                   conn.status().ToString().c_str());
      return 6;
    }
    RemoteShell remote;
    remote.client = conn.take();
    if (deadline_ms > 0) remote.deadline_ms = static_cast<uint32_t>(deadline_ms);
    if (max_rows > 0) remote.max_rows = static_cast<uint64_t>(max_rows);
    int rrc = 0;
    size_t line_no = 0;
    for (const std::string& line : Split(script, '\n')) {
      ++line_no;
      Status st = remote.Run(line);
      if (!st.ok()) {
        std::fprintf(stderr, "line %zu: %s\n  %s\n", line_no,
                     st.ToString().c_str(), line.c_str());
        rrc = ExitCodeFor(st.code());
        break;
      }
    }
    if (dump_stats) {
      std::printf("%s", obs::MetricsRegistry::Global().RenderText().c_str());
    }
    return rrc;
  }

  int rc = 0;
  {
    Shell shell;
    size_t line_no = 0;
    for (const std::string& line : Split(script, '\n')) {
      ++line_no;
      // Each command gets a fresh operation context: the deadline restarts
      // per command (a slow command can't starve the next one of budget it
      // already burned) and the row budget is per command too.
      runtime::OpContext ctx;
      if (deadline_ms > 0) ctx.deadline = runtime::Deadline::AfterMillis(deadline_ms);
      if (max_rows > 0) ctx.SetMaxRows(max_rows);
      Status st;
      {
        runtime::ScopedOpContext scope(ctx);
        st = shell.Run(line);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "line %zu: %s\n  %s\n", line_no,
                     st.ToString().c_str(), line.c_str());
        rc = ExitCodeFor(st.code());
        break;
      }
    }
  }

  // The registry dump and trace flush run even when the script failed —
  // the partial numbers are exactly what one wants when debugging a script.
  if (dump_stats) {
    std::printf("%s", obs::MetricsRegistry::Global().RenderText().c_str());
  }
  if (!trace_path.empty()) {
    if (!obs::TraceBuffer::Global().WriteTo(trace_path)) {
      std::fprintf(stderr, "--trace: cannot write %s\n", trace_path.c_str());
      if (rc == 0) rc = 2;
    }
  }
  return rc;
}
