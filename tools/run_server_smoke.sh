#!/bin/sh
# End-to-end dwredd smoke (also the CI server-smoke job): boot the daemon on
# an ephemeral port, drive the full command surface through dwredctl
# --connect, hammer the warm query path with the pipelined load generator,
# and require the warehouse snapshot CRC to be byte-identical before and
# after the read-only load.
#
# usage: run_server_smoke.sh <dwredd> <dwredctl> <dwred_loadgen> <demo_dir>
set -eu

# Resolve to absolute paths: the drive script runs with the demo directory
# as its cwd (the CSVs are referenced relative).
abspath() { printf '%s/%s\n' "$(cd "$(dirname "$1")" && pwd)" "$(basename "$1")"; }
DWREDD="$(abspath "$1")"
DWREDCTL="$(abspath "$2")"
LOADGEN="$(abspath "$3")"
DEMO_DIR="$(cd "$4" && pwd)"

WORK="$(mktemp -d /tmp/dwred_server_smoke.XXXXXX)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Boot on an ephemeral port; the listener line is the parse contract.
"$DWREDD" --port=0 > "$WORK/dwredd.out" 2> "$WORK/dwredd.err" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 300); do
  ADDR="$(sed -n 's/^dwredd listening on //p' "$WORK/dwredd.out")"
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "dwredd died during boot:"; cat "$WORK/dwredd.err"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "dwredd never printed its listener line"; exit 1; }
echo "server at $ADDR"

# The whole mutating surface once: insert the paper's Table 2 clicks on top
# of the built-in example, install {a1, a2}, synchronize, then read back.
cat > "$WORK/drive.dwred" <<EOF
ping
load-facts $DEMO_DIR/clicks.csv
action a1: a[Time.month, URL.domain] s[URL.domain_grp = .com AND NOW - 12 months <= Time.month <= NOW - 6 months]
action a2: a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND Time.quarter <= NOW - 4 quarters]
apply 2000/11/5
subcube-sync 2000/11/5
subcube-query 2000/11/5 Time.month, URL.domain
explain 2000/11/5 Time.month, URL.domain where URL.domain_grp = .com
cache
metrics
snapshot-crc
EOF
(cd "$DEMO_DIR" && "$DWREDCTL" --connect="$ADDR" "$WORK/drive.dwred") \
  > "$WORK/drive.out"
grep -q "cells" "$WORK/drive.out" || {
  echo "no query result in remote drive output:"; cat "$WORK/drive.out"
  exit 1; }

CRC_BEFORE="$(sed -n 's/^crc=\([0-9]*\) .*/\1/p' "$WORK/drive.out" | tail -1)"
[ -n "$CRC_BEFORE" ] || { echo "no snapshot-crc in output"; exit 1; }
echo "warehouse crc before load: $CRC_BEFORE"

# Read-only load at fixed concurrency; --expect-crc re-fetches the CRC after
# the run, so a single diverged byte fails the whole job.
"$LOADGEN" --connect="$ADDR" --connections=4 --requests=500 --pipeline=16 \
  --pred='URL.domain_grp = .com' --gran='Time.month, URL.domain' \
  --now-day=11266 --expect-crc="$CRC_BEFORE"

# Clean shutdown completes the session lifecycle; the daemon must exit 0.
printf 'shutdown\n' | "$DWREDCTL" --connect="$ADDR" -
wait "$SERVER_PID"
grep -q "shut down cleanly" "$WORK/dwredd.out" || {
  echo "dwredd did not shut down cleanly:"; cat "$WORK/dwredd.out"; exit 1; }
echo "server smoke OK"
