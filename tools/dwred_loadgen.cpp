// dwred_loadgen — pipelined load generator for dwredd (docs/SERVER.md).
// Opens N connections, each on its own thread, and drives R requests per
// connection in pipelined windows of K frames. Reports aggregate throughput
// and per-connection failures.
//
//   $ dwred_loadgen --connect=127.0.0.1:7070 --connections=8
//       --requests=20000 --pipeline=32
//       --pred='URL.domain_grp = .com' --gran='Time.month, URL.domain_grp'
//       --now-day=12300 --synchronized
//
// Any non-OK response or transport failure stops that connection and fails
// the run: stderr gets the Status, the process exits 1. --expect-crc=<u32>
// additionally fetches snapshot_crc after the load and compares — the
// wire-vs-embedded differential anchor used by the CI server-smoke job.
//
// Exit codes: 0 success, 1 failed run (response/transport/CRC), 2 usage.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "net/client.h"

using namespace dwred;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connections = 8;
  int requests = 10000;   ///< per connection
  int pipeline = 16;      ///< frames in flight per connection
  std::string command = "query";  ///< "query" or "ping"
  std::string pred;
  std::string gran;
  int64_t now_day = 0;
  bool synchronized = false;
  uint32_t deadline_ms = 0;
  bool has_expect_crc = false;
  uint32_t expect_crc = 0;
};

net::Request BuildRequest(const Options& opt) {
  net::Request req;
  if (opt.command == "ping") {
    req.cmd = net::Command::kPing;
    return req;
  }
  req.cmd = net::Command::kQuery;
  req.deadline_ms = opt.deadline_ms;
  req.now_day = opt.now_day;
  req.a = opt.pred;
  req.b = opt.gran;
  if (opt.synchronized) req.flags |= net::kQuerySynchronized;
  return req;
}

/// One connection's worth of load. Returns false (with stderr detail) on the
/// first non-OK response or transport failure.
bool RunConnection(const Options& opt, int conn_id) {
  auto client = net::Client::Connect(opt.host, opt.port);
  if (!client.ok()) {
    std::fprintf(stderr, "conn %d: %s\n", conn_id,
                 client.status().ToString().c_str());
    return false;
  }
  net::Client c = client.take();
  const net::Request req = BuildRequest(opt);
  std::vector<net::Request> window;
  int sent_total = 0;
  while (sent_total < opt.requests) {
    const int n =
        std::min(opt.pipeline, opt.requests - sent_total);
    window.assign(static_cast<size_t>(n), req);
    Status st = c.SendPipelined(window.data(), window.size());
    if (!st.ok()) {
      std::fprintf(stderr, "conn %d: %s\n", conn_id, st.ToString().c_str());
      return false;
    }
    for (int i = 0; i < n; ++i) {
      auto resp = c.Recv();
      if (!resp.ok()) {
        std::fprintf(stderr, "conn %d: %s\n", conn_id,
                     resp.status().ToString().c_str());
        return false;
      }
      if (resp.value().code != StatusCode::kOk) {
        std::fprintf(stderr, "conn %d: server: %s: %s\n", conn_id,
                     StatusCodeName(resp.value().code),
                     resp.value().message.c_str());
        return false;
      }
    }
    sent_total += n;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::IgnoreSigpipe();
  Options opt;
  std::string connect_spec;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto int_flag = [&](const char* name, int64_t lo, int64_t hi,
                        int64_t* out) {
      std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      int64_t v = 0;
      if (!ParseInt64(arg.substr(prefix.size()), &v) || v < lo || v > hi) {
        std::fprintf(stderr, "%s requires an integer in [%lld, %lld]\n",
                     prefix.c_str(), static_cast<long long>(lo),
                     static_cast<long long>(hi));
        std::exit(2);
      }
      *out = v;
      return true;
    };
    int64_t v = 0;
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s --connect=<host:port> [--connections=<n>] "
          "[--requests=<n per conn>] [--pipeline=<k>] "
          "[--command=query|ping] [--pred=<text>] [--gran=<list>] "
          "[--now-day=<n>] [--synchronized] [--deadline-ms=<n>] "
          "[--expect-crc=<u32>]\n",
          argv[0]);
      return 0;
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_spec = arg.substr(std::string("--connect=").size());
    } else if (int_flag("--connections", 1, 1024, &v)) {
      opt.connections = static_cast<int>(v);
    } else if (int_flag("--requests", 1, 100000000, &v)) {
      opt.requests = static_cast<int>(v);
    } else if (int_flag("--pipeline", 1, 4096, &v)) {
      opt.pipeline = static_cast<int>(v);
    } else if (int_flag("--now-day", 0, (int64_t)1 << 40, &v)) {
      opt.now_day = v;
    } else if (int_flag("--deadline-ms", 1, 3600000, &v)) {
      opt.deadline_ms = static_cast<uint32_t>(v);
    } else if (int_flag("--expect-crc", 0, 0xffffffffll, &v)) {
      opt.has_expect_crc = true;
      opt.expect_crc = static_cast<uint32_t>(v);
    } else if (arg.rfind("--command=", 0) == 0) {
      opt.command = arg.substr(std::string("--command=").size());
      if (opt.command != "query" && opt.command != "ping") {
        std::fprintf(stderr, "--command= must be query or ping\n");
        return 2;
      }
    } else if (arg.rfind("--pred=", 0) == 0) {
      opt.pred = arg.substr(std::string("--pred=").size());
    } else if (arg.rfind("--gran=", 0) == 0) {
      opt.gran = arg.substr(std::string("--gran=").size());
    } else if (arg == "--synchronized") {
      opt.synchronized = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    }
  }
  if (connect_spec.empty()) {
    std::fprintf(stderr, "--connect=<host:port> is required (see --help)\n");
    return 2;
  }
  auto hp = net::ParseHostPort(connect_spec);
  if (!hp.ok()) {
    std::fprintf(stderr, "--connect: %s\n", hp.status().ToString().c_str());
    return 2;
  }
  opt.host = hp.value().host;
  opt.port = hp.value().port;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < opt.connections; ++c) {
    threads.emplace_back([&opt, &failures, c] {
      if (!RunConnection(opt, c)) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  const long long total =
      static_cast<long long>(opt.connections) * opt.requests;
  std::printf("%lld %s requests over %d connections in %.3fs: %.0f req/s\n",
              total, opt.command.c_str(), opt.connections, secs,
              secs > 0 ? static_cast<double>(total) / secs : 0.0);
  if (failures.load() != 0) {
    std::fprintf(stderr, "%d of %d connections failed\n", failures.load(),
                 opt.connections);
    return 1;
  }

  if (opt.has_expect_crc) {
    auto client = net::Client::Connect(opt.host, opt.port);
    if (!client.ok()) {
      std::fprintf(stderr, "--expect-crc: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    net::Client c = client.take();
    net::Request req;
    req.cmd = net::Command::kSnapshotCrc;
    auto resp = c.Call(req);
    if (!resp.ok() || resp.value().code != StatusCode::kOk) {
      std::fprintf(stderr, "--expect-crc: %s\n",
                   (resp.ok() ? Status(resp.value().code,
                                       resp.value().message)
                              : resp.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    const std::string want = "crc=" + std::to_string(opt.expect_crc) + " ";
    if (resp.value().body.rfind(want, 0) != 0) {
      std::fprintf(stderr,
                   "--expect-crc: warehouse diverged: expected %u, server "
                   "says %s\n",
                   opt.expect_crc, resp.value().body.c_str());
      return 1;
    }
    std::printf("snapshot crc verified: %s\n", resp.value().body.c_str());
  }
  return 0;
}
