// B13 — columnar segment layout with vectorized scan (docs/STORAGE.md
// "Columnar layout"): sealed segments hold per-column dictionary/RLE
// encodings chosen at seal time, and the scan consumers evaluate compiled
// predicates chunk-at-a-time (vm::PredProgram::EvalBatch) with late
// materialization. This bench pins both claims on the cold, unpruned retail
// warehouse:
//
//   * speed — the columnar=1 rows (encoded segments + batch path) against
//     their columnar=0 twins (plain segments + the PR-8 compiled row path),
//     same thread count, caches disabled, full-history window so zone-map
//     pruning keeps every segment;
//   * space — `bytes_sealed` vs `bytes_sealed_row`: resident bytes of the
//     sealed segments against what the same rows cost un-encoded.
//
// `snapshot_crc` must be identical across columnar on/off and every thread
// count — the layout changes cost, never bytes. tools/bench_diff.py pairs
// the cold rows by thread count (the columnar guard, mirroring the VM guard)
// and fails CI when the columnar row loses to the row-path twin or any CRC
// drifts.
//
// The kill switch is read at *seal* time, so each variant builds its own
// warehouse: columnar=0 rows really store plain rows, not encoded segments
// walked by the row iterator.

#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "exec/thread_pool.h"
#include "io/atomic_file.h"
#include "scan/scan.h"
#include "storage/fact_table.h"
#include "subcube/manager.h"

namespace dwred::bench {
namespace {

struct RetailWarehouse {
  RetailWorkload w;
  std::unique_ptr<SubcubeManager> mgr;
  std::vector<CategoryId> gran;
  int64_t t;
};

// The bench_scan_prune fixture: day-sorted retail facts (preregistered day
// ids ascend chronologically) reduced under the three-tier policy and
// synchronized — the layout an incrementally-loaded warehouse converges to,
// where date runs RLE-compress and low-cardinality dimensions dict-pack.
RetailWarehouse MakeRetailWarehouse(size_t n) {
  RetailWarehouse wh;
  wh.w = MakeRetailWorkload(n, /*preregister_days=*/true);
  const MultidimensionalObject& mo = *wh.w.mo;
  ReductionSpecification spec = TakeOrAbort(MakeRetailPolicy(mo));
  wh.mgr = std::make_unique<SubcubeManager>(
      SubcubeManager::Create("Sale", mo.dimensions(),
                             std::vector<MeasureType>(mo.measure_types()),
                             spec)
          .take());

  std::vector<FactId> order(mo.num_facts());
  std::iota(order.begin(), order.end(), FactId{0});
  std::stable_sort(order.begin(), order.end(), [&](FactId a, FactId b) {
    return mo.Coord(a, 0) < mo.Coord(b, 0);
  });
  MultidimensionalObject sorted("Sale", mo.dimensions(),
                                std::vector<MeasureType>(mo.measure_types()));
  std::vector<ValueId> c(mo.num_dimensions());
  std::vector<int64_t> m(mo.num_measures());
  for (FactId f : order) {
    for (DimensionId d = 0; d < mo.num_dimensions(); ++d) {
      c[d] = mo.Coord(f, d);
    }
    for (MeasureId i = 0; i < mo.num_measures(); ++i) {
      m[i] = mo.Measure(f, i);
    }
    TakeOrAbort(sorted.AddBottomFact(c, m));
  }
  Status st = wh.mgr->InsertBottomFacts(sorted);
  if (!st.ok()) {
    std::fprintf(stderr, "benchmark setup failed: %s\n", st.ToString().c_str());
    std::abort();
  }

  wh.t = DaysFromCivil({2002, 1, 1});
  TakeOrAbort(wh.mgr->Synchronize(wh.t));
  wh.gran = ParseGranularityList(wh.mgr->context(),
                                 "Time.month, Product.category, Store.region")
                .take();
  return wh;
}

/// CRC32 over a full-fidelity serialization of the result — the differential
/// check: every variant and thread count must report the same value.
uint32_t SnapshotCrc(const MultidimensionalObject& mo) {
  std::ostringstream out;
  out << mo.num_facts() << "\n";
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    out << mo.FactName(f) << "|";
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      out << mo.Coord(f, static_cast<DimensionId>(d)) << ",";
    }
    out << "|";
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      out << mo.Measure(f, static_cast<MeasureId>(m)) << ",";
    }
    out << "\n";
  }
  return Crc32(out.str());
}

/// Resident vs row-equivalent bytes summed over the warehouse's *sealed*
/// segments (the tail stays plain by design and would dilute the ratio).
void SealedBytes(const SubcubeManager& m, size_t* resident, size_t* row_eq) {
  *resident = 0;
  *row_eq = 0;
  for (size_t i = 0; i < m.num_subcubes(); ++i) {
    const FactTable& t = m.subcube(i).table;
    const size_t row_width =
        t.num_dims() * sizeof(ValueId) + t.num_measures() * sizeof(int64_t);
    for (size_t s = 0; s < t.num_segments(); ++s) {
      if (!t.SegmentSealed(s)) continue;
      *resident += t.SegmentBytes(s);
      *row_eq += t.SegmentPhysicalRows(s) * row_width;
    }
  }
}

// Cold (result/program caches disabled), unpruned (full-history window, so
// every segment survives planning and the delta is pure scan-path cost).
// `columnar_on` flips DWRED_COLUMNAR_DISABLED *before* the warehouse is
// built — the encoding decision is seal-time.
void RunColumnarQuery(benchmark::State& state, bool columnar_on, int threads) {
  if (columnar_on) {
    ::unsetenv("DWRED_COLUMNAR_DISABLED");
  } else {
    ::setenv("DWRED_COLUMNAR_DISABLED", "1", 1);
  }
  ::setenv("DWRED_CACHE_DISABLED", "1", 1);
  RetailWarehouse wh = MakeRetailWarehouse(static_cast<size_t>(state.range(0)));
  std::shared_ptr<PredExpr> pred =
      ParsePredicate(wh.mgr->context(), "1999/1/1 <= Time.day <= 2002/12/31")
          .take();
  exec::ThreadPool::ResetGlobal(threads);
  const bool parallel = threads > 1;
  uint32_t crc = 0;
  for (auto _ : state) {
    auto r = wh.mgr->Query(pred.get(), &wh.gran, wh.t,
                           /*assume_synchronized=*/true, parallel);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    crc = SnapshotCrc(r.value());
    benchmark::DoNotOptimize(crc);
  }
  size_t sealed = 0, sealed_row = 0;
  SealedBytes(*wh.mgr, &sealed, &sealed_row);
  state.counters["snapshot_crc"] = static_cast<double>(crc);
  state.counters["threads"] = threads;
  state.counters["columnar"] = columnar_on ? 1 : 0;
  state.counters["cold"] = 1;
  state.counters["bytes_sealed"] = static_cast<double>(sealed);
  state.counters["bytes_sealed_row"] = static_cast<double>(sealed_row);
  state.counters["compression_x"] =
      sealed == 0 ? 0.0
                  : static_cast<double>(sealed_row) / static_cast<double>(sealed);
  state.SetItemsProcessed(static_cast<int64_t>(state.range(0)) *
                          state.iterations());
  exec::ThreadPool::ResetGlobal(0);  // back to the DWRED_THREADS default
  ::unsetenv("DWRED_COLUMNAR_DISABLED");
  ::unsetenv("DWRED_CACHE_DISABLED");
}

// The headline pair: serial cold unpruned scan, columnar on vs off.
// tools/bench_diff.py matches these rows (same threads, cold == 1, by the
// `columnar` counter) and fails when the batch path loses to the row path.
void BM_ColumnarScanColdColumnar(benchmark::State& state) {
  RunColumnarQuery(state, /*columnar_on=*/true, /*threads=*/1);
}
BENCHMARK(BM_ColumnarScanColdColumnar)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_ColumnarScanColdRow(benchmark::State& state) {
  RunColumnarQuery(state, /*columnar_on=*/false, /*threads=*/1);
}
BENCHMARK(BM_ColumnarScanColdRow)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Thread sweep x columnar on/off: eight rows in the sidecar, one
// snapshot_crc.
void BM_ColumnarScanSweep(benchmark::State& state) {
  RunColumnarQuery(state, state.range(2) != 0,
                   static_cast<int>(state.range(1)));
}
BENCHMARK(BM_ColumnarScanSweep)
    ->ArgsProduct({{1000000}, {1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
