// B1 — storage reduction (the paper's headline claim: "huge storage gains
// while ensuring the retention of essential data", Abstract / Section 1).
//
// Sweeps fact count x policy depth; each iteration reduces a 3-year
// click-stream warehouse at a NOW where the whole history has aged into the
// policy's tiers. Counters report output facts, bytes and the reduction
// factor. Expected shape: factors grow with policy depth (year-level tiers
// collapse thousands of clicks per cell) and with warehouse age.

#include "bench_common.h"

namespace dwred::bench {
namespace {

void BM_StorageReduction(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  const int tiers = static_cast<int>(state.range(1));
  ClickstreamWorkload w = MakeWorkload(facts);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, tiers));
  const int64_t t = DaysFromCivil({2003, 1, 1});  // history is 1-4 years old

  size_t out_facts = 0, out_bytes = 0;
  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t, {/*track_provenance=*/false});
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    out_facts = reduced.value().num_facts();
    out_bytes = reduced.value().FactBytes();
    benchmark::DoNotOptimize(out_facts);
  }
  state.counters["facts_in"] = static_cast<double>(facts);
  state.counters["facts_out"] = static_cast<double>(out_facts);
  state.counters["bytes_in"] = static_cast<double>(w.mo->FactBytes());
  state.counters["bytes_out"] = static_cast<double>(out_bytes);
  state.counters["reduction_x"] =
      out_bytes ? static_cast<double>(w.mo->FactBytes()) /
                      static_cast<double>(out_bytes)
                : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
}

BENCHMARK(BM_StorageReduction)
    ->ArgsProduct({{10000, 100000, 1000000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

// Storage trajectory as the warehouse ages: reduction factor at increasing
// NOW, full 3-tier policy (the gradual change of Figure 3 at scale).
void BM_StorageReductionByAge(benchmark::State& state) {
  const int years_after = static_cast<int>(state.range(0));
  ClickstreamWorkload w = MakeWorkload(100000);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  const int64_t t = DaysFromCivil({2002 + years_after, 1, 1});

  size_t out_bytes = 0;
  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t, {false});
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    out_bytes = reduced.value().FactBytes();
    benchmark::DoNotOptimize(out_bytes);
  }
  state.counters["reduction_x"] =
      static_cast<double>(w.mo->FactBytes()) / static_cast<double>(out_bytes);
}

BENCHMARK(BM_StorageReductionByAge)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
