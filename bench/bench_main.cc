// Custom benchmark main shared by every dwred bench binary (replaces
// benchmark::benchmark_main). Adds two harness features on top of the stock
// driver:
//
//   --threads=N   size the global exec pool before any benchmark runs
//                 (exported as DWRED_THREADS so forked helpers agree);
//                 N=1 is the exact serial fallback
//
//   DWRED_BENCH_SIDECAR=path.json
//                 when set and no --benchmark_out was given, the run also
//                 writes google-benchmark's JSON report to `path.json` — the
//                 machine-readable sweep record EXPERIMENTS.md tracks
//
// The obs metrics sidecar (DWRED_METRICS_SIDECAR, bench_common.h) is
// orthogonal and still applies.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/thread_pool.h"

int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> owned;  // storage for injected flags
  args.push_back(argv[0]);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      ::setenv("DWRED_THREADS", argv[i] + 10, 1);
      continue;  // ours, not google-benchmark's
    }
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    args.push_back(argv[i]);
  }
  const char* sidecar = std::getenv("DWRED_BENCH_SIDECAR");
  if (sidecar != nullptr && sidecar[0] != '\0' && !has_out) {
    owned.push_back(std::string("--benchmark_out=") + sidecar);
    owned.push_back("--benchmark_out_format=json");
    for (std::string& s : owned) args.push_back(s.data());
  }
  // Build the pool after DWRED_THREADS is settled (0 = re-read environment).
  dwred::exec::ThreadPool::ResetGlobal(0);

  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
