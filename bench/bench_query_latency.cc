// B2 — query latency on reduced vs. unreduced warehouses (the paper's
// motivation: terabyte warehouses are "hard to manage and query with the
// desired efficiency"; reduction shrinks the fact set queries scan).
//
// Runs the same selection and aggregate-formation queries against the raw
// 3-year warehouse and against its reduction under deeper and deeper
// policies. Expected shape: latency tracks the fact count, so deeper
// policies answer the same historical questions proportionally faster.

#include "bench_common.h"

#include "query/operators.h"

namespace dwred::bench {
namespace {

struct Prepared {
  std::unique_ptr<MultidimensionalObject> mo;
  std::shared_ptr<PredExpr> pred;
  std::vector<CategoryId> gran;
  int64_t t;
};

Prepared Prepare(size_t facts, int tiers) {
  Prepared p;
  ClickstreamWorkload w = MakeWorkload(facts);
  p.t = DaysFromCivil({2003, 1, 1});
  if (tiers == 0) {
    p.mo = std::move(w.mo);
  } else {
    ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, tiers));
    auto reduced = Reduce(*w.mo, spec, p.t, {false});
    p.mo = std::make_unique<MultidimensionalObject>(reduced.take());
  }
  p.pred = ParsePredicate(*p.mo,
                          "URL.domain_grp = .com AND Time.quarter <= 2001Q4")
               .take();
  p.gran = ParseGranularityList(*p.mo, "Time.quarter, URL.domain_grp").take();
  return p;
}

void BM_SelectionLatency(benchmark::State& state) {
  Prepared p = Prepare(static_cast<size_t>(state.range(0)),
                       static_cast<int>(state.range(1)));
  size_t hits = 0;
  for (auto _ : state) {
    auto sel = Select(*p.mo, *p.pred, p.t);
    if (!sel.ok()) {
      state.SkipWithError(sel.status().ToString().c_str());
      return;
    }
    hits = sel.value().mo.num_facts();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["scanned_facts"] = static_cast<double>(p.mo->num_facts());
  state.counters["result_facts"] = static_cast<double>(hits);
  state.SetItemsProcessed(static_cast<int64_t>(p.mo->num_facts()) *
                          state.iterations());
}

BENCHMARK(BM_SelectionLatency)
    ->ArgsProduct({{100000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_AggregationLatency(benchmark::State& state) {
  Prepared p = Prepare(static_cast<size_t>(state.range(0)),
                       static_cast<int>(state.range(1)));
  size_t cells = 0;
  for (auto _ : state) {
    auto agg = AggregateFormation(*p.mo, p.gran,
                                  AggregationApproach::kAvailability, false);
    if (!agg.ok()) {
      state.SkipWithError(agg.status().ToString().c_str());
      return;
    }
    cells = agg.value().num_facts();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["scanned_facts"] = static_cast<double>(p.mo->num_facts());
  state.counters["result_cells"] = static_cast<double>(cells);
  state.SetItemsProcessed(static_cast<int64_t>(p.mo->num_facts()) *
                          state.iterations());
}

BENCHMARK(BM_AggregationLatency)
    ->ArgsProduct({{100000}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
