// Regenerates every table and figure of the paper from the implementation:
//
//   T1   Table 1: the action-specification grammar, demonstrated by parsing
//   T2   Table 2: the example data
//   F1   Figure 1: the example MO (hierarchies + fact signature)
//   F2   Figure 2: the Growing violation of {a1} and the valid {a1, a2}
//   F3   Figure 3: reduced-MO snapshots at 2000/4/5, 2000/6/5, 2000/11/5
//   F4   Figure 4: projection pi[URL][Number_of, Dwell_time]
//   F5   Figure 5: a[Time.month, URL.domain] under the availability approach
//   Q123 Section 6.1: the selection queries and Definition 5 expressions
//   S51  Section 5.1: deleting a NOW-relative action after a fixed replacement
//   S53  Section 5.3: the Growing check that reduces to eq. (29)
//   F6   Figure 6: the subcube architecture
//   F7   Figure 7: subcube synchronization
//   F8   Figure 8: per-subcube query evaluation with combining aggregation
//   F9   Figure 9: querying in the un-synchronized state
//
//   $ ./repro_paper_artifacts [--artifact=F3]

#include <cstdio>
#include <cstring>
#include <string>

#include "mdm/paper_example.h"
#include "query/operators.h"
#include "reduce/dynamics.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "subcube/manager.h"

using namespace dwred;

namespace {

const char* kA1 =
    "p(a[Time.month, URL.domain] s[URL.domain_grp = .com AND "
    "NOW - 12 months <= Time.month <= NOW - 6 months](O))";
const char* kA2 =
    "p(a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
    "Time.quarter <= NOW - 4 quarters](O))";
const char* kA7 =
    "p(a[Time.month, URL.domain] s[Time.month <= NOW - 12 months](O))";
const char* kA8 = "p(a[Time.month, URL.domain] s[Time.month <= 1999/12](O))";

void Header(const char* id, const char* what) {
  std::printf("\n==== %s — %s ====\n", id, what);
}

void PrintMo(const MultidimensionalObject& mo, const char* indent = "  ") {
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    std::printf("%s%s\n", indent, mo.FormatFact(f).c_str());
  }
}

ReductionSpecification SpecA1A2(const MultidimensionalObject& mo) {
  ReductionSpecification spec;
  spec.Add(ParseAction(mo, kA1, "a1").take());
  spec.Add(ParseAction(mo, kA2, "a2").take());
  return spec;
}

void ArtifactT1(const IspExample& ex) {
  Header("T1", "Table 1: action-specification syntax");
  std::printf(
      "  a      ::= p( a[Clist] s[Pexp] (Obj) )\n"
      "  Clist  ::= Dim.category, ...        (exactly one per dimension)\n"
      "  Pexp   ::= P | NOT P | P AND P | P OR P | (P) | true | false\n"
      "  P      ::= Time.cat op tt | Time.cat IN {tt,...}\n"
      "           | Dim.cat op d   | Dim.cat IN {d,...}\n"
      "  tt     ::= fixed time | NOW +/- span ...\n"
      "  op     ::= < | <= | > | >= | = | !=\n\n"
      "Parsed instances:\n");
  for (auto [name, text] : {std::pair{"a1", kA1}, {"a2", kA2},
                            {"a7", kA7}, {"a8", kA8}}) {
    Action a = ParseAction(*ex.mo, text, name).take();
    std::printf("  %s = %s\n", name, a.ToString(*ex.mo).c_str());
  }
}

void ArtifactT2(const IspExample& ex) {
  Header("T2", "Table 2: example data");
  const Dimension& time = *ex.mo->dimension(ex.time_dim);
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  std::printf("  Time dimension (day | week | month | quarter | year):\n");
  for (ValueId v : time.CategoryExtent(static_cast<CategoryId>(TimeUnit::kDay))) {
    TimeGranule d = time.granule(v);
    int64_t day = d.index;
    std::printf("    %-12s %-9s %-8s %-7s %s\n",
                FormatGranule(d).c_str(),
                FormatGranule(GranuleOfDay(day, TimeUnit::kWeek)).c_str(),
                FormatGranule(GranuleOfDay(day, TimeUnit::kMonth)).c_str(),
                FormatGranule(GranuleOfDay(day, TimeUnit::kQuarter)).c_str(),
                FormatGranule(GranuleOfDay(day, TimeUnit::kYear)).c_str());
  }
  std::printf("  URL dimension (url | domain | domain_grp):\n");
  for (ValueId v : url.CategoryExtent(ex.url_cat)) {
    std::printf("    %-22s %-12s %s\n", url.value_name(v).c_str(),
                url.value_name(url.Rollup(v, ex.domain_cat)).c_str(),
                url.value_name(url.Rollup(v, ex.domain_grp_cat)).c_str());
  }
  std::printf("  Click facts (number_of, dwell, delivery, datasize KB):\n");
  PrintMo(*ex.mo, "    ");
}

void ArtifactF1(const IspExample& ex) {
  Header("F1", "Figure 1: example MO");
  std::printf(
      "  Schema: Click facts over dimensions {Time, URL}, measures\n"
      "  {Number_of, Dwell_time, Delivery_time, Datasize}, all SUM.\n"
      "  Time hierarchy: day < week < TOP and day < month < quarter < year <"
      " TOP (non-linear)\n"
      "  URL hierarchy:  url < domain < domain_grp < TOP (linear)\n");
  const Dimension& url = *ex.mo->dimension(ex.url_dim);
  for (ValueId g : url.CategoryExtent(ex.domain_grp_cat)) {
    std::printf("  %s\n", url.value_name(g).c_str());
    for (ValueId d : url.DrillDown(g, ex.domain_cat)) {
      std::printf("    %s\n", url.value_name(d).c_str());
      for (ValueId u : url.DrillDown(d, ex.url_cat)) {
        std::printf("      %s\n", url.value_name(u).c_str());
      }
    }
  }
}

void ArtifactF2(const IspExample& ex) {
  Header("F2", "Figure 2: Growing violation and its repair");
  ReductionSpecification solo;
  solo.Add(ParseAction(*ex.mo, kA1, "a1").take());
  Status st = ValidateSpecification(*ex.mo, solo);
  std::printf("  {a1} alone      -> %s\n", st.ToString().c_str());
  ReductionSpecification both = SpecA1A2(*ex.mo);
  st = ValidateSpecification(*ex.mo, both);
  std::printf("  {a1, a2}        -> %s\n", st.ToString().c_str());
}

void ArtifactF3(const IspExample& ex) {
  Header("F3", "Figure 3: reduced-MO snapshots");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  for (CivilDate when : {CivilDate{2000, 4, 5}, CivilDate{2000, 6, 5},
                         CivilDate{2000, 11, 5}}) {
    std::printf("  at %d/%d/%d:\n", when.year, when.month, when.day);
    auto reduced = Reduce(*ex.mo, spec, DaysFromCivil(when));
    PrintMo(reduced.value(), "    ");
  }
}

void ArtifactF4(const IspExample& ex) {
  Header("F4", "Figure 4: pi[URL][Number_of, Dwell_time] at 2000/11/5");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  auto reduced = Reduce(*ex.mo, spec, DaysFromCivil({2000, 11, 5})).take();
  auto proj =
      Project(reduced, {ex.url_dim}, {ex.number_of, ex.dwell_time}).take();
  PrintMo(proj);
}

void ArtifactF5(const IspExample& ex) {
  Header("F5", "Figure 5: a[Time.month, URL.domain] (availability)");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  auto reduced = Reduce(*ex.mo, spec, DaysFromCivil({2000, 11, 5})).take();
  auto gran = ParseGranularityList(reduced, "Time.month, URL.domain").take();
  auto agg = AggregateFormation(reduced, gran).take();
  PrintMo(agg);
}

void ArtifactQ123(const IspExample& ex) {
  Header("Q123", "Section 6.1: selection on the reduced MO");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  int64_t t = DaysFromCivil({2000, 11, 5});
  auto reduced = Reduce(*ex.mo, spec, t).take();

  auto run = [&](const char* text) {
    auto pred = ParsePredicate(reduced, text).take();
    auto sel = Select(reduced, *pred, t).take();
    std::printf("  s[%s] (conservative): %zu facts\n", text,
                sel.mo.num_facts());
    for (FactId f = 0; f < sel.mo.num_facts(); ++f) {
      std::printf("    %s\n", sel.mo.FormatFact(f).c_str());
    }
  };
  run("Time.quarter <= 1999Q4");  // Q1: exact
  run("Time.month <= 1999/10");   // Q2: quarters only partly inside -> empty
  run("Time.week <= 1999W48");    // Q3: drills to the day GLB -> empty

  // Definition 5 worked expressions.
  FactId fact_03 = 0;
  for (FactId f = 0; f < reduced.num_facts(); ++f) {
    if (reduced.FactName(f) == "fact_03") fact_03 = f;
  }
  auto eval = [&](const char* text) {
    auto pred = ParsePredicate(reduced, text).take();
    double w = EvalQueryPredOnFact(*pred, reduced, fact_03, t,
                                   SelectionApproach::kConservative);
    std::printf("  %-28s on fact_03 -> %s\n", text,
                w == 1.0 ? "TRUE" : "FALSE");
  };
  eval("Time.week < 1999W48");  // paper: 1999Q4 < 1999W48 = FALSE
  eval("Time.week < 2000W1");   // paper: 1999Q4 < 2000W1  = TRUE
}

void ArtifactS51(const IspExample& ex) {
  Header("S51", "Section 5.1: stopping a7 by inserting a8, then deleting a7");
  ReductionSpecification spec;
  spec.Add(ParseAction(*ex.mo, kA7, "a7").take());
  auto with_a8 =
      InsertActions(*ex.mo, spec, {ParseAction(*ex.mo, kA8, "a8").take()});
  std::printf("  insert a8            -> %s\n",
              with_a8.ok() ? "OK" : with_a8.status().ToString().c_str());
  auto deleted = DeleteActions(*ex.mo, with_a8.value(), {0},
                               DaysFromCivil({2000, 12, 5}));
  std::printf("  delete a7 at 2000/12 -> %s (remaining: %s)\n",
              deleted.ok() ? "OK" : deleted.status().ToString().c_str(),
              deleted.ok() ? deleted.value().action(0).name.c_str() : "-");
}

void ArtifactS53(const IspExample& ex) {
  Header("S53", "Section 5.3: Growing check reducing to eq. (29)");
  const char* a1 =
      "a[Time.month, URL.domain] s[NOW - 4 years < Time.year AND "
      "Time.year < NOW AND URL.TOP = T]";
  const char* a2 =
      "a[Time.quarter, URL.domain] s[Time.year <= NOW - 4 years AND "
      "URL.domain_grp = .com]";
  const char* a3 =
      "a[Time.quarter, URL.domain_grp] s[Time.year <= NOW - 4 years AND "
      "URL.domain_grp = .edu]";
  ReductionSpecification full;
  full.Add(ParseAction(*ex.mo, a1, "a1").take());
  full.Add(ParseAction(*ex.mo, a2, "a2").take());
  full.Add(ParseAction(*ex.mo, a3, "a3").take());
  std::printf("  {a1, a2, a3} (eq. 29: T => .com OR .edu holds) -> %s\n",
              ValidateSpecification(*ex.mo, full).ToString().c_str());
  ReductionSpecification partial;
  partial.Add(ParseAction(*ex.mo, a1, "a1").take());
  partial.Add(ParseAction(*ex.mo, a2, "a2").take());
  std::printf("  {a1, a2} (no .edu catcher) -> %s\n",
              ValidateSpecification(*ex.mo, partial).ToString().c_str());
}

SubcubeManager MakeManager(const IspExample& ex,
                           const ReductionSpecification& spec) {
  return SubcubeManager::Create(
             "Click", ex.mo->dimensions(),
             std::vector<MeasureType>(ex.mo->measure_types()), spec)
      .take();
}

void ArtifactF6(const IspExample& ex) {
  Header("F6", "Figure 6: subcube architecture");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  SubcubeManager mgr = MakeManager(ex, spec);
  std::printf("%s", mgr.DescribeLayout().c_str());
  std::printf(
      "  New data enters K0; queries run per subcube and combine with one\n"
      "  final (distributive) aggregation.\n");
}

void ArtifactF7(const IspExample& ex) {
  Header("F7", "Figure 7: synchronization between subcubes");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  SubcubeManager mgr = MakeManager(ex, spec);
  (void)mgr.InsertBottomFacts(*ex.mo);
  for (CivilDate when : {CivilDate{2000, 6, 5}, CivilDate{2000, 11, 5},
                         CivilDate{2000, 12, 5}}) {
    auto migrated = mgr.Synchronize(DaysFromCivil(when));
    std::printf("  sync at %d/%d/%d: migrated %zu rows;",
                when.year, when.month, when.day, migrated.value());
    for (size_t i = 0; i < mgr.num_subcubes(); ++i) {
      std::printf(" %s=%zu", mgr.subcube(i).name.c_str(),
                  mgr.subcube(i).table.num_rows());
    }
    std::printf("\n");
  }
  std::printf("  resident rows after the last sync:\n");
  auto all =
      mgr.Query(nullptr, nullptr, DaysFromCivil({2000, 12, 5}), true).take();
  PrintMo(all, "    ");
}

void ArtifactF8(const IspExample& ex) {
  Header("F8", "Figure 8: per-subcube evaluation + combining aggregation");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  SubcubeManager mgr = MakeManager(ex, spec);
  (void)mgr.InsertBottomFacts(*ex.mo);
  int64_t t = DaysFromCivil({2000, 11, 5});
  (void)mgr.Synchronize(t);

  auto pred =
      ParsePredicate(mgr.context(), "1999/6 < Time.month AND Time.month <= 2000/5")
          .take();
  auto gran =
      ParseGranularityList(mgr.context(), "Time.month, URL.domain_grp").take();
  auto subs = mgr.QuerySubresults(pred.get(), &gran, t, true).take();
  for (size_t i = 0; i < subs.size(); ++i) {
    std::printf("  S%zu = Q(%s): %zu facts\n", i, mgr.subcube(i).name.c_str(),
                subs[i].num_facts());
    PrintMo(subs[i], "    ");
  }
  auto combined = mgr.Query(pred.get(), &gran, t, true).take();
  std::printf("  S_final (union + one combining aggregation):\n");
  PrintMo(combined, "    ");
}

void ArtifactF9(const IspExample& ex) {
  Header("F9", "Figure 9: querying in the un-synchronized state");
  ReductionSpecification spec = SpecA1A2(*ex.mo);
  SubcubeManager mgr = MakeManager(ex, spec);
  (void)mgr.InsertBottomFacts(*ex.mo);
  (void)mgr.Synchronize(DaysFromCivil({2000, 6, 5}));
  int64_t t = DaysFromCivil({2000, 11, 5});
  std::printf("  warehouse last synchronized at 2000/6/5, queried at "
              "2000/11/5:\n");
  auto unsync = mgr.Query(nullptr, nullptr, t, false).take();
  std::printf("  un-synchronized query (a[G_i]s[P_i](K_i U parents)):\n");
  PrintMo(unsync, "    ");
  (void)mgr.Synchronize(t);
  auto sync = mgr.Query(nullptr, nullptr, t, true).take();
  std::printf("  after Synchronize(), the same query:\n");
  PrintMo(sync, "    ");
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--artifact=", 11) == 0) only = argv[i] + 11;
  }
  IspExample ex = MakeIspExample();
  struct Entry {
    const char* id;
    void (*fn)(const IspExample&);
  };
  const Entry entries[] = {
      {"T1", ArtifactT1}, {"T2", ArtifactT2}, {"F1", ArtifactF1},
      {"F2", ArtifactF2}, {"F3", ArtifactF3}, {"F4", ArtifactF4},
      {"F5", ArtifactF5}, {"Q123", ArtifactQ123}, {"S51", ArtifactS51},
      {"S53", ArtifactS53}, {"F6", ArtifactF6}, {"F7", ArtifactF7},
      {"F8", ArtifactF8}, {"F9", ArtifactF9},
  };
  bool ran = false;
  for (const Entry& e : entries) {
    if (only.empty() || only == e.id) {
      // Each artifact works on a fresh example (reduction mutates nothing,
      // but time values materialize on demand).
      IspExample fresh = MakeIspExample();
      e.fn(fresh);
      ran = true;
    }
  }
  (void)ex;
  if (!ran) {
    std::fprintf(stderr, "unknown artifact '%s'\n", only.c_str());
    return 1;
  }
  return 0;
}
