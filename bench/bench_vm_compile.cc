// B12 — the predicate/fold bytecode VM (docs/COMPILATION.md): selection
// predicates and per-row measure folds are compiled to compact programs
// (src/vm) and evaluated by an interpreter loop that never touches the AST.
//
// Expected shape: on the cold path (result + program caches disabled, so
// every iteration recompiles and re-evaluates) the VM-on rows beat the
// AST-walking interpreter by >= 3x; on the warm path both variants serve the
// result from the LRU and are indistinguishable. The `snapshot_crc` counter
// is identical for every variant and thread count — compilation never
// changes bytes, only cost. The sweep records vm on/off x cold/warm across
// pool sizes {1, 2, 4, 8} in the JSON sidecar (DWRED_BENCH_SIDECAR,
// bench_main.cc); tools/bench_diff.py pairs the cold rows and fails CI when
// the VM regresses below the interpreter baseline.

#include "bench_common.h"

#include <cstdlib>
#include <sstream>

#include "exec/thread_pool.h"
#include "io/atomic_file.h"
#include "subcube/manager.h"

namespace dwred::bench {
namespace {

struct Warehouse {
  std::shared_ptr<Dimension> time_dim, url_dim;
  std::unique_ptr<SubcubeManager> mgr;
  std::shared_ptr<PredExpr> pred;
  std::vector<CategoryId> gran;
  int64_t t;
};

// Same canonical warehouse as bench_query_cache: 30 monthly batches reduced
// under the three-tier policy, queried at 2002/7/1 with a two-atom
// conjunction (one enumerable URL atom, one NOW-relative time window).
Warehouse MakeWarehouse(size_t per_month) {
  Warehouse wh;
  ClickstreamWorkload w = MakeWorkload(0);
  wh.time_dim = w.time_dim;
  wh.url_dim = w.url_dim;
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  wh.mgr = std::make_unique<SubcubeManager>(
      SubcubeManager::Create("Click", w.mo->dimensions(),
                             std::vector<MeasureType>(w.mo->measure_types()),
                             spec)
          .take());
  uint64_t seed = 17;
  for (int m = 0; m < 30; ++m) {
    int year = 2000 + m / 12, month = m % 12 + 1;
    int64_t lo = DaysFromCivil({year, month, 1});
    int64_t hi = DaysFromCivil({year, month, DaysInMonth(year, month)});
    MultidimensionalObject batch =
        MakeClickBatch(w.time_dim, w.url_dim, lo, hi, per_month, ++seed);
    (void)wh.mgr->InsertBottomFacts(batch);
    (void)wh.mgr->Synchronize(hi + 1);
  }
  wh.t = DaysFromCivil({2002, 7, 1});
  (void)wh.mgr->Synchronize(wh.t);
  wh.pred = ParsePredicate(wh.mgr->context(),
                           "URL.domain_grp = .com AND "
                           "NOW - 24 months <= Time.month")
                .take();
  wh.gran =
      ParseGranularityList(wh.mgr->context(), "Time.month, URL.domain_grp")
          .take();
  return wh;
}

/// CRC32 over a full-fidelity serialization of the result — the differential
/// check: every variant and thread count must report the same value.
uint32_t SnapshotCrc(const MultidimensionalObject& mo) {
  std::ostringstream out;
  out << mo.num_facts() << "\n";
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    out << mo.FactName(f) << "|";
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      out << mo.Coord(f, static_cast<DimensionId>(d)) << ",";
    }
    out << "|";
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      out << mo.Measure(f, static_cast<MeasureId>(m)) << ",";
    }
    out << "\n";
  }
  return Crc32(out.str());
}

// `cold` disables the PR-5 LRU entirely (results AND compiled programs), so
// each iteration pays compile + full per-subcube evaluation; warm rows serve
// the result from the cache and exist to show the VM leaves the warm path
// untouched. `vm_on` flips the DWRED_VM_DISABLED kill switch.
void RunVmQuery(benchmark::State& state, bool vm_on, bool cold, int threads) {
  if (vm_on) {
    ::unsetenv("DWRED_VM_DISABLED");
  } else {
    ::setenv("DWRED_VM_DISABLED", "1", 1);
  }
  if (cold) {
    ::setenv("DWRED_CACHE_DISABLED", "1", 1);
  } else {
    ::unsetenv("DWRED_CACHE_DISABLED");
  }
  Warehouse wh = MakeWarehouse(static_cast<size_t>(state.range(0)));
  exec::ThreadPool::ResetGlobal(threads);
  const bool parallel = threads > 1;
  uint32_t crc = 0;
  for (auto _ : state) {
    auto r = wh.mgr->Query(wh.pred.get(), &wh.gran, wh.t,
                           /*assume_synchronized=*/true, parallel);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    crc = SnapshotCrc(r.value());
    benchmark::DoNotOptimize(crc);
  }
  state.counters["snapshot_crc"] = static_cast<double>(crc);
  state.counters["threads"] = threads;
  state.counters["vm"] = vm_on ? 1 : 0;
  state.counters["cold"] = cold ? 1 : 0;
  state.SetItemsProcessed(state.iterations());
  exec::ThreadPool::ResetGlobal(0);
  ::unsetenv("DWRED_VM_DISABLED");
  ::unsetenv("DWRED_CACHE_DISABLED");
}

// The headline pair: serial cold path, VM on vs off. tools/bench_diff.py
// matches these two rows (same threads, cold == 1) and fails when the
// compiled row is slower than the interpreter row.
void BM_VmQueryColdCompiled(benchmark::State& state) {
  RunVmQuery(state, /*vm_on=*/true, /*cold=*/true, /*threads=*/1);
}
BENCHMARK(BM_VmQueryColdCompiled)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_VmQueryColdInterpreted(benchmark::State& state) {
  RunVmQuery(state, /*vm_on=*/false, /*cold=*/true, /*threads=*/1);
}
BENCHMARK(BM_VmQueryColdInterpreted)->Arg(10000)->Unit(benchmark::kMillisecond);

// Thread sweep x vm on/off x cold/warm: sixteen rows in the sidecar, one
// snapshot_crc.
void BM_VmQuerySweep(benchmark::State& state) {
  RunVmQuery(state, state.range(2) != 0, state.range(3) != 0,
             static_cast<int>(state.range(1)));
}
BENCHMARK(BM_VmQuerySweep)
    ->ArgsProduct({{10000}, {1, 2, 4, 8}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
