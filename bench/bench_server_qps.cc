// B14 — sustained query throughput through dwredd's serving core
// (docs/SERVER.md): an in-process net::Server on an ephemeral loopback port,
// driven by real client connections issuing pipelined kQuery commands, so
// every request pays the full wire cost — framing, CRC, socket round trip,
// session dispatch, OpContext setup — on top of the embedded query path.
//
// Expected shape: the warm-cache path clears the 50k req/s acceptance bar at
// 8 connections (the engine side is a cache hit plus one MO render). The
// differential anchor: `wire_crc` (the snapshot CRC reported over the wire)
// equals `embedded_crc` (net::WarehouseCrc computed in-process) for every
// variant in the {1, 8} threads x cache on/off sweep — serving never changes
// bytes, only cost. Recorded in the JSON sidecar (DWRED_BENCH_SIDECAR) as
// bench/results/server_qps_sweep.json.

#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "subcube/manager.h"

namespace dwred::bench {
namespace {

struct Warehouse {
  std::shared_ptr<Dimension> time_dim, url_dim;
  std::unique_ptr<SubcubeManager> mgr;
  int64_t t;
};

Warehouse MakeWarehouse(size_t per_month) {
  Warehouse wh;
  ClickstreamWorkload w = MakeWorkload(0);
  wh.time_dim = w.time_dim;
  wh.url_dim = w.url_dim;
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  wh.mgr = std::make_unique<SubcubeManager>(
      SubcubeManager::Create("Click", w.mo->dimensions(),
                             std::vector<MeasureType>(w.mo->measure_types()),
                             spec)
          .take());
  uint64_t seed = 23;
  for (int m = 0; m < 30; ++m) {
    int year = 2000 + m / 12, month = m % 12 + 1;
    int64_t lo = DaysFromCivil({year, month, 1});
    int64_t hi = DaysFromCivil({year, month, DaysInMonth(year, month)});
    MultidimensionalObject batch =
        MakeClickBatch(w.time_dim, w.url_dim, lo, hi, per_month, ++seed);
    (void)wh.mgr->InsertBottomFacts(batch);
    (void)wh.mgr->Synchronize(hi + 1);
  }
  wh.t = DaysFromCivil({2002, 7, 1});
  (void)wh.mgr->Synchronize(wh.t);
  return wh;
}

net::Request QueryRequest(const Warehouse& wh, bool parallel) {
  net::Request req;
  req.cmd = net::Command::kQuery;
  req.now_day = wh.t;
  req.a = "URL.domain_grp = .com AND NOW - 24 months <= Time.month";
  req.b = "Time.month, URL.domain_grp";
  req.flags = static_cast<uint8_t>(
      net::kQuerySynchronized | (parallel ? net::kQueryParallel : 0));
  return req;
}

/// Drives `requests` pipelined queries over one connection; any transport
/// failure or non-OK response bumps `errors`.
void DriveConnection(net::Client* client, const net::Request& req,
                     size_t requests, size_t pipeline,
                     std::atomic<size_t>* errors) {
  std::vector<net::Request> window(pipeline, req);
  size_t sent = 0;
  while (sent < requests) {
    size_t n = std::min(pipeline, requests - sent);
    if (!client->SendPipelined(window.data(), n).ok()) {
      errors->fetch_add(requests - sent);
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      auto resp = client->Recv();
      if (!resp.ok() || resp.value().code != StatusCode::kOk) {
        errors->fetch_add(1);
      }
    }
    sent += n;
  }
}

void RunServerQps(benchmark::State& state, int connections, int threads,
                  bool cache_enabled) {
  if (cache_enabled) {
    ::unsetenv("DWRED_CACHE_DISABLED");
  } else {
    ::setenv("DWRED_CACHE_DISABLED", "1", 1);
  }
  Warehouse wh = MakeWarehouse(static_cast<size_t>(state.range(0)));
  exec::ThreadPool::ResetGlobal(threads);
  const bool parallel = threads > 1;

  net::ServerConfig config;
  config.max_connections = connections + 4;
  net::Server server(config, wh.mgr.get());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  std::vector<net::Client> clients;
  for (int c = 0; c < connections; ++c) {
    auto conn = net::Client::Connect("127.0.0.1", server.port());
    if (!conn.ok()) {
      state.SkipWithError(conn.status().ToString().c_str());
      server.Stop();
      return;
    }
    clients.push_back(conn.take());
  }
  const net::Request req = QueryRequest(wh, parallel);
  constexpr size_t kPipeline = 32;
  // Requests per connection per iteration: enough on the warm path to
  // amortize the 8 driver-thread spawns; the cache-off path re-runs the full
  // evaluation per request (~ms each), so a smaller burst keeps it bounded.
  const size_t kPerConnection = cache_enabled ? 1024 : 64;

  // Warm the cache (and the connections) outside the timed region.
  std::atomic<size_t> errors{0};
  DriveConnection(&clients[0], req, kPipeline, kPipeline, &errors);

  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(clients.size());
    for (auto& client : clients) {
      drivers.emplace_back(DriveConnection, &client, req, kPerConnection,
                           kPipeline, &errors);
    }
    for (auto& d : drivers) d.join();
    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    state.SetIterationTime(elapsed.count());
  }
  if (errors.load() != 0) {
    state.SkipWithError("requests failed over the wire");
  }

  // Differential anchor: the CRC the server reports over the wire must match
  // the one computed in-process against the same manager.
  uint32_t wire_crc = 0;
  {
    net::Request crc_req;
    crc_req.cmd = net::Command::kSnapshotCrc;
    auto resp = clients[0].Call(crc_req);
    if (resp.ok() && resp.value().code == StatusCode::kOk) {
      wire_crc = static_cast<uint32_t>(
          std::strtoul(resp.value().body.c_str() + 4, nullptr, 10));
    }
  }
  state.counters["wire_crc"] = static_cast<double>(wire_crc);
  state.counters["embedded_crc"] =
      static_cast<double>(net::WarehouseCrc(*wh.mgr));
  state.counters["connections"] = connections;
  state.counters["pipeline"] = static_cast<double>(kPipeline);
  state.counters["threads"] = threads;
  state.counters["cache"] = cache_enabled ? 1 : 0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kPerConnection) * connections);
  for (auto& client : clients) client.Close();
  server.Stop();
  exec::ThreadPool::ResetGlobal(0);
  ::unsetenv("DWRED_CACHE_DISABLED");
}

// The acceptance row: 8 connections, warm cache, serial pool.
void BM_ServerQpsWarmCache(benchmark::State& state) {
  RunServerQps(state, /*connections=*/8, /*threads=*/1,
               /*cache_enabled=*/true);
}
BENCHMARK(BM_ServerQpsWarmCache)
    ->Arg(10000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// The CRC-identity sweep: threads {1, 8} x cache on/off, 8 connections.
void BM_ServerQpsSweep(benchmark::State& state) {
  RunServerQps(state, /*connections=*/8,
               static_cast<int>(state.range(1)), state.range(2) != 0);
}
BENCHMARK(BM_ServerQpsSweep)
    ->ArgsProduct({{10000}, {1, 8}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
