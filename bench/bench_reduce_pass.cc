// B8 — cost of one reduction pass (paper Definition 2): per fact, evaluate
// every action's predicate on the direct cell, take the maximal granularity,
// roll coordinates up, hash-group and fold measures. Expected shape: linear
// in facts x actions, with rollup depth a small constant.

#include "bench_common.h"

#include "exec/thread_pool.h"
#include "io/snapshot.h"
#include "workload/retail.h"

namespace dwred::bench {
namespace {

void BM_ReducePass(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  const int tiers = static_cast<int>(state.range(1));
  ClickstreamWorkload w = MakeWorkload(facts);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, tiers));
  const int64_t t = DaysFromCivil({2002, 1, 1});

  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t, {/*track_provenance=*/false});
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(reduced.value().num_facts());
  }
  state.counters["actions"] = tiers;
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
}

BENCHMARK(BM_ReducePass)
    ->ArgsProduct({{10000, 100000}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

// Ablation: provenance tracking (merged names, constituent ids, responsible
// actions) vs. bare reduction. The paper requires the warehouse to be able to
// tell users why data is aggregated the way it is (Section 4); this measures
// what that bookkeeping costs.
void BM_ReducePassProvenanceAblation(benchmark::State& state) {
  const bool track = state.range(0) != 0;
  ClickstreamWorkload w = MakeWorkload(100000);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  const int64_t t = DaysFromCivil({2002, 1, 1});
  ReduceOptions opts;
  opts.track_provenance = track;
  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t, opts);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(reduced.value().num_facts());
  }
  state.counters["provenance"] = track ? 1 : 0;
  state.SetItemsProcessed(100000 * state.iterations());
}

BENCHMARK(BM_ReducePassProvenanceAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Gradual monthly reduction over four years (the steady-state operating
// cost: each pass re-scans only the surviving facts).
void BM_GradualMonthlyReduction(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ClickstreamWorkload w = MakeWorkload(facts);
    ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
    MultidimensionalObject current = std::move(*w.mo);
    state.ResumeTiming();
    for (int ym = 1999 * 12 + 6; ym <= 2003 * 12; ++ym) {
      auto reduced = Reduce(current, spec,
                            DaysFromCivil({ym / 12, ym % 12 + 1, 1}), {false});
      if (!reduced.ok()) {
        state.SkipWithError(reduced.status().ToString().c_str());
        return;
      }
      current = reduced.take();
    }
    state.counters["final_facts"] = static_cast<double>(current.num_facts());
  }
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
}

BENCHMARK(BM_GradualMonthlyReduction)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Thread-count sweep (PR 3). Each arg pair is (facts, threads); the pool is
// resized per benchmark, so one binary invocation records the whole sweep in
// its JSON sidecar (DWRED_BENCH_SIDECAR, see bench_main.cc). The
// `snapshot_crc` counter is a 32-bit digest of the serialized reduced
// warehouse — the determinism contract says it must be identical in every
// row of the sweep, so the sidecar itself witnesses serial/parallel
// equivalence alongside the timings.

uint32_t Digest32(const std::string& bytes) {
  // FNV-1a, folded to 32 bits; stable across runs and platforms.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

void BM_ReducePassRetailThreadSweep(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  RetailWorkload w = MakeRetailWorkload(facts);
  ReductionSpecification spec = TakeOrAbort(MakeRetailPolicy(*w.mo));
  const int64_t t = DaysFromCivil({2002, 7, 1});
  exec::ThreadPool::ResetGlobal(threads);

  uint32_t crc = 0;
  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    state.PauseTiming();
    crc = Digest32(SaveWarehouse(reduced.value(), spec));
    state.ResumeTiming();
  }
  state.counters["threads"] = threads;
  state.counters["snapshot_crc"] = crc;
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
  exec::ThreadPool::ResetGlobal(0);  // back to the DWRED_THREADS default
}

BENCHMARK(BM_ReducePassRetailThreadSweep)
    ->ArgsProduct({{100000, 1000000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_ReducePassClickThreadSweep(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  ClickstreamWorkload w = MakeWorkload(facts);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  const int64_t t = DaysFromCivil({2002, 1, 1});
  exec::ThreadPool::ResetGlobal(threads);

  uint32_t crc = 0;
  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    state.PauseTiming();
    crc = Digest32(SaveWarehouse(reduced.value(), spec));
    state.ResumeTiming();
  }
  state.counters["threads"] = threads;
  state.counters["snapshot_crc"] = crc;
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
  exec::ThreadPool::ResetGlobal(0);
}

BENCHMARK(BM_ReducePassClickThreadSweep)
    ->ArgsProduct({{100000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
