// B8 — cost of one reduction pass (paper Definition 2): per fact, evaluate
// every action's predicate on the direct cell, take the maximal granularity,
// roll coordinates up, hash-group and fold measures. Expected shape: linear
// in facts x actions, with rollup depth a small constant.

#include "bench_common.h"

namespace dwred::bench {
namespace {

void BM_ReducePass(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  const int tiers = static_cast<int>(state.range(1));
  ClickstreamWorkload w = MakeWorkload(facts);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, tiers));
  const int64_t t = DaysFromCivil({2002, 1, 1});

  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t, {/*track_provenance=*/false});
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(reduced.value().num_facts());
  }
  state.counters["actions"] = tiers;
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
}

BENCHMARK(BM_ReducePass)
    ->ArgsProduct({{10000, 100000}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

// Ablation: provenance tracking (merged names, constituent ids, responsible
// actions) vs. bare reduction. The paper requires the warehouse to be able to
// tell users why data is aggregated the way it is (Section 4); this measures
// what that bookkeeping costs.
void BM_ReducePassProvenanceAblation(benchmark::State& state) {
  const bool track = state.range(0) != 0;
  ClickstreamWorkload w = MakeWorkload(100000);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  const int64_t t = DaysFromCivil({2002, 1, 1});
  ReduceOptions opts;
  opts.track_provenance = track;
  for (auto _ : state) {
    auto reduced = Reduce(*w.mo, spec, t, opts);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(reduced.value().num_facts());
  }
  state.counters["provenance"] = track ? 1 : 0;
  state.SetItemsProcessed(100000 * state.iterations());
}

BENCHMARK(BM_ReducePassProvenanceAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Gradual monthly reduction over four years (the steady-state operating
// cost: each pass re-scans only the surviving facts).
void BM_GradualMonthlyReduction(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ClickstreamWorkload w = MakeWorkload(facts);
    ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
    MultidimensionalObject current = std::move(*w.mo);
    state.ResumeTiming();
    for (int ym = 1999 * 12 + 6; ym <= 2003 * 12; ++ym) {
      auto reduced = Reduce(current, spec,
                            DaysFromCivil({ym / 12, ym % 12 + 1, 1}), {false});
      if (!reduced.ok()) {
        state.SkipWithError(reduced.status().ToString().c_str());
        return;
      }
      current = reduced.take();
    }
    state.counters["final_facts"] = static_cast<double>(current.num_facts());
  }
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
}

BENCHMARK(BM_GradualMonthlyReduction)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
