// B9 — zone-map pruning on the segmented fact store (docs/STORAGE.md): a
// selective predicate over the synchronized retail warehouse lets the scan
// planner drop whole segments whose time zone maps miss the queried window,
// before any row is touched. The no-prune baseline runs the same query with
// a window that covers the full history, so every segment survives planning
// and the delta is pure pruning benefit.
//
// Facts are inserted sorted by day (with the day span preregistered so
// ValueIds ascend chronologically) — the layout an incrementally-loaded
// warehouse converges to — giving sealed segments tight time zone maps.

#include "bench_common.h"

#include <algorithm>
#include <numeric>

#include "exec/thread_pool.h"
#include "scan/scan.h"
#include "subcube/manager.h"

namespace dwred::bench {
namespace {

struct RetailWarehouse {
  RetailWorkload w;
  std::unique_ptr<SubcubeManager> mgr;
  std::vector<CategoryId> gran;
  int64_t t;
};

RetailWarehouse MakeRetailWarehouse(size_t n) {
  RetailWarehouse wh;
  wh.w = MakeRetailWorkload(n, /*preregister_days=*/true);
  const MultidimensionalObject& mo = *wh.w.mo;
  ReductionSpecification spec = TakeOrAbort(MakeRetailPolicy(mo));
  wh.mgr = std::make_unique<SubcubeManager>(
      SubcubeManager::Create("Sale", mo.dimensions(),
                             std::vector<MeasureType>(mo.measure_types()),
                             spec)
          .take());

  // Re-insert the sales sorted by day. Preregistration made day ValueIds
  // ascend with calendar date, so coordinate order is chronological order.
  std::vector<FactId> order(mo.num_facts());
  std::iota(order.begin(), order.end(), FactId{0});
  std::stable_sort(order.begin(), order.end(), [&](FactId a, FactId b) {
    return mo.Coord(a, 0) < mo.Coord(b, 0);
  });
  MultidimensionalObject sorted("Sale", mo.dimensions(),
                                std::vector<MeasureType>(mo.measure_types()));
  std::vector<ValueId> c(mo.num_dimensions());
  std::vector<int64_t> m(mo.num_measures());
  for (FactId f : order) {
    for (DimensionId d = 0; d < mo.num_dimensions(); ++d) {
      c[d] = mo.Coord(f, d);
    }
    for (MeasureId i = 0; i < mo.num_measures(); ++i) {
      m[i] = mo.Measure(f, i);
    }
    TakeOrAbort(sorted.AddBottomFact(c, m));
  }
  Status st = wh.mgr->InsertBottomFacts(sorted);
  if (!st.ok()) {
    std::fprintf(stderr, "benchmark setup failed: %s\n", st.ToString().c_str());
    std::abort();
  }

  wh.t = DaysFromCivil({2002, 1, 1});
  TakeOrAbort(wh.mgr->Synchronize(wh.t));
  wh.gran = ParseGranularityList(wh.mgr->context(),
                                 "Time.month, Product.category, Store.region")
                .take();
  return wh;
}

double ScanCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name, "").Value();
}

void RunQuerySweep(benchmark::State& state, const char* pred_text) {
  const size_t facts = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  RetailWarehouse wh = MakeRetailWarehouse(facts);
  std::shared_ptr<PredExpr> pred =
      ParsePredicate(wh.mgr->context(), pred_text).take();
  exec::ThreadPool::ResetGlobal(threads);

  const double scanned0 = ScanCounter("dwred_scan_segments_scanned");
  const double pruned0 = ScanCounter("dwred_scan_segments_pruned");
  const double skipped0 = ScanCounter("dwred_scan_rows_skipped");
  size_t result_facts = 0;
  for (auto _ : state) {
    auto r = wh.mgr->Query(pred.get(), &wh.gran, wh.t,
                           /*assume_synchronized=*/true, /*parallel=*/true);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    result_facts = r.value().num_facts();
    benchmark::DoNotOptimize(result_facts);
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["threads"] = threads;
  state.counters["result_facts"] = static_cast<double>(result_facts);
  state.counters["segments_scanned"] =
      (ScanCounter("dwred_scan_segments_scanned") - scanned0) / iters;
  state.counters["segments_pruned"] =
      (ScanCounter("dwred_scan_segments_pruned") - pruned0) / iters;
  state.counters["rows_skipped"] =
      (ScanCounter("dwred_scan_rows_skipped") - skipped0) / iters;
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
  exec::ThreadPool::ResetGlobal(0);  // back to the DWRED_THREADS default
}

// Selective window: 2000 H1 sits entirely in the quarter tier, so the bottom
// cube, the month cube, and most quarter/year segments are pruned outright.
void BM_RetailQueryPrunedSweep(benchmark::State& state) {
  RunQuerySweep(state, "2000/1/1 <= Time.day <= 2000/6/30");
}

BENCHMARK(BM_RetailQueryPrunedSweep)
    ->ArgsProduct({{1000000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// Baseline: the same query shape over a window covering the full history.
// Planning still runs, but the allowed-value sets admit every zone map, so
// segments_pruned stays 0 and every row is scanned.
void BM_RetailQueryNoPruneBaseline(benchmark::State& state) {
  RunQuerySweep(state, "1999/1/1 <= Time.day <= 2002/12/31");
}

BENCHMARK(BM_RetailQueryNoPruneBaseline)
    ->ArgsProduct({{1000000}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
