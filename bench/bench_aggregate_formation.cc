// B7 — aggregate-formation throughput (paper Definition 6): grouping facts to
// a requested granularity under the availability / strict / LUB approaches.
// Expected shape: cost is one hash-group pass over the facts; approaches
// differ only in per-fact branch work, so throughputs are close; coarser
// targets produce fewer cells, not faster scans.

#include "bench_common.h"

#include "query/operators.h"

namespace dwred::bench {
namespace {

struct Fixture {
  std::unique_ptr<MultidimensionalObject> mo;
};

Fixture& RawWorkload() {
  static Fixture fx = [] {
    Fixture f;
    ClickstreamWorkload w = MakeWorkload(200000);
    f.mo = std::move(w.mo);
    return f;
  }();
  return fx;
}

Fixture& MixedWorkload() {
  static Fixture fx = [] {
    Fixture f;
    ClickstreamWorkload w = MakeWorkload(200000);
    ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 2));
    f.mo = std::make_unique<MultidimensionalObject>(
        Reduce(*w.mo, spec, DaysFromCivil({2002, 1, 1}), {false}).take());
    return f;
  }();
  return fx;
}

void RunAgg(benchmark::State& state, const MultidimensionalObject& mo,
            const char* gran_text, AggregationApproach ap) {
  auto gran = ParseGranularityList(mo, gran_text).take();
  size_t cells = 0;
  for (auto _ : state) {
    auto agg = AggregateFormation(mo, gran, ap, /*track_provenance=*/false);
    if (!agg.ok()) {
      state.SkipWithError(agg.status().ToString().c_str());
      return;
    }
    cells = agg.value().num_facts();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["input_facts"] = static_cast<double>(mo.num_facts());
  state.counters["result_cells"] = static_cast<double>(cells);
  state.SetItemsProcessed(static_cast<int64_t>(mo.num_facts()) *
                          state.iterations());
}

void BM_AggToMonthDomain(benchmark::State& state) {
  RunAgg(state, *RawWorkload().mo, "Time.month, URL.domain",
         AggregationApproach::kAvailability);
}
BENCHMARK(BM_AggToMonthDomain)->Unit(benchmark::kMillisecond);

void BM_AggToQuarterGroup(benchmark::State& state) {
  RunAgg(state, *RawWorkload().mo, "Time.quarter, URL.domain_grp",
         AggregationApproach::kAvailability);
}
BENCHMARK(BM_AggToQuarterGroup)->Unit(benchmark::kMillisecond);

void BM_AggToYearTop(benchmark::State& state) {
  RunAgg(state, *RawWorkload().mo, "Time.year, URL.TOP",
         AggregationApproach::kAvailability);
}
BENCHMARK(BM_AggToYearTop)->Unit(benchmark::kMillisecond);

void BM_AggMixedAvailability(benchmark::State& state) {
  RunAgg(state, *MixedWorkload().mo, "Time.month, URL.domain",
         AggregationApproach::kAvailability);
}
BENCHMARK(BM_AggMixedAvailability)->Unit(benchmark::kMillisecond);

void BM_AggMixedStrict(benchmark::State& state) {
  RunAgg(state, *MixedWorkload().mo, "Time.month, URL.domain",
         AggregationApproach::kStrict);
}
BENCHMARK(BM_AggMixedStrict)->Unit(benchmark::kMillisecond);

void BM_AggMixedLub(benchmark::State& state) {
  RunAgg(state, *MixedWorkload().mo, "Time.month, URL.domain",
         AggregationApproach::kLub);
}
BENCHMARK(BM_AggMixedLub)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
