// B11 — the epoch-versioned query-result cache (docs/CACHING.md): repeated
// queries against an unchanged warehouse epoch are served from the LRU
// instead of re-running the per-subcube evaluation pipeline.
//
// Expected shape: the warm-cache path costs one LRU lookup plus one MO copy,
// so repeated-query throughput is well over the 5x acceptance bar against
// the cache-disabled baseline; the `snapshot_crc` counter is identical for
// every variant and thread count — the cache never changes bytes, only cost.
// The sweep records cache on/off across pool sizes {1, 2, 4, 8} in the JSON
// sidecar (DWRED_BENCH_SIDECAR, bench_main.cc).

#include "bench_common.h"

#include <cstdlib>
#include <sstream>

#include "exec/thread_pool.h"
#include "io/atomic_file.h"
#include "subcube/manager.h"

namespace dwred::bench {
namespace {

struct Warehouse {
  std::shared_ptr<Dimension> time_dim, url_dim;
  std::unique_ptr<SubcubeManager> mgr;
  std::shared_ptr<PredExpr> pred;
  std::vector<CategoryId> gran;
  int64_t t;
};

Warehouse MakeWarehouse(size_t per_month) {
  Warehouse wh;
  ClickstreamWorkload w = MakeWorkload(0);
  wh.time_dim = w.time_dim;
  wh.url_dim = w.url_dim;
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  wh.mgr = std::make_unique<SubcubeManager>(
      SubcubeManager::Create("Click", w.mo->dimensions(),
                             std::vector<MeasureType>(w.mo->measure_types()),
                             spec)
          .take());
  uint64_t seed = 17;
  for (int m = 0; m < 30; ++m) {
    int year = 2000 + m / 12, month = m % 12 + 1;
    int64_t lo = DaysFromCivil({year, month, 1});
    int64_t hi = DaysFromCivil({year, month, DaysInMonth(year, month)});
    MultidimensionalObject batch =
        MakeClickBatch(w.time_dim, w.url_dim, lo, hi, per_month, ++seed);
    (void)wh.mgr->InsertBottomFacts(batch);
    (void)wh.mgr->Synchronize(hi + 1);
  }
  wh.t = DaysFromCivil({2002, 7, 1});
  (void)wh.mgr->Synchronize(wh.t);
  wh.pred = ParsePredicate(wh.mgr->context(),
                           "URL.domain_grp = .com AND "
                           "NOW - 24 months <= Time.month")
                .take();
  wh.gran =
      ParseGranularityList(wh.mgr->context(), "Time.month, URL.domain_grp")
          .take();
  return wh;
}

/// CRC32 over a full-fidelity serialization of the result — the differential
/// check: every variant and thread count must report the same value.
uint32_t SnapshotCrc(const MultidimensionalObject& mo) {
  std::ostringstream out;
  out << mo.num_facts() << "\n";
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    out << mo.FactName(f) << "|";
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      out << mo.Coord(f, static_cast<DimensionId>(d)) << ",";
    }
    out << "|";
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      out << mo.Measure(f, static_cast<MeasureId>(m)) << ",";
    }
    out << "\n";
  }
  return Crc32(out.str());
}

void RunRepeatedQuery(benchmark::State& state, bool cache_enabled,
                      int threads) {
  if (cache_enabled) {
    ::unsetenv("DWRED_CACHE_DISABLED");
  } else {
    ::setenv("DWRED_CACHE_DISABLED", "1", 1);
  }
  Warehouse wh = MakeWarehouse(static_cast<size_t>(state.range(0)));
  exec::ThreadPool::ResetGlobal(threads);
  const bool parallel = threads > 1;
  uint32_t crc = 0;
  for (auto _ : state) {
    auto r = wh.mgr->Query(wh.pred.get(), &wh.gran, wh.t,
                           /*assume_synchronized=*/true, parallel);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    crc = SnapshotCrc(r.value());
    benchmark::DoNotOptimize(crc);
  }
  state.counters["snapshot_crc"] = static_cast<double>(crc);
  state.counters["threads"] = threads;
  state.counters["cache"] = cache_enabled ? 1 : 0;
  state.SetItemsProcessed(state.iterations());
  exec::ThreadPool::ResetGlobal(0);
  ::unsetenv("DWRED_CACHE_DISABLED");
}

void BM_RepeatedQueryWarmCache(benchmark::State& state) {
  RunRepeatedQuery(state, /*cache_enabled=*/true, /*threads=*/1);
}
BENCHMARK(BM_RepeatedQueryWarmCache)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_RepeatedQueryNoCache(benchmark::State& state) {
  RunRepeatedQuery(state, /*cache_enabled=*/false, /*threads=*/1);
}
BENCHMARK(BM_RepeatedQueryNoCache)->Arg(10000)->Unit(benchmark::kMillisecond);

// Profiling-overhead differential (docs/OBSERVABILITY.md): the warm
// cached-query path with profiling on — its steady-state cost, per-op latency
// histogram plus the flight recorder's admission check, with no EXPLAIN
// requested — must stay within a few percent of the DWRED_PROFILE_DISABLED
// path. Both variants serve the same bytes (snapshot_crc).
void RunProfiledWarmQuery(benchmark::State& state, bool profiling) {
  if (profiling) {
    ::unsetenv("DWRED_PROFILE_DISABLED");
  } else {
    ::setenv("DWRED_PROFILE_DISABLED", "1", 1);
  }
  ::unsetenv("DWRED_CACHE_DISABLED");
  Warehouse wh = MakeWarehouse(static_cast<size_t>(state.range(0)));
  exec::ThreadPool::ResetGlobal(1);
  uint32_t crc = 0;
  for (auto _ : state) {
    auto r = wh.mgr->Query(wh.pred.get(), &wh.gran, wh.t,
                           /*assume_synchronized=*/true, /*parallel=*/false);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    crc = SnapshotCrc(r.value());
    benchmark::DoNotOptimize(crc);
  }
  state.counters["snapshot_crc"] = static_cast<double>(crc);
  state.counters["profiling"] = profiling ? 1 : 0;
  state.SetItemsProcessed(state.iterations());
  exec::ThreadPool::ResetGlobal(0);
  ::unsetenv("DWRED_PROFILE_DISABLED");
}

void BM_RepeatedQueryWarmProfiled(benchmark::State& state) {
  RunProfiledWarmQuery(state, /*profiling=*/true);
}
BENCHMARK(BM_RepeatedQueryWarmProfiled)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_RepeatedQueryWarmUnprofiled(benchmark::State& state) {
  RunProfiledWarmQuery(state, /*profiling=*/false);
}
BENCHMARK(BM_RepeatedQueryWarmUnprofiled)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Thread sweep x cache on/off: eight rows in the sidecar, one snapshot_crc.
void BM_RepeatedQuerySweep(benchmark::State& state) {
  RunRepeatedQuery(state, state.range(2) != 0,
                   static_cast<int>(state.range(1)));
}
BENCHMARK(BM_RepeatedQuerySweep)
    ->ArgsProduct({{10000}, {1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
