// B3 — specification-check cost (paper Section 5.2: the |A|^2 pairwise
// NonCrossing algorithm "offers ample performance" because checks run only on
// specification updates; Section 5.3's Growing check adds the prover-backed
// boundary-coverage implication).
//
// Sweeps |A| for three shapes: an ordered tower (syntactic fast path), a
// categorically-disjoint unordered family (prover overlap checks), and a
// NOW-relative tier chain (growth classification + boundary coverage).

#include "bench_common.h"

namespace dwred::bench {
namespace {

/// |A| actions, all aggregating to the same granularity: every pair is
/// <=_V-ordered, so NonCrossing uses only the syntactic fast path.
void BM_CheckOrderedTower(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ClickstreamWorkload w = MakeWorkload(0);
  ReductionSpecification spec;
  for (int i = 0; i < n; ++i) {
    std::string text = "a[Time.quarter, URL.domain] s[Time.quarter <= " +
                       std::to_string(1990 + (i % 10)) + "Q1]";
    spec.Add(ParseAction(*w.mo, text, "a" + std::to_string(i)).take());
  }
  for (auto _ : state) {
    Status st = ValidateSpecification(*w.mo, spec);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(st);
  }
  state.counters["actions"] = n;
  state.counters["pairs"] = static_cast<double>(n) * (n - 1) / 2;
}

BENCHMARK(BM_CheckOrderedTower)->RangeMultiplier(2)->Range(2, 256);

/// |A| unordered actions on disjoint domains: every pair reaches the
/// prover's categorical-overlap check (which refutes the overlap).
void BM_CheckDisjointFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ClickstreamWorkload w = MakeWorkload(0);
  CategoryId domain_cat =
      w.url_dim->type().CategoryByName("domain").take();
  const auto& domains = w.url_dim->CategoryExtent(domain_cat);
  ReductionSpecification spec;
  for (int i = 0; i < n; ++i) {
    // Alternate granularities so consecutive actions are unordered; disjoint
    // single-domain predicates keep the set NonCrossing.
    const char* gran = (i % 2 == 0) ? "a[Time.quarter, URL.domain]"
                                    : "a[Time.week, URL.url]";
    std::string text = std::string(gran) + " s[URL.domain = '" +
                       w.url_dim->value_name(domains[i % domains.size()]) +
                       "' AND Time.quarter <= 2001Q4]";
    // The week-granularity variant needs a week-typed time bound.
    if (i % 2 == 1) {
      text = std::string(gran) + " s[URL.domain = '" +
             w.url_dim->value_name(domains[i % domains.size()]) +
             "' AND Time.week <= 2001W52]";
    }
    spec.Add(ParseAction(*w.mo, text, "a" + std::to_string(i)).take());
  }
  for (auto _ : state) {
    Status st = ValidateSpecification(*w.mo, spec);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(st);
  }
  state.counters["actions"] = n;
}

BENCHMARK(BM_CheckDisjointFamily)->RangeMultiplier(2)->Range(2, 64);

/// Tier chains with NOW-relative bounds: each tier's shrinking lower bound
/// must be proven covered by the next (Section 5.3's eq. (23) via the
/// prover).
void BM_CheckGrowingTiers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));  // chain length
  ClickstreamWorkload w = MakeWorkload(0);
  // Tier i aggregates months in [NOW-12(i+1)m, NOW-12i m] to ever-coarser
  // granularities; the last tier is unbounded below.
  // Tier i lives at its own time category (the grammar requires predicates
  // at or above the aggregation category) over [NOW-12(i+1)m, NOW-12i m]
  // (tier 0 keeps the last 6 months in detail); the final tier is unbounded
  // below, anchoring the Growing chain.
  const char* grans[] = {"Time.month, URL.domain",
                         "Time.quarter, URL.domain",
                         "Time.quarter, URL.domain_grp",
                         "Time.year, URL.domain_grp",
                         "Time.year, URL.TOP"};
  const char* cats[] = {"month", "quarter", "quarter", "year", "year"};
  ReductionSpecification spec;
  for (int i = 0; i < n; ++i) {
    std::string g = grans[std::min(i, 4)];
    std::string c = std::string("Time.") + cats[std::min(i, 4)];
    std::string upper =
        std::to_string(i == 0 ? 6 : 12 * i) + " months";
    std::string text;
    if (i + 1 < n) {
      text = "a[" + g + "] s[NOW - " + std::to_string(12 * (i + 1)) +
             " months <= " + c + " AND " + c + " <= NOW - " + upper + "]";
    } else {
      text = "a[" + g + "] s[" + c + " <= NOW - " + upper + "]";
    }
    spec.Add(ParseAction(*w.mo, text, "t" + std::to_string(i)).take());
  }
  for (auto _ : state) {
    Status st = ValidateSpecification(*w.mo, spec);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(st);
  }
  state.counters["tiers"] = n;
}

BENCHMARK(BM_CheckGrowingTiers)->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
