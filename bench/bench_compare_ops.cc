// B6 — cost of the mixed-granularity comparison operators (paper
// Definition 5): exact same-branch comparisons are O(rollup depth); parallel
// branches (week vs quarter) drill down to the day GLB and compare
// materialized sets. Expected shape: the exact path is nanoseconds; Def-5
// drill-downs cost proportional to the drilled set (amortized by the
// dimension's memoization).

#include "bench_common.h"

#include "query/compare.h"

namespace dwred::bench {
namespace {

struct Fixture {
  std::unique_ptr<MultidimensionalObject> mo;
  int64_t t;
};

/// A reduced warehouse whose facts sit at quarter/domain granularity.
Fixture MakeReduced() {
  Fixture fx;
  ClickstreamWorkload w = MakeWorkload(50000);
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 2));
  fx.t = DaysFromCivil({2003, 1, 1});
  fx.mo = std::make_unique<MultidimensionalObject>(
      Reduce(*w.mo, spec, fx.t, {false}).take());
  return fx;
}

void RunAtomBench(benchmark::State& state, const char* pred_text,
                  SelectionApproach ap) {
  static Fixture fx = MakeReduced();
  auto pred = ParsePredicate(*fx.mo, pred_text).take();
  const size_t n = fx.mo->num_facts();
  size_t i = 0;
  for (auto _ : state) {
    double w = EvalQueryPredOnFact(*pred, *fx.mo, i % n, fx.t, ap);
    benchmark::DoNotOptimize(w);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ExactQuarterCompare(benchmark::State& state) {
  // Fact at quarter, predicate at quarter: exact index comparison.
  RunAtomBench(state, "Time.quarter <= 2001Q2",
               SelectionApproach::kConservative);
}
BENCHMARK(BM_ExactQuarterCompare);

void BM_ExactRollupCompare(benchmark::State& state) {
  // Fact at quarter, predicate at year: one rollup step.
  RunAtomBench(state, "Time.year <= 2001", SelectionApproach::kConservative);
}
BENCHMARK(BM_ExactRollupCompare);

void BM_Def5MonthUnderQuarter(benchmark::State& state) {
  // Fact at quarter, predicate at month: drill to months (<= 3 values).
  RunAtomBench(state, "Time.month <= 2001/5",
               SelectionApproach::kConservative);
}
BENCHMARK(BM_Def5MonthUnderQuarter);

void BM_Def5WeekVsQuarterDrillsToDays(benchmark::State& state) {
  // Parallel branches: GLB is day; drills the quarter's materialized days.
  RunAtomBench(state, "Time.week <= 2001W20",
               SelectionApproach::kConservative);
}
BENCHMARK(BM_Def5WeekVsQuarterDrillsToDays);

void BM_Def5WeightedWeekVsQuarter(benchmark::State& state) {
  RunAtomBench(state, "Time.week <= 2001W20", SelectionApproach::kWeighted);
}
BENCHMARK(BM_Def5WeightedWeekVsQuarter);

void BM_Def5UrlUnderDomain(benchmark::State& state) {
  // Fact at domain, predicate at url: categorical drill-down.
  RunAtomBench(state, "URL.url = www.site0.com/page0",
               SelectionApproach::kConservative);
}
BENCHMARK(BM_Def5UrlUnderDomain);

void BM_Def5MembershipWeekSet(benchmark::State& state) {
  RunAtomBench(state,
               "Time.week IN {2001W1, 2001W2, 2001W3, 2001W4, 2001W5}",
               SelectionApproach::kConservative);
}
BENCHMARK(BM_Def5MembershipWeekSet);

}  // namespace
}  // namespace dwred::bench
