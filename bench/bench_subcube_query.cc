// B5 — querying the subcube warehouse (paper Section 7.3): per-subcube
// evaluation plus one final combining aggregation, in both the synchronized
// state and the un-synchronized state (Figure 9's rewrite, which additionally
// pulls rows from immediate parents and filters by current responsibility).
//
// Expected shape: the synchronized path's cost tracks resident rows; the
// un-synchronized path pays a responsibility re-check per candidate row, so
// it costs more — the price of querying without waiting for synchronization.

#include "bench_common.h"

#include "exec/thread_pool.h"
#include "subcube/manager.h"

namespace dwred::bench {
namespace {

struct Warehouse {
  std::shared_ptr<Dimension> time_dim, url_dim;
  std::unique_ptr<SubcubeManager> mgr;
  std::shared_ptr<PredExpr> pred;
  std::vector<CategoryId> gran;
  int64_t t;
};

Warehouse MakeWarehouse(size_t per_month, bool leave_unsynced) {
  Warehouse wh;
  ClickstreamWorkload w = MakeWorkload(0);
  wh.time_dim = w.time_dim;
  wh.url_dim = w.url_dim;
  ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
  wh.mgr = std::make_unique<SubcubeManager>(
      SubcubeManager::Create("Click", w.mo->dimensions(),
                             std::vector<MeasureType>(w.mo->measure_types()),
                             spec)
          .take());
  uint64_t seed = 3;
  for (int m = 0; m < 30; ++m) {
    int year = 2000 + m / 12, month = m % 12 + 1;
    int64_t lo = DaysFromCivil({year, month, 1});
    int64_t hi = DaysFromCivil({year, month, DaysInMonth(year, month)});
    MultidimensionalObject batch =
        MakeClickBatch(w.time_dim, w.url_dim, lo, hi, per_month, ++seed);
    (void)wh.mgr->InsertBottomFacts(batch);
    // Synchronize after every month except (optionally) the last few, so the
    // un-synchronized variant is at most one tier-level behind.
    if (!leave_unsynced || m < 24) {
      (void)wh.mgr->Synchronize(hi + 1);
    }
  }
  wh.t = DaysFromCivil({2002, 7, 1});
  wh.pred = ParsePredicate(wh.mgr->context(),
                           "URL.domain_grp = .com AND "
                           "NOW - 24 months <= Time.month")
                .take();
  wh.gran =
      ParseGranularityList(wh.mgr->context(), "Time.month, URL.domain_grp")
          .take();
  return wh;
}

void BM_QuerySynchronized(benchmark::State& state) {
  Warehouse wh = MakeWarehouse(static_cast<size_t>(state.range(0)), false);
  (void)wh.mgr->Synchronize(wh.t);
  for (auto _ : state) {
    auto r = wh.mgr->Query(wh.pred.get(), &wh.gran, wh.t, true);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().num_facts());
  }
  size_t rows = 0;
  for (size_t i = 0; i < wh.mgr->num_subcubes(); ++i) {
    rows += wh.mgr->subcube(i).table.num_rows();
  }
  state.counters["resident_rows"] = static_cast<double>(rows);
}

BENCHMARK(BM_QuerySynchronized)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_QuerySynchronizedParallel(benchmark::State& state) {
  // Section 7.3's "separately and in parallel": one thread per subcube.
  Warehouse wh = MakeWarehouse(static_cast<size_t>(state.range(0)), false);
  (void)wh.mgr->Synchronize(wh.t);
  for (auto _ : state) {
    auto r = wh.mgr->Query(wh.pred.get(), &wh.gran, wh.t, true,
                           /*parallel=*/true);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().num_facts());
  }
}

BENCHMARK(BM_QuerySynchronizedParallel)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_QueryUnsynchronized(benchmark::State& state) {
  Warehouse wh = MakeWarehouse(static_cast<size_t>(state.range(0)), true);
  for (auto _ : state) {
    auto r = wh.mgr->Query(wh.pred.get(), &wh.gran, wh.t, false);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().num_facts());
  }
  size_t rows = 0;
  for (size_t i = 0; i < wh.mgr->num_subcubes(); ++i) {
    rows += wh.mgr->subcube(i).table.num_rows();
  }
  state.counters["resident_rows"] = static_cast<double>(rows);
}

BENCHMARK(BM_QueryUnsynchronized)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Thread-count sweep (PR 3): the parallel per-subcube fan-out plus the
// sharded Select/AggregateFormation underneath it, at pool sizes 1..8. One
// invocation records the sweep in the JSON sidecar (see bench_main.cc).
void BM_QueryThreadSweep(benchmark::State& state) {
  const size_t per_month = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Warehouse wh = MakeWarehouse(per_month, false);
  (void)wh.mgr->Synchronize(wh.t);
  exec::ThreadPool::ResetGlobal(threads);
  for (auto _ : state) {
    auto r = wh.mgr->Query(wh.pred.get(), &wh.gran, wh.t, true,
                           /*parallel=*/true);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().num_facts());
  }
  state.counters["threads"] = threads;
  exec::ThreadPool::ResetGlobal(0);
}

BENCHMARK(BM_QueryThreadSweep)
    ->ArgsProduct({{10000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
