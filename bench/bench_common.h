#pragma once

// Shared fixtures for the benchmark harness: canonical retention policies
// over the click-stream workload, sized per benchmark parameter. All
// generation is seeded and deterministic.

#include <benchmark/benchmark.h>

#include "reduce/semantics.h"
#include "reduce/soundness.h"
#include "spec/parser.h"
#include "workload/clickstream.h"

namespace dwred::bench {

/// Tiered retention policies, by increasing aggressiveness. Tier text
/// mirrors the paper's examples; every set is Growing + NonCrossing.
inline const char* kTierMonth =
    "a[Time.month, URL.domain] s["
    "NOW - 12 months <= Time.month <= NOW - 6 months]";
inline const char* kTierQuarter =
    "a[Time.quarter, URL.domain] s["
    "NOW - 36 months <= Time.quarter AND Time.quarter <= NOW - 12 months]";
inline const char* kTierYear =
    "a[Time.year, URL.domain_grp] s[Time.year <= NOW - 36 months]";

/// Builds a policy with the first `tiers` tiers (0..3) against `mo`.
inline ReductionSpecification MakePolicy(const MultidimensionalObject& mo,
                                         int tiers) {
  ReductionSpecification spec;
  const char* texts[] = {kTierMonth, kTierQuarter, kTierYear};
  // Later tiers are prerequisites of earlier ones (Growing): install the
  // suffix of the list of length `tiers`, from the coarsest up.
  for (int i = 3 - tiers; i < 3; ++i) {
    auto a = ParseAction(mo, texts[i], "tier" + std::to_string(i + 1));
    if (!a.ok()) {
      benchmark::DoNotOptimize(a.status().message());
      std::abort();
    }
    spec.Add(a.take());
  }
  return spec;
}

/// Canonical 3-year click workload with `n` facts.
inline ClickstreamWorkload MakeWorkload(size_t n) {
  ClickstreamConfig cfg;
  cfg.num_clicks = n;
  cfg.start = {1999, 1, 1};
  cfg.span_days = 3 * 365;
  cfg.num_domains = 200;
  cfg.urls_per_domain = 20;
  return MakeClickstream(cfg);
}

}  // namespace dwred::bench
