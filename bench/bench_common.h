#pragma once

// Shared fixtures for the benchmark harness: canonical retention policies
// over the click-stream workload, sized per benchmark parameter. All
// generation is seeded and deterministic.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "obs/logging.h"
#include "obs/metrics.h"
#include "reduce/semantics.h"
#include "reduce/soundness.h"
#include "spec/parser.h"
#include "workload/clickstream.h"
#include "workload/retail.h"

namespace dwred::bench {

/// Tiered retention policies, by increasing aggressiveness. Tier text
/// mirrors the paper's examples; every set is Growing + NonCrossing.
inline const char* kTierMonth =
    "a[Time.month, URL.domain] s["
    "NOW - 12 months <= Time.month <= NOW - 6 months]";
inline const char* kTierQuarter =
    "a[Time.quarter, URL.domain] s["
    "NOW - 36 months <= Time.quarter AND Time.quarter <= NOW - 12 months]";
inline const char* kTierYear =
    "a[Time.year, URL.domain_grp] s[Time.year <= NOW - 36 months]";

/// Builds a policy with the first `tiers` tiers (0..3) against `mo`.
inline Result<ReductionSpecification> MakePolicy(
    const MultidimensionalObject& mo, int tiers) {
  ReductionSpecification spec;
  const char* texts[] = {kTierMonth, kTierQuarter, kTierYear};
  // Later tiers are prerequisites of earlier ones (Growing): install the
  // suffix of the list of length `tiers`, from the coarsest up.
  for (int i = 3 - tiers; i < 3; ++i) {
    auto a = ParseAction(mo, texts[i], "tier" + std::to_string(i + 1));
    if (!a.ok()) {
      DWRED_LOG(Error) << "tier " << (i + 1) << " failed to parse: "
                       << texts[i] << " — " << a.status().ToString();
      return a.status();
    }
    spec.Add(a.take());
  }
  return spec;
}

/// Registers an atexit hook that writes the metrics registry's JSON snapshot
/// to $DWRED_METRICS_SIDECAR (when set). Instantiate one at namespace scope
/// in a benchmark binary; runs after benchmark::Shutdown so the dump covers
/// every iteration.
struct MetricsSidecarAtExit {
  MetricsSidecarAtExit() {
    std::atexit([] {
      const char* path = std::getenv("DWRED_METRICS_SIDECAR");
      if (path == nullptr || path[0] == '\0') return;
      std::FILE* f = std::fopen(path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "metrics sidecar: cannot open %s\n", path);
        return;
      }
      std::string json = obs::MetricsRegistry::Global().RenderJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    });
  }
};

inline MetricsSidecarAtExit g_metrics_sidecar;

/// Unwraps a Result in benchmark setup code. Benchmarks have no error
/// channel, so a failed setup still dies — but the decision now sits at the
/// harness edge, not inside MakePolicy.
template <typename T>
inline T TakeOrAbort(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "benchmark setup failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return r.take();
}

/// Canonical 3-year click workload with `n` facts.
inline ClickstreamWorkload MakeWorkload(size_t n) {
  ClickstreamConfig cfg;
  cfg.num_clicks = n;
  cfg.start = {1999, 1, 1};
  cfg.span_days = 3 * 365;
  cfg.num_domains = 200;
  cfg.urls_per_domain = 20;
  return MakeClickstream(cfg);
}

/// The 1M-fact (by default) retail workload from the acceptance criteria:
/// three dimensions, two non-time hierarchies, SUM measures.
inline RetailWorkload MakeRetailWorkload(size_t n,
                                         bool preregister_days = false) {
  RetailConfig cfg;
  cfg.seed = 41;
  cfg.num_sales = n;
  cfg.start = {1999, 1, 1};
  cfg.span_days = 3 * 365;
  cfg.preregister_days = preregister_days;
  return MakeRetail(cfg);
}

/// Three-tier Growing + NonCrossing retention policy over the retail schema.
inline Result<ReductionSpecification> MakeRetailPolicy(
    const MultidimensionalObject& mo) {
  ReductionSpecification spec;
  const char* texts[] = {
      "a[Time.year, Product.category, Store.region] s["
      "Time.year <= NOW - 36 months]",
      "a[Time.quarter, Product.category, Store.region] s["
      "NOW - 36 months <= Time.quarter AND Time.quarter <= NOW - 12 months]",
      "a[Time.month, Product.brand, Store.city] s["
      "NOW - 12 months <= Time.month <= NOW - 6 months]",
  };
  for (int i = 0; i < 3; ++i) {
    DWRED_ASSIGN_OR_RETURN(Action a,
                           ParseAction(mo, texts[i], "t" + std::to_string(i)));
    spec.Add(std::move(a));
  }
  return spec;
}

}  // namespace dwred::bench
