// B4 — subcube synchronization cost (paper Section 7.2: synchronization
// happens on bulk load / NOW advancing and "is not considered a performance
// bottleneck").
//
// Simulates an operational warehouse: monthly bulk loads over three years
// with a synchronization after each. Reports rows migrated and load+sync
// throughput. Expected shape: per-month cost is dominated by the bulk load
// itself; migration touches only the rows crossing a tier boundary.

#include "bench_common.h"

#include "subcube/manager.h"

namespace dwred::bench {
namespace {

void BM_MonthlyLoadAndSync(benchmark::State& state) {
  const size_t per_month = static_cast<size_t>(state.range(0));
  const int months = 36;

  for (auto _ : state) {
    state.PauseTiming();
    ClickstreamWorkload w = MakeWorkload(0);
    ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
    auto mgr_res = SubcubeManager::Create(
        "Click", w.mo->dimensions(),
        std::vector<MeasureType>(w.mo->measure_types()), spec);
    if (!mgr_res.ok()) {
      state.SkipWithError(mgr_res.status().ToString().c_str());
      return;
    }
    SubcubeManager mgr = mgr_res.take();
    uint64_t seed = 11;
    size_t migrated_total = 0;
    state.ResumeTiming();

    for (int m = 0; m < months; ++m) {
      int year = 2000 + m / 12, month = m % 12 + 1;
      int64_t lo = DaysFromCivil({year, month, 1});
      int64_t hi = DaysFromCivil({year, month, DaysInMonth(year, month)});
      MultidimensionalObject batch =
          MakeClickBatch(w.time_dim, w.url_dim, lo, hi, per_month, ++seed);
      if (auto st = mgr.InsertBottomFacts(batch); !st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      auto migrated = mgr.Synchronize(hi + 1);
      if (!migrated.ok()) {
        state.SkipWithError(migrated.status().ToString().c_str());
        return;
      }
      migrated_total += migrated.value();
    }
    state.counters["migrated_rows"] = static_cast<double>(migrated_total);
    size_t rows = 0;
    for (size_t i = 0; i < mgr.num_subcubes(); ++i) {
      rows += mgr.subcube(i).table.num_rows();
    }
    state.counters["resident_rows"] = static_cast<double>(rows);
    state.counters["resident_bytes"] = static_cast<double>(mgr.TotalBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(per_month) * months *
                          state.iterations());
}

BENCHMARK(BM_MonthlyLoadAndSync)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// Synchronization alone, on a warehouse where one year of detail ages into
// the monthly tier at once (worst-case single sync).
void BM_SingleSyncWave(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ClickstreamWorkload w = MakeWorkload(0);
    ReductionSpecification spec = TakeOrAbort(MakePolicy(*w.mo, 3));
    auto mgr = SubcubeManager::Create(
                   "Click", w.mo->dimensions(),
                   std::vector<MeasureType>(w.mo->measure_types()), spec)
                   .take();
    MultidimensionalObject batch = MakeClickBatch(
        w.time_dim, w.url_dim, DaysFromCivil({2000, 1, 1}),
        DaysFromCivil({2000, 12, 31}), facts, 7);
    if (auto st = mgr.InsertBottomFacts(batch); !st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    auto migrated = mgr.Synchronize(DaysFromCivil({2001, 7, 1}));
    if (!migrated.ok()) {
      state.SkipWithError(migrated.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(migrated.value());
    state.counters["migrated_rows"] = static_cast<double>(migrated.value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(facts) * state.iterations());
}

BENCHMARK(BM_SingleSyncWave)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dwred::bench
