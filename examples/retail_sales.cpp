// Retail sales: reduction and querying on a three-dimensional warehouse,
// plus the specification dynamics of paper Section 5 (insert, then delete
// and replace an action that turned out too radical).
//
//   $ ./retail_sales [num_sales]

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "query/operators.h"
#include "reduce/dynamics.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "workload/retail.h"

using namespace dwred;

int main(int argc, char** argv) {
  size_t num_sales = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  RetailConfig cfg;
  cfg.num_sales = num_sales;
  cfg.start = {2000, 1, 1};
  cfg.span_days = 730;
  std::printf("Generating %zu sales over 2000-2001...\n", num_sales);
  RetailWorkload w = MakeRetail(cfg);

  // First policy attempt: a radical action that jumps straight to
  // (year, category, region) for everything older than a year.
  const char* radical_text =
      "a[Time.year, Product.category, Store.region] s["
      "Time.year <= NOW - 1 year]";
  ReductionSpecification spec;
  auto ins = InsertActions(
      *w.mo, spec, {ParseAction(*w.mo, radical_text, "radical").take()});
  if (!ins.ok()) {
    std::fprintf(stderr, "insert failed: %s\n", ins.status().ToString().c_str());
    return 1;
  }
  spec = ins.take();
  std::printf("Installed 'radical' (year/category/region after 1 year).\n");

  // Before it takes effect, management reconsiders: delete it (Definition 4 —
  // legal while it has no effect on the facts) and install a gentler tiered
  // policy instead.
  int64_t t0 = DaysFromCivil({2000, 6, 1});  // nothing is a year old yet
  auto del = DeleteActions(*w.mo, spec, {0}, t0);
  if (!del.ok()) {
    std::fprintf(stderr, "delete failed: %s\n", del.status().ToString().c_str());
    return 1;
  }
  spec = del.take();
  std::printf("Deleted 'radical' before it had any effect (Definition 4).\n");

  auto gentle1 = ParseAction(
      *w.mo,
      "a[Time.month, Product.sku, Store.city] s["
      "NOW - 24 months <= Time.month <= NOW - 6 months]",
      "monthly");
  auto gentle2 = ParseAction(
      *w.mo,
      "a[Time.quarter, Product.brand, Store.region] s["
      "Time.quarter <= NOW - 24 months]",
      "quarterly");
  auto ins2 = InsertActions(*w.mo, spec, {gentle1.take(), gentle2.take()});
  if (!ins2.ok()) {
    std::fprintf(stderr, "insert failed: %s\n",
                 ins2.status().ToString().c_str());
    return 1;
  }
  spec = ins2.take();
  std::printf("Installed tiered policy {monthly, quarterly}.\n\n");

  // Age the warehouse to 2003/1 and reduce.
  int64_t t = DaysFromCivil({2003, 1, 1});
  size_t bytes_before = w.mo->FactBytes();
  ReduceStats stats;
  auto reduced =
      Reduce(*w.mo, spec, t, {/*track_provenance=*/false}, &stats);
  if (!reduced.ok()) {
    std::fprintf(stderr, "reduce failed: %s\n",
                 reduced.status().ToString().c_str());
    return 1;
  }
  MultidimensionalObject r = reduced.take();
  std::printf("Reduced at 2003/1: %zu -> %zu facts, %s -> %s (%.1fx)\n\n",
              stats.input_facts, stats.output_facts,
              HumanBytes(bytes_before).c_str(),
              HumanBytes(r.FactBytes()).c_str(),
              static_cast<double>(bytes_before) /
                  static_cast<double>(r.FactBytes()));

  // Query the reduced warehouse: revenue by quarter and region
  // (availability approach keeps everything exact).
  auto gran = ParseGranularityList(
      r, "Time.quarter, Product.category, Store.region");
  if (!gran.ok()) {
    std::fprintf(stderr, "%s\n", gran.status().ToString().c_str());
    return 1;
  }
  auto agg = AggregateFormation(r, gran.value(),
                                AggregationApproach::kAvailability,
                                /*track_provenance=*/false);
  if (!agg.ok()) {
    std::fprintf(stderr, "%s\n", agg.status().ToString().c_str());
    return 1;
  }
  std::printf("Revenue by (quarter, category, region): %zu cells; sample:\n",
              agg.value().num_facts());
  for (FactId f = 0; f < agg.value().num_facts() && f < 8; ++f) {
    std::printf("  %s\n", agg.value().FormatFact(f).c_str());
  }

  // Conservative vs liberal month-level selection on quarter-level data.
  auto pred = ParsePredicate(r, "Time.month <= 2000/2").take();
  auto cons = Select(r, *pred, t).take();
  auto lib = Select(r, *pred, t, SelectionApproach::kLiberal).take();
  std::printf(
      "\ns[Time.month <= 2000/2] on the reduced warehouse: conservative %zu "
      "facts, liberal %zu facts\n",
      cons.mo.num_facts(), lib.mo.num_facts());
  std::printf("Done.\n");
  return 0;
}
