// Click-stream retention: the paper's motivating scenario at scale.
//
// Generates several years of synthetic clicks, installs a three-tier
// retention policy (detail -> month after 6 months -> quarter after a year ->
// year after three years), then advances NOW month by month, reducing
// gradually, and reports the storage trajectory — the "huge storage gains"
// the paper's abstract promises, measured.
//
//   $ ./clickstream_retention [num_clicks]

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "reduce/dynamics.h"
#include "reduce/semantics.h"
#include "spec/parser.h"
#include "workload/clickstream.h"

using namespace dwred;

int main(int argc, char** argv) {
  size_t num_clicks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  ClickstreamConfig cfg;
  cfg.num_clicks = num_clicks;
  cfg.start = {1999, 1, 1};
  cfg.span_days = 3 * 365;
  cfg.num_domains = 200;
  cfg.urls_per_domain = 20;
  std::printf("Generating %zu clicks over 1999-2001...\n", num_clicks);
  ClickstreamWorkload w = MakeClickstream(cfg);

  // Three-tier retention policy. Each tier's NOW-relative lower bound is
  // covered by the next tier (the Growing property): month-level detail for
  // clicks 6-12 months old, quarter level for 1-3 years, year level beyond.
  const char* tiers[] = {
      "a[Time.month, URL.domain] s["
      "NOW - 12 months <= Time.month <= NOW - 6 months]",
      "a[Time.quarter, URL.domain] s["
      "NOW - 36 months <= Time.quarter AND Time.quarter <= NOW - 12 months]",
      "a[Time.year, URL.domain_grp] s["
      "NOW - 72 months <= Time.year AND Time.year <= NOW - 36 months]",
      // The Section 8 extension: after six years even the yearly summaries
      // are purged.
      "d s[Time.year <= NOW - 72 months]",
  };
  std::vector<Action> actions;
  for (int i = 0; i < 4; ++i) {
    auto a = ParseAction(*w.mo, tiers[i], i == 3 ? "purge" : "tier" + std::to_string(i + 1));
    if (!a.ok()) {
      std::fprintf(stderr, "parse failed: %s\n", a.status().ToString().c_str());
      return 1;
    }
    actions.push_back(a.take());
  }
  ReductionSpecification spec;
  auto ins = InsertActions(*w.mo, spec, std::move(actions));
  if (!ins.ok()) {
    std::fprintf(stderr, "policy rejected: %s\n",
                 ins.status().ToString().c_str());
    return 1;
  }
  spec = ins.take();
  std::printf("Policy validated (NonCrossing + Growing), %zu actions.\n\n",
              spec.size());

  // Advance NOW month by month from 1999/7 to 2003/12, reducing gradually.
  size_t original_facts = w.mo->num_facts();
  size_t original_bytes = w.mo->FactBytes();
  MultidimensionalObject current = std::move(*w.mo);
  std::printf("%-10s %12s %14s %12s %10s\n", "NOW", "facts", "bytes",
              "reduction", "aggregated");
  for (int ym = 1999 * 12 + 6; ym <= 2008 * 12 + 11; ++ym) {
    int year = ym / 12;
    int month = ym % 12 + 1;
    int64_t t = DaysFromCivil({year, month, 1});
    ReduceStats stats;
    auto reduced = Reduce(current, spec, t, {/*track_provenance=*/false},
                          &stats);
    if (!reduced.ok()) {
      std::fprintf(stderr, "reduce failed: %s\n",
                   reduced.status().ToString().c_str());
      return 1;
    }
    current = reduced.take();
    if (month == 1 || month == 7) {
      char when[16];
      std::snprintf(when, sizeof(when), "%d/%02d", year, month);
      char factor[24];
      if (current.FactBytes() > 0) {
        std::snprintf(factor, sizeof(factor), "%.1fx",
                      static_cast<double>(original_bytes) /
                          static_cast<double>(current.FactBytes()));
      } else {
        std::snprintf(factor, sizeof(factor), "all purged");
      }
      std::printf("%-10s %12zu %14s %12s %10zu\n", when, current.num_facts(),
                  HumanBytes(current.FactBytes()).c_str(), factor,
                  stats.facts_aggregated);
    }
  }

  std::printf(
      "\nStarted with %zu facts (%s); the fully aged warehouse retains the\n"
      "year/domain-group summaries only — the detail was physically deleted\n"
      "while every SUM stayed exact.\n",
      original_facts, HumanBytes(original_bytes).c_str());
  return 0;
}
