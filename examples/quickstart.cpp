// Quickstart: the paper's running example end to end.
//
// Builds the ISP click warehouse of Table 2, installs the data reduction
// specification {a1, a2} (eqs. 4 and 5), validates it (NonCrossing +
// Growing), reduces at the three snapshot times of Figure 3, and runs the
// Section 6 queries on the reduced warehouse.
//
//   $ ./quickstart

#include <cstdio>

#include "mdm/paper_example.h"
#include "query/operators.h"
#include "reduce/dynamics.h"
#include "reduce/semantics.h"
#include "spec/parser.h"

using namespace dwred;

namespace {

void PrintMo(const char* title, const MultidimensionalObject& mo) {
  std::printf("%s\n", title);
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    std::printf("  %s\n", mo.FormatFact(f).c_str());
  }
}

}  // namespace

int main() {
  // 1. The warehouse of Table 2 / Figure 1.
  IspExample ex = MakeIspExample();
  PrintMo("Initial MO (Table 2):", *ex.mo);

  // 2. The data reduction specification: aggregate .com clicks to
  //    (month, domain) when 6-12 months old, to (quarter, domain) after a
  //    year.
  const char* a1_text =
      "p(a[Time.month, URL.domain] s[URL.domain_grp = .com AND "
      "NOW - 12 months <= Time.month <= NOW - 6 months](O))";
  const char* a2_text =
      "p(a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND "
      "Time.quarter <= NOW - 4 quarters](O))";

  ReductionSpecification spec;
  auto inserted = InsertActions(
      *ex.mo, spec,
      {ParseAction(*ex.mo, a1_text, "a1").take(),
       ParseAction(*ex.mo, a2_text, "a2").take()});
  if (!inserted.ok()) {
    std::fprintf(stderr, "insert failed: %s\n",
                 inserted.status().ToString().c_str());
    return 1;
  }
  spec = inserted.take();
  std::printf("\nInstalled specification:\n");
  for (const Action& a : spec.actions()) {
    std::printf("  %s = %s\n", a.name.c_str(), a.ToString(*ex.mo).c_str());
  }

  // 3. Reduce at the Figure 3 snapshot times.
  for (CivilDate when : {CivilDate{2000, 4, 5}, CivilDate{2000, 6, 5},
                         CivilDate{2000, 11, 5}}) {
    auto reduced = Reduce(*ex.mo, spec, DaysFromCivil(when));
    if (!reduced.ok()) {
      std::fprintf(stderr, "reduce failed: %s\n",
                   reduced.status().ToString().c_str());
      return 1;
    }
    char title[64];
    std::snprintf(title, sizeof(title), "\nReduced MO at %d/%d/%d:", when.year,
                  when.month, when.day);
    PrintMo(title, reduced.value());
  }

  // 4. Queries on the fully reduced warehouse (Section 6).
  int64_t t = DaysFromCivil({2000, 11, 5});
  auto reduced = Reduce(*ex.mo, spec, t).take();

  // Conservative selection: Q2 = s[Time.month <= 1999/10] returns nothing —
  // the quarter-level facts only partly overlap the month.
  auto q2 = ParsePredicate(reduced, "Time.month <= 1999/11").take();
  auto sel = Select(reduced, *q2, t).take();
  std::printf("\nQ2 conservative s[Time.month <= 1999/11]: %zu facts\n",
              sel.mo.num_facts());
  auto sel_lib =
      Select(reduced, *q2, t, SelectionApproach::kLiberal).take();
  std::printf("Q2 liberal: %zu facts (the partly-overlapping quarters)\n",
              sel_lib.mo.num_facts());

  // Availability-approach aggregation: Q5 = a[Time.month, URL.domain]
  // (Figure 5).
  auto gran = ParseGranularityList(reduced, "Time.month, URL.domain").take();
  auto q5 = AggregateFormation(reduced, gran).take();
  PrintMo("\nQ5 = a[Time.month, URL.domain] (availability approach):", q5);

  // Projection (Figure 4).
  auto proj = Project(reduced, {ex.url_dim}, {ex.number_of, ex.dwell_time})
                  .take();
  PrintMo("\npi[URL][Number_of, Dwell_time]:", proj);

  std::printf("\nDone.\n");
  return 0;
}
