// Subcube warehouse: the Section 7 implementation strategy as a long-running
// operational warehouse. Clicks are bulk-loaded monthly into the bottom
// subcube, the cubes are synchronized as NOW advances, and queries are
// answered per subcube with a final combining aggregation — including in the
// un-synchronized state (Figure 9's rewrite).
//
//   $ ./subcube_warehouse [clicks_per_month]

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "spec/parser.h"
#include "subcube/manager.h"
#include "workload/clickstream.h"

using namespace dwred;

int main(int argc, char** argv) {
  size_t per_month = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  // Dimensions shared by every batch.
  ClickstreamConfig cfg;
  cfg.num_clicks = 0;  // facts come from monthly batches below
  cfg.num_domains = 100;
  cfg.urls_per_domain = 10;
  ClickstreamWorkload w = MakeClickstream(cfg);

  ReductionSpecification spec;
  const char* tiers[] = {
      "a[Time.month, URL.domain] s["
      "NOW - 12 months <= Time.month <= NOW - 6 months]",
      "a[Time.quarter, URL.domain_grp] s[Time.quarter <= NOW - 12 months]",
  };
  for (int i = 0; i < 2; ++i) {
    auto a = ParseAction(*w.mo, tiers[i], "tier" + std::to_string(i + 1));
    if (!a.ok()) {
      std::fprintf(stderr, "%s\n", a.status().ToString().c_str());
      return 1;
    }
    spec.Add(a.take());
  }

  auto mgr_res = SubcubeManager::Create(
      "Click", w.mo->dimensions(),
      std::vector<MeasureType>(w.mo->measure_types()), spec);
  if (!mgr_res.ok()) {
    std::fprintf(stderr, "%s\n", mgr_res.status().ToString().c_str());
    return 1;
  }
  SubcubeManager mgr = mgr_res.take();
  std::printf("Subcube layout:\n%s\n", mgr.DescribeLayout().c_str());

  // 24 monthly loads starting 2000/1, synchronizing after each.
  uint64_t seed = 1;
  for (int ym = 2000 * 12; ym < 2002 * 12; ++ym) {
    int year = ym / 12, month = ym % 12 + 1;
    int64_t lo = DaysFromCivil({year, month, 1});
    int64_t hi = DaysFromCivil({year, month, DaysInMonth(year, month)});
    MultidimensionalObject batch =
        MakeClickBatch(w.time_dim, w.url_dim, lo, hi, per_month, ++seed);
    if (auto st = mgr.InsertBottomFacts(batch); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    int64_t now = hi + 1;
    auto migrated = mgr.Synchronize(now);
    if (!migrated.ok()) {
      std::fprintf(stderr, "%s\n", migrated.status().ToString().c_str());
      return 1;
    }
    if (month == 12 || month == 6) {
      std::printf("after %d/%02d: ", year, month);
      for (size_t i = 0; i < mgr.num_subcubes(); ++i) {
        std::printf("%s=%zu rows  ", mgr.subcube(i).name.c_str(),
                    mgr.subcube(i).table.num_rows());
      }
      std::printf("(total %s, migrated %zu)\n",
                  HumanBytes(mgr.TotalBytes()).c_str(), migrated.value());
    }
  }

  // A dashboard query: total clicks and dwell by month and domain group for
  // the trailing 18 months, answered across the subcubes.
  int64_t t = DaysFromCivil({2002, 1, 1});
  auto pred = ParsePredicate(mgr.context(),
                             "NOW - 18 months <= Time.month");
  auto gran =
      ParseGranularityList(mgr.context(), "Time.month, URL.domain_grp");
  if (!pred.ok() || !gran.ok()) {
    std::fprintf(stderr, "query parse failed\n");
    return 1;
  }
  auto result = mgr.Query(pred.value().get(), &gran.value(), t,
                          /*assume_synchronized=*/true);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTrailing-18-months dashboard (%zu cells); sample:\n",
              result.value().num_facts());
  for (FactId f = 0; f < result.value().num_facts() && f < 6; ++f) {
    std::printf("  %s\n", result.value().FormatFact(f).c_str());
  }

  // Load one more month WITHOUT synchronizing and query in the
  // un-synchronized state (Figure 9's rewrite) — then verify the
  // synchronized warehouse agrees.
  MultidimensionalObject extra = MakeClickBatch(
      w.time_dim, w.url_dim, DaysFromCivil({2002, 1, 1}),
      DaysFromCivil({2002, 1, 31}), per_month, ++seed);
  if (auto st = mgr.InsertBottomFacts(extra); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  int64_t t2 = DaysFromCivil({2002, 2, 1});
  auto unsync = mgr.Query(pred.value().get(), &gran.value(), t2,
                          /*assume_synchronized=*/false);
  auto ignored = mgr.Synchronize(t2);
  (void)ignored;
  auto sync = mgr.Query(pred.value().get(), &gran.value(), t2,
                        /*assume_synchronized=*/true);
  if (!unsync.ok() || !sync.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf(
      "\nUn-synchronized query returned %zu cells; after Synchronize() the "
      "same query returns %zu cells.\n",
      unsync.value().num_facts(), sync.value().num_facts());
  std::printf("Done.\n");
  return 0;
}
