file(REMOVE_RECURSE
  "CMakeFiles/bench_subcube_query.dir/bench_subcube_query.cc.o"
  "CMakeFiles/bench_subcube_query.dir/bench_subcube_query.cc.o.d"
  "bench_subcube_query"
  "bench_subcube_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subcube_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
