# Empty compiler generated dependencies file for bench_subcube_query.
# This may be replaced when dependencies are built.
