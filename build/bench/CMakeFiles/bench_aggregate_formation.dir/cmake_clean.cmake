file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregate_formation.dir/bench_aggregate_formation.cc.o"
  "CMakeFiles/bench_aggregate_formation.dir/bench_aggregate_formation.cc.o.d"
  "bench_aggregate_formation"
  "bench_aggregate_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
