# Empty compiler generated dependencies file for bench_aggregate_formation.
# This may be replaced when dependencies are built.
