# Empty compiler generated dependencies file for bench_spec_checks.
# This may be replaced when dependencies are built.
