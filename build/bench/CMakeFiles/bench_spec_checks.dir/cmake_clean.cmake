file(REMOVE_RECURSE
  "CMakeFiles/bench_spec_checks.dir/bench_spec_checks.cc.o"
  "CMakeFiles/bench_spec_checks.dir/bench_spec_checks.cc.o.d"
  "bench_spec_checks"
  "bench_spec_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spec_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
