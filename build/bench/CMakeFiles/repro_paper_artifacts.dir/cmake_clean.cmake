file(REMOVE_RECURSE
  "CMakeFiles/repro_paper_artifacts.dir/repro_paper_artifacts.cc.o"
  "CMakeFiles/repro_paper_artifacts.dir/repro_paper_artifacts.cc.o.d"
  "repro_paper_artifacts"
  "repro_paper_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_paper_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
