# Empty dependencies file for repro_paper_artifacts.
# This may be replaced when dependencies are built.
