# Empty compiler generated dependencies file for bench_query_latency.
# This may be replaced when dependencies are built.
