file(REMOVE_RECURSE
  "CMakeFiles/bench_reduce_pass.dir/bench_reduce_pass.cc.o"
  "CMakeFiles/bench_reduce_pass.dir/bench_reduce_pass.cc.o.d"
  "bench_reduce_pass"
  "bench_reduce_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduce_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
