# Empty compiler generated dependencies file for bench_reduce_pass.
# This may be replaced when dependencies are built.
