# Empty compiler generated dependencies file for bench_storage_reduction.
# This may be replaced when dependencies are built.
