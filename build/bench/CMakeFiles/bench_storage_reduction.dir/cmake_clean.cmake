file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_reduction.dir/bench_storage_reduction.cc.o"
  "CMakeFiles/bench_storage_reduction.dir/bench_storage_reduction.cc.o.d"
  "bench_storage_reduction"
  "bench_storage_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
