# Empty dependencies file for bench_subcube_sync.
# This may be replaced when dependencies are built.
