file(REMOVE_RECURSE
  "CMakeFiles/bench_subcube_sync.dir/bench_subcube_sync.cc.o"
  "CMakeFiles/bench_subcube_sync.dir/bench_subcube_sync.cc.o.d"
  "bench_subcube_sync"
  "bench_subcube_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subcube_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
