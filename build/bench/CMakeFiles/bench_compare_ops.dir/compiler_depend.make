# Empty compiler generated dependencies file for bench_compare_ops.
# This may be replaced when dependencies are built.
