file(REMOVE_RECURSE
  "CMakeFiles/bench_compare_ops.dir/bench_compare_ops.cc.o"
  "CMakeFiles/bench_compare_ops.dir/bench_compare_ops.cc.o.d"
  "bench_compare_ops"
  "bench_compare_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compare_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
