file(REMOVE_RECURSE
  "CMakeFiles/chrono_test.dir/chrono_test.cc.o"
  "CMakeFiles/chrono_test.dir/chrono_test.cc.o.d"
  "chrono_test"
  "chrono_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrono_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
