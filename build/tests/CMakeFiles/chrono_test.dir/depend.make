# Empty dependencies file for chrono_test.
# This may be replaced when dependencies are built.
