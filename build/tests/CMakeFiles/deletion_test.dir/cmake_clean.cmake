file(REMOVE_RECURSE
  "CMakeFiles/deletion_test.dir/deletion_test.cc.o"
  "CMakeFiles/deletion_test.dir/deletion_test.cc.o.d"
  "deletion_test"
  "deletion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deletion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
