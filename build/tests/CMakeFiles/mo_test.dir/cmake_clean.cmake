file(REMOVE_RECURSE
  "CMakeFiles/mo_test.dir/mo_test.cc.o"
  "CMakeFiles/mo_test.dir/mo_test.cc.o.d"
  "mo_test"
  "mo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
