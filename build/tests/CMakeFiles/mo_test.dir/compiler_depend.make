# Empty compiler generated dependencies file for mo_test.
# This may be replaced when dependencies are built.
