file(REMOVE_RECURSE
  "CMakeFiles/custom_hierarchy_test.dir/custom_hierarchy_test.cc.o"
  "CMakeFiles/custom_hierarchy_test.dir/custom_hierarchy_test.cc.o.d"
  "custom_hierarchy_test"
  "custom_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
