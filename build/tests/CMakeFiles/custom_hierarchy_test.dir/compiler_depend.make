# Empty compiler generated dependencies file for custom_hierarchy_test.
# This may be replaced when dependencies are built.
