# Empty dependencies file for reduce_semantics_test.
# This may be replaced when dependencies are built.
