file(REMOVE_RECURSE
  "CMakeFiles/reduce_semantics_test.dir/reduce_semantics_test.cc.o"
  "CMakeFiles/reduce_semantics_test.dir/reduce_semantics_test.cc.o.d"
  "reduce_semantics_test"
  "reduce_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduce_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
