file(REMOVE_RECURSE
  "CMakeFiles/query_selection_test.dir/query_selection_test.cc.o"
  "CMakeFiles/query_selection_test.dir/query_selection_test.cc.o.d"
  "query_selection_test"
  "query_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
