# Empty compiler generated dependencies file for query_selection_test.
# This may be replaced when dependencies are built.
