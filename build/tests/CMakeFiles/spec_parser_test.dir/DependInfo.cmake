
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spec_parser_test.cc" "tests/CMakeFiles/spec_parser_test.dir/spec_parser_test.cc.o" "gcc" "tests/CMakeFiles/spec_parser_test.dir/spec_parser_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/subcube/CMakeFiles/dwred_subcube.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/dwred_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dwred_query.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dwred_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dwred_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dwred_io.dir/DependInfo.cmake"
  "/root/repo/build/src/prover/CMakeFiles/dwred_prover.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/dwred_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/mdm/CMakeFiles/dwred_mdm.dir/DependInfo.cmake"
  "/root/repo/build/src/chrono/CMakeFiles/dwred_chrono.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dwred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
