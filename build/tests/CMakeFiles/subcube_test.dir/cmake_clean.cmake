file(REMOVE_RECURSE
  "CMakeFiles/subcube_test.dir/subcube_test.cc.o"
  "CMakeFiles/subcube_test.dir/subcube_test.cc.o.d"
  "subcube_test"
  "subcube_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subcube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
