# Empty dependencies file for subcube_test.
# This may be replaced when dependencies are built.
