# Empty compiler generated dependencies file for predicate_analysis_test.
# This may be replaced when dependencies are built.
