file(REMOVE_RECURSE
  "CMakeFiles/predicate_analysis_test.dir/predicate_analysis_test.cc.o"
  "CMakeFiles/predicate_analysis_test.dir/predicate_analysis_test.cc.o.d"
  "predicate_analysis_test"
  "predicate_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
