file(REMOVE_RECURSE
  "CMakeFiles/schema_reduction_test.dir/schema_reduction_test.cc.o"
  "CMakeFiles/schema_reduction_test.dir/schema_reduction_test.cc.o.d"
  "schema_reduction_test"
  "schema_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
