file(REMOVE_RECURSE
  "CMakeFiles/retail_sales.dir/retail_sales.cpp.o"
  "CMakeFiles/retail_sales.dir/retail_sales.cpp.o.d"
  "retail_sales"
  "retail_sales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_sales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
