# Empty dependencies file for clickstream_retention.
# This may be replaced when dependencies are built.
