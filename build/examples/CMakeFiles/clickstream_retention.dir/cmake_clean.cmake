file(REMOVE_RECURSE
  "CMakeFiles/clickstream_retention.dir/clickstream_retention.cpp.o"
  "CMakeFiles/clickstream_retention.dir/clickstream_retention.cpp.o.d"
  "clickstream_retention"
  "clickstream_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
