file(REMOVE_RECURSE
  "CMakeFiles/subcube_warehouse.dir/subcube_warehouse.cpp.o"
  "CMakeFiles/subcube_warehouse.dir/subcube_warehouse.cpp.o.d"
  "subcube_warehouse"
  "subcube_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subcube_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
