# Empty dependencies file for subcube_warehouse.
# This may be replaced when dependencies are built.
