file(REMOVE_RECURSE
  "libdwred_spec.a"
)
