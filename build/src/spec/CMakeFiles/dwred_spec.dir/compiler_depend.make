# Empty compiler generated dependencies file for dwred_spec.
# This may be replaced when dependencies are built.
