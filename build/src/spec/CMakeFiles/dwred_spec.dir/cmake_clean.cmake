file(REMOVE_RECURSE
  "CMakeFiles/dwred_spec.dir/action.cc.o"
  "CMakeFiles/dwred_spec.dir/action.cc.o.d"
  "CMakeFiles/dwred_spec.dir/parser.cc.o"
  "CMakeFiles/dwred_spec.dir/parser.cc.o.d"
  "CMakeFiles/dwred_spec.dir/predicate.cc.o"
  "CMakeFiles/dwred_spec.dir/predicate.cc.o.d"
  "CMakeFiles/dwred_spec.dir/predicate_analysis.cc.o"
  "CMakeFiles/dwred_spec.dir/predicate_analysis.cc.o.d"
  "libdwred_spec.a"
  "libdwred_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
