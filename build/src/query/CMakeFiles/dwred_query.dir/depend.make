# Empty dependencies file for dwred_query.
# This may be replaced when dependencies are built.
