file(REMOVE_RECURSE
  "CMakeFiles/dwred_query.dir/compare.cc.o"
  "CMakeFiles/dwred_query.dir/compare.cc.o.d"
  "CMakeFiles/dwred_query.dir/operators.cc.o"
  "CMakeFiles/dwred_query.dir/operators.cc.o.d"
  "libdwred_query.a"
  "libdwred_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
