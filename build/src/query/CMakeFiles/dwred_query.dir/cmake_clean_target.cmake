file(REMOVE_RECURSE
  "libdwred_query.a"
)
