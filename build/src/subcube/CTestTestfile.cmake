# CMake generated Testfile for 
# Source directory: /root/repo/src/subcube
# Build directory: /root/repo/build/src/subcube
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
