file(REMOVE_RECURSE
  "CMakeFiles/dwred_subcube.dir/manager.cc.o"
  "CMakeFiles/dwred_subcube.dir/manager.cc.o.d"
  "libdwred_subcube.a"
  "libdwred_subcube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_subcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
