# Empty compiler generated dependencies file for dwred_subcube.
# This may be replaced when dependencies are built.
