file(REMOVE_RECURSE
  "libdwred_subcube.a"
)
