file(REMOVE_RECURSE
  "CMakeFiles/dwred_io.dir/csv.cc.o"
  "CMakeFiles/dwred_io.dir/csv.cc.o.d"
  "CMakeFiles/dwred_io.dir/snapshot.cc.o"
  "CMakeFiles/dwred_io.dir/snapshot.cc.o.d"
  "CMakeFiles/dwred_io.dir/warehouse_io.cc.o"
  "CMakeFiles/dwred_io.dir/warehouse_io.cc.o.d"
  "libdwred_io.a"
  "libdwred_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
