file(REMOVE_RECURSE
  "libdwred_io.a"
)
