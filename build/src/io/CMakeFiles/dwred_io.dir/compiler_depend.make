# Empty compiler generated dependencies file for dwred_io.
# This may be replaced when dependencies are built.
