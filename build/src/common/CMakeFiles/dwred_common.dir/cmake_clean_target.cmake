file(REMOVE_RECURSE
  "libdwred_common.a"
)
