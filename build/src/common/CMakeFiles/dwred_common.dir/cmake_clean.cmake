file(REMOVE_RECURSE
  "CMakeFiles/dwred_common.dir/rng.cc.o"
  "CMakeFiles/dwred_common.dir/rng.cc.o.d"
  "CMakeFiles/dwred_common.dir/status.cc.o"
  "CMakeFiles/dwred_common.dir/status.cc.o.d"
  "CMakeFiles/dwred_common.dir/strings.cc.o"
  "CMakeFiles/dwred_common.dir/strings.cc.o.d"
  "libdwred_common.a"
  "libdwred_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
