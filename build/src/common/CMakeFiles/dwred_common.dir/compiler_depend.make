# Empty compiler generated dependencies file for dwred_common.
# This may be replaced when dependencies are built.
