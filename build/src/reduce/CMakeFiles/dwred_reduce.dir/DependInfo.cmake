
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reduce/dynamics.cc" "src/reduce/CMakeFiles/dwred_reduce.dir/dynamics.cc.o" "gcc" "src/reduce/CMakeFiles/dwred_reduce.dir/dynamics.cc.o.d"
  "/root/repo/src/reduce/schema_reduction.cc" "src/reduce/CMakeFiles/dwred_reduce.dir/schema_reduction.cc.o" "gcc" "src/reduce/CMakeFiles/dwred_reduce.dir/schema_reduction.cc.o.d"
  "/root/repo/src/reduce/semantics.cc" "src/reduce/CMakeFiles/dwred_reduce.dir/semantics.cc.o" "gcc" "src/reduce/CMakeFiles/dwred_reduce.dir/semantics.cc.o.d"
  "/root/repo/src/reduce/soundness.cc" "src/reduce/CMakeFiles/dwred_reduce.dir/soundness.cc.o" "gcc" "src/reduce/CMakeFiles/dwred_reduce.dir/soundness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/dwred_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/prover/CMakeFiles/dwred_prover.dir/DependInfo.cmake"
  "/root/repo/build/src/mdm/CMakeFiles/dwred_mdm.dir/DependInfo.cmake"
  "/root/repo/build/src/chrono/CMakeFiles/dwred_chrono.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dwred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
