file(REMOVE_RECURSE
  "CMakeFiles/dwred_reduce.dir/dynamics.cc.o"
  "CMakeFiles/dwred_reduce.dir/dynamics.cc.o.d"
  "CMakeFiles/dwred_reduce.dir/schema_reduction.cc.o"
  "CMakeFiles/dwred_reduce.dir/schema_reduction.cc.o.d"
  "CMakeFiles/dwred_reduce.dir/semantics.cc.o"
  "CMakeFiles/dwred_reduce.dir/semantics.cc.o.d"
  "CMakeFiles/dwred_reduce.dir/soundness.cc.o"
  "CMakeFiles/dwred_reduce.dir/soundness.cc.o.d"
  "libdwred_reduce.a"
  "libdwred_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
