file(REMOVE_RECURSE
  "libdwred_reduce.a"
)
