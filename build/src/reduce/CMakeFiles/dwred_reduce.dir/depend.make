# Empty dependencies file for dwred_reduce.
# This may be replaced when dependencies are built.
