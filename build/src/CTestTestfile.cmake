# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("chrono")
subdirs("mdm")
subdirs("spec")
subdirs("prover")
subdirs("reduce")
subdirs("query")
subdirs("storage")
subdirs("subcube")
subdirs("workload")
subdirs("io")
