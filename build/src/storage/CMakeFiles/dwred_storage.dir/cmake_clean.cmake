file(REMOVE_RECURSE
  "CMakeFiles/dwred_storage.dir/fact_table.cc.o"
  "CMakeFiles/dwred_storage.dir/fact_table.cc.o.d"
  "libdwred_storage.a"
  "libdwred_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
