file(REMOVE_RECURSE
  "libdwred_storage.a"
)
