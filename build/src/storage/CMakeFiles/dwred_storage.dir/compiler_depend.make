# Empty compiler generated dependencies file for dwred_storage.
# This may be replaced when dependencies are built.
