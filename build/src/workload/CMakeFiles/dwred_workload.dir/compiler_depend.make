# Empty compiler generated dependencies file for dwred_workload.
# This may be replaced when dependencies are built.
