
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/clickstream.cc" "src/workload/CMakeFiles/dwred_workload.dir/clickstream.cc.o" "gcc" "src/workload/CMakeFiles/dwred_workload.dir/clickstream.cc.o.d"
  "/root/repo/src/workload/retail.cc" "src/workload/CMakeFiles/dwred_workload.dir/retail.cc.o" "gcc" "src/workload/CMakeFiles/dwred_workload.dir/retail.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdm/CMakeFiles/dwred_mdm.dir/DependInfo.cmake"
  "/root/repo/build/src/chrono/CMakeFiles/dwred_chrono.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dwred_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
