file(REMOVE_RECURSE
  "libdwred_workload.a"
)
