file(REMOVE_RECURSE
  "CMakeFiles/dwred_workload.dir/clickstream.cc.o"
  "CMakeFiles/dwred_workload.dir/clickstream.cc.o.d"
  "CMakeFiles/dwred_workload.dir/retail.cc.o"
  "CMakeFiles/dwred_workload.dir/retail.cc.o.d"
  "libdwred_workload.a"
  "libdwred_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
