# Empty dependencies file for dwred_chrono.
# This may be replaced when dependencies are built.
