file(REMOVE_RECURSE
  "libdwred_chrono.a"
)
