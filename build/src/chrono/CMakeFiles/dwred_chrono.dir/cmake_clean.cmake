file(REMOVE_RECURSE
  "CMakeFiles/dwred_chrono.dir/civil.cc.o"
  "CMakeFiles/dwred_chrono.dir/civil.cc.o.d"
  "CMakeFiles/dwred_chrono.dir/granule.cc.o"
  "CMakeFiles/dwred_chrono.dir/granule.cc.o.d"
  "libdwred_chrono.a"
  "libdwred_chrono.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_chrono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
