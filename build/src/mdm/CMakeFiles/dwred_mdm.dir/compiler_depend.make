# Empty compiler generated dependencies file for dwred_mdm.
# This may be replaced when dependencies are built.
