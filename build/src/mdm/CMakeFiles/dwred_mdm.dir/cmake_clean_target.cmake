file(REMOVE_RECURSE
  "libdwred_mdm.a"
)
