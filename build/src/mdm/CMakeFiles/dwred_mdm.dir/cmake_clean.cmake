file(REMOVE_RECURSE
  "CMakeFiles/dwred_mdm.dir/dimension.cc.o"
  "CMakeFiles/dwred_mdm.dir/dimension.cc.o.d"
  "CMakeFiles/dwred_mdm.dir/dimension_type.cc.o"
  "CMakeFiles/dwred_mdm.dir/dimension_type.cc.o.d"
  "CMakeFiles/dwred_mdm.dir/mo.cc.o"
  "CMakeFiles/dwred_mdm.dir/mo.cc.o.d"
  "CMakeFiles/dwred_mdm.dir/paper_example.cc.o"
  "CMakeFiles/dwred_mdm.dir/paper_example.cc.o.d"
  "libdwred_mdm.a"
  "libdwred_mdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_mdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
