
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdm/dimension.cc" "src/mdm/CMakeFiles/dwred_mdm.dir/dimension.cc.o" "gcc" "src/mdm/CMakeFiles/dwred_mdm.dir/dimension.cc.o.d"
  "/root/repo/src/mdm/dimension_type.cc" "src/mdm/CMakeFiles/dwred_mdm.dir/dimension_type.cc.o" "gcc" "src/mdm/CMakeFiles/dwred_mdm.dir/dimension_type.cc.o.d"
  "/root/repo/src/mdm/mo.cc" "src/mdm/CMakeFiles/dwred_mdm.dir/mo.cc.o" "gcc" "src/mdm/CMakeFiles/dwred_mdm.dir/mo.cc.o.d"
  "/root/repo/src/mdm/paper_example.cc" "src/mdm/CMakeFiles/dwred_mdm.dir/paper_example.cc.o" "gcc" "src/mdm/CMakeFiles/dwred_mdm.dir/paper_example.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dwred_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chrono/CMakeFiles/dwred_chrono.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
