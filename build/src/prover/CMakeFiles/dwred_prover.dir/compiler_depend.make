# Empty compiler generated dependencies file for dwred_prover.
# This may be replaced when dependencies are built.
