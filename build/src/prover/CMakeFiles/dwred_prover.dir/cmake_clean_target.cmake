file(REMOVE_RECURSE
  "libdwred_prover.a"
)
