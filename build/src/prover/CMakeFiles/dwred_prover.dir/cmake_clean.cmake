file(REMOVE_RECURSE
  "CMakeFiles/dwred_prover.dir/checks.cc.o"
  "CMakeFiles/dwred_prover.dir/checks.cc.o.d"
  "libdwred_prover.a"
  "libdwred_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwred_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
