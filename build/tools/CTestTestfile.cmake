# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(dwredctl_demo "/root/repo/build/tools/dwredctl" "/root/repo/tools/demo/paper_example.dwred")
set_tests_properties(dwredctl_demo PROPERTIES  WORKING_DIRECTORY "/root/repo/tools/demo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
