# Empty dependencies file for dwredctl.
# This may be replaced when dependencies are built.
