file(REMOVE_RECURSE
  "CMakeFiles/dwredctl.dir/dwredctl.cpp.o"
  "CMakeFiles/dwredctl.dir/dwredctl.cpp.o.d"
  "dwredctl"
  "dwredctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwredctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
