#pragma once

// Epoch-versioned caching with snapshot-isolated reads (docs/CACHING.md).
//
// The warehouse keeps one **epoch counter**, bumped by every mutating pass —
// fact appends, Synchronize, specification changes, recovery replay. Two LRU
// caches hang off it:
//
//   - the **query-result cache**: finished `SubcubeManager::Query` results,
//     keyed by a canonical fingerprint of the resolved query (predicate
//     rendering, target granularity, the resolved NOW day, the
//     synchronized-assumption flag) *plus the epoch*;
//   - the **ScanSpec cache**: compiled segment-pruning specs (whose
//     compilation enumerates every dimension value through the liberal atom
//     oracle — linear in dimension extent), keyed the same way.
//
// Because the epoch is part of every key, an entry written before a mutation
// can never be returned after it; BumpEpoch additionally drops all entries
// eagerly (counted as invalidations) so stale results do not squat in the
// byte budget. NOW is resolved into the key, so a NOW-relative predicate
// re-evaluated at a later day is a different key — a cache can never serve a
// stale window.
//
// Snapshot isolation: the cache owns the warehouse's reader/writer lock.
// Queries hold it shared for their whole evaluation — pinning the epoch and
// the sealed-segment manifest they read — while mutating passes hold it
// exclusively, so a query observes exactly one epoch's bytes (the PR-3
// determinism contract extends across concurrent writers: a query result
// equals the serial result at whichever epoch it pinned, cache on or off).
//
// The whole layer is disabled by the DWRED_CACHE_DISABLED environment
// variable (re-read on every operation, so tests can flip it at runtime);
// disabling the cache never changes query bytes, only their cost.
//
// Observability: dwred_cache_query_{hits,misses} /
// dwred_cache_scanspec_{hits,misses} / dwred_cache_{evictions,invalidations}
// counters and the dwred_cache_{bytes,entries} gauges.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mdm/mo.h"
#include "scan/scan.h"
#include "spec/predicate.h"
#include "vm/program.h"

namespace dwred::cache {

/// True unless the DWRED_CACHE_DISABLED environment variable is set to a
/// non-empty value. Re-read on every call.
bool Enabled();

/// Canonical fingerprint of a query against one warehouse snapshot: the
/// resolved predicate rendering (atom values and operators, canonical through
/// PredExpr::ToString), the target granularity ids, the resolved NOW day,
/// the synchronized-assumption flag, and the epoch. The `parallel` flag is
/// deliberately excluded: the determinism contract makes parallel and serial
/// evaluation byte-identical, so they share cache entries.
std::string QueryFingerprint(const MultidimensionalObject& ctx,
                             const PredExpr* pred,
                             const std::vector<CategoryId>* target,
                             int64_t now_day, bool assume_synchronized,
                             uint64_t epoch);

/// Fingerprint of a compiled segment-pruning ScanSpec: predicate rendering +
/// resolved NOW day + epoch (compilation depends on nothing else once the
/// dimension extents are fixed, and any extent change is an epoch bump).
std::string ScanSpecFingerprint(const MultidimensionalObject& ctx,
                                const PredExpr& pred, int64_t now_day,
                                uint64_t epoch);

/// Fingerprint of a compiled vm::PredProgram: predicate rendering + resolved
/// NOW day + epoch (the same keying contract as ScanSpecFingerprint — atom
/// weight tables depend only on the dimension extents, and any extent change
/// is an epoch bump) plus an `approach` tag, because the weighted/liberal/
/// conservative oracles fill the tables differently ("spec" for 0/1 spec
/// predicates).
std::string ProgramFingerprint(const MultidimensionalObject& ctx,
                               const PredExpr& pred, int64_t now_day,
                               uint64_t epoch, const char* approach);

/// Fingerprint of a compiled vm::RollupProgram: the target granularity ids +
/// epoch. NOW plays no part — rollup tables depend only on the hierarchy,
/// and any hierarchy change is an epoch bump.
std::string RollupFingerprint(const std::vector<CategoryId>& target,
                              uint64_t epoch);

/// One warehouse's epoch counter, snapshot lock, and LRU caches. Heap-held
/// by SubcubeManager (the manager must stay movable through
/// Result<SubcubeManager>; the lock and atomics must not move).
class WarehouseCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 256;
  static constexpr size_t kDefaultMaxBytes = 64ull << 20;  // 64 MiB

  explicit WarehouseCache(size_t max_entries = kDefaultMaxEntries,
                          size_t max_bytes = kDefaultMaxBytes);
  ~WarehouseCache();

  WarehouseCache(const WarehouseCache&) = delete;
  WarehouseCache& operator=(const WarehouseCache&) = delete;

  /// The warehouse reader/writer lock: queries hold it shared for their whole
  /// evaluation (epoch-pinned snapshot), mutating passes exclusively.
  std::shared_mutex& snapshot_mutex() const { return mu_; }

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Bumps the epoch and eagerly drops every cached entry (keyed by older
  /// epochs, hence unreachable; counted as invalidations). Returns the new
  /// epoch. Call with the snapshot lock held exclusively.
  uint64_t BumpEpoch();

  /// Query-result cache. Lookup refreshes LRU order and counts a hit or
  /// miss; Insert evicts from the cold end past either budget. Both are
  /// no-ops (miss) while the cache is disabled.
  ///
  /// Abort invariant (runtime/cancel.h): a query aborted by cancellation,
  /// deadline, or budget returns before InsertQuery, so an aborted query
  /// never inserts a partial result, never moves the hit counter (a hit
  /// returns before any poll can abort), and never changes entries or bytes.
  /// The entry poll site (cancel.query.begin) precedes LookupQuery, so an
  /// abort on entry moves no counter at all; an abort mid-evaluation counts
  /// exactly the one miss its lookup honestly performed.
  /// tests/cancel_matrix_test.cc asserts all of this differentially.
  ///
  /// Compiled vm::PredPrograms are the deliberate exception: a program is a
  /// complete artifact of (predicate, NOW, epoch, approach) alone — never of
  /// the operation's outcome — so programs compiled before an abort are
  /// retained (Stats.program_bytes reports their share). Retaining them only
  /// warms the retry; it can never change result bytes.
  std::shared_ptr<const MultidimensionalObject> LookupQuery(
      const std::string& key) const;
  void InsertQuery(const std::string& key,
                   std::shared_ptr<const MultidimensionalObject> result);

  /// Compiled-ScanSpec cache, same discipline.
  std::shared_ptr<const scan::ScanSpec> LookupScanSpec(
      const std::string& key) const;
  void InsertScanSpec(const std::string& key, scan::ScanSpec spec);

  /// Compiled vm::PredProgram cache, same discipline, but its hit counter is
  /// dwred_vm_cache_hits (the VM surface) rather than a cache counter.
  /// Insert returns the cached (or, while the cache is disabled, the passed)
  /// program so call sites always use one canonical shared program.
  std::shared_ptr<const vm::PredProgram> LookupProgram(
      const std::string& key) const;
  std::shared_ptr<const vm::PredProgram> InsertProgram(
      const std::string& key, std::shared_ptr<const vm::PredProgram> prog);

  /// Compiled vm::RollupProgram cache (aggregate formation's per-dimension
  /// rollup tables), same discipline and counters as the PredProgram cache.
  std::shared_ptr<const vm::RollupProgram> LookupRollup(
      const std::string& key) const;
  std::shared_ptr<const vm::RollupProgram> InsertRollup(
      const std::string& key, std::shared_ptr<const vm::RollupProgram> prog);

  struct Stats {
    uint64_t epoch = 0;
    size_t query_entries = 0;
    size_t scanspec_entries = 0;
    size_t program_entries = 0;  ///< PredPrograms + RollupPrograms
    size_t bytes = 0;            ///< all LRUs together
    size_t program_bytes = 0;    ///< the program LRUs' share of `bytes`
    size_t max_entries = 0;
    size_t max_bytes = 0;
  };
  Stats GetStats() const;

  /// Drops every entry without bumping the epoch (dwredctl `cache clear`).
  void Clear();

 private:
  template <typename V>
  struct Lru {
    struct Node {
      std::string key;
      std::shared_ptr<const V> value;
      size_t bytes = 0;
    };
    std::list<Node> order;  ///< front = most recently used
    std::unordered_map<std::string, typename std::list<Node>::iterator> index;
    size_t bytes = 0;
  };

  template <typename V>
  std::shared_ptr<const V> Lookup(Lru<V>& lru, const std::string& key) const;
  template <typename V>
  void Insert(Lru<V>& lru, const std::string& key,
              std::shared_ptr<const V> value, size_t value_bytes);
  /// Evicts cold entries until both budgets hold. Returns entries dropped.
  template <typename V>
  size_t EvictOver(Lru<V>& lru, size_t max_entries, size_t max_bytes);
  template <typename V>
  size_t DropAll(Lru<V>& lru);

  mutable std::shared_mutex mu_;  ///< snapshot lock (see snapshot_mutex)
  std::atomic<uint64_t> epoch_{0};

  mutable std::mutex cache_mu_;  ///< guards the LRU structures below
  mutable Lru<MultidimensionalObject> query_;
  mutable Lru<scan::ScanSpec> scanspec_;
  mutable Lru<vm::PredProgram> program_;
  mutable Lru<vm::RollupProgram> rollup_;
  size_t max_entries_;
  size_t max_bytes_;
};

}  // namespace dwred::cache
