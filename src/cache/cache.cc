#include "cache/cache.h"

#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace dwred::cache {

namespace {

struct CacheMetrics {
  obs::Counter& query_hits;
  obs::Counter& query_misses;
  obs::Counter& scanspec_hits;
  obs::Counter& scanspec_misses;
  obs::Counter& evictions;
  obs::Counter& invalidations;
  obs::Gauge& bytes;
  obs::Gauge& entries;

  static CacheMetrics& Get() {
    auto& r = obs::MetricsRegistry::Global();
    static CacheMetrics m{
        r.GetCounter("dwred_cache_query_hits",
                     "query results served from the epoch-versioned cache"),
        r.GetCounter("dwred_cache_query_misses",
                     "query-result cache lookups that fell through"),
        r.GetCounter("dwred_cache_scanspec_hits",
                     "compiled ScanSpecs served from the cache"),
        r.GetCounter("dwred_cache_scanspec_misses",
                     "ScanSpec cache lookups that fell through"),
        r.GetCounter("dwred_cache_evictions",
                     "cache entries dropped past the LRU entry/byte budgets"),
        r.GetCounter("dwred_cache_invalidations",
                     "cache entries dropped by an epoch bump"),
        r.GetGauge("dwred_cache_bytes",
                   "approximate bytes held by warehouse caches"),
        r.GetGauge("dwred_cache_entries",
                   "entries held by warehouse caches"),
    };
    return m;
  }
};

void AppendGranularity(const std::vector<CategoryId>* target,
                       std::string* out) {
  if (!target) {
    *out += "<none>";
    return;
  }
  for (size_t d = 0; d < target->size(); ++d) {
    if (d) *out += ",";
    *out += std::to_string((*target)[d]);
  }
}

}  // namespace

bool Enabled() {
  const char* env = std::getenv("DWRED_CACHE_DISABLED");
  return env == nullptr || *env == '\0';
}

std::string QueryFingerprint(const MultidimensionalObject& ctx,
                             const PredExpr* pred,
                             const std::vector<CategoryId>* target,
                             int64_t now_day, bool assume_synchronized,
                             uint64_t epoch) {
  std::string key = "q|e=" + std::to_string(epoch) +
                    "|now=" + std::to_string(now_day) +
                    "|sync=" + (assume_synchronized ? "1" : "0") + "|t=";
  AppendGranularity(target, &key);
  key += "|p=";
  key += pred ? pred->ToString(ctx) : "<all>";
  return key;
}

std::string ScanSpecFingerprint(const MultidimensionalObject& ctx,
                                const PredExpr& pred, int64_t now_day,
                                uint64_t epoch) {
  return "s|e=" + std::to_string(epoch) + "|now=" + std::to_string(now_day) +
         "|p=" + pred.ToString(ctx);
}

std::string ProgramFingerprint(const MultidimensionalObject& ctx,
                               const PredExpr& pred, int64_t now_day,
                               uint64_t epoch, const char* approach) {
  return std::string("v|a=") + approach + "|e=" + std::to_string(epoch) +
         "|now=" + std::to_string(now_day) + "|p=" + pred.ToString(ctx);
}

std::string RollupFingerprint(const std::vector<CategoryId>& target,
                              uint64_t epoch) {
  std::string key = "r|e=" + std::to_string(epoch) + "|g=";
  AppendGranularity(&target, &key);
  return key;
}

WarehouseCache::WarehouseCache(size_t max_entries, size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {}

WarehouseCache::~WarehouseCache() {
  // Return this instance's footprint to the process-wide gauges.
  Clear();
}

template <typename V>
std::shared_ptr<const V> WarehouseCache::Lookup(Lru<V>& lru,
                                                const std::string& key) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = lru.index.find(key);
  if (it == lru.index.end()) return nullptr;
  lru.order.splice(lru.order.begin(), lru.order, it->second);
  return it->second->value;
}

template <typename V>
size_t WarehouseCache::EvictOver(Lru<V>& lru, size_t max_entries,
                                 size_t max_bytes) {
  size_t dropped = 0;
  while (!lru.order.empty() &&
         (lru.index.size() > max_entries || lru.bytes > max_bytes)) {
    const auto& cold = lru.order.back();
    lru.bytes -= cold.bytes;
    CacheMetrics::Get().bytes.Add(-static_cast<int64_t>(cold.bytes));
    lru.index.erase(cold.key);
    lru.order.pop_back();
    ++dropped;
  }
  return dropped;
}

template <typename V>
void WarehouseCache::Insert(Lru<V>& lru, const std::string& key,
                            std::shared_ptr<const V> value,
                            size_t value_bytes) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  size_t entry_bytes = key.size() + value_bytes + sizeof(typename Lru<V>::Node);
  auto it = lru.index.find(key);
  if (it != lru.index.end()) {
    // Same key, same epoch: the value is byte-identical by the determinism
    // contract — just refresh recency.
    lru.order.splice(lru.order.begin(), lru.order, it->second);
    return;
  }
  lru.order.push_front(
      typename Lru<V>::Node{key, std::move(value), entry_bytes});
  lru.index.emplace(key, lru.order.begin());
  lru.bytes += entry_bytes;
  CacheMetrics::Get().bytes.Add(static_cast<int64_t>(entry_bytes));
  CacheMetrics::Get().entries.Add(1);
  size_t evicted = EvictOver(lru, max_entries_, max_bytes_);
  if (evicted > 0) {
    CacheMetrics::Get().evictions.Increment(evicted);
    CacheMetrics::Get().entries.Add(-static_cast<int64_t>(evicted));
  }
}

template <typename V>
size_t WarehouseCache::DropAll(Lru<V>& lru) {
  size_t dropped = lru.index.size();
  CacheMetrics::Get().bytes.Add(-static_cast<int64_t>(lru.bytes));
  CacheMetrics::Get().entries.Add(-static_cast<int64_t>(dropped));
  lru.order.clear();
  lru.index.clear();
  lru.bytes = 0;
  return dropped;
}

uint64_t WarehouseCache::BumpEpoch() {
  uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::lock_guard<std::mutex> lock(cache_mu_);
  size_t dropped = DropAll(query_) + DropAll(scanspec_) + DropAll(program_) +
                   DropAll(rollup_);
  if (dropped > 0) CacheMetrics::Get().invalidations.Increment(dropped);
  return next;
}

std::shared_ptr<const MultidimensionalObject> WarehouseCache::LookupQuery(
    const std::string& key) const {
  if (!Enabled()) return nullptr;
  auto hit = Lookup(query_, key);
  if (hit) {
    CacheMetrics::Get().query_hits.Increment();
  } else {
    CacheMetrics::Get().query_misses.Increment();
  }
  return hit;
}

void WarehouseCache::InsertQuery(
    const std::string& key,
    std::shared_ptr<const MultidimensionalObject> result) {
  if (!Enabled() || !result) return;
  // Capacity-based: the budget must count what the allocator holds, not the
  // logical fact payload (see MultidimensionalObject::ApproxBytes).
  size_t bytes = result->ApproxBytes();
  Insert(query_, key, std::move(result), bytes);
}

std::shared_ptr<const scan::ScanSpec> WarehouseCache::LookupScanSpec(
    const std::string& key) const {
  if (!Enabled()) return nullptr;
  auto hit = Lookup(scanspec_, key);
  if (hit) {
    CacheMetrics::Get().scanspec_hits.Increment();
  } else {
    CacheMetrics::Get().scanspec_misses.Increment();
  }
  return hit;
}

void WarehouseCache::InsertScanSpec(const std::string& key,
                                    scan::ScanSpec spec) {
  if (!Enabled()) return;
  size_t bytes = spec.ApproxBytes();
  Insert(scanspec_, key,
         std::make_shared<const scan::ScanSpec>(std::move(spec)), bytes);
}

std::shared_ptr<const vm::PredProgram> WarehouseCache::LookupProgram(
    const std::string& key) const {
  if (!Enabled()) return nullptr;
  auto hit = Lookup(program_, key);
  if (hit) vm::CountCacheHit();
  return hit;
}

std::shared_ptr<const vm::PredProgram> WarehouseCache::InsertProgram(
    const std::string& key, std::shared_ptr<const vm::PredProgram> prog) {
  if (Enabled() && prog != nullptr) {
    Insert(program_, key, prog, prog->ApproxBytes());
  }
  return prog;
}

std::shared_ptr<const vm::RollupProgram> WarehouseCache::LookupRollup(
    const std::string& key) const {
  if (!Enabled()) return nullptr;
  auto hit = Lookup(rollup_, key);
  if (hit) vm::CountCacheHit();
  return hit;
}

std::shared_ptr<const vm::RollupProgram> WarehouseCache::InsertRollup(
    const std::string& key, std::shared_ptr<const vm::RollupProgram> prog) {
  if (Enabled() && prog != nullptr) {
    Insert(rollup_, key, prog, prog->ApproxBytes());
  }
  return prog;
}

WarehouseCache::Stats WarehouseCache::GetStats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  Stats s;
  s.epoch = epoch();
  s.query_entries = query_.index.size();
  s.scanspec_entries = scanspec_.index.size();
  s.program_entries = program_.index.size() + rollup_.index.size();
  s.bytes = query_.bytes + scanspec_.bytes + program_.bytes + rollup_.bytes;
  s.program_bytes = program_.bytes + rollup_.bytes;
  s.max_entries = max_entries_;
  s.max_bytes = max_bytes_;
  return s;
}

void WarehouseCache::Clear() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  DropAll(query_);
  DropAll(scanspec_);
  DropAll(program_);
  DropAll(rollup_);
}

}  // namespace dwred::cache
