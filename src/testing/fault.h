#pragma once

// Deterministic fault injection for the durability layer (docs/DURABILITY.md).
//
// The journal / snapshot / synchronization write paths are punctuated by
// *named fault sites* — calls to FaultPoint("site.name") at every IO boundary
// (before a write, before an fsync, before a rename, between the intent and
// commit records of a journaled pass). In production the sites are a cheap
// branch on an atomic flag; armed, the nth execution of a given site either
//
//   * kills the process immediately (`_exit(kFaultKillExitCode)`, simulating
//     a crash with no destructors, no stdio flush, no atexit handlers), or
//   * returns an Internal Status that propagates out of the IO operation
//     (simulating an IO error, e.g. ENOSPC on fsync), or
//   * returns a Cancelled Status (simulating a cooperative cancellation
//     arriving at exactly that poll site — see runtime/cancel.h; the
//     cancellation matrix in tests/cancel_matrix_test.cc iterates these).
//
// Arming is either programmatic (FaultInjector::Arm) or via the environment:
//
//   DWRED_FAULT=<site>:<nth>           # kill at the nth execution (1-based)
//   DWRED_FAULT=<site>:<nth>:error     # fail with a Status instead
//   DWRED_FAULT=<site>:<nth>:cancel    # fail with Status::Cancelled
//
// Every site registers itself on first execution, so a fault-free run of a
// workload enumerates exactly the sites that guard its IO boundaries
// (FaultInjector::SitesSeen) — the crash-matrix test iterates that list.

#include <string>
#include <vector>

#include "common/status.h"

namespace dwred::testing {

/// Exit code used by kill-mode faults, distinguishable from ordinary crashes.
inline constexpr int kFaultKillExitCode = 42;

enum class FaultMode {
  kKill,    ///< _exit(kFaultKillExitCode) at the site
  kError,   ///< return Status::Internal from the site
  kCancel,  ///< return Status::Cancelled from the site
};

/// Process-wide fault registry. Thread-safe; the disarmed fast path is one
/// relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `site`: its `nth` execution (1-based) from now fires in `mode`.
  void Arm(const std::string& site, int nth, FaultMode mode);

  /// Disarms any armed fault and resets the armed site's hit counter.
  void Disarm();

  /// Re-reads DWRED_FAULT from the environment (called once automatically on
  /// first FaultPoint; exposed for tests that mutate the environment).
  void ArmFromEnv();

  /// True if a fault is currently armed (fired or not).
  bool armed() const;

  /// True once the armed fault has fired in error mode (kill mode never
  /// returns). Reset by Arm/Disarm.
  bool fired() const;

  /// Every distinct site name executed so far, in first-execution order.
  std::vector<std::string> SitesSeen() const;

  /// Implementation of the FaultPoint free function.
  Status Hit(const char* site);

 private:
  FaultInjector() = default;
  struct Impl;
  Impl& impl();
};

/// Marks an IO boundary. Returns OK (and records the site) unless the
/// injector is armed for `site` and the occurrence count matches; then it
/// kills the process or returns an Internal status, per the armed mode.
Status FaultPoint(const char* site);

}  // namespace dwred::testing
