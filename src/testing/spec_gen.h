#pragma once

// Seeded random specification generator plus a brute-force soundness oracle,
// shared by the parallel differential tests and the soundness property tests.
//
// The generator emits specification *text* and runs it through the real
// parser (spec/parser.h), so generated specifications exercise the same
// resolution path as user input. Two modes:
//
//  * sound chains — paper-style tiered NOW-window ladders (the a1/a2 shape of
//    Section 2): one shared non-time filter, year-aligned windows that hand
//    each cell from a finer tier to the next coarser one as it ages. Sound by
//    construction (NonCrossing and Growing hold for every seed).
//  * random mode — independently drawn actions whose windows and
//    granularities are unconstrained relative to each other; most seeds
//    violate NonCrossing or Growing in some corner.
//
// The oracle (BruteForceOracle) checks the two soundness properties
// *semantically* by enumerating fact timelines: it evaluates every action's
// predicate on sampled bottom cells over a grid of NOW days and watches the
// winning aggregation level of each cell. Because the operational checker
// (reduce/soundness.cc) is deliberately conservative — the prover's Unknown
// answers reject — agreement is directional:
//
//   checker accepts  =>  the oracle finds no violation, and
//   oracle violation =>  the checker rejected.
//
// An oracle violation is a concrete witness (cell, day, action pair), never
// an approximation, so the second implication is exact.

#include <cstdint>
#include <string>
#include <vector>

#include "spec/action.h"

namespace dwred::testing {

struct SpecGenOptions {
  size_t num_actions = 3;
  /// true: emit only the sound tiered-chain shape; false: random actions.
  bool sound_chain = false;
  /// Probability that the oldest tier (sound mode) or any action (random
  /// mode) is a deletion action.
  double deletion_prob = 0.2;
};

/// Generates a specification against `mo`'s schema. Deterministic in `seed`.
/// Every returned action parsed successfully; soundness depends on the mode.
Result<ReductionSpecification> GenerateSpec(const MultidimensionalObject& mo,
                                            uint64_t seed,
                                            const SpecGenOptions& opts = {});

/// Samples up to `max_cells` distinct fact coordinate tuples from `mo` (the
/// enumerated timelines the oracle walks). Deterministic in `seed`.
std::vector<std::vector<ValueId>> SampleBottomCells(
    const MultidimensionalObject& mo, uint64_t seed, size_t max_cells);

struct OracleReport {
  bool crossing_violation = false;
  bool growing_violation = false;
  /// Human-readable witness of the first violation found.
  std::string detail;

  bool ok() const { return !crossing_violation && !growing_violation; }
};

/// Brute-force soundness oracle: for every sampled cell and every NOW day in
/// [day_begin, day_end] stepping by `day_step`, evaluates all action
/// predicates; flags a NonCrossing violation when two <=_V-incomparable
/// actions are simultaneously satisfied, and a Growing violation when the
/// winning aggregation level of a cell ever shrinks in any dimension (or a
/// deleted cell comes back). Violations carry a concrete witness.
OracleReport BruteForceOracle(const MultidimensionalObject& mo,
                              const ReductionSpecification& spec,
                              const std::vector<std::vector<ValueId>>& cells,
                              int64_t day_begin, int64_t day_end,
                              int64_t day_step);

}  // namespace dwred::testing
