#include "testing/fault.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/strings.h"
#include "obs/metrics.h"

namespace dwred::testing {

struct FaultInjector::Impl {
  std::atomic<bool> armed{false};
  mutable std::mutex mu;
  std::string site;           // guarded by mu
  int nth = 0;                // guarded by mu
  int hits = 0;               // guarded by mu; executions of `site` since Arm
  FaultMode mode = FaultMode::kKill;
  bool fired = false;
  bool env_checked = false;
  std::vector<std::string> seen;  // first-execution order
};

FaultInjector::Impl& FaultInjector::impl() {
  static Impl* impl = new Impl();
  return *impl;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* g = new FaultInjector();
  return *g;
}

void FaultInjector::Arm(const std::string& site, int nth, FaultMode mode) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.site = site;
  i.nth = nth;
  i.hits = 0;
  i.mode = mode;
  i.fired = false;
  i.env_checked = true;  // explicit arming overrides the environment
  i.armed.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.site.clear();
  i.nth = 0;
  i.hits = 0;
  i.fired = false;
  i.env_checked = true;
  i.armed.store(false, std::memory_order_release);
}

void FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("DWRED_FAULT");
  if (spec == nullptr || *spec == '\0') {
    Impl& i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    i.env_checked = true;
    return;
  }
  std::vector<std::string> parts = Split(spec, ':');
  if (parts.size() < 2) {
    std::fprintf(stderr,
                 "DWRED_FAULT: expected <site>:<nth>[:error|:cancel], got %s\n",
                 spec);
    return;
  }
  int64_t nth = 0;
  if (!ParseInt64(parts[1], &nth) || nth < 1) {
    std::fprintf(stderr, "DWRED_FAULT: bad occurrence count '%s'\n",
                 parts[1].c_str());
    return;
  }
  FaultMode mode = FaultMode::kKill;
  if (parts.size() >= 3 && parts[2] == "error") mode = FaultMode::kError;
  if (parts.size() >= 3 && parts[2] == "cancel") mode = FaultMode::kCancel;
  Arm(parts[0], static_cast<int>(nth), mode);
}

bool FaultInjector::armed() const {
  return const_cast<FaultInjector*>(this)->impl().armed.load(
      std::memory_order_acquire);
}

bool FaultInjector::fired() const {
  Impl& i = const_cast<FaultInjector*>(this)->impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.fired;
}

std::vector<std::string> FaultInjector::SitesSeen() const {
  Impl& i = const_cast<FaultInjector*>(this)->impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.seen;
}

Status FaultInjector::Hit(const char* site) {
  Impl& i = impl();
  {
    std::lock_guard<std::mutex> lock(i.mu);
    if (!i.env_checked) {
      i.env_checked = true;
      i.mu.unlock();
      ArmFromEnv();
      i.mu.lock();
    }
    bool known = false;
    for (const std::string& s : i.seen) {
      if (s == site) {
        known = true;
        break;
      }
    }
    if (!known) i.seen.emplace_back(site);
  }
  if (!i.armed.load(std::memory_order_acquire)) return Status::OK();

  FaultMode mode;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    if (i.fired || i.site != site) return Status::OK();
    if (++i.hits != i.nth) return Status::OK();
    i.fired = true;
    mode = i.mode;
  }
  static obs::Counter& c_injected = obs::MetricsRegistry::Global().GetCounter(
      "dwred_fault_injected", "fault-injection sites fired (kill or error)");
  c_injected.Increment();
  if (mode == FaultMode::kKill) {
    std::fprintf(stderr, "DWRED_FAULT: killing process at site %s\n", site);
    _exit(kFaultKillExitCode);
  }
  if (mode == FaultMode::kCancel) {
    return Status::Cancelled(std::string("cancel injected at site ") + site);
  }
  return Status::Internal(std::string("fault injected at site ") + site);
}

Status FaultPoint(const char* site) {
  return FaultInjector::Global().Hit(site);
}

}  // namespace dwred::testing
