#include "testing/spec_gen.h"

#include <algorithm>
#include <set>
#include <string>

#include "chrono/granule.h"
#include "common/rng.h"
#include "spec/parser.h"
#include "spec/predicate.h"

namespace dwred::testing {

namespace {

/// Values of `dim` typed at category `c` (non-time dimensions only; the time
/// dimension's value set is unbounded and never sampled by name).
std::vector<ValueId> ValuesOfCategory(const Dimension& dim, CategoryId c) {
  std::vector<ValueId> out;
  for (ValueId v = 0; v < dim.num_values(); ++v) {
    if (dim.value_category(v) == c) out.push_back(v);
  }
  return out;
}

std::string Quote(const std::string& s) { return "'" + s + "'"; }

/// "Dim.category" reference for the spec text.
std::string DimRef(const Dimension& dim, CategoryId c) {
  return dim.name() + "." + dim.type().category_name(c);
}

/// "NOW - <k> <unit>s" with k expressed in `cat`'s own unit (`cat` is a time
/// category, whose id doubles as its TimeUnit).
std::string NowMinus(int64_t k, CategoryId cat) {
  return "NOW - " + std::to_string(k) + " " +
         TimeUnitName(static_cast<TimeUnit>(cat)) + "s";
}

/// Whole years rendered in a time category's own unit (day is approximated —
/// callers building *sound* chains never pass kDay).
int64_t YearsInUnit(int64_t years, CategoryId cat) {
  switch (static_cast<TimeUnit>(cat)) {
    case TimeUnit::kMonth: return years * 12;
    case TimeUnit::kQuarter: return years * 4;
    case TimeUnit::kYear: return years;
    default: return years * 365;
  }
}

/// An equality filter atom "Dim.cat = 'value'" on a random non-time
/// dimension, or "" when no category below TOP holds a value. Returns the
/// chosen dimension/category through the out-params.
std::string RandomFilterAtom(const MultidimensionalObject& mo, SplitMix64& rng,
                             size_t* filter_dim, CategoryId* filter_cat) {
  std::vector<size_t> non_time;
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    if (!mo.dimension(static_cast<DimensionId>(d))->is_time()) {
      non_time.push_back(d);
    }
  }
  if (non_time.empty()) return "";
  size_t d = non_time[rng.Below(non_time.size())];
  const Dimension& dim = *mo.dimension(static_cast<DimensionId>(d));
  std::vector<CategoryId> cats;
  for (CategoryId c = 0; c < dim.type().num_categories(); ++c) {
    if (c == dim.type().top()) continue;
    if (!ValuesOfCategory(dim, c).empty()) cats.push_back(c);
  }
  if (cats.empty()) return "";
  CategoryId c = cats[rng.Below(cats.size())];
  std::vector<ValueId> vals = ValuesOfCategory(dim, c);
  ValueId v = vals[rng.Below(vals.size())];
  *filter_dim = d;
  *filter_cat = c;
  return DimRef(dim, c) + " = " + Quote(dim.value_name(v));
}

/// A random category of `dim` that is <=_T `at_most` (always succeeds:
/// bottom qualifies).
CategoryId RandomCategoryBelow(const Dimension& dim, CategoryId at_most,
                               SplitMix64& rng) {
  std::vector<CategoryId> ok;
  for (CategoryId c = 0; c < dim.type().num_categories(); ++c) {
    if (dim.type().Leq(c, at_most)) ok.push_back(c);
  }
  return ok[rng.Below(ok.size())];
}

Result<ReductionSpecification> GenerateSoundChain(
    const MultidimensionalObject& mo, SplitMix64& rng,
    const SpecGenOptions& opts, size_t time_dim) {
  const Dimension& tdim = *mo.dimension(static_cast<DimensionId>(time_dim));

  // One shared non-time equality filter (the paper's "URL.domain_grp = .com")
  // and one constant non-time granularity per dimension: tier order is then
  // decided by the ascending time category alone, so consecutive tiers are
  // always <=_V-comparable.
  size_t filter_dim = mo.num_dimensions();
  CategoryId filter_cat = kInvalidCategory;
  std::string filter = RandomFilterAtom(mo, rng, &filter_dim, &filter_cat);
  std::vector<CategoryId> fixed_gran(mo.num_dimensions(), kInvalidCategory);
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    if (d == time_dim) continue;
    const Dimension& dim = *mo.dimension(static_cast<DimensionId>(d));
    fixed_gran[d] = d == filter_dim
                        ? RandomCategoryBelow(dim, filter_cat, rng)
                        : static_cast<CategoryId>(
                              rng.Below(dim.type().num_categories()));
  }

  // Time-category ladder: start at month or quarter, step at most one level
  // per tier, cap at year. Tier j covers cell ages [j, j+1] years (the last
  // tier is open-ended); whole-year boundaries are exact under every unit's
  // snapping, so each cell leaving a tier is immediately claimed by the next
  // (Growing), and overlap only happens between <=_V-comparable neighbours
  // (NonCrossing).
  CategoryId month = static_cast<CategoryId>(TimeUnit::kMonth);
  CategoryId year = static_cast<CategoryId>(TimeUnit::kYear);
  CategoryId start =
      static_cast<CategoryId>(month + rng.Below(2));  // month or quarter
  bool delete_last = rng.NextDouble() < opts.deletion_prob;

  ReductionSpecification spec;
  for (size_t j = 0; j < opts.num_actions; ++j) {
    CategoryId tcat =
        std::min<CategoryId>(static_cast<CategoryId>(start + j), year);
    int64_t lo_age = static_cast<int64_t>(j) + 1;   // years
    int64_t hi_age = lo_age + 1;
    bool last = j + 1 == opts.num_actions;
    std::string window;
    if (last) {
      window = DimRef(tdim, tcat) + " <= " + NowMinus(YearsInUnit(lo_age, tcat), tcat);
    } else {
      window = NowMinus(YearsInUnit(hi_age, tcat), tcat) + " <= " +
               DimRef(tdim, tcat) + " <= " +
               NowMinus(YearsInUnit(lo_age, tcat), tcat);
    }
    std::string pred = filter.empty() ? window : filter + " AND " + window;
    std::string text;
    if (last && delete_last) {
      text = "d s[" + pred + "]";
    } else {
      std::string clist;
      for (size_t d = 0; d < mo.num_dimensions(); ++d) {
        if (!clist.empty()) clist += ", ";
        const Dimension& dim = *mo.dimension(static_cast<DimensionId>(d));
        clist += DimRef(dim, d == time_dim ? tcat : fixed_gran[d]);
      }
      text = "a[" + clist + "] s[" + pred + "]";
    }
    DWRED_ASSIGN_OR_RETURN(Action a, ParseAction(mo, text,
                                                 "g" + std::to_string(j + 1)));
    spec.Add(std::move(a));
  }
  return spec;
}

Result<ReductionSpecification> GenerateRandom(const MultidimensionalObject& mo,
                                              SplitMix64& rng,
                                              const SpecGenOptions& opts,
                                              size_t time_dim) {
  const Dimension& tdim = *mo.dimension(static_cast<DimensionId>(time_dim));
  CategoryId t_top = tdim.type().top();

  ReductionSpecification spec;
  for (size_t j = 0; j < opts.num_actions; ++j) {
    // Per-dimension atoms, drawn independently — nothing aligns windows or
    // granularities across actions, so NonCrossing/Growing hold only by
    // accident.
    std::vector<std::string> atoms;
    std::vector<CategoryId> atom_cap(mo.num_dimensions(), kInvalidCategory);

    // Time window: one- or two-sided NOW-relative bounds at a random
    // category, or none at all.
    if (rng.NextDouble() < 0.85) {
      CategoryId tcat = static_cast<CategoryId>(rng.Below(t_top));  // < TOP
      int64_t near = rng.Range(0, 8);
      int64_t far = near + rng.Range(1, 10);
      switch (rng.Below(3)) {
        case 0:
          atoms.push_back(DimRef(tdim, tcat) + " <= " + NowMinus(near, tcat));
          break;
        case 1:
          atoms.push_back(NowMinus(far, tcat) + " <= " + DimRef(tdim, tcat));
          break;
        default:
          atoms.push_back(NowMinus(far, tcat) + " <= " + DimRef(tdim, tcat) +
                          " <= " + NowMinus(near, tcat));
          break;
      }
      atom_cap[time_dim] = tcat;
    }
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      if (d == time_dim || rng.NextDouble() >= 0.5) continue;
      const Dimension& dim = *mo.dimension(static_cast<DimensionId>(d));
      std::vector<CategoryId> cats;
      for (CategoryId c = 0; c < dim.type().num_categories(); ++c) {
        if (c != dim.type().top() && !ValuesOfCategory(dim, c).empty()) {
          cats.push_back(c);
        }
      }
      if (cats.empty()) continue;
      CategoryId c = cats[rng.Below(cats.size())];
      std::vector<ValueId> vals = ValuesOfCategory(dim, c);
      atoms.push_back(DimRef(dim, c) + " = " +
                      Quote(dim.value_name(vals[rng.Below(vals.size())])));
      atom_cap[d] = c;
    }

    std::string pred;
    for (const std::string& a : atoms) {
      pred += (pred.empty() ? "" : " AND ") + a;
    }
    if (pred.empty()) pred = "TRUE";

    std::string text;
    if (rng.NextDouble() < opts.deletion_prob) {
      text = "d s[" + pred + "]";
    } else {
      std::string clist;
      for (size_t d = 0; d < mo.num_dimensions(); ++d) {
        const Dimension& dim = *mo.dimension(static_cast<DimensionId>(d));
        CategoryId cap = atom_cap[d] != kInvalidCategory
                             ? atom_cap[d]
                             : dim.type().top();
        if (!clist.empty()) clist += ", ";
        clist += DimRef(dim, RandomCategoryBelow(dim, cap, rng));
      }
      text = "a[" + clist + "] s[" + pred + "]";
    }
    DWRED_ASSIGN_OR_RETURN(Action a, ParseAction(mo, text,
                                                 "r" + std::to_string(j + 1)));
    spec.Add(std::move(a));
  }
  return spec;
}

}  // namespace

Result<ReductionSpecification> GenerateSpec(const MultidimensionalObject& mo,
                                            uint64_t seed,
                                            const SpecGenOptions& opts) {
  SplitMix64 rng(seed);
  size_t time_dim = mo.num_dimensions();
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    if (mo.dimension(static_cast<DimensionId>(d))->is_time()) {
      time_dim = d;
      break;
    }
  }
  if (time_dim == mo.num_dimensions()) {
    return Status::InvalidArgument(
        "spec generation needs a time dimension (NOW-relative windows)");
  }
  if (opts.num_actions == 0) return ReductionSpecification{};
  return opts.sound_chain ? GenerateSoundChain(mo, rng, opts, time_dim)
                          : GenerateRandom(mo, rng, opts, time_dim);
}

std::vector<std::vector<ValueId>> SampleBottomCells(
    const MultidimensionalObject& mo, uint64_t seed, size_t max_cells) {
  SplitMix64 rng(seed);
  std::set<std::vector<ValueId>> seen;
  std::vector<std::vector<ValueId>> out;
  if (mo.num_facts() == 0) return out;
  size_t attempts = max_cells * 4;
  std::vector<ValueId> cell(mo.num_dimensions());
  while (out.size() < max_cells && attempts-- > 0) {
    FactId f = static_cast<FactId>(rng.Below(mo.num_facts()));
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      cell[d] = mo.Coord(f, static_cast<DimensionId>(d));
    }
    if (seen.insert(cell).second) out.push_back(cell);
  }
  return out;
}

OracleReport BruteForceOracle(const MultidimensionalObject& mo,
                              const ReductionSpecification& spec,
                              const std::vector<std::vector<ValueId>>& cells,
                              int64_t day_begin, int64_t day_end,
                              int64_t day_step) {
  OracleReport report;
  if (day_step <= 0) day_step = 1;
  const size_t ndims = mo.num_dimensions();
  std::vector<ActionId> satisfied;
  for (const std::vector<ValueId>& cell : cells) {
    // The specified aggregation level of this cell over the timeline: starts
    // at the cell's own granularity and — if the specification is sound —
    // only ever climbs (Growing), with at most one <=_V-maximal action
    // claiming it at a time (NonCrossing).
    std::vector<CategoryId> base_level(ndims);
    for (size_t d = 0; d < ndims; ++d) {
      base_level[d] = mo.dimension(static_cast<DimensionId>(d))
                          ->value_category(cell[d]);
    }
    std::vector<CategoryId> level = base_level;
    bool claimed = false;
    bool deleted = false;
    for (int64_t t = day_begin; t <= day_end; t += day_step) {
      satisfied.clear();
      for (ActionId a = 0; a < spec.size(); ++a) {
        if (EvalPredOnCell(*spec.action(a).predicate, mo, cell, t)) {
          satisfied.push_back(a);
        }
      }
      if (satisfied.empty()) {
        // A claimed cell released with nothing taking over: its specified
        // level drops back to the cell's own granularity — a shrinking
        // predicate the Growing check must have rejected.
        if (deleted || (claimed && level != base_level)) {
          report.growing_violation = true;
          report.detail =
              "cell released by every action at day " + std::to_string(t) +
              " after being " + (deleted ? "deleted" : "aggregated") +
              " (uncovered shrinking predicate)";
          return report;
        }
        continue;
      }
      claimed = true;

      // NonCrossing: simultaneously satisfied actions must be comparable.
      ActionId winner = satisfied[0];
      for (size_t i = 1; i < satisfied.size(); ++i) {
        const Action& cand = spec.action(satisfied[i]);
        const Action& best = spec.action(winner);
        if (ActionLeq(mo, best, cand)) {
          winner = satisfied[i];
        } else if (!ActionLeq(mo, cand, best)) {
          report.crossing_violation = true;
          report.detail = "actions " + best.name + " and " + cand.name +
                          " both fire on a cell at day " + std::to_string(t) +
                          " but are not <=_V-comparable";
          return report;
        }
      }
      // Re-check the winner against every satisfied action: with a sound
      // specification the satisfied set is totally ordered, so the running
      // maximum above is the true maximum; verify to catch partial orders
      // where the scan order masked an incomparable pair.
      for (ActionId a : satisfied) {
        if (!ActionLeq(mo, spec.action(a), spec.action(winner))) {
          report.crossing_violation = true;
          report.detail = "actions " + spec.action(a).name + " and " +
                          spec.action(winner).name +
                          " both fire on a cell at day " + std::to_string(t) +
                          " but are not <=_V-comparable";
          return report;
        }
      }

      const Action& w = spec.action(winner);
      if (deleted && !w.deletes) {
        report.growing_violation = true;
        report.detail = "cell deleted by an earlier action is re-claimed by " +
                        w.name + " at day " + std::to_string(t);
        return report;
      }
      if (w.deletes) {
        deleted = true;
        continue;
      }
      for (size_t d = 0; d < ndims; ++d) {
        const DimensionType& dt =
            mo.dimension(static_cast<DimensionId>(d))->type();
        if (!dt.Leq(level[d], w.granularity[d])) {
          // The winning level is not >= the cell's current level: the cell's
          // specified granularity shrinks (or moves sideways) in dimension d.
          report.growing_violation = true;
          report.detail = "cell level shrinks in dimension " +
                          mo.dimension(static_cast<DimensionId>(d))->name() +
                          " under action " + w.name + " at day " +
                          std::to_string(t) + " (" +
                          dt.category_name(level[d]) + " -> " +
                          dt.category_name(w.granularity[d]) + ")";
          return report;
        }
        level[d] = w.granularity[d];
      }
    }
  }
  return report;
}

}  // namespace dwred::testing
