#include "subcube/manager.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <shared_mutex>

#include "common/check.h"
#include "exec/thread_pool.h"
#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/compare.h"
#include "runtime/cancel.h"
#include "runtime/governor.h"
#include "scan/scan.h"
#include "spec/predicate_analysis.h"
#include "storage/column.h"
#include "vm/program.h"

namespace dwred {

Result<TimeSpan> RecommendedSyncInterval(const MultidimensionalObject& mo,
                                         const ReductionSpecification& spec) {
  // Collect the granularities at which NOW-relative bounds snap.
  std::vector<bool> used(static_cast<size_t>(TimeUnit::kTop) + 1, false);
  for (const Action& a : spec.actions()) {
    DWRED_ASSIGN_OR_RETURN(auto conjuncts, CompileToDnf(mo, *a.predicate));
    for (const Conjunct& c : conjuncts) {
      for (const auto* bounds : {&c.time.lowers, &c.time.uppers}) {
        for (const SymTimeBound& b : *bounds) {
          if (b.kind == SymTimeBound::Kind::kNow) {
            used[static_cast<size_t>(b.snap_unit)] = true;
          }
        }
      }
    }
  }
  int seen = 0;
  for (size_t u = 0; u < used.size(); ++u) {
    if (!used[u]) continue;
    ++seen;
    if (seen == 2) return TimeSpan{static_cast<TimeUnit>(u), 1};
  }
  // Fewer than two distinct NOW granularities: the single one (or daily).
  for (size_t u = 0; u < used.size(); ++u) {
    if (used[u]) return TimeSpan{static_cast<TimeUnit>(u), 1};
  }
  return TimeSpan{TimeUnit::kDay, 1};
}

SubcubeManager::SubcubeManager(std::string fact_type,
                               std::vector<std::shared_ptr<Dimension>> dims,
                               std::vector<MeasureType> measures,
                               ReductionSpecification spec)
    : fact_type_(std::move(fact_type)),
      dims_(std::move(dims)),
      measures_(std::move(measures)),
      spec_(std::move(spec)),
      ctx_(fact_type_, dims_, measures_),
      cache_(std::make_unique<cache::WarehouseCache>()) {}

namespace {

/// Bumps the warehouse epoch on scope exit once armed — mutating passes arm
/// it at the first point a table byte may have changed, so even an error
/// return after partial mutation invalidates the caches.
class EpochBumpGuard {
 public:
  explicit EpochBumpGuard(cache::WarehouseCache& c) : cache_(c) {}
  ~EpochBumpGuard() {
    if (armed_) cache_.BumpEpoch();
  }
  void Arm() { armed_ = true; }

 private:
  cache::WarehouseCache& cache_;
  bool armed_ = false;
};

}  // namespace

Result<SubcubeManager> SubcubeManager::Create(
    std::string fact_type, std::vector<std::shared_ptr<Dimension>> dims,
    std::vector<MeasureType> measures, ReductionSpecification spec) {
  SubcubeManager m(std::move(fact_type), std::move(dims), std::move(measures),
                   std::move(spec));
  DWRED_RETURN_IF_ERROR(m.BuildLayout());
  return m;
}

Status SubcubeManager::BuildLayout() {
  cubes_.clear();
  const size_t ndims = dims_.size();
  const size_t nmeas = measures_.size();

  // Bottom cube (the residual action a'_⊥ of eq. (44)).
  auto bottom = std::make_unique<Subcube>(ndims, nmeas);
  bottom->name = "K0";
  for (const auto& d : dims_) {
    bottom->granularity.push_back(d->type().bottom());
  }
  cubes_.push_back(std::move(bottom));

  // One cube per distinct action granularity (Section 7.1 groups disjoint
  // actions of identical granularity into one subcube). Deletion actions own
  // no storage: their facts cease to exist.
  for (ActionId a = 0; a < spec_.size(); ++a) {
    if (spec_.action(a).deletes) continue;
    const std::vector<CategoryId>& g = spec_.action(a).granularity;
    size_t found = cubes_.size();
    for (size_t i = 0; i < cubes_.size(); ++i) {
      if (cubes_[i]->granularity == g) {
        found = i;
        break;
      }
    }
    if (found == cubes_.size()) {
      auto cube = std::make_unique<Subcube>(ndims, nmeas);
      cube->name = "K" + std::to_string(cubes_.size());
      cube->granularity = g;
      cubes_.push_back(std::move(cube));
    }
    cubes_[found]->actions.push_back(a);
  }

  // Immediate parents: transitive reduction of the strict granularity order.
  for (size_t i = 0; i < cubes_.size(); ++i) {
    cubes_[i]->parents.clear();
    for (size_t j = 0; j < cubes_.size(); ++j) {
      if (i == j) continue;
      const auto& gi = cubes_[i]->granularity;
      const auto& gj = cubes_[j]->granularity;
      if (!(GranularityLeq(ctx_, gj, gi) && gj != gi)) continue;
      bool direct = true;
      for (size_t k = 0; k < cubes_.size() && direct; ++k) {
        if (k == i || k == j) continue;
        const auto& gk = cubes_[k]->granularity;
        if (GranularityLeq(ctx_, gj, gk) && gj != gk &&
            GranularityLeq(ctx_, gk, gi) && gk != gi) {
          direct = false;
        }
      }
      if (direct) cubes_[i]->parents.push_back(j);
    }
  }
  return Status::OK();
}

Status SubcubeManager::InsertBottomFacts(const MultidimensionalObject& batch) {
  std::unique_lock<std::shared_mutex> snapshot(cache_->snapshot_mutex());
  EpochBumpGuard bump(*cache_);
  if (batch.num_dimensions() != dims_.size() ||
      batch.num_measures() != measures_.size()) {
    return Status::InvalidArgument("batch schema mismatch");
  }
  for (FactId f = 0; f < batch.num_facts(); ++f) {
    for (size_t d = 0; d < dims_.size(); ++d) {
      auto dd = static_cast<DimensionId>(d);
      ValueId v = batch.Coord(f, dd);
      CategoryId c = dims_[d]->value_category(v);
      if (c != dims_[d]->type().bottom() && v != dims_[d]->top_value()) {
        return Status::InvalidArgument(
            "new data must enter at the bottom granularity (dimension " +
            dims_[d]->name() + ")");
      }
    }
  }
  // Cooperative abort point: the batch is validated but not yet appended, so
  // cancelling here leaves the warehouse byte-identical to never inserting.
  DWRED_RETURN_IF_ERROR(
      runtime::CountAbort(runtime::PollCancel("cancel.insert.batch")));
  if (batch.num_facts() > 0) bump.Arm();
  DWRED_RETURN_IF_ERROR(cubes_[0]->table.AppendFrom(batch));
  return Status::OK();
}

namespace {

/// The granularity implied by a cell's value categories.
std::vector<CategoryId> CellGranularity(
    const std::vector<std::shared_ptr<Dimension>>& dims,
    std::span<const ValueId> cell) {
  std::vector<CategoryId> g(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    g[d] = dims[d]->value_category(cell[d]);
  }
  return g;
}

}  // namespace

Result<size_t> SubcubeManager::ResponsibleCube(std::span<const ValueId> cell,
                                               int64_t now_day) const {
  return ResponsibleCubeWith(cell, now_day, nullptr);
}

SubcubeManager::SpecPrograms SubcubeManager::CompileSpecPrograms(
    int64_t now_day) const {
  SpecPrograms progs;
  if (!vm::Enabled()) {
    vm::CountFallback();
    return progs;
  }
  progs.reserve(spec_.size());
  const scan::AtomOracle oracle = vm::SpecAtomOracle(ctx_, now_day);
  for (ActionId a = 0; a < spec_.size(); ++a) {
    const PredExpr& pred = *spec_.action(a).predicate;
    const std::string key = cache::ProgramFingerprint(
        ctx_, pred, now_day, cache_->epoch(), "spec");
    std::shared_ptr<const vm::PredProgram> prog = cache_->LookupProgram(key);
    if (prog == nullptr) {
      if (auto compiled = vm::PredProgram::Compile(ctx_, pred, oracle)) {
        prog = cache_->InsertProgram(
            key,
            std::make_shared<const vm::PredProgram>(std::move(*compiled)));
      }
    }
    progs.push_back(std::move(prog));  // null slot: interpret that action
  }
  return progs;
}

Result<size_t> SubcubeManager::ResponsibleCubeWith(
    std::span<const ValueId> cell, int64_t now_day, const SpecPrograms* progs,
    const double* action_w) const {
  std::vector<CategoryId> cell_gran = CellGranularity(dims_, cell);
  const std::vector<CategoryId>* action_gran = nullptr;
  for (ActionId a = 0; a < spec_.size(); ++a) {
    const Action& act = spec_.action(a);
    bool satisfied;
    const vm::PredProgram* prog =
        progs != nullptr && a < progs->size() ? (*progs)[a].get() : nullptr;
    if (prog != nullptr) {
      // Batch-precomputed lane weight when available, else evaluate here;
      // both are bitwise the same program on the same cell.
      const double w = action_w != nullptr ? action_w[a] : prog->Eval(cell.data());
      if (w == vm::PredProgram::kOutOfRange) {
        vm::CountFallback();  // coordinate interned after compilation
        satisfied = EvalPredOnCell(*act.predicate, ctx_, cell, now_day);
      } else {
        satisfied = w != 0.0;
      }
    } else {
      satisfied = EvalPredOnCell(*act.predicate, ctx_, cell, now_day);
    }
    if (!satisfied) continue;
    if (act.deletes) return kDeletedCell;
    if (action_gran) {
      if (GranularityLeq(ctx_, act.granularity, *action_gran)) continue;
      if (!GranularityLeq(ctx_, *action_gran, act.granularity)) {
        return Status::Internal(
            "responsible-action granularities are not totally ordered "
            "(NonCrossing violation)");
      }
    }
    action_gran = &act.granularity;
  }
  // Per-dimension LUB with the cell's own granularity — ⊤-mapped
  // coordinates ("unknown value") stay at ⊤ while the other dimensions
  // follow the responsible action.
  std::vector<CategoryId> best = cell_gran;
  if (action_gran) {
    for (size_t d = 0; d < best.size(); ++d) {
      best[d] = dims_[d]->type().Lub(cell_gran[d], (*action_gran)[d]);
    }
  }
  for (size_t i = 0; i < cubes_.size(); ++i) {
    if (cubes_[i]->granularity == best) return i;
  }
  // A ⊤-mapped coordinate lifts `best` above the responsible action's
  // granularity; such rows live in the responsible action's cube with their
  // coarse coordinate as-is (queries use availability semantics anyway).
  if (action_gran) {
    for (size_t i = 0; i < cubes_.size(); ++i) {
      if (cubes_[i]->granularity == *action_gran) return i;
    }
  }
  // The cell's granularity matches no cube (e.g. after a specification
  // change): place it in the minimal cube at or above it.
  size_t chosen = cubes_.size();
  for (size_t i = 0; i < cubes_.size(); ++i) {
    if (!GranularityLeq(ctx_, best, cubes_[i]->granularity)) continue;
    if (chosen == cubes_.size() ||
        GranularityLeq(ctx_, cubes_[i]->granularity,
                       cubes_[chosen]->granularity)) {
      chosen = i;
    }
  }
  if (chosen == cubes_.size()) {
    // Last resort (e.g. a fresh fact ⊤-mapped in some dimension, claimed by
    // no action): it stays in the bottom cube with its coordinates as-is.
    return size_t{0};
  }
  return chosen;
}

Result<std::vector<ValueId>> SubcubeManager::RollCell(
    std::span<const ValueId> cell,
    const std::vector<CategoryId>& gran) const {
  std::vector<ValueId> out(cell.size());
  for (size_t d = 0; d < cell.size(); ++d) {
    out[d] = dims_[d]->Rollup(cell[d], gran[d]);
    if (out[d] == kInvalidValue) {
      // A coordinate already above the cube's granularity (⊤-mapped values,
      // or rows kept after a specification change) stays as-is; queries
      // handle it with the availability semantics.
      CategoryId c = dims_[d]->value_category(cell[d]);
      if (dims_[d]->type().Leq(gran[d], c)) {
        out[d] = cell[d];
        continue;
      }
      return Status::Internal("cell value cannot roll up to cube granularity");
    }
  }
  return out;
}

Status SubcubeManager::RestoreRow(size_t cube, std::span<const ValueId> cell,
                                  std::span<const int64_t> measures) {
  if (cube >= cubes_.size()) {
    return Status::InvalidArgument("RestoreRow: subcube index " +
                                   std::to_string(cube) + " out of range (" +
                                   std::to_string(cubes_.size()) + " cubes)");
  }
  if (cell.size() != dims_.size() || measures.size() != measures_.size()) {
    return Status::InvalidArgument(
        "RestoreRow: row arity mismatch (" + std::to_string(cell.size()) +
        " coords, " + std::to_string(measures.size()) + " measures)");
  }
  for (size_t d = 0; d < cell.size(); ++d) {
    if (cell[d] >= dims_[d]->num_values()) {
      return Status::InvalidArgument(
          "RestoreRow: coordinate " + std::to_string(cell[d]) +
          " names no value of dimension " + dims_[d]->name());
    }
  }
  std::unique_lock<std::shared_mutex> snapshot(cache_->snapshot_mutex());
  cubes_[cube]->table.Append(cell, measures);
  cache_->BumpEpoch();
  return Status::OK();
}

Result<size_t> SubcubeManager::Synchronize(int64_t now_day,
                                           obs::OpProfile* profile) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& sync_latency = registry.GetHistogram(
      "dwred_subcube_sync_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one subcube synchronization pass (Section 7.2)");
  obs::TraceSpan span("subcube.sync", &sync_latency);

  obs::OpProfile local_profile;
  obs::OpProfile* prof = nullptr;
  if (obs::ProfilingEnabled()) {
    prof = profile != nullptr ? profile : &local_profile;
    prof->op = "subcube.sync";
    prof->trace_id = span.context().trace_id;
    prof->now_day = now_day;
    prof->parallel = true;  // plan fans out over the pool; apply is serial
    prof->fan_out = static_cast<int64_t>(cubes_.size());
  }
  obs::StageTimer stage_timer;

  // Abort finalization: stamp the profile with the abort outcome (so EXPLAIN
  // and the flight recorder show *why* the pass produced nothing) and count
  // the aborted operation once. Only reached from the read-only plan phase,
  // before bump.Arm() — the tables, epoch, and caches are untouched.
  auto abort_sync = [&](Status s) -> Status {
    s = runtime::CountAbort(std::move(s));
    if (prof != nullptr && runtime::IsAbort(s.code())) {
      prof->outcome = runtime::OutcomeLabel(s.code());
      prof->total_us = static_cast<int64_t>(span.ElapsedSeconds() * 1e6);
      obs::FlightRecorder::Global().Record(*prof);
    }
    return s;
  };

  // Writers are exclusive: no query may observe a half-migrated manifest.
  std::unique_lock<std::shared_mutex> snapshot_lock(cache_->snapshot_mutex());
  EpochBumpGuard bump(*cache_);
  if (prof != nullptr) prof->epoch = cache_->epoch();

  std::vector<AggFn> aggs;
  for (const auto& m : measures_) aggs.push_back(m.agg);

  // Per-action predicate programs (src/vm), compiled once for the whole
  // pass and shared read-only by every plan shard; empty while the VM is
  // disabled (per-row interpretation, byte-identical).
  const SpecPrograms spec_progs = CompileSpecPrograms(now_day);
  const SpecPrograms* progs = spec_progs.empty() ? nullptr : &spec_progs;
  if (prof != nullptr) prof->compiled = progs != nullptr;

  size_t migrated = 0;
  size_t deleted = 0;
  size_t compacted = 0;
  const size_t ndims = dims_.size();
  const size_t nmeas = measures_.size();
  std::vector<ValueId> cell(ndims);
  std::vector<int64_t> meas(nmeas);

  // Snapshot row counts: rows appended during this pass already sit in their
  // responsible cube and need no re-examination.
  std::vector<size_t> snapshot;
  for (const auto& c : cubes_) snapshot.push_back(c->table.num_rows());

  // --- Parallel plan, serial apply (docs/PARALLELISM.md) ------------------
  // A row's destination depends only on its cell, the specification and
  // now_day — never on other rows or on table contents — so the per-row
  // migration decisions (ResponsibleCube + RollCell) fan out over each
  // cube's storage segments (the natural shard unit, docs/STORAGE.md),
  // read-only. Synchronization must examine *every* row, so the scan plan is
  // unpruned. The mutations (appends, erases, counters) then replay serially
  // in the original (cube, row) order, so the resulting tables — and the WAL
  // intent stream recorded around this pass — are byte-identical at every
  // thread count.
  struct CubePlan {
    std::vector<size_t> target;   // per row < snapshot[i]; == i means stay
    std::vector<ValueId> rolled;  // row-major cells, valid when migrating
    std::vector<Status> shard_error;  // first error per shard (shard stops)
  };
  std::vector<CubePlan> plans(cubes_.size());
  for (size_t i = 0; i < cubes_.size(); ++i) {
    CubePlan& plan = plans[i];
    plan.target.resize(snapshot[i]);
    plan.rolled.resize(snapshot[i] * ndims);
    const Subcube& cube = *cubes_[i];
    scan::ScanPlan splan = scan::PlanTableScan(cube.table, scan::ScanSpec::All());
    plan.shard_error.assign(splan.units.size(), Status::OK());
    scan::Execute(splan, [&](size_t si, size_t begin, size_t end) {
      // Cooperative abort point, polled per shard while the pass is still
      // read-only (before bump.Arm() below): cancelling any plan shard
      // abandons the whole pass with nothing mutated.
      plan.shard_error[si] = runtime::PollCancel("cancel.sync.plan");
      if (!plan.shard_error[si].ok()) return;
      std::vector<ValueId> row_cell(ndims);
      bool failed = false;
      // Decides one row given its gathered cell and (optionally) its
      // batch-precomputed per-action weights.
      auto decide = [&](RowId r, const double* action_w) {
        auto target_r = ResponsibleCubeWith(row_cell, now_day, progs, action_w);
        if (!target_r.ok()) {
          plan.shard_error[si] = target_r.status();
          failed = true;
          return;
        }
        size_t target = target_r.value();
        plan.target[r] = target;
        if (target == i || target == kDeletedCell) return;
        auto rolled_r = RollCell(row_cell, cubes_[target]->granularity);
        if (!rolled_r.ok()) {
          plan.shard_error[si] = rolled_r.status();
          failed = true;
          return;
        }
        std::copy(rolled_r.value().begin(), rolled_r.value().end(),
                  plan.rolled.begin() + r * ndims);
      };
      const size_t nact = progs != nullptr ? progs->size() : 0;
      if (storage::ColumnarEnabled() && nact > 0) {
        // Vectorized migration planning: every compiled action predicate
        // runs chunk-at-a-time over the segment columns; the per-row LUB
        // walk then consumes the precomputed lanes.
        vm::PredProgram::BatchScratch scratch;
        std::vector<double> lanes(nact * FactTable::kBatchRows);
        std::vector<double> row_w(nact);
        cube.table.ForEachDimBatch(
            begin, end, [&](const FactTable::BatchView& b) {
              if (failed) return;
              const size_t n = b.rows();
              for (ActionId a = 0; a < nact; ++a) {
                if (const vm::PredProgram* prog = (*progs)[a].get()) {
                  prog->EvalBatch(b.dim_cols(), n,
                                  lanes.data() + a * FactTable::kBatchRows,
                                  &scratch);
                }
              }
              const RowId first = b.first_row();
              for (size_t k = 0; k < n; ++k) {
                if (failed) return;
                for (size_t d = 0; d < ndims; ++d) {
                  row_cell[d] = b.dim_col(d)[k];
                }
                for (ActionId a = 0; a < nact; ++a) {
                  row_w[a] = lanes[a * FactTable::kBatchRows + k];
                }
                decide(first + k, row_w.data());
              }
            });
      } else {
        cube.table.ForEachRow(
            begin, end, [&](RowId r, const FactTable::RowRef& row) {
              if (failed) return;
              for (size_t d = 0; d < ndims; ++d) row_cell[d] = row.coord(d);
              decide(r, nullptr);
            });
      }
    });
    // Lowest shard's error is the globally first failing row's error. Unlike
    // the serial formulation, a failed pass mutates nothing.
    for (const Status& s : plan.shard_error) {
      if (!s.ok()) return abort_sync(s);
    }
    DWRED_RETURN_IF_ERROR(abort_sync(
        runtime::CurrentOpContext().ChargeRows(
            static_cast<int64_t>(snapshot[i]))));
    if (prof != nullptr) {
      prof->rows_scanned += static_cast<int64_t>(snapshot[i]);
      prof->segments_total += static_cast<int64_t>(splan.segments_total);
      prof->segments_scanned += static_cast<int64_t>(splan.segments_total);
    }
  }
  if (prof != nullptr) prof->AddStage("plan", stage_timer.LapMicros());

  // The apply phase mutates tables; from here on the caches must be dropped
  // even if a later step fails.
  bump.Arm();
  std::vector<bool> received(cubes_.size(), false);
  for (size_t i = 0; i < cubes_.size(); ++i) {
    Subcube& cube = *cubes_[i];
    const CubePlan& plan = plans[i];
    std::vector<bool> erase(cube.table.num_rows(), false);
    // Cursor scan over the pre-pass rows (appends from earlier cubes sit in
    // the tail, past snapshot[i]); only *other* cubes' tables are mutated.
    cube.table.ForEachRow(
        0, snapshot[i], [&](RowId r, const FactTable::RowRef& row) {
          size_t target = plan.target[r];
          if (target == i) return;
          if (target == kDeletedCell) {
            // A deletion action claims the row: physical deletion, no
            // migration.
            erase[r] = true;
            ++migrated;
            ++deleted;
            return;
          }
          std::copy(plan.rolled.begin() + r * ndims,
                    plan.rolled.begin() + (r + 1) * ndims, cell.begin());
          for (size_t m = 0; m < nmeas; ++m) meas[m] = row.measure(m);
          cubes_[target]->table.Append(cell, meas);
          erase[r] = true;
          received[target] = true;
          ++migrated;
        });
    erase.resize(cube.table.num_rows(), false);
    DWRED_RETURN_IF_ERROR(cube.table.EraseRows(erase));
  }
  if (prof != nullptr) prof->AddStage("apply", stage_timer.LapMicros());
  // Cells that received data from several places are aggregated one final
  // time (Section 7.2).
  for (size_t i = 0; i < cubes_.size(); ++i) {
    if (!received[i]) continue;
    DWRED_ASSIGN_OR_RETURN(size_t folded, cubes_[i]->table.CompactCells(aggs));
    compacted += folded;
  }
  if (prof != nullptr) prof->AddStage("compact", stage_timer.LapMicros());

  static obs::Counter& c_syncs = registry.GetCounter(
      "dwred_subcube_syncs", "completed synchronization passes");
  static obs::Counter& c_migrated = registry.GetCounter(
      "dwred_subcube_sync_rows_migrated",
      "rows moved to their responsible subcube (deletions included)");
  static obs::Counter& c_deleted = registry.GetCounter(
      "dwred_subcube_sync_rows_deleted",
      "rows physically removed by deletion actions during synchronization");
  static obs::Counter& c_compacted = registry.GetCounter(
      "dwred_subcube_sync_cells_compacted",
      "rows folded away by the final per-cube cell compaction");
  c_syncs.Increment();
  c_migrated.Increment(migrated);
  c_deleted.Increment(deleted);
  c_compacted.Increment(compacted);
  span.AddField("rows_migrated", static_cast<int64_t>(migrated));
  span.AddField("rows_deleted", static_cast<int64_t>(deleted));
  span.AddField("cells_compacted", static_cast<int64_t>(compacted));
  if (prof != nullptr) {
    prof->AddCounter("rows_migrated", static_cast<int64_t>(migrated));
    prof->AddCounter("rows_deleted", static_cast<int64_t>(deleted));
    prof->AddCounter("cells_compacted", static_cast<int64_t>(compacted));
    prof->total_us = static_cast<int64_t>(span.ElapsedSeconds() * 1e6);
    static obs::Histogram& op_hist = obs::OpLatencyHistogram("subcube.sync");
    op_hist.Record(prof->total_us * 1e-6);
    obs::FlightRecorder::Global().Record(*prof);
  }
  DWRED_LOG(Debug) << "subcube sync at day " << now_day << ": " << migrated
                   << " rows migrated, " << deleted << " deleted, "
                   << compacted << " compacted";
  return migrated;
}

Result<std::vector<MultidimensionalObject>> SubcubeManager::QuerySubresults(
    const PredExpr* pred, const std::vector<CategoryId>* target,
    int64_t now_day, bool assume_synchronized, bool parallel) const {
  std::shared_lock<std::shared_mutex> snapshot(cache_->snapshot_mutex());
  return QuerySubresultsLocked(pred, target, now_day, assume_synchronized,
                               parallel);
}

std::shared_ptr<const vm::RollupProgram> SubcubeManager::CompileRollup(
    const std::vector<CategoryId>& target) const {
  // No fallback counted here: the evaluation sites (AggregateFormation)
  // count one when they walk per fact instead.
  if (!vm::Enabled()) return nullptr;
  const std::string rkey = cache::RollupFingerprint(target, cache_->epoch());
  std::shared_ptr<const vm::RollupProgram> roll = cache_->LookupRollup(rkey);
  if (roll == nullptr) {
    if (auto compiled = vm::RollupProgram::Compile(dims_, target)) {
      roll = cache_->InsertRollup(
          rkey,
          std::make_shared<const vm::RollupProgram>(std::move(*compiled)));
    }
  }
  return roll;
}

Result<std::vector<MultidimensionalObject>>
SubcubeManager::QuerySubresultsLocked(
    const PredExpr* pred, const std::vector<CategoryId>* target,
    int64_t now_day, bool assume_synchronized, bool parallel,
    obs::OpProfile* profile,
    std::shared_ptr<const vm::RollupProgram> rollup) const {
  obs::StageTimer stage_timer;
  // On the synchronized path every row already sits in its responsible cube,
  // so the selection predicate can prune whole storage segments via zone
  // maps before materialization: pruned segments hold only rows whose
  // selection weight is 0 under every approach (the spec compiles against
  // the *liberal* may-match oracle, which dominates conservative and
  // weighted), so Select would drop them anyway and the query result is
  // byte-identical. The unsynchronized path pre-aggregates ancestor rows
  // before its Select runs — dropping rows there would change aggregated
  // cells — so it scans everything.
  //
  // Compilation enumerates every value of each constrained dimension through
  // the liberal oracle — linear in dimension extent — so compiled specs are
  // cached per (predicate, NOW day, epoch); a hit skips the enumeration and
  // is byte-identical because nothing else feeds the compilation.
  const bool prune = assume_synchronized && pred != nullptr;
  scan::ScanSpec scan_spec = scan::ScanSpec::All();
  if (prune) {
    const std::string skey =
        cache::ScanSpecFingerprint(ctx_, *pred, now_day, cache_->epoch());
    if (std::shared_ptr<const scan::ScanSpec> hit =
            cache_->LookupScanSpec(skey)) {
      scan_spec = *hit;
    } else {
      scan_spec =
          scan::ScanSpec::Compile(ctx_, *pred, now_day, LiberalScanOracle(now_day));
      cache_->InsertScanSpec(skey, scan_spec);
    }
  }

  // The predicate compiled to bytecode (src/vm, docs/COMPILATION.md) under
  // the conservative approach the per-cube Select uses, cached per
  // (approach, predicate, NOW day, epoch) like the ScanSpec. Null — per-row
  // tree interpretation, byte-identical — while DWRED_VM_DISABLED or when
  // the compiler rejects the predicate.
  std::shared_ptr<const vm::PredProgram> prog;
  if (pred != nullptr) {
    if (vm::Enabled()) {
      const std::string vkey = cache::ProgramFingerprint(
          ctx_, *pred, now_day, cache_->epoch(),
          SelectionApproachName(SelectionApproach::kConservative));
      prog = cache_->LookupProgram(vkey);
      if (prog == nullptr) {
        if (auto compiled = vm::PredProgram::Compile(
                ctx_, *pred,
                QueryAtomOracle(now_day, SelectionApproach::kConservative))) {
          prog = cache_->InsertProgram(
              vkey,
              std::make_shared<const vm::PredProgram>(std::move(*compiled)));
        }
      }
    } else {
      vm::CountFallback();
    }
  }
  // The target-granularity rollup tables, compiled once per query and shared
  // by every per-cube aggregate formation (Query also reuses them for the
  // final combining aggregation).
  if (target != nullptr && rollup == nullptr) rollup = CompileRollup(*target);
  // The unsynchronized rewrite filters every unioned row through the
  // specification's action predicates — compile those once per query too.
  SpecPrograms spec_progs;
  if (!assume_synchronized) spec_progs = CompileSpecPrograms(now_day);
  const SpecPrograms* resp_progs = spec_progs.empty() ? nullptr : &spec_progs;
  if (profile != nullptr) {
    profile->compiled = prog != nullptr || resp_progs != nullptr;
  }

  if (profile != nullptr) {
    profile->AddStage("plan", stage_timer.LapMicros());
    profile->fan_out = static_cast<int64_t>(cubes_.size());
    profile->subcubes.assign(cubes_.size(), obs::SubcubeProfile{});
  }
  // Per-cube stage sums, folded into the profile serially after the fan-out
  // (each cube writes only its own slot — no atomics, deterministic).
  std::vector<int64_t> scan_us(profile != nullptr ? cubes_.size() : 0, 0);
  std::vector<int64_t> agg_us(profile != nullptr ? cubes_.size() : 0, 0);

  // One evaluation per subcube; in parallel mode the evaluations fan out
  // over the process-wide pool (only shared *reads*: dimensions, spec,
  // sibling tables, the compiled scan spec).
  auto eval_one = [&](size_t i) -> Result<MultidimensionalObject> {
    // Cooperative abort point, polled once per subcube before its rows are
    // touched; the cube's full row count is charged against the query's row
    // budget up front so an over-budget fan-out stops at subcube granularity.
    // Evaluation is read-only, so aborting here leaves no state behind.
    DWRED_RETURN_IF_ERROR(runtime::PollCancel("cancel.query.subcube"));
    DWRED_RETURN_IF_ERROR(runtime::CurrentOpContext().ChargeRows(
        static_cast<int64_t>(cubes_[i]->table.num_rows())));
    static obs::Histogram& subquery_latency =
        obs::MetricsRegistry::Global().GetHistogram(
            "dwred_subcube_subquery_seconds", obs::DefaultLatencyBuckets(),
            "wall time of one per-subcube subquery evaluation (Section 7.3)");
    const Subcube& cube = *cubes_[i];
    obs::TraceSpan span(obs::TraceBuffer::Global().enabled()
                            ? "subcube.subquery/cube=" + cube.name
                            : std::string("subcube.subquery"),
                        &subquery_latency);
    span.AddField("cube", static_cast<int64_t>(i));
    obs::StageTimer cube_timer;
    obs::SubcubeProfile* sc =
        profile != nullptr ? &profile->subcubes[i] : nullptr;

    const size_t ndims = dims_.size();
    std::vector<ValueId> cell(ndims);
    bool selected = false;
    bool aggregated = false;
    MultidimensionalObject base(fact_type_, dims_, measures_);
    if (prune) {
      scan::ScanPlan plan = scan::PlanTableScan(cube.table, scan_spec);
      if (sc != nullptr) {
        sc->segments_total = static_cast<int64_t>(plan.segments_total);
        sc->segments_pruned = static_cast<int64_t>(plan.segments_pruned);
        sc->segments_scanned = static_cast<int64_t>(plan.segments_total -
                                                    plan.segments_pruned);
        sc->rows_skipped = static_cast<int64_t>(plan.rows_skipped);
        for (const exec::Shard& u : plan.units) {
          sc->rows_scanned += static_cast<int64_t>(u.end - u.begin);
        }
      }
      if (prog != nullptr && target != nullptr && assume_synchronized) {
        // Fully fused σ→α: weights off the storage segments through the
        // compiled program, each surviving row folded into its output group
        // directly — no intermediate selection MO at all. Byte-identical to
        // the two-operator pipeline below (operators.h: AggregateFromScan).
        // Only the synchronized path fuses: Figure 9's rewrite needs the
        // un-aggregated selection first.
        DWRED_ASSIGN_OR_RETURN(
            base, AggregateFromScan(cube.table, plan, *pred, now_day,
                                    SelectionApproach::kConservative,
                                    fact_type_, dims_, measures_, *target,
                                    prog, rollup));
        selected = true;
        aggregated = true;
      } else if (prog != nullptr) {
        // Fused scan-and-select: σ[pred] evaluated straight off the storage
        // segments through the compiled program, skipping the MaterializeMO
        // copy. Byte-identical to the two-step pipeline below
        // (operators.h: SelectFromScan).
        DWRED_ASSIGN_OR_RETURN(
            SelectionResult sel,
            SelectFromScan(cube.table, plan, *pred, now_day,
                           SelectionApproach::kConservative, fact_type_,
                           dims_, measures_, prog,
                           /*materialize_names=*/target == nullptr));
        base = std::move(sel.mo);
        selected = true;
      } else {
        base = scan::MaterializeMO(cube.table, plan, fact_type_, dims_,
                                   measures_);
      }
    } else {
      // Unpruned path: no scan plan, hence no counter movement to attribute;
      // only the rows read are reported.
      if (sc != nullptr) {
        sc->rows_scanned = static_cast<int64_t>(cube.table.num_rows());
      }
      base = cube.table.ToMO(fact_type_, dims_, measures_);
    }
    if (sc != nullptr) {
      sc->name = cube.name;
      scan_us[i] = cube_timer.LapMicros();
    }
    if (!assume_synchronized) {
      // Figure 9: evaluate on α[G_i]σ[P_i](K_i ∪ parents) — pull un-migrated
      // facts from ancestor cubes, keep only the facts this cube is
      // currently responsible for, pre-aggregate to the cube's granularity.
      // The paper pulls from immediate parents under its
      // one-level-out-of-sync assumption (Section 7.2); pulling from every
      // strictly-lower cube generalizes that to arbitrarily stale
      // warehouses (facts can leapfrog a tier whose window slid past
      // between synchronizations).
      std::vector<size_t> ancestors;
      for (size_t p = 0; p < cubes_.size(); ++p) {
        if (p == i) continue;
        const auto& gp = cubes_[p]->granularity;
        if (GranularityLeq(ctx_, gp, cube.granularity) &&
            gp != cube.granularity) {
          ancestors.push_back(p);
        }
      }
      MultidimensionalObject unioned(fact_type_, dims_, measures_);
      unioned = std::move(base);
      for (size_t p : ancestors) {
        MultidimensionalObject pm =
            cubes_[p]->table.ToMO(fact_type_, dims_, measures_);
        for (FactId f = 0; f < pm.num_facts(); ++f) {
          for (size_t d = 0; d < ndims; ++d) {
            cell[d] = pm.Coord(f, static_cast<DimensionId>(d));
          }
          std::vector<int64_t> meas(measures_.size());
          for (size_t m = 0; m < measures_.size(); ++m) {
            meas[m] = pm.Measure(f, static_cast<MeasureId>(m));
          }
          auto res = unioned.AddFact(cell, meas);
          if (!res.ok()) return res.status();
        }
      }
      // σ[P_i]: current responsibility filter.
      MultidimensionalObject filtered(fact_type_, dims_, measures_);
      for (FactId f = 0; f < unioned.num_facts(); ++f) {
        for (size_t d = 0; d < ndims; ++d) {
          cell[d] = unioned.Coord(f, static_cast<DimensionId>(d));
        }
        DWRED_ASSIGN_OR_RETURN(
            size_t resp, ResponsibleCubeWith(cell, now_day, resp_progs));
        if (resp != i) continue;
        std::vector<int64_t> meas(measures_.size());
        for (size_t m = 0; m < measures_.size(); ++m) {
          meas[m] = unioned.Measure(f, static_cast<MeasureId>(m));
        }
        auto res = filtered.AddFact(cell, meas);
        if (!res.ok()) return res.status();
      }
      // α[G_i].
      DWRED_ASSIGN_OR_RETURN(
          base, AggregateFormation(filtered, cube.granularity,
                                   AggregationApproach::kAvailability,
                                   /*track_provenance=*/false));
    }
    if (pred && !selected) {
      DWRED_ASSIGN_OR_RETURN(
          SelectionResult sel,
          Select(base, *pred, now_day, SelectionApproach::kConservative, prog));
      base = std::move(sel.mo);
    }
    if (target && !aggregated) {
      DWRED_ASSIGN_OR_RETURN(
          base, AggregateFormation(base, *target,
                                   AggregationApproach::kAvailability,
                                   /*track_provenance=*/false, rollup));
    }
    if (sc != nullptr) {
      agg_us[i] = cube_timer.LapMicros();
      sc->result_facts = static_cast<int64_t>(base.num_facts());
      sc->wall_us = static_cast<int64_t>(span.ElapsedSeconds() * 1e6);
    }
    return base;
  };

  // Serial fold of the per-cube slots: attribution totals plus the summed
  // scan/aggregate stage times (per-cube sums; they overlap under parallel
  // evaluation, unlike the caller's wall-clock stage).
  auto fold_profile = [&] {
    if (profile == nullptr) return;
    int64_t scan_sum = 0;
    int64_t agg_sum = 0;
    for (size_t i = 0; i < cubes_.size(); ++i) {
      const obs::SubcubeProfile& sc = profile->subcubes[i];
      profile->segments_total += sc.segments_total;
      profile->segments_scanned += sc.segments_scanned;
      profile->segments_pruned += sc.segments_pruned;
      profile->rows_scanned += sc.rows_scanned;
      profile->rows_skipped += sc.rows_skipped;
      scan_sum += scan_us[i];
      agg_sum += agg_us[i];
    }
    profile->AddStage("scan", scan_sum);
    profile->AddStage("aggregate", agg_sum);
  };

  std::vector<MultidimensionalObject> subresults;
  if (!parallel || cubes_.size() < 2) {
    for (size_t i = 0; i < cubes_.size(); ++i) {
      DWRED_ASSIGN_OR_RETURN(MultidimensionalObject sub, eval_one(i));
      subresults.push_back(std::move(sub));
    }
    fold_profile();
    return subresults;
  }

  // One pool shard per subcube. The nested ParallelFor calls inside
  // Select/AggregateFormation are safe: the pool's caller participation
  // keeps nested operations deadlock-free. Results land in per-cube slots
  // and are collected in cube order — identical at every thread count.
  std::vector<std::optional<Result<MultidimensionalObject>>> slots(
      cubes_.size());
  exec::ThreadPool::Global().ParallelFor(
      cubes_.size(), /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) slots[i].emplace(eval_one(i));
      });
  for (size_t i = 0; i < cubes_.size(); ++i) {
    if (!slots[i]->ok()) return slots[i]->status();
    subresults.push_back(std::move(slots[i]->value()));
  }
  fold_profile();
  return subresults;
}

Result<MultidimensionalObject> SubcubeManager::Query(
    const PredExpr* pred, const std::vector<CategoryId>* target,
    int64_t now_day, bool assume_synchronized, bool parallel,
    uint64_t* pinned_epoch, obs::OpProfile* profile) const {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& query_latency = registry.GetHistogram(
      "dwred_subcube_query_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one whole subcube query (subqueries + final combine)");
  static obs::Counter& c_queries = registry.GetCounter(
      "dwred_subcube_queries", "subcube queries evaluated");
  obs::TraceSpan span("subcube.query", &query_latency);
  c_queries.Increment();

  // Profile into the caller's slot when given one, else into a local so the
  // flight recorder still sees every operation. DWRED_PROFILE_DISABLED
  // short-circuits both (prof == nullptr costs nothing below).
  obs::OpProfile local_profile;
  obs::OpProfile* prof = nullptr;
  if (obs::ProfilingEnabled()) {
    prof = profile != nullptr ? profile : &local_profile;
    prof->op = "subcube.query";
    prof->trace_id = span.context().trace_id;
    prof->now_day = now_day;
    prof->assume_synchronized = assume_synchronized;
    prof->parallel = parallel;
  }
  obs::StageTimer stage_timer;

  // Abort finalization: count the aborted query once, stamp the profile with
  // the outcome and budget so EXPLAIN shows why the query returned nothing.
  // Every abort return below precedes cache_->InsertQuery, so an aborted
  // query never pollutes the cache (docs/ROBUSTNESS.md).
  auto abort_query = [&](Status s) -> Status {
    s = runtime::CountAbort(std::move(s));
    if (prof != nullptr && runtime::IsAbort(s.code())) {
      prof->outcome = runtime::OutcomeLabel(s.code());
      prof->budget_max_rows = runtime::CurrentOpContext().max_rows();
      prof->budget_rows_charged = runtime::CurrentOpContext().rows_charged();
      prof->total_us = static_cast<int64_t>(span.ElapsedSeconds() * 1e6);
      obs::FlightRecorder::Global().Record(*prof);
    }
    return s;
  };

  // Admission gate (runtime/governor.h): bounded wait for a slot, then shed
  // with kResourceExhausted. Acquired before the snapshot lock so a queued
  // query holds no reader lock while it waits; the ticket spans the whole
  // evaluation.
  runtime::AdmissionTicket ticket;
  {
    Status admitted = runtime::ResourceGovernor::Global().Admit(&ticket);
    if (!admitted.ok()) return abort_query(std::move(admitted));
  }

  // Epoch-pinned snapshot: the shared lock spans lookup, evaluation and
  // insert, so the epoch read here is the epoch of every byte this query
  // observes (writers are exclusive).
  std::shared_lock<std::shared_mutex> snapshot(cache_->snapshot_mutex());
  const uint64_t epoch = cache_->epoch();
  if (pinned_epoch != nullptr) *pinned_epoch = epoch;
  // Snapshot-isolation self-check: the storage content versions must not
  // move while the shared lock is held.
  uint64_t version_sum = 0;
  for (const auto& c : cubes_) version_sum += c->table.content_version();

  // Cooperative abort point: before the cache lookup, so a cancelled query
  // moves no cache counters and the differential test sees identical stats.
  DWRED_RETURN_IF_ERROR(abort_query(runtime::PollCancel("cancel.query.begin")));

  const std::string key = cache::QueryFingerprint(
      ctx_, pred, target, now_day, assume_synchronized, epoch);
  if (prof != nullptr) {
    prof->epoch = epoch;
    prof->cache =
        cache::Enabled() ? obs::CacheOutcome::kMiss : obs::CacheOutcome::kDisabled;
  }
  if (std::shared_ptr<const MultidimensionalObject> hit =
          cache_->LookupQuery(key)) {
    span.AddField("cache_hit", int64_t{1});
    if (prof != nullptr) {
      prof->cache = obs::CacheOutcome::kHit;
      prof->budget_max_rows = runtime::CurrentOpContext().max_rows();
      prof->result_facts = static_cast<int64_t>(hit->num_facts());
      prof->total_us = static_cast<int64_t>(span.ElapsedSeconds() * 1e6);
      static obs::Histogram& op_hist = obs::OpLatencyHistogram("subcube.query");
      op_hist.Record(prof->total_us * 1e-6);
      // Hash the key only when someone will read the fingerprint: an EXPLAIN
      // caller or a flight-recorder admission. Keeps the steady-state warm
      // path within its overhead budget (bench_query_cache.cc).
      if (profile != nullptr ||
          obs::FlightRecorder::Global().WouldRecord(prof->total_us)) {
        prof->fingerprint = obs::Fnv1a64(key);
      }
      obs::FlightRecorder::Global().Record(*prof);
    }
    return *hit;
  }
  if (prof != nullptr) {
    // Miss path: the scan dwarfs the hash, so always fingerprint.
    prof->fingerprint = obs::Fnv1a64(key);
    prof->AddStage("lookup", stage_timer.LapMicros());
  }

  std::shared_ptr<const vm::RollupProgram> roll;
  if (target != nullptr) roll = CompileRollup(*target);
  auto subs_r = QuerySubresultsLocked(pred, target, now_day,
                                      assume_synchronized, parallel, prof,
                                      roll);
  if (!subs_r.ok()) return abort_query(subs_r.status());
  std::vector<MultidimensionalObject> subs = subs_r.take();
  // Wall clock of the whole fan-out (the scan/aggregate stages recorded by
  // QuerySubresultsLocked are per-cube sums, which overlap under parallel
  // evaluation).
  if (prof != nullptr) prof->AddStage("subqueries_wall", stage_timer.LapMicros());
  // Union of disjoint subresults ...
  MultidimensionalObject unioned(fact_type_, dims_, measures_);
  std::vector<ValueId> cell(dims_.size());
  std::vector<int64_t> meas(measures_.size());
  for (const auto& s : subs) {
    for (FactId f = 0; f < s.num_facts(); ++f) {
      for (size_t d = 0; d < dims_.size(); ++d) {
        cell[d] = s.Coord(f, static_cast<DimensionId>(d));
      }
      for (size_t m = 0; m < measures_.size(); ++m) {
        meas[m] = s.Measure(f, static_cast<MeasureId>(m));
      }
      auto res = unioned.AddFact(cell, meas);
      if (!res.ok()) return res.status();
    }
  }
  // ... then one final combining aggregation (distributivity makes the
  // two-step aggregation exact, Section 7.3).
  if (target) {
    DWRED_ASSIGN_OR_RETURN(
        unioned, AggregateFormation(unioned, *target,
                                    AggregationApproach::kAvailability,
                                    /*track_provenance=*/false, roll));
  }
  uint64_t version_check = 0;
  for (const auto& c : cubes_) version_check += c->table.content_version();
  DWRED_CHECK(version_check == version_sum);
  cache_->InsertQuery(key,
                      std::make_shared<MultidimensionalObject>(unioned));
  if (prof != nullptr) {
    // The union + final combining aggregation materializes the result.
    prof->AddStage("materialize", stage_timer.LapMicros());
    prof->budget_max_rows = runtime::CurrentOpContext().max_rows();
    prof->budget_rows_charged = runtime::CurrentOpContext().rows_charged();
    prof->result_facts = static_cast<int64_t>(unioned.num_facts());
    prof->total_us = static_cast<int64_t>(span.ElapsedSeconds() * 1e6);
    static obs::Histogram& op_hist = obs::OpLatencyHistogram("subcube.query");
    op_hist.Record(prof->total_us * 1e-6);
    obs::FlightRecorder::Global().Record(*prof);
  }
  return unioned;
}

Status SubcubeManager::ChangeSpecification(ReductionSpecification new_spec,
                                           int64_t now_day) {
  // Last cooperative check before the irrevocable layout swap: a
  // specification change cannot unwind cleanly once rows start moving, so an
  // already-cancelled or expired context is rejected up front and never after.
  DWRED_RETURN_IF_ERROR(runtime::CountAbort(runtime::CurrentOpContext().Check()));
  std::unique_lock<std::shared_mutex> snapshot(cache_->snapshot_mutex());
  EpochBumpGuard bump(*cache_);
  bump.Arm();  // the layout swap below always invalidates cached results
  // Stash every row, swap the specification, rebuild the layout, then
  // redistribute (Section 7.2's infrequent synchronization: "data is moved
  // from all old subcubes, not only from parent cubes").
  struct Row {
    std::vector<ValueId> cell;
    std::vector<int64_t> meas;
  };
  std::vector<Row> rows;
  const size_t ndims = dims_.size();
  const size_t nmeas = measures_.size();
  for (const auto& c : cubes_) {
    c->table.ForEachRow(
        0, c->table.num_rows(), [&](RowId, const FactTable::RowRef& ref) {
          Row row;
          row.cell.resize(ndims);
          for (size_t d = 0; d < ndims; ++d) row.cell[d] = ref.coord(d);
          row.meas.resize(nmeas);
          for (size_t m = 0; m < nmeas; ++m) row.meas[m] = ref.measure(m);
          rows.push_back(std::move(row));
        });
  }

  spec_ = std::move(new_spec);
  DWRED_RETURN_IF_ERROR(BuildLayout());

  std::vector<AggFn> aggs;
  for (const auto& m : measures_) aggs.push_back(m.agg);
  // Compiled after the layout swap so the programs reflect the new actions.
  const SpecPrograms spec_progs = CompileSpecPrograms(now_day);
  const SpecPrograms* progs = spec_progs.empty() ? nullptr : &spec_progs;
  for (const Row& row : rows) {
    auto target_res = ResponsibleCubeWith(row.cell, now_day, progs);
    if (!target_res.ok()) return target_res.status();
    size_t target = target_res.value();
    if (target == kDeletedCell) continue;  // claimed by a deletion action
    auto rolled = RollCell(row.cell, cubes_[target]->granularity);
    if (!rolled.ok()) return rolled.status();
    cubes_[target]->table.Append(rolled.value(), row.meas);
  }
  for (auto& c : cubes_) {
    DWRED_RETURN_IF_ERROR(c->table.CompactCells(aggs).status());
  }
  return Status::OK();
}

size_t SubcubeManager::TotalBytes() const {
  size_t bytes = 0;
  for (const auto& c : cubes_) bytes += c->table.Bytes();
  return bytes;
}

std::string SubcubeManager::DescribeLayout() const {
  std::string out;
  for (size_t i = 0; i < cubes_.size(); ++i) {
    const Subcube& c = *cubes_[i];
    out += c.name + " (";
    for (size_t d = 0; d < dims_.size(); ++d) {
      if (d) out += ", ";
      out += dims_[d]->type().category_name(c.granularity[d]);
    }
    out += ") actions={";
    for (size_t a = 0; a < c.actions.size(); ++a) {
      if (a) out += ",";
      const std::string& n = spec_.action(c.actions[a]).name;
      out += n.empty() ? std::to_string(c.actions[a]) : n;
    }
    out += "} parents={";
    for (size_t p = 0; p < c.parents.size(); ++p) {
      if (p) out += ",";
      out += cubes_[c.parents[p]]->name;
    }
    out += "} rows=" + std::to_string(c.table.num_rows()) + "\n";
  }
  return out;
}

}  // namespace dwred
