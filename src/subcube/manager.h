#pragma once

// The implementation strategy of paper Section 7: the warehouse is stored as
// a set of physical *subcubes*, one per granularity group of the (disjoint)
// action set plus one bottom-granularity subcube that receives all new data.
// For every fact, exactly one action is responsible for its current
// granularity (Section 4), so each fact lives in exactly one subcube: the one
// whose granularity the <=_V-maximal satisfied action specifies (facts
// satisfying no action live in the bottom cube — the residual action a'_⊥ of
// eq. (44)).
//
// As NOW advances, facts stop satisfying their cube's region and must migrate
// to the responsible child cube (Section 7.2, Figure 7): Synchronize() scans
// every cube bottom-up, moves rows directly to their responsible cube at its
// granularity, and compacts cells that received data from several parents
// ("aggregated one final time").
//
// Queries (Section 7.3, Figures 8 and 9) are evaluated per subcube and the
// subresults combined with one final availability-approach aggregation —
// sound because default aggregate functions are distributive. In the
// un-synchronized state, each subcube's subquery is evaluated on
// α[G_i]σ[P_i](K_i ∪ parents): the cube's own rows plus its immediate
// parents' rows, filtered to the facts the cube is *currently* responsible
// for, aggregated to the cube's granularity.

#include <memory>
#include <string>

#include "cache/cache.h"
#include "obs/profile.h"
#include "query/operators.h"
#include "spec/action.h"
#include "storage/fact_table.h"

namespace dwred {

/// One physical subcube.
struct Subcube {
  std::string name;                      ///< "K0", "K1", ...
  std::vector<CategoryId> granularity;   ///< fixed granularity of the cube
  std::vector<ActionId> actions;         ///< disjoint actions grouped here
  FactTable table;
  std::vector<size_t> parents;           ///< immediate parents (data sources)

  Subcube(size_t ndims, size_t nmeas) : table(ndims, nmeas) {}
};

/// The synchronization cadence Section 7.2 calls sufficient for the
/// one-level-out-of-sync assumption: once per "significant time period" —
/// the second-lowest granularity at which NOW appears in the specification
/// (e.g. NOW used at month and quarter -> synchronize once per quarter).
/// With NOW at fewer than two distinct granularities, the single (or, with
/// no NOW at all, day) granularity is returned — synchronizing that often is
/// trivially sufficient.
Result<TimeSpan> RecommendedSyncInterval(const MultidimensionalObject& mo,
                                         const ReductionSpecification& spec);

/// A data warehouse physically organized as subcubes.
class SubcubeManager {
 public:
  /// Builds the subcube layout for a validated specification. The bottom
  /// cube is always subcube 0.
  static Result<SubcubeManager> Create(
      std::string fact_type, std::vector<std::shared_ptr<Dimension>> dims,
      std::vector<MeasureType> measures, ReductionSpecification spec);

  size_t num_subcubes() const { return cubes_.size(); }
  const Subcube& subcube(size_t i) const { return *cubes_[i]; }
  const ReductionSpecification& spec() const { return spec_; }

  /// A facts-free MO over the warehouse's dimensions and measures — the
  /// context against which predicates and granularity lists are parsed.
  const MultidimensionalObject& context() const { return ctx_; }

  /// The warehouse's epoch counter, snapshot lock, and query/ScanSpec caches
  /// (src/cache). Every mutating pass bumps the epoch under the exclusive
  /// lock; queries run under the shared lock against the epoch they pinned.
  cache::WarehouseCache& warehouse_cache() const { return *cache_; }

  /// Current warehouse epoch (see cache::WarehouseCache).
  uint64_t epoch() const { return cache_->epoch(); }

  /// Bulk-loads new detail facts (bottom granularity) into the bottom cube.
  Status InsertBottomFacts(const MultidimensionalObject& batch);

  /// Sentinel returned by ResponsibleCube when a deletion action (the
  /// Section 8 extension) claims the cell: the fact must be physically
  /// removed rather than migrated.
  static constexpr size_t kDeletedCell = static_cast<size_t>(-1);

  /// The index of the subcube responsible for a fact with the given direct
  /// cell at time `now_day` (0 = bottom cube; kDeletedCell when a deletion
  /// action claims the cell).
  Result<size_t> ResponsibleCube(std::span<const ValueId> cell,
                                 int64_t now_day) const;

  /// One compiled 0/1 program per specification action (src/vm), or an empty
  /// vector while DWRED_VM_DISABLED. Slots whose predicate the compiler
  /// rejects are null — those actions interpret per row. The hot
  /// responsibility passes (Synchronize, ChangeSpecification, the
  /// unsynchronized query rewrite) compile once and reuse across every row.
  using SpecPrograms = std::vector<std::shared_ptr<const vm::PredProgram>>;
  SpecPrograms CompileSpecPrograms(int64_t now_day) const;

  /// Migrates every fact to its responsible subcube at that cube's
  /// granularity and compacts receiving cubes (Section 7.2). Returns the
  /// number of migrated rows. A non-null `profile` receives the pass's
  /// EXPLAIN profile (stage times, rows migrated/deleted/compacted) when
  /// profiling is enabled (see obs/profile.h).
  Result<size_t> Synchronize(int64_t now_day,
                             obs::OpProfile* profile = nullptr);

  /// Deserialization hook (io/recovery.h): appends one saved row to subcube
  /// `cube` verbatim, without responsibility routing or granularity rollup —
  /// the row is trusted to be at the cube's granularity because it was
  /// serialized from it. Validates the cube index, the row arity, and that
  /// every coordinate names an interned value of the shared dimensions
  /// (InvalidArgument otherwise).
  Status RestoreRow(size_t cube, std::span<const ValueId> cell,
                    std::span<const int64_t> measures);

  /// Evaluates σ[pred] then (optionally) α[target] over the subcubes,
  /// combining per-cube subresults with a final availability aggregation.
  /// `pred` may be null (no selection); `target` may be null (no aggregate
  /// formation). With `assume_synchronized` the per-cube rewrite of Figure 9
  /// (pull un-migrated rows from immediate parents, filter by current
  /// responsibility, pre-aggregate to the cube's granularity) is skipped.
  /// With `parallel`, subcubes are evaluated on one thread each — Section
  /// 7.3's "separately and in parallel"; sound because per-cube evaluation
  /// only reads shared state and the final combine is a single-threaded
  /// distributive fold.
  ///
  /// The whole evaluation runs under the warehouse's shared snapshot lock:
  /// the epoch and sealed-segment manifest observed at entry cannot change
  /// until the result is built, so queries run concurrently with writers
  /// without byte-level divergence. When `pinned_epoch` is non-null it
  /// receives the epoch this query evaluated against. Results and compiled
  /// ScanSpecs are served from the epoch-keyed caches when enabled
  /// (docs/CACHING.md); a cache hit is byte-identical to re-evaluation.
  /// A non-null `profile` receives the query's EXPLAIN profile — pinned
  /// epoch, cache outcome + fingerprint, per-subcube fan-out, segments
  /// scanned vs. pruned, rows skipped, per-stage wall times — when profiling
  /// is enabled (DWRED_PROFILE_DISABLED unset; see obs/profile.h). On the
  /// pruned path the profile's segment/row totals equal the
  /// dwred_scan_segments_* / dwred_scan_rows_skipped counter deltas exactly.
  Result<MultidimensionalObject> Query(const PredExpr* pred,
                                       const std::vector<CategoryId>* target,
                                       int64_t now_day,
                                       bool assume_synchronized,
                                       bool parallel = false,
                                       uint64_t* pinned_epoch = nullptr,
                                       obs::OpProfile* profile = nullptr) const;

  /// Per-cube subresults of a query (exposed to reproduce Figure 8's S0..S4).
  /// Takes the shared snapshot lock like Query (but only Query consults the
  /// result cache — subresult vectors are not cached).
  Result<std::vector<MultidimensionalObject>> QuerySubresults(
      const PredExpr* pred, const std::vector<CategoryId>* target,
      int64_t now_day, bool assume_synchronized, bool parallel = false) const;

  /// Replaces the specification (Section 7.2's infrequent synchronization):
  /// rebuilds the cube layout and redistributes every fact to its responsible
  /// cube under the new specification.
  Status ChangeSpecification(ReductionSpecification new_spec, int64_t now_day);

  /// Total fact-storage bytes across the subcubes.
  size_t TotalBytes() const;

  /// One line per subcube: name, granularity, actions, rows.
  std::string DescribeLayout() const;

 private:
  SubcubeManager(std::string fact_type,
                 std::vector<std::shared_ptr<Dimension>> dims,
                 std::vector<MeasureType> measures,
                 ReductionSpecification spec);

  Status BuildLayout();

  /// Rolls a cell up to a cube's granularity. Fails if some coordinate
  /// cannot be rolled up (would indicate a NonCrossing violation).
  Result<std::vector<ValueId>> RollCell(std::span<const ValueId> cell,
                                        const std::vector<CategoryId>& gran) const;

  /// ResponsibleCube body; `progs` (when non-null and non-empty) supplies
  /// compiled per-action predicate programs, byte-identical to interpreting.
  /// `action_w` (when non-null) carries this cell's batch-precomputed weight
  /// per action (vm::PredProgram::EvalBatch over a column chunk); a lane at
  /// kOutOfRange — or an action with no program — falls back to the same
  /// per-row evaluation the non-batch path uses.
  Result<size_t> ResponsibleCubeWith(std::span<const ValueId> cell,
                                     int64_t now_day,
                                     const SpecPrograms* progs,
                                     const double* action_w = nullptr) const;

  /// The rollup tables for one target granularity, compiled once and cached
  /// per (granularity, epoch) in the program LRU. Null while DWRED_VM_DISABLED
  /// or when a dimension is too large to enumerate (per-fact walks instead).
  std::shared_ptr<const vm::RollupProgram> CompileRollup(
      const std::vector<CategoryId>& target) const;

  /// QuerySubresults body; the caller must hold the shared snapshot lock
  /// (the lock is not recursive, so Query cannot call the public wrapper).
  /// `rollup` optionally shares the query's target-granularity rollup tables
  /// with every per-cube aggregation (compiled here when null and needed).
  Result<std::vector<MultidimensionalObject>> QuerySubresultsLocked(
      const PredExpr* pred, const std::vector<CategoryId>* target,
      int64_t now_day, bool assume_synchronized, bool parallel,
      obs::OpProfile* profile = nullptr,
      std::shared_ptr<const vm::RollupProgram> rollup = nullptr) const;

  std::string fact_type_;
  std::vector<std::shared_ptr<Dimension>> dims_;
  std::vector<MeasureType> measures_;
  ReductionSpecification spec_;
  MultidimensionalObject ctx_;  ///< facts-free evaluation context
  std::vector<std::unique_ptr<Subcube>> cubes_;
  /// Heap-held so the manager stays movable through Result<SubcubeManager>
  /// (the lock and epoch atomic must never relocate under concurrent use).
  std::unique_ptr<cache::WarehouseCache> cache_;
};

}  // namespace dwred
