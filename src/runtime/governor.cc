#include "runtime/governor.h"

#include <chrono>
#include <limits>

#include "common/env.h"
#include "obs/metrics.h"
#include "runtime/cancel.h"

namespace dwred::runtime {

namespace {

obs::Counter& AdmittedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_admission_admitted", "queries admitted through the gate");
  return c;
}

obs::Counter& WaitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_admission_waits", "admissions that had to wait for a slot");
  return c;
}

obs::Counter& ShedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_shed_total", "queries shed by the admission gate");
  return c;
}

obs::Gauge& InflightGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_admission_inflight", "queries currently holding admission slots");
  return g;
}

/// Parses a non-negative integer environment knob; warns and returns
/// `fallback` on garbage or overflow (common/env.h — the previous strtoll
/// copy let ERANGE clamp to LLONG_MAX and pass validation).
int64_t EnvNonNegative(const char* name, int64_t fallback) {
  return EnvInt64(name, fallback, 0, std::numeric_limits<int64_t>::max(),
                  EnvRangePolicy::kFallback);
}

}  // namespace

void AdmissionTicket::Release() {
  if (governor_ != nullptr) {
    governor_->ReleaseSlot();
    governor_ = nullptr;
  }
}

ResourceGovernor& ResourceGovernor::Global() {
  static ResourceGovernor* g = new ResourceGovernor();  // leaked by design
  return *g;
}

void ResourceGovernor::Configure(int max_concurrent, int64_t max_wait_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  max_concurrent_ = max_concurrent > 0 ? max_concurrent : 0;
  max_wait_ms_ = max_wait_ms > 0 ? max_wait_ms : 0;
  env_loaded_ = true;
  cv_.notify_all();
}

void ResourceGovernor::ConfigureFromEnv() {
  int64_t limit = EnvNonNegative("DWRED_MAX_CONCURRENT_QUERIES", 0);
  int64_t wait_ms = EnvNonNegative("DWRED_ADMISSION_WAIT_MS", 100);
  std::lock_guard<std::mutex> lock(mu_);
  max_concurrent_ = static_cast<int>(limit);
  max_wait_ms_ = wait_ms;
  env_loaded_ = true;
}

Status ResourceGovernor::Admit(AdmissionTicket* ticket) {
  // Don't burn a slot (or a wait) on an operation that is already dead.
  DWRED_RETURN_IF_ERROR(CurrentOpContext().Check());

  std::unique_lock<std::mutex> lock(mu_);
  if (!env_loaded_) {
    lock.unlock();
    ConfigureFromEnv();
    lock.lock();
  }
  if (max_concurrent_ <= 0) {
    // Unlimited: nothing to count, the ticket stays empty.
    AdmittedCounter().Increment();
    return Status::OK();
  }

  int64_t wait_ms = max_wait_ms_;
  int64_t remaining = CurrentOpContext().deadline.remaining_millis();
  if (remaining < wait_ms) wait_ms = remaining;
  auto give_up = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(wait_ms);

  bool waited = false;
  while (inflight_ >= max_concurrent_ && max_concurrent_ > 0) {
    waited = true;
    if (cv_.wait_until(lock, give_up) == std::cv_status::timeout &&
        inflight_ >= max_concurrent_ && max_concurrent_ > 0) {
      ShedCounter().Increment();
      return Status::ResourceExhausted(
          "admission gate full: " + std::to_string(inflight_) + "/" +
          std::to_string(max_concurrent_) + " queries in flight after " +
          std::to_string(wait_ms) + "ms wait");
    }
    Status ctx = CurrentOpContext().Check();
    if (!ctx.ok()) return ctx;
  }

  ++inflight_;
  InflightGauge().Set(inflight_);
  AdmittedCounter().Increment();
  if (waited) WaitsCounter().Increment();
  *ticket = AdmissionTicket(this);
  return Status::OK();
}

void ResourceGovernor::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    InflightGauge().Set(inflight_);
  }
  cv_.notify_one();
}

int ResourceGovernor::max_concurrent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_concurrent_;
}

int64_t ResourceGovernor::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace dwred::runtime
