#pragma once

// Cooperative cancellation, deadlines, and per-operation resource budgets
// (docs/ROBUSTNESS.md).
//
// The engine's long-running passes — the sharded Reduce scan, the Synchronize
// plan phase, and the per-subcube query fan-out — poll an *operation context*
// at shard granularity. The context is thread-local and propagates through
// exec::ThreadPool ops exactly like the trace context (obs/trace.h): the
// submitting thread's context is captured at submission and installed around
// every shard, so a deadline set before Query() governs work executed on any
// worker thread.
//
// Degradation contract: every poll site sits in a *read-only* phase of its
// operation (Synchronize polls only while planning, before the first table
// byte moves; Reduce builds a fresh MO and assigns it only on success; query
// evaluation never writes). An abort status — kCancelled, kDeadlineExceeded,
// kResourceExhausted — therefore guarantees the warehouse is byte-identical
// to never having started: epoch unbumped, caches untouched, snapshot
// unchanged. tests/cancel_matrix_test.cc enforces this differentially via
// DWRED_FAULT cancel sites (testing/fault.h), mirroring the crash matrix.
//
// Cost when nothing is armed: CheckCancelled on a default context is a
// thread-local read plus three predictable branches; no atomics, no locks.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace dwred::runtime {

/// A shareable cancellation flag. Default-constructed tokens are *inert*
/// (never cancelled, Cancel() is a no-op) so the ambient default OpContext
/// costs nothing; Create() makes a real token whose copies share one flag.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Create() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// Requests cancellation. All copies of the token observe it; no-op on an
  /// inert token.
  void Cancel() const {
    if (state_) state_->cancelled.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return state_ && state_->cancelled.load(std::memory_order_acquire);
  }

  /// True for tokens made by Create() (inert tokens cannot be cancelled).
  bool cancellable() const { return state_ != nullptr; }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
  };
  std::shared_ptr<State> state_;
};

/// A wall-clock cutoff on the steady clock. Default: none (never expires).
class Deadline {
 public:
  Deadline() = default;

  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.has_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool has_deadline() const { return has_; }
  bool expired() const {
    return has_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Time left, clamped at zero; the full int64 range when no deadline.
  int64_t remaining_millis() const;

 private:
  bool has_ = false;
  std::chrono::steady_clock::time_point at_;
};

/// The ambient per-operation context: cancel token, deadline, and row budget.
/// Copyable (copies share the token flag and the charged-rows accumulator, so
/// parallel shards of one operation charge one budget).
class OpContext {
 public:
  CancelToken token;   ///< inert by default
  Deadline deadline;   ///< none by default

  /// Installs a row budget: Check()/ChargeRows() fail with
  /// kResourceExhausted once more than `max_rows` rows have been charged.
  /// max_rows <= 0 removes the budget.
  void SetMaxRows(int64_t max_rows);

  int64_t max_rows() const { return max_rows_; }
  int64_t rows_charged() const {
    return charged_ ? charged_->load(std::memory_order_relaxed) : 0;
  }

  /// Adds `rows` to the operation's charged total; kResourceExhausted when
  /// the budget is exceeded. No-op (always OK) without a budget.
  Status ChargeRows(int64_t rows) const;

  /// kCancelled if the token fired, else kDeadlineExceeded if past the
  /// deadline, else kResourceExhausted if the row budget is already blown,
  /// else OK. Deadline is checked before the token so an expired deadline
  /// reports deterministically even after it cancelled sibling shards.
  Status Check() const;

 private:
  int64_t max_rows_ = 0;  ///< 0 = unlimited
  std::shared_ptr<std::atomic<int64_t>> charged_;
};

/// The calling thread's current context. Defaults to an inert context (no
/// token, no deadline, no budget).
const OpContext& CurrentOpContext();

/// Installs `ctx` as the thread's current context for the scope's lifetime,
/// restoring the previous one on destruction. exec::ThreadPool uses this to
/// carry the submitter's context onto worker threads (thread_pool.cc).
class ScopedOpContext {
 public:
  explicit ScopedOpContext(OpContext ctx);
  ~ScopedOpContext();

  ScopedOpContext(const ScopedOpContext&) = delete;
  ScopedOpContext& operator=(const ScopedOpContext&) = delete;

 private:
  OpContext prev_;
};

/// A cancellation poll site: a named fault point (so the cancel matrix can
/// inject an abort at exactly this site via DWRED_FAULT=<site>:<n>:cancel)
/// followed by a context check. An injected cancel also fires the current
/// token so sibling shards of the same operation stop cooperatively.
Status PollCancel(const char* site);

/// True for the three cooperative-abort codes. Abort statuses are clean by
/// contract (see the header comment): callers such as the durable layer may
/// treat them as not-poisoning.
bool IsAbort(StatusCode code);

/// Increments the matching dwred_cancel_* counter when `s` carries an abort
/// code (no-op otherwise) and returns `s` unchanged. Engine operations call
/// this exactly once on their abort return path, so the counters count
/// aborted *operations*, not poll hits.
Status CountAbort(Status s);

/// Short outcome label for profiles: "ok", "cancelled", "deadline_exceeded",
/// "resource_exhausted", or "error".
const char* OutcomeLabel(StatusCode code);

}  // namespace dwred::runtime
