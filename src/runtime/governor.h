#pragma once

// Admission control for queries (docs/ROBUSTNESS.md): a process-wide gate
// bounding how many queries run concurrently, with bounded wait-then-shed
// backpressure. A query that cannot get a slot within the wait budget is
// *shed* — rejected with kResourceExhausted — instead of queueing without
// bound and wedging every caller behind a pathological workload. Modeled on
// the load-shedding front door of partitioned cube servers (SNIPPETS.md).
//
// Unlimited (the default) is the fast path: no mutex, no atomics beyond the
// limit load. Configure via code or environment:
//
//   DWRED_MAX_CONCURRENT_QUERIES=<n>   0 = unlimited (default)
//   DWRED_ADMISSION_WAIT_MS=<ms>       bounded wait before shedding (default 100)
//
// Metrics: dwred_admission_admitted, dwred_admission_waits (admissions that
// had to wait), dwred_admission_inflight (gauge), dwred_shed_total.

#include <cstdint>
#include <condition_variable>
#include <mutex>

#include "common/status.h"

namespace dwred::runtime {

class ResourceGovernor;

/// RAII admission slot. Move-only; releases its slot (and wakes one waiter)
/// on destruction. A default-constructed or shed ticket holds nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(AdmissionTicket&& other) noexcept
      : governor_(other.governor_) {
    other.governor_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      governor_ = other.governor_;
      other.governor_ = nullptr;
    }
    return *this;
  }

  /// True when this ticket actually holds a counted slot (admission was
  /// gated). Fast-path admissions under an unlimited governor hold nothing —
  /// there is no slot count to keep balanced.
  bool counted() const { return governor_ != nullptr; }

 private:
  friend class ResourceGovernor;
  explicit AdmissionTicket(ResourceGovernor* governor) : governor_(governor) {}
  void Release();

  ResourceGovernor* governor_ = nullptr;
};

/// The process-wide admission gate. Thread-safe.
class ResourceGovernor {
 public:
  static ResourceGovernor& Global();

  /// `max_concurrent` <= 0 means unlimited; `max_wait_ms` < 0 is clamped to
  /// 0 (shed immediately when full). Reconfiguring does not disturb tickets
  /// already issued: each ticket remembers whether it was counted.
  void Configure(int max_concurrent, int64_t max_wait_ms);

  /// Re-reads DWRED_MAX_CONCURRENT_QUERIES / DWRED_ADMISSION_WAIT_MS,
  /// warning and falling back on unparseable values. Called once
  /// automatically on first Admit(); exposed for tests.
  void ConfigureFromEnv();

  /// Acquires an admission slot, waiting at most the configured bound when
  /// the gate is full. On success the ticket holds the slot until destroyed;
  /// on timeout the query is shed with kResourceExhausted and the ticket is
  /// empty. Also fails fast (without waiting) when the caller's OpContext is
  /// already cancelled or past deadline — never waits longer than the
  /// caller's remaining deadline.
  Status Admit(AdmissionTicket* ticket);

  int max_concurrent() const;
  int64_t inflight() const;

 private:
  friend class AdmissionTicket;
  ResourceGovernor() = default;
  void ReleaseSlot();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int max_concurrent_ = 0;  ///< 0 = unlimited
  int64_t max_wait_ms_ = 100;
  int64_t inflight_ = 0;
  bool env_loaded_ = false;
};

}  // namespace dwred::runtime
