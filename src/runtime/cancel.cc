#include "runtime/cancel.h"

#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "testing/fault.h"

namespace dwred::runtime {

namespace {

// One thread-local context per thread; the default is fully inert, so
// CurrentOpContext().Check() on a thread that never installed a context is
// three always-false branches.
thread_local OpContext g_ctx;

}  // namespace

int64_t Deadline::remaining_millis() const {
  if (!has_) return std::numeric_limits<int64_t>::max();
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  at_ - std::chrono::steady_clock::now())
                  .count();
  return left > 0 ? left : 0;
}

void OpContext::SetMaxRows(int64_t max_rows) {
  if (max_rows <= 0) {
    max_rows_ = 0;
    charged_.reset();
    return;
  }
  max_rows_ = max_rows;
  charged_ = std::make_shared<std::atomic<int64_t>>(0);
}

Status OpContext::ChargeRows(int64_t rows) const {
  if (!charged_) return Status::OK();
  int64_t total = charged_->fetch_add(rows, std::memory_order_relaxed) + rows;
  if (total > max_rows_) {
    return Status::ResourceExhausted(
        "row budget exceeded: " + std::to_string(total) + " rows charged, " +
        std::to_string(max_rows_) + " allowed");
  }
  return Status::OK();
}

Status OpContext::Check() const {
  if (deadline.expired()) {
    return Status::DeadlineExceeded("operation ran past its deadline");
  }
  if (token.cancelled()) {
    return Status::Cancelled("operation cancelled");
  }
  if (charged_ && charged_->load(std::memory_order_relaxed) > max_rows_) {
    return Status::ResourceExhausted(
        "row budget exceeded: " +
        std::to_string(charged_->load(std::memory_order_relaxed)) +
        " rows charged, " + std::to_string(max_rows_) + " allowed");
  }
  return Status::OK();
}

const OpContext& CurrentOpContext() { return g_ctx; }

ScopedOpContext::ScopedOpContext(OpContext ctx) : prev_(std::move(g_ctx)) {
  g_ctx = std::move(ctx);
}

ScopedOpContext::~ScopedOpContext() { g_ctx = std::move(prev_); }

Status PollCancel(const char* site) {
  Status injected = testing::FaultPoint(site);
  if (!injected.ok()) {
    // An injected cancel behaves like a real one: fire the operation's token
    // so sibling shards already in flight also stop, then report from here.
    if (injected.code() == StatusCode::kCancelled) g_ctx.token.Cancel();
    return injected;
  }
  return g_ctx.Check();
}

bool IsAbort(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

Status CountAbort(Status s) {
  switch (s.code()) {
    case StatusCode::kCancelled: {
      static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
          "dwred_cancel_cancelled", "operations aborted by cancellation");
      c.Increment();
      break;
    }
    case StatusCode::kDeadlineExceeded: {
      static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
          "dwred_cancel_deadline_exceeded",
          "operations aborted by deadline expiry");
      c.Increment();
      break;
    }
    case StatusCode::kResourceExhausted: {
      static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
          "dwred_cancel_resource_exhausted",
          "operations aborted by budget exhaustion");
      c.Increment();
      break;
    }
    default:
      break;
  }
  return s;
}

const char* OutcomeLabel(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    default: return "error";
  }
}

}  // namespace dwred::runtime
