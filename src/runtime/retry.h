#pragma once

// Retry-with-exponential-backoff for transient IO failures
// (docs/ROBUSTNESS.md). Adopted by the journal fsync and the atomic-file
// rename (src/io) — the two syscalls where a transient ENOSPC/EINTR-class
// failure is worth absorbing before poisoning a durable warehouse. Only
// idempotent syscalls are wrapped; the journal's framed write loop is never
// retried (a duplicated partial write would corrupt the framing).

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace dwred::runtime {

struct RetryPolicy {
  int max_attempts = 3;          ///< total attempts, including the first
  int64_t initial_backoff_us = 100;
  int64_t backoff_multiplier = 4;
};

/// Runs `op` up to `policy.max_attempts` times, sleeping an exponentially
/// growing backoff between attempts, and returns the last status. Counts
/// retries (not first attempts) in dwred_io_retries.
///
/// Only kInternal failures are retried — that is the code IO syscall
/// wrappers return for errno failures. Abort codes (cancel / deadline /
/// budget) and specification errors propagate immediately, and the caller's
/// OpContext is checked between attempts so a cancelled operation stops
/// backing off.
///
/// Failures produced by the fault injector (testing/fault.h) are never
/// retried: injected faults are deterministic by design — the crash matrix
/// and error-mode durability tests arm "fail the Nth fsync" and assert the
/// failure surfaces. RetryWithBackoff snapshots FaultInjector::fired() around
/// each attempt and returns immediately when the failure was injected.
Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& op,
                        const char* what);

}  // namespace dwred::runtime
