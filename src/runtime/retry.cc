#include "runtime/retry.h"

#include <chrono>
#include <thread>

#include "obs/logging.h"
#include "obs/metrics.h"
#include "runtime/cancel.h"
#include "testing/fault.h"

namespace dwred::runtime {

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& op,
                        const char* what) {
  static obs::Counter& retries = obs::MetricsRegistry::Global().GetCounter(
      "dwred_io_retries", "transient IO failures retried with backoff");

  int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  int64_t backoff_us = policy.initial_backoff_us;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    bool fired_before = testing::FaultInjector::Global().fired();
    last = op();
    if (last.ok()) return last;
    // A failure that flipped the injector's fired flag is deterministic by
    // design — the durability tests armed it and expect it to surface.
    if (!fired_before && testing::FaultInjector::Global().fired()) return last;
    if (last.code() != StatusCode::kInternal) return last;
    if (attempt == attempts) break;
    DWRED_RETURN_IF_ERROR(CurrentOpContext().Check());
    DWRED_LOG(Warn) << what << " failed (attempt " << attempt << "/"
                    << attempts << "), retrying in " << backoff_us
                    << "us: " << last.ToString();
    retries.Increment();
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us *= policy.backoff_multiplier;
  }
  return last;
}

}  // namespace dwred::runtime
