#include "common/status.h"

namespace dwred {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCrossingViolation: return "CrossingViolation";
    case StatusCode::kGrowingViolation: return "GrowingViolation";
    case StatusCode::kDeleteRejected: return "DeleteRejected";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dwred
