#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace dwred {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace dwred
