#pragma once

// Deterministic pseudo-random generation for workload synthesis and
// property-based tests. All randomness in the repository flows through
// SplitMix64 seeds so every bench and test run is reproducible.

#include <cstdint>
#include <vector>

namespace dwred {

/// SplitMix64: tiny, fast, statistically solid 64-bit PRNG (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

/// Zipf-distributed ranks in [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^theta. Used to model skewed URL popularity in the
/// click-stream workload (a handful of pages receive most clicks).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  SplitMix64 rng_;
  std::vector<double> cdf_;  // cumulative probability per rank
};

}  // namespace dwred
