#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dwred {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), rng_(seed) {
  DWRED_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = sum;
  }
  for (uint64_t r = 0; r < n; ++r) cdf_[r] /= sum;
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace dwred
