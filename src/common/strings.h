#pragma once

// Small string helpers shared across modules (parsing, diagnostics, report
// printing). Kept dependency-free.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dwred {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a signed integer; returns false on any non-numeric content.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats a byte count with a binary-unit suffix ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

}  // namespace dwred
