#pragma once

// One validated integer-environment-knob parser for the whole tree. Four
// near-identical parsers had grown (thread_pool, governor, fact_table,
// profile) and the copies drifted: the governor's strtoll-based copy accepted
// an out-of-range literal (errno == ERANGE silently clamps to LLONG_MAX,
// which then passes the >= 0 check), so DWRED_MAX_CONCURRENT_QUERIES=1e300's
// worth of digits configured an effectively-unlimited gate instead of
// warning. This helper parses with ParseInt64 (std::from_chars underneath,
// which rejects overflow outright) and applies one of two documented
// policies:
//
//   kFallback  out-of-range input warns and returns `fallback` — garbage
//              must never silently misconfigure a knob;
//   kClamp     out-of-range input warns and returns the violated bound — the
//              DWRED_THREADS convention, for knobs where "as much as
//              possible" is the evident intent.
//
// Header-only: the logging macro resolves against dwred_obs in the including
// translation unit (every current consumer already links it), so dwred_common
// itself gains no obs link dependency.

#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "obs/logging.h"

namespace dwred {

enum class EnvRangePolicy {
  kFallback,  ///< out-of-range -> warn, return `fallback`
  kClamp,     ///< out-of-range -> warn, return the violated bound
};

/// Reads the integer environment knob `name`. Unset or empty returns
/// `fallback` silently. Unparseable text (including values that overflow
/// int64, the ERANGE class) warns and returns `fallback`. Values outside
/// [min_value, max_value] warn and resolve per `policy`. Re-read on every
/// call — knobs stay test-flippable at runtime.
inline int64_t EnvInt64(const char* name, int64_t fallback, int64_t min_value,
                        int64_t max_value,
                        EnvRangePolicy policy = EnvRangePolicy::kFallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  int64_t v = 0;
  if (!ParseInt64(Trim(raw), &v)) {
    DWRED_LOG(Warn) << name << "=\"" << raw
                    << "\" is not an integer in range; using " << fallback;
    return fallback;
  }
  if (v < min_value) {
    if (policy == EnvRangePolicy::kClamp) {
      DWRED_LOG(Warn) << name << "=" << v << " is below " << min_value
                      << "; clamping to " << min_value;
      return min_value;
    }
    DWRED_LOG(Warn) << name << "=" << v << " is below " << min_value
                    << "; using " << fallback;
    return fallback;
  }
  if (v > max_value) {
    if (policy == EnvRangePolicy::kClamp) {
      DWRED_LOG(Warn) << name << "=" << v << " exceeds " << max_value
                      << "; clamping to " << max_value;
      return max_value;
    }
    DWRED_LOG(Warn) << name << "=" << v << " exceeds " << max_value
                    << "; using " << fallback;
    return fallback;
  }
  return v;
}

}  // namespace dwred
