#pragma once

// Status / Result<T> error handling in the RocksDB idiom: fallible operations
// in the library return a Status (or a Result<T> carrying a value), never
// throw. Statuses carry a code and a human-readable message so specification
// violations (crossing actions, shrinking predicates, parse errors) can be
// reported to users with diagnostics, as the paper requires for communicating
// "why data is aggregated the way it is" (Section 4).

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace dwred {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad literal, unknown category, ...).
  kParseError,        ///< Specification text failed to parse (Table 1 grammar).
  kNotFound,          ///< Named entity (dimension, category, value) not found.
  kCrossingViolation, ///< Action set violates NonCrossing (Section 4.3).
  kGrowingViolation,  ///< Action set violates Growing (Section 4.3).
  kDeleteRejected,    ///< delete-operator precondition failed (Definition 4).
  kInternal,          ///< Invariant breach inside the library.
  kCancelled,         ///< Operation cancelled cooperatively (runtime/cancel.h).
  kDeadlineExceeded,  ///< Operation ran past its deadline (runtime/cancel.h).
  kResourceExhausted, ///< Budget exceeded or admission shed (runtime layer).
  kUnavailable,       ///< Transport failure: peer gone, short read (src/net).
};

/// Human-readable name of a status code (for messages and logs).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CrossingViolation(std::string msg) {
    return Status(StatusCode::kCrossingViolation, std::move(msg));
  }
  static Status GrowingViolation(std::string msg) {
    return Status(StatusCode::kGrowingViolation, std::move(msg));
  }
  static Status DeleteRejected(std::string msg) {
    return Status(StatusCode::kDeleteRejected, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or a failure Status. Accessing the value of a failed
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& value() {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& take() {
    CheckOk();
    return std::move(std::get<T>(payload_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

 private:
  /// Accessing the value of a failed Result aborts with the status message
  /// in every build type (silently reading garbage could corrupt an
  /// irreversible reduction).
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result accessed without a value: %s\n",
                   std::get<Status>(payload_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

}  // namespace dwred

/// Propagates a non-OK Status out of the enclosing function.
#define DWRED_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::dwred::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression; on failure returns its Status, otherwise
/// moves the value into `lhs`.
#define DWRED_ASSIGN_OR_RETURN(lhs, expr)       \
  auto DWRED_CONCAT_(_res_, __LINE__) = (expr); \
  if (!DWRED_CONCAT_(_res_, __LINE__).ok())     \
    return DWRED_CONCAT_(_res_, __LINE__).status(); \
  lhs = DWRED_CONCAT_(_res_, __LINE__).take()

#define DWRED_CONCAT_INNER_(a, b) a##b
#define DWRED_CONCAT_(a, b) DWRED_CONCAT_INNER_(a, b)
