#pragma once

// Invariant-checking macros. DWRED_CHECK aborts with a diagnostic on breach
// and is active in all build types: the reduction semantics rely on internal
// invariants (e.g. every fact maps to exactly one value per dimension) whose
// silent violation would corrupt irreversible reductions.

#include <cstdio>
#include <cstdlib>

#define DWRED_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DWRED_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DWRED_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DWRED_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
