#pragma once

// Measure types and schema metadata (paper Section 3): a measure M is a
// function from facts to a domain with an associated *distributive* default
// aggregate function, so that aggregates of aggregates are exact — the
// property the paper's gradual reduction and two-step subcube combination
// rely on (Sections 4.4, 7.3).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mdm/ids.h"

namespace dwred {

/// Distributive default aggregate functions. COUNT is expressed as SUM over a
/// measure holding 1 per base fact (exactly the paper example's Number_of);
/// AVG is not distributive and is derived as SUM/COUNT at query time.
enum class AggFn : uint8_t {
  kSum = 0,
  kMin = 1,
  kMax = 2,
};

const char* AggFnName(AggFn fn);

/// Combines two partial aggregates (distributivity makes this exact).
inline int64_t CombineMeasure(AggFn fn, int64_t a, int64_t b) {
  switch (fn) {
    case AggFn::kSum: return a + b;
    case AggFn::kMin: return a < b ? a : b;
    case AggFn::kMax: return a > b ? a : b;
  }
  return a;
}

/// Schema-level description of one measure.
struct MeasureType {
  std::string name;
  AggFn agg = AggFn::kSum;
};

}  // namespace dwred
