#pragma once

// The running ISP click-stream example of the paper (Section 2, Appendix A,
// Table 2, Figure 1): a Click fact type over the Time dimension (parallel
// day -> {week, month -> quarter -> year} -> TOP hierarchy) and the URL
// dimension (url < domain < domain_grp < TOP), with measures Number_of,
// Dwell_time, Delivery_time, Datasize (all SUM; Datasize is stored in KB).
//
// Every golden test and repro binary builds the example through this single
// constructor so the data matches Table 2 in one place.

#include <memory>

#include "common/status.h"
#include "mdm/mo.h"

namespace dwred {

/// The example MO plus the ids tests refer to.
struct IspExample {
  std::unique_ptr<MultidimensionalObject> mo;

  DimensionId time_dim = 0;
  DimensionId url_dim = 1;

  // URL dimension categories.
  CategoryId url_cat = 0;
  CategoryId domain_cat = 0;
  CategoryId domain_grp_cat = 0;
  CategoryId url_top_cat = 0;

  // URL dimension values (Table 2's url_id 601..604 in order).
  ValueId url_gatech = 0;   ///< www.cc.gatech.edu
  ValueId url_cnn = 0;      ///< www.cnn.com
  ValueId url_health = 0;   ///< www.cnn.com/health
  ValueId url_amazon = 0;   ///< www.amazon.com/ex...
  ValueId dom_gatech = 0;   ///< gatech.edu
  ValueId dom_cnn = 0;      ///< cnn.com
  ValueId dom_amazon = 0;   ///< amazon.com
  ValueId grp_com = 0;      ///< .com
  ValueId grp_edu = 0;      ///< .edu

  // Measure ids.
  MeasureId number_of = 0;
  MeasureId dwell_time = 1;
  MeasureId delivery_time = 2;
  MeasureId datasize = 3;

  // Fact ids fact_0 .. fact_6 (same order as Table 2).
  FactId facts[7] = {0, 1, 2, 3, 4, 5, 6};
};

/// Builds the example MO exactly as in Table 2 / Figure 1.
IspExample MakeIspExample();

}  // namespace dwred
