#pragma once

// Dimension types (paper Section 3): a dimension type T is (C, <=_T, T_T,
// ⊥_T) — a set of category types under a partial order with unique top and
// bottom. The order is "containment": C_i <=_T C_j iff each member of C_j's
// extension logically contains members of C_i's. Hierarchies may be
// non-linear (the Time dimension's parallel day->week and
// day->month->quarter->year branches).
//
// The partial order is stored as immediate-ancestor edges (the paper's Anc
// function) with the reflexive-transitive closure precomputed as one bitmask
// per category, so <=_T tests, GLB and LUB are O(1)-ish bit operations.
// A dimension type is limited to 64 category types, far beyond any practical
// warehouse hierarchy.

#include <string>
#include <vector>

#include "common/status.h"
#include "mdm/ids.h"

namespace dwred {

/// Schema-level description of one dimension's category hierarchy.
class DimensionType {
 public:
  /// Creates an empty (invalid) dimension type; populate with AddCategory /
  /// AddEdge and call Finalize.
  explicit DimensionType(std::string name) : name_(std::move(name)) {}

  /// Adds a category type; returns its id. Category names must be unique
  /// within the dimension type.
  CategoryId AddCategory(std::string name);

  /// Declares `child` immediately contained in `parent`
  /// (child <_T parent with no category in between): parent ∈ Anc(child).
  Status AddEdge(CategoryId child, CategoryId parent);

  /// Validates the hierarchy (acyclic, unique bottom and top, all categories
  /// connected) and precomputes the reachability closure. Must be called
  /// before any query method.
  Status Finalize();

  const std::string& name() const { return name_; }
  size_t num_categories() const { return names_.size(); }
  const std::string& category_name(CategoryId c) const { return names_[c]; }

  /// Finds a category by name.
  Result<CategoryId> CategoryByName(std::string_view name) const;

  CategoryId bottom() const { return bottom_; }
  CategoryId top() const { return top_; }

  /// The paper's Anc: immediate ancestors of a category type.
  const std::vector<CategoryId>& Anc(CategoryId c) const { return anc_[c]; }
  /// Immediate descendants (inverse of Anc).
  const std::vector<CategoryId>& Desc(CategoryId c) const { return desc_[c]; }

  /// a <=_T b (reflexive).
  bool Leq(CategoryId a, CategoryId b) const {
    return (leq_mask_[a] >> b) & 1u;
  }

  /// True when <=_T is a total order (paper: the hierarchy is "linear").
  bool IsLinear() const { return linear_; }

  /// Greatest lower bound of a set of categories. The bottom category is
  /// always a lower bound, so a GLB exists whenever the category poset is a
  /// (meet-semi)lattice; when several maximal lower bounds exist, the paper
  /// notes any lower bound will do — we return the one with the largest
  /// number of ancestors (closest to the inputs), breaking ties by id.
  CategoryId Glb(const std::vector<CategoryId>& cats) const;
  CategoryId Glb(CategoryId a, CategoryId b) const;

  /// Least upper bound (dual of Glb; the top category makes one exist).
  CategoryId Lub(const std::vector<CategoryId>& cats) const;
  CategoryId Lub(CategoryId a, CategoryId b) const;

  bool finalized() const { return finalized_; }

 private:
  std::string name_;
  std::vector<std::string> names_;
  std::vector<std::vector<CategoryId>> anc_;   // immediate ancestors
  std::vector<std::vector<CategoryId>> desc_;  // immediate descendants
  std::vector<uint64_t> leq_mask_;  // leq_mask_[a] bit b set iff a <=_T b
  CategoryId bottom_ = kInvalidCategory;
  CategoryId top_ = kInvalidCategory;
  bool linear_ = false;
  bool finalized_ = false;
};

/// Builds the paper's Time dimension type with categories day, week, month,
/// quarter, year, TOP and the parallel-hierarchy edges of eq. (2). Category
/// ids coincide with the TimeUnit enum values, so chrono::TimeUnit can be
/// used interchangeably with CategoryId for this dimension type.
DimensionType MakeTimeDimensionType();

}  // namespace dwred
