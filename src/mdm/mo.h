#pragma once

// The multidimensional object (paper Section 3): an MO is (S, F, D, R, M) —
// schema, facts, dimensions, fact-dimension relations, measures. Here the MO
// owns its fact set in structure-of-arrays layout (one ValueId per dimension
// per fact — the single fact-dimension relation entry the model mandates —
// and one int64 per measure per fact); dimensions are shared_ptr so reduced
// MOs, query results and subcubes share the dimension instances, mirroring
// the paper's "the reduced object has the same schema and dimensions".
//
// Facts carry optional display names (the paper's fact_0 ... fact_6),
// provenance (the constituent original facts of a reduced fact), and the id
// of the action *responsible* for their current granularity — Section 4
// requires being able to tell users why data is aggregated the way it is.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "mdm/dimension.h"
#include "mdm/schema.h"

namespace dwred {

/// A dimensional fact base: facts characterized by one value per dimension,
/// carrying one value per measure.
class MultidimensionalObject {
 public:
  /// Creates an empty MO over the given dimensions and measures.
  MultidimensionalObject(std::string fact_type,
                         std::vector<std::shared_ptr<Dimension>> dims,
                         std::vector<MeasureType> measures);

  const std::string& fact_type() const { return fact_type_; }
  size_t num_dimensions() const { return dims_.size(); }
  size_t num_measures() const { return measures_.size(); }
  size_t num_facts() const { return num_facts_; }

  const std::shared_ptr<Dimension>& dimension(DimensionId d) const {
    return dims_[d];
  }
  const std::vector<std::shared_ptr<Dimension>>& dimensions() const {
    return dims_;
  }
  const MeasureType& measure_type(MeasureId m) const { return measures_[m]; }
  const std::vector<MeasureType>& measure_types() const { return measures_; }

  /// Finds a dimension / measure index by name.
  Result<DimensionId> DimensionByName(std::string_view name) const;
  Result<MeasureId> MeasureByName(std::string_view name) const;

  /// Appends a fact mapped to `coords[d]` in each dimension d with measure
  /// values `measures[m]`. Coordinates may be at any granularity (reduction
  /// and subcube migration insert aggregated facts); use AddBottomFact for
  /// user-level inserts, which the model requires to be at bottom levels.
  Result<FactId> AddFact(std::span<const ValueId> coords,
                         std::span<const int64_t> measures);

  /// AddFact + check that every coordinate lies in its dimension's bottom
  /// category (or is ⊤, the model's stand-in for "unknown").
  Result<FactId> AddBottomFact(std::span<const ValueId> coords,
                               std::span<const int64_t> measures);

  /// Pre-sizes fact storage (coords, measures, names) for `additional` more
  /// facts — the bulk-materialization entry for operators that know their
  /// output cardinality up front.
  void ReserveFacts(size_t additional) {
    coords_.reserve(coords_.size() + additional * dims_.size());
    meas_.reserve(meas_.size() + additional * measures_.size());
    fact_names_.reserve(fact_names_.size() + additional);
  }

  /// AddFact minus the per-coordinate validation, for coordinates copied
  /// verbatim from an already-validated row of a same-schema source (the
  /// selection operators' survivor materialization).
  FactId AppendFactUnchecked(std::span<const ValueId> coords,
                             std::span<const int64_t> measures) {
    FactId id = num_facts_++;
    coords_.insert(coords_.end(), coords.begin(), coords.end());
    meas_.insert(meas_.end(), measures.begin(), measures.end());
    return id;
  }

  /// The fact's value in dimension d (the single pair (f, v) in R_d).
  ValueId Coord(FactId f, DimensionId d) const {
    return coords_[f * dims_.size() + d];
  }
  /// The fact's whole direct cell (one ValueId per dimension, contiguous).
  std::span<const ValueId> FactCoords(FactId f) const {
    return {coords_.data() + f * dims_.size(), dims_.size()};
  }
  int64_t Measure(FactId f, MeasureId m) const {
    return meas_[f * measures_.size() + m];
  }
  /// The fact's whole measure row (one value per measure, contiguous).
  std::span<const int64_t> FactMeasures(FactId f) const {
    return {meas_.data() + f * measures_.size(), measures_.size()};
  }

  /// Overwrites a measure value in place (used by reduction and aggregation
  /// to fold partial aggregates into a group's output fact).
  void SetMeasure(FactId f, MeasureId m, int64_t value) {
    meas_[f * measures_.size() + m] = value;
  }
  /// Mutable view of the fact's measure row — the in-place accumulator for
  /// precompiled measure folds (vm::FoldProgram).
  std::span<int64_t> MutableFactMeasures(FactId f) {
    return {meas_.data() + f * measures_.size(), measures_.size()};
  }

  /// f ~> v in dimension d: the fact is characterized by v (directly related
  /// or an ancestor of the directly related value).
  bool Characterizes(FactId f, DimensionId d, ValueId v) const {
    return dims_[d]->ValueLeq(Coord(f, d), v);
  }

  /// The paper's Gran(f): the tuple of category types of the fact's direct
  /// values, one per dimension.
  std::vector<CategoryId> Gran(FactId f) const;

  // --- Presentation & provenance ------------------------------------------

  /// Optional display name; "fact_<id>" when unset.
  void SetFactName(FactId f, std::string name);
  std::string FactName(FactId f) const;

  /// Records which original facts a reduced fact aggregates (irreversibility
  /// bookkeeping) and which action was responsible.
  void SetProvenance(FactId f, std::vector<FactId> sources,
                     ActionId responsible);
  const std::vector<FactId>* Provenance(FactId f) const;
  ActionId ResponsibleAction(FactId f) const;

  /// Approximate fact-store footprint in bytes (coords + measures), used for
  /// storage-gain accounting in benches. Dimension footprints are shared and
  /// reported separately. Deliberately *size*-based: this is the logical
  /// storage-gain metric, independent of allocator slack and physical
  /// encodings (FactTable::Bytes reports the resident columnar footprint).
  size_t FactBytes() const {
    return coords_.size() * sizeof(ValueId) + meas_.size() * sizeof(int64_t);
  }

  /// What the allocator actually holds for this MO: the *capacity* of every
  /// buffer plus names and provenance. Cache admission charges this (the
  /// size-only FactBytes let the query-cache budget admit more than it
  /// should — the same undercount ScanSpec::ApproxBytes fixes).
  size_t ApproxBytes() const;

  /// One-line rendering of a fact: name, coordinates, measure values.
  std::string FormatFact(FactId f) const;

 private:
  std::string fact_type_;
  std::vector<std::shared_ptr<Dimension>> dims_;
  std::vector<MeasureType> measures_;

  size_t num_facts_ = 0;
  std::vector<ValueId> coords_;  // num_facts x num_dimensions
  std::vector<int64_t> meas_;    // num_facts x num_measures

  std::vector<std::string> fact_names_;           // sparse; "" = default
  std::vector<std::vector<FactId>> provenance_;   // sparse
  std::vector<ActionId> responsible_;             // sparse; kNoAction default
};

}  // namespace dwred
