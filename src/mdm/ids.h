#pragma once

// Dense identifier types used throughout the multidimensional model. Values,
// categories, dimensions and measures are interned: entities are referred to
// by small indices into their owning container, which keeps fact storage
// compact (a fact is an array of ValueIds plus an array of measure values).

#include <cstdint>
#include <limits>

namespace dwred {

using CategoryId = uint32_t;   ///< Index of a category within its dimension.
using ValueId = uint32_t;      ///< Index of a value within its dimension.
using DimensionId = uint32_t;  ///< Index of a dimension within a schema.
using MeasureId = uint32_t;    ///< Index of a measure within a schema.
using FactId = uint64_t;       ///< Index of a fact within an MO.
using ActionId = uint32_t;     ///< Index of an action within a specification.

inline constexpr ValueId kInvalidValue = std::numeric_limits<ValueId>::max();
inline constexpr CategoryId kInvalidCategory =
    std::numeric_limits<CategoryId>::max();
inline constexpr ActionId kNoAction = std::numeric_limits<ActionId>::max();

}  // namespace dwred
