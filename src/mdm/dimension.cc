#include "mdm/dimension.h"

#include <algorithm>

#include "common/check.h"

namespace dwred {

Dimension::Dimension(DimensionType type, bool is_time)
    : type_(std::move(type)), is_time_(is_time) {
  DWRED_CHECK_MSG(type_.finalized(), "dimension type must be finalized");
  extent_.resize(type_.num_categories());
  by_name_.resize(type_.num_categories());
  // Create the single TOP value ⊤ (paper: T_D contains exactly one value).
  names_.emplace_back("T");
  categories_.push_back(type_.top());
  parents_.emplace_back();
  children_.emplace_back();
  top_value_ = 0;
  extent_[type_.top()].push_back(top_value_);
  by_name_[type_.top()]["T"] = top_value_;
  if (is_time_) {
    granules_.push_back(TopGranule());
    granule_index_[GranuleKey(TopGranule())] = top_value_;
  }
}

Dimension::Dimension(DimensionType type) : Dimension(std::move(type), false) {}

Dimension Dimension::MakeTimeDimension() {
  return Dimension(MakeTimeDimensionType(), true);
}

Result<ValueId> Dimension::AddValue(std::string name, CategoryId category,
                                    const std::vector<ValueId>& parents) {
  if (category >= type_.num_categories()) {
    return Status::InvalidArgument("unknown category id");
  }
  if (category == type_.top()) {
    return Status::InvalidArgument("cannot add values to the TOP category");
  }
  auto& names_in_cat = by_name_[category];
  if (names_in_cat.count(name)) {
    return Status::InvalidArgument("duplicate value '" + name +
                                   "' in category " +
                                   type_.category_name(category));
  }
  // Exactly one parent per immediate-ancestor category.
  const std::vector<CategoryId>& anc = type_.Anc(category);
  if (parents.size() != anc.size()) {
    return Status::InvalidArgument(
        "value '" + name + "' needs one parent per ancestor category (" +
        std::to_string(anc.size()) + " expected, " +
        std::to_string(parents.size()) + " given)");
  }
  std::vector<ValueId> ordered(anc.size(), kInvalidValue);
  for (ValueId p : parents) {
    if (p >= names_.size()) {
      return Status::InvalidArgument("unknown parent value id");
    }
    CategoryId pc = categories_[p];
    auto it = std::find(anc.begin(), anc.end(), pc);
    if (it == anc.end()) {
      return Status::InvalidArgument(
          "parent '" + names_[p] + "' of '" + name +
          "' is not in an immediate ancestor category of " +
          type_.category_name(category));
    }
    size_t slot = static_cast<size_t>(it - anc.begin());
    if (ordered[slot] != kInvalidValue) {
      return Status::InvalidArgument("two parents in the same category for '" +
                                     name + "'");
    }
    ordered[slot] = p;
  }

  ValueId id = static_cast<ValueId>(names_.size());
  names_.push_back(std::move(name));
  categories_.push_back(category);
  parents_.push_back(ordered);
  children_.emplace_back();
  for (ValueId p : ordered) children_[p].push_back(id);
  extent_[category].push_back(id);
  by_name_[category][names_[id]] = id;
  if (is_time_) granules_.push_back(TimeGranule{});  // filled by EnsureTimeValue
  drill_memo_.clear();
  return id;
}

Result<ValueId> Dimension::AddValue(std::string name, CategoryId category,
                                    ValueId parent) {
  return AddValue(std::move(name), category, std::vector<ValueId>{parent});
}

Result<ValueId> Dimension::ValueByName(CategoryId category,
                                       std::string_view name) const {
  if (category >= by_name_.size()) {
    return Status::InvalidArgument("unknown category id");
  }
  auto it = by_name_[category].find(std::string(name));
  if (it == by_name_[category].end()) {
    return Status::NotFound("no value '" + std::string(name) +
                            "' in category " + type_.category_name(category) +
                            " of dimension " + type_.name());
  }
  return it->second;
}

ValueId Dimension::Rollup(ValueId v, CategoryId category) const {
  CategoryId c = categories_[v];
  if (c == category) return v;
  if (!type_.Leq(c, category)) return kInvalidValue;
  for (ValueId p : parents_[v]) {
    if (type_.Leq(categories_[p], category)) {
      ValueId r = Rollup(p, category);
      if (r != kInvalidValue) return r;
    }
  }
  return kInvalidValue;
}

bool Dimension::ValueLeq(ValueId v1, ValueId v2) const {
  CategoryId c2 = categories_[v2];
  if (!type_.Leq(categories_[v1], c2)) return false;
  return Rollup(v1, c2) == v2;
}

const std::vector<ValueId>& Dimension::DrillDown(ValueId v,
                                                 CategoryId category) const {
  uint64_t key = (static_cast<uint64_t>(v) << 6) | category;
  {
    std::lock_guard<std::mutex> lock(*drill_mu_);
    auto it = drill_memo_.find(key);
    if (it != drill_memo_.end()) return it->second;
  }

  std::vector<ValueId> out;
  if (categories_[v] == category) {
    out.push_back(v);
  } else {
    // DFS down the children graph; the hierarchy may be a DAG (parallel
    // branches), so deduplicate on the way.
    std::vector<ValueId> stack{v};
    std::vector<bool> seen(names_.size(), false);
    seen[v] = true;
    while (!stack.empty()) {
      ValueId cur = stack.back();
      stack.pop_back();
      for (ValueId ch : children_[cur]) {
        if (seen[ch]) continue;
        seen[ch] = true;
        if (categories_[ch] == category) {
          out.push_back(ch);
        }
        // Descend further only if the target is still below this child.
        if (type_.Leq(category, categories_[ch]) && categories_[ch] != category) {
          stack.push_back(ch);
        }
      }
    }
    std::sort(out.begin(), out.end());
  }
  std::lock_guard<std::mutex> lock(*drill_mu_);
  // Another thread may have raced the computation; emplace keeps the first.
  auto [ins, _] = drill_memo_.emplace(key, std::move(out));
  return ins->second;
}

Result<ValueId> Dimension::EnsureTimeValue(TimeGranule g) {
  DWRED_CHECK_MSG(is_time_, "EnsureTimeValue on a non-time dimension");
  ValueId existing = FindTimeValue(g);
  if (existing != kInvalidValue) return existing;
  DWRED_CHECK(g.unit != TimeUnit::kTop);  // TOP exists from construction

  CategoryId category = static_cast<CategoryId>(g.unit);
  // Materialize parents first: one per immediate-ancestor category; the
  // parent granule is the one containing this granule's first day.
  std::vector<ValueId> parents;
  for (CategoryId pc : type_.Anc(category)) {
    TimeUnit pu = static_cast<TimeUnit>(pc);
    ValueId pv;
    if (pu == TimeUnit::kTop) {
      pv = top_value_;
    } else {
      TimeGranule pg = GranuleOfDay(FirstDayOf(g), pu);
      DWRED_ASSIGN_OR_RETURN(pv, EnsureTimeValue(pg));
    }
    parents.push_back(pv);
  }
  DWRED_ASSIGN_OR_RETURN(ValueId id,
                         AddValue(FormatGranule(g), category, parents));
  granules_[id] = g;
  granule_index_[GranuleKey(g)] = id;
  return id;
}

Result<ValueId> Dimension::RestoreValue(std::string name, CategoryId category,
                                        const std::vector<ValueId>& parents,
                                        const TimeGranule* granule) {
  DWRED_ASSIGN_OR_RETURN(ValueId id,
                         AddValue(std::move(name), category, parents));
  if (is_time_) {
    if (!granule) {
      return Status::InvalidArgument(
          "time-dimension value restored without a granule payload");
    }
    granules_[id] = *granule;
    granule_index_[GranuleKey(*granule)] = id;
  }
  return id;
}

ValueId Dimension::FindTimeValue(TimeGranule g) const {
  auto it = granule_index_.find(GranuleKey(g));
  return it == granule_index_.end() ? kInvalidValue : it->second;
}

Result<Dimension> Dimension::Subdimension(const std::vector<CategoryId>& keep,
                                          std::vector<ValueId>* value_map) const {
  // Build the induced dimension type.
  std::vector<bool> kept(type_.num_categories(), false);
  for (CategoryId c : keep) {
    if (c >= type_.num_categories()) {
      return Status::InvalidArgument("unknown category id in subdimension");
    }
    kept[c] = true;
  }
  if (!kept[type_.top()]) {
    return Status::InvalidArgument("subdimension must keep the TOP category");
  }

  DimensionType sub_type(type_.name());
  std::vector<CategoryId> old_to_new(type_.num_categories(), kInvalidCategory);
  std::vector<CategoryId> new_to_old;
  for (CategoryId c = 0; c < type_.num_categories(); ++c) {
    if (!kept[c]) continue;
    old_to_new[c] = sub_type.AddCategory(type_.category_name(c));
    new_to_old.push_back(c);
  }
  // Edges: transitive reduction of the induced order.
  for (CategoryId a : new_to_old) {
    for (CategoryId b : new_to_old) {
      if (a == b || !type_.Leq(a, b)) continue;
      bool direct = true;
      for (CategoryId c : new_to_old) {
        if (c != a && c != b && type_.Leq(a, c) && type_.Leq(c, b)) {
          direct = false;
          break;
        }
      }
      if (direct) {
        DWRED_RETURN_IF_ERROR(sub_type.AddEdge(old_to_new[a], old_to_new[b]));
      }
    }
  }
  DWRED_RETURN_IF_ERROR(sub_type.Finalize());

  Dimension sub(std::move(sub_type), is_time_);
  if (value_map) value_map->assign(names_.size(), kInvalidValue);
  if (value_map) (*value_map)[top_value_] = sub.top_value_;

  // Copy values bottom-up so parents exist before children. Values in kept
  // categories are processed in ascending order of "height" (categories with
  // more kept ancestors first are not required — process categories from the
  // top of the new type downwards).
  // Topological order: a category is placed once every kept category strictly
  // above it has been placed (std::sort on a partial order would not be a
  // strict weak ordering).
  std::vector<CategoryId> order;
  std::vector<bool> placed(type_.num_categories(), false);
  while (order.size() < new_to_old.size()) {
    for (CategoryId c : new_to_old) {
      if (placed[c]) continue;
      bool ready = true;
      for (CategoryId d : new_to_old) {
        if (d != c && type_.Leq(c, d) && !placed[d]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        placed[c] = true;
        order.push_back(c);
      }
    }
  }
  std::vector<ValueId> vmap(names_.size(), kInvalidValue);
  vmap[top_value_] = sub.top_value_;
  for (CategoryId oc : order) {
    if (oc == type_.top()) continue;
    CategoryId nc = old_to_new[oc];
    for (ValueId v : extent_[oc]) {
      std::vector<ValueId> new_parents;
      for (CategoryId npc : sub.type_.Anc(nc)) {
        CategoryId opc = new_to_old[npc];
        ValueId op = Rollup(v, opc);
        if (op == kInvalidValue) {
          return Status::Internal("subdimension rollup failed for value " +
                                  names_[v]);
        }
        DWRED_CHECK(vmap[op] != kInvalidValue);
        new_parents.push_back(vmap[op]);
      }
      DWRED_ASSIGN_OR_RETURN(ValueId nv,
                             sub.AddValue(names_[v], nc, new_parents));
      vmap[v] = nv;
      if (is_time_) {
        sub.granules_[nv] = granules_[v];
        sub.granule_index_[GranuleKey(granules_[v])] = nv;
      }
    }
  }
  if (value_map) *value_map = vmap;
  return sub;
}

size_t Dimension::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& n : names_) bytes += n.size() + sizeof(std::string);
  bytes += categories_.size() * sizeof(CategoryId);
  for (const auto& p : parents_) bytes += p.size() * sizeof(ValueId) + 16;
  for (const auto& c : children_) bytes += c.size() * sizeof(ValueId) + 16;
  if (is_time_) bytes += granules_.size() * sizeof(TimeGranule);
  return bytes;
}

}  // namespace dwred
