#include "mdm/dimension_type.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace dwred {

CategoryId DimensionType::AddCategory(std::string name) {
  DWRED_CHECK_MSG(!finalized_, "AddCategory after Finalize");
  DWRED_CHECK_MSG(names_.size() < 64, "at most 64 categories per dimension");
  for (const auto& n : names_) {
    DWRED_CHECK_MSG(n != name, "duplicate category name");
  }
  names_.push_back(std::move(name));
  anc_.emplace_back();
  desc_.emplace_back();
  return static_cast<CategoryId>(names_.size() - 1);
}

Status DimensionType::AddEdge(CategoryId child, CategoryId parent) {
  if (child >= names_.size() || parent >= names_.size()) {
    return Status::InvalidArgument("edge references unknown category");
  }
  if (child == parent) {
    return Status::InvalidArgument("self-edge in category hierarchy");
  }
  anc_[child].push_back(parent);
  desc_[parent].push_back(child);
  return Status::OK();
}

Status DimensionType::Finalize() {
  const size_t n = names_.size();
  if (n == 0) return Status::InvalidArgument("dimension type has no categories");

  // Compute reachability closure by iterating to a fixed point (n <= 64, and
  // hierarchies are shallow; simplicity over asymptotics).
  leq_mask_.assign(n, 0);
  for (size_t c = 0; c < n; ++c) leq_mask_[c] = 1ull << c;
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > n + 1) {
      return Status::InvalidArgument("cycle in category hierarchy of " + name_);
    }
    for (size_t c = 0; c < n; ++c) {
      uint64_t mask = leq_mask_[c];
      for (CategoryId p : anc_[c]) mask |= leq_mask_[p];
      if (mask != leq_mask_[c]) {
        leq_mask_[c] = mask;
        changed = true;
      }
    }
  }
  // Detect cycles: a <= b and b <= a for a != b.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (Leq(static_cast<CategoryId>(a), static_cast<CategoryId>(b)) &&
          Leq(static_cast<CategoryId>(b), static_cast<CategoryId>(a))) {
        return Status::InvalidArgument("cycle in category hierarchy of " +
                                       name_);
      }
    }
  }

  // Unique bottom: the category that is <= every category; unique top: the
  // category every category is <=.
  bottom_ = kInvalidCategory;
  top_ = kInvalidCategory;
  const uint64_t all = n == 64 ? ~0ull : ((1ull << n) - 1);
  for (size_t c = 0; c < n; ++c) {
    if (leq_mask_[c] == all) {
      if (bottom_ != kInvalidCategory) {
        return Status::InvalidArgument("multiple bottom categories in " +
                                       name_);
      }
      bottom_ = static_cast<CategoryId>(c);
    }
  }
  uint64_t geq_all = all;
  for (size_t c = 0; c < n; ++c) geq_all &= leq_mask_[c];
  if (std::popcount(geq_all) != 1) {
    return Status::InvalidArgument(
        "dimension type must have exactly one top category: " + name_);
  }
  top_ = static_cast<CategoryId>(std::countr_zero(geq_all));
  if (bottom_ == kInvalidCategory) {
    return Status::InvalidArgument(
        "dimension type must have exactly one bottom category: " + name_);
  }

  // Linearity: <=_T total.
  linear_ = true;
  for (size_t a = 0; a < n && linear_; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (!Leq(static_cast<CategoryId>(a), static_cast<CategoryId>(b)) &&
          !Leq(static_cast<CategoryId>(b), static_cast<CategoryId>(a))) {
        linear_ = false;
        break;
      }
    }
  }

  finalized_ = true;
  return Status::OK();
}

Result<CategoryId> DimensionType::CategoryByName(std::string_view name) const {
  for (size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return static_cast<CategoryId>(c);
  }
  return Status::NotFound("no category '" + std::string(name) +
                          "' in dimension type " + name_);
}

CategoryId DimensionType::Glb(const std::vector<CategoryId>& cats) const {
  DWRED_CHECK(finalized_);
  DWRED_CHECK(!cats.empty());
  const size_t n = names_.size();
  // Lower bounds of all inputs.
  CategoryId best = bottom_;
  int best_rank = -1;
  for (size_t c = 0; c < n; ++c) {
    bool lower_bound = true;
    for (CategoryId in : cats) {
      if (!Leq(static_cast<CategoryId>(c), in)) {
        lower_bound = false;
        break;
      }
    }
    if (!lower_bound) continue;
    // Rank by how many categories this one is <= to (fewer = higher in the
    // order = greater lower bound). popcount of leq mask counts ancestors.
    int rank = 64 - std::popcount(leq_mask_[c]);
    if (rank > best_rank) {
      best_rank = rank;
      best = static_cast<CategoryId>(c);
    }
  }
  return best;
}

CategoryId DimensionType::Glb(CategoryId a, CategoryId b) const {
  if (Leq(a, b)) return a;
  if (Leq(b, a)) return b;
  return Glb(std::vector<CategoryId>{a, b});
}

CategoryId DimensionType::Lub(const std::vector<CategoryId>& cats) const {
  DWRED_CHECK(finalized_);
  DWRED_CHECK(!cats.empty());
  const size_t n = names_.size();
  CategoryId best = top_;
  int best_rank = -1;
  for (size_t c = 0; c < n; ++c) {
    bool upper_bound = true;
    for (CategoryId in : cats) {
      if (!Leq(in, static_cast<CategoryId>(c))) {
        upper_bound = false;
        break;
      }
    }
    if (!upper_bound) continue;
    // Rank by closeness to the inputs: more ancestors = lower in the order =
    // smaller (better) upper bound.
    int rank = std::popcount(leq_mask_[c]);
    if (rank > best_rank) {
      best_rank = rank;
      best = static_cast<CategoryId>(c);
    }
  }
  return best;
}

CategoryId DimensionType::Lub(CategoryId a, CategoryId b) const {
  if (Leq(a, b)) return b;
  if (Leq(b, a)) return a;
  return Lub(std::vector<CategoryId>{a, b});
}

DimensionType MakeTimeDimensionType() {
  DimensionType t("Time");
  CategoryId day = t.AddCategory("day");          // 0 == TimeUnit::kDay
  CategoryId week = t.AddCategory("week");        // 1 == TimeUnit::kWeek
  CategoryId month = t.AddCategory("month");      // 2 == TimeUnit::kMonth
  CategoryId quarter = t.AddCategory("quarter");  // 3 == TimeUnit::kQuarter
  CategoryId year = t.AddCategory("year");        // 4 == TimeUnit::kYear
  CategoryId top = t.AddCategory("TOP");          // 5 == TimeUnit::kTop
  DWRED_CHECK(t.AddEdge(day, week).ok());
  DWRED_CHECK(t.AddEdge(day, month).ok());
  DWRED_CHECK(t.AddEdge(week, top).ok());
  DWRED_CHECK(t.AddEdge(month, quarter).ok());
  DWRED_CHECK(t.AddEdge(quarter, year).ok());
  DWRED_CHECK(t.AddEdge(year, top).ok());
  DWRED_CHECK(t.Finalize().ok());
  return t;
}

}  // namespace dwred
