#include "mdm/mo.h"

#include "common/check.h"

namespace dwred {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "SUM";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

MultidimensionalObject::MultidimensionalObject(
    std::string fact_type, std::vector<std::shared_ptr<Dimension>> dims,
    std::vector<MeasureType> measures)
    : fact_type_(std::move(fact_type)),
      dims_(std::move(dims)),
      measures_(std::move(measures)) {
  DWRED_CHECK_MSG(!dims_.empty(), "an MO needs at least one dimension");
}

Result<DimensionId> MultidimensionalObject::DimensionByName(
    std::string_view name) const {
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (dims_[d]->name() == name) return static_cast<DimensionId>(d);
  }
  return Status::NotFound("no dimension named '" + std::string(name) + "'");
}

Result<MeasureId> MultidimensionalObject::MeasureByName(
    std::string_view name) const {
  for (size_t m = 0; m < measures_.size(); ++m) {
    if (measures_[m].name == name) return static_cast<MeasureId>(m);
  }
  return Status::NotFound("no measure named '" + std::string(name) + "'");
}

Result<FactId> MultidimensionalObject::AddFact(
    std::span<const ValueId> coords, std::span<const int64_t> measures) {
  if (coords.size() != dims_.size()) {
    return Status::InvalidArgument("fact has wrong number of coordinates");
  }
  if (measures.size() != measures_.size()) {
    return Status::InvalidArgument("fact has wrong number of measures");
  }
  for (size_t d = 0; d < coords.size(); ++d) {
    if (coords[d] >= dims_[d]->num_values()) {
      return Status::InvalidArgument("fact coordinate " + std::to_string(d) +
                                     " references an unknown value");
    }
  }
  FactId id = num_facts_++;
  coords_.insert(coords_.end(), coords.begin(), coords.end());
  meas_.insert(meas_.end(), measures.begin(), measures.end());
  return id;
}

Result<FactId> MultidimensionalObject::AddBottomFact(
    std::span<const ValueId> coords, std::span<const int64_t> measures) {
  for (size_t d = 0; d < coords.size() && d < dims_.size(); ++d) {
    const Dimension& dim = *dims_[d];
    if (coords[d] < dim.num_values()) {
      CategoryId c = dim.value_category(coords[d]);
      if (c != dim.type().bottom() && coords[d] != dim.top_value()) {
        return Status::InvalidArgument(
            "user-inserted facts must map to bottom-category values (or ⊤): "
            "dimension " + dim.name());
      }
    }
  }
  return AddFact(coords, measures);
}

std::vector<CategoryId> MultidimensionalObject::Gran(FactId f) const {
  std::vector<CategoryId> g(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    g[d] = dims_[d]->value_category(Coord(f, static_cast<DimensionId>(d)));
  }
  return g;
}

void MultidimensionalObject::SetFactName(FactId f, std::string name) {
  if (fact_names_.size() <= f) fact_names_.resize(num_facts_);
  fact_names_[f] = std::move(name);
}

std::string MultidimensionalObject::FactName(FactId f) const {
  if (f < fact_names_.size() && !fact_names_[f].empty()) return fact_names_[f];
  return "fact_" + std::to_string(f);
}

void MultidimensionalObject::SetProvenance(FactId f, std::vector<FactId> sources,
                                           ActionId responsible) {
  if (provenance_.size() <= f) provenance_.resize(num_facts_);
  if (responsible_.size() <= f) responsible_.resize(num_facts_, kNoAction);
  provenance_[f] = std::move(sources);
  responsible_[f] = responsible;
}

const std::vector<FactId>* MultidimensionalObject::Provenance(FactId f) const {
  if (f < provenance_.size() && !provenance_[f].empty()) {
    return &provenance_[f];
  }
  return nullptr;
}

ActionId MultidimensionalObject::ResponsibleAction(FactId f) const {
  return f < responsible_.size() ? responsible_[f] : kNoAction;
}

size_t MultidimensionalObject::ApproxBytes() const {
  size_t bytes = sizeof(MultidimensionalObject);
  bytes += coords_.capacity() * sizeof(ValueId);
  bytes += meas_.capacity() * sizeof(int64_t);
  bytes += fact_names_.capacity() * sizeof(std::string);
  for (const std::string& n : fact_names_) bytes += n.capacity();
  bytes += provenance_.capacity() * sizeof(std::vector<FactId>);
  for (const std::vector<FactId>& p : provenance_) {
    bytes += p.capacity() * sizeof(FactId);
  }
  bytes += responsible_.capacity() * sizeof(ActionId);
  bytes += dims_.capacity() * sizeof(std::shared_ptr<Dimension>);
  bytes += measures_.capacity() * sizeof(MeasureType);
  return bytes;
}

std::string MultidimensionalObject::FormatFact(FactId f) const {
  std::string out = FactName(f);
  out += ": (";
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (d > 0) out += ", ";
    out += dims_[d]->value_name(Coord(f, static_cast<DimensionId>(d)));
  }
  out += ") [";
  for (size_t m = 0; m < measures_.size(); ++m) {
    if (m > 0) out += ", ";
    out += std::to_string(Measure(f, static_cast<MeasureId>(m)));
  }
  out += ']';
  return out;
}

}  // namespace dwred
