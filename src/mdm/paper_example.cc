#include "mdm/paper_example.h"

#include <array>

#include "common/check.h"

namespace dwred {

namespace {

/// Unwraps a Result in example construction (the example is static data; any
/// failure is a programming error).
template <typename T>
T MustOk(Result<T> r) {
  DWRED_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r.take();
}

}  // namespace

IspExample MakeIspExample() {
  IspExample ex;

  // --- URL dimension: url < domain < domain_grp < TOP (linear). -----------
  DimensionType url_type("URL");
  CategoryId url_cat = url_type.AddCategory("url");
  CategoryId domain_cat = url_type.AddCategory("domain");
  CategoryId grp_cat = url_type.AddCategory("domain_grp");
  CategoryId url_top = url_type.AddCategory("TOP");
  DWRED_CHECK(url_type.AddEdge(url_cat, domain_cat).ok());
  DWRED_CHECK(url_type.AddEdge(domain_cat, grp_cat).ok());
  DWRED_CHECK(url_type.AddEdge(grp_cat, url_top).ok());
  DWRED_CHECK(url_type.Finalize().ok());

  auto url_dim = std::make_shared<Dimension>(url_type);
  ex.url_cat = url_cat;
  ex.domain_cat = domain_cat;
  ex.domain_grp_cat = grp_cat;
  ex.url_top_cat = url_top;

  ex.grp_com = MustOk(url_dim->AddValue(".com", grp_cat, url_dim->top_value()));
  ex.grp_edu = MustOk(url_dim->AddValue(".edu", grp_cat, url_dim->top_value()));
  ex.dom_amazon = MustOk(url_dim->AddValue("amazon.com", domain_cat, ex.grp_com));
  ex.dom_cnn = MustOk(url_dim->AddValue("cnn.com", domain_cat, ex.grp_com));
  ex.dom_gatech = MustOk(url_dim->AddValue("gatech.edu", domain_cat, ex.grp_edu));
  ex.url_gatech =
      MustOk(url_dim->AddValue("www.cc.gatech.edu", url_cat, ex.dom_gatech));
  ex.url_cnn = MustOk(url_dim->AddValue("www.cnn.com", url_cat, ex.dom_cnn));
  ex.url_health =
      MustOk(url_dim->AddValue("www.cnn.com/health", url_cat, ex.dom_cnn));
  ex.url_amazon =
      MustOk(url_dim->AddValue("www.amazon.com/ex...", url_cat, ex.dom_amazon));

  // --- Time dimension (values materialized on demand). --------------------
  auto time_dim = std::make_shared<Dimension>(Dimension::MakeTimeDimension());

  // --- MO with the four SUM measures. --------------------------------------
  std::vector<MeasureType> measures = {
      {"Number_of", AggFn::kSum},
      {"Dwell_time", AggFn::kSum},
      {"Delivery_time", AggFn::kSum},
      {"Datasize", AggFn::kSum},
  };
  ex.mo = std::make_unique<MultidimensionalObject>(
      "Click", std::vector<std::shared_ptr<Dimension>>{time_dim, url_dim},
      std::move(measures));

  // --- Facts of Table 2. ----------------------------------------------------
  struct Row {
    CivilDate day;
    ValueId url;
    int64_t number_of, dwell, delivery, datasize;
  };
  const std::array<Row, 7> rows = {{
      {{1999, 11, 23}, ex.url_amazon, 1, 677, 2, 34},
      {{1999, 12, 4}, ex.url_health, 1, 2335, 5, 52},
      {{1999, 12, 4}, ex.url_cnn, 1, 154, 2, 42},
      {{1999, 12, 31}, ex.url_amazon, 1, 12, 1, 34},
      {{2000, 1, 4}, ex.url_cnn, 1, 654, 4, 47},
      {{2000, 1, 4}, ex.url_health, 1, 301, 6, 52},
      {{2000, 1, 20}, ex.url_gatech, 1, 32, 1, 12},
  }};
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    ValueId day = MustOk(time_dim->EnsureTimeValue(DayGranule(r.day)));
    std::array<ValueId, 2> coords = {day, r.url};
    std::array<int64_t, 4> meas = {r.number_of, r.dwell, r.delivery,
                                   r.datasize};
    FactId f = MustOk(ex.mo->AddBottomFact(coords, meas));
    ex.facts[i] = f;
    ex.mo->SetFactName(f, "fact_" + std::to_string(i));
  }

  return ex;
}

}  // namespace dwred
