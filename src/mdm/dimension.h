#pragma once

// Dimension instances (paper Section 3): a dimension D of type T is a set of
// categories (one per category type here, as in the paper's examples) and a
// partial order <=_D on the union of their values, where v1 <=_D v2 iff v1 is
// logically contained in v2.
//
// Values are interned: each value has a dense ValueId, a display name, a
// category, and explicit parent links (one parent per immediate-ancestor
// category; plural parents arise in non-linear hierarchies, e.g. a day has
// both a week parent and a month parent). Rollup to an ancestor category is
// unique (facts map to one value per dimension), drill-down sets are
// memoized.
//
// The Time dimension is a Dimension whose values carry TimeGranule payloads;
// EnsureTimeValue materializes a granule (and its ancestors) on demand, so
// arbitrarily long time ranges need no up-front enumeration.

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chrono/granule.h"
#include "common/status.h"
#include "mdm/dimension_type.h"
#include "mdm/ids.h"

namespace dwred {

/// One dimension instance: interned values under the containment order.
class Dimension {
 public:
  /// A non-time dimension of the given type. The type must be finalized and
  /// is copied into the dimension (instances are self-contained).
  explicit Dimension(DimensionType type);

  /// The Time dimension: MakeTimeDimensionType() with granule payloads.
  static Dimension MakeTimeDimension();

  const DimensionType& type() const { return type_; }
  const std::string& name() const { return type_.name(); }
  bool is_time() const { return is_time_; }

  size_t num_values() const { return categories_.size(); }

  /// The single TOP value ⊤ (created by the constructor).
  ValueId top_value() const { return top_value_; }

  /// Adds a value in `category` with the given parent values. Each parent
  /// must live in a distinct immediate-ancestor category of `category`; a
  /// parent must be supplied for every immediate-ancestor category (the model
  /// disallows missing values — map to ⊤ explicitly when unknown). Names must
  /// be unique within a category.
  Result<ValueId> AddValue(std::string name, CategoryId category,
                           const std::vector<ValueId>& parents);

  /// Convenience for linear hierarchies: adds a value with a single parent.
  Result<ValueId> AddValue(std::string name, CategoryId category,
                           ValueId parent);

  /// Looks up a value by category and name.
  Result<ValueId> ValueByName(CategoryId category, std::string_view name) const;

  const std::string& value_name(ValueId v) const { return names_[v]; }
  CategoryId value_category(ValueId v) const { return categories_[v]; }

  /// Direct parents of a value (one per immediate-ancestor category).
  const std::vector<ValueId>& Parents(ValueId v) const { return parents_[v]; }

  /// The unique ancestor of `v` in `category`, or kInvalidValue when
  /// `category` is not reachable from v's category (e.g. rolling a week up to
  /// a month). Rollup(v, category(v)) == v.
  ValueId Rollup(ValueId v, CategoryId category) const;

  /// v1 <=_D v2: v1 is (transitively) contained in v2 (reflexive).
  bool ValueLeq(ValueId v1, ValueId v2) const;

  /// All values of `category` contained in `v` (drill-down set; memoized).
  /// When category(v) and `category` are unrelated, this is the set reachable
  /// through common descendants (used by Definition 5 after drilling to the
  /// GLB category, where it is always well-defined).
  ///
  /// Thread-safety: safe to call concurrently as long as no thread mutates
  /// the dimension (AddValue/EnsureTimeValue) at the same time — the memo is
  /// guarded, and references into it stay valid (per-node stability). The
  /// subcube engine's parallel query path relies on this.
  const std::vector<ValueId>& DrillDown(ValueId v, CategoryId category) const;

  /// All values of a category (its extent).
  const std::vector<ValueId>& CategoryExtent(CategoryId category) const {
    return extent_[category];
  }

  // --- Time-dimension payloads -------------------------------------------

  /// Granule payload of a time value. Only valid when is_time().
  TimeGranule granule(ValueId v) const { return granules_[v]; }

  /// Interns the granule (and its ancestors) as values, returning the id.
  /// Only valid when is_time().
  Result<ValueId> EnsureTimeValue(TimeGranule g);

  /// Looks up a granule without creating it.
  ValueId FindTimeValue(TimeGranule g) const;

  /// Deserialization hook: re-interns a value exactly as saved (AddValue's
  /// checks apply; for time dimensions the granule payload is registered
  /// too). Values must be restored in their original id order so parent
  /// references resolve.
  Result<ValueId> RestoreValue(std::string name, CategoryId category,
                               const std::vector<ValueId>& parents,
                               const TimeGranule* granule);

  /// A subdimension retaining only `keep` categories (which must include the
  /// top category and be upward-closed enough to keep parents: for every kept
  /// non-top category, at least one kept ancestor category must exist).
  /// Parent links are re-wired to the nearest kept ancestor values. Value ids
  /// are NOT preserved; the mapping old->new is returned via `value_map` if
  /// non-null. (Paper Section 3, subdimensions.)
  Result<Dimension> Subdimension(const std::vector<CategoryId>& keep,
                                 std::vector<ValueId>* value_map) const;

  /// Approximate in-memory footprint of the dimension in bytes (for storage
  /// accounting in benches).
  size_t ApproxBytes() const;

 private:
  Dimension(DimensionType type, bool is_time);

  DimensionType type_;
  bool is_time_ = false;

  std::vector<std::string> names_;
  std::vector<CategoryId> categories_;
  std::vector<std::vector<ValueId>> parents_;
  std::vector<std::vector<ValueId>> children_;  // inverse of parents_
  std::vector<std::vector<ValueId>> extent_;    // per category
  std::vector<std::unordered_map<std::string, ValueId>> by_name_;  // per cat
  ValueId top_value_ = kInvalidValue;

  // Time payloads (empty for non-time dimensions).
  std::vector<TimeGranule> granules_;
  std::unordered_map<int64_t, ValueId> granule_index_;  // key: unit<<56 | idx

  // Drill-down memo: key (v << 6) | category. Guarded for concurrent reads
  // during parallel query evaluation; mutation of the dimension itself is
  // not thread-safe. (Heap-allocated so Dimension stays movable.)
  mutable std::unique_ptr<std::mutex> drill_mu_ =
      std::make_unique<std::mutex>();
  mutable std::unordered_map<uint64_t, std::vector<ValueId>> drill_memo_;

  static int64_t GranuleKey(TimeGranule g) {
    return (static_cast<int64_t>(g.unit) << 56) | (g.index & 0xFFFFFFFFFFFFFFll);
  }
};

}  // namespace dwred
