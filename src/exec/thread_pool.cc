#include "exec/thread_pool.h"

#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/env.h"
#include "common/strings.h"
#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/cancel.h"

namespace dwred::exec {

std::vector<Shard> PartitionShards(size_t n, size_t grain, size_t max_shards) {
  std::vector<Shard> shards;
  if (n == 0) return shards;
  if (grain == 0) grain = 1;
  if (max_shards == 0) max_shards = 1;
  size_t chunk = (n + max_shards - 1) / max_shards;
  if (chunk < grain) chunk = grain;
  shards.reserve((n + chunk - 1) / chunk);
  for (size_t begin = 0; begin < n; begin += chunk) {
    shards.push_back({begin, begin + chunk < n ? begin + chunk : n});
  }
  return shards;
}

namespace {

struct PoolMetrics {
  obs::Gauge& threads;
  obs::Gauge& queue_depth;
  obs::Counter& tasks;
  obs::Counter& steals;
  obs::Histogram& shard_seconds;

  static PoolMetrics& Get() {
    auto& r = obs::MetricsRegistry::Global();
    static PoolMetrics m{
        r.GetGauge("dwred_exec_threads",
                   "lanes of the process-wide thread pool"),
        r.GetGauge("dwred_exec_queue_depth",
                   "shards enqueued and not yet started"),
        r.GetCounter("dwred_exec_tasks", "shards executed by the pool"),
        r.GetCounter("dwred_exec_steals",
                     "shards stolen from a sibling worker's deque"),
        r.GetHistogram("dwred_exec_shard_seconds", obs::DefaultLatencyBuckets(),
                       "wall time of one shard execution"),
    };
    return m;
  }
};

}  // namespace

/// One submitted ParallelForShards call: the body, the shard list, and the
/// completion latch the submitting thread blocks on.
struct Op {
  const std::function<void(size_t, size_t, size_t)>* fn;
  const std::vector<Shard>* shards;
  obs::TraceContext ctx;  ///< submitter's trace context, installed per shard
  runtime::OpContext rctx;  ///< submitter's op context (cancel/deadline/budget)
  std::atomic<size_t> remaining;
  std::mutex mu;
  std::condition_variable cv;
};

struct Task {
  Op* op = nullptr;
  size_t shard = 0;
};

struct ThreadPool::Impl {
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> q;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;  // one per worker thread
  std::vector<std::thread> workers;
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  std::atomic<size_t> queued{0};  ///< tasks sitting in some deque
  std::atomic<bool> stop{false};
  std::atomic<size_t> rr{0};  ///< round-robin submission cursor

  void Push(size_t worker, Task t) {
    {
      std::lock_guard<std::mutex> lk(queues[worker]->mu);
      queues[worker]->q.push_back(t);
    }
    queued.fetch_add(1, std::memory_order_release);
    PoolMetrics::Get().queue_depth.Add(1);
  }

  /// Pops from `self`'s deque LIFO, else steals FIFO from siblings. `self` ==
  /// queues.size() means an external (submitting) thread: steal only.
  bool TryGet(size_t self, Task* out) {
    if (queued.load(std::memory_order_acquire) == 0) return false;
    if (self < queues.size()) {
      std::lock_guard<std::mutex> lk(queues[self]->mu);
      if (!queues[self]->q.empty()) {
        *out = queues[self]->q.back();
        queues[self]->q.pop_back();
        queued.fetch_sub(1, std::memory_order_release);
        PoolMetrics::Get().queue_depth.Add(-1);
        return true;
      }
    }
    for (size_t i = 0; i < queues.size(); ++i) {
      size_t victim = (self + 1 + i) % queues.size();
      if (victim == self) continue;
      std::lock_guard<std::mutex> lk(queues[victim]->mu);
      if (queues[victim]->q.empty()) continue;
      *out = queues[victim]->q.front();
      queues[victim]->q.pop_front();
      queued.fetch_sub(1, std::memory_order_release);
      PoolMetrics::Get().queue_depth.Add(-1);
      PoolMetrics::Get().steals.Increment();
      return true;
    }
    return false;
  }

  void Run(const Task& t) {
    auto& m = PoolMetrics::Get();
    m.tasks.Increment();
    const Shard& s = (*t.op->shards)[t.shard];
    // Carry the submitter's trace and op contexts onto this thread for the
    // shard's duration: spans the body opens parent under the submitting span,
    // and cancellation polls inside the body see the submitter's token /
    // deadline / budget, even when a worker (or a stealing submitter of
    // another op) runs it.
    obs::ScopedTraceContext trace_scope(t.op->ctx);
    runtime::ScopedOpContext op_scope(t.op->rctx);
    if constexpr (obs::kObsEnabled) {
      auto t0 = std::chrono::steady_clock::now();
      (*t.op->fn)(t.shard, s.begin, s.end);
      m.shard_seconds.Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      (*t.op->fn)(t.shard, s.begin, s.end);
    }
    // Decrement and notify under op->mu. If the decrement happened outside
    // the mutex, the submitter could observe remaining == 0, take and release
    // its confirming lock, and destroy Op before this thread ever acquired
    // the mutex — a use-after-free on op->mu/op->cv. With the decrement
    // inside, either this thread released the mutex before the submitter's
    // confirming lock, or that lock blocks until it does; afterwards this
    // thread never touches op again.
    {
      std::lock_guard<std::mutex> lk(t.op->mu);
      if (t.op->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        t.op->cv.notify_all();
      }
    }
  }

  void WorkerLoop(size_t self) {
    while (true) {
      Task t;
      if (TryGet(self, &t)) {
        Run(t);
        continue;
      }
      std::unique_lock<std::mutex> lk(wake_mu);
      wake_cv.wait(lk, [&] {
        return stop.load(std::memory_order_acquire) ||
               queued.load(std::memory_order_acquire) > 0;
      });
      if (stop.load(std::memory_order_acquire) &&
          queued.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
  }
};

int ThreadPool::ThreadsFromEnv() {
  unsigned hw = std::thread::hardware_concurrency();
  int hw_threads = hw >= 1 ? static_cast<int>(hw) : 1;
  // A pool wider than a few times the machine only adds contention; anything
  // unparseable or non-positive would silently become a 0/garbage pool size
  // with a bare atoi, so validate and clamp instead (common/env.h).
  return static_cast<int>(
      EnvInt64("DWRED_THREADS", hw_threads, 1,
               static_cast<int64_t>(hw_threads) * 4, EnvRangePolicy::kClamp));
}

ThreadPool::ThreadPool(int threads) : num_threads_(threads < 1 ? 1 : threads) {
  PoolMetrics::Get().threads.Set(num_threads_);
  if (num_threads_ == 1) return;  // exact serial fallback: no machinery at all
  impl_ = new Impl;
  size_t workers = static_cast<size_t>(num_threads_ - 1);
  impl_->queues.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl_->queues.push_back(std::make_unique<Impl::WorkerQueue>());
  }
  for (size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(impl_->wake_mu);
    impl_->stop.store(true, std::memory_order_release);
  }
  impl_->wake_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::ParallelForShards(
    const std::vector<Shard>& shards,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (shards.empty()) return;
  if (impl_ == nullptr || shards.size() == 1) {
    for (size_t i = 0; i < shards.size(); ++i) {
      fn(i, shards[i].begin, shards[i].end);
    }
    return;
  }
  Op op;
  op.fn = &fn;
  op.shards = &shards;
  op.ctx = obs::CurrentTraceContext();
  op.rctx = runtime::CurrentOpContext();
  op.remaining.store(shards.size(), std::memory_order_release);
  {
    // Distribute round-robin starting at a moving cursor so consecutive small
    // ops don't all pile onto worker 0.
    size_t start = impl_->rr.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < shards.size(); ++i) {
      impl_->Push((start + i) % impl_->queues.size(), Task{&op, i});
    }
  }
  {
    // Taking wake_mu orders the queued increments against any worker that is
    // between its predicate check and its block, closing the lost-wakeup
    // window (the notifier would otherwise race that interval).
    std::lock_guard<std::mutex> lk(impl_->wake_mu);
  }
  impl_->wake_cv.notify_all();

  // The submitting thread participates: execute any runnable shard (its own
  // op's or a sibling op's) until this op's shards all completed. Blocking
  // only when no shard is runnable anywhere makes nested calls deadlock-free.
  const size_t external = impl_->queues.size();  // "not a worker" id
  while (op.remaining.load(std::memory_order_acquire) != 0) {
    Task t;
    if (impl_->TryGet(external, &t)) {
      impl_->Run(t);
      continue;
    }
    // Nothing runnable anywhere: park until this op completes. This op's
    // outstanding shards are guaranteed in flight on worker threads (TryGet
    // just found no queued work), so waiting on op.cv alone cannot deadlock.
    // Work submitted while parked is picked up by the workers; Push only
    // signals wake_cv, so a queued-work term in this predicate would never
    // be woken and is deliberately absent.
    std::unique_lock<std::mutex> lk(op.mu);
    op.cv.wait(lk, [&] {
      return op.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  // Confirm completion while holding op.mu: every worker decrements under
  // the mutex, so this lock cannot be acquired until the final decrementer
  // is done touching `op`, making it safe for Op to leave scope.
  { std::lock_guard<std::mutex> lk(op.mu); }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (impl_ == nullptr) {
    fn(0, n);  // exact serial fallback: one shard, inline
    return;
  }
  std::vector<Shard> shards =
      PartitionShards(n, grain, static_cast<size_t>(num_threads_) * 4);
  if (shards.size() == 1) {
    fn(0, n);
    return;
  }
  ParallelForShards(shards,
                    [&fn](size_t, size_t begin, size_t end) { fn(begin, end); });
}

namespace {

std::mutex g_global_mu;
ThreadPool* g_pool = nullptr;
pid_t g_pool_pid = 0;
int g_configured_threads = 0;  // 0 = derive from the environment

// A fork() while some other thread holds g_global_mu (pool-using threads call
// Global() on hot paths) would leave the child's copy of the mutex locked by
// a thread that does not exist there, deadlocking the child's first Global().
// Holding the mutex across the fork guarantees the child inherits it owned by
// the forking thread, which both sides release immediately.
[[maybe_unused]] const int g_atfork_registered = [] {
  ::pthread_atfork([] { g_global_mu.lock(); }, [] { g_global_mu.unlock(); },
                   [] { g_global_mu.unlock(); });
  return 0;
}();

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lk(g_global_mu);
  if (g_pool != nullptr && g_pool_pid != ::getpid()) {
    // Forked child: the worker threads did not survive the fork and the old
    // pool's internal state is unusable. Abandon the carcass (destructing it
    // would join threads that no longer exist) and rebuild.
    g_pool = nullptr;
  }
  if (g_pool == nullptr) {
    int threads =
        g_configured_threads > 0 ? g_configured_threads : ThreadsFromEnv();
    g_pool = new ThreadPool(threads);
    g_pool_pid = ::getpid();
  }
  return *g_pool;
}

void ThreadPool::ResetGlobal(int threads) {
  std::lock_guard<std::mutex> lk(g_global_mu);
  g_configured_threads = threads > 0 ? threads : 0;
  if (g_pool != nullptr && g_pool_pid == ::getpid()) {
    delete g_pool;  // drains queues and joins workers
  }
  g_pool = nullptr;  // recreated lazily by the next Global()
}

}  // namespace dwred::exec
