#pragma once

// Process-wide parallel execution engine (docs/PARALLELISM.md).
//
// A work-stealing thread pool drives the three embarrassingly parallel hot
// paths of the paper's implementation strategy: the per-fact Reduce scan
// (Definition 2 groups facts into cells independently), the per-row
// Synchronize migration scan (Section 7.2), and per-subcube query evaluation
// (Section 7.3 "separately and in parallel"). The pool is sized by the
// DWRED_THREADS environment variable (default: hardware_concurrency);
// DWRED_THREADS=1 is an *exact serial fallback* — ParallelFor runs the body
// inline on the calling thread with a single shard, no threads, no queues.
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous
// ascending shards and ParallelMapReduce folds shard results in ascending
// shard order, so any computation whose per-shard work is pure and whose
// combine step is associative over contiguous ranges produces byte-identical
// results at every thread count (see docs/PARALLELISM.md for the argument).
//
// Scheduling: each worker owns a deque; shards are distributed round-robin at
// submission, workers pop their own deque LIFO and steal FIFO from siblings
// when empty. The submitting thread participates (it executes shards too), so
// nested ParallelFor calls from inside a shard cannot deadlock: a thread only
// blocks once no runnable shard is left anywhere, and every in-flight shard
// is actively progressing on some other thread.
//
// Fork safety: the crash-matrix harness fork()s mid-test. A forked child
// inherits the pool object but none of its worker threads; the pool detects
// the pid change and transparently rebuilds itself (abandoning the parent's
// carcass) so journaled passes keep running — including shards in flight when
// an armed fault kills the child.
//
// Observability (PR 1 registry): dwred_exec_threads / dwred_exec_queue_depth
// gauges, dwred_exec_tasks / dwred_exec_steals counters, and the
// dwred_exec_shard_seconds latency histogram.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace dwred::exec {

/// A contiguous shard of an index space.
struct Shard {
  size_t begin;
  size_t end;
};

/// Partitions [0, n) into at most `max_shards` contiguous ascending shards of
/// at least `grain` indices each (the last may be shorter). Returns an empty
/// vector for n == 0. Exposed so callers that need per-shard state (e.g. the
/// Reduce merge) can size their accumulators before dispatch.
std::vector<Shard> PartitionShards(size_t n, size_t grain, size_t max_shards);

class ThreadPool {
 public:
  /// The process-wide pool, created on first use with ThreadsFromEnv().
  /// Rebuilt transparently after fork() (see header comment).
  static ThreadPool& Global();

  /// Replaces the process-wide pool with one of `threads` threads (<= 0:
  /// re-read DWRED_THREADS / hardware_concurrency). Call only while no
  /// parallel operation is running (tests, benchmark setup, CLI flags). The
  /// previous pool is drained and destroyed.
  static void ResetGlobal(int threads);

  /// DWRED_THREADS validated and clamped to [1, hardware_concurrency * 4];
  /// unset or unparseable values fall back to hardware_concurrency (min 1),
  /// with a warning logged for anything malformed or out of range.
  static int ThreadsFromEnv();

  /// A pool of `threads` total lanes: threads - 1 workers plus the submitting
  /// thread, which always participates. threads <= 1 spawns no workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(begin, end)` over contiguous ascending shards of [0, n) with at
  /// least `grain` indices per shard, blocking until every shard completed.
  /// With one lane (or one shard) the body runs inline: exact serial
  /// execution. `fn` must be safe to invoke concurrently on disjoint ranges.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Runs `fn(shard_index, begin, end)` over the exact shards in `shards`
  /// (one task per shard), blocking until done. The caller owns any
  /// per-shard accumulator slots, indexed by shard_index.
  void ParallelForShards(const std::vector<Shard>& shards,
                         const std::function<void(size_t, size_t, size_t)>& fn);

  /// Maps contiguous ascending shards of [0, n) through `map` and folds the
  /// shard results with `reduce` in ascending shard order:
  ///   acc = map(s0.begin, s0.end); acc = reduce(move(acc), map(s1...)); ...
  /// Deterministic for any thread count when `reduce` is associative over
  /// contiguous ranges. Returns T{} for n == 0.
  template <typename T, typename MapFn, typename ReduceFn>
  T ParallelMapReduce(size_t n, size_t grain, MapFn map, ReduceFn reduce) {
    std::vector<Shard> shards = PartitionShards(
        n, grain,
        num_threads_ == 1 ? 1 : static_cast<size_t>(num_threads_) * 4);
    if (shards.empty()) return T{};
    if (shards.size() == 1) return map(shards[0].begin, shards[0].end);
    std::vector<T> results(shards.size());
    ParallelForShards(shards, [&](size_t i, size_t begin, size_t end) {
      results[i] = map(begin, end);
    });
    T acc = std::move(results[0]);
    for (size_t i = 1; i < results.size(); ++i) {
      acc = reduce(std::move(acc), std::move(results[i]));
    }
    return acc;
  }

 private:
  struct Impl;

  Impl* impl_ = nullptr;   ///< null when num_threads_ == 1
  int num_threads_ = 1;
};

}  // namespace dwred::exec
