#pragma once

// Synthetic retail-sales workload: a three-dimensional warehouse (Time,
// Product: sku < brand < category < TOP, Store: store < city < region < TOP)
// with quantity/revenue SUM measures. Exercises reduction and querying on an
// MO with more than two dimensions and two non-time hierarchies — the class
// of warehouses the paper's introduction motivates alongside click-streams.

#include <memory>

#include "mdm/mo.h"

namespace dwred {

struct RetailConfig {
  uint64_t seed = 7;
  size_t num_categories = 8;
  size_t brands_per_category = 5;
  size_t skus_per_brand = 20;
  size_t num_regions = 4;
  size_t cities_per_region = 5;
  size_t stores_per_city = 4;
  CivilDate start{2000, 1, 1};
  int span_days = 730;
  size_t num_sales = 100000;
  /// Intern every day of the span chronologically before generating sales.
  /// Day ValueIds then ascend with calendar date, so inserting facts sorted
  /// by day gives segment zone maps real time locality (docs/STORAGE.md).
  bool preregister_days = false;
};

struct RetailWorkload {
  std::shared_ptr<Dimension> time_dim;
  std::shared_ptr<Dimension> product_dim;
  std::shared_ptr<Dimension> store_dim;
  std::unique_ptr<MultidimensionalObject> mo;
  RetailConfig config;
};

/// Builds the dimensions and a populated sales MO per the config.
RetailWorkload MakeRetail(const RetailConfig& config);

}  // namespace dwred
