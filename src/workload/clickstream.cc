#include "workload/clickstream.h"

#include "common/check.h"

namespace dwred {

namespace {

template <typename T>
T MustOk(Result<T> r) {
  DWRED_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r.take();
}

std::shared_ptr<Dimension> BuildUrlDimension(size_t num_domains,
                                             size_t urls_per_domain) {
  DimensionType url_type("URL");
  CategoryId url_cat = url_type.AddCategory("url");
  CategoryId domain_cat = url_type.AddCategory("domain");
  CategoryId grp_cat = url_type.AddCategory("domain_grp");
  CategoryId top = url_type.AddCategory("TOP");
  DWRED_CHECK(url_type.AddEdge(url_cat, domain_cat).ok());
  DWRED_CHECK(url_type.AddEdge(domain_cat, grp_cat).ok());
  DWRED_CHECK(url_type.AddEdge(grp_cat, top).ok());
  DWRED_CHECK(url_type.Finalize().ok());

  auto dim = std::make_shared<Dimension>(url_type);
  static const char* kGroups[] = {".com", ".edu", ".org", ".net"};
  ValueId groups[4];
  for (int g = 0; g < 4; ++g) {
    groups[g] = MustOk(dim->AddValue(kGroups[g], grp_cat, dim->top_value()));
  }
  for (size_t d = 0; d < num_domains; ++d) {
    int g = static_cast<int>(d % 4);
    std::string tail = kGroups[g];
    ValueId dom = MustOk(dim->AddValue("site" + std::to_string(d) + tail,
                                       domain_cat, groups[g]));
    for (size_t u = 0; u < urls_per_domain; ++u) {
      MustOk(dim->AddValue("www.site" + std::to_string(d) + tail + "/page" +
                               std::to_string(u),
                           url_cat, dom));
    }
  }
  return dim;
}

}  // namespace

ClickstreamWorkload MakeClickstream(const ClickstreamConfig& config) {
  ClickstreamWorkload w;
  w.config = config;
  w.url_dim = BuildUrlDimension(config.num_domains, config.urls_per_domain);
  w.time_dim = std::make_shared<Dimension>(Dimension::MakeTimeDimension());

  std::vector<MeasureType> measures = {
      {"Number_of", AggFn::kSum},
      {"Dwell_time", AggFn::kSum},
      {"Delivery_time", AggFn::kSum},
      {"Datasize", AggFn::kSum},
  };
  w.mo = std::make_unique<MultidimensionalObject>(
      "Click",
      std::vector<std::shared_ptr<Dimension>>{w.time_dim, w.url_dim},
      std::move(measures));

  int64_t start_day = DaysFromCivil(config.start);
  MultidimensionalObject batch =
      MakeClickBatch(w.time_dim, w.url_dim, start_day,
                     start_day + config.span_days - 1, config.num_clicks,
                     config.seed);
  // Move the batch's facts into the workload MO (same dimensions).
  std::vector<ValueId> coords(2);
  std::vector<int64_t> meas(4);
  for (FactId f = 0; f < batch.num_facts(); ++f) {
    coords[0] = batch.Coord(f, 0);
    coords[1] = batch.Coord(f, 1);
    for (size_t m = 0; m < 4; ++m) {
      meas[m] = batch.Measure(f, static_cast<MeasureId>(m));
    }
    MustOk(w.mo->AddFact(coords, meas));
  }
  return w;
}

MultidimensionalObject MakeClickBatch(
    const std::shared_ptr<Dimension>& time_dim,
    const std::shared_ptr<Dimension>& url_dim, int64_t start_day,
    int64_t end_day, size_t num_clicks, uint64_t seed) {
  DWRED_CHECK(end_day >= start_day);
  std::vector<MeasureType> measures = {
      {"Number_of", AggFn::kSum},
      {"Dwell_time", AggFn::kSum},
      {"Delivery_time", AggFn::kSum},
      {"Datasize", AggFn::kSum},
  };
  MultidimensionalObject batch(
      "Click", std::vector<std::shared_ptr<Dimension>>{time_dim, url_dim},
      std::move(measures));

  CategoryId url_cat = MustOk(url_dim->type().CategoryByName("url"));
  const std::vector<ValueId>& urls = url_dim->CategoryExtent(url_cat);
  DWRED_CHECK(!urls.empty());

  SplitMix64 rng(seed);
  ZipfGenerator zipf(urls.size(), 0.99, seed ^ 0x5eedULL);

  std::vector<ValueId> coords(2);
  std::vector<int64_t> meas(4);
  for (size_t i = 0; i < num_clicks; ++i) {
    int64_t day = rng.Range(start_day, end_day);
    coords[0] = MustOk(time_dim->EnsureTimeValue(DayGranule(day)));
    coords[1] = urls[zipf.Next()];
    meas[0] = 1;                           // Number_of
    meas[1] = rng.Range(1, 3000);          // Dwell_time (s)
    meas[2] = rng.Range(1, 10);            // Delivery_time (s)
    meas[3] = rng.Range(1, 512);           // Datasize (KB)
    MustOk(batch.AddBottomFact(coords, meas));
  }
  return batch;
}

}  // namespace dwred
