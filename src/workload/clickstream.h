#pragma once

// Synthetic ISP click-stream workload — the paper's motivating scenario
// (Section 2) at benchmark scale. URL popularity is Zipf-distributed (a few
// pages draw most clicks), URLs roll up into domains and domain groups, and
// clicks carry the paper's four SUM measures. Deterministic given the seed.

#include <memory>

#include "common/rng.h"
#include "mdm/mo.h"

namespace dwred {

struct ClickstreamConfig {
  uint64_t seed = 42;
  size_t num_domains = 100;
  size_t urls_per_domain = 10;
  double zipf_theta = 0.99;       ///< URL popularity skew
  CivilDate start{1999, 1, 1};    ///< first click day
  int span_days = 365;            ///< clicks spread uniformly over this range
  size_t num_clicks = 100000;
};

/// The generated warehouse: shared dimensions plus a populated MO.
struct ClickstreamWorkload {
  std::shared_ptr<Dimension> time_dim;
  std::shared_ptr<Dimension> url_dim;
  std::unique_ptr<MultidimensionalObject> mo;
  ClickstreamConfig config;
};

/// Builds the URL dimension (urls < domains < domain groups {.com, .edu,
/// .org, .net} < TOP) and a click MO per the config.
ClickstreamWorkload MakeClickstream(const ClickstreamConfig& config);

/// Generates one bulk-load batch of clicks over [start_day, end_day] against
/// existing dimensions (used by the subcube warehouse example and benches).
/// Returns an MO sharing `time_dim`/`url_dim` with `num_clicks` bottom facts.
MultidimensionalObject MakeClickBatch(
    const std::shared_ptr<Dimension>& time_dim,
    const std::shared_ptr<Dimension>& url_dim, int64_t start_day,
    int64_t end_day, size_t num_clicks, uint64_t seed);

}  // namespace dwred
