#include "workload/retail.h"

#include "common/check.h"
#include "common/rng.h"

namespace dwred {

namespace {

template <typename T>
T MustOk(Result<T> r) {
  DWRED_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r.take();
}

/// Builds a linear 3-level dimension (bottom < mid < top-level < TOP).
std::shared_ptr<Dimension> BuildLinearDim(
    const std::string& dim_name, const char* level0, const char* level1,
    const char* level2, size_t n2, size_t n1_per_2, size_t n0_per_1) {
  DimensionType type(dim_name);
  CategoryId c0 = type.AddCategory(level0);
  CategoryId c1 = type.AddCategory(level1);
  CategoryId c2 = type.AddCategory(level2);
  CategoryId top = type.AddCategory("TOP");
  DWRED_CHECK(type.AddEdge(c0, c1).ok());
  DWRED_CHECK(type.AddEdge(c1, c2).ok());
  DWRED_CHECK(type.AddEdge(c2, top).ok());
  DWRED_CHECK(type.Finalize().ok());

  auto dim = std::make_shared<Dimension>(type);
  for (size_t i2 = 0; i2 < n2; ++i2) {
    ValueId v2 = MustOk(dim->AddValue(std::string(level2) + std::to_string(i2),
                                      c2, dim->top_value()));
    for (size_t i1 = 0; i1 < n1_per_2; ++i1) {
      ValueId v1 = MustOk(
          dim->AddValue(std::string(level1) + std::to_string(i2) + "_" +
                            std::to_string(i1),
                        c1, v2));
      for (size_t i0 = 0; i0 < n0_per_1; ++i0) {
        MustOk(dim->AddValue(std::string(level0) + std::to_string(i2) + "_" +
                                 std::to_string(i1) + "_" +
                                 std::to_string(i0),
                             c0, v1));
      }
    }
  }
  return dim;
}

}  // namespace

RetailWorkload MakeRetail(const RetailConfig& config) {
  RetailWorkload w;
  w.config = config;
  w.time_dim = std::make_shared<Dimension>(Dimension::MakeTimeDimension());
  w.product_dim =
      BuildLinearDim("Product", "sku", "brand", "category",
                     config.num_categories, config.brands_per_category,
                     config.skus_per_brand);
  w.store_dim =
      BuildLinearDim("Store", "store", "city", "region", config.num_regions,
                     config.cities_per_region, config.stores_per_city);

  std::vector<MeasureType> measures = {
      {"Quantity", AggFn::kSum},
      {"Revenue", AggFn::kSum},
  };
  w.mo = std::make_unique<MultidimensionalObject>(
      "Sale",
      std::vector<std::shared_ptr<Dimension>>{w.time_dim, w.product_dim,
                                              w.store_dim},
      std::move(measures));

  CategoryId sku_cat = MustOk(w.product_dim->type().CategoryByName("sku"));
  CategoryId store_cat = MustOk(w.store_dim->type().CategoryByName("store"));
  const auto& skus = w.product_dim->CategoryExtent(sku_cat);
  const auto& stores = w.store_dim->CategoryExtent(store_cat);

  SplitMix64 rng(config.seed);
  ZipfGenerator sku_zipf(skus.size(), 0.8, config.seed ^ 0xabcdULL);
  int64_t start_day = DaysFromCivil(config.start);

  if (config.preregister_days) {
    for (int d = 0; d < config.span_days; ++d) {
      MustOk(w.time_dim->EnsureTimeValue(DayGranule(start_day + d)));
    }
  }

  std::vector<ValueId> coords(3);
  std::vector<int64_t> meas(2);
  for (size_t i = 0; i < config.num_sales; ++i) {
    int64_t day = rng.Range(start_day, start_day + config.span_days - 1);
    coords[0] = MustOk(w.time_dim->EnsureTimeValue(DayGranule(day)));
    coords[1] = skus[sku_zipf.Next()];
    coords[2] = stores[rng.Below(stores.size())];
    meas[0] = rng.Range(1, 10);            // Quantity
    meas[1] = meas[0] * rng.Range(5, 500); // Revenue
    MustOk(w.mo->AddBottomFact(coords, meas));
  }
  return w;
}

}  // namespace dwred
