#pragma once

// Encoded column storage for sealed segments (docs/STORAGE.md "Columnar
// layout"). A sealed segment's columns are immutable, so sealing is the one
// moment a column can be re-laid-out for free: EncodedColumn::Encode takes
// the plain values and keeps the cheapest of four physical encodings,
// chosen purely by byte count:
//
//   kPlain  n * sizeof(T)                      (the vector moves in, no copy)
//   kDict   distinct * sizeof(T) + n * width   (width = 1/2/4-byte codes)
//   kRle    runs * (sizeof(T) + 4)             (run values + exclusive ends)
//   kFor    sizeof(T) + n * width              (base = min, width-byte deltas)
//
// kFor (frame of reference) stores the column minimum once and each value as
// an unsigned delta from it, packed to 1/2/4 bytes by the value range; a
// range of 2^32 or more disqualifies it. A non-plain encoding is kept only
// when it is strictly smaller, so encoding never inflates a segment. Cold
// reduced data is where this pays: a date-sorted retail fact stream
// RLE-compresses its day column to almost nothing, dictionary-packs
// low-cardinality scattered columns, and delta-packs dense-range measures
// (counts, cents, ids) to 1-4 bytes per row against 8 plain.
//
// Encoding is physical only. Decode(begin, end) reproduces the original
// values bit-for-bit in the original order, so logical row order, ToMO /
// snapshot / digest bytes, and every query result are byte-identical whether
// or not a segment is encoded — the same "layout is not serialized" contract
// as the PR-4 segment manifest. The DWRED_COLUMNAR_DISABLED kill switch
// (ColumnarEnabled(), re-read on every decision point like DWRED_VM_DISABLED)
// stops *future* sealing from encoding and sends scan consumers down the
// row-at-a-time path; already-encoded segments stay readable either way.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace dwred::storage {

/// Physical layout of one sealed column.
enum class ColEncoding : uint8_t { kPlain, kDict, kRle, kFor };

/// "plain" / "dict" / "rle" / "for" — dwredctl storage and tests.
const char* EncodingName(ColEncoding e);

/// True unless the DWRED_COLUMNAR_DISABLED environment variable is set to a
/// non-empty value. Re-read on every call (the DWRED_VM_DISABLED
/// convention); disabling changes cost and physical layout of future seals,
/// never result bytes.
bool ColumnarEnabled();

/// One immutable encoded column of a sealed segment. T is ValueId for
/// dimension columns and int64_t for measure columns.
template <typename T>
class EncodedColumn {
 public:
  EncodedColumn() = default;

  /// Encodes `data`, consuming it (the plain choice moves the vector in
  /// whole, so "no encoding wins" costs nothing).
  static EncodedColumn Encode(std::vector<T>&& data) {
    EncodedColumn c;
    c.n_ = data.size();
    if (c.n_ == 0) {
      data.clear();
      return c;
    }

    // One pass: first-occurrence dictionary + run count + value range.
    std::unordered_map<T, uint32_t> dict;
    dict.reserve(64);
    size_t runs = 1;
    T minv = data[0], maxv = data[0];
    for (size_t i = 0; i < data.size(); ++i) {
      dict.emplace(data[i], static_cast<uint32_t>(dict.size()));
      if (i > 0 && data[i] != data[i - 1]) ++runs;
      minv = std::min(minv, data[i]);
      maxv = std::max(maxv, data[i]);
    }
    const size_t distinct = dict.size();
    const size_t plain_bytes = c.n_ * sizeof(T);
    const uint8_t width = distinct <= (1u << 8)    ? 1
                          : distinct <= (1u << 16) ? 2
                                                   : 4;
    const size_t dict_bytes = distinct * sizeof(T) + c.n_ * width;
    const size_t rle_bytes = runs * (sizeof(T) + sizeof(uint32_t));
    // Unsigned wraparound gives the true max-min difference for signed T too.
    const uint64_t range =
        static_cast<uint64_t>(maxv) - static_cast<uint64_t>(minv);
    const uint8_t fwidth = range < (1u << 8)      ? 1
                           : range < (1u << 16)   ? 2
                           : range < (1ull << 32) ? 4
                                                  : 0;
    const size_t for_bytes = fwidth == 0 ? static_cast<size_t>(-1)
                                         : sizeof(T) + c.n_ * fwidth;

    if (rle_bytes < plain_bytes && rle_bytes <= dict_bytes &&
        rle_bytes <= for_bytes) {
      c.enc_ = ColEncoding::kRle;
      c.values_.reserve(runs);
      c.run_ends_.reserve(runs);
      for (size_t i = 0; i < data.size(); ++i) {
        if (i == 0 || data[i] != data[i - 1]) {
          if (i > 0) c.run_ends_.push_back(static_cast<uint32_t>(i));
          c.values_.push_back(data[i]);
        }
      }
      c.run_ends_.push_back(static_cast<uint32_t>(data.size()));
      data.clear();
      data.shrink_to_fit();
      return c;
    }
    if (dict_bytes < plain_bytes && dict_bytes <= for_bytes) {
      c.enc_ = ColEncoding::kDict;
      c.code_width_ = width;
      // First-occurrence code order keeps the dictionary deterministic.
      c.values_.resize(distinct);
      for (const auto& [v, code] : dict) c.values_[code] = v;
      c.codes_.resize(c.n_ * width);
      uint8_t* out = c.codes_.data();
      for (size_t i = 0; i < data.size(); ++i, out += width) {
        const uint32_t code = dict.find(data[i])->second;
        std::memcpy(out, &code, width);  // little-endian prefix
      }
      data.clear();
      data.shrink_to_fit();
      return c;
    }
    if (for_bytes < plain_bytes) {
      c.enc_ = ColEncoding::kFor;
      c.code_width_ = fwidth;
      c.values_ = {minv};  // the base rides in values_ so byte accounting
                           // and moves need no extra field
      c.codes_.resize(c.n_ * fwidth);
      uint8_t* out = c.codes_.data();
      const uint64_t base = static_cast<uint64_t>(minv);
      for (size_t i = 0; i < data.size(); ++i, out += fwidth) {
        const uint64_t delta = static_cast<uint64_t>(data[i]) - base;
        const uint32_t d32 = static_cast<uint32_t>(delta);
        std::memcpy(out, &d32, fwidth);  // little-endian prefix
      }
      data.clear();
      data.shrink_to_fit();
      return c;
    }
    c.enc_ = ColEncoding::kPlain;
    data.shrink_to_fit();
    c.values_ = std::move(data);
    return c;
  }

  ColEncoding encoding() const { return enc_; }
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Random access — O(1) for plain/dict, O(log runs) for RLE. Hot paths
  /// should Decode() ranges instead.
  T At(size_t i) const {
    DWRED_CHECK(i < n_);
    switch (enc_) {
      case ColEncoding::kPlain:
        return values_[i];
      case ColEncoding::kDict:
        return values_[CodeAt(i)];
      case ColEncoding::kRle: {
        const size_t run = static_cast<size_t>(
            std::upper_bound(run_ends_.begin(), run_ends_.end(),
                             static_cast<uint32_t>(i)) -
            run_ends_.begin());
        return values_[run];
      }
      case ColEncoding::kFor:
        return static_cast<T>(static_cast<uint64_t>(values_[0]) + CodeAt(i));
    }
    return T{};
  }

  /// Writes the values of [begin, end) into `out`, bit-identical to the
  /// encoded input. Linear in the range length. This is the scan hot loop —
  /// the dict case is specialized per code width so each variant is a tight
  /// vectorizable gather instead of a per-element variable-width memcpy.
  void Decode(size_t begin, size_t end, T* out) const {
    DWRED_CHECK(begin <= end && end <= n_);
    switch (enc_) {
      case ColEncoding::kPlain:
        std::memcpy(out, values_.data() + begin, (end - begin) * sizeof(T));
        return;
      case ColEncoding::kDict: {
        const T* dict = values_.data();
        const size_t n = end - begin;
        switch (code_width_) {
          case 1: {
            const uint8_t* c = codes_.data() + begin;
            for (size_t i = 0; i < n; ++i) out[i] = dict[c[i]];
            return;
          }
          case 2: {
            const uint8_t* c = codes_.data() + begin * 2;
            for (size_t i = 0; i < n; ++i) {
              uint16_t code;
              std::memcpy(&code, c + i * 2, 2);
              out[i] = dict[code];
            }
            return;
          }
          default: {
            const uint8_t* c = codes_.data() + begin * 4;
            for (size_t i = 0; i < n; ++i) {
              uint32_t code;
              std::memcpy(&code, c + i * 4, 4);
              out[i] = dict[code];
            }
            return;
          }
        }
      }
      case ColEncoding::kRle: {
        size_t run = static_cast<size_t>(
            std::upper_bound(run_ends_.begin(), run_ends_.end(),
                             static_cast<uint32_t>(begin)) -
            run_ends_.begin());
        for (size_t i = begin; i < end; ++run) {
          const size_t stop = std::min<size_t>(end, run_ends_[run]);
          std::fill_n(out, stop - i, values_[run]);
          out += stop - i;
          i = stop;
        }
        return;
      }
      case ColEncoding::kFor: {
        const uint64_t base = static_cast<uint64_t>(values_[0]);
        const size_t n = end - begin;
        switch (code_width_) {
          case 1: {
            const uint8_t* c = codes_.data() + begin;
            for (size_t i = 0; i < n; ++i) {
              out[i] = static_cast<T>(base + c[i]);
            }
            return;
          }
          case 2: {
            const uint8_t* c = codes_.data() + begin * 2;
            for (size_t i = 0; i < n; ++i) {
              uint16_t delta;
              std::memcpy(&delta, c + i * 2, 2);
              out[i] = static_cast<T>(base + delta);
            }
            return;
          }
          default: {
            const uint8_t* c = codes_.data() + begin * 4;
            for (size_t i = 0; i < n; ++i) {
              uint32_t delta;
              std::memcpy(&delta, c + i * 4, 4);
              out[i] = static_cast<T>(base + delta);
            }
            return;
          }
        }
      }
    }
  }

  /// Zero-copy view when the column kept the plain layout; null otherwise.
  const T* PlainData() const {
    return enc_ == ColEncoding::kPlain ? values_.data() : nullptr;
  }

  /// Encoded payload bytes actually holding data (the resident footprint the
  /// dwred_storage_bytes_columnar gauge reports).
  size_t DataBytes() const {
    return values_.size() * sizeof(T) + codes_.size() +
           run_ends_.size() * sizeof(uint32_t);
  }

  /// Capacity-based footprint for cache/memory budgets (the PR-8 rule:
  /// budgets count capacity, not size).
  size_t ApproxBytes() const {
    return sizeof(EncodedColumn) + values_.capacity() * sizeof(T) +
           codes_.capacity() + run_ends_.capacity() * sizeof(uint32_t);
  }

 private:
  uint32_t CodeAt(size_t i) const {
    uint32_t code = 0;
    std::memcpy(&code, codes_.data() + i * code_width_, code_width_);
    return code;
  }

  ColEncoding enc_ = ColEncoding::kPlain;
  uint8_t code_width_ = 0;  ///< dict codes / FOR deltas: bytes each (1/2/4)
  size_t n_ = 0;
  /// plain data | dictionary | run values | {FOR base}
  std::vector<T> values_;
  std::vector<uint8_t> codes_;      ///< dict codes or FOR deltas, LE prefix
  std::vector<uint32_t> run_ends_;  ///< RLE: exclusive end row of each run
};

}  // namespace dwred::storage
