#include "storage/fact_table.h"

#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace dwred {

namespace {

obs::Gauge& RowsGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_fact_rows", "rows held by live FactTables");
  return g;
}

obs::Gauge& BytesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_fact_bytes", "bytes held by live FactTables");
  return g;
}

}  // namespace

void FactTable::UpdateFootprint(int64_t row_delta) {
  if constexpr (!obs::kObsEnabled) {
    (void)row_delta;
    return;
  }
  size_t now_bytes = Bytes();
  RowsGauge().Add(row_delta);
  BytesGauge().Add(static_cast<int64_t>(now_bytes) -
                   static_cast<int64_t>(reported_bytes_));
  reported_bytes_ = now_bytes;
}

void FactTable::ReleaseFootprint() {
  if constexpr (!obs::kObsEnabled) return;
  RowsGauge().Add(-static_cast<int64_t>(num_rows_));
  BytesGauge().Add(-static_cast<int64_t>(reported_bytes_));
  reported_bytes_ = 0;
}

FactTable::FactTable(size_t num_dims, size_t num_measures)
    : dim_cols_(num_dims), meas_cols_(num_measures) {}

FactTable::~FactTable() { ReleaseFootprint(); }

FactTable::FactTable(const FactTable& other)
    : num_rows_(other.num_rows_),
      dim_cols_(other.dim_cols_),
      meas_cols_(other.meas_cols_) {
  UpdateFootprint(static_cast<int64_t>(num_rows_));
}

FactTable& FactTable::operator=(const FactTable& other) {
  if (this == &other) return *this;
  int64_t old_rows = static_cast<int64_t>(num_rows_);
  num_rows_ = other.num_rows_;
  dim_cols_ = other.dim_cols_;
  meas_cols_ = other.meas_cols_;
  UpdateFootprint(static_cast<int64_t>(num_rows_) - old_rows);
  return *this;
}

FactTable::FactTable(FactTable&& other) noexcept
    : num_rows_(other.num_rows_),
      dim_cols_(std::move(other.dim_cols_)),
      meas_cols_(std::move(other.meas_cols_)),
      reported_bytes_(other.reported_bytes_) {
  // The gauge contribution moves with the data; the source owes nothing.
  other.num_rows_ = 0;
  other.reported_bytes_ = 0;
  other.dim_cols_.clear();
  other.meas_cols_.clear();
}

FactTable& FactTable::operator=(FactTable&& other) noexcept {
  if (this == &other) return *this;
  ReleaseFootprint();
  num_rows_ = other.num_rows_;
  dim_cols_ = std::move(other.dim_cols_);
  meas_cols_ = std::move(other.meas_cols_);
  reported_bytes_ = other.reported_bytes_;
  other.num_rows_ = 0;
  other.reported_bytes_ = 0;
  other.dim_cols_.clear();
  other.meas_cols_.clear();
  return *this;
}

RowId FactTable::Append(std::span<const ValueId> coords,
                        std::span<const int64_t> measures) {
  DWRED_CHECK(coords.size() == dim_cols_.size());
  DWRED_CHECK(measures.size() == meas_cols_.size());
  for (size_t d = 0; d < coords.size(); ++d) dim_cols_[d].push_back(coords[d]);
  for (size_t m = 0; m < measures.size(); ++m) {
    meas_cols_[m].push_back(measures[m]);
  }
  RowId r = num_rows_++;
  UpdateFootprint(1);
  return r;
}

void FactTable::ReadCoords(RowId r, ValueId* out) const {
  for (size_t d = 0; d < dim_cols_.size(); ++d) out[d] = dim_cols_[d][r];
}

Status FactTable::EraseRows(const std::vector<bool>& erase) {
  if (erase.size() != num_rows_) {
    return Status::InvalidArgument(
        "EraseRows: bitmap covers " + std::to_string(erase.size()) +
        " rows but the table holds " + std::to_string(num_rows_));
  }
  size_t before = num_rows_;
  size_t w = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (erase[r]) continue;
    if (w != r) {
      for (auto& col : dim_cols_) col[w] = col[r];
      for (auto& col : meas_cols_) col[w] = col[r];
    }
    ++w;
  }
  for (auto& col : dim_cols_) col.resize(w);
  for (auto& col : meas_cols_) col.resize(w);
  num_rows_ = w;
  UpdateFootprint(static_cast<int64_t>(w) - static_cast<int64_t>(before));
  return Status::OK();
}

Result<size_t> FactTable::CompactCells(std::span<const AggFn> aggs) {
  if (aggs.size() != meas_cols_.size()) {
    return Status::InvalidArgument(
        "CompactCells: " + std::to_string(aggs.size()) +
        " aggregate functions for " + std::to_string(meas_cols_.size()) +
        " measures");
  }
  std::unordered_map<std::vector<ValueId>, RowId, CellKeyHash> first;
  std::vector<bool> erase(num_rows_, false);
  std::vector<ValueId> key(dim_cols_.size());
  bool any = false;
  for (RowId r = 0; r < num_rows_; ++r) {
    for (size_t d = 0; d < dim_cols_.size(); ++d) key[d] = dim_cols_[d][r];
    auto it = first.find(key);
    if (it == first.end()) {
      first.emplace(key, r);
    } else {
      RowId keep = it->second;
      for (size_t m = 0; m < meas_cols_.size(); ++m) {
        meas_cols_[m][keep] =
            CombineMeasure(aggs[m], meas_cols_[m][keep], meas_cols_[m][r]);
      }
      erase[r] = true;
      any = true;
    }
  }
  size_t before = num_rows_;
  if (any) DWRED_RETURN_IF_ERROR(EraseRows(erase));
  return before - num_rows_;
}

size_t FactTable::Bytes() const {
  return num_rows_ * (dim_cols_.size() * sizeof(ValueId) +
                      meas_cols_.size() * sizeof(int64_t));
}

MultidimensionalObject FactTable::ToMO(
    const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures) const {
  DWRED_CHECK(dims.size() == dim_cols_.size());
  DWRED_CHECK(measures.size() == meas_cols_.size());
  MultidimensionalObject mo(fact_type, dims, measures);
  std::vector<ValueId> coords(dim_cols_.size());
  std::vector<int64_t> meas(meas_cols_.size());
  for (RowId r = 0; r < num_rows_; ++r) {
    for (size_t d = 0; d < coords.size(); ++d) coords[d] = dim_cols_[d][r];
    for (size_t m = 0; m < meas.size(); ++m) meas[m] = meas_cols_[m][r];
    auto res = mo.AddFact(coords, meas);
    DWRED_CHECK(res.ok());
  }
  return mo;
}

Status FactTable::AppendFrom(const MultidimensionalObject& mo) {
  if (mo.num_dimensions() != dim_cols_.size() ||
      mo.num_measures() != meas_cols_.size()) {
    return Status::InvalidArgument(
        "AppendFrom: MO shape " + std::to_string(mo.num_dimensions()) + "x" +
        std::to_string(mo.num_measures()) + " does not match table " +
        std::to_string(dim_cols_.size()) + "x" +
        std::to_string(meas_cols_.size()));
  }
  std::vector<ValueId> coords(dim_cols_.size());
  std::vector<int64_t> meas(meas_cols_.size());
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    for (size_t d = 0; d < coords.size(); ++d) {
      coords[d] = mo.Coord(f, static_cast<DimensionId>(d));
    }
    for (size_t m = 0; m < meas.size(); ++m) {
      meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
    }
    Append(coords, meas);
  }
  return Status::OK();
}

}  // namespace dwred
