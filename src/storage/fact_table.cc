#include "storage/fact_table.h"

#include <unordered_map>

#include "common/check.h"

namespace dwred {

FactTable::FactTable(size_t num_dims, size_t num_measures)
    : dim_cols_(num_dims), meas_cols_(num_measures) {}

RowId FactTable::Append(std::span<const ValueId> coords,
                        std::span<const int64_t> measures) {
  DWRED_CHECK(coords.size() == dim_cols_.size());
  DWRED_CHECK(measures.size() == meas_cols_.size());
  for (size_t d = 0; d < coords.size(); ++d) dim_cols_[d].push_back(coords[d]);
  for (size_t m = 0; m < measures.size(); ++m) {
    meas_cols_[m].push_back(measures[m]);
  }
  return num_rows_++;
}

void FactTable::ReadCoords(RowId r, ValueId* out) const {
  for (size_t d = 0; d < dim_cols_.size(); ++d) out[d] = dim_cols_[d][r];
}

void FactTable::EraseRows(const std::vector<bool>& erase) {
  DWRED_CHECK(erase.size() == num_rows_);
  size_t w = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (erase[r]) continue;
    if (w != r) {
      for (auto& col : dim_cols_) col[w] = col[r];
      for (auto& col : meas_cols_) col[w] = col[r];
    }
    ++w;
  }
  for (auto& col : dim_cols_) col.resize(w);
  for (auto& col : meas_cols_) col.resize(w);
  num_rows_ = w;
}

void FactTable::CompactCells(std::span<const AggFn> aggs) {
  DWRED_CHECK(aggs.size() == meas_cols_.size());
  struct KeyHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      size_t h = 0xcbf29ce484222325ull;
      for (ValueId x : v) {
        h ^= x;
        h *= 0x100000001b3ull;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<ValueId>, RowId, KeyHash> first;
  std::vector<bool> erase(num_rows_, false);
  std::vector<ValueId> key(dim_cols_.size());
  bool any = false;
  for (RowId r = 0; r < num_rows_; ++r) {
    for (size_t d = 0; d < dim_cols_.size(); ++d) key[d] = dim_cols_[d][r];
    auto it = first.find(key);
    if (it == first.end()) {
      first.emplace(key, r);
    } else {
      RowId keep = it->second;
      for (size_t m = 0; m < meas_cols_.size(); ++m) {
        meas_cols_[m][keep] =
            CombineMeasure(aggs[m], meas_cols_[m][keep], meas_cols_[m][r]);
      }
      erase[r] = true;
      any = true;
    }
  }
  if (any) EraseRows(erase);
}

size_t FactTable::Bytes() const {
  return num_rows_ * (dim_cols_.size() * sizeof(ValueId) +
                      meas_cols_.size() * sizeof(int64_t));
}

MultidimensionalObject FactTable::ToMO(
    const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures) const {
  DWRED_CHECK(dims.size() == dim_cols_.size());
  DWRED_CHECK(measures.size() == meas_cols_.size());
  MultidimensionalObject mo(fact_type, dims, measures);
  std::vector<ValueId> coords(dim_cols_.size());
  std::vector<int64_t> meas(meas_cols_.size());
  for (RowId r = 0; r < num_rows_; ++r) {
    for (size_t d = 0; d < coords.size(); ++d) coords[d] = dim_cols_[d][r];
    for (size_t m = 0; m < meas.size(); ++m) meas[m] = meas_cols_[m][r];
    auto res = mo.AddFact(coords, meas);
    DWRED_CHECK(res.ok());
  }
  return mo;
}

void FactTable::AppendFrom(const MultidimensionalObject& mo) {
  DWRED_CHECK(mo.num_dimensions() == dim_cols_.size());
  DWRED_CHECK(mo.num_measures() == meas_cols_.size());
  std::vector<ValueId> coords(dim_cols_.size());
  std::vector<int64_t> meas(meas_cols_.size());
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    for (size_t d = 0; d < coords.size(); ++d) {
      coords[d] = mo.Coord(f, static_cast<DimensionId>(d));
    }
    for (size_t m = 0; m < meas.size(); ++m) {
      meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
    }
    Append(coords, meas);
  }
}

}  // namespace dwred
