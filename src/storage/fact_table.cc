#include "storage/fact_table.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace dwred {

namespace {

obs::Gauge& RowsGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_fact_rows", "rows held by live FactTables");
  return g;
}

obs::Gauge& BytesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_fact_bytes", "bytes held by live FactTables");
  return g;
}

}  // namespace

void FactTable::UpdateFootprint(int64_t row_delta) {
  if constexpr (!obs::kObsEnabled) {
    (void)row_delta;
    return;
  }
  size_t now_bytes = Bytes();
  RowsGauge().Add(row_delta);
  BytesGauge().Add(static_cast<int64_t>(now_bytes) -
                   static_cast<int64_t>(reported_bytes_));
  reported_bytes_ = now_bytes;
}

void FactTable::ReleaseFootprint() {
  if constexpr (!obs::kObsEnabled) return;
  RowsGauge().Add(-static_cast<int64_t>(num_rows_));
  BytesGauge().Add(-static_cast<int64_t>(reported_bytes_));
  reported_bytes_ = 0;
}

FactTable::FactTable(size_t num_dims, size_t num_measures, size_t segment_rows)
    : ndims_(num_dims),
      nmeas_(num_measures),
      segment_rows_(segment_rows == 0 ? kDefaultSegmentRows : segment_rows) {}

FactTable::~FactTable() { ReleaseFootprint(); }

FactTable::FactTable(const FactTable& other)
    : ndims_(other.ndims_),
      nmeas_(other.nmeas_),
      segment_rows_(other.segment_rows_),
      num_rows_(other.num_rows_),
      phys_rows_(other.phys_rows_),
      segs_(other.segs_),
      starts_(other.starts_),
      content_version_(other.content_version_) {
  UpdateFootprint(static_cast<int64_t>(num_rows_));
}

FactTable& FactTable::operator=(const FactTable& other) {
  if (this == &other) return *this;
  int64_t old_rows = static_cast<int64_t>(num_rows_);
  ndims_ = other.ndims_;
  nmeas_ = other.nmeas_;
  segment_rows_ = other.segment_rows_;
  num_rows_ = other.num_rows_;
  phys_rows_ = other.phys_rows_;
  segs_ = other.segs_;
  starts_ = other.starts_;
  content_version_ = other.content_version_;
  UpdateFootprint(static_cast<int64_t>(num_rows_) - old_rows);
  return *this;
}

FactTable::FactTable(FactTable&& other) noexcept
    : ndims_(other.ndims_),
      nmeas_(other.nmeas_),
      segment_rows_(other.segment_rows_),
      num_rows_(other.num_rows_),
      phys_rows_(other.phys_rows_),
      segs_(std::move(other.segs_)),
      starts_(std::move(other.starts_)),
      reported_bytes_(other.reported_bytes_),
      content_version_(other.content_version_) {
  // The gauge contribution moves with the data; the source owes nothing.
  other.num_rows_ = 0;
  other.phys_rows_ = 0;
  other.reported_bytes_ = 0;
  other.segs_.clear();
  other.starts_.clear();
}

FactTable& FactTable::operator=(FactTable&& other) noexcept {
  if (this == &other) return *this;
  ReleaseFootprint();
  ndims_ = other.ndims_;
  nmeas_ = other.nmeas_;
  segment_rows_ = other.segment_rows_;
  num_rows_ = other.num_rows_;
  phys_rows_ = other.phys_rows_;
  segs_ = std::move(other.segs_);
  starts_ = std::move(other.starts_);
  reported_bytes_ = other.reported_bytes_;
  content_version_ = other.content_version_;
  other.num_rows_ = 0;
  other.phys_rows_ = 0;
  other.reported_bytes_ = 0;
  other.segs_.clear();
  other.starts_.clear();
  return *this;
}

std::pair<size_t, size_t> FactTable::Locate(RowId r) const {
  DWRED_CHECK(r < num_rows_);
  size_t s = static_cast<size_t>(
      std::upper_bound(starts_.begin(), starts_.end(), r) - starts_.begin() -
      1);
  size_t off = static_cast<size_t>(r) - starts_[s];
  const Segment& seg = segs_[s];
  return {s, seg.dead.empty() ? off : seg.live_phys[off]};
}

RowId FactTable::Append(std::span<const ValueId> coords,
                        std::span<const int64_t> measures) {
  DWRED_CHECK(coords.size() == ndims_);
  DWRED_CHECK(measures.size() == nmeas_);
  if (segs_.empty() || segs_.back().sealed) {
    Segment seg;
    seg.dims.resize(ndims_);
    seg.meas.resize(nmeas_);
    seg.dmin.resize(ndims_);
    seg.dmax.resize(ndims_);
    seg.mmin.resize(nmeas_);
    seg.mmax.resize(nmeas_);
    starts_.push_back(num_rows_);
    segs_.push_back(std::move(seg));
  }
  Segment& tail = segs_.back();
  for (size_t d = 0; d < ndims_; ++d) {
    tail.dims[d].push_back(coords[d]);
    if (tail.live == 0) {
      tail.dmin[d] = tail.dmax[d] = coords[d];
    } else {
      tail.dmin[d] = std::min(tail.dmin[d], coords[d]);
      tail.dmax[d] = std::max(tail.dmax[d], coords[d]);
    }
  }
  for (size_t m = 0; m < nmeas_; ++m) {
    tail.meas[m].push_back(measures[m]);
    if (tail.live == 0) {
      tail.mmin[m] = tail.mmax[m] = measures[m];
    } else {
      tail.mmin[m] = std::min(tail.mmin[m], measures[m]);
      tail.mmax[m] = std::max(tail.mmax[m], measures[m]);
    }
  }
  if (!tail.dead.empty()) {
    tail.dead.push_back(0);
    tail.live_phys.push_back(
        static_cast<uint32_t>(SegmentPhysicalRows(segs_.size() - 1) - 1));
  }
  ++tail.live;
  ++phys_rows_;
  if (SegmentPhysicalRows(segs_.size() - 1) >= segment_rows_) {
    tail.sealed = true;
  }
  RowId r = num_rows_++;
  ++content_version_;
  UpdateFootprint(1);
  return r;
}

void FactTable::ReadCoords(RowId r, ValueId* out) const {
  auto [s, p] = Locate(r);
  const Segment& seg = segs_[s];
  for (size_t d = 0; d < ndims_; ++d) out[d] = seg.dims[d][p];
}

void FactTable::RecomputeZones(Segment& s) const {
  bool first = true;
  const size_t phys = s.dims.empty() ? s.meas[0].size() : s.dims[0].size();
  for (size_t p = 0; p < phys; ++p) {
    if (!s.dead.empty() && s.dead[p]) continue;
    if (first) {
      for (size_t d = 0; d < ndims_; ++d) s.dmin[d] = s.dmax[d] = s.dims[d][p];
      for (size_t m = 0; m < nmeas_; ++m) s.mmin[m] = s.mmax[m] = s.meas[m][p];
      first = false;
    } else {
      for (size_t d = 0; d < ndims_; ++d) {
        s.dmin[d] = std::min(s.dmin[d], s.dims[d][p]);
        s.dmax[d] = std::max(s.dmax[d], s.dims[d][p]);
      }
      for (size_t m = 0; m < nmeas_; ++m) {
        s.mmin[m] = std::min(s.mmin[m], s.meas[m][p]);
        s.mmax[m] = std::max(s.mmax[m], s.meas[m][p]);
      }
    }
  }
}

void FactTable::CompactSegment(Segment& s) const {
  if (s.dead.empty()) return;
  const size_t phys = s.dims.empty() ? s.meas[0].size() : s.dims[0].size();
  size_t w = 0;
  for (size_t p = 0; p < phys; ++p) {
    if (s.dead[p]) continue;
    if (w != p) {
      for (auto& col : s.dims) col[w] = col[p];
      for (auto& col : s.meas) col[w] = col[p];
    }
    ++w;
  }
  for (auto& col : s.dims) {
    col.resize(w);
    col.shrink_to_fit();
  }
  for (auto& col : s.meas) {
    col.resize(w);
    col.shrink_to_fit();
  }
  s.dead.clear();
  s.live_phys.clear();
  s.dead_count = 0;
  DWRED_CHECK(s.live == w);
}

void FactTable::RecomputeIndex() {
  starts_.resize(segs_.size());
  size_t rows = 0;
  size_t phys = 0;
  for (size_t s = 0; s < segs_.size(); ++s) {
    starts_[s] = rows;
    rows += segs_[s].live;
    phys += segs_[s].dims.empty() ? segs_[s].meas[0].size()
                                  : segs_[s].dims[0].size();
  }
  num_rows_ = rows;
  phys_rows_ = phys;
}

Status FactTable::EraseRows(const std::vector<bool>& erase) {
  if (erase.size() != num_rows_) {
    return Status::InvalidArgument(
        "EraseRows: bitmap covers " + std::to_string(erase.size()) +
        " rows but the table holds " + std::to_string(num_rows_));
  }
  size_t before = num_rows_;
  std::vector<bool> touched(segs_.size(), false);
  RowId r = 0;
  for (size_t s = 0; s < segs_.size(); ++s) {
    Segment& seg = segs_[s];
    const size_t phys = seg.dims.empty() ? seg.meas[0].size()
                                         : seg.dims[0].size();
    for (size_t p = 0; p < phys; ++p) {
      if (!seg.dead.empty() && seg.dead[p]) continue;
      if (erase[r]) {
        if (seg.dead.empty()) seg.dead.assign(phys, 0);
        seg.dead[p] = 1;
        ++seg.dead_count;
        --seg.live;
        touched[s] = true;
      }
      ++r;
    }
  }
  DWRED_CHECK(r == num_rows_);

  // Apply the per-segment policy: drop empty segments, rewrite segments past
  // the tombstone-ratio threshold, and defer the rest (rebuilding their
  // live-row index and zone maps).
  std::vector<Segment> kept;
  kept.reserve(segs_.size());
  for (size_t s = 0; s < segs_.size(); ++s) {
    Segment& seg = segs_[s];
    if (!touched[s]) {
      kept.push_back(std::move(seg));
      continue;
    }
    if (seg.live == 0) continue;
    const size_t phys = seg.dims.empty() ? seg.meas[0].size()
                                         : seg.dims[0].size();
    if (static_cast<double>(seg.dead_count) >=
        kCompactTombstoneRatio * static_cast<double>(phys)) {
      CompactSegment(seg);
    } else {
      seg.live_phys.clear();
      seg.live_phys.reserve(seg.live);
      for (size_t p = 0; p < phys; ++p) {
        if (!seg.dead[p]) seg.live_phys.push_back(static_cast<uint32_t>(p));
      }
    }
    RecomputeZones(seg);
    kept.push_back(std::move(seg));
  }
  segs_ = std::move(kept);
  RecomputeIndex();
  if (num_rows_ != before) ++content_version_;
  UpdateFootprint(static_cast<int64_t>(num_rows_) -
                  static_cast<int64_t>(before));
  return Status::OK();
}

Result<size_t> FactTable::CompactCells(std::span<const AggFn> aggs) {
  if (aggs.size() != nmeas_) {
    return Status::InvalidArgument(
        "CompactCells: " + std::to_string(aggs.size()) +
        " aggregate functions for " + std::to_string(nmeas_) + " measures");
  }
  // Fold duplicate cells into their first occurrence, preserving
  // first-occurrence logical order.
  std::unordered_map<std::vector<ValueId>, size_t, CellKeyHash> first;
  std::vector<std::vector<ValueId>> cells;
  std::vector<std::vector<int64_t>> folded;
  bool any = false;
  std::vector<ValueId> key(ndims_);
  ForEachRow(0, num_rows_, [&](RowId, const RowRef& row) {
    for (size_t d = 0; d < ndims_; ++d) key[d] = row.coord(d);
    auto it = first.find(key);
    if (it == first.end()) {
      first.emplace(key, cells.size());
      cells.push_back(key);
      std::vector<int64_t> meas(nmeas_);
      for (size_t m = 0; m < nmeas_; ++m) meas[m] = row.measure(m);
      folded.push_back(std::move(meas));
    } else {
      std::vector<int64_t>& acc = folded[it->second];
      for (size_t m = 0; m < nmeas_; ++m) {
        acc[m] = CombineMeasure(aggs[m], acc[m], row.measure(m));
      }
      any = true;
    }
  });
  if (!any) return size_t{0};

  // Rebuild the table from the folded rows (canonical segmentation, no
  // tombstones); report the footprint change in one step.
  size_t before = num_rows_;
  segs_.clear();
  starts_.clear();
  num_rows_ = 0;
  phys_rows_ = 0;
  for (size_t i = 0; i < cells.size(); ++i) Append(cells[i], folded[i]);
  // Append() tracks bytes against reported_bytes_, so the byte gauge is
  // already exact; rows were credited on top of the pre-rebuild contribution,
  // so withdraw that.
  if constexpr (obs::kObsEnabled) {
    RowsGauge().Add(-static_cast<int64_t>(before));
  }
  return before - num_rows_;
}

MultidimensionalObject FactTable::ToMO(
    const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures) const {
  DWRED_CHECK(dims.size() == ndims_);
  DWRED_CHECK(measures.size() == nmeas_);
  MultidimensionalObject mo(fact_type, dims, measures);
  std::vector<ValueId> coords(ndims_);
  std::vector<int64_t> meas(nmeas_);
  ForEachRow(0, num_rows_, [&](RowId, const RowRef& row) {
    for (size_t d = 0; d < ndims_; ++d) coords[d] = row.coord(d);
    for (size_t m = 0; m < nmeas_; ++m) meas[m] = row.measure(m);
    auto res = mo.AddFact(coords, meas);
    DWRED_CHECK(res.ok());
  });
  return mo;
}

Status FactTable::AppendFrom(const MultidimensionalObject& mo) {
  if (mo.num_dimensions() != ndims_ || mo.num_measures() != nmeas_) {
    return Status::InvalidArgument(
        "AppendFrom: MO shape " + std::to_string(mo.num_dimensions()) + "x" +
        std::to_string(mo.num_measures()) + " does not match table " +
        std::to_string(ndims_) + "x" + std::to_string(nmeas_));
  }
  std::vector<ValueId> coords(ndims_);
  std::vector<int64_t> meas(nmeas_);
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    for (size_t d = 0; d < coords.size(); ++d) {
      coords[d] = mo.Coord(f, static_cast<DimensionId>(d));
    }
    for (size_t m = 0; m < meas.size(); ++m) {
      meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
    }
    Append(coords, meas);
  }
  return Status::OK();
}

}  // namespace dwred
