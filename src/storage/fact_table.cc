#include "storage/fact_table.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/strings.h"
#include "obs/logging.h"
#include "obs/metrics.h"

namespace dwred {

namespace {

obs::Gauge& RowsGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_fact_rows", "rows held by live FactTables");
  return g;
}

obs::Gauge& BytesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_fact_bytes", "bytes held by live FactTables");
  return g;
}

obs::Gauge& RowBytesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_bytes_row",
      "bytes live FactTables would occupy in the un-encoded row layout");
  return g;
}

obs::Gauge& ColumnarBytesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_bytes_columnar",
      "resident bytes of live FactTables' columns (encoded where sealed)");
  return g;
}

obs::Gauge& SavedBytesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "dwred_storage_bytes_saved",
      "bytes saved by seal-time column encodings (row - columnar)");
  return g;
}

/// Resolves the default segment row budget: DWRED_SEGMENT_ROWS when set —
/// validated and clamped to [kMinSegmentRows, kMaxSegmentRows] with a
/// warning, the DWRED_THREADS convention — else kDefaultSegmentRows.
/// Re-read on every default-budget construction; the budget is physical
/// layout only, so it never changes logical bytes.
size_t SegmentRowsFromEnv() {
  return static_cast<size_t>(
      EnvInt64("DWRED_SEGMENT_ROWS",
               static_cast<int64_t>(FactTable::kDefaultSegmentRows),
               static_cast<int64_t>(FactTable::kMinSegmentRows),
               static_cast<int64_t>(FactTable::kMaxSegmentRows),
               EnvRangePolicy::kClamp));
}

template <typename T>
void ZoneOverColumn(const T* col, const std::vector<uint8_t>& dead,
                    size_t phys, T* mn, T* mx) {
  bool first = true;
  for (size_t p = 0; p < phys; ++p) {
    if (!dead.empty() && dead[p]) continue;
    if (first) {
      *mn = *mx = col[p];
      first = false;
    } else {
      *mn = std::min(*mn, col[p]);
      *mx = std::max(*mx, col[p]);
    }
  }
}

}  // namespace

void FactTable::UpdateFootprint(int64_t row_delta) {
  if constexpr (!obs::kObsEnabled) {
    (void)row_delta;
    return;
  }
  const size_t now_bytes = Bytes();
  const size_t now_row_bytes = RowEquivalentBytes();
  RowsGauge().Add(row_delta);
  const int64_t byte_delta = static_cast<int64_t>(now_bytes) -
                             static_cast<int64_t>(reported_bytes_);
  const int64_t row_byte_delta = static_cast<int64_t>(now_row_bytes) -
                                 static_cast<int64_t>(reported_row_bytes_);
  BytesGauge().Add(byte_delta);
  ColumnarBytesGauge().Add(byte_delta);
  RowBytesGauge().Add(row_byte_delta);
  SavedBytesGauge().Add(row_byte_delta - byte_delta);
  reported_bytes_ = now_bytes;
  reported_row_bytes_ = now_row_bytes;
}

void FactTable::ReleaseFootprint() {
  if constexpr (!obs::kObsEnabled) return;
  RowsGauge().Add(-static_cast<int64_t>(num_rows_));
  BytesGauge().Add(-static_cast<int64_t>(reported_bytes_));
  ColumnarBytesGauge().Add(-static_cast<int64_t>(reported_bytes_));
  RowBytesGauge().Add(-static_cast<int64_t>(reported_row_bytes_));
  SavedBytesGauge().Add(static_cast<int64_t>(reported_bytes_) -
                        static_cast<int64_t>(reported_row_bytes_));
  reported_bytes_ = 0;
  reported_row_bytes_ = 0;
}

FactTable::FactTable(size_t num_dims, size_t num_measures, size_t segment_rows)
    : ndims_(num_dims),
      nmeas_(num_measures),
      segment_rows_(segment_rows == 0 ? SegmentRowsFromEnv() : segment_rows) {}

FactTable::~FactTable() { ReleaseFootprint(); }

FactTable::FactTable(const FactTable& other)
    : ndims_(other.ndims_),
      nmeas_(other.nmeas_),
      segment_rows_(other.segment_rows_),
      num_rows_(other.num_rows_),
      phys_rows_(other.phys_rows_),
      data_bytes_(other.data_bytes_),
      segs_(other.segs_),
      starts_(other.starts_),
      content_version_(other.content_version_) {
  UpdateFootprint(static_cast<int64_t>(num_rows_));
}

FactTable& FactTable::operator=(const FactTable& other) {
  if (this == &other) return *this;
  int64_t old_rows = static_cast<int64_t>(num_rows_);
  ndims_ = other.ndims_;
  nmeas_ = other.nmeas_;
  segment_rows_ = other.segment_rows_;
  num_rows_ = other.num_rows_;
  phys_rows_ = other.phys_rows_;
  data_bytes_ = other.data_bytes_;
  segs_ = other.segs_;
  starts_ = other.starts_;
  content_version_ = other.content_version_;
  UpdateFootprint(static_cast<int64_t>(num_rows_) - old_rows);
  return *this;
}

FactTable::FactTable(FactTable&& other) noexcept
    : ndims_(other.ndims_),
      nmeas_(other.nmeas_),
      segment_rows_(other.segment_rows_),
      num_rows_(other.num_rows_),
      phys_rows_(other.phys_rows_),
      data_bytes_(other.data_bytes_),
      segs_(std::move(other.segs_)),
      starts_(std::move(other.starts_)),
      reported_bytes_(other.reported_bytes_),
      reported_row_bytes_(other.reported_row_bytes_),
      content_version_(other.content_version_) {
  // The gauge contribution moves with the data; the source owes nothing.
  other.num_rows_ = 0;
  other.phys_rows_ = 0;
  other.data_bytes_ = 0;
  other.reported_bytes_ = 0;
  other.reported_row_bytes_ = 0;
  other.segs_.clear();
  other.starts_.clear();
}

FactTable& FactTable::operator=(FactTable&& other) noexcept {
  if (this == &other) return *this;
  ReleaseFootprint();
  ndims_ = other.ndims_;
  nmeas_ = other.nmeas_;
  segment_rows_ = other.segment_rows_;
  num_rows_ = other.num_rows_;
  phys_rows_ = other.phys_rows_;
  data_bytes_ = other.data_bytes_;
  segs_ = std::move(other.segs_);
  starts_ = std::move(other.starts_);
  reported_bytes_ = other.reported_bytes_;
  reported_row_bytes_ = other.reported_row_bytes_;
  content_version_ = other.content_version_;
  other.num_rows_ = 0;
  other.phys_rows_ = 0;
  other.data_bytes_ = 0;
  other.reported_bytes_ = 0;
  other.reported_row_bytes_ = 0;
  other.segs_.clear();
  other.starts_.clear();
  return *this;
}

std::pair<size_t, size_t> FactTable::Locate(RowId r) const {
  DWRED_CHECK(r < num_rows_);
  size_t s = static_cast<size_t>(
      std::upper_bound(starts_.begin(), starts_.end(), r) - starts_.begin() -
      1);
  size_t off = static_cast<size_t>(r) - starts_[s];
  const Segment& seg = segs_[s];
  return {s, seg.dead.empty() ? off : seg.live_phys[off]};
}

size_t FactTable::SegmentDataBytesOf(const Segment& s) const {
  if (!s.encoded) return s.phys * RowWidth();
  size_t b = 0;
  for (const auto& c : s.edims) b += c.DataBytes();
  for (const auto& c : s.emeas) b += c.DataBytes();
  return b;
}

void FactTable::EncodeSegment(Segment& s) const {
  if (s.encoded) return;
  s.edims.reserve(ndims_);
  for (size_t d = 0; d < ndims_; ++d) {
    s.edims.push_back(storage::EncodedColumn<ValueId>::Encode(
        std::move(s.dims[d])));
  }
  s.emeas.reserve(nmeas_);
  for (size_t m = 0; m < nmeas_; ++m) {
    s.emeas.push_back(storage::EncodedColumn<int64_t>::Encode(
        std::move(s.meas[m])));
  }
  s.dims.clear();
  s.meas.clear();
  s.encoded = true;
}

void FactTable::DecodeSegment(Segment& s) const {
  if (!s.encoded) return;
  s.dims.resize(ndims_);
  for (size_t d = 0; d < ndims_; ++d) {
    s.dims[d].resize(s.phys);
    s.edims[d].Decode(0, s.phys, s.dims[d].data());
  }
  s.meas.resize(nmeas_);
  for (size_t m = 0; m < nmeas_; ++m) {
    s.meas[m].resize(s.phys);
    s.emeas[m].Decode(0, s.phys, s.meas[m].data());
  }
  s.edims.clear();
  s.emeas.clear();
  s.encoded = false;
}

void FactTable::SealSegment(Segment& s) {
  s.sealed = true;
  // The seal is the encoding decision point: the kill switch is re-read
  // here, so flipping DWRED_COLUMNAR_DISABLED affects future seals only.
  if (!storage::ColumnarEnabled()) return;
  const size_t before = SegmentDataBytesOf(s);
  EncodeSegment(s);
  const size_t after = SegmentDataBytesOf(s);
  data_bytes_ = data_bytes_ - before + after;
}

RowId FactTable::Append(std::span<const ValueId> coords,
                        std::span<const int64_t> measures) {
  DWRED_CHECK(coords.size() == ndims_);
  DWRED_CHECK(measures.size() == nmeas_);
  if (segs_.empty() || segs_.back().sealed) {
    Segment seg;
    seg.dims.resize(ndims_);
    seg.meas.resize(nmeas_);
    seg.dmin.resize(ndims_);
    seg.dmax.resize(ndims_);
    seg.mmin.resize(nmeas_);
    seg.mmax.resize(nmeas_);
    starts_.push_back(num_rows_);
    segs_.push_back(std::move(seg));
  }
  Segment& tail = segs_.back();
  for (size_t d = 0; d < ndims_; ++d) {
    tail.dims[d].push_back(coords[d]);
    if (tail.live == 0) {
      tail.dmin[d] = tail.dmax[d] = coords[d];
    } else {
      tail.dmin[d] = std::min(tail.dmin[d], coords[d]);
      tail.dmax[d] = std::max(tail.dmax[d], coords[d]);
    }
  }
  for (size_t m = 0; m < nmeas_; ++m) {
    tail.meas[m].push_back(measures[m]);
    if (tail.live == 0) {
      tail.mmin[m] = tail.mmax[m] = measures[m];
    } else {
      tail.mmin[m] = std::min(tail.mmin[m], measures[m]);
      tail.mmax[m] = std::max(tail.mmax[m], measures[m]);
    }
  }
  ++tail.phys;
  if (!tail.dead.empty()) {
    tail.dead.push_back(0);
    tail.live_phys.push_back(static_cast<uint32_t>(tail.phys - 1));
  }
  ++tail.live;
  ++phys_rows_;
  data_bytes_ += RowWidth();
  if (tail.phys >= segment_rows_) SealSegment(tail);
  RowId r = num_rows_++;
  ++content_version_;
  UpdateFootprint(1);
  return r;
}

void FactTable::ReadCoords(RowId r, ValueId* out) const {
  auto [s, p] = Locate(r);
  const Segment& seg = segs_[s];
  if (seg.encoded) {
    for (size_t d = 0; d < ndims_; ++d) out[d] = seg.edims[d].At(p);
  } else {
    for (size_t d = 0; d < ndims_; ++d) out[d] = seg.dims[d][p];
  }
}

void FactTable::FillBatch(const Segment& seg, size_t lo, size_t n,
                          bool need_measures, BatchView* b) const {
  const bool dense = seg.dead.empty();
  auto dim_scratch = [&](size_t d) {
    if (b->dscratch_.empty()) b->dscratch_.resize(ndims_ * kBatchRows);
    return b->dscratch_.data() + d * kBatchRows;
  };
  auto meas_scratch = [&](size_t m) {
    if (b->mscratch_.empty()) b->mscratch_.resize(nmeas_ * kBatchRows);
    return b->mscratch_.data() + m * kBatchRows;
  };
  for (size_t d = 0; d < ndims_; ++d) {
    if (dense) {
      if (!seg.encoded) {
        b->dims_[d] = seg.dims[d].data() + lo;
        continue;
      }
      if (const ValueId* p = seg.edims[d].PlainData()) {
        b->dims_[d] = p + lo;
        continue;
      }
      ValueId* out = dim_scratch(d);
      seg.edims[d].Decode(lo, lo + n, out);
      b->dims_[d] = out;
    } else {
      ValueId* out = dim_scratch(d);
      const uint32_t* phys = seg.live_phys.data() + lo;
      if (seg.encoded) {
        for (size_t i = 0; i < n; ++i) out[i] = seg.edims[d].At(phys[i]);
      } else {
        const ValueId* col = seg.dims[d].data();
        for (size_t i = 0; i < n; ++i) out[i] = col[phys[i]];
      }
      b->dims_[d] = out;
    }
  }
  if (!need_measures) return;
  for (size_t m = 0; m < nmeas_; ++m) {
    if (dense) {
      if (!seg.encoded) {
        b->meas_[m] = seg.meas[m].data() + lo;
        continue;
      }
      if (const int64_t* p = seg.emeas[m].PlainData()) {
        b->meas_[m] = p + lo;
        continue;
      }
      int64_t* out = meas_scratch(m);
      seg.emeas[m].Decode(lo, lo + n, out);
      b->meas_[m] = out;
    } else {
      int64_t* out = meas_scratch(m);
      const uint32_t* phys = seg.live_phys.data() + lo;
      if (seg.encoded) {
        for (size_t i = 0; i < n; ++i) out[i] = seg.emeas[m].At(phys[i]);
      } else {
        const int64_t* col = seg.meas[m].data();
        for (size_t i = 0; i < n; ++i) out[i] = col[phys[i]];
      }
      b->meas_[m] = out;
    }
  }
}

void FactTable::RecomputeZones(Segment& s) const {
  std::vector<ValueId> dtmp;
  std::vector<int64_t> mtmp;
  for (size_t d = 0; d < ndims_; ++d) {
    const ValueId* col;
    if (!s.encoded) {
      col = s.dims[d].data();
    } else if (const ValueId* p = s.edims[d].PlainData()) {
      col = p;
    } else {
      dtmp.resize(s.phys);
      s.edims[d].Decode(0, s.phys, dtmp.data());
      col = dtmp.data();
    }
    ZoneOverColumn(col, s.dead, s.phys, &s.dmin[d], &s.dmax[d]);
  }
  for (size_t m = 0; m < nmeas_; ++m) {
    const int64_t* col;
    if (!s.encoded) {
      col = s.meas[m].data();
    } else if (const int64_t* p = s.emeas[m].PlainData()) {
      col = p;
    } else {
      mtmp.resize(s.phys);
      s.emeas[m].Decode(0, s.phys, mtmp.data());
      col = mtmp.data();
    }
    ZoneOverColumn(col, s.dead, s.phys, &s.mmin[m], &s.mmax[m]);
  }
}

void FactTable::CompactSegment(Segment& s) const {
  if (s.dead.empty()) return;
  const bool was_encoded = s.encoded;
  DecodeSegment(s);
  size_t w = 0;
  for (size_t p = 0; p < s.phys; ++p) {
    if (s.dead[p]) continue;
    if (w != p) {
      for (auto& col : s.dims) col[w] = col[p];
      for (auto& col : s.meas) col[w] = col[p];
    }
    ++w;
  }
  for (auto& col : s.dims) {
    col.resize(w);
    col.shrink_to_fit();
  }
  for (auto& col : s.meas) {
    col.resize(w);
    col.shrink_to_fit();
  }
  s.dead.clear();
  s.live_phys.clear();
  s.dead_count = 0;
  s.phys = w;
  DWRED_CHECK(s.live == w);
  // A compacted sealed segment re-enters the encoding decision (kill switch
  // re-read, like the seal itself).
  if (was_encoded || (s.sealed && storage::ColumnarEnabled())) {
    EncodeSegment(s);
  }
}

void FactTable::RecomputeIndex() {
  starts_.resize(segs_.size());
  size_t rows = 0;
  size_t phys = 0;
  size_t bytes = 0;
  for (size_t s = 0; s < segs_.size(); ++s) {
    starts_[s] = rows;
    rows += segs_[s].live;
    phys += segs_[s].phys;
    bytes += SegmentDataBytesOf(segs_[s]);
  }
  num_rows_ = rows;
  phys_rows_ = phys;
  data_bytes_ = bytes;
}

Status FactTable::EraseRows(const std::vector<bool>& erase) {
  if (erase.size() != num_rows_) {
    return Status::InvalidArgument(
        "EraseRows: bitmap covers " + std::to_string(erase.size()) +
        " rows but the table holds " + std::to_string(num_rows_));
  }
  size_t before = num_rows_;
  std::vector<bool> touched(segs_.size(), false);
  RowId r = 0;
  for (size_t s = 0; s < segs_.size(); ++s) {
    Segment& seg = segs_[s];
    for (size_t p = 0; p < seg.phys; ++p) {
      if (!seg.dead.empty() && seg.dead[p]) continue;
      if (erase[r]) {
        if (seg.dead.empty()) seg.dead.assign(seg.phys, 0);
        seg.dead[p] = 1;
        ++seg.dead_count;
        --seg.live;
        touched[s] = true;
      }
      ++r;
    }
  }
  DWRED_CHECK(r == num_rows_);

  // Apply the per-segment policy: drop empty segments, rewrite segments past
  // the tombstone-ratio threshold, and defer the rest (rebuilding their
  // live-row index and zone maps).
  std::vector<Segment> kept;
  kept.reserve(segs_.size());
  for (size_t s = 0; s < segs_.size(); ++s) {
    Segment& seg = segs_[s];
    if (!touched[s]) {
      kept.push_back(std::move(seg));
      continue;
    }
    if (seg.live == 0) continue;
    if (static_cast<double>(seg.dead_count) >=
        kCompactTombstoneRatio * static_cast<double>(seg.phys)) {
      CompactSegment(seg);
    } else {
      seg.live_phys.clear();
      seg.live_phys.reserve(seg.live);
      for (size_t p = 0; p < seg.phys; ++p) {
        if (!seg.dead[p]) seg.live_phys.push_back(static_cast<uint32_t>(p));
      }
    }
    RecomputeZones(seg);
    kept.push_back(std::move(seg));
  }
  segs_ = std::move(kept);
  RecomputeIndex();
  if (num_rows_ != before) ++content_version_;
  UpdateFootprint(static_cast<int64_t>(num_rows_) -
                  static_cast<int64_t>(before));
  return Status::OK();
}

Result<size_t> FactTable::CompactCells(std::span<const AggFn> aggs) {
  if (aggs.size() != nmeas_) {
    return Status::InvalidArgument(
        "CompactCells: " + std::to_string(aggs.size()) +
        " aggregate functions for " + std::to_string(nmeas_) + " measures");
  }
  // Fold duplicate cells into their first occurrence, preserving
  // first-occurrence logical order.
  std::unordered_map<std::vector<ValueId>, size_t, CellKeyHash> first;
  std::vector<std::vector<ValueId>> cells;
  std::vector<std::vector<int64_t>> folded;
  bool any = false;
  std::vector<ValueId> key(ndims_);
  ForEachRow(0, num_rows_, [&](RowId, const RowRef& row) {
    for (size_t d = 0; d < ndims_; ++d) key[d] = row.coord(d);
    auto it = first.find(key);
    if (it == first.end()) {
      first.emplace(key, cells.size());
      cells.push_back(key);
      std::vector<int64_t> meas(nmeas_);
      for (size_t m = 0; m < nmeas_; ++m) meas[m] = row.measure(m);
      folded.push_back(std::move(meas));
    } else {
      std::vector<int64_t>& acc = folded[it->second];
      for (size_t m = 0; m < nmeas_; ++m) {
        acc[m] = CombineMeasure(aggs[m], acc[m], row.measure(m));
      }
      any = true;
    }
  });
  if (!any) return size_t{0};

  // Rebuild the table from the folded rows (canonical segmentation, no
  // tombstones); report the footprint change in one step.
  size_t before = num_rows_;
  segs_.clear();
  starts_.clear();
  num_rows_ = 0;
  phys_rows_ = 0;
  data_bytes_ = 0;
  for (size_t i = 0; i < cells.size(); ++i) Append(cells[i], folded[i]);
  // Append() tracks bytes against reported_bytes_, so the byte gauges are
  // already exact; rows were credited on top of the pre-rebuild contribution,
  // so withdraw that.
  if constexpr (obs::kObsEnabled) {
    RowsGauge().Add(-static_cast<int64_t>(before));
  }
  return before - num_rows_;
}

size_t FactTable::ApproxBytes() const {
  size_t b = sizeof(FactTable) + segs_.capacity() * sizeof(Segment) +
             starts_.capacity() * sizeof(size_t);
  for (const Segment& seg : segs_) {
    for (const auto& col : seg.dims) b += col.capacity() * sizeof(ValueId);
    for (const auto& col : seg.meas) b += col.capacity() * sizeof(int64_t);
    for (const auto& col : seg.edims) b += col.ApproxBytes();
    for (const auto& col : seg.emeas) b += col.ApproxBytes();
    b += seg.dead.capacity();
    b += seg.live_phys.capacity() * sizeof(uint32_t);
    b += (seg.dmin.capacity() + seg.dmax.capacity()) * sizeof(ValueId);
    b += (seg.mmin.capacity() + seg.mmax.capacity()) * sizeof(int64_t);
  }
  return b;
}

MultidimensionalObject FactTable::ToMO(
    const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures) const {
  DWRED_CHECK(dims.size() == ndims_);
  DWRED_CHECK(measures.size() == nmeas_);
  MultidimensionalObject mo(fact_type, dims, measures);
  std::vector<ValueId> coords(ndims_);
  std::vector<int64_t> meas(nmeas_);
  ForEachRow(0, num_rows_, [&](RowId, const RowRef& row) {
    for (size_t d = 0; d < ndims_; ++d) coords[d] = row.coord(d);
    for (size_t m = 0; m < nmeas_; ++m) meas[m] = row.measure(m);
    auto res = mo.AddFact(coords, meas);
    DWRED_CHECK(res.ok());
  });
  return mo;
}

Status FactTable::AppendFrom(const MultidimensionalObject& mo) {
  if (mo.num_dimensions() != ndims_ || mo.num_measures() != nmeas_) {
    return Status::InvalidArgument(
        "AppendFrom: MO shape " + std::to_string(mo.num_dimensions()) + "x" +
        std::to_string(mo.num_measures()) + " does not match table " +
        std::to_string(ndims_) + "x" + std::to_string(nmeas_));
  }
  std::vector<ValueId> coords(ndims_);
  std::vector<int64_t> meas(nmeas_);
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    for (size_t d = 0; d < coords.size(); ++d) {
      coords[d] = mo.Coord(f, static_cast<DimensionId>(d));
    }
    for (size_t m = 0; m < meas.size(); ++m) {
      meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
    }
    Append(coords, meas);
  }
  return Status::OK();
}

}  // namespace dwred
