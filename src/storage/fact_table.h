#pragma once

// Columnar star-schema fact storage — the physical substrate of the subcube
// implementation strategy (paper Section 7). A FactTable stores facts of one
// fixed granularity as an append-only collection of immutable *sealed
// segments* plus one mutable tail segment (docs/STORAGE.md). Each segment
// holds dense columns — one ValueId column per dimension (the foreign keys of
// a star schema) and one int64 column per measure — capped at a fixed row
// budget, and carries per-column zone maps (min/max ValueId per dimension,
// min/max per measure, tombstone count) over its live rows. The scan layer
// (src/scan) prunes whole segments against these zone maps before a scan ever
// touches the columns, and uses segments as the natural parallel shard unit.
//
// Rows are addressed by *logical* RowId: the position among live rows in
// insertion order. Segmentation and tombstones are purely physical — they
// never change the logical row order, so serialized images (io/recovery) and
// MO materializations are byte-identical to the flat layout this class
// replaced. Deletion is tombstone-then-compact: EraseRows marks rows dead and
// rewrites a segment only once its tombstone ratio crosses
// kCompactTombstoneRatio (segments left with no live row are dropped).
//
// The table supports the operations the strategy needs: bulk append,
// predicate scans, physical deletion of migrated rows, cell-level compaction
// (the "aggregated one final time" step of Section 7.2), and byte-level
// accounting for the storage-gain experiments.

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "mdm/mo.h"

namespace dwred {

/// Logical row index within a FactTable (position among live rows).
using RowId = uint64_t;

/// FNV-1a hash over a cell key (one ValueId per dimension) — the one hash
/// every cell-keyed map in the system uses: reduction grouping
/// (reduce/semantics.cc), schema reduction (reduce/schema_reduction.cc),
/// subcube compaction (CompactCells), and query grouping
/// (query/operators.cc).
struct CellKeyHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// Columnar fact storage of one subcube. Live tables report their aggregate
/// row/byte footprint through the dwred_storage_fact_rows /
/// dwred_storage_fact_bytes gauges.
class FactTable {
 public:
  /// Row budget of one segment when the constructor is not given one.
  static constexpr size_t kDefaultSegmentRows = 4096;
  /// Tombstone fraction (dead / physical rows) at which EraseRows rewrites a
  /// segment in place instead of deferring.
  static constexpr double kCompactTombstoneRatio = 0.25;

  /// `segment_rows` caps the rows per segment; 0 means kDefaultSegmentRows.
  /// Tests and benches pass small budgets to exercise many segments.
  FactTable(size_t num_dims, size_t num_measures, size_t segment_rows = 0);
  ~FactTable();

  FactTable(const FactTable& other);
  FactTable& operator=(const FactTable& other);
  FactTable(FactTable&& other) noexcept;
  FactTable& operator=(FactTable&& other) noexcept;

  size_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return ndims_; }
  size_t num_measures() const { return nmeas_; }
  size_t segment_rows() const { return segment_rows_; }

  /// Monotonic mutation counter: advances whenever the logical row content
  /// changes (Append/AppendFrom, rows actually erased by EraseRows, cells
  /// actually folded by CompactCells). Copies inherit the source's counter.
  /// The cache layer (src/cache) compares it across an epoch-pinned read to
  /// assert the snapshot-isolation contract: a table observed under the
  /// shared lock must not move while the query runs.
  uint64_t content_version() const { return content_version_; }

  /// Appends one row to the tail segment (sealing it and opening a new tail
  /// when it reaches the row budget).
  RowId Append(std::span<const ValueId> coords,
               std::span<const int64_t> measures);

  ValueId Coord(RowId r, size_t d) const {
    auto [s, p] = Locate(r);
    return segs_[s].dims[d][p];
  }
  int64_t Measure(RowId r, size_t m) const {
    auto [s, p] = Locate(r);
    return segs_[s].meas[m][p];
  }

  /// Copies a row's coordinates into `out` (size num_dims).
  void ReadCoords(RowId r, ValueId* out) const;

  /// Deletes the rows whose flag is set (paper: reduction ends in physical
  /// deletion of the detail facts). Rows are tombstoned per segment; a
  /// segment is rewritten once its tombstone ratio reaches
  /// kCompactTombstoneRatio and dropped once no live row remains. Logical
  /// row ids are invalidated (the survivors renumber in order). Fails with
  /// InvalidArgument when the bitmap's size does not match the current row
  /// count (deleting against a stale bitmap would silently drop the wrong
  /// facts).
  Status EraseRows(const std::vector<bool>& erase);

  /// Merges rows with identical coordinates by folding measures with `aggs`
  /// (one AggFn per measure). Used after subcube migration, where data
  /// arriving from several parents may populate the same cell. Keeps the
  /// first occurrence of each cell (so the logical order is the
  /// first-occurrence order, as before segmentation) and rebuilds the
  /// segment manifest. Returns the number of rows folded away; fails with
  /// InvalidArgument when `aggs` does not supply one function per measure.
  Result<size_t> CompactCells(std::span<const AggFn> aggs);

  /// Exact byte footprint of the stored columns (tombstoned rows included
  /// until their segment is compacted).
  size_t Bytes() const {
    return phys_rows_ * (ndims_ * sizeof(ValueId) + nmeas_ * sizeof(int64_t));
  }

  /// Materializes the rows as an MO over the given dimensions and measure
  /// types (shared with the rest of the warehouse) so the algebraic query
  /// operators apply directly.
  MultidimensionalObject ToMO(
      const std::string& fact_type,
      const std::vector<std::shared_ptr<Dimension>>& dims,
      const std::vector<MeasureType>& measures) const;

  /// Appends every fact of an MO (granularities are the caller's concern).
  /// Fails with InvalidArgument when the MO's dimension or measure count
  /// does not match the table's column layout.
  Status AppendFrom(const MultidimensionalObject& mo);

  // --- Segment manifest (scan planner, dwredctl storage, tests) -----------

  size_t num_segments() const { return segs_.size(); }
  /// Logical id of the segment's first live row.
  RowId SegmentBegin(size_t s) const { return starts_[s]; }
  size_t SegmentLiveRows(size_t s) const { return segs_[s].live; }
  size_t SegmentPhysicalRows(size_t s) const {
    return segs_[s].dims.empty() ? segs_[s].meas[0].size()
                                 : segs_[s].dims[0].size();
  }
  size_t SegmentTombstones(size_t s) const { return segs_[s].dead_count; }
  bool SegmentSealed(size_t s) const { return segs_[s].sealed; }
  /// Zone maps over the segment's live rows (every segment has >= 1).
  ValueId SegmentDimMin(size_t s, size_t d) const { return segs_[s].dmin[d]; }
  ValueId SegmentDimMax(size_t s, size_t d) const { return segs_[s].dmax[d]; }
  int64_t SegmentMeasureMin(size_t s, size_t m) const {
    return segs_[s].mmin[m];
  }
  int64_t SegmentMeasureMax(size_t s, size_t m) const {
    return segs_[s].mmax[m];
  }

  /// A borrowed view of one live row during ForEachRow.
  class RowRef {
   public:
    ValueId coord(size_t d) const { return (*dims_)[d][phys_]; }
    int64_t measure(size_t m) const { return (*meas_)[m][phys_]; }

   private:
    friend class FactTable;
    const std::vector<std::vector<ValueId>>* dims_ = nullptr;
    const std::vector<std::vector<int64_t>>* meas_ = nullptr;
    size_t phys_ = 0;
  };

  /// Sequential scan of the live rows [begin, end) in logical order — O(1)
  /// per row (no per-row segment lookup), skipping tombstones. `fn` is called
  /// as fn(RowId logical, const RowRef& row); the view is valid only for the
  /// duration of the call. The table must not be mutated during the scan.
  template <typename Fn>
  void ForEachRow(RowId begin, RowId end, Fn&& fn) const {
    if (begin >= end) return;
    auto [s, p] = Locate(begin);
    RowRef ref;
    for (RowId r = begin; r < end; ++s, p = 0) {
      const Segment& seg = segs_[s];
      ref.dims_ = &seg.dims;
      ref.meas_ = &seg.meas;
      const size_t phys_rows =
          seg.dims.empty() ? seg.meas[0].size() : seg.dims[0].size();
      if (seg.dead.empty()) {
        for (; p < phys_rows && r < end; ++p, ++r) {
          ref.phys_ = p;
          fn(r, ref);
        }
      } else {
        for (; p < phys_rows && r < end; ++p) {
          if (seg.dead[p]) continue;
          ref.phys_ = p;
          fn(r, ref);
          ++r;
        }
      }
    }
  }

 private:
  /// One physical segment: dense columns over at most segment_rows_ rows,
  /// a tombstone bitmap (empty when no row is dead), and zone maps over the
  /// live rows.
  struct Segment {
    std::vector<std::vector<ValueId>> dims;   ///< [ndims][physical rows]
    std::vector<std::vector<int64_t>> meas;   ///< [nmeas][physical rows]
    std::vector<uint8_t> dead;                ///< empty <=> no tombstones
    std::vector<uint32_t> live_phys;          ///< live ordinal -> physical row
    size_t live = 0;
    size_t dead_count = 0;
    bool sealed = false;
    std::vector<ValueId> dmin, dmax;          ///< per-dimension zone map
    std::vector<int64_t> mmin, mmax;          ///< per-measure zone map
  };

  /// (segment, physical row) of logical row `r`.
  std::pair<size_t, size_t> Locate(RowId r) const;
  /// Recomputes a segment's zone maps over its live rows.
  void RecomputeZones(Segment& s) const;
  /// Rewrites a segment's columns dropping tombstoned rows.
  void CompactSegment(Segment& s) const;
  /// Recomputes starts_, num_rows_ and phys_rows_ from the segments.
  void RecomputeIndex();

  /// Re-reports this table's contribution to the process-wide footprint
  /// gauges after a mutation (`row_delta` rows added/removed; the byte delta
  /// is derived from Bytes() against the last reported value).
  void UpdateFootprint(int64_t row_delta);
  /// Withdraws this table's whole contribution from the footprint gauges.
  void ReleaseFootprint();

  size_t ndims_ = 0;
  size_t nmeas_ = 0;
  size_t segment_rows_ = kDefaultSegmentRows;
  size_t num_rows_ = 0;   ///< live rows across all segments
  size_t phys_rows_ = 0;  ///< physical rows (live + tombstoned)
  std::vector<Segment> segs_;
  std::vector<size_t> starts_;  ///< logical id of each segment's first row
  size_t reported_bytes_ = 0;   ///< bytes currently credited to the gauges
  uint64_t content_version_ = 0;  ///< see content_version()
};

}  // namespace dwred
