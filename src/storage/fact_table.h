#pragma once

// Columnar star-schema fact storage — the physical substrate of the subcube
// implementation strategy (paper Section 7). A FactTable stores facts of one
// fixed granularity as dense columns: one ValueId column per dimension (the
// foreign keys of a star schema) and one int64 column per measure. It
// supports the operations the strategy needs: bulk append, predicate scans,
// physical deletion of migrated rows, cell-level compaction (the "aggregated
// one final time" step of Section 7.2), and byte-level accounting for the
// storage-gain experiments.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mdm/mo.h"

namespace dwred {

/// Row index within a FactTable.
using RowId = uint64_t;

/// FNV-1a hash over a cell key (one ValueId per dimension) — the one hash
/// every cell-keyed map in the system uses: reduction grouping
/// (reduce/semantics.cc), schema reduction (reduce/schema_reduction.cc),
/// subcube compaction (CompactCells), and query grouping
/// (query/operators.cc).
struct CellKeyHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// Columnar fact storage of one subcube. Live tables report their aggregate
/// row/byte footprint through the dwred_storage_fact_rows /
/// dwred_storage_fact_bytes gauges.
class FactTable {
 public:
  FactTable(size_t num_dims, size_t num_measures);
  ~FactTable();

  FactTable(const FactTable& other);
  FactTable& operator=(const FactTable& other);
  FactTable(FactTable&& other) noexcept;
  FactTable& operator=(FactTable&& other) noexcept;

  size_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return dim_cols_.size(); }
  size_t num_measures() const { return meas_cols_.size(); }

  /// Appends one row.
  RowId Append(std::span<const ValueId> coords,
               std::span<const int64_t> measures);

  ValueId Coord(RowId r, size_t d) const { return dim_cols_[d][r]; }
  int64_t Measure(RowId r, size_t m) const { return meas_cols_[m][r]; }
  void SetMeasure(RowId r, size_t m, int64_t v) { meas_cols_[m][r] = v; }

  /// Copies a row's coordinates into `out` (size num_dims).
  void ReadCoords(RowId r, ValueId* out) const;

  /// Physically deletes the rows whose flag is set (paper: reduction ends in
  /// physical deletion of the detail facts). Compacts columns in place;
  /// row ids are invalidated. Fails with InvalidArgument when the bitmap's
  /// size does not match the current row count (deleting against a stale
  /// bitmap would silently drop the wrong facts).
  Status EraseRows(const std::vector<bool>& erase);

  /// Merges rows with identical coordinates by folding measures with `aggs`
  /// (one AggFn per measure). Used after subcube migration, where data
  /// arriving from several parents may populate the same cell. Returns the
  /// number of rows folded away; fails with InvalidArgument when `aggs` does
  /// not supply one function per measure.
  Result<size_t> CompactCells(std::span<const AggFn> aggs);

  /// Exact byte footprint of the stored columns.
  size_t Bytes() const;

  /// Materializes the rows as an MO over the given dimensions and measure
  /// types (shared with the rest of the warehouse) so the algebraic query
  /// operators apply directly.
  MultidimensionalObject ToMO(
      const std::string& fact_type,
      const std::vector<std::shared_ptr<Dimension>>& dims,
      const std::vector<MeasureType>& measures) const;

  /// Appends every fact of an MO (granularities are the caller's concern).
  /// Fails with InvalidArgument when the MO's dimension or measure count
  /// does not match the table's column layout.
  Status AppendFrom(const MultidimensionalObject& mo);

 private:
  /// Re-reports this table's contribution to the process-wide footprint
  /// gauges after a mutation (`row_delta` rows added/removed; the byte delta
  /// is derived from Bytes() against the last reported value).
  void UpdateFootprint(int64_t row_delta);
  /// Withdraws this table's whole contribution from the footprint gauges.
  void ReleaseFootprint();

  size_t num_rows_ = 0;
  std::vector<std::vector<ValueId>> dim_cols_;
  std::vector<std::vector<int64_t>> meas_cols_;
  size_t reported_bytes_ = 0;  ///< bytes currently credited to the gauges
};

}  // namespace dwred
