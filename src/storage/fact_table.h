#pragma once

// Columnar star-schema fact storage — the physical substrate of the subcube
// implementation strategy (paper Section 7). A FactTable stores facts of one
// fixed granularity as an append-only collection of immutable *sealed
// segments* plus one mutable tail segment (docs/STORAGE.md). Each segment
// holds dense columns — one ValueId column per dimension (the foreign keys of
// a star schema) and one int64 column per measure — capped at a fixed row
// budget, and carries per-column zone maps (min/max ValueId per dimension,
// min/max per measure, tombstone count) over its live rows. The scan layer
// (src/scan) prunes whole segments against these zone maps before a scan ever
// touches the columns, and uses segments as the natural parallel shard unit.
//
// Sealing is also the compression point (docs/STORAGE.md "Columnar layout"):
// when the columnar path is enabled (storage::ColumnarEnabled, kill switch
// DWRED_COLUMNAR_DISABLED), a segment's columns are re-encoded at seal time —
// per column, the cheapest of plain / dictionary / run-length by byte count
// (storage/column.h) — and consumers iterate chunk-at-a-time through
// ForEachBatch, which exposes each column of up to kBatchRows rows as a flat
// pointer (zero-copy for plain columns, decoded into scratch otherwise).
// The encoding is physical only: logical row order, ToMO / snapshot / digest
// bytes, and every query result are byte-identical with the layout on or
// off, at any thread count — the segment layout is deliberately never
// serialized, exactly like the segment manifest.
//
// Rows are addressed by *logical* RowId: the position among live rows in
// insertion order. Segmentation and tombstones are purely physical — they
// never change the logical row order, so serialized images (io/recovery) and
// MO materializations are byte-identical to the flat layout this class
// replaced. Deletion is tombstone-then-compact: EraseRows marks rows dead and
// rewrites a segment only once its tombstone ratio crosses
// kCompactTombstoneRatio (segments left with no live row are dropped).
//
// The table supports the operations the strategy needs: bulk append,
// predicate scans, physical deletion of migrated rows, cell-level compaction
// (the "aggregated one final time" step of Section 7.2), and byte-level
// accounting for the storage-gain experiments.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "mdm/mo.h"
#include "storage/column.h"

namespace dwred {

/// Logical row index within a FactTable (position among live rows).
using RowId = uint64_t;

/// FNV-1a hash over a cell key (one ValueId per dimension) — the one hash
/// every cell-keyed map in the system uses: reduction grouping
/// (reduce/semantics.cc), schema reduction (reduce/schema_reduction.cc),
/// subcube compaction (CompactCells), and query grouping
/// (query/operators.cc).
struct CellKeyHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// Columnar fact storage of one subcube. Live tables report their aggregate
/// row/byte footprint through the dwred_storage_fact_rows /
/// dwred_storage_fact_bytes gauges, and the encoded-vs-row byte split
/// through dwred_storage_bytes_{row,columnar,saved}.
class FactTable {
 public:
  /// Row budget of one segment when the constructor is not given one and the
  /// DWRED_SEGMENT_ROWS environment variable is unset.
  static constexpr size_t kDefaultSegmentRows = 4096;
  /// Validation range of DWRED_SEGMENT_ROWS (values outside are clamped with
  /// an obs warning, the DWRED_THREADS convention).
  static constexpr size_t kMinSegmentRows = 16;
  static constexpr size_t kMaxSegmentRows = size_t{1} << 22;
  /// Tombstone fraction (dead / physical rows) at which EraseRows rewrites a
  /// segment in place instead of deferring.
  static constexpr double kCompactTombstoneRatio = 0.25;
  /// Rows per ForEachBatch chunk: big enough to amortize the per-batch
  /// dispatch, small enough that one batch's decoded columns stay cache-hot.
  static constexpr size_t kBatchRows = 1024;

  /// `segment_rows` caps the rows per segment; 0 means DWRED_SEGMENT_ROWS
  /// when set (validated and clamped), else kDefaultSegmentRows. Tests and
  /// benches pass small budgets to exercise many segments. The budget is
  /// physical layout only — it never changes logical bytes.
  FactTable(size_t num_dims, size_t num_measures, size_t segment_rows = 0);
  ~FactTable();

  FactTable(const FactTable& other);
  FactTable& operator=(const FactTable& other);
  FactTable(FactTable&& other) noexcept;
  FactTable& operator=(FactTable&& other) noexcept;

  size_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return ndims_; }
  size_t num_measures() const { return nmeas_; }
  size_t segment_rows() const { return segment_rows_; }

  /// Monotonic mutation counter: advances whenever the logical row content
  /// changes (Append/AppendFrom, rows actually erased by EraseRows, cells
  /// actually folded by CompactCells). Copies inherit the source's counter.
  /// The cache layer (src/cache) compares it across an epoch-pinned read to
  /// assert the snapshot-isolation contract: a table observed under the
  /// shared lock must not move while the query runs.
  uint64_t content_version() const { return content_version_; }

  /// Appends one row to the tail segment (sealing it — and encoding its
  /// columns when the columnar path is enabled — when it reaches the row
  /// budget).
  RowId Append(std::span<const ValueId> coords,
               std::span<const int64_t> measures);

  ValueId Coord(RowId r, size_t d) const {
    auto [s, p] = Locate(r);
    const Segment& seg = segs_[s];
    return seg.encoded ? seg.edims[d].At(p) : seg.dims[d][p];
  }
  int64_t Measure(RowId r, size_t m) const {
    auto [s, p] = Locate(r);
    const Segment& seg = segs_[s];
    return seg.encoded ? seg.emeas[m].At(p) : seg.meas[m][p];
  }

  /// Copies a row's coordinates into `out` (size num_dims).
  void ReadCoords(RowId r, ValueId* out) const;

  /// Deletes the rows whose flag is set (paper: reduction ends in physical
  /// deletion of the detail facts). Rows are tombstoned per segment; a
  /// segment is rewritten once its tombstone ratio reaches
  /// kCompactTombstoneRatio and dropped once no live row remains. Logical
  /// row ids are invalidated (the survivors renumber in order). Fails with
  /// InvalidArgument when the bitmap's size does not match the current row
  /// count (deleting against a stale bitmap would silently drop the wrong
  /// facts).
  Status EraseRows(const std::vector<bool>& erase);

  /// Merges rows with identical coordinates by folding measures with `aggs`
  /// (one AggFn per measure). Used after subcube migration, where data
  /// arriving from several parents may populate the same cell. Keeps the
  /// first occurrence of each cell (so the logical order is the
  /// first-occurrence order, as before segmentation) and rebuilds the
  /// segment manifest. Returns the number of rows folded away; fails with
  /// InvalidArgument when `aggs` does not supply one function per measure.
  Result<size_t> CompactCells(std::span<const AggFn> aggs);

  /// Exact resident bytes of the stored column payloads — encoded size for
  /// encoded segments, row-equivalent size for plain ones (tombstoned rows
  /// included until their segment is compacted).
  size_t Bytes() const { return data_bytes_; }

  /// What the same physical rows would occupy un-encoded (the PR-4 layout):
  /// one ValueId per dimension + one int64 per measure per physical row.
  /// Bytes() <= RowEquivalentBytes() always — encodings are only kept when
  /// they win.
  size_t RowEquivalentBytes() const { return phys_rows_ * RowWidth(); }

  /// Capacity-based heap footprint for memory budgets (the PR-8 rule:
  /// budgets count capacity, not size) — includes encoded payloads, code and
  /// run buffers, tombstone bitmaps, live-row indexes, and zone maps.
  size_t ApproxBytes() const;

  /// Materializes the rows as an MO over the given dimensions and measure
  /// types (shared with the rest of the warehouse) so the algebraic query
  /// operators apply directly.
  MultidimensionalObject ToMO(
      const std::string& fact_type,
      const std::vector<std::shared_ptr<Dimension>>& dims,
      const std::vector<MeasureType>& measures) const;

  /// Appends every fact of an MO (granularities are the caller's concern).
  /// Fails with InvalidArgument when the MO's dimension or measure count
  /// does not match the table's column layout.
  Status AppendFrom(const MultidimensionalObject& mo);

  // --- Segment manifest (scan planner, dwredctl storage, tests) -----------

  size_t num_segments() const { return segs_.size(); }
  /// Logical id of the segment's first live row.
  RowId SegmentBegin(size_t s) const { return starts_[s]; }
  size_t SegmentLiveRows(size_t s) const { return segs_[s].live; }
  size_t SegmentPhysicalRows(size_t s) const { return segs_[s].phys; }
  size_t SegmentTombstones(size_t s) const { return segs_[s].dead_count; }
  bool SegmentSealed(size_t s) const { return segs_[s].sealed; }
  /// True when the segment's columns live in encoded form (seal-time choice;
  /// storage/column.h).
  bool SegmentEncoded(size_t s) const { return segs_[s].encoded; }
  /// Per-column physical encoding (kPlain for un-encoded segments).
  storage::ColEncoding SegmentDimEncoding(size_t s, size_t d) const {
    return segs_[s].encoded ? segs_[s].edims[d].encoding()
                            : storage::ColEncoding::kPlain;
  }
  storage::ColEncoding SegmentMeasureEncoding(size_t s, size_t m) const {
    return segs_[s].encoded ? segs_[s].emeas[m].encoding()
                            : storage::ColEncoding::kPlain;
  }
  /// Resident payload bytes of one column / one whole segment.
  size_t SegmentDimBytes(size_t s, size_t d) const {
    return segs_[s].encoded ? segs_[s].edims[d].DataBytes()
                            : segs_[s].phys * sizeof(ValueId);
  }
  size_t SegmentMeasureBytes(size_t s, size_t m) const {
    return segs_[s].encoded ? segs_[s].emeas[m].DataBytes()
                            : segs_[s].phys * sizeof(int64_t);
  }
  size_t SegmentBytes(size_t s) const { return SegmentDataBytesOf(segs_[s]); }
  /// Zone maps over the segment's live rows (every segment has >= 1).
  ValueId SegmentDimMin(size_t s, size_t d) const { return segs_[s].dmin[d]; }
  ValueId SegmentDimMax(size_t s, size_t d) const { return segs_[s].dmax[d]; }
  int64_t SegmentMeasureMin(size_t s, size_t m) const {
    return segs_[s].mmin[m];
  }
  int64_t SegmentMeasureMax(size_t s, size_t m) const {
    return segs_[s].mmax[m];
  }

  // --- Batch iteration (the vectorized scan substrate) --------------------

  /// A borrowed view of up to kBatchRows consecutive live rows during
  /// ForEachBatch: each column is a flat pointer over the batch's rows, in
  /// logical row order (lane i is logical row first_row() + i). Pointers
  /// alias segment storage when possible (plain dense columns) and the
  /// view's decode scratch otherwise; either way they are valid only for the
  /// duration of the callback.
  class BatchView {
   public:
    size_t rows() const { return rows_; }
    RowId first_row() const { return first_; }
    size_t num_dims() const { return dims_.size(); }
    const ValueId* dim_col(size_t d) const { return dims_[d]; }
    const int64_t* meas_col(size_t m) const { return meas_[m]; }
    /// All dimension columns at once — the shape vm::PredProgram::EvalBatch
    /// consumes.
    const ValueId* const* dim_cols() const { return dims_.data(); }

   private:
    friend class FactTable;
    std::vector<const ValueId*> dims_;
    std::vector<const int64_t*> meas_;
    std::vector<ValueId> dscratch_;  ///< [ndims][kBatchRows], lazily sized
    std::vector<int64_t> mscratch_;  ///< [nmeas][kBatchRows], lazily sized
    size_t rows_ = 0;
    RowId first_ = 0;
  };

  /// Sequential chunk-at-a-time scan of the live rows [begin, end) in
  /// logical order: `fn(const BatchView&)` sees consecutive batches of up to
  /// kBatchRows rows (batches never span segments). `skip(first, n)` is
  /// consulted *before* a batch's columns are materialized — returning true
  /// elides the decode entirely and fn is not called, which is what makes
  /// late materialization actually skip work for survivor-free chunks.
  /// The table must not be mutated during the scan.
  template <typename Fn, typename Skip>
  void ForEachBatch(RowId begin, RowId end, Fn&& fn, Skip&& skip) const {
    ForEachBatchImpl(begin, end, fn, skip, /*need_measures=*/true);
  }
  template <typename Fn>
  void ForEachBatch(RowId begin, RowId end, Fn&& fn) const {
    ForEachBatchImpl(begin, end, fn, NeverSkip, /*need_measures=*/true);
  }
  /// Same, but materializes only the dimension columns (meas_col is null) —
  /// the weigh/plan passes that never read measures skip that decode.
  template <typename Fn>
  void ForEachDimBatch(RowId begin, RowId end, Fn&& fn) const {
    ForEachBatchImpl(begin, end, fn, NeverSkip, /*need_measures=*/false);
  }

  /// A borrowed view of one live row during ForEachRow.
  class RowRef {
   public:
    ValueId coord(size_t d) const { return dims_[d][i_]; }
    int64_t measure(size_t m) const { return meas_[m][i_]; }

   private:
    friend class FactTable;
    const ValueId* const* dims_ = nullptr;
    const int64_t* const* meas_ = nullptr;
    size_t i_ = 0;
  };

  /// Sequential scan of the live rows [begin, end) in logical order,
  /// skipping tombstones — implemented over ForEachBatch, so encoded
  /// segments are decoded a chunk at a time, never per row. `fn` is called
  /// as fn(RowId logical, const RowRef& row); the view is valid only for the
  /// duration of the call. The table must not be mutated during the scan.
  template <typename Fn>
  void ForEachRow(RowId begin, RowId end, Fn&& fn) const {
    RowRef ref;
    ForEachBatchImpl(
        begin, end,
        [&](const BatchView& b) {
          ref.dims_ = b.dims_.data();
          ref.meas_ = b.meas_.data();
          const RowId first = b.first_;
          for (size_t i = 0; i < b.rows_; ++i) {
            ref.i_ = i;
            fn(first + i, ref);
          }
        },
        NeverSkip, /*need_measures=*/true);
  }

 private:
  /// One physical segment: dense columns over at most segment_rows_ rows,
  /// a tombstone bitmap (empty when no row is dead), and zone maps over the
  /// live rows. A segment's columns live either in `dims`/`meas` (plain:
  /// the mutable tail, or sealed with the columnar path disabled) or in
  /// `edims`/`emeas` (encoded at seal time), never both.
  struct Segment {
    std::vector<std::vector<ValueId>> dims;   ///< [ndims][physical rows]
    std::vector<std::vector<int64_t>> meas;   ///< [nmeas][physical rows]
    std::vector<storage::EncodedColumn<ValueId>> edims;  ///< encoded form
    std::vector<storage::EncodedColumn<int64_t>> emeas;
    std::vector<uint8_t> dead;                ///< empty <=> no tombstones
    std::vector<uint32_t> live_phys;          ///< live ordinal -> physical row
    size_t phys = 0;                          ///< physical rows (live + dead)
    size_t live = 0;
    size_t dead_count = 0;
    bool sealed = false;
    bool encoded = false;
    std::vector<ValueId> dmin, dmax;          ///< per-dimension zone map
    std::vector<int64_t> mmin, mmax;          ///< per-measure zone map
  };

  static bool NeverSkip(RowId, size_t) { return false; }

  template <typename Fn, typename Skip>
  void ForEachBatchImpl(RowId begin, RowId end, Fn&& fn, Skip&& skip,
                        bool need_measures) const {
    if (begin >= end) return;
    BatchView b;
    b.dims_.resize(ndims_);
    b.meas_.resize(need_measures ? nmeas_ : 0);
    size_t s = static_cast<size_t>(
        std::upper_bound(starts_.begin(), starts_.end(),
                         static_cast<size_t>(begin)) -
        starts_.begin() - 1);
    for (RowId r = begin; r < end; ++s) {
      const Segment& seg = segs_[s];
      size_t lo = static_cast<size_t>(r - starts_[s]);
      const size_t hi = std::min<size_t>(
          seg.live, static_cast<size_t>(end - starts_[s]));
      while (lo < hi) {
        const size_t n = std::min(kBatchRows, hi - lo);
        b.first_ = starts_[s] + lo;
        b.rows_ = n;
        if (!skip(b.first_, n)) {
          FillBatch(seg, lo, n, need_measures, &b);
          fn(static_cast<const BatchView&>(b));
        }
        lo += n;
      }
      r = starts_[s] + hi;
    }
  }

  /// Materializes batch columns: zero-copy pointers for dense plain columns,
  /// chunk decode / tombstone gather into the view's scratch otherwise.
  void FillBatch(const Segment& seg, size_t lo, size_t n, bool need_measures,
                 BatchView* b) const;

  /// (segment, physical row) of logical row `r`.
  std::pair<size_t, size_t> Locate(RowId r) const;
  /// Bytes per physical row in the un-encoded layout.
  size_t RowWidth() const {
    return ndims_ * sizeof(ValueId) + nmeas_ * sizeof(int64_t);
  }
  /// Resident payload bytes of one segment.
  size_t SegmentDataBytesOf(const Segment& s) const;
  /// Seals the tail; encodes its columns when the columnar path is enabled.
  void SealSegment(Segment& s);
  /// Moves a segment's columns into their cheapest encodings (column.h).
  void EncodeSegment(Segment& s) const;
  /// Materializes an encoded segment back to plain columns (compaction).
  void DecodeSegment(Segment& s) const;
  /// Recomputes a segment's zone maps over its live rows.
  void RecomputeZones(Segment& s) const;
  /// Rewrites a segment's columns dropping tombstoned rows (re-encoding
  /// sealed segments when the columnar path is enabled).
  void CompactSegment(Segment& s) const;
  /// Recomputes starts_, num_rows_, phys_rows_ and data_bytes_ from the
  /// segments.
  void RecomputeIndex();

  /// Re-reports this table's contribution to the process-wide footprint
  /// gauges after a mutation (`row_delta` rows added/removed; byte deltas
  /// are derived from Bytes()/RowEquivalentBytes() against the last reported
  /// values).
  void UpdateFootprint(int64_t row_delta);
  /// Withdraws this table's whole contribution from the footprint gauges.
  void ReleaseFootprint();

  size_t ndims_ = 0;
  size_t nmeas_ = 0;
  size_t segment_rows_ = kDefaultSegmentRows;
  size_t num_rows_ = 0;   ///< live rows across all segments
  size_t phys_rows_ = 0;  ///< physical rows (live + tombstoned)
  size_t data_bytes_ = 0;  ///< resident column payload bytes (== Bytes())
  std::vector<Segment> segs_;
  std::vector<size_t> starts_;  ///< logical id of each segment's first row
  size_t reported_bytes_ = 0;   ///< bytes currently credited to the gauges
  size_t reported_row_bytes_ = 0;  ///< row-equivalent bytes credited
  uint64_t content_version_ = 0;  ///< see content_version()
};

}  // namespace dwred
