#include "storage/column.h"

#include <cstdlib>

namespace dwred::storage {

const char* EncodingName(ColEncoding e) {
  switch (e) {
    case ColEncoding::kPlain:
      return "plain";
    case ColEncoding::kDict:
      return "dict";
    case ColEncoding::kRle:
      return "rle";
    case ColEncoding::kFor:
      return "for";
  }
  return "?";
}

bool ColumnarEnabled() {
  const char* v = std::getenv("DWRED_COLUMNAR_DISABLED");
  return v == nullptr || v[0] == '\0';
}

}  // namespace dwred::storage
