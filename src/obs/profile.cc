#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/env.h"
#include "common/strings.h"
#include "obs/logging.h"

namespace dwred::obs {

bool ProfilingEnabled() {
  // A non-empty value disables, mirroring DWRED_CACHE_DISABLED (an *empty*
  // setting counts as enabled, so tests can pin the variable); re-read per
  // call so tests can setenv/unsetenv around individual cases.
  const char* env = std::getenv("DWRED_PROFILE_DISABLED");
  return env == nullptr || env[0] == '\0';
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

namespace {

const char* CacheOutcomeName(CacheOutcome c) {
  switch (c) {
    case CacheOutcome::kNotApplicable: return "n/a";
    case CacheOutcome::kDisabled: return "off";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
  }
  return "?";
}

std::string HexFingerprint(uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

int64_t EnvInt(const char* name, int64_t fallback, int64_t min_value,
               int64_t max_value) {
  // Garbage must not silently misconfigure the slowlog (same contract as
  // DWRED_THREADS): warn and fall back / clamp via the shared helper.
  return EnvInt64(name, fallback, min_value, max_value,
                  EnvRangePolicy::kClamp);
}

}  // namespace

std::string OpProfile::Render() const {
  std::string out = "EXPLAIN " + op + "\n";
  auto line = [&](const char* key, const std::string& value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  %-14s", key);
    out += buf;
    out += value + "\n";
  };
  if (trace_id != 0) line("trace:", std::to_string(trace_id));
  line("epoch:", std::to_string(epoch));
  line("now day:", std::to_string(now_day));
  line("synchronized:", assume_synchronized ? "assumed" : "not assumed");
  if (parallel) {
    line("parallel:", "yes (fan-out " + std::to_string(fan_out) + ")");
  } else {
    line("parallel:", "no (fan-out " + std::to_string(fan_out) + ")");
  }
  std::string cache_desc = CacheOutcomeName(cache);
  if (fingerprint != 0) {
    cache_desc += " (fingerprint " + HexFingerprint(fingerprint) + ")";
  }
  line("cache:", cache_desc);
  line("compiled:", compiled ? "yes (bytecode VM)" : "no (tree interpreter)");
  line("segments:", std::to_string(segments_scanned) + " scanned / " +
                        std::to_string(segments_pruned) + " pruned of " +
                        std::to_string(segments_total));
  line("rows:", std::to_string(rows_scanned) + " scanned, " +
                    std::to_string(rows_skipped) + " skipped");
  line("outcome:", outcome);
  if (budget_max_rows > 0) {
    line("row budget:", std::to_string(budget_rows_charged) + " charged of " +
                            std::to_string(budget_max_rows));
  }
  line("result facts:", std::to_string(result_facts));
  for (const auto& [name, value] : counters) {
    line((name + ":").c_str(), std::to_string(value));
  }
  if (!stages.empty()) {
    out += "  stages:\n";
    for (const StageTime& s : stages) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "    %-12s %8lldus\n", s.name.c_str(),
                    static_cast<long long>(s.wall_us));
      out += buf;
    }
  }
  line("total:", std::to_string(total_us) + "us");
  if (!subcubes.empty()) {
    out += "  subcubes:\n";
    for (const SubcubeProfile& sc : subcubes) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "    %-12s segments %lld/%lld pruned %lld  rows %lld "
                    "skipped %lld  facts %lld  %lldus\n",
                    sc.name.c_str(),
                    static_cast<long long>(sc.segments_scanned),
                    static_cast<long long>(sc.segments_total),
                    static_cast<long long>(sc.segments_pruned),
                    static_cast<long long>(sc.rows_scanned),
                    static_cast<long long>(sc.rows_skipped),
                    static_cast<long long>(sc.result_facts),
                    static_cast<long long>(sc.wall_us));
      out += buf;
    }
  }
  return out;
}

std::string OpProfile::ToJson() const {
  std::string out = "{\"op\":\"" + JsonEscape(op) + "\"";
  out += ",\"trace\":" + std::to_string(trace_id);
  out += ",\"epoch\":" + std::to_string(epoch);
  out += ",\"cache\":\"" + std::string(CacheOutcomeName(cache)) + "\"";
  out += ",\"fingerprint\":\"" + HexFingerprint(fingerprint) + "\"";
  out += ",\"now_day\":" + std::to_string(now_day);
  out += ",\"assume_synchronized\":";
  out += assume_synchronized ? "true" : "false";
  out += ",\"parallel\":";
  out += parallel ? "true" : "false";
  out += ",\"compiled\":";
  out += compiled ? "true" : "false";
  out += ",\"fan_out\":" + std::to_string(fan_out);
  out += ",\"segments_total\":" + std::to_string(segments_total);
  out += ",\"segments_scanned\":" + std::to_string(segments_scanned);
  out += ",\"segments_pruned\":" + std::to_string(segments_pruned);
  out += ",\"rows_scanned\":" + std::to_string(rows_scanned);
  out += ",\"rows_skipped\":" + std::to_string(rows_skipped);
  out += ",\"result_facts\":" + std::to_string(result_facts);
  out += ",\"outcome\":\"" + JsonEscape(outcome) + "\"";
  out += ",\"budget_max_rows\":" + std::to_string(budget_max_rows);
  out += ",\"budget_rows_charged\":" + std::to_string(budget_rows_charged);
  for (const auto& [name, value] : counters) {
    out += ",\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += ",\"stages\":[";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i) out += ",";
    out += "{\"name\":\"" + JsonEscape(stages[i].name) +
           "\",\"wall_us\":" + std::to_string(stages[i].wall_us) + "}";
  }
  out += "],\"subcubes\":[";
  for (size_t i = 0; i < subcubes.size(); ++i) {
    const SubcubeProfile& sc = subcubes[i];
    if (i) out += ",";
    out += "{\"name\":\"" + JsonEscape(sc.name) + "\"";
    out += ",\"segments_total\":" + std::to_string(sc.segments_total);
    out += ",\"segments_scanned\":" + std::to_string(sc.segments_scanned);
    out += ",\"segments_pruned\":" + std::to_string(sc.segments_pruned);
    out += ",\"rows_scanned\":" + std::to_string(sc.rows_scanned);
    out += ",\"rows_skipped\":" + std::to_string(sc.rows_skipped);
    out += ",\"result_facts\":" + std::to_string(sc.result_facts);
    out += ",\"wall_us\":" + std::to_string(sc.wall_us) + "}";
  }
  out += "],\"total_us\":" + std::to_string(total_us) + "}";
  return out;
}

std::string OpProfile::Summary() const {
  std::string out = "cache=" + std::string(CacheOutcomeName(cache));
  out += " epoch=" + std::to_string(epoch);
  out += " fan_out=" + std::to_string(fan_out);
  out += " segments=" + std::to_string(segments_scanned) + "/" +
         std::to_string(segments_total) + " pruned=" +
         std::to_string(segments_pruned);
  out += " rows_skipped=" + std::to_string(rows_skipped);
  out += " facts=" + std::to_string(result_facts);
  // Append compiled/outcome only when abnormal-or-notable: existing
  // summaries stay stable.
  if (compiled) out += " compiled=1";
  if (!outcome.empty() && outcome != "ok") out += " outcome=" + outcome;
  for (const auto& [name, value] : counters) {
    out += " " + name + "=" + std::to_string(value);
  }
  return out;
}

Histogram& OpLatencyHistogram(const std::string& op) {
  std::string name = "dwred_op_";
  for (char c : op) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9');
    name += ok ? c : '_';
  }
  name += "_seconds";
  return MetricsRegistry::Global().GetHistogram(
      name, DefaultLatencyBuckets(), "latency of " + op + " operations");
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked, same as MetricsRegistry: ops may record during static teardown.
  static FlightRecorder* g = new FlightRecorder();
  return *g;
}

void FlightRecorder::ReloadConfigFromEnv() {
  // Board/ring sizes are clamped to 4096: the recorder is a bounded in-memory
  // debugging aid, and a stray huge value would pin arbitrary memory.
  int64_t topk = EnvInt("DWRED_SLOWLOG_TOPK", 16, 1, 4096);
  int64_t lastn = EnvInt("DWRED_SLOWLOG_LASTN", 64, 1, 4096);
  int64_t min_us = EnvInt("DWRED_SLOWLOG_MIN_US", 1000, 0,
                          std::numeric_limits<int64_t>::max());
  std::lock_guard<std::mutex> lock(mu_);
  topk_ = static_cast<size_t>(topk);
  lastn_ = static_cast<size_t>(lastn);
  min_us_.store(min_us, std::memory_order_relaxed);
}

void FlightRecorder::Record(const OpProfile& profile) {
  if (!WouldRecord(profile.total_us)) return;
  FlightEntry e;
  e.op = profile.op;
  e.trace_id = profile.trace_id;
  e.wall_us = profile.total_us;
  e.detail = profile.Summary();
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = ++seq_;
  ring_.push_back(e);
  while (ring_.size() > lastn_) ring_.pop_front();
  if (board_.size() < topk_ || e.wall_us > board_.back().wall_us) {
    // Insert keeping slowest-first order; ties keep the earlier entry ahead.
    auto pos = std::upper_bound(
        board_.begin(), board_.end(), e.wall_us,
        [](int64_t us, const FlightEntry& b) { return us > b.wall_us; });
    board_.insert(pos, std::move(e));
    if (board_.size() > topk_) board_.pop_back();
  }
}

std::vector<FlightEntry> FlightRecorder::TopK() const {
  std::lock_guard<std::mutex> lock(mu_);
  return board_;
}

std::vector<FlightEntry> FlightRecorder::LastN() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  board_.clear();
  ring_.clear();
  seq_ = 0;
}

namespace {

void RenderEntry(const FlightEntry& e, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  #%-5llu %8lldus  ",
                static_cast<unsigned long long>(e.seq),
                static_cast<long long>(e.wall_us));
  *out += buf;
  *out += e.op;
  if (e.trace_id != 0) *out += " trace=" + std::to_string(e.trace_id);
  *out += "  " + e.detail + "\n";
}

}  // namespace

std::string FlightRecorder::Render() const {
  std::vector<FlightEntry> board;
  std::vector<FlightEntry> recent;
  size_t topk, lastn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    board = board_;
    recent.assign(ring_.begin(), ring_.end());
    topk = topk_;
    lastn = lastn_;
  }
  std::string out = "flight recorder: threshold " +
                    std::to_string(threshold_us()) + "us, top " +
                    std::to_string(topk) + " by duration, last " +
                    std::to_string(lastn) + "\n";
  out += "slowest:\n";
  if (board.empty()) out += "  (none at/above threshold)\n";
  for (const FlightEntry& e : board) RenderEntry(e, &out);
  out += "recent:\n";
  if (recent.empty()) out += "  (none at/above threshold)\n";
  // Most recent first: the question at the console is "what just happened".
  for (auto it = recent.rbegin(); it != recent.rend(); ++it) {
    RenderEntry(*it, &out);
  }
  return out;
}

std::string FlightRecorder::RenderJson() const {
  std::vector<FlightEntry> board;
  std::vector<FlightEntry> recent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    board = board_;
    recent.assign(ring_.begin(), ring_.end());
  }
  auto entry_json = [](const FlightEntry& e) {
    return "{\"seq\":" + std::to_string(e.seq) + ",\"op\":\"" +
           JsonEscape(e.op) + "\",\"trace\":" + std::to_string(e.trace_id) +
           ",\"wall_us\":" + std::to_string(e.wall_us) + ",\"detail\":\"" +
           JsonEscape(e.detail) + "\"}";
  };
  std::string out = "{\"threshold_us\":" + std::to_string(threshold_us()) +
                    ",\"top\":[";
  for (size_t i = 0; i < board.size(); ++i) {
    if (i) out += ",";
    out += entry_json(board[i]);
  }
  out += "],\"recent\":[";
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i) out += ",";
    out += entry_json(recent[i]);
  }
  out += "]}";
  return out;
}

}  // namespace dwred::obs
