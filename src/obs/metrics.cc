#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace dwred::obs {

namespace {

/// Formats a double compactly and deterministically ("0.001", "2.5", "1e-06").
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Anchored at static init: dwred_uptime_seconds measures from roughly process
// start, not from whenever the registry was first touched.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

#ifndef DWRED_VERSION
#define DWRED_VERSION "unknown"
#endif
#ifndef DWRED_BUILD_TYPE
#define DWRED_BUILD_TYPE "unknown"
#endif

std::string BuildInfoLabels() {
  std::string labels = "version=\"" DWRED_VERSION "\"";
  labels += ",build_type=\"" DWRED_BUILD_TYPE "\"";
#if defined(__clang__)
  labels += ",compiler=\"clang\"";
#elif defined(__GNUC__)
  labels += ",compiler=\"gcc\"";
#else
  labels += ",compiler=\"unknown\"";
#endif
  labels += kObsEnabled ? ",obs=\"on\"" : ",obs=\"off\"";
  return labels;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    // Strictly increasing bounds are a registration-time programming error;
    // sort instead of aborting so a bad list degrades gracefully.
    if (bounds_[i] <= bounds_[i - 1]) {
      std::sort(bounds_.begin(), bounds_.end());
      bounds_.erase(std::unique(bounds_.begin(), bounds_.end()),
                    bounds_.end());
      break;
    }
  }
}

void Histogram::Record(double value) {
  if constexpr (!kObsEnabled) {
    (void)value;
    return;
  }
  // First bucket whose (inclusive) upper bound admits the sample.
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::CumulativeCount(size_t i) const {
  uint64_t total = 0;
  for (size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBuckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0};
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: instrumented destructors (e.g. FactTable footprint
  // accounting) may run during static teardown, after a function-local
  // static registry would already be gone.
  static MetricsRegistry* g = new MetricsRegistry();
  // Second function-local static so the process-level gauges register exactly
  // once, strictly after `g` exists (Get* must not re-enter Global()).
  [[maybe_unused]] static const int process_metrics = [] {
    g->GetGauge("dwred_build_info",
                "constant 1; version/build labels in the text exposition")
        .Set(1);
    g->SetConstLabels("dwred_build_info", BuildInfoLabels());
    g->GetGauge("dwred_uptime_seconds",
                "seconds since process start (stamped at render time)");
    return 0;
  }();
  return *g;
}

void MetricsRegistry::SetConstLabels(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  labels_[name] = labels;
}

void MetricsRegistry::RefreshUptimeLocked() const {
  auto it = gauges_.find("dwred_uptime_seconds");
  if (it == gauges_.end()) return;
  it->second->Set(std::chrono::duration_cast<std::chrono::seconds>(
                      std::chrono::steady_clock::now() - g_process_start)
                      .count());
  // dwred_build_info is 1 by definition; re-assert it so the exposition stays
  // correct even after ResetAllForTest zeroed every gauge.
  auto bi = gauges_.find("dwred_build_info");
  if (bi != gauges_.end()) bi->second->Set(1);
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  RefreshUptimeLocked();
  std::string out;
  auto header = [&](const std::string& name, const char* type) {
    auto h = help_.find(name);
    if (h != help_.end()) {
      out += "# HELP " + name + " " + h->second + "\n";
    }
    out += "# TYPE " + name + " " + type + "\n";
  };
  auto labeled = [&](const std::string& name) {
    auto l = labels_.find(name);
    return l == labels_.end() ? name : name + "{" + l->second + "}";
  };
  for (const auto& [name, c] : counters_) {
    header(name, "counter");
    out += labeled(name) + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    header(name, "gauge");
    out += labeled(name) + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    header(name, "histogram");
    for (size_t i = 0; i < h->num_bounds(); ++i) {
      out += name + "_bucket{le=\"" + FormatDouble(h->bounds()[i]) + "\"} " +
             std::to_string(h->CumulativeCount(i)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h->Count()) + "\n";
    out += name + "_sum " + FormatDouble(h->Sum()) + "\n";
    out += name + "_count " + std::to_string(h->Count()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  RefreshUptimeLocked();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(g->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"bounds\":[";
    for (size_t i = 0; i < h->num_bounds(); ++i) {
      if (i) out += ",";
      out += FormatDouble(h->bounds()[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i <= h->num_bounds(); ++i) {
      if (i) out += ",";
      out += std::to_string(h->BucketCount(i));
    }
    out += "],\"sum\":" + FormatDouble(h->Sum()) +
           ",\"count\":" + std::to_string(h->Count()) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace dwred::obs
