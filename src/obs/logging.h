#pragma once

// Leveled logging with a pluggable sink. Header-only (C++17 inline state);
// linking dwred_obs supplies the metrics counter it feeds.
//
//   DWRED_LOG(Info) << "synchronized " << n << " rows";
//
// Levels: Debug < Info < Warn < Error. Messages below the minimum level are
// dropped before any formatting happens. The default sink writes
// "[LEVEL] file:line: message" to stderr; SetLogSink installs a replacement
// (e.g. a test capture); passing nullptr restores the default.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.h"

namespace dwred::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Sink signature: level plus the fully formatted "file:line: message" text.
using LogSink = std::function<void(LogLevel, std::string_view)>;

namespace internal {

struct LogState {
  std::mutex mu;
  LogSink sink;  ///< null = default stderr sink
  std::atomic<int> min_level{static_cast<int>(LogLevel::kInfo)};
};

inline LogState& GetLogState() {
  static LogState* s = new LogState();  // leaked; see MetricsRegistry::Global
  return *s;
}

inline const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace internal

inline void SetMinLogLevel(LogLevel level) {
  internal::GetLogState().min_level.store(static_cast<int>(level),
                                          std::memory_order_relaxed);
}

inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      internal::GetLogState().min_level.load(std::memory_order_relaxed));
}

inline void SetLogSink(LogSink sink) {
  internal::LogState& st = internal::GetLogState();
  std::lock_guard<std::mutex> lock(st.mu);
  st.sink = std::move(sink);
}

inline void LogMessage(LogLevel level, const char* file, int line,
                       std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(MinLogLevel())) return;
  MetricsRegistry::Global()
      .GetCounter("dwred_obs_log_messages", "log messages emitted")
      .Increment();
  std::string text = std::string(internal::Basename(file)) + ":" +
                     std::to_string(line) + ": " + std::string(msg);
  internal::LogState& st = internal::GetLogState();
  std::lock_guard<std::mutex> lock(st.mu);
  if (st.sink) {
    st.sink(level, text);
  } else {
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), text.c_str());
  }
}

/// One log statement: accumulates stream input, flushes on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, os_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace dwred::obs

/// DWRED_LOG(Info) << ...; — the level test runs before any formatting.
#define DWRED_LOG(severity)                                              \
  if (static_cast<int>(::dwred::obs::LogLevel::k##severity) <            \
      static_cast<int>(::dwred::obs::MinLogLevel())) {                   \
  } else                                                                 \
    ::dwred::obs::LogLine(::dwred::obs::LogLevel::k##severity, __FILE__, \
                          __LINE__)
