#pragma once

// Structured tracing: RAII TraceSpan scopes measure wall time on the steady
// clock, record it into a latency histogram (when one is supplied), and —
// when the global TraceBuffer is enabled — emit one structured event per
// span into a fixed-capacity ring buffer. Events render as JSON lines
// ({"name":...,"start_us":...,"dur_us":...,<fields>}), dumpable on demand or
// written to a file (dwredctl --trace=<file>).
//
// Spans are cheap when tracing is off: two clock reads plus one histogram
// record; with -DDWRED_OBS_DISABLED they compile to (almost) nothing.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dwred::obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;     ///< since the buffer was enabled
  int64_t duration_us = 0;
  std::vector<std::pair<std::string, int64_t>> fields;
};

/// Process-wide ring buffer of completed spans. Disabled by default; when
/// full, the oldest events are overwritten.
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  void Enable(size_t capacity = 4096);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(TraceEvent ev);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  void Clear();

  /// One JSON object per line, oldest first.
  std::string DumpJsonLines() const;

  /// Writes DumpJsonLines() to `path`. Returns false on I/O failure.
  bool WriteTo(const std::string& path) const;

  /// Microseconds since Enable() on the steady clock (0 when disabled).
  int64_t NowMicros() const;

 private:
  TraceBuffer() = default;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> ring_;
  size_t capacity_ = 0;
  size_t next_ = 0;   ///< slot the next event lands in
  size_t count_ = 0;  ///< live events (<= capacity_)
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records wall time into `latency` (seconds) and, when the
/// global TraceBuffer is enabled, emits a TraceEvent on destruction.
/// `name` must outlive the span (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* latency = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a structured field to the emitted event.
  void AddField(const char* key, int64_t value);

  double ElapsedSeconds() const;

 private:
  const char* name_;
  Histogram* latency_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, int64_t>> fields_;
};

}  // namespace dwred::obs
