#pragma once

// Structured tracing with causal context: RAII TraceSpan scopes measure wall
// time on the steady clock, record it into a latency histogram (when one is
// supplied), and — when the global TraceBuffer is enabled — emit one
// structured event per span into a fixed-capacity ring buffer.
//
// Every traced span carries three ids:
//
//   trace_id   — the request: equal for every span caused by one root span
//   span_id    — this span (unique per process while the buffer is enabled)
//   parent_id  — the span active when this span was opened (0 for a root)
//
// The active context is a thread-local (trace_id, span_id) pair. Opening a
// span pushes it; closing restores the parent. Crossing threads is explicit:
// the exec thread pool captures the submitter's context at submission and
// installs it (ScopedTraceContext) around every shard it runs, so spans
// opened inside pool shards parent correctly under the submitting span no
// matter which worker executes them (docs/PARALLELISM.md).
//
// Events render as JSON lines
// ({"name":...,"trace":...,"span":...,"parent":...,"start_us":...,
//   "dur_us":...,<fields>}), dumpable on demand or written to a file
// (dwredctl --trace=<file>); RenderTraceTree reconstructs and pretty-prints
// the span forest (dwredctl trace-tree).
//
// Spans are cheap when tracing is off: two clock reads plus one histogram
// record, no id allocation, no thread-local writes; with -DDWRED_OBS_DISABLED
// they compile to (almost) nothing.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dwred::obs {

/// The causal position of the current thread: the trace being served and the
/// innermost open span (the parent of any span opened next). Zero ids mean
/// "no active trace".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// The calling thread's active context (thread-local).
TraceContext CurrentTraceContext();

/// Installs `ctx` as the calling thread's context for the scope's lifetime
/// and restores the previous context on destruction. Used by the exec pool to
/// carry the submitter's context onto worker threads; usable by any future
/// executor (e.g. a network server's session threads).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// One completed span.
struct TraceEvent {
  std::string name;
  uint64_t trace_id = 0;    ///< 0 when recorded outside any span context
  uint64_t span_id = 0;
  uint64_t parent_id = 0;   ///< 0 for a root span
  int64_t start_us = 0;     ///< since the buffer was enabled
  int64_t duration_us = 0;
  std::vector<std::pair<std::string, int64_t>> fields;
};

/// Process-wide ring buffer of completed spans. Disabled by default; when
/// full, the oldest events are overwritten.
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  void Enable(size_t capacity = 4096);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(TraceEvent ev);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  void Clear();

  /// One JSON object per line, oldest first.
  std::string DumpJsonLines() const;

  /// Writes DumpJsonLines() to `path`. Returns false on I/O failure.
  bool WriteTo(const std::string& path) const;

  /// Microseconds since Enable() on the steady clock (0 when disabled).
  int64_t NowMicros() const;

 private:
  TraceBuffer() = default;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> ring_;
  size_t capacity_ = 0;
  size_t next_ = 0;   ///< slot the next event lands in
  size_t count_ = 0;  ///< live events (<= capacity_)
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records wall time into `latency` (seconds) and, when the
/// global TraceBuffer is enabled, emits a TraceEvent on destruction. Names
/// may be dynamic (per-subcube/per-shard labels like "query/subcube=K1");
/// the span owns its copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* latency = nullptr);
  explicit TraceSpan(std::string name, Histogram* latency = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a structured field to the emitted event.
  void AddField(const char* key, int64_t value);

  double ElapsedSeconds() const;

  /// The ids this span was opened with (all zero when the buffer was
  /// disabled at construction).
  TraceContext context() const { return TraceContext{trace_id_, span_id_}; }

 private:
  void Open();  ///< allocates ids + installs the context when tracing is on

  std::string name_;
  Histogram* latency_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, int64_t>> fields_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  bool traced_ = false;  ///< buffer was enabled when the span opened
};

/// Parses the JSON-lines format produced by DumpJsonLines back into events.
/// Tolerant: lines that are not span objects are skipped; returns false only
/// when *no* line parsed (e.g. the file is not a trace at all).
bool ParseTraceJsonLines(const std::string& text, std::vector<TraceEvent>* out);

/// Pretty-prints the span forest: events grouped by trace_id, parents above
/// children (children indented, sorted by start time). Spans whose parent is
/// absent (evicted from the ring or recorded before tracing was enabled) are
/// promoted to roots and marked. Events with trace_id 0 (recorded outside any
/// context) list last under "(untraced)".
std::string RenderTraceTree(const std::vector<TraceEvent>& events);

}  // namespace dwred::obs
