#pragma once

// Process-wide metrics: named counters, gauges, and fixed-bucket histograms
// with a lock-free fast path (relaxed std::atomic) and thread-safe
// registration. The registry renders a Prometheus-style text exposition and a
// JSON snapshot so reduction / synchronization / query cost (the operational
// claims of paper Sections 4 and 7) can be observed from tools, benchmarks,
// and tests.
//
// Naming scheme: dwred_<subsystem>_<name>, e.g. dwred_reduce_facts_deleted
// (see docs/OBSERVABILITY.md). Histogram buckets are cumulative with
// *inclusive* upper bounds (Prometheus "le" semantics): a sample v lands in
// the first bucket whose bound b satisfies v <= b; samples above every bound
// land in the implicit +Inf bucket.
//
// Compile with -DDWRED_OBS_DISABLED (CMake option DWRED_OBS_DISABLED) to
// stub out every mutation at compile time; registration and rendering keep
// working so callers need no #ifdefs.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dwred::obs {

#ifdef DWRED_OBS_DISABLED
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if constexpr (kObsEnabled) {
      v_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous signed level (e.g. live rows, live bytes).
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kObsEnabled) v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if constexpr (kObsEnabled) {
      v_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket upper bounds are set at registration and
/// immutable afterwards; recording is wait-free (one relaxed add per sample
/// plus a CAS loop for the double-valued sum).
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +Inf bucket is
  /// appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void Record(double value);

  /// Number of finite bucket bounds (excluding +Inf).
  size_t num_bounds() const { return bounds_.size(); }
  std::span<const double> bounds() const { return bounds_; }

  /// Count of samples in bucket `i` alone (i == num_bounds() is +Inf).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Prometheus-style cumulative count: samples <= bounds()[i] (or all
  /// samples when i == num_bounds()).
  uint64_t CumulativeCount(size_t i) const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1 slots
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets in seconds: 1us .. 10s, roughly exponential.
std::vector<double> DefaultLatencyBuckets();

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with the trace writer.
std::string JsonEscape(std::string_view s);

/// The process-wide registry. Get*() registers on first use and returns a
/// reference that stays valid for the life of the process (metrics are
/// node-stable), so hot paths can cache it in a function-local static.
///
/// Global() also self-registers two process-level gauges on first use:
/// dwred_build_info (constant 1, version/build labels in the text exposition)
/// and dwred_uptime_seconds (refreshed at render time).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");

  /// Attaches a constant Prometheus label set (already-rendered, e.g.
  /// `version="0.6",toolchain="gcc"`) to `name`. The text exposition emits
  /// `name{labels} value`; the JSON snapshot keeps the plain name as its key.
  void SetConstLabels(const std::string& name, const std::string& labels);
  /// Registers with the given bounds on first use; later calls with the same
  /// name return the existing histogram (their bounds argument is ignored).
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          const std::string& help = "");

  /// Prometheus text exposition: "# HELP"/"# TYPE" comments plus one sample
  /// line per counter/gauge and the _bucket/_sum/_count series per
  /// histogram, sorted by metric name (deterministic output).
  std::string RenderText() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"bounds":[...],"counts":[...],"sum":s,"count":n}}}.
  std::string RenderJson() const;

  /// Zeroes every metric value. Registered metrics stay alive (references
  /// held by instrumented code remain valid). Intended for tests.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;

  /// Re-stamps dwred_uptime_seconds. Called at render time with mu_ held, so
  /// it touches gauges_ directly instead of going through GetGauge().
  void RefreshUptimeLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
  std::map<std::string, std::string> labels_;  ///< const label sets (text only)
};

}  // namespace dwred::obs
